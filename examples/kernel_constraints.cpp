// Architectural constraint checking (paper section 4): "we have used Knit to check
// that code executing without a process context will never call code that requires
// a process context."
//
// Builds two kernels: one where an interrupt handler prints through an
// interrupt-safe console (passes), and one where the console takes pthread locks
// (the checker rejects the configuration before anything is compiled or run).
//
// Run: ./build/examples/kernel_constraints
#include <cstdio>

#include "src/driver/knitc.h"
#include "src/oskit/corpus.h"
#include "src/support/mangle.h"
#include "src/vm/machine.h"

using namespace knit;

int main() {
  std::printf("property context { ProcessContext < NoContext }\n");
  std::printf("  pthread_lock is annotated context = ProcessContext\n");
  std::printf("  the interrupt handler requires NoContext from everything it calls\n");
  std::printf("  wrapper units declare context(exports) <= context(imports)\n\n");

  // Good configuration: IntrHandler -> VgaConsole (NoContext).
  {
    Diagnostics diags;
    KnitcOptions options;
    Result<KnitBuildResult> build =
        KnitBuild(OskitKnit(), OskitSources(), "IntrKernelGood", options, diags);
    if (!build.ok()) {
      std::fprintf(stderr, "unexpected failure:\n%s", diags.ToString().c_str());
      return 1;
    }
    std::printf("IntrKernelGood (handler -> VgaConsole): builds cleanly\n");
    Machine machine(build.value().image);
    machine.BindNative(EnvSymbol("raw", "raw_putc"),
                       [](Machine&, const std::vector<uint32_t>& args) {
                         if (!args.empty()) {
                           std::fputc(static_cast<char>(args[0] & 0xFF), stdout);
                         }
                         return 0u;
                       });
    machine.Call(build.value().init_function);
    std::printf("  simulated interrupt: ");
    machine.Call(build.value().ExportedSymbol("intr", "intr_tick"));
  }

  // Buggy configuration: IntrHandler -> LockedConsole -> PThreadLock. Driving the
  // staged pipeline makes the claim in the header comment literal: the checker
  // rejects the configuration at the Check stage, before Compile ever runs.
  {
    Diagnostics diags;
    KnitPipeline pipeline;
    Result<ParsedProgram> parsed = pipeline.Parse(OskitKnit(), diags);
    Result<ElaboratedConfig> elaborated =
        pipeline.Elaborate(parsed.value(), "IntrKernelBad", diags);
    Result<ScheduledConfig> scheduled = pipeline.Schedule(elaborated.value(), diags);
    Result<CheckedConfig> checked = pipeline.Check(scheduled.value(), diags);
    std::printf("\nIntrKernelBad (handler -> LockedConsole -> pthread locks):\n");
    if (checked.ok()) {
      std::fprintf(stderr, "  UNEXPECTED: buggy configuration accepted!\n");
      return 1;
    }
    std::printf("  rejected by the constraint checker (no unit was compiled):\n");
    for (const Diagnostic& diagnostic : diags.entries()) {
      std::printf("    %s\n", diagnostic.ToString().c_str());
    }
  }

  // The same bug ships if checking is turned off — the paper's motivation.
  {
    Diagnostics diags;
    KnitcOptions options;
    options.check_constraints = false;
    Result<KnitBuildResult> build =
        KnitBuild(OskitKnit(), OskitSources(), "IntrKernelBad", options, diags);
    std::printf("\nwith --no-check the same configuration builds: %s\n",
                build.ok() ? "yes (and would deadlock in the field)" : "no");
  }
  return 0;
}
