// Quickstart: the paper's running example (Figures 2-6), end to end.
//
// Builds the LogServe web server — the Web unit dispatching to file/CGI servers,
// wrapped by the Log unit that interposes on serve_web and writes "ServerLog"
// through stdio over an in-memory file system — runs it on the VM, and shows the
// automatically scheduled initialization order and the log contents.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "src/driver/knitc.h"
#include "src/oskit/corpus.h"
#include "src/support/mangle.h"
#include "src/vm/machine.h"

using namespace knit;

namespace {

uint32_t PutString(Machine& machine, const std::string& text) {
  uint32_t address = machine.Sbrk(static_cast<uint32_t>(text.size()) + 1);
  for (size_t i = 0; i < text.size(); ++i) {
    machine.WriteByte(address + static_cast<uint32_t>(i), static_cast<uint8_t>(text[i]));
  }
  machine.WriteByte(address + static_cast<uint32_t>(text.size()), 0);
  return address;
}

}  // namespace

int main() {
  // 1. Build the WebKernel configuration through the staged pipeline, one phase at
  //    a time: parse the Knit declarations, elaborate + instantiate, schedule
  //    initializers, check constraints, compile every unit (objcopy-rename per
  //    instance), and ld-link. Each stage returns a plain artifact that can be
  //    inspected — here we print the init order as soon as Schedule produces it,
  //    before a single unit compiles.
  Diagnostics diags;
  KnitPipeline pipeline;
  Result<ParsedProgram> parsed = pipeline.Parse(OskitKnit(), diags);
  Result<ElaboratedConfig> elaborated =
      parsed.ok() ? pipeline.Elaborate(parsed.value(), "WebKernel", diags)
                  : Result<ElaboratedConfig>::Failure();
  Result<ScheduledConfig> scheduled = elaborated.ok()
                                          ? pipeline.Schedule(elaborated.value(), diags)
                                          : Result<ScheduledConfig>::Failure();
  if (!scheduled.ok()) {
    std::fprintf(stderr, "build failed:\n%s", diags.ToString().c_str());
    return 1;
  }

  std::printf("automatically scheduled initialization order:\n");
  for (const InitCall& call : scheduled.value().schedule->initializers) {
    const Configuration& config = *scheduled.value().elaborated.config;
    std::printf("  %s.%s()\n", config.instances[call.instance].path.c_str(),
                call.function.c_str());
  }

  Result<CheckedConfig> checked = pipeline.Check(scheduled.value(), diags);
  Result<CompiledUnits> compiled =
      checked.ok() ? pipeline.Compile(checked.value(), OskitSources(), diags)
                   : Result<CompiledUnits>::Failure();
  Result<LinkedImage> linked = compiled.ok() ? pipeline.Link(compiled.value(), diags)
                                             : Result<LinkedImage>::Failure();
  if (!linked.ok()) {
    std::fprintf(stderr, "build failed:\n%s", diags.ToString().c_str());
    return 1;
  }
  KnitBuildResult kernel = KnitBuildResultFrom(linked.take(), pipeline.metrics());

  std::printf("\nbuilt WebKernel: %d unit instances, %d objects, %d bytes of text\n",
              kernel.stats.instance_count, kernel.stats.object_count,
              kernel.image.text_bytes);

  // 2. Load the image; the environment supplies the raw console.
  Machine machine(kernel.image);
  machine.BindNative(EnvSymbol("raw", "raw_putc"),
                     [](Machine&, const std::vector<uint32_t>& args) {
                       if (!args.empty()) {
                         std::fputc(static_cast<char>(args[0] & 0xFF), stdout);
                       }
                       return 0u;
                     });
  machine.Call(kernel.init_function);

  // 3. Create /index.html in the memfs, then serve some URLs through the exported
  //    (logged) serve_web.
  std::string page = "<html>hello from knit</html>";
  uint32_t path = PutString(machine, "/index.html");
  uint32_t fd = machine.Call(kernel.ExportedSymbol("fs", "fs_open"), {path, 1}).value;
  uint32_t content = PutString(machine, page);
  machine.Call(kernel.ExportedSymbol("fs", "fs_write"),
               {fd, 0, content, static_cast<uint32_t>(page.size())});

  std::printf("\nserving requests:\n");
  std::string serve = kernel.ExportedSymbol("serve", "serve_web");
  machine.Call(serve, {1, PutString(machine, "/index.html")});
  machine.Call(serve, {1, PutString(machine, "/cgi-bin/status")});
  machine.Call(serve, {1, PutString(machine, "/missing.html")});

  // 4. Finalize (close_log runs first, while stdio is still usable) and read the
  //    log the interposing Log unit wrote.
  machine.Call(kernel.fini_function);
  uint32_t log_path = PutString(machine, "ServerLog");
  uint32_t log_fd = machine.Call(kernel.ExportedSymbol("fs", "fs_open"), {log_path, 0}).value;
  uint32_t size = machine.Call(kernel.ExportedSymbol("fs", "fs_size"), {log_fd}).value;
  uint32_t buffer = machine.Sbrk(size + 1);
  machine.Call(kernel.ExportedSymbol("fs", "fs_read"), {log_fd, 0, buffer, size});
  std::printf("\nServerLog (written by the interposed Log unit):\n%s\n",
              machine.ReadCString(buffer, size).c_str());
  return 0;
}
