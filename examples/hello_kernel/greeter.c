extern void console_putc(int c);
extern void console_puts(char *s);

static int g_greetings = 0;

void greeter_init(void) { g_greetings = 0; }

int greet(char *who) {
  g_greetings++;
  console_puts("hello, ");
  console_puts(who);
  console_puts("!\n");
  return g_greetings;
}
