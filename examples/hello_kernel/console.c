extern void raw_putc(int c);

void console_putc(int c) { raw_putc(c); }

void console_puts(char *s) {
  while (*s) {
    raw_putc(*s);
    s = s + 1;
  }
}
