extern int greet(char *who);

int app_main(int times) {
  int count = 0;
  for (int i = 0; i < times; i++) {
    count = greet("knit");
  }
  return count;
}
