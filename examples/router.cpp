// Clack IP router example: build the 24-component Knit router, push a packet trace
// through it, print the element counters, then rebuild it flattened and show the
// speedup from cross-component inlining (paper sections 5.2 and 6).
//
// Run: ./build/examples/router
#include <cstdio>

#include "src/clack/corpus.h"
#include "src/clack/harness.h"
#include "src/clack/trace.h"

using namespace knit;

namespace {

// One artifact cache shared by both router builds: the flattened rebuild reuses
// every standalone unit object the modular build already compiled.
KnitcOptions SharedOptions() {
  static KnitcOptions options = [] {
    KnitcOptions o;
    o.cache = std::make_shared<BuildCache>();
    return o;
  }();
  return options;
}

bool RunRouter(const char* top, const std::vector<TracePacket>& trace, RouterStats* out) {
  Diagnostics diags;
  KnitPipeline pipeline(SharedOptions());
  Result<RouterProgram> program = RouterProgram::FromClack(pipeline, top, diags);
  if (!program.ok()) {
    std::fprintf(stderr, "build failed:\n%s", diags.ToString().c_str());
    return false;
  }
  Result<RouterStats> stats = program.value().RunTrace(trace, diags);
  if (!stats.ok()) {
    std::fprintf(stderr, "run failed:\n%s", diags.ToString().c_str());
    return false;
  }
  *out = stats.value();
  return true;
}

}  // namespace

int main() {
  TraceOptions trace_options;
  trace_options.count = 500;
  std::vector<TracePacket> trace = GenerateTrace(trace_options);
  TraceExpectation expect = ExpectationOf(trace);

  std::printf("trace: %zu packets (expected: %u forwarded, %u ARP replies, %u drops)\n\n",
              trace.size(), expect.out, static_cast<unsigned>(expect.tx - expect.out),
              expect.drop);

  RouterStats modular;
  if (!RunRouter("ClackRouter", trace, &modular)) {
    return 1;
  }
  std::printf("ClackRouter (24 Knit component instances):\n");
  std::printf("  port counters:   in0=%u in1=%u\n", modular.in0, modular.in1);
  std::printf("  classified IPv4: %u\n", modular.ip);
  std::printf("  forwarded:       %u\n", modular.out);
  std::printf("  discarded:       %u\n", modular.drop);
  std::printf("  transmitted:     %u frames\n", modular.tx_count);
  std::printf("  %0.0f cycles/packet, %0.0f i-fetch stall cycles/packet, %d bytes text\n\n",
              modular.CyclesPerPacket(), modular.StallsPerPacket(), modular.text_bytes);

  RouterStats flattened;
  if (!RunRouter("ClackRouterFlat", trace, &flattened)) {
    return 1;
  }
  std::printf("ClackRouterFlat (same 24 instances, flattened into one translation unit):\n");
  std::printf("  %0.0f cycles/packet (%.1f%% faster), %d bytes text\n",
              flattened.CyclesPerPacket(),
              100.0 * (1.0 - flattened.CyclesPerPacket() / modular.CyclesPerPacket()),
              flattened.text_bytes);
  std::printf("  identical forwarding behaviour: %s (tx hash %016llx)\n",
              flattened.tx_hash == modular.tx_hash ? "yes" : "NO!",
              static_cast<unsigned long long>(flattened.tx_hash));
  return 0;
}
