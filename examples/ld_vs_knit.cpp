// Figure 1, as a runnable demo: why the bag-of-objects linker cannot express
// interposition, and how units can.
//
// Scenario (paper section 2.1/2.3): a `client` object calls serve(); a `server`
// object provides serve(). We want to interpose a logging component between them.
// The logger must both IMPORT serve() and EXPORT serve() — with ld's single global
// namespace that is either a multiple-definition error or an unresolvable puzzle;
// with Knit it is a rename away.
//
// Run: ./build/examples/ld_vs_knit
#include <cstdio>

#include "src/driver/knitc.h"
#include "src/ld/link.h"
#include "src/minic/cparser.h"
#include "src/minic/sema.h"
#include "src/vm/codegen.h"
#include "src/vm/machine.h"

using namespace knit;

namespace {

Result<ObjectFile> Compile(const char* name, const std::string& source, Diagnostics& diags) {
  TypeTable types;  // per-object table is fine: these objects share no structs
  Result<TranslationUnit> unit = ParseCString(source, name, types, diags);
  if (!unit.ok()) {
    return Result<ObjectFile>::Failure();
  }
  Result<SemaInfo> info = AnalyzeTranslationUnit(unit.value(), types, diags);
  if (!info.ok()) {
    return Result<ObjectFile>::Failure();
  }
  return CompileTranslationUnit(unit.value(), info.value(), types, CodegenOptions(), name,
                                diags);
}

const char* kClient =
    "extern int serve(int x);\n"
    "int client_run(int x) { return serve(x); }\n";
const char* kServer = "int serve(int x) { return x * 10; }\n";
const char* kLogger =
    "extern int serve(int x);\n"         // the import...
    "static int g_calls = 0;\n"
    "int serve(int x) {\n"               // ...and the export: same global name!
    "  g_calls++;\n"
    "  return serve(x) + 1;\n"
    "}\n";

}  // namespace

int main() {
  std::printf("=== Figure 1: interposition under the bag-of-objects linker ===\n\n");

  // Plain client+server works fine with ld.
  {
    Diagnostics diags;
    std::vector<LinkItem> items;
    items.emplace_back(Compile("client.o", kClient, diags).take());
    items.emplace_back(Compile("server.o", kServer, diags).take());
    Result<LinkResult> linked = Link(std::move(items), LinkOptions(), diags);
    Machine machine(linked.value().image);
    std::printf("client + server via ld: client_run(4) = %u (works)\n",
                machine.Call("client_run", {4}).value);
  }

  // Interposition attempt 1: a logger that declares serve() extern and also
  // defines serve(). That is legal C — but the name can only mean ONE thing in the
  // global namespace, so the logger's internal call binds to itself: instead of
  // interposing, it recurses forever. (This is the paper's "the bag of objects
  // does not provide enough linking information"; Figure 1c's ambiguous tabs.)
  {
    Diagnostics diags;
    std::vector<LinkItem> items;
    items.emplace_back(Compile("client.o", kClient, diags).take());
    items.emplace_back(Compile("logger.o", kLogger, diags).take());
    Result<LinkResult> linked = Link(std::move(items), LinkOptions(), diags);
    Machine machine(linked.value().image);
    RunResult run = machine.Call("client_run", {4});
    std::printf("\nclient + self-referential logger: client_run(4) -> %s\n",
                run.ok ? "returned (?!)" : "runtime failure:");
    std::printf("  %s\n", run.error.c_str());
  }

  // Interposition attempt 2: rename by hand (serve_inner) and add a second server
  // object under the new name? Then the ORIGINAL server must be recompiled or its
  // object rewritten — and linking both servers unmodified is a multiple
  // definition error:
  {
    Diagnostics diags;
    std::vector<LinkItem> items;
    items.emplace_back(Compile("server.o", kServer, diags).take());
    items.emplace_back(Compile("server2.o", kServer, diags).take());
    Result<LinkResult> linked = Link(std::move(items), LinkOptions(), diags);
    std::printf("\nlinking two serve() definitions: %s\n",
                linked.ok() ? "linked (?!)" : "ld reports:");
    std::printf("  %s\n", diags.FirstError().c_str());
  }

  // With Knit: the same C sources, a rename declaration, and a link graph.
  std::printf("\n=== The same interposition with Knit units ===\n\n");
  const char* knit_text = R"(
bundletype Serve = { serve }
unit Client = {
  imports [ srv : Serve ];
  exports [ run : Run ];
  depends { run needs srv; };
  files { "client.c" };
}
bundletype Run = { client_run }
unit Server = {
  imports [];
  exports [ srv : Serve ];
  files { "server.c" };
}
unit Logger = {
  imports [ inner : Serve ];
  exports [ srv : Serve ];
  depends { srv needs inner; };
  files { "logger.c" };
  rename { inner.serve to serve_inner; };
}
unit App = {
  imports [];
  exports [ run : Run ];
  link {
    [raw] <- Server <- [];
    [logged] <- Logger <- [raw];
    [run] <- Client <- [logged];
  };
}
)";
  SourceMap sources;
  sources["client.c"] = kClient;
  sources["server.c"] = kServer;
  sources["logger.c"] =
      "extern int serve_inner(int x);\n"
      "static int g_calls = 0;\n"
      "int serve(int x) { g_calls++; return serve_inner(x) + 1; }\n"
      "int logger_calls(void) { return g_calls; }\n";

  Diagnostics diags;
  KnitPipeline pipeline;
  Result<LinkedImage> built = pipeline.Build(knit_text, sources, "App", diags);
  if (!built.ok()) {
    std::fprintf(stderr, "knit build failed:\n%s", diags.ToString().c_str());
    return 1;
  }
  KnitBuildResult app = KnitBuildResultFrom(built.take(), pipeline.metrics());
  Machine machine(app.image);
  machine.Call(app.init_function);
  uint32_t result = machine.Call(app.ExportedSymbol("run", "client_run"), {4}).value;
  std::printf("client -> logger -> server via Knit: client_run(4) = %u "
              "(10*4, +1 from the logger)\n",
              result);
  std::printf("\n\"Using Knit, interposition and configuration changes can be implemented "
              "and tested in just a few minutes.\"\n");
  return 0;
}
