# Empty compiler generated dependencies file for knit_clack.
# This may be replaced when dependencies are built.
