
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clack/corpus.cc" "src/clack/CMakeFiles/knit_clack.dir/corpus.cc.o" "gcc" "src/clack/CMakeFiles/knit_clack.dir/corpus.cc.o.d"
  "/root/repo/src/clack/harness.cc" "src/clack/CMakeFiles/knit_clack.dir/harness.cc.o" "gcc" "src/clack/CMakeFiles/knit_clack.dir/harness.cc.o.d"
  "/root/repo/src/clack/trace.cc" "src/clack/CMakeFiles/knit_clack.dir/trace.cc.o" "gcc" "src/clack/CMakeFiles/knit_clack.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/driver/CMakeFiles/knit_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/minic/CMakeFiles/knit_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/knit_support.dir/DependInfo.cmake"
  "/root/repo/build/src/flatten/CMakeFiles/knit_flatten.dir/DependInfo.cmake"
  "/root/repo/build/src/constraints/CMakeFiles/knit_constraints.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/knit_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/knitsem/CMakeFiles/knit_sem.dir/DependInfo.cmake"
  "/root/repo/build/src/knitlang/CMakeFiles/knit_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/knit_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/ld/CMakeFiles/knit_ld.dir/DependInfo.cmake"
  "/root/repo/build/src/obj/CMakeFiles/knit_obj.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/knit_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
