file(REMOVE_RECURSE
  "libknit_clack.a"
)
