file(REMOVE_RECURSE
  "CMakeFiles/knit_clack.dir/corpus.cc.o"
  "CMakeFiles/knit_clack.dir/corpus.cc.o.d"
  "CMakeFiles/knit_clack.dir/harness.cc.o"
  "CMakeFiles/knit_clack.dir/harness.cc.o.d"
  "CMakeFiles/knit_clack.dir/trace.cc.o"
  "CMakeFiles/knit_clack.dir/trace.cc.o.d"
  "libknit_clack.a"
  "libknit_clack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knit_clack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
