
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/minic/ast.cc" "src/minic/CMakeFiles/knit_minic.dir/ast.cc.o" "gcc" "src/minic/CMakeFiles/knit_minic.dir/ast.cc.o.d"
  "/root/repo/src/minic/clexer.cc" "src/minic/CMakeFiles/knit_minic.dir/clexer.cc.o" "gcc" "src/minic/CMakeFiles/knit_minic.dir/clexer.cc.o.d"
  "/root/repo/src/minic/cparser.cc" "src/minic/CMakeFiles/knit_minic.dir/cparser.cc.o" "gcc" "src/minic/CMakeFiles/knit_minic.dir/cparser.cc.o.d"
  "/root/repo/src/minic/printer.cc" "src/minic/CMakeFiles/knit_minic.dir/printer.cc.o" "gcc" "src/minic/CMakeFiles/knit_minic.dir/printer.cc.o.d"
  "/root/repo/src/minic/sema.cc" "src/minic/CMakeFiles/knit_minic.dir/sema.cc.o" "gcc" "src/minic/CMakeFiles/knit_minic.dir/sema.cc.o.d"
  "/root/repo/src/minic/types.cc" "src/minic/CMakeFiles/knit_minic.dir/types.cc.o" "gcc" "src/minic/CMakeFiles/knit_minic.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/knit_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
