# Empty compiler generated dependencies file for knit_minic.
# This may be replaced when dependencies are built.
