file(REMOVE_RECURSE
  "CMakeFiles/knit_minic.dir/ast.cc.o"
  "CMakeFiles/knit_minic.dir/ast.cc.o.d"
  "CMakeFiles/knit_minic.dir/clexer.cc.o"
  "CMakeFiles/knit_minic.dir/clexer.cc.o.d"
  "CMakeFiles/knit_minic.dir/cparser.cc.o"
  "CMakeFiles/knit_minic.dir/cparser.cc.o.d"
  "CMakeFiles/knit_minic.dir/printer.cc.o"
  "CMakeFiles/knit_minic.dir/printer.cc.o.d"
  "CMakeFiles/knit_minic.dir/sema.cc.o"
  "CMakeFiles/knit_minic.dir/sema.cc.o.d"
  "CMakeFiles/knit_minic.dir/types.cc.o"
  "CMakeFiles/knit_minic.dir/types.cc.o.d"
  "libknit_minic.a"
  "libknit_minic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knit_minic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
