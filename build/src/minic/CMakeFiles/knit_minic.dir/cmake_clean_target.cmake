file(REMOVE_RECURSE
  "libknit_minic.a"
)
