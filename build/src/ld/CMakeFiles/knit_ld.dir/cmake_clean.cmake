file(REMOVE_RECURSE
  "CMakeFiles/knit_ld.dir/link.cc.o"
  "CMakeFiles/knit_ld.dir/link.cc.o.d"
  "libknit_ld.a"
  "libknit_ld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knit_ld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
