# Empty dependencies file for knit_ld.
# This may be replaced when dependencies are built.
