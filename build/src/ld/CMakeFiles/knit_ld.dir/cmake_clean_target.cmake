file(REMOVE_RECURSE
  "libknit_ld.a"
)
