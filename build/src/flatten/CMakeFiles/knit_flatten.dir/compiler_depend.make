# Empty compiler generated dependencies file for knit_flatten.
# This may be replaced when dependencies are built.
