file(REMOVE_RECURSE
  "CMakeFiles/knit_flatten.dir/flatten.cc.o"
  "CMakeFiles/knit_flatten.dir/flatten.cc.o.d"
  "libknit_flatten.a"
  "libknit_flatten.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knit_flatten.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
