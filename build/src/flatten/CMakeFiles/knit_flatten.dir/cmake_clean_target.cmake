file(REMOVE_RECURSE
  "libknit_flatten.a"
)
