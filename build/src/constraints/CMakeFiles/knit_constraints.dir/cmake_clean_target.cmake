file(REMOVE_RECURSE
  "libknit_constraints.a"
)
