# Empty compiler generated dependencies file for knit_constraints.
# This may be replaced when dependencies are built.
