file(REMOVE_RECURSE
  "CMakeFiles/knit_constraints.dir/check.cc.o"
  "CMakeFiles/knit_constraints.dir/check.cc.o.d"
  "libknit_constraints.a"
  "libknit_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knit_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
