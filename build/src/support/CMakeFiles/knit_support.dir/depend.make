# Empty dependencies file for knit_support.
# This may be replaced when dependencies are built.
