file(REMOVE_RECURSE
  "libknit_support.a"
)
