file(REMOVE_RECURSE
  "CMakeFiles/knit_support.dir/diagnostics.cc.o"
  "CMakeFiles/knit_support.dir/diagnostics.cc.o.d"
  "CMakeFiles/knit_support.dir/mangle.cc.o"
  "CMakeFiles/knit_support.dir/mangle.cc.o.d"
  "CMakeFiles/knit_support.dir/strings.cc.o"
  "CMakeFiles/knit_support.dir/strings.cc.o.d"
  "libknit_support.a"
  "libknit_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knit_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
