file(REMOVE_RECURSE
  "CMakeFiles/knit_obj.dir/object.cc.o"
  "CMakeFiles/knit_obj.dir/object.cc.o.d"
  "libknit_obj.a"
  "libknit_obj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knit_obj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
