# Empty compiler generated dependencies file for knit_obj.
# This may be replaced when dependencies are built.
