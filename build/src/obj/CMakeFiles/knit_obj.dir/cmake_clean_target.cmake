file(REMOVE_RECURSE
  "libknit_obj.a"
)
