file(REMOVE_RECURSE
  "libknit_click.a"
)
