# Empty dependencies file for knit_click.
# This may be replaced when dependencies are built.
