file(REMOVE_RECURSE
  "CMakeFiles/knit_click.dir/click_gen.cc.o"
  "CMakeFiles/knit_click.dir/click_gen.cc.o.d"
  "libknit_click.a"
  "libknit_click.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knit_click.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
