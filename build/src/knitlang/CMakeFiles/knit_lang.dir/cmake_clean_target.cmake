file(REMOVE_RECURSE
  "libknit_lang.a"
)
