file(REMOVE_RECURSE
  "CMakeFiles/knit_lang.dir/lexer.cc.o"
  "CMakeFiles/knit_lang.dir/lexer.cc.o.d"
  "CMakeFiles/knit_lang.dir/parser.cc.o"
  "CMakeFiles/knit_lang.dir/parser.cc.o.d"
  "CMakeFiles/knit_lang.dir/printer.cc.o"
  "CMakeFiles/knit_lang.dir/printer.cc.o.d"
  "libknit_lang.a"
  "libknit_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knit_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
