# Empty compiler generated dependencies file for knit_lang.
# This may be replaced when dependencies are built.
