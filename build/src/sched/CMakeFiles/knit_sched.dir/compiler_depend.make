# Empty compiler generated dependencies file for knit_sched.
# This may be replaced when dependencies are built.
