file(REMOVE_RECURSE
  "CMakeFiles/knit_sched.dir/init_sched.cc.o"
  "CMakeFiles/knit_sched.dir/init_sched.cc.o.d"
  "libknit_sched.a"
  "libknit_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knit_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
