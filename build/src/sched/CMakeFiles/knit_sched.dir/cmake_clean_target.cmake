file(REMOVE_RECURSE
  "libknit_sched.a"
)
