file(REMOVE_RECURSE
  "libknit_graph.a"
)
