# Empty compiler generated dependencies file for knit_graph.
# This may be replaced when dependencies are built.
