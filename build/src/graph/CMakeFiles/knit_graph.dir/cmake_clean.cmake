file(REMOVE_RECURSE
  "CMakeFiles/knit_graph.dir/digraph.cc.o"
  "CMakeFiles/knit_graph.dir/digraph.cc.o.d"
  "libknit_graph.a"
  "libknit_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knit_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
