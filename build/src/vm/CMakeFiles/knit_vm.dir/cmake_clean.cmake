file(REMOVE_RECURSE
  "CMakeFiles/knit_vm.dir/bytecode.cc.o"
  "CMakeFiles/knit_vm.dir/bytecode.cc.o.d"
  "CMakeFiles/knit_vm.dir/codegen.cc.o"
  "CMakeFiles/knit_vm.dir/codegen.cc.o.d"
  "CMakeFiles/knit_vm.dir/machine.cc.o"
  "CMakeFiles/knit_vm.dir/machine.cc.o.d"
  "CMakeFiles/knit_vm.dir/optimize.cc.o"
  "CMakeFiles/knit_vm.dir/optimize.cc.o.d"
  "libknit_vm.a"
  "libknit_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knit_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
