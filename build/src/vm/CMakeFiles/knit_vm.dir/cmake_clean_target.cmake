file(REMOVE_RECURSE
  "libknit_vm.a"
)
