# Empty compiler generated dependencies file for knit_vm.
# This may be replaced when dependencies are built.
