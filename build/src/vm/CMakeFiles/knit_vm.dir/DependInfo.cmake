
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/bytecode.cc" "src/vm/CMakeFiles/knit_vm.dir/bytecode.cc.o" "gcc" "src/vm/CMakeFiles/knit_vm.dir/bytecode.cc.o.d"
  "/root/repo/src/vm/codegen.cc" "src/vm/CMakeFiles/knit_vm.dir/codegen.cc.o" "gcc" "src/vm/CMakeFiles/knit_vm.dir/codegen.cc.o.d"
  "/root/repo/src/vm/machine.cc" "src/vm/CMakeFiles/knit_vm.dir/machine.cc.o" "gcc" "src/vm/CMakeFiles/knit_vm.dir/machine.cc.o.d"
  "/root/repo/src/vm/optimize.cc" "src/vm/CMakeFiles/knit_vm.dir/optimize.cc.o" "gcc" "src/vm/CMakeFiles/knit_vm.dir/optimize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/minic/CMakeFiles/knit_minic.dir/DependInfo.cmake"
  "/root/repo/build/src/obj/CMakeFiles/knit_obj.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/knit_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
