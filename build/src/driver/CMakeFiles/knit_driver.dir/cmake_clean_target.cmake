file(REMOVE_RECURSE
  "libknit_driver.a"
)
