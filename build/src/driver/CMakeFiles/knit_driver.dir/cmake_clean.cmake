file(REMOVE_RECURSE
  "CMakeFiles/knit_driver.dir/knitc.cc.o"
  "CMakeFiles/knit_driver.dir/knitc.cc.o.d"
  "libknit_driver.a"
  "libknit_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knit_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
