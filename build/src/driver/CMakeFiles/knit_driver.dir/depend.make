# Empty dependencies file for knit_driver.
# This may be replaced when dependencies are built.
