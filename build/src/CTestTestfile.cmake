# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("graph")
subdirs("knitlang")
subdirs("knitsem")
subdirs("sched")
subdirs("constraints")
subdirs("minic")
subdirs("flatten")
subdirs("obj")
subdirs("ld")
subdirs("vm")
subdirs("driver")
subdirs("oskit")
subdirs("clack")
subdirs("click")
