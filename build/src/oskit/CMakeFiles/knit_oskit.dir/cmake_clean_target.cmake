file(REMOVE_RECURSE
  "libknit_oskit.a"
)
