file(REMOVE_RECURSE
  "CMakeFiles/knit_oskit.dir/corpus.cc.o"
  "CMakeFiles/knit_oskit.dir/corpus.cc.o.d"
  "libknit_oskit.a"
  "libknit_oskit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knit_oskit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
