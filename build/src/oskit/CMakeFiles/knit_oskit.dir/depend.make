# Empty dependencies file for knit_oskit.
# This may be replaced when dependencies are built.
