# Empty compiler generated dependencies file for knit_sem.
# This may be replaced when dependencies are built.
