file(REMOVE_RECURSE
  "libknit_sem.a"
)
