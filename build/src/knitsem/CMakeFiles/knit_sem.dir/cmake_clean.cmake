file(REMOVE_RECURSE
  "CMakeFiles/knit_sem.dir/elaborate.cc.o"
  "CMakeFiles/knit_sem.dir/elaborate.cc.o.d"
  "CMakeFiles/knit_sem.dir/instantiate.cc.o"
  "CMakeFiles/knit_sem.dir/instantiate.cc.o.d"
  "libknit_sem.a"
  "libknit_sem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knit_sem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
