# CMake generated Testfile for 
# Source directory: /root/repo/src/knitsem
# Build directory: /root/repo/build/src/knitsem
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
