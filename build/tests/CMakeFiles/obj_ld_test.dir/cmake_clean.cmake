file(REMOVE_RECURSE
  "CMakeFiles/obj_ld_test.dir/obj_ld_test.cc.o"
  "CMakeFiles/obj_ld_test.dir/obj_ld_test.cc.o.d"
  "obj_ld_test"
  "obj_ld_test.pdb"
  "obj_ld_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obj_ld_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
