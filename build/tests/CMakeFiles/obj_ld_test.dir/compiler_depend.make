# Empty compiler generated dependencies file for obj_ld_test.
# This may be replaced when dependencies are built.
