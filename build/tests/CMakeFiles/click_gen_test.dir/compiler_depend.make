# Empty compiler generated dependencies file for click_gen_test.
# This may be replaced when dependencies are built.
