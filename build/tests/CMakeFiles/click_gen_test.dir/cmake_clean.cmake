file(REMOVE_RECURSE
  "CMakeFiles/click_gen_test.dir/click_gen_test.cc.o"
  "CMakeFiles/click_gen_test.dir/click_gen_test.cc.o.d"
  "click_gen_test"
  "click_gen_test.pdb"
  "click_gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/click_gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
