# Empty dependencies file for oskit_components_test.
# This may be replaced when dependencies are built.
