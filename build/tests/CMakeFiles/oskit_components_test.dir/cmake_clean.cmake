file(REMOVE_RECURSE
  "CMakeFiles/oskit_components_test.dir/oskit_components_test.cc.o"
  "CMakeFiles/oskit_components_test.dir/oskit_components_test.cc.o.d"
  "oskit_components_test"
  "oskit_components_test.pdb"
  "oskit_components_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oskit_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
