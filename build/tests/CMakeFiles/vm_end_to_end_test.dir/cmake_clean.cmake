file(REMOVE_RECURSE
  "CMakeFiles/vm_end_to_end_test.dir/vm_end_to_end_test.cc.o"
  "CMakeFiles/vm_end_to_end_test.dir/vm_end_to_end_test.cc.o.d"
  "vm_end_to_end_test"
  "vm_end_to_end_test.pdb"
  "vm_end_to_end_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_end_to_end_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
