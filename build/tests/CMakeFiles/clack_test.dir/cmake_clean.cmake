file(REMOVE_RECURSE
  "CMakeFiles/clack_test.dir/clack_test.cc.o"
  "CMakeFiles/clack_test.dir/clack_test.cc.o.d"
  "clack_test"
  "clack_test.pdb"
  "clack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
