# Empty compiler generated dependencies file for clack_test.
# This may be replaced when dependencies are built.
