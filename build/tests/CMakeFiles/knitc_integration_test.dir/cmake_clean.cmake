file(REMOVE_RECURSE
  "CMakeFiles/knitc_integration_test.dir/knitc_integration_test.cc.o"
  "CMakeFiles/knitc_integration_test.dir/knitc_integration_test.cc.o.d"
  "knitc_integration_test"
  "knitc_integration_test.pdb"
  "knitc_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knitc_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
