# Empty compiler generated dependencies file for knitc_integration_test.
# This may be replaced when dependencies are built.
