# Empty dependencies file for minic_test.
# This may be replaced when dependencies are built.
