# Empty dependencies file for knitsem_test.
# This may be replaced when dependencies are built.
