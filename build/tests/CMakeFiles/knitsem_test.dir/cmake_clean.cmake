file(REMOVE_RECURSE
  "CMakeFiles/knitsem_test.dir/knitsem_test.cc.o"
  "CMakeFiles/knitsem_test.dir/knitsem_test.cc.o.d"
  "knitsem_test"
  "knitsem_test.pdb"
  "knitsem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knitsem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
