# Empty compiler generated dependencies file for knitlang_test.
# This may be replaced when dependencies are built.
