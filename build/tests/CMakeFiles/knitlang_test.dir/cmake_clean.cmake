file(REMOVE_RECURSE
  "CMakeFiles/knitlang_test.dir/knitlang_test.cc.o"
  "CMakeFiles/knitlang_test.dir/knitlang_test.cc.o.d"
  "knitlang_test"
  "knitlang_test.pdb"
  "knitlang_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knitlang_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
