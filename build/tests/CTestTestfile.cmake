# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/vm_end_to_end_test[1]_include.cmake")
include("/root/repo/build/tests/knitc_integration_test[1]_include.cmake")
include("/root/repo/build/tests/clack_test[1]_include.cmake")
include("/root/repo/build/tests/click_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/knitlang_test[1]_include.cmake")
include("/root/repo/build/tests/knitsem_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/minic_test[1]_include.cmake")
include("/root/repo/build/tests/obj_ld_test[1]_include.cmake")
include("/root/repo/build/tests/flatten_test[1]_include.cmake")
include("/root/repo/build/tests/constraints_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_property_test[1]_include.cmake")
include("/root/repo/build/tests/vm_machine_test[1]_include.cmake")
include("/root/repo/build/tests/driver_test[1]_include.cmake")
include("/root/repo/build/tests/random_config_property_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/click_gen_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/oskit_components_test[1]_include.cmake")
