# Empty dependencies file for knitc.
# This may be replaced when dependencies are built.
