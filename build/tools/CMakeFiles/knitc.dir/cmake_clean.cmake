file(REMOVE_RECURSE
  "CMakeFiles/knitc.dir/knitc_main.cc.o"
  "CMakeFiles/knitc.dir/knitc_main.cc.o.d"
  "knitc"
  "knitc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knitc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
