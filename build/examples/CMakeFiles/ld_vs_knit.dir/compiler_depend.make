# Empty compiler generated dependencies file for ld_vs_knit.
# This may be replaced when dependencies are built.
