file(REMOVE_RECURSE
  "CMakeFiles/ld_vs_knit.dir/ld_vs_knit.cpp.o"
  "CMakeFiles/ld_vs_knit.dir/ld_vs_knit.cpp.o.d"
  "ld_vs_knit"
  "ld_vs_knit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ld_vs_knit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
