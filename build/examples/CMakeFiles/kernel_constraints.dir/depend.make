# Empty dependencies file for kernel_constraints.
# This may be replaced when dependencies are built.
