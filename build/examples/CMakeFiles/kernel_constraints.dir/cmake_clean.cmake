file(REMOVE_RECURSE
  "CMakeFiles/kernel_constraints.dir/kernel_constraints.cpp.o"
  "CMakeFiles/kernel_constraints.dir/kernel_constraints.cpp.o.d"
  "kernel_constraints"
  "kernel_constraints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_constraints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
