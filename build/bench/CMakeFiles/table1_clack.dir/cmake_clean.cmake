file(REMOVE_RECURSE
  "CMakeFiles/table1_clack.dir/table1_clack.cc.o"
  "CMakeFiles/table1_clack.dir/table1_clack.cc.o.d"
  "table1_clack"
  "table1_clack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_clack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
