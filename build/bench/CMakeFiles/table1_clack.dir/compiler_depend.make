# Empty compiler generated dependencies file for table1_clack.
# This may be replaced when dependencies are built.
