file(REMOVE_RECURSE
  "CMakeFiles/micro_boundaries.dir/micro_boundaries.cc.o"
  "CMakeFiles/micro_boundaries.dir/micro_boundaries.cc.o.d"
  "micro_boundaries"
  "micro_boundaries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_boundaries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
