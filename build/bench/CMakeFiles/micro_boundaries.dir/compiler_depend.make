# Empty compiler generated dependencies file for micro_boundaries.
# This may be replaced when dependencies are built.
