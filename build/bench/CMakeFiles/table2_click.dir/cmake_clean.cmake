file(REMOVE_RECURSE
  "CMakeFiles/table2_click.dir/table2_click.cc.o"
  "CMakeFiles/table2_click.dir/table2_click.cc.o.d"
  "table2_click"
  "table2_click.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_click.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
