# Empty compiler generated dependencies file for table2_click.
# This may be replaced when dependencies are built.
