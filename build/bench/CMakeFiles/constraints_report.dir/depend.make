# Empty dependencies file for constraints_report.
# This may be replaced when dependencies are built.
