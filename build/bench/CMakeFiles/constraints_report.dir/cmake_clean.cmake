file(REMOVE_RECURSE
  "CMakeFiles/constraints_report.dir/constraints_report.cc.o"
  "CMakeFiles/constraints_report.dir/constraints_report.cc.o.d"
  "constraints_report"
  "constraints_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constraints_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
