file(REMOVE_RECURSE
  "CMakeFiles/ablation_flatten.dir/ablation_flatten.cc.o"
  "CMakeFiles/ablation_flatten.dir/ablation_flatten.cc.o.d"
  "ablation_flatten"
  "ablation_flatten.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flatten.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
