# Empty compiler generated dependencies file for ablation_flatten.
# This may be replaced when dependencies are built.
