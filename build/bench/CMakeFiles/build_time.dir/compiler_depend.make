# Empty compiler generated dependencies file for build_time.
# This may be replaced when dependencies are built.
