file(REMOVE_RECURSE
  "CMakeFiles/build_time.dir/build_time.cc.o"
  "CMakeFiles/build_time.dir/build_time.cc.o.d"
  "build_time"
  "build_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/build_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
