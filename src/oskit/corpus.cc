#include "src/oskit/corpus.h"

namespace knit {

namespace {

SourceMap BuildSources() {
  SourceMap sources;

  // ---- console stack ----------------------------------------------------------

  sources["vga.c"] = R"(
extern void raw_putc(int c);
void console_putc(int c) { raw_putc(c); }
void console_puts(char *s) {
  while (*s) {
    raw_putc(*s);
    s = s + 1;
  }
}
)";

  sources["serial.c"] = R"(
extern void raw_putc(int c);
static int g_col = 0;
void serial_putchar(int c) {
  raw_putc(c);
  g_col++;
  if (c == 10) g_col = 0;
}
void serial_puts(char *s) {
  while (*s) {
    serial_putchar(*s);
    s = s + 1;
  }
}
)";

  sources["prefixer.c"] = R"(
extern void inner_putc(int c);
extern void inner_puts(char *s);
static int g_at_line_start = 1;
void console_putc(int c) {
  if (g_at_line_start) {
    inner_putc('[');
    inner_putc('k');
    inner_putc(']');
    inner_putc(' ');
    g_at_line_start = 0;
  }
  inner_putc(c);
  if (c == 10) g_at_line_start = 1;
}
void console_puts(char *s) {
  while (*s) {
    console_putc(*s);
    s = s + 1;
  }
}
)";

  sources["locked_console.c"] = R"(
extern void inner_putc(int c);
extern void inner_puts(char *s);
extern void pthread_lock(void);
extern void pthread_unlock(void);
void console_putc(int c) {
  pthread_lock();
  inner_putc(c);
  pthread_unlock();
}
void console_puts(char *s) {
  pthread_lock();
  inner_puts(s);
  pthread_unlock();
}
)";

  sources["pthread.c"] = R"(
static int g_lock_depth = 0;
void pthread_lock(void) { g_lock_depth++; }
void pthread_unlock(void) { g_lock_depth--; }
)";

  sources["intr.c"] = R"(
extern void console_puts(char *s);
static int g_ticks = 0;
void intr_tick(void) {
  g_ticks++;
  console_puts("tick\n");
}
)";

  sources["printf.c"] = R"(
extern void console_putc(int c);
extern void console_puts(char *s);
extern int __vararg(int i);
extern int __vararg_count(void);

static void print_unsigned(unsigned v, unsigned base) {
  char buf[12];
  int n = 0;
  if (v == 0) {
    console_putc('0');
    return;
  }
  while (v) {
    unsigned d = v % base;
    if (d < 10) buf[n] = (char)('0' + d);
    else buf[n] = (char)('a' + (d - 10));
    n++;
    v = v / base;
  }
  while (n > 0) {
    n--;
    console_putc(buf[n]);
  }
}

int kprintf(char *fmt, ...) {
  int arg = 0;
  int i = 0;
  while (fmt[i]) {
    char c = fmt[i];
    if (c != '%') {
      console_putc(c);
      i++;
      continue;
    }
    i++;
    c = fmt[i];
    if (c == 'd') {
      int v = __vararg(arg);
      arg++;
      if (v < 0) {
        console_putc('-');
        print_unsigned((unsigned)(-v), 10);
      } else {
        print_unsigned((unsigned)v, 10);
      }
    } else if (c == 'u') {
      print_unsigned((unsigned)__vararg(arg), 10);
      arg++;
    } else if (c == 'x') {
      print_unsigned((unsigned)__vararg(arg), 16);
      arg++;
    } else if (c == 's') {
      console_puts((char *)__vararg(arg));
      arg++;
    } else if (c == 'c') {
      console_putc(__vararg(arg));
      arg++;
    } else if (c == '%') {
      console_putc('%');
    }
    i++;
  }
  return arg;
}
)";

  // ---- allocators --------------------------------------------------------------

  sources["bump_malloc.c"] = R"(
extern unsigned __sbrk(unsigned n);
static unsigned g_allocated = 0;
void *malloc(unsigned n) {
  if (n == 0) n = 1;
  g_allocated = g_allocated + n;
  return (void *)__sbrk(n);
}
void free(void *p) {
  (void)p;
}
void malloc_init(void) { g_allocated = 0; }
)";

  sources["pool_malloc.c"] = R"(
enum { POOL_BYTES = 65536 };
static char g_pool[POOL_BYTES];
struct blk {
  struct blk *next;
  unsigned size;
};
static struct blk *g_free_list;
static unsigned g_break = 0;

void *malloc(unsigned n) {
  n = (n + 7) & ~7u;
  if (n == 0) n = 8;
  struct blk *b = g_free_list;
  struct blk *prev = (struct blk *)0;
  while (b) {
    if (b->size >= n) {
      if (prev) prev->next = b->next;
      else g_free_list = b->next;
      return (void *)(b + 1);
    }
    prev = b;
    b = b->next;
  }
  unsigned need = n + sizeof(struct blk);
  if (g_break + need > POOL_BYTES) return (void *)0;
  struct blk *nb = (struct blk *)&g_pool[g_break];
  g_break = g_break + need;
  nb->size = n;
  nb->next = (struct blk *)0;
  return (void *)(nb + 1);
}

void free(void *p) {
  if (!p) return;
  struct blk *b = (struct blk *)p - 1;
  b->next = g_free_list;
  g_free_list = b;
}

void malloc_init(void) {
  g_free_list = (struct blk *)0;
  g_break = 0;
}
)";

  // ---- file system + stdio ------------------------------------------------------

  sources["memfs.c"] = R"(
extern void *malloc(unsigned n);
extern void free(void *p);

enum { MAX_FILES = 16, NAME_MAX = 31 };
struct file {
  char name[32];
  char *data;
  unsigned size;
  unsigned cap;
  int used;
};
static struct file g_files[MAX_FILES];

static int str_eq(char *a, char *b) {
  int i = 0;
  while (a[i] && a[i] == b[i]) i++;
  return a[i] == b[i];
}

static void str_copy(char *dst, char *src, int max) {
  int i = 0;
  while (src[i] && i < max) {
    dst[i] = src[i];
    i++;
  }
  dst[i] = (char)0;
}

int fs_open(char *name, int create) {
  for (int i = 0; i < MAX_FILES; i++) {
    if (g_files[i].used && str_eq(g_files[i].name, name)) return i;
  }
  if (!create) return -1;
  for (int i = 0; i < MAX_FILES; i++) {
    if (!g_files[i].used) {
      g_files[i].used = 1;
      str_copy(g_files[i].name, name, NAME_MAX);
      g_files[i].cap = 256;
      g_files[i].data = (char *)malloc(256);
      g_files[i].size = 0;
      return i;
    }
  }
  return -1;
}

int fs_close(int fd) {
  if (fd < 0 || fd >= MAX_FILES) return -1;
  return 0;
}

int fs_size(int fd) {
  if (fd < 0 || fd >= MAX_FILES || !g_files[fd].used) return -1;
  return (int)g_files[fd].size;
}

int fs_read(int fd, unsigned off, char *buf, unsigned n) {
  if (fd < 0 || fd >= MAX_FILES || !g_files[fd].used) return -1;
  struct file *f = &g_files[fd];
  if (off >= f->size) return 0;
  unsigned avail = f->size - off;
  if (n > avail) n = avail;
  for (unsigned i = 0; i < n; i++) buf[i] = f->data[off + i];
  return (int)n;
}

int fs_write(int fd, unsigned off, char *buf, unsigned n) {
  if (fd < 0 || fd >= MAX_FILES || !g_files[fd].used) return -1;
  struct file *f = &g_files[fd];
  unsigned end = off + n;
  if (end > f->cap) {
    unsigned newcap = f->cap;
    while (newcap < end) newcap = newcap * 2;
    char *nd = (char *)malloc(newcap);
    if (!nd) return -1;
    for (unsigned i = 0; i < f->size; i++) nd[i] = f->data[i];
    free((void *)f->data);
    f->data = nd;
    f->cap = newcap;
  }
  for (unsigned i = 0; i < n; i++) f->data[off + i] = buf[i];
  if (end > f->size) f->size = end;
  return (int)n;
}

void fs_init(void) {
  for (int i = 0; i < MAX_FILES; i++) g_files[i].used = 0;
}
)";

  sources["stdio.c"] = R"(
extern int fs_open(char *name, int create);
extern int fs_close(int fd);
extern int fs_read(int fd, unsigned off, char *buf, unsigned n);
extern int fs_write(int fd, unsigned off, char *buf, unsigned n);
extern int fs_size(int fd);
extern int __vararg(int i);
extern int __vararg_count(void);

enum { MAX_OPEN = 8 };
struct filehandle {
  int fd;
  unsigned pos;
  int used;
};
static struct filehandle g_open[MAX_OPEN];

void *fopen(char *name, char *mode) {
  int create = mode[0] == 'w' || mode[0] == 'a';
  int fd = fs_open(name, create);
  if (fd < 0) return (void *)0;
  for (int i = 0; i < MAX_OPEN; i++) {
    if (!g_open[i].used) {
      g_open[i].used = 1;
      g_open[i].fd = fd;
      g_open[i].pos = 0;
      if (mode[0] == 'a') g_open[i].pos = (unsigned)fs_size(fd);
      return (void *)&g_open[i];
    }
  }
  return (void *)0;
}

int fclose(void *f) {
  struct filehandle *fp = (struct filehandle *)f;
  if (!fp) return -1;
  fp->used = 0;
  return fs_close(fp->fd);
}

int fflush(void *f) {
  (void)f;
  return 0;
}

static void put_ch(struct filehandle *fp, char c) {
  char b[2];
  b[0] = c;
  b[1] = (char)0;
  fs_write(fp->fd, fp->pos, b, 1);
  fp->pos += 1;
}

static void put_str(struct filehandle *fp, char *s) {
  int n = 0;
  while (s[n]) n++;
  fs_write(fp->fd, fp->pos, s, (unsigned)n);
  fp->pos += (unsigned)n;
}

static void put_unsigned(struct filehandle *fp, unsigned v) {
  char buf[12];
  int n = 0;
  if (v == 0) {
    put_ch(fp, '0');
    return;
  }
  while (v) {
    buf[n] = (char)('0' + v % 10);
    n++;
    v = v / 10;
  }
  while (n > 0) {
    n--;
    put_ch(fp, buf[n]);
  }
}

int fprintf(void *f, char *fmt, ...) {
  struct filehandle *fp = (struct filehandle *)f;
  if (!fp) return -1;
  int arg = 0;
  int i = 0;
  while (fmt[i]) {
    char c = fmt[i];
    if (c != '%') {
      put_ch(fp, c);
      i++;
      continue;
    }
    i++;
    c = fmt[i];
    if (c == 'd') {
      int v = __vararg(arg);
      arg++;
      if (v < 0) {
        put_ch(fp, '-');
        put_unsigned(fp, (unsigned)(-v));
      } else {
        put_unsigned(fp, (unsigned)v);
      }
    } else if (c == 's') {
      put_str(fp, (char *)__vararg(arg));
      arg++;
    } else if (c == '%') {
      put_ch(fp, '%');
    }
    i++;
  }
  return arg;
}

void stdio_init(void) {
  for (int i = 0; i < MAX_OPEN; i++) g_open[i].used = 0;
}
)";

  // ---- the paper's running example (Figure 6) ------------------------------------

  sources["web.c"] = R"(
extern int serve_cgi(int s, char *path);
extern int serve_file(int s, char *path);

static int strncmp_(char *a, char *b, int n) {
  for (int i = 0; i < n; i++) {
    if (a[i] != b[i]) return a[i] - b[i];
    if (!a[i]) return 0;
  }
  return 0;
}

int serve_web(int s, char *path) {
  if (!strncmp_(path, "/cgi-bin/", 9)) return serve_cgi(s, path + 9);
  return serve_file(s, path);
}
)";

  sources["log.c"] = R"(
extern void *fopen(char *name, char *mode);
extern int fclose(void *f);
extern int fprintf(void *f, char *fmt, ...);
extern int fflush(void *f);
extern int serve_unlogged(int s, char *path);

static void *g_log;

void open_log(void) { g_log = fopen("ServerLog", "a"); }

void close_log(void) {
  if (g_log) {
    fclose(g_log);
    g_log = (void *)0;
  }
}

int serve_logged(int s, char *path) {
  int r = serve_unlogged(s, path);
  fprintf(g_log, "%s -> %d\n", path, r);
  return r;
}
)";

  sources["fileserver.c"] = R"(
extern int fs_open(char *name, int create);
extern int fs_size(int fd);
extern int fs_read(int fd, unsigned off, char *buf, unsigned n);
extern int kprintf(char *fmt, ...);

int serve_web(int s, char *path) {
  (void)s;
  int fd = fs_open(path, 0);
  if (fd < 0) {
    kprintf("404 %s\n", path);
    return -1;
  }
  int size = fs_size(fd);
  kprintf("200 %s (%d bytes)\n", path, size);
  return size;
}
)";

  sources["cgiserver.c"] = R"(
extern int kprintf(char *fmt, ...);

int serve_web(int s, char *path) {
  (void)s;
  unsigned h = 2166136261u;
  int i = 0;
  while (path[i]) {
    h = (h ^ (unsigned)path[i]) * 16777619u;
    i++;
  }
  kprintf("cgi %s -> %x\n", path, h);
  return (int)(h & 0x7FFFFFFF);
}
)";

  // ---- cyclic import demo ---------------------------------------------------------

  sources["ping.c"] = R"(
extern int pong_step(int x);
static int g_ping_ready = 0;
int ping_step(int x) {
  if (x <= 0) return 0;
  return 1 + pong_step(x - 1);
}
void ping_init(void) { g_ping_ready = 1; }
)";

  sources["pong.c"] = R"(
extern int ping_step(int x);
static int g_pong_ready = 0;
int pong_step(int x) {
  if (x <= 0) return 0;
  return 1 + ping_step(x - 1);
}
void pong_init(void) { g_pong_ready = 1; }
)";

  return sources;
}

std::string BuildKnit() {
  return R"KNIT(
// ---- bundle types ------------------------------------------------------------
bundletype RawConsole = { raw_putc }
bundletype Console = { console_putc, console_puts }
bundletype PrintF = { kprintf }
bundletype Malloc = { malloc, free }
bundletype FileSys = { fs_open, fs_close, fs_read, fs_write, fs_size }
bundletype Stdio = { fopen, fclose, fprintf, fflush }
bundletype Serve = { serve_web }
bundletype PThread = { pthread_lock, pthread_unlock }
bundletype Intr = { intr_tick }
bundletype Ping = { ping_step }
bundletype Pong = { pong_step }

flags CFlags = { "-O2", "-Ioskit/include" }

// ---- architectural properties (paper section 4) --------------------------------
property context
type NoContext
type ProcessContext < NoContext

// ---- console components ---------------------------------------------------------
unit VgaConsole = {
  imports [ raw : RawConsole ];
  exports [ console : Console ];
  depends { console needs raw; };
  files { "vga.c" } with flags CFlags;
  constraints { context(console) = NoContext; };
}

unit SerialConsole = {
  imports [ raw : RawConsole ];
  exports [ console : Console ];
  depends { console needs raw; };
  files { "serial.c" } with flags CFlags;
  rename {
    console.console_putc to serial_putchar;
    console.console_puts to serial_puts;
  };
  constraints { context(console) = NoContext; };
}

unit ConsolePrefixer = {
  imports [ inner : Console ];
  exports [ console : Console ];
  depends { console needs inner; };
  files { "prefixer.c" } with flags CFlags;
  rename {
    inner.console_putc to inner_putc;
    inner.console_puts to inner_puts;
  };
  constraints { context(exports) <= context(imports); };
}

unit PThreadLock = {
  imports [];
  exports [ pthread : PThread ];
  files { "pthread.c" } with flags CFlags;
  constraints { context(pthread) = ProcessContext; };
}

unit LockedConsole = {
  imports [ inner : Console, locks : PThread ];
  exports [ console : Console ];
  depends { console needs (inner + locks); };
  files { "locked_console.c" } with flags CFlags;
  rename {
    inner.console_putc to inner_putc;
    inner.console_puts to inner_puts;
  };
  constraints { context(exports) <= context(imports); };
}

unit IntrHandler = {
  imports [ console : Console ];
  exports [ intr : Intr ];
  depends { intr needs console; };
  files { "intr.c" } with flags CFlags;
  constraints {
    context(intr) = NoContext;
    NoContext <= context(console);
  };
}

unit Printf = {
  imports [ console : Console ];
  exports [ printf : PrintF ];
  depends { printf needs console; };
  files { "printf.c" } with flags CFlags;
  constraints { context(exports) <= context(imports); };
}

// ---- allocators ----------------------------------------------------------------
unit BumpMalloc = {
  imports [];
  exports [ malloc : Malloc ];
  initializer malloc_init for malloc;
  files { "bump_malloc.c" } with flags CFlags;
}

unit PoolMalloc = {
  imports [];
  exports [ malloc : Malloc ];
  initializer malloc_init for malloc;
  files { "pool_malloc.c" } with flags CFlags;
}

// ---- file system + stdio ---------------------------------------------------------
unit MemFs = {
  imports [ malloc : Malloc ];
  exports [ fs : FileSys ];
  initializer fs_init for fs;
  depends {
    fs needs malloc;
    fs_init needs ();
  };
  files { "memfs.c" } with flags CFlags;
  constraints { context(exports) <= context(imports); };
}

unit StdioLib = {
  imports [ fs : FileSys ];
  exports [ stdio : Stdio ];
  initializer stdio_init for stdio;
  depends {
    stdio needs fs;
    stdio_init needs ();
  };
  files { "stdio.c" } with flags CFlags;
  constraints { context(exports) <= context(imports); };
}

// ---- the paper's Figure 5, verbatim structure -------------------------------------
unit Web = {
  imports [ serveFile : Serve,
            serveCGI : Serve ];
  exports [ serveWeb : Serve ];
  depends {
    serveWeb needs (serveFile + serveCGI);
  };
  files { "web.c" } with flags CFlags;
  rename {
    serveFile.serve_web to serve_file;
    serveCGI.serve_web to serve_cgi;
  };
  constraints { context(exports) <= context(imports); };
}

unit Log = {
  imports [ serveWeb : Serve,
            stdio : Stdio ];
  exports [ serveLog : Serve ];
  initializer open_log for serveLog;
  finalizer close_log for serveLog;
  depends {
    (open_log + close_log) needs stdio;
    serveLog needs (serveWeb + stdio);
  };
  files { "log.c" } with flags CFlags;
  rename {
    serveWeb.serve_web to serve_unlogged;
    serveLog.serve_web to serve_logged;
  };
  constraints { context(exports) <= context(imports); };
}

unit LogServe = {
  imports [ serveFile : Serve,
            serveCGI : Serve,
            stdio : Stdio ];
  exports [ serveLog : Serve ];
  link {
    [serveWeb] <- Web <- [serveFile, serveCGI];
    [serveLog] <- Log <- [serveWeb, stdio];
  };
}

unit FileServer = {
  imports [ fs : FileSys, printf : PrintF ];
  exports [ serveFile : Serve ];
  depends { serveFile needs (fs + printf); };
  files { "fileserver.c" } with flags CFlags;
  constraints { context(exports) <= context(imports); };
}

unit CgiServer = {
  imports [ printf : PrintF ];
  exports [ serveCGI : Serve ];
  depends { serveCGI needs printf; };
  files { "cgiserver.c" } with flags CFlags;
  constraints { context(exports) <= context(imports); };
}

// ---- cyclic import demos -----------------------------------------------------------
unit PingGood = {
  imports [ pong : Pong ];
  exports [ ping : Ping ];
  initializer ping_init for ping;
  depends { ping needs pong; ping_init needs (); };
  files { "ping.c" } with flags CFlags;
}

unit PongGood = {
  imports [ ping : Ping ];
  exports [ pong : Pong ];
  initializer pong_init for pong;
  depends { pong needs ping; pong_init needs (); };
  files { "pong.c" } with flags CFlags;
}

// Without fine-grained clauses the initializers conservatively need every import,
// which makes the cyclic configuration unschedulable (paper section 3.2).
unit PingBad = {
  imports [ pong : Pong ];
  exports [ ping : Ping ];
  initializer ping_init for ping;
  files { "ping.c" } with flags CFlags;
}

unit PongBad = {
  imports [ ping : Ping ];
  exports [ pong : Pong ];
  initializer pong_init for pong;
  files { "pong.c" } with flags CFlags;
}

// ---- kernels (compound units) --------------------------------------------------------
unit HelloKernel = {
  imports [ raw : RawConsole ];
  exports [ printf : PrintF ];
  link {
    [console] <- VgaConsole <- [raw];
    [printf] <- Printf <- [console];
  };
}

unit PrefixedHelloKernel = {
  imports [ raw : RawConsole ];
  exports [ printf : PrintF ];
  link {
    [vga] <- VgaConsole <- [raw];
    [console] <- ConsolePrefixer <- [vga];
    [printf] <- Printf <- [console];
  };
}

unit SerialHelloKernel = {
  imports [ raw : RawConsole ];
  exports [ printf : PrintF ];
  link {
    [console] <- SerialConsole <- [raw];
    [printf] <- Printf <- [console];
  };
}

unit WebKernel = {
  imports [ raw : RawConsole ];
  exports [ serve : Serve, stdio : Stdio, fs : FileSys ];
  link {
    [console] <- VgaConsole <- [raw];
    [printf] <- Printf <- [console];
    [malloc] <- BumpMalloc <- [];
    [fs] <- MemFs <- [malloc];
    [stdio] <- StdioLib <- [fs];
    [serveFile] <- FileServer <- [fs, printf];
    [serveCGI] <- CgiServer <- [printf];
    [serve] <- LogServe <- [serveFile, serveCGI, stdio];
  };
}

unit WebKernelFlat = {
  imports [ raw : RawConsole ];
  exports [ serve : Serve, stdio : Stdio, fs : FileSys ];
  flatten;
  link {
    [console] <- VgaConsole <- [raw];
    [printf] <- Printf <- [console];
    [malloc] <- BumpMalloc <- [];
    [fs] <- MemFs <- [malloc];
    [stdio] <- StdioLib <- [fs];
    [serveFile] <- FileServer <- [fs, printf];
    [serveCGI] <- CgiServer <- [printf];
    [serve] <- LogServe <- [serveFile, serveCGI, stdio];
  };
}

// Two memory pools feeding two MemFs instances (multiple instantiation).
unit TwoPoolsKernel = {
  imports [];
  exports [ fsA : FileSys, fsB : FileSys ];
  link {
    [mallocA] <- BumpMalloc <- [];
    [mallocB] <- PoolMalloc <- [];
    [fsA] <- MemFs as fsa <- [mallocA];
    [fsB] <- MemFs as fsb <- [mallocB];
  };
}

// Interrupt handler over an interrupt-safe console: passes the checker.
unit IntrKernelGood = {
  imports [ raw : RawConsole ];
  exports [ intr : Intr ];
  link {
    [console] <- VgaConsole <- [raw];
    [intr] <- IntrHandler <- [console];
  };
}

// Interrupt handler over a lock-taking console: the section-4 bug, caught statically.
unit IntrKernelBad = {
  imports [ raw : RawConsole ];
  exports [ intr : Intr ];
  link {
    [vga] <- VgaConsole <- [raw];
    [locks] <- PThreadLock <- [];
    [console] <- LockedConsole <- [vga, locks];
    [intr] <- IntrHandler <- [console];
  };
}

unit CyclicGoodKernel = {
  imports [];
  exports [ ping : Ping ];
  link {
    [ping] <- PingGood <- [pong];
    [pong] <- PongGood <- [ping];
  };
}

unit CyclicBadKernel = {
  imports [];
  exports [ ping : Ping ];
  link {
    [ping] <- PingBad <- [pong];
    [pong] <- PongBad <- [ping];
  };
}
)KNIT";
}

}  // namespace

const SourceMap& OskitSources() {
  static const SourceMap kSources = BuildSources();
  return kSources;
}

const std::string& OskitKnit() {
  static const std::string kKnit = BuildKnit();
  return kKnit;
}

}  // namespace knit
