// The mini-OSKit: a component kit written in MiniC with Knit unit descriptions,
// standing in for the paper's OSKit evaluation substrate. It supplies:
//   * a console stack (raw device -> console -> printf), with an interposing
//     prefixer unit (the paper's "redirect device driver output" scenario),
//   * two interchangeable memory allocators (the paper's memory-pool story),
//   * an in-memory file system and a stdio layer over it,
//   * the paper's running example (Figures 5-6): Web + Log + LogServe, with file
//     and CGI servers,
//   * initialization-order chains (malloc -> fs -> stdio -> log) and a cyclic
//     Ping/Pong pair in two flavours (fine-grained deps = schedulable; coarse
//     deps = genuine cycle),
//   * the §4 constraint-check scenario: interrupt-context code that must not call
//     process-context code (pthread-locked console vs interrupt-safe console).
#ifndef SRC_OSKIT_CORPUS_H_
#define SRC_OSKIT_CORPUS_H_

#include <string>

#include "src/minic/clexer.h"

namespace knit {

// MiniC sources for every mini-OSKit component.
const SourceMap& OskitSources();

// Knit declarations: bundle types, flags, properties, all units, and the demo
// kernels (compound units).
const std::string& OskitKnit();

}  // namespace knit

#endif  // SRC_OSKIT_CORPUS_H_
