// The allocator unit family: four interchangeable heap allocators written in
// MiniC behind one shared `Alloc` bundle type, lifting the VM's historical
// hard-coded bump heap into the component model (the paper's "memory as
// components" claim). The VM keeps only the page-grant primitive (__sbrk,
// 4 KB pages, null on exhaustion); everything an application calls malloc/free
// on is carved by one of these units.
//
//   bundletype Alloc = { malloc, free, alloc_reset }
//
// Shared contract (property-tested in tests/alloc_units_test.cc):
//   * malloc returns 8-byte-aligned storage, disjoint from every other live
//     block, or null on exhaustion — allocation failure NEVER traps;
//   * free accepts any live malloc result (and null, as a no-op);
//   * alloc_reset invalidates every outstanding block in O(1) or better and
//     restarts the allocator (arena rewinds its slab chain; the others at
//     least reconcile the live-byte accounting);
//   * every successful malloc/free reports its bytes through the
//     __alloc_note/__free_note intrinsics, so Machine::bytes_allocated() and
//     the per-component profile rows stay exact sums.
//
// Units:
//   AllocBump      — slab bump pointer; free is a no-op (never reuses)
//   AllocArena     — slab chain with O(1) reset that rewinds and reuses slabs
//   AllocFreelist  — size-class bins (8..2048 bytes, power of two) with
//                    per-class free lists; large blocks get their own grant
//   AllocBuddy     — binary buddy over a 256 KB region, min block 16 bytes,
//                    split on alloc / coalesce with the buddy on free
#ifndef SRC_OSKIT_ALLOC_CORPUS_H_
#define SRC_OSKIT_ALLOC_CORPUS_H_

#include <string>
#include <vector>

#include "src/minic/clexer.h"

namespace knit {

// MiniC sources of the four allocator units.
const SourceMap& AllocSources();

// Knit declarations: the Alloc bundle type and the four unit declarations.
// Self-contained — append to any knit program that wants the family.
const std::string& AllocKnit();

// The family, in config-name form: {"AllocBump", "AllocArena", "AllocFreelist",
// "AllocBuddy"}.
const std::vector<std::string>& AllocUnitNames();

// Maps a CLI short name (bump, arena, freelist, buddy) to the unit name, or ""
// when unknown.
std::string AllocUnitForShortName(const std::string& name);

// Comma-separated CLI short names, for error messages ("bump, arena, ...").
std::string AllocShortNameList();

// Rewrites every Alloc-family provider site ("<- AllocX <-", i.e. link-block
// instantiations — never the unit declarations) in `knit_text` to `unit_name`.
// Returns the number of rewritten sites. This is the one-line config change
// behind `knitc run --alloc=NAME`.
int RewriteAllocProvider(std::string& knit_text, const std::string& unit_name);

}  // namespace knit

#endif  // SRC_OSKIT_ALLOC_CORPUS_H_
