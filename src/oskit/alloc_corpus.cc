#include "src/oskit/alloc_corpus.h"

namespace knit {

namespace {

SourceMap BuildAllocSources() {
  SourceMap sources;

  // Slab bump pointer: the old hard-coded VM heap, now an ordinary unit. free
  // is a no-op (a bump heap never reuses); reset abandons the current slab so
  // the accounting reconciles, at the price of leaking the pages.
  sources["alloc_bump.c"] = R"(
extern unsigned __sbrk(unsigned n);
extern void __alloc_note(unsigned n);
extern void __free_note(unsigned n);

enum { SLAB_BYTES = 65536 };

static unsigned g_cur;
static unsigned g_end;
static unsigned g_live;

void *malloc(unsigned n) {
  if (n == 0) n = 1;
  n = (n + 7) & ~7u;
  if (g_cur + n > g_end) {
    unsigned want = SLAB_BYTES;
    if (n > want) want = n;
    unsigned base = __sbrk(want);
    if (base == 0) return (void *)0;
    g_cur = base;
    g_end = base + ((want + 4095) & ~4095u);
  }
  unsigned p = g_cur;
  g_cur = g_cur + n;
  g_live = g_live + n;
  __alloc_note(n);
  return (void *)p;
}

void free(void *p) {
  (void)p;
}

void alloc_reset(void) {
  __free_note(g_live);
  g_live = 0;
  g_cur = 0;
  g_end = 0;
}

void alloc_init(void) {
  g_cur = 0;
  g_end = 0;
  g_live = 0;
}
)";

  // Arena: a chain of slabs with O(1) reset. Reset rewinds to the first slab
  // and REUSES the whole chain, so a serving shard can recycle its arena
  // between batches without touching __sbrk again.
  sources["alloc_arena.c"] = R"(
extern unsigned __sbrk(unsigned n);
extern void __alloc_note(unsigned n);
extern void __free_note(unsigned n);

enum { SLAB_BYTES = 65536, SLAB_HDR = 16 };

struct slab {
  unsigned next;
  unsigned cap;
  unsigned pad0;
  unsigned pad1;
};

static unsigned g_first;
static unsigned g_cur;
static unsigned g_off;
static unsigned g_live;

static unsigned arena_grow(unsigned need) {
  unsigned want = need + SLAB_HDR;
  if (want < SLAB_BYTES) want = SLAB_BYTES;
  unsigned base = __sbrk(want);
  if (base == 0) return 0;
  struct slab *s = (struct slab *)base;
  s->next = 0;
  s->cap = ((want + 4095) & ~4095u) - SLAB_HDR;
  return base;
}

void *malloc(unsigned n) {
  if (n == 0) n = 1;
  n = (n + 7) & ~7u;
  if (g_cur == 0) {
    g_first = arena_grow(n);
    if (g_first == 0) return (void *)0;
    g_cur = g_first;
    g_off = 0;
  }
  struct slab *s = (struct slab *)g_cur;
  while (g_off + n > s->cap) {
    if (s->next == 0) {
      unsigned grown = arena_grow(n);
      if (grown == 0) return (void *)0;
      s->next = grown;
    }
    g_cur = s->next;
    g_off = 0;
    s = (struct slab *)g_cur;
  }
  unsigned p = g_cur + SLAB_HDR + g_off;
  g_off = g_off + n;
  g_live = g_live + n;
  __alloc_note(n);
  return (void *)p;
}

void free(void *p) {
  (void)p;
}

void alloc_reset(void) {
  __free_note(g_live);
  g_live = 0;
  g_cur = g_first;
  g_off = 0;
}

void alloc_init(void) {
  g_first = 0;
  g_cur = 0;
  g_off = 0;
  g_live = 0;
}
)";

  // Size-class free lists: power-of-two bins from 8 to 2048 bytes; each block
  // carries an 8-byte header (word0 capacity, word1 free-list next) so free
  // knows the class without being told. Requests above 2048 get a dedicated
  // grant and are never binned.
  sources["alloc_freelist.c"] = R"(
extern unsigned __sbrk(unsigned n);
extern void __alloc_note(unsigned n);
extern void __free_note(unsigned n);

enum { NBINS = 9, HDR = 8, SLAB_BYTES = 65536, MAX_CLASS = 2048 };

static unsigned g_bins[NBINS];
static unsigned g_cur;
static unsigned g_end;
static unsigned g_live;

static unsigned class_of(unsigned n) {
  unsigned c = 0;
  unsigned sz = 8;
  while (sz < n) {
    sz = sz << 1;
    c = c + 1;
  }
  return c;
}

static unsigned carve(unsigned bytes) {
  if (g_cur + bytes > g_end) {
    unsigned want = SLAB_BYTES;
    if (bytes > want) want = bytes;
    unsigned base = __sbrk(want);
    if (base == 0) return 0;
    g_cur = base;
    g_end = base + ((want + 4095) & ~4095u);
  }
  unsigned p = g_cur;
  g_cur = g_cur + bytes;
  return p;
}

void *malloc(unsigned n) {
  if (n == 0) n = 1;
  if (n > MAX_CLASS) {
    unsigned big = carve((n + HDR + 7) & ~7u);
    if (big == 0) return (void *)0;
    unsigned *hdr = (unsigned *)big;
    hdr[0] = (n + 7) & ~7u;
    hdr[1] = 0;
    g_live = g_live + hdr[0];
    __alloc_note(hdr[0]);
    return (void *)(big + HDR);
  }
  unsigned c = class_of(n);
  unsigned cap = 8u << c;
  unsigned block = g_bins[c];
  if (block != 0) {
    unsigned *hdr = (unsigned *)block;
    g_bins[c] = hdr[1];
    hdr[1] = 0;
    g_live = g_live + cap;
    __alloc_note(cap);
    return (void *)(block + HDR);
  }
  block = carve(cap + HDR);
  if (block == 0) return (void *)0;
  unsigned *hdr = (unsigned *)block;
  hdr[0] = cap;
  hdr[1] = 0;
  g_live = g_live + cap;
  __alloc_note(cap);
  return (void *)(block + HDR);
}

void free(void *p) {
  if (!p) return;
  unsigned block = (unsigned)p - HDR;
  unsigned *hdr = (unsigned *)block;
  unsigned cap = hdr[0];
  __free_note(cap);
  g_live = g_live - cap;
  if (cap <= MAX_CLASS) {
    unsigned c = class_of(cap);
    hdr[1] = g_bins[c];
    g_bins[c] = block;
  }
}

void alloc_reset(void) {
  __free_note(g_live);
  g_live = 0;
}

void alloc_init(void) {
  for (int i = 0; i < NBINS; i++) g_bins[i] = 0;
  g_cur = 0;
  g_end = 0;
  g_live = 0;
}
)";

  // Binary buddy over one 256 KB region grabbed at init: min block 16 bytes
  // (order 0), split on alloc, coalesce with the buddy on free. The buddy of
  // a block at offset `off` and order o sits at off with bit order_size(o)
  // flipped; merging walks up while the buddy is free at the same order.
  sources["alloc_buddy.c"] = R"(
extern unsigned __sbrk(unsigned n);
extern void __alloc_note(unsigned n);
extern void __free_note(unsigned n);

enum { MIN_BLOCK = 16, MAX_ORDER = 14, ORDERS = 15, REGION_BYTES = 262144 };

static unsigned g_base;
static unsigned g_free[ORDERS];
static unsigned g_live;

static unsigned order_size(unsigned o) {
  return (unsigned)MIN_BLOCK << o;
}

static void push_free(unsigned o, unsigned block) {
  unsigned *hdr = (unsigned *)block;
  hdr[0] = o;
  hdr[1] = g_free[o];
  g_free[o] = block;
}

static int pop_specific(unsigned o, unsigned block) {
  unsigned cur = g_free[o];
  unsigned prev = 0;
  while (cur != 0) {
    unsigned *hdr = (unsigned *)cur;
    if (cur == block) {
      if (prev == 0) {
        g_free[o] = hdr[1];
      } else {
        unsigned *ph = (unsigned *)prev;
        ph[1] = hdr[1];
      }
      return 1;
    }
    prev = cur;
    cur = hdr[1];
  }
  return 0;
}

void *malloc(unsigned n) {
  if (g_base == 0) return (void *)0;
  if (n == 0) n = 1;
  unsigned need = n + 8;
  unsigned o = 0;
  while (o <= MAX_ORDER && order_size(o) < need) o = o + 1;
  if (o > MAX_ORDER) return (void *)0;
  unsigned have = o;
  while (have <= MAX_ORDER && g_free[have] == 0) have = have + 1;
  if (have > MAX_ORDER) return (void *)0;
  unsigned block = g_free[have];
  unsigned *hdr = (unsigned *)block;
  g_free[have] = hdr[1];
  while (have > o) {
    have = have - 1;
    push_free(have, block + order_size(have));
  }
  hdr[0] = o;
  hdr[1] = 0xFFFFFFFFu;
  unsigned cap = order_size(o) - 8;
  g_live = g_live + cap;
  __alloc_note(cap);
  return (void *)(block + 8);
}

void free(void *p) {
  if (!p) return;
  unsigned block = (unsigned)p - 8;
  unsigned *hdr = (unsigned *)block;
  unsigned o = hdr[0];
  unsigned cap = order_size(o) - 8;
  __free_note(cap);
  g_live = g_live - cap;
  while (o < MAX_ORDER) {
    unsigned off = block - g_base;
    unsigned buddy;
    if ((off & order_size(o)) != 0) {
      buddy = block - order_size(o);
    } else {
      buddy = block + order_size(o);
    }
    if (!pop_specific(o, buddy)) break;
    if (buddy < block) block = buddy;
    o = o + 1;
  }
  push_free(o, block);
}

void alloc_reset(void) {
  __free_note(g_live);
  g_live = 0;
  for (int i = 0; i <= MAX_ORDER; i++) g_free[i] = 0;
  if (g_base != 0) push_free(MAX_ORDER, g_base);
}

void alloc_init(void) {
  for (int i = 0; i <= MAX_ORDER; i++) g_free[i] = 0;
  g_live = 0;
  g_base = __sbrk(REGION_BYTES);
  if (g_base != 0) push_free(MAX_ORDER, g_base);
}
)";

  return sources;
}

std::string BuildAllocKnit() {
  return R"KNIT(
// ---- the allocator unit family (see src/oskit/alloc_corpus.h) ----------------
bundletype Alloc = { malloc, free, alloc_reset }

flags AllocFlags = { "-O2" }

unit AllocBump = {
  imports [];
  exports [ alloc : Alloc ];
  initializer alloc_init for alloc;
  files { "alloc_bump.c" } with flags AllocFlags;
}

unit AllocArena = {
  imports [];
  exports [ alloc : Alloc ];
  initializer alloc_init for alloc;
  files { "alloc_arena.c" } with flags AllocFlags;
}

unit AllocFreelist = {
  imports [];
  exports [ alloc : Alloc ];
  initializer alloc_init for alloc;
  files { "alloc_freelist.c" } with flags AllocFlags;
}

unit AllocBuddy = {
  imports [];
  exports [ alloc : Alloc ];
  initializer alloc_init for alloc;
  files { "alloc_buddy.c" } with flags AllocFlags;
}
)KNIT";
}

}  // namespace

const SourceMap& AllocSources() {
  static const SourceMap kSources = BuildAllocSources();
  return kSources;
}

const std::string& AllocKnit() {
  static const std::string kKnit = BuildAllocKnit();
  return kKnit;
}

const std::vector<std::string>& AllocUnitNames() {
  static const std::vector<std::string> kNames = {"AllocBump", "AllocArena", "AllocFreelist",
                                                  "AllocBuddy"};
  return kNames;
}

std::string AllocUnitForShortName(const std::string& name) {
  if (name == "bump") return "AllocBump";
  if (name == "arena") return "AllocArena";
  if (name == "freelist") return "AllocFreelist";
  if (name == "buddy") return "AllocBuddy";
  return "";
}

std::string AllocShortNameList() { return "bump, arena, freelist, buddy"; }

int RewriteAllocProvider(std::string& knit_text, const std::string& unit_name) {
  // Single left-to-right scan (never re-examining replaced text) so a site
  // already rewritten to `unit_name` is not matched and counted again.
  int rewritten = 0;
  const std::string to = "<- " + unit_name + " ";
  size_t at = 0;
  while (true) {
    size_t best = std::string::npos;
    size_t best_len = 0;
    for (const std::string& name : AllocUnitNames()) {
      const std::string from = "<- " + name + " ";
      size_t pos = knit_text.find(from, at);
      if (pos < best) {
        best = pos;
        best_len = from.size();
      }
    }
    if (best == std::string::npos) {
      break;
    }
    knit_text.replace(best, best_len, to);
    at = best + to.size();
    ++rewritten;
  }
  return rewritten;
}

}  // namespace knit
