#include "src/reconfig/reconfig.h"

#include <map>
#include <set>
#include <utility>

namespace knit {
namespace {

int RoundUp(int value, int align) { return (value + align - 1) / align * align; }

// Joins the error entries of a scratch Diagnostics into one report string.
std::string RenderErrors(const Diagnostics& diags, const std::string& fallback) {
  std::string out;
  for (const Diagnostic& diagnostic : diags.entries()) {
    if (diagnostic.severity != Severity::kError) {
      continue;
    }
    if (!out.empty()) {
      out += "; ";
    }
    out += diagnostic.message;
  }
  return out.empty() ? fallback : out;
}

// How one replacement-object symbol resolves against the running image.
struct Resolved {
  enum class Kind { kUnresolved, kFunction, kNative, kData, kBound };
  Kind kind = Kind::kUnresolved;
  int callable = -1;     // kFunction/kNative: callable id; kBound: slot index
  uint32_t address = 0;  // kData
};

}  // namespace

ReconfigEngine::ReconfigEngine(KnitBuildResult& build, Machine& machine, SourceMap sources)
    : build_(build), machine_(machine), sources_(std::move(sources)) {}

SwapReport ReconfigEngine::Request(const SwapSpec& spec) {
  if (!machine_.ComponentQuiescent(spec.instance)) {
    // A frame is live inside the target: never tear a call mid-flight. Queue the
    // request; Pump() retries at the next quiescent point.
    pending_.push_back(Pending{spec, 0});
    SwapReport report;
    report.deferred = true;
    return report;
  }
  SwapReport report = Execute(spec, 0);
  reports_.push_back(report);
  return report;
}

int ReconfigEngine::Pump() {
  int finished = 0;
  std::vector<Pending> still_waiting;
  for (Pending& pending : pending_) {
    ++pending.deferred_packets;
    if (!machine_.ComponentQuiescent(pending.spec.instance)) {
      still_waiting.push_back(std::move(pending));
      continue;
    }
    reports_.push_back(Execute(pending.spec, pending.deferred_packets));
    ++finished;
  }
  pending_ = std::move(still_waiting);
  return finished;
}

SwapReport ReconfigEngine::Execute(const SwapSpec& spec, int deferred_packets) {
  SwapReport report;
  report.deferred_packets = deferred_packets;
  report.version = ++generation_;
  const std::string suffix = "__v" + std::to_string(report.version);
  Image& image = build_.image;
  const long long cycles_before = machine_.cycles();
  auto finish = [&](SwapReport& r) -> SwapReport& {
    r.pause_cycles = machine_.cycles() - cycles_before;
    return r;
  };

  // ---- validate the target ---------------------------------------------------
  if (build_.config.FindInstance(spec.instance) < 0) {
    report.error = "unknown instance '" + spec.instance + "'";
    return finish(report);
  }
  bool has_slots = false;
  for (const BindingSlot& slot : image.bindings) {
    if (slot.component == spec.instance) {
      has_slots = true;
      break;
    }
  }
  if (!has_slots) {
    report.error = "instance '" + spec.instance +
                   "' was not built swappable (no binding slots; build with --swappable)";
    return finish(report);
  }
  if (!machine_.ComponentQuiescent(spec.instance)) {
    report.error = "instance '" + spec.instance + "' is not quiescent";  // defensive
    return finish(report);
  }

  // ---- injection point: link failure ------------------------------------------
  if (machine_.fault_plan().HasSwapPoint("swap-link")) {
    report.error = "injected link failure at swap point 'swap-link'";
    return finish(report);
  }

  // ---- compile the replacement -------------------------------------------------
  Diagnostics diags;
  Result<ReplacementObject> compiled = CompileInstanceReplacement(
      *build_.elaboration, build_.config, spec.instance, spec.source, spec.source_name,
      sources_, suffix, diags);
  if (!compiled.ok()) {
    report.error = RenderErrors(diags, "replacement failed to compile");
    return finish(report);
  }
  ReplacementObject replacement = compiled.take();
  const ObjectFile& object = replacement.object;

  // Unversioned link name -> versioned, for every entry point the running image
  // may need to retarget (exports and init/fini symbols; every versioned name
  // carries `suffix`, so stripping recovers the unversioned form).
  std::map<std::string, std::string> versioned_of = replacement.export_links;
  auto strip = [&](const std::string& name) {
    return name.substr(0, name.size() - suffix.size());
  };
  for (const std::vector<std::string>* list :
       {&replacement.initializers, &replacement.finalizers}) {
    for (const std::string& name : *list) {
      versioned_of.emplace(strip(name), name);
    }
  }
  // Every binding slot of the instance must have a replacement FUNCTION: slots
  // are call targets, so an export that became a data global cannot serve one.
  for (const BindingSlot& slot : image.bindings) {
    if (slot.component != spec.instance) {
      continue;
    }
    auto versioned = versioned_of.find(slot.symbol);
    int symbol_index =
        versioned == versioned_of.end() ? -1 : object.FindSymbol(versioned->second);
    if (symbol_index < 0 ||
        object.symbols[symbol_index].section != ObjSymbol::Section::kText) {
      report.error = "replacement does not define '" + slot.symbol +
                     "' as a function, but the running image calls it through a "
                     "binding slot";
      return finish(report);
    }
    // The call sites behind the slot were compiled against the OLD signature; a
    // replacement that changes arity or drops the return value would corrupt
    // every caller's evaluation stack on the first post-swap call.
    const BytecodeFunction& incoming =
        object.functions[object.symbols[symbol_index].index];
    if (slot.target >= 0 && slot.target < static_cast<int>(image.functions.size())) {
      const BytecodeFunction& current = image.functions[slot.target];
      if (incoming.param_count != current.param_count ||
          incoming.returns_value != current.returns_value ||
          incoming.variadic != current.variadic) {
        auto describe = [](const BytecodeFunction& f) {
          return std::to_string(f.param_count) + (f.variadic ? "+ params, " : " params, ") +
                 (f.returns_value ? "returns a value" : "returns void");
        };
        report.error = "replacement changes the signature of '" + slot.symbol + "' (" +
                       describe(current) + " -> " + describe(incoming) +
                       "); the running callers were compiled against the old one";
        return finish(report);
      }
    }
  }

  // ---- grow the image ----------------------------------------------------------
  // From here on the image's function table grows; every mutation below keeps the
  // RUNNING code correct even if the swap later aborts (the new generation is
  // simply never made reachable).
  const int old_count = static_cast<int>(image.functions.size());
  const int appended = static_cast<int>(object.functions.size());

  // Replacement data lives on the VM heap (the Machine copied image.data into its
  // memory at construction; appending to image.data would not load it).
  uint32_t data_base = 0;
  if (!object.data.empty()) {
    data_base = machine_.Sbrk(static_cast<uint32_t>(object.data.size()));
    if (data_base == 0) {
      machine_.RecoverNestedTrap(machine_.EvalDepth());  // clear the sbrk trap
      report.error = "heap exhausted placing replacement data";
      return finish(report);
    }
    for (size_t i = 0; i < object.data.size(); ++i) {
      machine_.WriteByte(data_base + static_cast<uint32_t>(i), object.data[i]);
    }
  }

  int text_cursor = image.text_bytes;
  for (const BytecodeFunction& function : object.functions) {
    BytecodeFunction placed = function;
    placed.text_offset = text_cursor;
    text_cursor += RoundUp(placed.TextBytes(), 16);  // the linker's text_align
    image.functions.push_back(std::move(placed));
  }
  image.text_bytes = text_cursor;

  // Appending functions shifts native callable ids (natives live at
  // [functions.size(), ...)). Patch every stored native reference in old code and
  // data by the same delta, so the shift is unobservable: direct calls, funcref
  // constants, and linker-recorded funcref data words.
  for (int f = 0; f < old_count; ++f) {
    for (Insn& insn : image.functions[f].code) {
      if (insn.op == Op::kCall && insn.a >= old_count) {
        insn.a += appended;
      } else if (insn.op == Op::kConstInt) {
        uint32_t value = static_cast<uint32_t>(insn.a);
        if (IsFuncRef(value) && DecodeFuncRef(value) >= old_count) {
          insn.a = static_cast<int32_t>(EncodeFuncRef(DecodeFuncRef(value) + appended));
        }
      }
    }
  }
  auto patch_data_word = [&](uint32_t address, uint32_t value) {
    machine_.WriteWord(address, value);
    // Mirror into image.data when the word lives in the linked data image, so a
    // later inspection of the image sees what the machine sees.
    uint64_t offset = static_cast<uint64_t>(address) - image.data_base;
    if (address >= image.data_base && offset + 4 <= image.data.size()) {
      for (int i = 0; i < 4; ++i) {
        image.data[offset + i] = static_cast<uint8_t>((value >> (8 * i)) & 0xFF);
      }
    }
  };
  for (uint32_t address : image.func_ref_data) {
    uint32_t value = machine_.ReadWord(address);
    if (IsFuncRef(value) && DecodeFuncRef(value) >= old_count) {
      patch_data_word(address, EncodeFuncRef(DecodeFuncRef(value) + appended));
    }
  }

  // Resolve the replacement's symbols against the running image. Binding slots
  // win over direct function ids so imports from OTHER swappable instances stay
  // retargetable by their own future swaps.
  std::vector<Resolved> table(object.symbols.size());
  for (size_t s = 0; s < object.symbols.size(); ++s) {
    const ObjSymbol& symbol = object.symbols[s];
    Resolved& resolved = table[s];
    if (symbol.section == ObjSymbol::Section::kText) {
      resolved.kind = Resolved::Kind::kFunction;
      resolved.callable = old_count + symbol.index;
      continue;
    }
    if (symbol.section == ObjSymbol::Section::kData) {
      resolved.kind = Resolved::Kind::kData;
      resolved.address = data_base + static_cast<uint32_t>(symbol.index);
      continue;
    }
    if (!symbol.global) {
      continue;  // dead local reference; nothing can use it
    }
    int slot = image.FindBinding(symbol.name);
    if (slot >= 0) {
      resolved.kind = Resolved::Kind::kBound;
      resolved.callable = slot;
      continue;
    }
    auto function = image.function_symbols.find(symbol.name);
    if (function != image.function_symbols.end()) {
      resolved.kind = Resolved::Kind::kFunction;
      resolved.callable = function->second;
      continue;
    }
    auto data = image.data_symbols.find(symbol.name);
    if (data != image.data_symbols.end()) {
      resolved.kind = Resolved::Kind::kData;
      resolved.address = data->second;
      continue;
    }
    bool is_native = false;
    for (size_t n = 0; n < image.natives.size(); ++n) {
      if (image.natives[n] == symbol.name) {
        resolved.kind = Resolved::Kind::kNative;
        resolved.callable = static_cast<int>(image.functions.size()) + static_cast<int>(n);
        is_native = true;
        break;
      }
    }
    if (!is_native) {
      report.error = "replacement has an undefined reference to '" + symbol.name + "'";
      machine_.RefreshAfterImageGrowth();
      return finish(report);
    }
  }
  auto funcref_of = [&](const Resolved& resolved) -> uint32_t {
    switch (resolved.kind) {
      case Resolved::Kind::kFunction:
      case Resolved::Kind::kNative:
        return EncodeFuncRef(resolved.callable);
      case Resolved::Kind::kBound:
        // Address-of a slot-bound symbol bakes the CURRENT target; the commit
        // step below repoints stored refs when the slot retargets.
        return EncodeFuncRef(image.bindings[resolved.callable].target);
      case Resolved::Kind::kData:
        return resolved.address;
      case Resolved::Kind::kUnresolved:
        break;
    }
    return 0;
  };

  // Patch the appended code, exactly as the linker's Patch phase does.
  for (int f = old_count; f < static_cast<int>(image.functions.size()); ++f) {
    for (Insn& insn : image.functions[f].code) {
      if (insn.op == Op::kConstSym) {
        insn.op = Op::kConstInt;
        insn.a = static_cast<int32_t>(funcref_of(table[insn.a]));
      } else if (insn.op == Op::kCall) {
        const Resolved& resolved = table[insn.a];
        if (resolved.kind == Resolved::Kind::kBound) {
          insn.op = Op::kCallBound;
          insn.a = resolved.callable;
        } else if (resolved.kind == Resolved::Kind::kFunction ||
                   resolved.kind == Resolved::Kind::kNative) {
          insn.a = resolved.callable;
        } else {
          insn.a = -1;  // call of a data symbol: trap, as the linker degrades it
        }
      }
    }
  }
  // Replacement data relocations, against the heap placement.
  for (const DataReloc& reloc : object.data_relocs) {
    uint32_t at = data_base + static_cast<uint32_t>(reloc.data_offset);
    uint32_t addend = machine_.ReadWord(at);
    const Resolved& resolved = table[reloc.symbol];
    machine_.WriteWord(at, funcref_of(resolved) + addend);
    if (resolved.kind != Resolved::Kind::kData &&
        resolved.kind != Resolved::Kind::kUnresolved) {
      image.func_ref_data.push_back(at);
    }
  }

  // Register the versioned globals, remembering them for abandon-cleanup.
  std::vector<std::string> added_functions;
  std::vector<std::string> added_data;
  for (const ObjSymbol& symbol : object.symbols) {
    if (!symbol.global || symbol.section == ObjSymbol::Section::kUndefined) {
      continue;
    }
    if (symbol.section == ObjSymbol::Section::kText) {
      image.function_symbols[symbol.name] = old_count + symbol.index;
      added_functions.push_back(symbol.name);
    } else {
      image.data_symbols[symbol.name] = data_base + static_cast<uint32_t>(symbol.index);
      added_data.push_back(symbol.name);
    }
  }
  // New function ids exist now: extend the machine's profiling attribution and
  // drop branch predictions that captured pre-growth native ids.
  machine_.RefreshAfterImageGrowth();
  report.new_functions = appended;

  auto abandon = [&](const std::string& error) -> SwapReport& {
    // Exact rollback: the binding slots were never touched, so the old
    // generation keeps serving. The appended text is unreachable and leaked by
    // design (no caller enumeration, ever); the versioned symbols are removed.
    for (const std::string& name : added_functions) {
      image.function_symbols.erase(name);
    }
    for (const std::string& name : added_data) {
      image.data_symbols.erase(name);
    }
    report.error = error;
    return finish(report);
  };

  // ---- run the replacement's initializers --------------------------------------
  // Failure semantics mirror failsafe init: a nonzero status or a trap abandons
  // the instance without running ANY of its finalizers (it never finished
  // initializing), and the old generation stays bound.
  if (machine_.fault_plan().HasSwapPoint("swap-init")) {
    return abandon("injected initializer failure at swap point 'swap-init'");
  }
  const bool inject_init_trap = machine_.fault_plan().HasSwapPoint("swap-init-trap");
  if (inject_init_trap && replacement.initializers.empty()) {
    return abandon("injected initializer trap at swap point 'swap-init-trap'");
  }
  const size_t eval_depth = machine_.EvalDepth();
  for (const std::string& name : replacement.initializers) {
    int id = image.FindFunction(name);
    if (inject_init_trap) {
      // Route through the machine's own fault machinery so the trap unwinds the
      // initializer's real frame (and backtrace) rather than being simulated.
      FaultPlan plan = machine_.fault_plan();
      plan.injections.push_back(FaultInjection{name, 1, true, 1});
      machine_.set_fault_plan(plan);
    }
    RunResult result = machine_.CallId(id);
    if (inject_init_trap) {
      FaultPlan plan = machine_.fault_plan();
      plan.injections.pop_back();
      machine_.set_fault_plan(plan);
    }
    if (!result.ok) {
      machine_.RecoverNestedTrap(eval_depth);
      return abandon("initializer '" + name + "' trapped: " + result.error);
    }
    if (image.functions[id].returns_value && result.value != 0) {
      return abandon("initializer '" + name + "' returned status " +
                     std::to_string(result.value));
    }
  }

  // ---- injection point: abort after quiesce, before rebind ---------------------
  if (machine_.fault_plan().HasSwapPoint("swap-quiesce")) {
    // The new generation fully initialized but never goes live; unwind it with
    // its own finalizers (best effort) before abandoning.
    for (const std::string& name : replacement.finalizers) {
      RunResult result = machine_.CallId(image.FindFunction(name));
      if (!result.ok) {
        machine_.RecoverNestedTrap(eval_depth);
        report.warnings.push_back("finalizer '" + name +
                                  "' trapped while unwinding an aborted swap: " +
                                  result.error);
      }
    }
    return abandon("injected abort at swap point 'swap-quiesce' (before rebind)");
  }

  // ---- commit ------------------------------------------------------------------
  // Capture the OLD generation's finalizer ids before any symbol is repointed.
  std::vector<std::pair<std::string, int>> old_finalizers;
  for (const std::string& name : replacement.finalizers) {
    std::string unversioned = strip(name);
    int id = image.FindFunction(unversioned);
    if (id >= 0 && id < old_count) {
      old_finalizers.emplace_back(unversioned, id);
    }
  }

  // Retarget the binding slots: this is the instant the swap happens — every
  // kCallBound site in the image now reaches the new generation.
  std::map<int, int> retargeted;  // old function id -> new function id
  for (BindingSlot& slot : image.bindings) {
    if (slot.component != spec.instance) {
      continue;
    }
    int new_id = image.FindFunction(versioned_of.at(slot.symbol));
    retargeted[slot.target] = new_id;
    slot.target = new_id;
    ++report.rebound_slots;
  }
  // Repoint the unversioned link names so host-side Call(name) and future swaps
  // resolve to the live generation.
  for (const auto& [unversioned, versioned] : versioned_of) {
    auto function = image.function_symbols.find(versioned);
    if (function != image.function_symbols.end()) {
      image.function_symbols[unversioned] = function->second;
      continue;
    }
    auto data = image.data_symbols.find(versioned);
    if (data != image.data_symbols.end()) {
      image.data_symbols[unversioned] = data->second;
    }
  }
  // Stored function refs (address-of an export, dispatch tables in data) still
  // encode old-generation ids; repoint every one the image knows about.
  for (BytecodeFunction& function : image.functions) {
    for (Insn& insn : function.code) {
      if (insn.op != Op::kConstInt) {
        continue;
      }
      uint32_t value = static_cast<uint32_t>(insn.a);
      if (IsFuncRef(value)) {
        auto it = retargeted.find(DecodeFuncRef(value));
        if (it != retargeted.end()) {
          insn.a = static_cast<int32_t>(EncodeFuncRef(it->second));
        }
      }
    }
  }
  for (uint32_t address : image.func_ref_data) {
    uint32_t value = machine_.ReadWord(address);
    if (IsFuncRef(value)) {
      auto it = retargeted.find(DecodeFuncRef(value));
      if (it != retargeted.end()) {
        patch_data_word(address, EncodeFuncRef(it->second));
      }
    }
  }

  // Retire the old generation: run its finalizers (trap-guarded — a misbehaving
  // finalizer downgrades to a warning, never to a dead router).
  for (const auto& [unversioned, id] : old_finalizers) {
    RunResult result = machine_.CallId(id);
    if (!result.ok) {
      machine_.RecoverNestedTrap(eval_depth);
      report.warnings.push_back("old finalizer '" + unversioned +
                                "' trapped during retirement: " + result.error);
    }
  }
  // Drop branch-target predictions that captured old slot targets.
  machine_.RefreshAfterImageGrowth();

  report.ok = true;
  return finish(report);
}

}  // namespace knit
