// Live reconfiguration: hot-swap one component instance of a RUNNING image.
//
// A build with `knitc --swappable=INSTANCE` (or "*") routes every cross-component
// call into INSTANCE through a binding slot (Image::bindings, Op::kCallBound)
// instead of a baked-in function id. The ReconfigEngine exploits that indirection
// to replace the instance while the Machine keeps its heap, its counters, and
// every other component's state:
//
//   1. quiesce   — wait until no live frame is executing inside the target
//                  instance (requests made mid-flight are queued; Pump() retries
//                  at packet boundaries and counts the deferred packets);
//   2. compile   — CompileInstanceReplacement() builds the new unit against the
//                  SAME import/export contract, its globals renamed with a
//                  generation suffix (__vN) so both generations coexist;
//   3. patch-link— append the new functions past the existing text, place its
//                  data on the VM heap, and resolve its imports against the
//                  running image (binding slots first, so swappable-to-swappable
//                  edges stay retargetable);
//   4. init      — run the replacement's initializers on the live machine; a
//                  nonzero status or a trap ABANDONS the new generation with the
//                  binding slots untouched: exact rollback, the old instance
//                  keeps serving ("degraded but running, never a dead router");
//   5. commit    — retarget the instance's binding slots, repoint the unversioned
//                  link symbols, patch stored function refs, then run the OLD
//                  generation's finalizers (trap-guarded).
//
// Fault injection: FaultPlan::swap_points names the swap-path failure points
// ("swap-link", "swap-init", "swap-init-trap", "swap-quiesce"); each must leave
// the machine processing packets with the old instance — the property the
// reconfig tests drive under every injection.
//
// Known costs, by design (documented in DESIGN.md §11): an abandoned or retired
// generation's text is leaked (stubbed ids stay valid, so no caller enumeration
// is ever needed), and appending functions shifts native callable ids — the
// engine patches every stored native reference in the same growth step, so the
// shift is never observable by running code.
#ifndef SRC_RECONFIG_RECONFIG_H_
#define SRC_RECONFIG_RECONFIG_H_

#include <string>
#include <vector>

#include "src/driver/knitc.h"
#include "src/vm/machine.h"

namespace knit {

// One requested hot-swap: replace `instance` (a configuration path such as
// "ClackRouter/RouteLookup") with freshly compiled `source`.
struct SwapSpec {
  std::string instance;
  std::string source;
  std::string source_name = "<swap>";
};

struct SwapReport {
  bool ok = false;        // the swap committed
  bool deferred = false;  // target busy; queued — Pump() will retry
  std::string error;      // failure detail when !ok && !deferred
  std::vector<std::string> warnings;  // non-fatal (e.g. an old finalizer trapped)
  int version = 0;            // generation number of this attempt (suffix __vN)
  int new_functions = 0;      // functions appended to the image
  int rebound_slots = 0;      // binding slots retargeted at commit
  int deferred_packets = 0;   // packet boundaries the request waited through
  long long pause_cycles = 0; // modeled cycles the machine spent paused (init
                              // plus old-generation finalizers)
};

// Drives swaps against one build + machine pair. The engine mutates
// build.image (appending functions, retargeting binding slots) and the
// machine's memory (replacement data lives on the VM heap); the machine sees
// every mutation immediately because it executes the image by reference.
class ReconfigEngine {
 public:
  // `sources` provides #include resolution for replacement sources, exactly as
  // the original build's SourceMap did.
  ReconfigEngine(KnitBuildResult& build, Machine& machine, SourceMap sources);

  // Executes the swap now if the target instance is quiescent; otherwise queues
  // it and returns deferred=true. Requests for unknown instances or instances
  // without binding slots fail immediately.
  SwapReport Request(const SwapSpec& spec);

  // Retries queued swaps; call at quiescent points (the Clack harness calls it
  // between packets). Returns the number of requests that left the queue
  // (committed or failed — inspect reports()). Each call counts one deferred
  // packet boundary against every request still waiting.
  int Pump();

  bool HasPending() const { return !pending_.empty(); }

  // Every finished (non-deferred) report, in completion order.
  const std::vector<SwapReport>& reports() const { return reports_; }
  const SwapReport& last_report() const { return reports_.back(); }

 private:
  SwapReport Execute(const SwapSpec& spec, int deferred_packets);

  KnitBuildResult& build_;
  Machine& machine_;
  SourceMap sources_;
  int generation_ = 0;

  struct Pending {
    SwapSpec spec;
    int deferred_packets = 0;
  };
  std::vector<Pending> pending_;
  std::vector<SwapReport> reports_;
};

}  // namespace knit

#endif  // SRC_RECONFIG_RECONFIG_H_
