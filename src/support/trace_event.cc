#include "src/support/trace_event.h"

#include <cstdio>

namespace knit {

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

// %.3f keeps sub-microsecond precision (cycle counts rendered as µs stay exact
// well past any realistic run length) while staying locale-independent enough:
// snprintf with the C locale always uses '.'.
std::string Number(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  std::string text = buffer;
  // Trim trailing zeros (and a trailing '.') so integers render as integers.
  while (!text.empty() && text.back() == '0') {
    text.pop_back();
  }
  if (!text.empty() && text.back() == '.') {
    text.pop_back();
  }
  return text;
}

}  // namespace

void TraceEventLog::AddComplete(const std::string& name, const std::string& category,
                                double start_us, double duration_us, int pid, int tid) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = 'X';
  event.timestamp_us = start_us;
  event.duration_us = duration_us;
  event.pid = pid;
  event.tid = tid;
  Add(std::move(event));
}

void TraceEventLog::AddBegin(const std::string& name, const std::string& category,
                             double timestamp_us, int pid, int tid) {
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.phase = 'B';
  event.timestamp_us = timestamp_us;
  event.pid = pid;
  event.tid = tid;
  Add(std::move(event));
}

void TraceEventLog::AddEnd(double timestamp_us, int pid, int tid) {
  TraceEvent event;
  event.phase = 'E';
  event.timestamp_us = timestamp_us;
  event.pid = pid;
  event.tid = tid;
  Add(std::move(event));
}

void TraceEventLog::NameProcess(int pid, const std::string& name) {
  TraceEvent event;
  event.name = "process_name";
  event.phase = 'M';
  event.pid = pid;
  event.args.emplace_back("name", name);
  Add(std::move(event));
}

void TraceEventLog::NameThread(int pid, int tid, const std::string& name) {
  TraceEvent event;
  event.name = "thread_name";
  event.phase = 'M';
  event.pid = pid;
  event.tid = tid;
  event.args.emplace_back("name", name);
  Add(std::move(event));
}

std::string TraceEventLog::ToJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events_) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\n{\"ph\":\"";
    out += event.phase;
    out += "\"";
    if (!event.name.empty() || event.phase != 'E') {
      out += ",\"name\":\"" + JsonEscape(event.name) + "\"";
    }
    if (!event.category.empty()) {
      out += ",\"cat\":\"" + JsonEscape(event.category) + "\"";
    }
    if (event.phase != 'M') {
      out += ",\"ts\":" + Number(event.timestamp_us);
    }
    if (event.phase == 'X') {
      out += ",\"dur\":" + Number(event.duration_us);
    }
    out += ",\"pid\":" + std::to_string(event.pid);
    out += ",\"tid\":" + std::to_string(event.tid);
    if (!event.args.empty()) {
      out += ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : event.args) {
        if (!first_arg) {
          out += ",";
        }
        first_arg = false;
        out += "\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

}  // namespace knit
