#include "src/support/executor.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace knit {

Executor::Executor(int jobs) : jobs_(std::max(1, jobs)) {}

int Executor::Run(const std::vector<std::function<void()>>& tasks) {
  int threads = std::min<int>(jobs_, static_cast<int>(tasks.size()));
  if (threads <= 1) {
    for (const auto& task : tasks) {
      task();
    }
    return 1;
  }

  std::atomic<size_t> next{0};
  auto worker = [&] {
    for (;;) {
      size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= tasks.size()) {
        return;
      }
      tasks[index]();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads) - 1);
  for (int i = 1; i < threads; ++i) {
    pool.emplace_back(worker);
  }
  worker();  // the calling thread participates
  for (std::thread& thread : pool) {
    thread.join();
  }
  return threads;
}

}  // namespace knit
