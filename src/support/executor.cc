#include "src/support/executor.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace knit {

Executor::Executor(int jobs) : jobs_(std::max(1, jobs)) {}

void TaskSet::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.push_back(std::move(task));
    ++submitted_;
  }
  cv_.notify_one();
}

int Executor::Run(TaskSet& tasks) {
  auto worker = [&tasks] {
    std::unique_lock<std::mutex> lock(tasks.mu_);
    for (;;) {
      if (!tasks.pending_.empty()) {
        std::function<void()> task = std::move(tasks.pending_.front());
        tasks.pending_.pop_front();
        ++tasks.active_;
        lock.unlock();
        task();
        lock.lock();
        --tasks.active_;
        if (tasks.active_ == 0 && tasks.pending_.empty()) {
          tasks.cv_.notify_all();  // wake idle workers so they can exit
        }
        continue;
      }
      if (tasks.active_ == 0) {
        return;  // nothing pending, nothing running: the set is drained
      }
      tasks.cv_.wait(lock);
    }
  };

  if (jobs_ <= 1) {
    worker();
    return 1;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(jobs_) - 1);
  for (int i = 1; i < jobs_; ++i) {
    pool.emplace_back(worker);
  }
  worker();  // the calling thread participates
  for (std::thread& thread : pool) {
    thread.join();
  }
  return jobs_;
}

int Executor::Run(const std::vector<std::function<void()>>& tasks) {
  int threads = std::min<int>(jobs_, static_cast<int>(tasks.size()));
  if (threads <= 1) {
    for (const auto& task : tasks) {
      task();
    }
    return 1;
  }

  std::atomic<size_t> next{0};
  auto worker = [&] {
    for (;;) {
      size_t index = next.fetch_add(1, std::memory_order_relaxed);
      if (index >= tasks.size()) {
        return;
      }
      tasks[index]();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads) - 1);
  for (int i = 1; i < threads; ++i) {
    pool.emplace_back(worker);
  }
  worker();  // the calling thread participates
  for (std::thread& thread : pool) {
    thread.join();
  }
  return threads;
}

}  // namespace knit
