#include "src/support/strings.h"

#include <cctype>

namespace knit {

std::string Join(const std::vector<std::string>& parts, std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += separator;
    }
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char separator) {
  std::vector<std::string> out;
  if (text.empty()) {
    return out;
  }
  size_t start = 0;
  while (true) {
    size_t pos = text.find(separator, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

bool IsIdentifier(std::string_view text) {
  if (text.empty()) {
    return false;
  }
  if (std::isalpha(static_cast<unsigned char>(text[0])) == 0 && text[0] != '_') {
    return false;
  }
  for (char c : text.substr(1)) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_') {
      return false;
    }
  }
  return true;
}

std::string WithThousands(long long value) {
  bool negative = value < 0;
  unsigned long long magnitude =
      negative ? 0ULL - static_cast<unsigned long long>(value) : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(magnitude);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) {
      out += ',';
    }
    out += *it;
    ++count;
  }
  if (negative) {
    out += '-';
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace knit
