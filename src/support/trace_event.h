// Chrome trace-event JSON emission (the format understood by chrome://tracing,
// Perfetto's legacy importer, and speedscope). The toolchain uses it for two
// timelines: pipeline stage timings (PipelineMetrics) and the VM profiler's
// per-component flame chart (ComponentProfile) — see DESIGN.md §9.
//
// Only the small subset of the spec we emit is modeled:
//   "X" complete events  — a named span with an explicit duration
//   "B"/"E" duration events — begin/end pairs that nest into a flame chart
//   "M" metadata events  — process/thread names for readable track labels
//
// Timestamps are microseconds (double). Callers that measure in modeled VM
// cycles simply write cycles as microseconds — the viewer's absolute unit label
// is wrong but every ratio, width, and nesting relationship is exact, which is
// what the cost model promises anyway.
#ifndef SRC_SUPPORT_TRACE_EVENT_H_
#define SRC_SUPPORT_TRACE_EVENT_H_

#include <string>
#include <vector>

namespace knit {

struct TraceEvent {
  std::string name;
  std::string category;  // "cat" — viewers use it for filtering
  char phase = 'X';      // X (complete), B (begin), E (end), M (metadata)
  double timestamp_us = 0;
  double duration_us = 0;  // X events only
  int pid = 1;
  int tid = 1;
  // Optional free-form args, already-escaped JSON *values* are not accepted:
  // both key and value are escaped on render. Rendered as {"key":"value",...}.
  std::vector<std::pair<std::string, std::string>> args;
};

// Escapes a string for inclusion inside a JSON string literal (quotes not
// included). Control characters become \u00XX.
std::string JsonEscape(const std::string& text);

// An append-only event log that renders as a JSON object with a traceEvents
// array ({"traceEvents":[...],"displayTimeUnit":"ms"}). Deterministic: output
// depends only on the appended events, in order.
class TraceEventLog {
 public:
  void Add(TraceEvent event) { events_.push_back(std::move(event)); }

  // Convenience appenders.
  void AddComplete(const std::string& name, const std::string& category, double start_us,
                   double duration_us, int pid = 1, int tid = 1);
  void AddBegin(const std::string& name, const std::string& category, double timestamp_us,
                int pid = 1, int tid = 1);
  void AddEnd(double timestamp_us, int pid = 1, int tid = 1);
  // Names a process/thread track ("M" metadata: process_name / thread_name).
  void NameProcess(int pid, const std::string& name);
  void NameThread(int pid, int tid, const std::string& name);

  size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  // Renders the full JSON document.
  std::string ToJson() const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace knit

#endif  // SRC_SUPPORT_TRACE_EVENT_H_
