// Small string helpers used across the toolchain.
#ifndef SRC_SUPPORT_STRINGS_H_
#define SRC_SUPPORT_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace knit {

// Joins the elements of `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts, std::string_view separator);

// Splits on a single character; never returns empty trailing element for a trailing
// separator-free string ("a,b" -> {"a","b"}, "" -> {}).
std::vector<std::string> Split(std::string_view text, char separator);

// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// True for [A-Za-z_][A-Za-z0-9_]*.
bool IsIdentifier(std::string_view text);

// Formats an integer with thousands separators ("109464" -> "109,464") for report
// tables.
std::string WithThousands(long long value);

}  // namespace knit

#endif  // SRC_SUPPORT_STRINGS_H_
