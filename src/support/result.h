// Result<T>: the library's exception-free error channel. A failing operation reports
// detail into a Diagnostics sink and returns Result<T>::Failure(); callers branch on
// ok(). Result<void> is specialized as a plain success/failure flag.
//
// value()/take() on a failed Result abort with a message in every build mode: the
// misuse would otherwise be silent UB exactly on failure paths, which are the
// least-tested ones.
#ifndef SRC_SUPPORT_RESULT_H_
#define SRC_SUPPORT_RESULT_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

namespace knit {

template <typename T>
class Result {
 public:
  // Implicit from a value: `return some_t;` reads naturally at call sites.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  static Result Failure() { return Result(); }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  T& value() {
    RequireOk("value()");
    return *value_;
  }
  const T& value() const {
    RequireOk("value()");
    return *value_;
  }

  T&& take() {
    RequireOk("take()");
    return std::move(*value_);
  }

  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  Result() = default;

  void RequireOk(const char* accessor) const {
    if (!ok()) {
      std::fprintf(stderr, "fatal: Result::%s called on a failed Result\n", accessor);
      std::abort();
    }
  }

  std::optional<T> value_;
};

template <>
class Result<void> {
 public:
  static Result Success() { return Result(true); }
  static Result Failure() { return Result(false); }

  bool ok() const { return ok_; }
  explicit operator bool() const { return ok_; }

 private:
  explicit Result(bool ok) : ok_(ok) {}

  bool ok_;
};

}  // namespace knit

#endif  // SRC_SUPPORT_RESULT_H_
