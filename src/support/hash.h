// Content hashing for the build cache (src/driver/build_cache.h): an incremental
// FNV-1a 64-bit hasher. Not cryptographic — cache keys only need to make accidental
// collisions between different (source text, option) combinations vanishingly
// unlikely, and FNV is fully deterministic across platforms and runs, which is what
// the pipeline's reproducibility guarantee needs.
#ifndef SRC_SUPPORT_HASH_H_
#define SRC_SUPPORT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace knit {

class Fnv64 {
 public:
  static constexpr uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr uint64_t kPrime = 0x100000001b3ULL;

  Fnv64& Update(const void* bytes, size_t size) {
    const auto* p = static_cast<const unsigned char*>(bytes);
    for (size_t i = 0; i < size; ++i) {
      state_ = (state_ ^ p[i]) * kPrime;
    }
    return *this;
  }

  // Length-prefixed, so Update("ab").Update("c") != Update("a").Update("bc").
  Fnv64& Update(std::string_view text) {
    Update(static_cast<uint64_t>(text.size()));
    return Update(text.data(), text.size());
  }
  Fnv64& Update(const char* text) { return Update(std::string_view(text)); }
  Fnv64& Update(const std::string& text) { return Update(std::string_view(text)); }

  Fnv64& Update(uint64_t value) {
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i) {
      bytes[i] = static_cast<unsigned char>(value >> (8 * i));
    }
    return Update(bytes, sizeof(bytes));
  }
  Fnv64& Update(int value) { return Update(static_cast<uint64_t>(static_cast<int64_t>(value))); }
  Fnv64& Update(bool value) { return Update(static_cast<uint64_t>(value ? 1 : 0)); }

  uint64_t digest() const { return state_; }

 private:
  uint64_t state_ = kOffsetBasis;
};

// One-shot convenience.
uint64_t HashBytes(const void* bytes, size_t size);

// 16 lowercase hex digits — stable file names for the on-disk cache.
std::string HexDigest(uint64_t digest);

}  // namespace knit

#endif  // SRC_SUPPORT_HASH_H_
