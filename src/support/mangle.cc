#include "src/support/mangle.h"

#include <cctype>

namespace knit {

std::string SanitizeForSymbol(const std::string& path) {
  std::string out;
  out.reserve(path.size());
  for (char c : path) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_') {
      out += c;
    } else {
      out += '_';
    }
  }
  return out;
}

std::string SanitizedPrefix(const std::string& path) { return SanitizeForSymbol(path) + "__"; }

std::string MangleExport(const std::string& path, const std::string& port,
                         const std::string& symbol) {
  return SanitizeForSymbol(path) + "__" + port + "_" + symbol;
}

std::string MangleInitFini(const std::string& path, const std::string& function) {
  return SanitizeForSymbol(path) + "__" + function;
}

std::string EnvSymbol(const std::string& port, const std::string& symbol) {
  return "env__" + port + "__" + symbol;
}

}  // namespace knit
