// Link-name mangling shared by the driver (objcopy path) and the flattener
// (source-merge path): both must agree on the global name of every instance's
// exported symbol.
#ifndef SRC_SUPPORT_MANGLE_H_
#define SRC_SUPPORT_MANGLE_H_

#include <string>

namespace knit {

// "Top/Log#2" -> "Top_Log_2" (a valid C identifier fragment).
std::string SanitizeForSymbol(const std::string& path);

// Per-instance prefix for unit-local symbols: "Top_Log__".
std::string SanitizedPrefix(const std::string& path);

// The global link name for `symbol` of export bundle `port` of the instance at
// `path`: "Top_Log__serveLog_serve_web".
std::string MangleExport(const std::string& path, const std::string& port,
                         const std::string& symbol);

// The link name of an initializer/finalizer function.
std::string MangleInitFini(const std::string& path, const std::string& function);

// The native (environment) name for `symbol` of a top-level import bundle.
std::string EnvSymbol(const std::string& port, const std::string& symbol);

}  // namespace knit

#endif  // SRC_SUPPORT_MANGLE_H_
