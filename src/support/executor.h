// A small fixed-size thread pool for batch-parallel pipeline stages (the paper's
// ">95% of build time goes to the C compiler" is exactly the stage worth spreading
// across cores). Tasks are pulled from a shared atomic counter — cheap work
// stealing at whole-task granularity — and results are written into caller-owned,
// per-task slots, so the *merge order* is decided by the caller and stays
// deterministic regardless of how many threads ran or which thread ran what.
#ifndef SRC_SUPPORT_EXECUTOR_H_
#define SRC_SUPPORT_EXECUTOR_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <vector>

namespace knit {

class Executor;

// A dynamic task set for Executor::Run(TaskSet&): unlike the fixed-vector Run,
// tasks may be submitted while the set is running — including from inside a
// running task. The serving layer's drain path relies on this: the feed task
// streams packets while the shard workers (submitted to the same set) drain
// their queues, and the last worker to finish submits the aggregation task.
class TaskSet {
 public:
  // Callable before Run (seeding) and from any thread while Run is in flight.
  void Submit(std::function<void()> task);

  // Tasks submitted so far (for reporting; racy while running).
  size_t submitted() const { return submitted_; }

 private:
  friend class Executor;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> pending_;
  int active_ = 0;
  size_t submitted_ = 0;
};

class Executor {
 public:
  // `jobs` < 1 is clamped to 1 (callers validate user input; this is a safety net).
  explicit Executor(int jobs);

  int jobs() const { return jobs_; }

  // Runs every task to completion. With jobs() == 1 (or a single task) the tasks
  // run inline on the calling thread, bit-for-bit the serial pipeline. Tasks must
  // not throw; they communicate failure through their own result slots.
  // Returns the number of threads actually used (including the caller's).
  int Run(const std::vector<std::function<void()>>& tasks);

  // Runs a dynamic task set to completion: returns once every task — including
  // tasks submitted by running tasks — has finished and the set is empty.
  // Always uses jobs() threads (the caller's plus jobs()-1 workers), because
  // the final task count is unknowable up front. Tasks that block on each
  // other (e.g. a bounded queue between a producer task and consumer tasks)
  // must not be submitted in numbers exceeding jobs(), or the set can
  // deadlock — the serving layer sizes its executor as shards + 1 for exactly
  // this reason.
  int Run(TaskSet& tasks);

 private:
  int jobs_;
};

}  // namespace knit

#endif  // SRC_SUPPORT_EXECUTOR_H_
