// A small fixed-size thread pool for batch-parallel pipeline stages (the paper's
// ">95% of build time goes to the C compiler" is exactly the stage worth spreading
// across cores). Tasks are pulled from a shared atomic counter — cheap work
// stealing at whole-task granularity — and results are written into caller-owned,
// per-task slots, so the *merge order* is decided by the caller and stays
// deterministic regardless of how many threads ran or which thread ran what.
#ifndef SRC_SUPPORT_EXECUTOR_H_
#define SRC_SUPPORT_EXECUTOR_H_

#include <functional>
#include <vector>

namespace knit {

class Executor {
 public:
  // `jobs` < 1 is clamped to 1 (callers validate user input; this is a safety net).
  explicit Executor(int jobs);

  int jobs() const { return jobs_; }

  // Runs every task to completion. With jobs() == 1 (or a single task) the tasks
  // run inline on the calling thread, bit-for-bit the serial pipeline. Tasks must
  // not throw; they communicate failure through their own result slots.
  // Returns the number of threads actually used (including the caller's).
  int Run(const std::vector<std::function<void()>>& tasks);

 private:
  int jobs_;
};

}  // namespace knit

#endif  // SRC_SUPPORT_EXECUTOR_H_
