#include "src/support/hash.h"

namespace knit {

uint64_t HashBytes(const void* bytes, size_t size) {
  Fnv64 hasher;
  hasher.Update(bytes, size);
  return hasher.digest();
}

std::string HexDigest(uint64_t digest) {
  static const char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kHex[digest & 0xF];
    digest >>= 4;
  }
  return out;
}

}  // namespace knit
