// Diagnostics: source locations and an error/warning sink shared by every phase of the
// Knit pipeline. The library never throws; phases report into a Diagnostics object and
// callers test has_errors() between phases.
#ifndef SRC_SUPPORT_DIAGNOSTICS_H_
#define SRC_SUPPORT_DIAGNOSTICS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace knit {

// A position in some named input (a .knit source, a MiniC file, or a synthetic buffer).
// Line and column are 1-based; a zero line means "no position" (whole-file or synthetic).
struct SourceLoc {
  std::string file;
  int line = 0;
  int column = 0;

  // Renders "file:line:col", omitting parts that are unknown.
  std::string ToString() const;

  static SourceLoc Unknown() { return SourceLoc{}; }
};

enum class Severity {
  kNote,
  kWarning,
  kError,
};

// Human-readable name for a severity ("note", "warning", "error").
const char* SeverityName(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kError;
  SourceLoc loc;
  std::string message;

  // Renders "file:line:col: severity: message".
  std::string ToString() const;
};

// Accumulates diagnostics across pipeline phases. Not thread-safe by design: each
// compilation owns one Diagnostics.
class Diagnostics {
 public:
  void Error(SourceLoc loc, std::string message);
  void Warning(SourceLoc loc, std::string message);
  void Note(SourceLoc loc, std::string message);

  bool has_errors() const { return error_count_ > 0; }
  size_t error_count() const { return error_count_; }
  size_t warning_count() const { return warning_count_; }

  const std::vector<Diagnostic>& entries() const { return entries_; }

  // All diagnostics, one per line. Empty string if none.
  std::string ToString() const;

  // First error message, or "" — convenient in tests.
  std::string FirstError() const;

  void Clear();

 private:
  void Add(Severity severity, SourceLoc loc, std::string message);

  std::vector<Diagnostic> entries_;
  size_t error_count_ = 0;
  size_t warning_count_ = 0;
};

}  // namespace knit

#endif  // SRC_SUPPORT_DIAGNOSTICS_H_
