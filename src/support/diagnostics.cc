#include "src/support/diagnostics.h"

#include <sstream>

namespace knit {

std::string SourceLoc::ToString() const {
  std::ostringstream out;
  out << (file.empty() ? "<unknown>" : file);
  if (line > 0) {
    out << ":" << line;
    if (column > 0) {
      out << ":" << column;
    }
  }
  return out.str();
}

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string Diagnostic::ToString() const {
  return loc.ToString() + ": " + SeverityName(severity) + ": " + message;
}

void Diagnostics::Error(SourceLoc loc, std::string message) {
  Add(Severity::kError, std::move(loc), std::move(message));
}

void Diagnostics::Warning(SourceLoc loc, std::string message) {
  Add(Severity::kWarning, std::move(loc), std::move(message));
}

void Diagnostics::Note(SourceLoc loc, std::string message) {
  Add(Severity::kNote, std::move(loc), std::move(message));
}

void Diagnostics::Add(Severity severity, SourceLoc loc, std::string message) {
  if (severity == Severity::kError) {
    ++error_count_;
  } else if (severity == Severity::kWarning) {
    ++warning_count_;
  }
  entries_.push_back(Diagnostic{severity, std::move(loc), std::move(message)});
}

std::string Diagnostics::ToString() const {
  std::string out;
  for (const Diagnostic& d : entries_) {
    out += d.ToString();
    out += '\n';
  }
  return out;
}

std::string Diagnostics::FirstError() const {
  for (const Diagnostic& d : entries_) {
    if (d.severity == Severity::kError) {
      return d.message;
    }
  }
  return "";
}

void Diagnostics::Clear() {
  entries_.clear();
  error_count_ = 0;
  warning_count_ = 0;
}

}  // namespace knit
