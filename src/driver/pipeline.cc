#include "src/driver/pipeline.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <set>
#include <string_view>

#include "src/flatten/flatten.h"
#include "src/knitlang/parser.h"
#include "src/minic/cparser.h"
#include "src/minic/sema.h"
#include "src/support/executor.h"
#include "src/support/hash.h"
#include "src/support/mangle.h"
#include "src/support/trace_event.h"
#include "src/vm/codegen.h"

namespace knit {

namespace {

double Seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - since).count();
}

// True when the unit is backed by pre-compiled object code rather than sources.
bool IsObjectUnit(const UnitDecl& unit) {
  return unit.files.size() == 1 && unit.files[0].size() > 2 &&
         unit.files[0].rfind(".o") == unit.files[0].size() - 2;
}

// The C identifier a unit's source uses for (port, symbol), honoring renames.
std::string CNameOf(const UnitDecl& unit, const std::string& port, const std::string& symbol) {
  for (const RenameDecl& rename : unit.renames) {
    if (rename.port == port && rename.symbol == symbol) {
      return rename.c_name;
    }
  }
  return symbol;
}

// Re-reports diagnostics collected by a compile task into the caller's sink,
// preserving severity and order (tasks are merged in task-index order, so the
// combined stream is deterministic for every --jobs value).
void MergeDiagnostics(const Diagnostics& from, Diagnostics& into) {
  for (const Diagnostic& diagnostic : from.entries()) {
    switch (diagnostic.severity) {
      case Severity::kError:
        into.Error(diagnostic.loc, diagnostic.message);
        break;
      case Severity::kWarning:
        into.Warning(diagnostic.loc, diagnostic.message);
        break;
      case Severity::kNote:
        into.Note(diagnostic.loc, diagnostic.message);
        break;
    }
  }
}

// ---- cache keys --------------------------------------------------------------

// Hashes `file` plus its transitive `#include "..."` closure through the in-memory
// SourceMap (include-once, matching the lexer's semantics). A missing file hashes
// as such — the subsequent real compile reports the diagnostic.
void HashFileClosure(const SourceMap& sources, const std::string& file,
                     std::set<std::string>& visited, Fnv64& hasher) {
  if (!visited.insert(file).second) {
    return;
  }
  hasher.Update(file);
  auto it = sources.find(file);
  if (it == sources.end()) {
    hasher.Update("<missing>");
    return;
  }
  const std::string& text = it->second;
  hasher.Update(text);
  for (size_t pos = 0; pos < text.size();) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) {
      end = text.size();
    }
    std::string_view line(text.data() + pos, end - pos);
    size_t i = line.find_first_not_of(" \t");
    if (i != std::string_view::npos && line[i] == '#') {
      size_t open = line.find('"', i);
      size_t close = open == std::string_view::npos ? std::string_view::npos
                                                    : line.find('"', open + 1);
      if (line.find("include", i) != std::string_view::npos &&
          close != std::string_view::npos) {
        HashFileClosure(sources, std::string(line.substr(open + 1, close - open - 1)),
                        visited, hasher);
      }
    }
    pos = end + 1;
  }
}

void HashCodegenOptions(const CodegenOptions& options, Fnv64& hasher) {
  hasher.Update(options.optimize);
  hasher.Update(options.opt_level);
  hasher.Update(options.inline_limit);
  hasher.Update(options.inline_single_call);
  hasher.Update(options.single_call_limit);
  hasher.Update(options.caller_growth);
  hasher.Update(options.profile_digest);
}

// The unit's component interface, as compilation sees it: C names checked by
// FrontUnit and the initializer/finalizer entry points. A bundletype edit that
// adds a symbol must invalidate cached objects even when no .c file changed.
void HashUnitInterface(const Elaboration& elaboration, const UnitDecl& unit, Fnv64& hasher) {
  hasher.Update(unit.name);
  for (const std::vector<PortDecl>* ports : {&unit.exports, &unit.imports}) {
    hasher.Update(static_cast<uint64_t>(ports->size()));
    for (const PortDecl& port : *ports) {
      hasher.Update(port.local_name);
      hasher.Update(port.bundle_type);
      const BundleTypeDecl* bundle = elaboration.FindBundleType(port.bundle_type);
      if (bundle == nullptr) {
        hasher.Update("<unknown-bundle>");
        continue;
      }
      for (const std::string& symbol : bundle->symbols) {
        hasher.Update(symbol);
        hasher.Update(CNameOf(unit, port.local_name, symbol));
      }
    }
  }
  for (const std::vector<InitFiniDecl>* list : {&unit.initializers, &unit.finalizers}) {
    hasher.Update(static_cast<uint64_t>(list->size()));
    for (const InitFiniDecl& decl : *list) {
      hasher.Update(decl.function);
    }
  }
}

// Expands KnitcOptions::swappable ("*" = every instance) against the
// configuration's instance paths; unknown paths are errors.
bool ExpandSwappable(const std::vector<std::string>& swappable, const Configuration& config,
                     std::set<std::string>& out, Diagnostics& diags) {
  bool ok = true;
  for (const std::string& entry : swappable) {
    if (entry == "*") {
      for (const Instance& instance : config.instances) {
        out.insert(instance.path);
      }
      continue;
    }
    if (config.FindInstance(entry) < 0) {
      diags.Error(SourceLoc::Unknown(),
                  "swappable instance '" + entry + "' does not exist in this configuration");
      ok = false;
      continue;
    }
    out.insert(entry);
  }
  return ok;
}

}  // namespace

// ---- metrics -----------------------------------------------------------------

double PipelineMetrics::StageSeconds(const std::string& stage) const {
  double total = 0;
  for (const StageMetrics& row : stages) {
    if (row.stage == stage) {
      total += row.seconds;
    }
  }
  return total;
}

double PipelineMetrics::TotalSeconds() const {
  double total = 0;
  for (const StageMetrics& row : stages) {
    total += row.seconds;
  }
  return total;
}

int PipelineMetrics::CacheHits() const {
  int total = 0;
  for (const StageMetrics& row : stages) {
    total += row.cache_hits;
  }
  return total;
}

int PipelineMetrics::CacheMisses() const {
  int total = 0;
  for (const StageMetrics& row : stages) {
    total += row.cache_misses;
  }
  return total;
}

const StageMetrics* PipelineMetrics::Find(const std::string& stage) const {
  const StageMetrics* found = nullptr;
  for (const StageMetrics& row : stages) {
    if (row.stage == stage) {
      found = &row;
    }
  }
  return found;
}

std::string PipelineMetrics::ToJson() const {
  auto number = [](double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.6f", value);
    return std::string(buffer);
  };
  std::string json = "{\n";
  json += "  \"instances\": " + std::to_string(instance_count) + ",\n";
  json += "  \"objects\": " + std::to_string(object_count) + ",\n";
  json += "  \"flatten_groups\": " + std::to_string(flatten_group_count) + ",\n";
  json += "  \"cache_hits\": " + std::to_string(CacheHits()) + ",\n";
  json += "  \"cache_misses\": " + std::to_string(CacheMisses()) + ",\n";
  json += "  \"total_seconds\": " + number(TotalSeconds()) + ",\n";
  json += "  \"stages\": [\n";
  for (size_t i = 0; i < stages.size(); ++i) {
    const StageMetrics& row = stages[i];
    json += "    {\"stage\": \"" + row.stage + "\", \"seconds\": " + number(row.seconds) +
            ", \"items\": " + std::to_string(row.items) +
            ", \"cache_hits\": " + std::to_string(row.cache_hits) +
            ", \"cache_misses\": " + std::to_string(row.cache_misses) +
            ", \"threads\": " + std::to_string(row.threads) + "}";
    json += i + 1 < stages.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  return json;
}

std::string PipelineMetricsTraceJson(const PipelineMetrics& metrics) {
  TraceEventLog log;
  log.NameProcess(1, "knit pipeline");
  log.NameThread(1, 1, "stages");
  double offset_us = 0;
  for (const StageMetrics& row : metrics.stages) {
    TraceEvent event;
    event.name = row.stage;
    event.category = "pipeline";
    event.phase = 'X';
    event.timestamp_us = offset_us;
    event.duration_us = row.seconds * 1e6;
    event.args.emplace_back("items", std::to_string(row.items));
    event.args.emplace_back("cache_hits", std::to_string(row.cache_hits));
    event.args.emplace_back("cache_misses", std::to_string(row.cache_misses));
    event.args.emplace_back("threads", std::to_string(row.threads));
    log.Add(std::move(event));
    offset_us += row.seconds * 1e6;
  }
  return log.ToJson();
}

// ---- image fingerprint -------------------------------------------------------

uint64_t FingerprintImage(const Image& image) {
  Fnv64 hasher;
  hasher.Update(static_cast<uint64_t>(image.functions.size()));
  for (const BytecodeFunction& function : image.functions) {
    hasher.Update(function.name);
    hasher.Update(function.frame_size);
    hasher.Update(function.param_count);
    hasher.Update(function.variadic);
    hasher.Update(function.returns_value);
    hasher.Update(function.text_offset);
    hasher.Update(static_cast<uint64_t>(function.code.size()));
    for (const Insn& insn : function.code) {
      hasher.Update(static_cast<uint64_t>(static_cast<uint8_t>(insn.op)));
      hasher.Update(insn.a);
      hasher.Update(insn.b);
    }
  }
  hasher.Update(static_cast<uint64_t>(image.natives.size()));
  for (const std::string& native : image.natives) {
    hasher.Update(native);
  }
  hasher.Update(image.data.data(), image.data.size());
  hasher.Update(static_cast<uint64_t>(image.data_base));
  hasher.Update(static_cast<uint64_t>(image.function_symbols.size()));
  for (const auto& [name, id] : image.function_symbols) {
    hasher.Update(name);
    hasher.Update(id);
  }
  hasher.Update(static_cast<uint64_t>(image.data_symbols.size()));
  for (const auto& [name, address] : image.data_symbols) {
    hasher.Update(name);
    hasher.Update(static_cast<uint64_t>(address));
  }
  hasher.Update(static_cast<uint64_t>(image.bindings.size()));
  for (const BindingSlot& slot : image.bindings) {
    hasher.Update(slot.symbol);
    hasher.Update(slot.component);
    hasher.Update(slot.target);
  }
  hasher.Update(image.text_bytes);
  return hasher.digest();
}

// ---- profile recording context -----------------------------------------------

ProfileMeta MakeProfileMeta(const ElaboratedConfig& config, int opt_level) {
  ProfileMeta meta;
  meta.top = config.top_unit;
  meta.opt_level = opt_level;
  Fnv64 hasher;
  hasher.Update("profile-config-v1");
  hasher.Update(config.top_unit);
  hasher.Update(static_cast<uint64_t>(config.config->instances.size()));
  for (const Instance& instance : config.config->instances) {
    hasher.Update(instance.path);
    hasher.Update(instance.unit != nullptr ? instance.unit->name : "<null>");
    hasher.Update(instance.flatten_group);
  }
  meta.config_digest = hasher.digest();
  return meta;
}

const std::vector<std::string>& IntrinsicNatives() {
  static const std::vector<std::string> kIntrinsics = {
      "__sbrk",   "__putchar",       "__cycles", "__abort",      "__vararg",
      "__vararg_count", "__trace",   "__alloc_note", "__free_note",
  };
  return kIntrinsics;
}

// ---- front-end stages --------------------------------------------------------

KnitPipeline::KnitPipeline(KnitcOptions options) : options_(std::move(options)) {
  cache_ = options_.cache != nullptr ? options_.cache
                                     : std::make_shared<BuildCache>(options_.cache_dir);
}

StageMetrics& KnitPipeline::BeginStage(const std::string& stage) {
  StageMetrics row;
  row.stage = stage;
  metrics_.stages.push_back(std::move(row));
  return metrics_.stages.back();
}

Result<ParsedProgram> KnitPipeline::Parse(const std::string& knit_source, Diagnostics& diags) {
  auto t0 = std::chrono::steady_clock::now();
  StageMetrics& metrics = BeginStage("parse");
  Result<KnitProgram> program = ParseKnit(knit_source, "<knit>", diags);
  if (!program.ok()) {
    metrics.seconds = Seconds(t0);
    return Result<ParsedProgram>::Failure();
  }
  ParsedProgram parsed;
  parsed.program = std::make_shared<const KnitProgram>(program.take());
  metrics.items = static_cast<int>(parsed.program->units.size());
  metrics.seconds = Seconds(t0);
  return parsed;
}

Result<ElaboratedConfig> KnitPipeline::Elaborate(const ParsedProgram& parsed,
                                                 const std::string& top_unit,
                                                 Diagnostics& diags) {
  auto t0 = std::chrono::steady_clock::now();
  StageMetrics& metrics = BeginStage("elaborate");
  Result<Elaboration> elaboration = knit::Elaborate(*parsed.program, diags);
  if (!elaboration.ok()) {
    metrics.seconds = Seconds(t0);
    return Result<ElaboratedConfig>::Failure();
  }
  ElaboratedConfig elaborated;
  elaborated.elaboration = std::make_shared<const Elaboration>(elaboration.take());
  elaborated.top_unit = top_unit;
  Result<Configuration> config = Instantiate(*elaborated.elaboration, top_unit, diags);
  if (!config.ok()) {
    metrics.seconds = Seconds(t0);
    return Result<ElaboratedConfig>::Failure();
  }
  elaborated.config = std::make_shared<const Configuration>(config.take());
  metrics.items = static_cast<int>(elaborated.config->instances.size());
  metrics_.instance_count = metrics.items;
  metrics.seconds = Seconds(t0);
  return elaborated;
}

Result<ScheduledConfig> KnitPipeline::Schedule(const ElaboratedConfig& elaborated,
                                               Diagnostics& diags) {
  auto t0 = std::chrono::steady_clock::now();
  StageMetrics& metrics = BeginStage("schedule");
  Result<knit::Schedule> schedule = ScheduleInitFini(*elaborated.config, diags);
  metrics.seconds = Seconds(t0);
  if (!schedule.ok()) {
    return Result<ScheduledConfig>::Failure();
  }
  ScheduledConfig scheduled;
  scheduled.elaborated = elaborated;
  scheduled.schedule = std::make_shared<const knit::Schedule>(schedule.take());
  metrics_.stages.back().items =
      static_cast<int>(scheduled.schedule->initializers.size() +
                       scheduled.schedule->finalizers.size());
  return scheduled;
}

Result<CheckedConfig> KnitPipeline::Check(const ScheduledConfig& scheduled, Diagnostics& diags) {
  auto t0 = std::chrono::steady_clock::now();
  StageMetrics& metrics = BeginStage("check");
  CheckedConfig checked;
  checked.scheduled = scheduled;
  if (!options_.check_constraints) {
    checked.solution = std::make_shared<const ConstraintSolution>();
    metrics.seconds = Seconds(t0);
    return checked;
  }
  ConstraintSolution solution;
  Result<void> result = CheckConstraints(*scheduled.elaborated.elaboration,
                                         *scheduled.elaborated.config, diags, &solution);
  metrics.items = static_cast<int>(scheduled.elaborated.config->instances.size());
  metrics.seconds = Seconds(t0);
  if (!result.ok()) {
    return Result<CheckedConfig>::Failure();
  }
  checked.solution = std::make_shared<const ConstraintSolution>(std::move(solution));
  return checked;
}

// ---- compile stage -----------------------------------------------------------

namespace {

// One compile task's output. Tasks never touch shared mutable state other than the
// (internally locked) BuildCache; everything else lands here and is merged on the
// calling thread in task-index order.
struct TaskResult {
  Diagnostics diags;
  Result<ObjectFile> object = Result<ObjectFile>::Failure();
  bool cache_hit = false;
  bool cacheable = true;  // prebuilt objects are neither hits nor misses
  // Per-pass optimizer stats from a fresh compile (empty on cache hits); merged
  // into PipelineMetrics::pass_stats in task order.
  std::vector<PassStats> pass_stats;
};

// The compile stage: groups instances, compiles every needed unit/flatten-group
// object (parallel, cached), then merges deterministically — objcopy per
// standalone instance in instance order, flatten groups in group order, and the
// generated init/fini object last.
class CompileStage {
 public:
  CompileStage(const KnitcOptions& options, const CheckedConfig& checked,
               const SourceMap& sources, BuildCache& cache, PipelineMetrics& metrics)
      : options_(options),
        checked_(checked),
        config_(*checked.scheduled.elaborated.config),
        elaboration_(*checked.scheduled.elaborated.elaboration),
        schedule_(*checked.scheduled.schedule),
        sources_(sources),
        cache_(cache),
        metrics_(metrics) {}

  Result<CompiledUnits> Run(Diagnostics& diags) {
    auto t0 = std::chrono::steady_clock::now();
    StageMetrics compile_metrics;
    compile_metrics.stage = "compile";

    AssignGroups();
    if (!ExpandSwappable(options_.swappable, config_, swappable_, diags)) {
      return Result<CompiledUnits>::Failure();
    }
    // A swappable instance must keep its boundary as call sites: pull it out of
    // any flatten group (like object-backed units) so it compiles standalone and
    // its consumed exports stay external — which is what gives them binding
    // slots at link time.
    for (size_t i = 0; i < config_.instances.size(); ++i) {
      if (swappable_.count(config_.instances[i].path) > 0) {
        groups_[i] = -1;
      }
    }
    ComputeExternalExports();
    metrics_.instance_count = static_cast<int>(config_.instances.size());

    // Task list: one task per distinct standalone unit (first-use order), then one
    // per flatten group. Slots are indexed, so the merge below is deterministic no
    // matter which thread ran what.
    std::vector<const UnitDecl*> unit_tasks;
    std::map<std::string, size_t> unit_task_index;
    for (size_t i = 0; i < config_.instances.size(); ++i) {
      const UnitDecl* unit = config_.instances[i].unit;
      if (groups_[i] < 0 && unit_task_index.emplace(unit->name, unit_tasks.size()).second) {
        unit_tasks.push_back(unit);
      }
    }

    std::vector<TaskResult> results(unit_tasks.size() + static_cast<size_t>(group_count_));
    std::vector<std::function<void()>> tasks;
    tasks.reserve(results.size());
    for (size_t t = 0; t < unit_tasks.size(); ++t) {
      tasks.push_back([this, t, &unit_tasks, &results] {
        CompileUnitTask(*unit_tasks[t], results[t]);
      });
    }
    for (int group = 0; group < group_count_; ++group) {
      size_t slot = unit_tasks.size() + static_cast<size_t>(group);
      tasks.push_back([this, group, slot, &results] { CompileGroupTask(group, results[slot]); });
    }

    Executor executor(options_.jobs);
    compile_metrics.threads = executor.Run(tasks);
    compile_metrics.items = static_cast<int>(tasks.size());

    bool failed = false;
    for (const TaskResult& result : results) {
      MergeDiagnostics(result.diags, diags);
      failed = failed || !result.object.ok();
      if (result.cacheable) {
        ++(result.cache_hit ? compile_metrics.cache_hits : compile_metrics.cache_misses);
      }
      MergePassStats(metrics_.pass_stats, result.pass_stats);
    }
    compile_metrics.seconds = Seconds(t0);
    metrics_.stages.push_back(compile_metrics);
    if (failed) {
      return Result<CompiledUnits>::Failure();
    }

    // ---- deterministic merge -------------------------------------------------
    CompiledUnits compiled;
    compiled.checked = checked_;
    compiled.init_function = "knit__init";
    compiled.fini_function = "knit__fini";

    auto t_objcopy = std::chrono::steady_clock::now();
    StageMetrics objcopy_metrics;
    objcopy_metrics.stage = "objcopy";
    for (size_t i = 0; i < config_.instances.size(); ++i) {
      if (groups_[i] >= 0) {
        continue;
      }
      const Instance& instance = config_.instances[i];
      const TaskResult& base = results[unit_task_index.at(instance.unit->name)];
      if (!InstantiateObject(static_cast<int>(i), base.object.value(), compiled, diags)) {
        return Result<CompiledUnits>::Failure();
      }
      ++objcopy_metrics.items;
    }
    objcopy_metrics.seconds = Seconds(t_objcopy);
    metrics_.stages.push_back(objcopy_metrics);

    for (int group = 0; group < group_count_; ++group) {
      const TaskResult& result = results[unit_tasks.size() + static_cast<size_t>(group)];
      if (result.object.value().functions.empty() && result.object.value().symbols.empty() &&
          result.object.value().name.empty()) {
        continue;  // empty group (all members were pulled out as object units)
      }
      compiled.objects.push_back(result.object.value());
      ++metrics_.flatten_group_count;
    }

    auto t_init = std::chrono::steady_clock::now();
    StageMetrics init_metrics;
    init_metrics.stage = "init-object";
    if (!GenerateInitObject(compiled, diags)) {
      return Result<CompiledUnits>::Failure();
    }
    init_metrics.items = 1;
    init_metrics.seconds = Seconds(t_init);
    metrics_.stages.push_back(init_metrics);

    metrics_.object_count =
        static_cast<int>(compiled.objects.size()) - 1;  // init object not counted
    return compiled;
  }

 private:
  // ---- grouping (unchanged semantics from the monolithic driver) -------------

  void AssignGroups() {
    groups_.assign(config_.instances.size(), -1);
    if (options_.flatten_everything) {
      for (size_t i = 0; i < config_.instances.size(); ++i) {
        groups_[i] = 0;
      }
      group_count_ = 1;
      StripObjectUnitsFromGroups();
      return;
    }
    if (!options_.flatten) {
      group_count_ = 0;
      return;
    }
    for (size_t i = 0; i < config_.instances.size(); ++i) {
      groups_[i] = config_.instances[i].flatten_group;
    }
    group_count_ = config_.flatten_group_count;
    StripObjectUnitsFromGroups();
  }

  // Pre-compiled units cannot be source-merged; they fall back to the objcopy path
  // even inside a flatten region.
  void StripObjectUnitsFromGroups() {
    for (size_t i = 0; i < config_.instances.size(); ++i) {
      if (IsObjectUnit(*config_.instances[i].unit)) {
        groups_[i] = -1;
      }
    }
  }

  // Exports that must remain globally visible after compilation: those consumed by
  // an instance in a *different* object (another flatten group or a standalone
  // instance) and those realizing top-level exports. Everything else can be
  // localized/staticized, which is what lets the optimizer inline unit code away
  // entirely inside a flattened group (and is why the paper's flattened router is
  // smaller, not larger, than the modular one).
  void ComputeExternalExports() {
    auto group_of = [&](int i) { return groups_[i] >= 0 ? groups_[i] : -(i + 2); };
    for (size_t i = 0; i < config_.instances.size(); ++i) {
      const Instance& instance = config_.instances[i];
      for (const SupplierRef& supplier : instance.import_suppliers) {
        if (supplier.IsEnvironment()) {
          continue;
        }
        if (group_of(supplier.instance) != group_of(static_cast<int>(i))) {
          external_exports_.insert({supplier.instance, supplier.port});
        }
      }
    }
    for (const SupplierRef& supplier : config_.top_export_suppliers) {
      if (!supplier.IsEnvironment()) {
        external_exports_.insert({supplier.instance, supplier.port});
      }
    }
  }

  // ---- per-instance rename maps ----------------------------------------------

  struct InstanceNames {
    std::map<std::string, std::string> renames;  // C name -> link name
    std::set<std::string> keep_global;           // link names that stay global
  };

  // Resolves the top-level-import environment name for a supplier reference.
  std::string SupplierLinkName(const SupplierRef& supplier, const std::string& symbol) const {
    if (supplier.IsEnvironment()) {
      const PortDecl& port = config_.top->imports[supplier.port];
      return EnvSymbol(port.local_name, symbol);
    }
    const Instance& producer = config_.instances[supplier.instance];
    const PortDecl& port = producer.unit->exports[supplier.port];
    return MangleExport(producer.path, port.local_name, symbol);
  }

  bool BuildInstanceNames(int instance_index, InstanceNames& out, Diagnostics& diags) const {
    const Instance& instance = config_.instances[instance_index];
    const UnitDecl& unit = *instance.unit;

    auto add = [&](const std::string& c_name, const std::string& link_name,
                   const SourceLoc& loc) {
      auto [it, inserted] = out.renames.emplace(c_name, link_name);
      if (!inserted && it->second != link_name) {
        diags.Error(loc, "unit '" + unit.name + "' (instance " + instance.path +
                             "): C identifier '" + c_name +
                             "' is used for two different connections; add a rename "
                             "declaration to disambiguate");
        return false;
      }
      return true;
    };

    for (size_t e = 0; e < unit.exports.size(); ++e) {
      const PortDecl& port = unit.exports[e];
      const BundleTypeDecl* bundle = elaboration_.FindBundleType(port.bundle_type);
      bool external = external_exports_.count({instance_index, static_cast<int>(e)}) > 0;
      for (const std::string& symbol : bundle->symbols) {
        std::string link = MangleExport(instance.path, port.local_name, symbol);
        if (!add(CNameOf(unit, port.local_name, symbol), link, port.loc)) {
          return false;
        }
        if (external) {
          out.keep_global.insert(link);
        }
      }
    }
    for (size_t m = 0; m < unit.imports.size(); ++m) {
      const PortDecl& port = unit.imports[m];
      const BundleTypeDecl* bundle = elaboration_.FindBundleType(port.bundle_type);
      const SupplierRef& supplier = instance.import_suppliers[m];
      for (const std::string& symbol : bundle->symbols) {
        if (!add(CNameOf(unit, port.local_name, symbol), SupplierLinkName(supplier, symbol),
                 port.loc)) {
          return false;
        }
      }
    }
    for (const std::vector<InitFiniDecl>* list : {&unit.initializers, &unit.finalizers}) {
      for (const InitFiniDecl& decl : *list) {
        auto existing = out.renames.find(decl.function);
        if (existing != out.renames.end()) {
          // Also an exported symbol; the generated init object calls it by its
          // export link name, which therefore must stay global.
          out.keep_global.insert(existing->second);
          continue;
        }
        std::string link = MangleInitFini(instance.path, decl.function);
        if (!add(decl.function, link, decl.loc)) {
          return false;
        }
        out.keep_global.insert(link);
      }
    }
    return true;
  }

  // Link name used to CALL an init/fini function of an instance.
  std::string InitCallName(const InitCall& call) const {
    const Instance& instance = config_.instances[call.instance];
    // If the function doubles as an exported symbol, use the export link name.
    for (size_t e = 0; e < instance.unit->exports.size(); ++e) {
      const PortDecl& port = instance.unit->exports[e];
      const BundleTypeDecl* bundle = elaboration_.FindBundleType(port.bundle_type);
      for (const std::string& symbol : bundle->symbols) {
        if (CNameOf(*instance.unit, port.local_name, symbol) == call.function) {
          return MangleExport(instance.path, port.local_name, symbol);
        }
      }
    }
    return MangleInitFini(instance.path, call.function);
  }

  // ---- compilation -----------------------------------------------------------

  // The build-level codegen configuration (level + inline budgets), before any
  // unit `flags` declaration overrides.
  CodegenOptions BaseCodegenOptions() const {
    CodegenOptions options;
    options.opt_level = options_.opt_level;
    options.inline_limit = options_.inline_limit;
    options.caller_growth = options_.caller_growth;
    if (options_.profile != nullptr) {
      options.profile_digest = ProfileDigest(*options_.profile);
    }
    if (!options_.optimize || options_.opt_level == 0) {
      options.optimize = false;
      options.opt_level = 0;
    }
    return options;
  }

  CodegenOptions UnitCodegenOptions(const UnitDecl& unit) const {
    std::vector<std::string> flags;
    if (!unit.flags_name.empty()) {
      const FlagsDecl* decl = elaboration_.FindFlags(unit.flags_name);
      if (decl != nullptr) {
        flags = decl->flags;
      }
    }
    CodegenOptions options = BaseCodegenOptions();
    options.ApplyFlags(flags);
    if (!options_.optimize || options_.opt_level == 0) {
      options.optimize = false;
      options.opt_level = 0;
    }
    return options;
  }

  // Parses + checks a unit's translation unit against the caller-owned TypeTable.
  // Verifies that the unit's files define every export and initializer/finalizer
  // and do not define imports.
  Result<TranslationUnit> FrontUnit(const UnitDecl& unit, TypeTable& types, SemaInfo* info_out,
                                    Diagnostics& diags) const {
    if (IsObjectUnit(unit)) {
      diags.Error(unit.loc, "unit '" + unit.name + "' is object-backed and cannot be "
                            "source-flattened");
      return Result<TranslationUnit>::Failure();
    }
    Result<TranslationUnit> tu = ParseCFiles(sources_, unit.files, unit.name, types, diags);
    if (!tu.ok()) {
      return tu;
    }
    Result<SemaInfo> info = AnalyzeTranslationUnit(tu.value(), types, diags);
    if (!info.ok()) {
      return Result<TranslationUnit>::Failure();
    }
    bool ok = true;
    for (const PortDecl& port : unit.exports) {
      const BundleTypeDecl* bundle = elaboration_.FindBundleType(port.bundle_type);
      for (const std::string& symbol : bundle->symbols) {
        std::string c_name = CNameOf(unit, port.local_name, symbol);
        if (info.value().defined_functions.count(c_name) == 0 &&
            info.value().defined_globals.count(c_name) == 0) {
          diags.Error(port.loc, "unit '" + unit.name + "': files do not define '" + c_name +
                                    "' (the C name of export " + port.local_name + "." +
                                    symbol + ")");
          ok = false;
        }
      }
    }
    for (const PortDecl& port : unit.imports) {
      const BundleTypeDecl* bundle = elaboration_.FindBundleType(port.bundle_type);
      for (const std::string& symbol : bundle->symbols) {
        std::string c_name = CNameOf(unit, port.local_name, symbol);
        if (info.value().defined_functions.count(c_name) > 0 ||
            info.value().defined_globals.count(c_name) > 0) {
          diags.Error(port.loc, "unit '" + unit.name + "': files DEFINE '" + c_name +
                                    "', which is the C name of import " + port.local_name +
                                    "." + symbol + " (imports must only be declared)");
          ok = false;
        }
      }
    }
    for (const std::vector<InitFiniDecl>* list : {&unit.initializers, &unit.finalizers}) {
      for (const InitFiniDecl& decl : *list) {
        if (info.value().defined_functions.count(decl.function) == 0) {
          diags.Error(decl.loc, "unit '" + unit.name + "': files do not define "
                                "initializer/finalizer '" +
                                    decl.function + "'");
          ok = false;
        }
      }
    }
    if (!ok) {
      return Result<TranslationUnit>::Failure();
    }
    if (info_out != nullptr) {
      *info_out = std::move(info.value());
    }
    return tu;
  }

  // ---- cache keys ------------------------------------------------------------

  uint64_t UnitCacheKey(const UnitDecl& unit) const {
    Fnv64 hasher;
    hasher.Update("unit-object-v5");  // v5: implicit malloc/free lowering
    HashUnitInterface(elaboration_, unit, hasher);
    std::set<std::string> visited;
    for (const std::string& file : unit.files) {
      HashFileClosure(sources_, file, visited, hasher);
    }
    HashCodegenOptions(UnitCodegenOptions(unit), hasher);
    return hasher.digest();
  }

  uint64_t GroupCacheKey(int group, const std::vector<int>& members,
                         const std::vector<InstanceNames>& names) const {
    Fnv64 hasher;
    hasher.Update("flatten-group-v6");  // v6: seeded malloc/free import prototypes
    hasher.Update("flatten" + std::to_string(group) + ".o");
    hasher.Update(options_.sort_definitions);
    hasher.Update(options_.callers_first_definitions);
    HashCodegenOptions(BaseCodegenOptions(), hasher);
    for (size_t m = 0; m < members.size(); ++m) {
      const Instance& instance = config_.instances[members[m]];
      hasher.Update(instance.path);
      HashUnitInterface(elaboration_, *instance.unit, hasher);
      std::set<std::string> visited;
      for (const std::string& file : instance.unit->files) {
        HashFileClosure(sources_, file, visited, hasher);
      }
      for (const auto& [c_name, link_name] : names[m].renames) {
        hasher.Update(c_name);
        hasher.Update(link_name);
      }
      for (const std::string& keep : names[m].keep_global) {
        hasher.Update(keep);
      }
    }
    return hasher.digest();
  }

  // ---- compile tasks (run on worker threads) ---------------------------------

  // Compiles one unit to its base (pre-objcopy) object, through the cache.
  void CompileUnitTask(const UnitDecl& unit, TaskResult& out) {
    if (IsObjectUnit(unit)) {
      out.cacheable = false;
      auto prebuilt = options_.prebuilt_objects.find(unit.files[0]);
      if (prebuilt == options_.prebuilt_objects.end()) {
        out.diags.Error(unit.loc, "unit '" + unit.name + "': no prebuilt object '" +
                                      unit.files[0] + "' was provided");
        return;
      }
      // Verify the object defines every export (and initializer/finalizer) under
      // the unit's C names; the usual source-level checks don't apply.
      const ObjectFile& object = prebuilt->second;
      bool ok = true;
      for (const PortDecl& port : unit.exports) {
        const BundleTypeDecl* bundle = elaboration_.FindBundleType(port.bundle_type);
        for (const std::string& symbol : bundle->symbols) {
          std::string c_name = CNameOf(unit, port.local_name, symbol);
          int index = object.FindSymbol(c_name);
          if (index < 0 || object.symbols[index].section == ObjSymbol::Section::kUndefined) {
            out.diags.Error(port.loc, "unit '" + unit.name + "': prebuilt object does not "
                                      "define '" +
                                          c_name + "'");
            ok = false;
          }
        }
      }
      if (ok) {
        out.object = object;
      }
      return;
    }

    uint64_t key = UnitCacheKey(unit);
    ObjectFile cached;
    if (cache_.Lookup(key, &cached)) {
      out.cache_hit = true;
      out.object = std::move(cached);
      return;
    }
    TypeTable types;
    SemaInfo info;
    Result<TranslationUnit> tu = FrontUnit(unit, types, &info, out.diags);
    if (!tu.ok()) {
      return;
    }
    CodegenOptions codegen_options = UnitCodegenOptions(unit);
    codegen_options.pass_stats = &out.pass_stats;
    Result<ObjectFile> object = CompileTranslationUnit(
        tu.value(), info, types, codegen_options, unit.name + ".o", out.diags);
    if (!object.ok()) {
      return;
    }
    cache_.Store(key, object.value());
    out.object = object.take();
  }

  // Stamps every function of a flatten-group object with the instance path of the
  // member it came from. The flattener leaves two name shapes: renamed
  // import/export/init symbols (exact link names from the member's rename map) and
  // unit-local definitions carrying the member's sanitized path prefix. Longest
  // prefix wins so nested paths cannot shadow each other. Runs after both the
  // cache-hit and fresh-compile paths — attribution is derived, never serialized,
  // so the on-disk object format (and the cache) is unchanged.
  void AttributeGroupFunctions(ObjectFile& object, const std::vector<int>& members,
                               const std::vector<InstanceNames>& names) const {
    std::map<std::string, std::string> link_to_path;
    std::vector<std::pair<std::string, std::string>> prefix_to_path;
    for (size_t m = 0; m < members.size(); ++m) {
      const std::string& path = config_.instances[members[m]].path;
      for (const auto& [c_name, link_name] : names[m].renames) {
        link_to_path.emplace(link_name, path);
      }
      prefix_to_path.emplace_back(SanitizedPrefix(path), path);
    }
    for (BytecodeFunction& function : object.functions) {
      auto exact = link_to_path.find(function.name);
      if (exact != link_to_path.end()) {
        function.component = exact->second;
        continue;
      }
      size_t best = 0;
      for (const auto& [prefix, path] : prefix_to_path) {
        if (prefix.size() > best && function.name.rfind(prefix, 0) == 0) {
          function.component = path;
          best = prefix.size();
        }
      }
    }
  }

  // The implicit allocator builtins (`malloc`/`free`, seeded by sema) are
  // callable with no declaration, so a member TU can reference them without any
  // top-level name the flattener's scope-aware renamer would touch. When the
  // instance's rename map binds them (the unit imports an Alloc bundle), seed
  // explicit extern prototypes so those references follow the map exactly like
  // a declared import; the merged TU drops the prototype again if the provider
  // is flattened into the same group.
  static void SeedAllocBuiltinPrototypes(TranslationUnit& unit,
                                         const std::map<std::string, std::string>& renames,
                                         TypeTable& types) {
    for (const char* name : {"malloc", "free"}) {
      if (renames.count(name) == 0) {
        continue;
      }
      bool declared = false;
      for (const Decl& decl : unit.decls) {
        if ((decl.kind == Decl::Kind::kFunction || decl.kind == Decl::Kind::kGlobalVar) &&
            decl.name == name) {
          declared = true;
          break;
        }
      }
      if (declared) {
        continue;
      }
      Decl proto;
      proto.kind = Decl::Kind::kFunction;
      proto.name = name;
      if (std::string(name) == "malloc") {
        proto.func_type = types.Function(types.PointerTo(types.Void()),
                                         {FuncParam{types.Unsigned()}}, false);
        proto.params = {ParamDecl{"n", types.Unsigned()}};
      } else {
        proto.func_type = types.Function(types.Void(),
                                         {FuncParam{types.PointerTo(types.Void())}}, false);
        proto.params = {ParamDecl{"p", types.PointerTo(types.Void())}};
      }
      unit.decls.push_back(std::move(proto));
    }
  }

  // Merges one flatten group's member sources into a single TU and compiles it.
  void CompileGroupTask(int group, TaskResult& out) {
    std::vector<int> members;
    for (size_t i = 0; i < config_.instances.size(); ++i) {
      if (groups_[i] == group) {
        members.push_back(static_cast<int>(i));
      }
    }
    if (members.empty()) {
      out.cacheable = false;
      out.object = ObjectFile();  // sentinel: skipped during the merge
      return;
    }

    std::vector<InstanceNames> names(members.size());
    for (size_t m = 0; m < members.size(); ++m) {
      if (!BuildInstanceNames(members[m], names[m], out.diags)) {
        return;
      }
    }

    uint64_t key = GroupCacheKey(group, members, names);
    ObjectFile cached;
    if (cache_.Lookup(key, &cached)) {
      out.cache_hit = true;
      AttributeGroupFunctions(cached, members, names);
      out.object = std::move(cached);
      return;
    }

    TypeTable types;
    std::vector<FlattenInput> inputs;
    for (size_t m = 0; m < members.size(); ++m) {
      const Instance& instance = config_.instances[members[m]];
      Result<TranslationUnit> tu = FrontUnit(*instance.unit, types, nullptr, out.diags);
      if (!tu.ok()) {
        return;
      }
      FlattenInput input;
      input.instance_path = instance.path;
      input.unit = tu.take();
      SeedAllocBuiltinPrototypes(input.unit, names[m].renames, types);
      input.renames = names[m].renames;  // copied: AttributeGroupFunctions reads it
      input.keep_global.assign(names[m].keep_global.begin(), names[m].keep_global.end());
      inputs.push_back(std::move(input));
    }
    FlattenOptions flatten_options;
    flatten_options.sort_definitions = options_.sort_definitions;
    flatten_options.callers_first = options_.callers_first_definitions;
    Result<TranslationUnit> merged =
        FlattenUnits(std::move(inputs), flatten_options, out.diags);
    if (!merged.ok()) {
      return;
    }
    Result<SemaInfo> info = AnalyzeTranslationUnit(merged.value(), types, out.diags);
    if (!info.ok()) {
      return;
    }
    CodegenOptions codegen_options = BaseCodegenOptions();
    codegen_options.pass_stats = &out.pass_stats;
    Result<ObjectFile> object =
        CompileTranslationUnit(merged.value(), info.value(), types, codegen_options,
                               "flatten" + std::to_string(group) + ".o", out.diags);
    if (!object.ok()) {
      return;
    }
    // Store the unattributed object (component stamps are derived metadata, not
    // part of the on-disk format), then attribute our own copy.
    cache_.Store(key, object.value());
    ObjectFile finished = object.take();
    AttributeGroupFunctions(finished, members, names);
    out.object = std::move(finished);
  }

  // ---- deterministic merge helpers (calling thread only) ---------------------

  // Objcopy-duplicates the unit's base object for one standalone instance, applies
  // the instance's renames, and localizes everything not meant to stay global.
  bool InstantiateObject(int instance_index, const ObjectFile& base, CompiledUnits& compiled,
                         Diagnostics& diags) {
    const Instance& instance = config_.instances[instance_index];
    InstanceNames names;
    if (!BuildInstanceNames(instance_index, names, diags)) {
      return false;
    }
    ObjectFile object = ObjcopyDuplicate(base, instance.path + ".o");
    if (!ObjcopyRename(object, names.renames, diags).ok()) {
      return false;
    }
    // Hide every defined global that is not an export/init symbol: Knit's
    // "defined names that are not exported will be hidden from all other units".
    for (const ObjSymbol& symbol : object.symbols) {
      if (symbol.global && symbol.section != ObjSymbol::Section::kUndefined &&
          names.keep_global.count(symbol.name) == 0) {
        if (!ObjcopyLocalize(object, symbol.name, diags).ok()) {
          return false;
        }
      }
    }
    // Verify init/fini symbols are global (a static initializer cannot be called
    // from the generated init object).
    for (const std::string& keep : names.keep_global) {
      int index = object.FindSymbol(keep);
      if (index < 0 || object.symbols[index].section == ObjSymbol::Section::kUndefined) {
        diags.Error(instance.unit->loc,
                    "instance " + instance.path + ": expected defined symbol '" + keep +
                        "' after renaming (is an export or initializer declared static, "
                        "or missing?)");
        return false;
      }
    }
    // Every function of a standalone instance object belongs to that instance.
    for (BytecodeFunction& function : object.functions) {
      function.component = instance.path;
    }
    compiled.objects.push_back(std::move(object));
    return true;
  }

  // ---- init/fini object ------------------------------------------------------

  // True when the compiled function bound to `link_name` returns a value. Such an
  // initializer is *failable*: the failsafe init runtime treats a nonzero return as
  // "initialization failed" and rolls back.
  bool ReturnsValue(const CompiledUnits& compiled, const std::string& link_name) const {
    for (const ObjectFile& object : compiled.objects) {
      int index = object.FindSymbol(link_name);
      if (index < 0 || object.symbols[index].section != ObjSymbol::Section::kText) {
        continue;
      }
      return object.functions[object.symbols[index].index].returns_value;
    }
    return false;
  }

  // The failure-aware init runtime (DESIGN.md "Initialization failure semantics").
  // knit__status[i] counts instance i's completed initializer calls; knit__rollback
  // finalizes exactly the fully-initialized instances (finalizer-schedule order,
  // i.e. reverse dependency order) and resets progress; knit__init returns -1 on
  // success or the failing instance index after a status failure (having already
  // rolled back). A trapped knit__init leaves the status array intact so the host
  // can invoke knit__rollback itself.
  std::string GenerateFailsafeInitSource(CompiledUnits& compiled) const {
    std::vector<int> counts = InitializerCounts(config_);
    int instance_count = static_cast<int>(config_.instances.size());

    compiled.rollback_function = "knit__rollback";
    compiled.status_symbol = "knit__status";
    compiled.failed_symbol = "knit__failed";

    std::string source;
    source += "int knit__status[" + std::to_string(std::max(1, instance_count)) + "];\n";
    source += "int knit__failed;\n";

    auto reset_progress = [&](std::string& out) {
      for (int i = 0; i < instance_count; ++i) {
        out += "  knit__status[" + std::to_string(i) + "] = 0;\n";
      }
      out += "  knit__failed = -1;\n";
    };

    source += "void knit__rollback(void) {\n";
    for (const InitCall& call : schedule_.finalizers) {
      if (counts[call.instance] == 0) {
        continue;  // never had initializers: nothing to undo on rollback
      }
      source += "  if (knit__status[" + std::to_string(call.instance) +
                "] == " + std::to_string(counts[call.instance]) + ") { " +
                InitCallName(call) + "(); }\n";
    }
    reset_progress(source);
    source += "}\n";

    source += "int knit__init(void) {\n";
    for (const InitCall& call : schedule_.initializers) {
      std::string instance = std::to_string(call.instance);
      std::string name = InitCallName(call);
      source += "  knit__failed = " + instance + ";\n";
      if (ReturnsValue(compiled, name)) {
        source += "  if (" + name + "() != 0) { knit__rollback(); return " + instance +
                  "; }\n";
      } else {
        source += "  " + name + "();\n";
      }
      source += "  knit__status[" + instance + "] = knit__status[" + instance + "] + 1;\n";
    }
    source += "  knit__failed = -1;\n";
    source += "  return -1;\n";
    source += "}\n";

    source += "void knit__fini(void) {\n";
    for (const InitCall& call : schedule_.finalizers) {
      source += "  " + InitCallName(call) + "();\n";
    }
    reset_progress(source);
    source += "}\n";
    return source;
  }

  bool GenerateInitObject(CompiledUnits& compiled, Diagnostics& diags) const {
    for (const Instance& instance : config_.instances) {
      compiled.instance_paths.push_back(instance.path);
    }
    for (const std::vector<InitCall>* list : {&schedule_.initializers, &schedule_.finalizers}) {
      for (const InitCall& call : *list) {
        compiled.init_symbol_instances.emplace(InitCallName(call), call.instance);
      }
    }

    std::string source;
    std::set<std::string> declared;
    auto declare = [&](const InitCall& call) {
      std::string name = InitCallName(call);
      if (declared.insert(name).second) {
        bool failable = options_.failsafe_init && ReturnsValue(compiled, name);
        source += std::string("extern ") + (failable ? "int " : "void ") + name + "(void);\n";
      }
    };
    for (const InitCall& call : schedule_.initializers) {
      declare(call);
    }
    for (const InitCall& call : schedule_.finalizers) {
      declare(call);
    }

    if (!options_.failsafe_init) {
      // The paper's monolithic call sequence: no progress tracking, no rollback.
      source += "void knit__init(void) {\n";
      for (const InitCall& call : schedule_.initializers) {
        source += "  " + InitCallName(call) + "();\n";
      }
      source += "}\n";
      source += "void knit__fini(void) {\n";
      for (const InitCall& call : schedule_.finalizers) {
        source += "  " + InitCallName(call) + "();\n";
      }
      source += "}\n";
    } else {
      source += GenerateFailsafeInitSource(compiled);
    }

    TypeTable types;
    Result<TranslationUnit> tu = ParseCString(source, "<knit-init>", types, diags);
    if (!tu.ok()) {
      return false;
    }
    Result<SemaInfo> info = AnalyzeTranslationUnit(tu.value(), types, diags);
    if (!info.ok()) {
      return false;
    }
    CodegenOptions codegen_options;
    codegen_options.optimize = false;  // nothing to optimize; keep call order obvious
    Result<ObjectFile> object = CompileTranslationUnit(tu.value(), info.value(), types,
                                                       codegen_options, "knit-init.o", diags);
    if (!object.ok()) {
      return false;
    }
    ObjectFile init_object = object.take();
    // The generated init/fini driver is composition glue, not component code; the
    // profiler reports it under this pseudo-component.
    for (BytecodeFunction& function : init_object.functions) {
      function.component = "<init>";
    }
    compiled.objects.push_back(std::move(init_object));
    return true;
  }

  const KnitcOptions& options_;
  const CheckedConfig& checked_;
  const Configuration& config_;
  const Elaboration& elaboration_;
  const knit::Schedule& schedule_;
  const SourceMap& sources_;
  BuildCache& cache_;
  PipelineMetrics& metrics_;

  std::vector<int> groups_;  // group id per instance; -1 = standalone (objcopy path)
  int group_count_ = 0;
  std::set<std::pair<int, int>> external_exports_;  // (instance, export port)
  std::set<std::string> swappable_;                 // expanded KnitcOptions::swappable
};

}  // namespace

Result<CompiledUnits> KnitPipeline::Compile(const CheckedConfig& checked,
                                            const SourceMap& sources, Diagnostics& diags) {
  CompileStage stage(options_, checked, sources, *cache_, metrics_);
  return stage.Run(diags);
}

// ---- link stage --------------------------------------------------------------

Result<LinkedImage> KnitPipeline::Link(const CompiledUnits& compiled, Diagnostics& diags) {
  auto t0 = std::chrono::steady_clock::now();
  StageMetrics& metrics = BeginStage("link");

  const Configuration& config = *compiled.checked.scheduled.elaborated.config;
  const Elaboration& elaboration = *compiled.checked.scheduled.elaborated.elaboration;

  LinkOptions link_options;
  link_options.natives = IntrinsicNatives();
  for (const PortDecl& port : config.top->imports) {
    const BundleTypeDecl* bundle = elaboration.FindBundleType(port.bundle_type);
    for (const std::string& symbol : bundle->symbols) {
      link_options.natives.push_back(EnvSymbol(port.local_name, symbol));
    }
  }
  for (const std::string& native : options_.extra_natives) {
    link_options.natives.push_back(native);
  }
  if (!ExpandSwappable(options_.swappable, config, link_options.swappable_components, diags)) {
    metrics.seconds = Seconds(t0);
    return Result<LinkedImage>::Failure();
  }

  std::vector<LinkItem> items;
  items.reserve(compiled.objects.size());
  for (const ObjectFile& object : compiled.objects) {
    items.emplace_back(object);  // copy: the artifact stays re-linkable
  }
  metrics.items = static_cast<int>(items.size());

  Result<LinkResult> linked = knit::Link(std::move(items), link_options, diags);
  metrics.seconds = Seconds(t0);
  if (!linked.ok()) {
    return Result<LinkedImage>::Failure();
  }

  LinkedImage image;
  image.compiled = compiled;
  image.image = std::move(linked.value().image);
  image.placements = std::move(linked.value().placements);
  image.natives = std::move(link_options.natives);

  // (port, symbol) -> link name for every top-level export.
  for (size_t e = 0; e < config.top->exports.size(); ++e) {
    const PortDecl& port = config.top->exports[e];
    const BundleTypeDecl* bundle = elaboration.FindBundleType(port.bundle_type);
    const SupplierRef& supplier = config.top_export_suppliers[e];
    for (const std::string& symbol : bundle->symbols) {
      std::string link_name;
      if (supplier.IsEnvironment()) {
        const PortDecl& import_port = config.top->imports[supplier.port];
        link_name = EnvSymbol(import_port.local_name, symbol);
      } else {
        const Instance& producer = config.instances[supplier.instance];
        const PortDecl& producer_port = producer.unit->exports[supplier.port];
        link_name = MangleExport(producer.path, producer_port.local_name, symbol);
      }
      image.export_names[{port.local_name, symbol}] = link_name;
    }
  }
  return image;
}

// ---- link-optimize stage -----------------------------------------------------

Result<OptimizedImage> KnitPipeline::LinkOptimize(const LinkedImage& linked, Diagnostics& diags) {
  auto t0 = std::chrono::steady_clock::now();
  StageMetrics& metrics = BeginStage("link-optimize");

  OptimizedImage optimized;
  optimized.linked = linked;
  if (options_.optimize && options_.opt_level >= 2) {
    ImagePassOptions image_options;
    image_options.inline_limit = options_.inline_limit;
    image_options.caller_growth = options_.caller_growth;
    image_options.text_align = LinkOptions().text_align;  // match the link layout
    image_options.entry_points.push_back(linked.compiled.init_function);
    image_options.entry_points.push_back(linked.compiled.fini_function);
    if (!linked.compiled.rollback_function.empty()) {
      image_options.entry_points.push_back(linked.compiled.rollback_function);
    }
    for (const auto& [port_symbol, link_name] : linked.export_names) {
      image_options.entry_points.push_back(link_name);
    }
    const Configuration& config = *linked.compiled.checked.scheduled.elaborated.config;
    if (!ExpandSwappable(options_.swappable, config, image_options.swappable_components, diags)) {
      metrics.seconds = Seconds(t0);
      return Result<OptimizedImage>::Failure();
    }
    // Profile-guided mode: a loaded profile whose recording context matches this
    // build switches the pass list to the PGO pipeline (hottest-first inlining,
    // affinity layout, cold outlining). A mismatched profile is dropped with a
    // warning — the build falls back to plain -O2, it never optimizes against
    // measurements taken from a different program.
    bool profile_guided = false;
    if (options_.profile != nullptr && options_.opt_level >= 2) {
      ProfileMeta expected =
          MakeProfileMeta(linked.compiled.checked.scheduled.elaborated, options_.opt_level);
      const ProfileMeta& recorded = options_.profile->meta;
      if (recorded.top != expected.top || recorded.config_digest != expected.config_digest) {
        diags.Warning(SourceLoc::Unknown(),
                      "profile was recorded for configuration '" + recorded.top +
                          "' (digest " + HexDigest(recorded.config_digest) +
                          "), not this build of '" + expected.top + "' (digest " +
                          HexDigest(expected.config_digest) +
                          "); ignoring it and running plain -O2");
      } else if (recorded.opt_level != expected.opt_level) {
        diags.Warning(SourceLoc::Unknown(),
                      "profile was recorded at -O" + std::to_string(recorded.opt_level) +
                          ", this build is -O" + std::to_string(expected.opt_level) +
                          "; ignoring it and running plain -O2");
      } else {
        profile_guided = true;
        image_options.profile = &options_.profile->profile;
      }
    }
    PassManager manager = MakeImagePassManager(profile_guided);
    manager.RunOnImage(optimized.linked.image, image_options, &optimized.pass_stats);
    metrics.items = static_cast<int>(optimized.linked.image.functions.size());
    MergePassStats(metrics_.pass_stats, optimized.pass_stats);
  }
  metrics.seconds = Seconds(t0);
  return optimized;
}

Result<LinkedImage> KnitPipeline::Build(const std::string& knit_source, const SourceMap& sources,
                                        const std::string& top_unit, Diagnostics& diags) {
  Result<ParsedProgram> parsed = Parse(knit_source, diags);
  if (!parsed.ok()) {
    return Result<LinkedImage>::Failure();
  }
  Result<ElaboratedConfig> elaborated = Elaborate(parsed.value(), top_unit, diags);
  if (!elaborated.ok()) {
    return Result<LinkedImage>::Failure();
  }
  Result<ScheduledConfig> scheduled = Schedule(elaborated.value(), diags);
  if (!scheduled.ok()) {
    return Result<LinkedImage>::Failure();
  }
  Result<CheckedConfig> checked = Check(scheduled.value(), diags);
  if (!checked.ok()) {
    return Result<LinkedImage>::Failure();
  }
  Result<CompiledUnits> compiled = Compile(checked.value(), sources, diags);
  if (!compiled.ok()) {
    return Result<LinkedImage>::Failure();
  }
  Result<LinkedImage> linked = Link(compiled.value(), diags);
  if (!linked.ok()) {
    return Result<LinkedImage>::Failure();
  }
  Result<OptimizedImage> optimized = LinkOptimize(linked.value(), diags);
  if (!optimized.ok()) {
    return Result<LinkedImage>::Failure();
  }
  return std::move(optimized.value().linked);
}

// ---- instance replacement ----------------------------------------------------

Result<ReplacementObject> CompileInstanceReplacement(
    const Elaboration& elaboration, const Configuration& config,
    const std::string& instance_path, const std::string& source,
    const std::string& source_name, const SourceMap& sources,
    const std::string& version_suffix, Diagnostics& diags) {
  int instance_index = config.FindInstance(instance_path);
  if (instance_index < 0) {
    diags.Error(SourceLoc::Unknown(),
                "replacement target '" + instance_path + "' does not exist in this configuration");
    return Result<ReplacementObject>::Failure();
  }
  const Instance& instance = config.instances[instance_index];
  const UnitDecl& unit = *instance.unit;
  if (IsObjectUnit(unit)) {
    diags.Error(unit.loc, "instance " + instance_path + ": unit '" + unit.name +
                              "' is object-backed and cannot be replaced from source");
    return Result<ReplacementObject>::Failure();
  }

  // Parse + check the replacement source against the SAME interface contract the
  // compile stage enforces for the original unit files.
  SourceMap replacement_sources = sources;  // copied so #include resolution works
  replacement_sources[source_name] = source;
  TypeTable types;
  Result<TranslationUnit> tu =
      ParseCFiles(replacement_sources, {source_name}, unit.name, types, diags);
  if (!tu.ok()) {
    return Result<ReplacementObject>::Failure();
  }
  Result<SemaInfo> info = AnalyzeTranslationUnit(tu.value(), types, diags);
  if (!info.ok()) {
    return Result<ReplacementObject>::Failure();
  }
  bool ok = true;
  for (const PortDecl& port : unit.exports) {
    const BundleTypeDecl* bundle = elaboration.FindBundleType(port.bundle_type);
    for (const std::string& symbol : bundle->symbols) {
      std::string c_name = CNameOf(unit, port.local_name, symbol);
      if (info.value().defined_functions.count(c_name) == 0 &&
          info.value().defined_globals.count(c_name) == 0) {
        diags.Error(port.loc, "replacement for " + instance_path + ": source does not define '" +
                                  c_name + "' (the C name of export " + port.local_name + "." +
                                  symbol + ")");
        ok = false;
      }
    }
  }
  for (const PortDecl& port : unit.imports) {
    const BundleTypeDecl* bundle = elaboration.FindBundleType(port.bundle_type);
    for (const std::string& symbol : bundle->symbols) {
      std::string c_name = CNameOf(unit, port.local_name, symbol);
      if (info.value().defined_functions.count(c_name) > 0 ||
          info.value().defined_globals.count(c_name) > 0) {
        diags.Error(port.loc, "replacement for " + instance_path + ": source DEFINES '" + c_name +
                                  "', which is the C name of import " + port.local_name + "." +
                                  symbol + " (imports must only be declared)");
        ok = false;
      }
    }
  }
  for (const std::vector<InitFiniDecl>* list : {&unit.initializers, &unit.finalizers}) {
    for (const InitFiniDecl& decl : *list) {
      if (info.value().defined_functions.count(decl.function) == 0) {
        diags.Error(decl.loc, "replacement for " + instance_path +
                                  ": source does not define initializer/finalizer '" +
                                  decl.function + "'");
        ok = false;
      }
    }
  }
  if (!ok) {
    return Result<ReplacementObject>::Failure();
  }

  CodegenOptions codegen_options;
  if (!unit.flags_name.empty()) {
    const FlagsDecl* flags = elaboration.FindFlags(unit.flags_name);
    if (flags != nullptr) {
      codegen_options.ApplyFlags(flags->flags);
    }
  }
  Result<ObjectFile> object =
      CompileTranslationUnit(tu.value(), info.value(), types, codegen_options,
                             instance_path + version_suffix + ".o", diags);
  if (!object.ok()) {
    return Result<ReplacementObject>::Failure();
  }
  ReplacementObject out;
  out.object = object.take();

  // Rename map: exports and init/fini entry points get their instance link names
  // plus the version suffix (so the replacement's globals coexist with the
  // retired generation's in one image); imports resolve to the running
  // configuration's unversioned supplier link names.
  std::map<std::string, std::string> renames;
  std::set<std::string> keep_global;
  auto add = [&](const std::string& c_name, const std::string& link_name, const SourceLoc& loc) {
    auto [it, inserted] = renames.emplace(c_name, link_name);
    if (!inserted && it->second != link_name) {
      diags.Error(loc, "replacement for " + instance_path + ": C identifier '" + c_name +
                           "' is used for two different connections");
      return false;
    }
    return true;
  };
  for (const PortDecl& port : unit.exports) {
    const BundleTypeDecl* bundle = elaboration.FindBundleType(port.bundle_type);
    for (const std::string& symbol : bundle->symbols) {
      std::string link = MangleExport(instance_path, port.local_name, symbol);
      std::string versioned = link + version_suffix;
      if (!add(CNameOf(unit, port.local_name, symbol), versioned, port.loc)) {
        return Result<ReplacementObject>::Failure();
      }
      keep_global.insert(versioned);
      out.export_links[link] = versioned;
    }
  }
  for (size_t m = 0; m < unit.imports.size(); ++m) {
    const PortDecl& port = unit.imports[m];
    const BundleTypeDecl* bundle = elaboration.FindBundleType(port.bundle_type);
    const SupplierRef& supplier = instance.import_suppliers[m];
    for (const std::string& symbol : bundle->symbols) {
      std::string link;
      if (supplier.IsEnvironment()) {
        link = EnvSymbol(config.top->imports[supplier.port].local_name, symbol);
      } else {
        const Instance& producer = config.instances[supplier.instance];
        link = MangleExport(producer.path, producer.unit->exports[supplier.port].local_name,
                            symbol);
      }
      if (!add(CNameOf(unit, port.local_name, symbol), link, port.loc)) {
        return Result<ReplacementObject>::Failure();
      }
    }
  }
  auto init_link = [&](const InitFiniDecl& decl, std::vector<std::string>& list) {
    auto existing = renames.find(decl.function);
    if (existing != renames.end()) {
      // Also an exported symbol: the versioned export link name is the entry.
      keep_global.insert(existing->second);
      list.push_back(existing->second);
      return true;
    }
    std::string versioned = MangleInitFini(instance_path, decl.function) + version_suffix;
    if (!add(decl.function, versioned, decl.loc)) {
      return false;
    }
    keep_global.insert(versioned);
    list.push_back(versioned);
    return true;
  };
  for (const InitFiniDecl& decl : unit.initializers) {
    if (!init_link(decl, out.initializers)) {
      return Result<ReplacementObject>::Failure();
    }
  }
  for (const InitFiniDecl& decl : unit.finalizers) {
    if (!init_link(decl, out.finalizers)) {
      return Result<ReplacementObject>::Failure();
    }
  }
  if (!ObjcopyRename(out.object, renames, diags).ok()) {
    return Result<ReplacementObject>::Failure();
  }
  // Hide every other defined global, as the compile stage does: replacement-local
  // names must not collide with (or capture references meant for) the rest of the
  // running image.
  for (const ObjSymbol& symbol : out.object.symbols) {
    if (symbol.global && symbol.section != ObjSymbol::Section::kUndefined &&
        keep_global.count(symbol.name) == 0) {
      if (!ObjcopyLocalize(out.object, symbol.name, diags).ok()) {
        return Result<ReplacementObject>::Failure();
      }
    }
  }
  for (BytecodeFunction& function : out.object.functions) {
    function.component = instance_path;
  }
  return out;
}

}  // namespace knit
