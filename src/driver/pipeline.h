// The staged Knit compilation pipeline.
//
// The paper's §6 observation — ">95% of build time is spent in the C compiler" —
// makes the per-unit compile stage the place where a component build system earns
// scale. This header splits the monolithic KnitBuild() of src/driver/knitc.h into
// explicit, resumable stages with one artifact type per phase:
//
//   ParsedProgram → ElaboratedConfig → ScheduledConfig → CheckedConfig
//                 → CompiledUnits → LinkedImage
//
// Each stage is a separate KnitPipeline method, so a host (a bench, a test, the
// knitc CLI, an IDE-style tool) can stop after any phase, inspect the artifact,
// cache it, or re-enter the pipeline later from it. Artifacts are plain values:
// copyable, and safe to hold across further pipeline calls (shared front-end
// state — the Elaboration the Configuration points into — is reference-counted).
//
// On top of the stage boundaries the compile stage adds:
//   * parallel unit compilation (KnitcOptions::jobs) on a small thread pool
//     (src/support/executor.h). Every compile task owns its TypeTable and
//     Diagnostics and writes into an indexed slot, and the merge runs in task
//     order on the calling thread — so images are bit-identical for every jobs
//     value, and diagnostics keep a deterministic order;
//   * a content-hash artifact cache (src/driver/build_cache.h) keyed on the unit
//     source text (transitive #include closure), resolved codegen options, and —
//     for flatten groups — member paths, rename maps, and flatten options. Warm
//     rebuilds skip unchanged units entirely.
//
// Every stage records StageMetrics (wall time, items, cache hits/misses, threads),
// replacing the old ad-hoc BuildStats; PipelineMetrics::ToJson() feeds
// `knitc --stats-json`.
#ifndef SRC_DRIVER_PIPELINE_H_
#define SRC_DRIVER_PIPELINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/constraints/check.h"
#include "src/driver/build_cache.h"
#include "src/knitlang/ast.h"
#include "src/knitsem/elaborate.h"
#include "src/knitsem/instantiate.h"
#include "src/ld/link.h"
#include "src/minic/clexer.h"
#include "src/obj/object.h"
#include "src/sched/init_sched.h"
#include "src/support/diagnostics.h"
#include "src/support/result.h"
#include "src/vm/image.h"
#include "src/vm/passes.h"
#include "src/vm/profile_trace.h"

namespace knit {

// ---- options -----------------------------------------------------------------

struct KnitcOptions {
  bool optimize = true;            // per-TU optimizer (inline + LVN)

  // Optimization level (knitc -O0/-O1/-O2): 0 disables all optimization (same
  // as optimize=false), 1 runs the per-TU passes (the default — per-file gcc,
  // as the paper's modular builds had), 2 additionally runs the whole-image
  // link-time passes (cross-unit inlining, global DCE, devirtualization) in the
  // LinkOptimize stage. Every level produces bit-identical program outputs;
  // levels differ only in speed and text size.
  int opt_level = 1;

  // Inline budgets, threaded into both the per-TU optimizer and the image
  // passes (and into the compile-stage cache keys).
  int inline_limit = 48;
  int caller_growth = 32768;
  bool check_constraints = true;   // run the §4 constraint checker
  bool flatten = true;             // honor `flatten` markers in compound units
  bool flatten_everything = false; // merge the whole program into one TU (ablation)
  bool sort_definitions = true;    // flattener defs-before-uses sorting (ablation)
  bool callers_first_definitions = false;  // adversarial order (ablation)

  // Failure-aware initialization (see DESIGN.md "Initialization failure
  // semantics"). When on, the generated knit__init records per-instance progress
  // into a status array, treats a nonzero return from an int-returning initializer
  // as failure (rolling back and reporting the failing instance index), and a
  // generated knit__rollback finalizes exactly the already-initialized instances in
  // finalizer-schedule order. When off, knit__init is the paper's monolithic void
  // call sequence.
  bool failsafe_init = true;

  // Compile-stage worker threads (>= 1). Images are bit-identical for every value:
  // parallelism only reorders *when* units compile, never how results merge.
  int jobs = 1;

  // Persist compile-stage artifacts under this directory (created if missing).
  // "" keeps the cache in-memory only — per pipeline, unless `cache` is shared.
  std::string cache_dir;

  // Explicitly shared artifact cache (e.g. one cache across the four Table-1
  // router builds). Null: the pipeline creates its own from `cache_dir`.
  std::shared_ptr<BuildCache> cache;

  // Extra native names to make available at link time (besides the intrinsics and
  // the environment symbols derived from the top unit's imports).
  std::vector<std::string> extra_natives;

  // Pre-compiled components (paper §3.2 fn. 2: "Knit can actually work with C,
  // assembly, and object code"). A unit whose files clause names a single "*.o"
  // entry takes its object from this map instead of compiling sources; such units
  // go through the normal objcopy duplicate/rename/localize path but cannot be
  // source-flattened (they are pulled out of any flatten group). Prebuilt objects
  // are never cached: the caller already owns the artifact.
  std::map<std::string, ObjectFile> prebuilt_objects;

  // Profile-guided optimization (`knitc --profile-use=FILE`): a profile
  // previously recorded with --profile (or snapshotted from RunResult::profile)
  // and loaded via ParseComponentProfile. Null = no PGO; with a profile and
  // opt_level >= 2, LinkOptimize ranks cross-inline candidates hottest-first
  // and runs the layout-pgo / outline-cold passes. A profile whose recording
  // context does not match this build (different top unit, configuration, or
  // -O level) is ignored with a warning — stale profiles can cost speed, never
  // correctness. The profile digest is part of the compile-stage cache keys:
  // same sources + different profile ⇒ recompile and relink.
  std::shared_ptr<const LoadedProfile> profile;

  // Instance paths whose component boundary stays rebindable at run time (the
  // live-reconfiguration subsystem, src/reconfig/). "*" marks every instance.
  // A swappable instance is pulled out of any flatten group (its boundary must
  // survive as call sites), its global text symbols get binding slots at link
  // time (Image::bindings; cross-component callers compile to kCallBound), and
  // the -O2 image passes neither devirtualize into it nor eliminate the slot
  // targets — the deopt that keeps hot-swap sound under whole-image optimization.
  std::vector<std::string> swappable;
};

// ---- metrics -----------------------------------------------------------------

// One record per executed stage (stages re-entered or repeated append new rows).
struct StageMetrics {
  std::string stage;   // "parse", "elaborate", "schedule", "check", "compile",
                       // "objcopy", "flatten", "init-object", "link",
                       // "link-optimize"
  double seconds = 0;  // wall time
  int items = 0;       // units parsed / instances / compile tasks / objects linked
  int cache_hits = 0;
  int cache_misses = 0;
  int threads = 1;     // worker threads that ran this stage
};

struct PipelineMetrics {
  std::vector<StageMetrics> stages;

  // Per-pass optimizer statistics (knitc --print-passes): object-scope rows
  // merged from every fresh compile task in deterministic task order, then the
  // image-scope rows from LinkOptimize. Cache hits contribute nothing — the
  // rows describe work this build actually did.
  std::vector<PassStats> pass_stats;

  int instance_count = 0;
  int object_count = 0;
  int flatten_group_count = 0;

  // Sum of `seconds` over rows named `stage` (0 when absent).
  double StageSeconds(const std::string& stage) const;
  double TotalSeconds() const;
  int CacheHits() const;
  int CacheMisses() const;

  // Last row with this stage name; nullptr when the stage never ran.
  const StageMetrics* Find(const std::string& stage) const;

  // Structured dump for `knitc --stats-json`.
  std::string ToJson() const;
};

// Renders the stage timings as a Chrome trace-event JSON document (`knitc
// --trace=FILE`): one "X" span per executed stage row, laid end to end in
// execution order (stage rows record durations, not absolute start times; the
// pipeline runs stages sequentially, so the reconstruction is faithful), with
// items/cache-hits/misses/threads attached as args.
std::string PipelineMetricsTraceJson(const PipelineMetrics& metrics);

// ---- stage artifacts ---------------------------------------------------------

// After Parse: the syntactic unit/bundletype/property declarations.
struct ParsedProgram {
  std::shared_ptr<const KnitProgram> program;
};

// After Elaborate: name-resolved definitions plus the flat instance graph for one
// top-level unit. `config` points into `*elaboration`, which is kept alive by the
// shared_ptr — artifacts stay valid independent of the pipeline.
struct ElaboratedConfig {
  std::shared_ptr<const Elaboration> elaboration;
  std::shared_ptr<const Configuration> config;
  std::string top_unit;
};

// After Schedule: a legal init/fini order.
struct ScheduledConfig {
  ElaboratedConfig elaborated;
  std::shared_ptr<const Schedule> schedule;
};

// After Check: constraint domains (empty solution when checking is disabled).
struct CheckedConfig {
  ScheduledConfig scheduled;
  std::shared_ptr<const ConstraintSolution> solution;
};

// After Compile: every object in final link order (standalone instances in
// instance order, then flatten groups, then the generated init/fini object), plus
// the init-runtime metadata the host needs to drive knit__init / knit__rollback.
struct CompiledUnits {
  CheckedConfig checked;
  std::vector<ObjectFile> objects;

  std::string init_function;
  std::string fini_function;
  std::string rollback_function;  // "" when failsafe init is disabled
  std::string status_symbol;
  std::string failed_symbol;
  std::vector<std::string> instance_paths;
  std::map<std::string, int> init_symbol_instances;  // init/fini link name -> instance
};

// After Link: the executable image.
struct LinkedImage {
  CompiledUnits compiled;
  Image image;
  std::vector<PlacedObject> placements;
  std::vector<std::string> natives;
  // (port, symbol) -> link name for every top-level export.
  std::map<std::pair<std::string, std::string>, std::string> export_names;
};

// After LinkOptimize: the image with the whole-image -O2 passes applied (the
// identity at -O0/-O1). Wraps a LinkedImage so every downstream consumer —
// Machine construction, KnitBuildResultFrom, the benches — is unchanged; the
// stage is re-enterable and replay-bit-identical like the other six.
struct OptimizedImage {
  LinkedImage linked;
  std::vector<PassStats> pass_stats;  // image-scope rows from this run
};

// A compiled replacement for one instance, ready for the reconfig engine
// (src/reconfig/) to patch-link into a running image. Instance-owned globals
// carry a version suffix so the replacement coexists with the retired code.
struct ReplacementObject {
  ObjectFile object;
  std::vector<std::string> initializers;  // versioned link names, declaration order
  std::vector<std::string> finalizers;    // versioned link names, declaration order
  // Unversioned export link name (== BindingSlot::symbol) -> versioned name.
  std::map<std::string, std::string> export_links;
};

// Compiles `source` as a replacement for the instance at `instance_path`,
// enforcing the same interface contract the compile stage enforces for the
// original unit files (exports/initializers defined, imports only declared).
// Exports and init/fini entry points are renamed to their instance link names
// plus `version_suffix`; imports resolve to the running configuration's
// (unversioned) supplier link names; everything else is localized. `sources`
// provides #include resolution; `source_name` labels diagnostics.
Result<ReplacementObject> CompileInstanceReplacement(
    const Elaboration& elaboration, const Configuration& config,
    const std::string& instance_path, const std::string& source,
    const std::string& source_name, const SourceMap& sources,
    const std::string& version_suffix, Diagnostics& diags);

// ---- the pipeline ------------------------------------------------------------

class KnitPipeline {
 public:
  explicit KnitPipeline(KnitcOptions options = KnitcOptions());

  // Stages. Each reports failures into `diags` and returns Failure(); artifacts
  // from a failed call must not be fed forward.
  Result<ParsedProgram> Parse(const std::string& knit_source, Diagnostics& diags);
  Result<ElaboratedConfig> Elaborate(const ParsedProgram& parsed, const std::string& top_unit,
                                     Diagnostics& diags);
  Result<ScheduledConfig> Schedule(const ElaboratedConfig& elaborated, Diagnostics& diags);
  Result<CheckedConfig> Check(const ScheduledConfig& scheduled, Diagnostics& diags);
  Result<CompiledUnits> Compile(const CheckedConfig& checked, const SourceMap& sources,
                                Diagnostics& diags);
  Result<LinkedImage> Link(const CompiledUnits& compiled, Diagnostics& diags);
  Result<OptimizedImage> LinkOptimize(const LinkedImage& linked, Diagnostics& diags);

  // Convenience: all seven stages (LinkOptimize's result is folded into the
  // returned LinkedImage, so callers see optimized code transparently).
  Result<LinkedImage> Build(const std::string& knit_source, const SourceMap& sources,
                            const std::string& top_unit, Diagnostics& diags);

  const KnitcOptions& options() const { return options_; }
  const PipelineMetrics& metrics() const { return metrics_; }
  BuildCache& cache() { return *cache_; }
  const std::shared_ptr<BuildCache>& shared_cache() const { return cache_; }

 private:
  StageMetrics& BeginStage(const std::string& stage);

  KnitcOptions options_;
  std::shared_ptr<BuildCache> cache_;
  PipelineMetrics metrics_;
};

// The ProfileMeta a profile recorded from a build of `config` at `opt_level`
// carries (see profile_trace.h): the top unit name plus a digest over the
// elaborated instance paths and their unit names. The CLI stamps this into
// --profile documents; LinkOptimize compares it against --profile-use input and
// falls back to plain -O2 (with a warning) on any mismatch.
ProfileMeta MakeProfileMeta(const ElaboratedConfig& config, int opt_level);

// Stable 64-bit digest of everything a Machine observes in an image: functions
// (name, layout, code), natives, data bytes, and symbol tables. Two images with
// equal fingerprints are behaviorally identical; the determinism tests sweep
// --jobs and cache states against this.
uint64_t FingerprintImage(const Image& image);

// The intrinsic natives every image may use (the VM pre-binds implementations).
const std::vector<std::string>& IntrinsicNatives();

}  // namespace knit

#endif  // SRC_DRIVER_PIPELINE_H_
