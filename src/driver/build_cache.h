// Content-addressed artifact cache for the compile stage of the Knit pipeline
// (src/driver/pipeline.h).
//
// Keys are FNV-64 digests over everything that can influence the compiled object:
// the unit's source text (transitive #include closure through the in-memory
// SourceMap), the resolved codegen options, and — for flatten groups — the member
// instance paths, rename maps, and flatten options (see UnitCacheKey /
// GroupCacheKey in pipeline.cc for the exact recipe). Values are finished
// pre-objcopy ObjectFiles: the per-instance duplicate/rename/localize pass is
// cheap and always re-runs, so rewiring a configuration never invalidates the
// cached base objects.
//
// The cache is in-memory by default (what tests use); giving it a directory makes
// every entry also persist as `knit-<16 hex>.kobj`, so warm rebuilds survive
// process restarts. All methods are thread-safe: compile tasks running under the
// executor probe and fill the cache concurrently.
#ifndef SRC_DRIVER_BUILD_CACHE_H_
#define SRC_DRIVER_BUILD_CACHE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "src/obj/object.h"

namespace knit {

class BuildCache {
 public:
  BuildCache() = default;
  // `dir` is created if missing; "" keeps the cache purely in memory.
  explicit BuildCache(std::string dir);

  // True (and fills *out) when `key` is present in memory or on disk.
  bool Lookup(uint64_t key, ObjectFile* out);

  void Store(uint64_t key, const ObjectFile& object);

  const std::string& dir() const { return dir_; }
  size_t size() const;

 private:
  std::string PathFor(uint64_t key) const;

  mutable std::mutex mutex_;
  std::string dir_;
  std::map<uint64_t, ObjectFile> memory_;
};

// On-disk object format (versioned; a stale or corrupt file reads as a miss).
std::string SerializeObjectFile(const ObjectFile& object);
bool DeserializeObjectFile(const std::string& bytes, ObjectFile* out);

}  // namespace knit

#endif  // SRC_DRIVER_BUILD_CACHE_H_
