// knitc: the end-to-end Knit compiler pipeline (paper §6, first paragraph):
//
//   "In a typical use, the Knit compiler reads the linking specification and unit
//    files, generates initialization and finalization code, runs the C compiler or
//    assembler when necessary, and ultimately produces object files. The object
//    files are then processed by a slightly modified version of GNU's objcopy,
//    which handles renaming symbols and duplicating object code for multiply-
//    instantiated units. Finally, these object files are linked together using ld
//    to produce the program."
//
// Pipeline: parse .knit -> elaborate -> instantiate -> schedule init/fini ->
// check constraints -> compile each unit once -> objcopy-duplicate + rename per
// instance (or source-flatten marked groups into one TU) -> generate the init/fini
// translation unit -> ld-link everything into a VM image.
#ifndef SRC_DRIVER_KNITC_H_
#define SRC_DRIVER_KNITC_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/constraints/check.h"
#include "src/knitsem/elaborate.h"
#include "src/knitsem/instantiate.h"
#include "src/minic/clexer.h"
#include "src/ld/link.h"
#include "src/obj/object.h"
#include "src/sched/init_sched.h"
#include "src/support/diagnostics.h"
#include "src/support/result.h"
#include "src/vm/image.h"
#include "src/vm/machine.h"

namespace knit {

struct KnitcOptions {
  bool optimize = true;            // per-TU optimizer (inline + LVN)
  bool check_constraints = true;   // run the §4 constraint checker
  bool flatten = true;             // honor `flatten` markers in compound units
  bool flatten_everything = false; // merge the whole program into one TU (ablation)
  bool sort_definitions = true;    // flattener defs-before-uses sorting (ablation)
  bool callers_first_definitions = false;  // adversarial order (ablation)

  // Failure-aware initialization (see DESIGN.md "Initialization failure
  // semantics"). When on, the generated knit__init records per-instance progress
  // into a status array, treats a nonzero return from an int-returning initializer
  // as failure (rolling back and reporting the failing instance index), and a
  // generated knit__rollback finalizes exactly the already-initialized instances in
  // finalizer-schedule order. When off, knit__init is the paper's monolithic void
  // call sequence.
  bool failsafe_init = true;

  // Extra native names to make available at link time (besides the intrinsics and
  // the environment symbols derived from the top unit's imports).
  std::vector<std::string> extra_natives;

  // Pre-compiled components (paper §3.2 fn. 2: "Knit can actually work with C,
  // assembly, and object code"). A unit whose files clause names a single "*.o"
  // entry takes its object from this map instead of compiling sources; such units
  // go through the normal objcopy duplicate/rename/localize path but cannot be
  // source-flattened (they are pulled out of any flatten group).
  std::map<std::string, ObjectFile> prebuilt_objects;
};

struct BuildStats {
  double frontend_seconds = 0;    // knit parse + elaborate + instantiate
  double schedule_seconds = 0;
  double constraint_seconds = 0;
  double compile_seconds = 0;     // MiniC parsing + sema + codegen + optimizer
  double objcopy_seconds = 0;     // duplicate/rename/localize
  double flatten_seconds = 0;
  double link_seconds = 0;
  int instance_count = 0;
  int object_count = 0;
  int flatten_group_count = 0;
};

// A fully built Knit program.
struct KnitBuildResult {
  // Owns the definitions Configuration points into; keep alive as long as config.
  std::unique_ptr<Elaboration> elaboration;
  Configuration config;
  Schedule schedule;
  ConstraintSolution constraint_solution;

  Image image;
  // ld's placement map: where each instance object landed (text/data), for link-map
  // style reporting.
  std::vector<PlacedObject> placements;
  BuildStats stats;

  // Call these (via the VM) around the workload. With failsafe init, knit__init
  // returns -1 (0xFFFFFFFF) on success or the failing instance index after an
  // initializer reported a nonzero status (rollback has already run in that case).
  std::string init_function = "knit__init";
  std::string fini_function = "knit__fini";

  // Failure-aware init runtime, generated when KnitcOptions::failsafe_init:
  //   rollback_function — call after a *trapped* knit__init to finalize exactly the
  //     already-initialized instances (finalizer-schedule order) and reset progress
  //     so knit__init can be retried; "" when failsafe init is disabled.
  //   status_symbol — data symbol of the per-instance array of completed
  //     initializer counts (instance i is initialized when it reaches
  //     InitializerCounts(config)[i]).
  //   failed_symbol — data symbol holding the instance index currently (or last)
  //     being initialized; -1 when init is not running / succeeded.
  std::string rollback_function;
  std::string status_symbol;
  std::string failed_symbol;

  // Instance index -> Knit component path ("Top/Log#2"), for failure reporting.
  std::vector<std::string> instance_paths;

  // Maps an init/fini link symbol (e.g. from RunResult::backtrace) back to the
  // instance it belongs to; -1 if the symbol is not an init/fini entry point.
  int InstanceOfInitSymbol(const std::string& link_name) const;

  // The failing instance of a knit__init RunResult: -1 on success, the reported
  // index for a status failure, or the instance of the innermost init symbol on the
  // trap backtrace (-1 if none can be identified).
  int FailingInstance(const RunResult& result) const;

  // Reports an init failure as Knit-level component diagnostics (instance path +
  // initializer) instead of raw VM symbols. Returns FailingInstance(result).
  int ReportInitFailure(const RunResult& result, Diagnostics& diags) const;

  // Native names the image was linked against; bind environment functions on the
  // Machine under these names (see EnvSymbol() in src/support/mangle.h).
  std::vector<std::string> natives;

  // Link name of `symbol` exported through the top-level unit's export `port`;
  // "" if unknown.
  std::string ExportedSymbol(const std::string& port, const std::string& symbol) const;

 private:
  friend class KnitCompiler;
  std::map<std::pair<std::string, std::string>, std::string> export_names_;
  std::map<std::string, int> init_symbol_instances_;  // init/fini link name -> instance
};

// The intrinsic natives every image may use (the VM pre-binds implementations).
const std::vector<std::string>& IntrinsicNatives();

// Builds `top_unit` from a Knit source and a map of MiniC sources.
Result<KnitBuildResult> KnitBuild(const std::string& knit_source, const SourceMap& sources,
                                  const std::string& top_unit, const KnitcOptions& options,
                                  Diagnostics& diags);

}  // namespace knit

#endif  // SRC_DRIVER_KNITC_H_
