// knitc: the end-to-end Knit compiler (paper §6, first paragraph):
//
//   "In a typical use, the Knit compiler reads the linking specification and unit
//    files, generates initialization and finalization code, runs the C compiler or
//    assembler when necessary, and ultimately produces object files. The object
//    files are then processed by a slightly modified version of GNU's objcopy,
//    which handles renaming symbols and duplicating object code for multiply-
//    instantiated units. Finally, these object files are linked together using ld
//    to produce the program."
//
// This header is the one-shot convenience entry point. The build itself is the
// staged pipeline of src/driver/pipeline.h (Parse → Elaborate → Schedule → Check
// → Compile → Link); KnitBuild() runs all six stages and repackages the final
// LinkedImage as a KnitBuildResult. Hosts that want to stop between phases,
// inspect artifacts, share an artifact cache, or compile in parallel should use
// KnitPipeline directly.
#ifndef SRC_DRIVER_KNITC_H_
#define SRC_DRIVER_KNITC_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/driver/pipeline.h"
#include "src/vm/machine.h"

namespace knit {

// Stage timings/counters of the build. Historical name; see PipelineMetrics for
// the per-stage records (StageSeconds("compile"), CacheHits(), ToJson(), ...).
using BuildStats = PipelineMetrics;

// A fully built Knit program.
struct KnitBuildResult {
  // Owns the definitions Configuration points into; shared with any pipeline
  // artifacts that outlive this result.
  std::shared_ptr<const Elaboration> elaboration;
  Configuration config;
  Schedule schedule;
  ConstraintSolution constraint_solution;

  Image image;
  // ld's placement map: where each instance object landed (text/data), for link-map
  // style reporting.
  std::vector<PlacedObject> placements;
  BuildStats stats;

  // Call these (via the VM) around the workload. With failsafe init, knit__init
  // returns -1 (0xFFFFFFFF) on success or the failing instance index after an
  // initializer reported a nonzero status (rollback has already run in that case).
  std::string init_function = "knit__init";
  std::string fini_function = "knit__fini";

  // Failure-aware init runtime, generated when KnitcOptions::failsafe_init:
  //   rollback_function — call after a *trapped* knit__init to finalize exactly the
  //     already-initialized instances (finalizer-schedule order) and reset progress
  //     so knit__init can be retried; "" when failsafe init is disabled.
  //   status_symbol — data symbol of the per-instance array of completed
  //     initializer counts (instance i is initialized when it reaches
  //     InitializerCounts(config)[i]).
  //   failed_symbol — data symbol holding the instance index currently (or last)
  //     being initialized; -1 when init is not running / succeeded.
  std::string rollback_function;
  std::string status_symbol;
  std::string failed_symbol;

  // Instance index -> Knit component path ("Top/Log#2"), for failure reporting.
  std::vector<std::string> instance_paths;

  // Maps an init/fini link symbol (e.g. from RunResult::backtrace) back to the
  // instance it belongs to; -1 if the symbol is not an init/fini entry point.
  int InstanceOfInitSymbol(const std::string& link_name) const;

  // The failing instance of a knit__init RunResult: -1 on success, the reported
  // index for a status failure, or the instance of the innermost init symbol on the
  // trap backtrace (-1 if none can be identified).
  int FailingInstance(const RunResult& result) const;

  // Reports an init failure as Knit-level component diagnostics (instance path +
  // initializer) instead of raw VM symbols. Returns FailingInstance(result).
  int ReportInitFailure(const RunResult& result, Diagnostics& diags) const;

  // Native names the image was linked against; bind environment functions on the
  // Machine under these names (see EnvSymbol() in src/support/mangle.h).
  std::vector<std::string> natives;

  // Link name of `symbol` exported through the top-level unit's export `port`;
  // "" if unknown.
  std::string ExportedSymbol(const std::string& port, const std::string& symbol) const;

 private:
  friend Result<KnitBuildResult> KnitBuild(const std::string&, const SourceMap&,
                                           const std::string&, const KnitcOptions&,
                                           Diagnostics&);
  friend KnitBuildResult KnitBuildResultFrom(LinkedImage built, PipelineMetrics metrics);
  std::map<std::pair<std::string, std::string>, std::string> export_names_;
  std::map<std::string, int> init_symbol_instances_;  // init/fini link name -> instance
};

// Builds `top_unit` from a Knit source and a map of MiniC sources. Thin wrapper:
// constructs a KnitPipeline over `options` and runs all six stages.
Result<KnitBuildResult> KnitBuild(const std::string& knit_source, const SourceMap& sources,
                                  const std::string& top_unit, const KnitcOptions& options,
                                  Diagnostics& diags);

// Repackages a staged-pipeline LinkedImage (plus the pipeline's metrics) as the
// legacy result type — for hosts mid-migration that drive KnitPipeline themselves
// but still feed KnitBuildResult-shaped consumers.
KnitBuildResult KnitBuildResultFrom(LinkedImage built, PipelineMetrics metrics);

}  // namespace knit

#endif  // SRC_DRIVER_KNITC_H_
