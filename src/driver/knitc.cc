#include "src/driver/knitc.h"

namespace knit {

std::string KnitBuildResult::ExportedSymbol(const std::string& port,
                                            const std::string& symbol) const {
  auto it = export_names_.find({port, symbol});
  return it == export_names_.end() ? "" : it->second;
}

int KnitBuildResult::InstanceOfInitSymbol(const std::string& link_name) const {
  auto it = init_symbol_instances_.find(link_name);
  return it == init_symbol_instances_.end() ? -1 : it->second;
}

int KnitBuildResult::FailingInstance(const RunResult& result) const {
  if (result.ok) {
    // Failsafe knit__init returns -1 on success, else the failing instance index.
    if (rollback_function.empty() || result.value == 0xFFFFFFFFu) {
      return -1;
    }
    int index = static_cast<int>(result.value);
    return index >= 0 && index < static_cast<int>(instance_paths.size()) ? index : -1;
  }
  // Trap: the innermost backtrace frame belonging to an init/fini entry point
  // identifies the instance (frames are "symbol (pc N)").
  for (const std::string& frame : result.backtrace) {
    int instance = InstanceOfInitSymbol(frame.substr(0, frame.find(' ')));
    if (instance >= 0) {
      return instance;
    }
  }
  return -1;
}

int KnitBuildResult::ReportInitFailure(const RunResult& result, Diagnostics& diags) const {
  int instance = FailingInstance(result);
  if (result.ok && instance < 0) {
    return -1;  // success: nothing to report
  }
  std::string detail = result.ok ? "initializer reported a nonzero status"
                                 : result.error.substr(0, result.error.find('\n'));
  if (instance >= 0) {
    diags.Error(SourceLoc::Unknown(), "initialization of component '" +
                                          instance_paths[instance] + "' failed: " + detail);
  } else {
    diags.Error(SourceLoc::Unknown(), "initialization failed: " + detail);
  }
  return instance;
}

KnitBuildResult KnitBuildResultFrom(LinkedImage built, PipelineMetrics metrics) {
  KnitBuildResult result;
  const CompiledUnits& compiled = built.compiled;
  const ElaboratedConfig& elaborated = compiled.checked.scheduled.elaborated;

  result.elaboration = elaborated.elaboration;
  result.config = *elaborated.config;
  result.schedule = *compiled.checked.scheduled.schedule;
  result.constraint_solution = *compiled.checked.solution;

  result.image = std::move(built.image);
  result.placements = std::move(built.placements);
  result.stats = std::move(metrics);

  result.init_function = compiled.init_function;
  result.fini_function = compiled.fini_function;
  result.rollback_function = compiled.rollback_function;
  result.status_symbol = compiled.status_symbol;
  result.failed_symbol = compiled.failed_symbol;
  result.instance_paths = compiled.instance_paths;
  result.init_symbol_instances_ = compiled.init_symbol_instances;

  result.natives = std::move(built.natives);
  result.export_names_ = std::move(built.export_names);
  return result;
}

Result<KnitBuildResult> KnitBuild(const std::string& knit_source, const SourceMap& sources,
                                  const std::string& top_unit, const KnitcOptions& options,
                                  Diagnostics& diags) {
  KnitPipeline pipeline(options);
  Result<LinkedImage> built = pipeline.Build(knit_source, sources, top_unit, diags);
  if (!built.ok()) {
    return Result<KnitBuildResult>::Failure();
  }
  return KnitBuildResultFrom(built.take(), pipeline.metrics());
}

}  // namespace knit
