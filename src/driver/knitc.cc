#include "src/driver/knitc.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <variant>

#include "src/flatten/flatten.h"
#include "src/knitlang/parser.h"
#include "src/ld/link.h"
#include "src/minic/cparser.h"
#include "src/minic/sema.h"
#include "src/obj/object.h"
#include "src/support/mangle.h"
#include "src/vm/codegen.h"

namespace knit {

namespace {

double Seconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - since).count();
}

// True when the unit is backed by pre-compiled object code rather than sources.
bool IsObjectUnit(const UnitDecl& unit) {
  return unit.files.size() == 1 && unit.files[0].size() > 2 &&
         unit.files[0].rfind(".o") == unit.files[0].size() - 2;
}

// The C identifier a unit's source uses for (port, symbol), honoring renames.
std::string CNameOf(const UnitDecl& unit, const std::string& port, const std::string& symbol) {
  for (const RenameDecl& rename : unit.renames) {
    if (rename.port == port && rename.symbol == symbol) {
      return rename.c_name;
    }
  }
  return symbol;
}

}  // namespace

const std::vector<std::string>& IntrinsicNatives() {
  static const std::vector<std::string> kIntrinsics = {
      "__sbrk", "__putchar", "__cycles", "__abort", "__vararg", "__vararg_count", "__trace",
  };
  return kIntrinsics;
}

std::string KnitBuildResult::ExportedSymbol(const std::string& port,
                                            const std::string& symbol) const {
  auto it = export_names_.find({port, symbol});
  return it == export_names_.end() ? "" : it->second;
}

int KnitBuildResult::InstanceOfInitSymbol(const std::string& link_name) const {
  auto it = init_symbol_instances_.find(link_name);
  return it == init_symbol_instances_.end() ? -1 : it->second;
}

int KnitBuildResult::FailingInstance(const RunResult& result) const {
  if (result.ok) {
    // Failsafe knit__init returns -1 on success, else the failing instance index.
    if (rollback_function.empty() || result.value == 0xFFFFFFFFu) {
      return -1;
    }
    int index = static_cast<int>(result.value);
    return index >= 0 && index < static_cast<int>(instance_paths.size()) ? index : -1;
  }
  // Trap: the innermost backtrace frame belonging to an init/fini entry point
  // identifies the instance (frames are "symbol (pc N)").
  for (const std::string& frame : result.backtrace) {
    int instance = InstanceOfInitSymbol(frame.substr(0, frame.find(' ')));
    if (instance >= 0) {
      return instance;
    }
  }
  return -1;
}

int KnitBuildResult::ReportInitFailure(const RunResult& result, Diagnostics& diags) const {
  int instance = FailingInstance(result);
  if (result.ok && instance < 0) {
    return -1;  // success: nothing to report
  }
  std::string detail = result.ok ? "initializer reported a nonzero status"
                                 : result.error.substr(0, result.error.find('\n'));
  if (instance >= 0) {
    diags.Error(SourceLoc::Unknown(), "initialization of component '" +
                                          instance_paths[instance] + "' failed: " + detail);
  } else {
    diags.Error(SourceLoc::Unknown(), "initialization failed: " + detail);
  }
  return instance;
}

class KnitCompiler {
 public:
  KnitCompiler(const std::string& knit_source, const SourceMap& sources,
               const std::string& top_unit, const KnitcOptions& options, Diagnostics& diags)
      : knit_source_(knit_source),
        sources_(sources),
        top_unit_(top_unit),
        options_(options),
        diags_(diags) {}

  Result<KnitBuildResult> Run() {
    auto t0 = std::chrono::steady_clock::now();
    Result<KnitProgram> program = ParseKnit(knit_source_, "<knit>", diags_);
    if (!program.ok()) {
      return Result<KnitBuildResult>::Failure();
    }
    Result<Elaboration> elaboration = Elaborate(program.value(), diags_);
    if (!elaboration.ok()) {
      return Result<KnitBuildResult>::Failure();
    }
    result_.elaboration = std::make_unique<Elaboration>(std::move(elaboration.value()));
    Result<Configuration> config = Instantiate(*result_.elaboration, top_unit_, diags_);
    if (!config.ok()) {
      return Result<KnitBuildResult>::Failure();
    }
    result_.config = std::move(config.value());
    result_.stats.frontend_seconds = Seconds(t0);
    result_.stats.instance_count = static_cast<int>(result_.config.instances.size());

    t0 = std::chrono::steady_clock::now();
    Result<Schedule> schedule = ScheduleInitFini(result_.config, diags_);
    if (!schedule.ok()) {
      return Result<KnitBuildResult>::Failure();
    }
    result_.schedule = std::move(schedule.value());
    result_.stats.schedule_seconds = Seconds(t0);

    if (options_.check_constraints) {
      t0 = std::chrono::steady_clock::now();
      if (!CheckConstraints(*result_.elaboration, result_.config, diags_,
                            &result_.constraint_solution)
               .ok()) {
        return Result<KnitBuildResult>::Failure();
      }
      result_.stats.constraint_seconds = Seconds(t0);
    }

    if (!AssignGroups()) {
      return Result<KnitBuildResult>::Failure();
    }
    ComputeExternalExports();
    if (!CompileEverything() || !GenerateInitObject() || !LinkAll()) {
      return Result<KnitBuildResult>::Failure();
    }
    FillExportNames();
    return std::move(result_);
  }

 private:
  // ---- grouping -------------------------------------------------------------

  // group id per instance; -1 = standalone object (objcopy path).
  bool AssignGroups() {
    const Configuration& config = result_.config;
    groups_.assign(config.instances.size(), -1);
    if (options_.flatten_everything) {
      for (size_t i = 0; i < config.instances.size(); ++i) {
        groups_[i] = 0;
      }
      group_count_ = 1;
      StripObjectUnitsFromGroups();
      return true;
    }
    if (!options_.flatten) {
      group_count_ = 0;
      return true;
    }
    for (size_t i = 0; i < config.instances.size(); ++i) {
      groups_[i] = config.instances[i].flatten_group;
    }
    group_count_ = config.flatten_group_count;
    StripObjectUnitsFromGroups();
    return true;
  }

  // Pre-compiled units cannot be source-merged; they fall back to the objcopy path
  // even inside a flatten region.
  void StripObjectUnitsFromGroups() {
    for (size_t i = 0; i < result_.config.instances.size(); ++i) {
      if (IsObjectUnit(*result_.config.instances[i].unit)) {
        groups_[i] = -1;
      }
    }
  }

  // Exports that must remain globally visible after compilation: those consumed by
  // an instance in a *different* object (another flatten group or a standalone
  // instance) and those realizing top-level exports. Everything else can be
  // localized/staticized, which is what lets the optimizer inline unit code away
  // entirely inside a flattened group (and is why the paper's flattened router is
  // smaller, not larger, than the modular one).
  void ComputeExternalExports() {
    const Configuration& config = result_.config;
    auto group_of = [&](int i) { return groups_[i] >= 0 ? groups_[i] : -(i + 2); };
    for (size_t i = 0; i < config.instances.size(); ++i) {
      const Instance& instance = config.instances[i];
      for (const SupplierRef& supplier : instance.import_suppliers) {
        if (supplier.IsEnvironment()) {
          continue;
        }
        if (group_of(supplier.instance) != group_of(static_cast<int>(i))) {
          external_exports_.insert({supplier.instance, supplier.port});
        }
      }
    }
    for (const SupplierRef& supplier : config.top_export_suppliers) {
      if (!supplier.IsEnvironment()) {
        external_exports_.insert({supplier.instance, supplier.port});
      }
    }
  }

  // ---- per-instance rename maps ----------------------------------------------

  struct InstanceNames {
    std::map<std::string, std::string> renames;  // C name -> link name
    std::set<std::string> keep_global;           // link names that stay global
  };

  // Resolves the top-level-import environment name for a supplier reference.
  std::string SupplierLinkName(const SupplierRef& supplier, const std::string& symbol) {
    const Configuration& config = result_.config;
    if (supplier.IsEnvironment()) {
      const PortDecl& port = config.top->imports[supplier.port];
      return EnvSymbol(port.local_name, symbol);
    }
    const Instance& producer = config.instances[supplier.instance];
    const PortDecl& port = producer.unit->exports[supplier.port];
    return MangleExport(producer.path, port.local_name, symbol);
  }

  bool BuildInstanceNames(int instance_index, InstanceNames& out) {
    const Configuration& config = result_.config;
    const Instance& instance = config.instances[instance_index];
    const UnitDecl& unit = *instance.unit;
    const Elaboration& elaboration = *result_.elaboration;

    auto add = [&](const std::string& c_name, const std::string& link_name,
                   const SourceLoc& loc) {
      auto [it, inserted] = out.renames.emplace(c_name, link_name);
      if (!inserted && it->second != link_name) {
        diags_.Error(loc, "unit '" + unit.name + "' (instance " + instance.path +
                              "): C identifier '" + c_name +
                              "' is used for two different connections; add a rename "
                              "declaration to disambiguate");
        return false;
      }
      return true;
    };

    for (size_t e = 0; e < unit.exports.size(); ++e) {
      const PortDecl& port = unit.exports[e];
      const BundleTypeDecl* bundle = elaboration.FindBundleType(port.bundle_type);
      bool external =
          external_exports_.count({instance_index, static_cast<int>(e)}) > 0;
      for (const std::string& symbol : bundle->symbols) {
        std::string link = MangleExport(instance.path, port.local_name, symbol);
        if (!add(CNameOf(unit, port.local_name, symbol), link, port.loc)) {
          return false;
        }
        if (external) {
          out.keep_global.insert(link);
        }
      }
    }
    for (size_t m = 0; m < unit.imports.size(); ++m) {
      const PortDecl& port = unit.imports[m];
      const BundleTypeDecl* bundle = elaboration.FindBundleType(port.bundle_type);
      const SupplierRef& supplier = instance.import_suppliers[m];
      for (const std::string& symbol : bundle->symbols) {
        if (!add(CNameOf(unit, port.local_name, symbol), SupplierLinkName(supplier, symbol),
                 port.loc)) {
          return false;
        }
      }
    }
    for (const std::vector<InitFiniDecl>* list : {&unit.initializers, &unit.finalizers}) {
      for (const InitFiniDecl& decl : *list) {
        auto existing = out.renames.find(decl.function);
        if (existing != out.renames.end()) {
          // Also an exported symbol; the generated init object calls it by its
          // export link name, which therefore must stay global.
          out.keep_global.insert(existing->second);
          continue;
        }
        std::string link = MangleInitFini(instance.path, decl.function);
        if (!add(decl.function, link, decl.loc)) {
          return false;
        }
        out.keep_global.insert(link);
      }
    }
    return true;
  }

  // Link name used to CALL an init/fini function of an instance.
  std::string InitCallName(const InitCall& call) {
    const Instance& instance = result_.config.instances[call.instance];
    // If the function doubles as an exported symbol, use the export link name.
    for (size_t e = 0; e < instance.unit->exports.size(); ++e) {
      const PortDecl& port = instance.unit->exports[e];
      const BundleTypeDecl* bundle =
          result_.elaboration->FindBundleType(port.bundle_type);
      for (const std::string& symbol : bundle->symbols) {
        if (CNameOf(*instance.unit, port.local_name, symbol) == call.function) {
          return MangleExport(instance.path, port.local_name, symbol);
        }
      }
    }
    return MangleInitFini(instance.path, call.function);
  }

  // ---- compilation -------------------------------------------------------------

  CodegenOptions UnitCodegenOptions(const UnitDecl& unit) {
    std::vector<std::string> flags;
    if (!unit.flags_name.empty()) {
      const FlagsDecl* decl = result_.elaboration->FindFlags(unit.flags_name);
      if (decl != nullptr) {
        flags = decl->flags;
      }
    }
    CodegenOptions options = CodegenOptions::FromFlags(flags);
    if (!options_.optimize) {
      options.optimize = false;
    }
    return options;
  }

  // Parses + checks a unit's translation unit. Verifies that the unit's files
  // define every export and initializer/finalizer and do not define imports.
  Result<TranslationUnit> FrontUnit(const UnitDecl& unit, SemaInfo* info_out) {
    if (IsObjectUnit(unit)) {
      diags_.Error(unit.loc, "unit '" + unit.name + "' is object-backed and cannot be "
                             "source-flattened");
      return Result<TranslationUnit>::Failure();
    }
    Result<TranslationUnit> tu = ParseCFiles(sources_, unit.files, unit.name, types_, diags_);
    if (!tu.ok()) {
      return tu;
    }
    Result<SemaInfo> info = AnalyzeTranslationUnit(tu.value(), types_, diags_);
    if (!info.ok()) {
      return Result<TranslationUnit>::Failure();
    }
    const Elaboration& elaboration = *result_.elaboration;
    bool ok = true;
    for (const PortDecl& port : unit.exports) {
      const BundleTypeDecl* bundle = elaboration.FindBundleType(port.bundle_type);
      for (const std::string& symbol : bundle->symbols) {
        std::string c_name = CNameOf(unit, port.local_name, symbol);
        if (info.value().defined_functions.count(c_name) == 0 &&
            info.value().defined_globals.count(c_name) == 0) {
          diags_.Error(port.loc, "unit '" + unit.name + "': files do not define '" + c_name +
                                     "' (the C name of export " + port.local_name + "." +
                                     symbol + ")");
          ok = false;
        }
      }
    }
    for (const PortDecl& port : unit.imports) {
      const BundleTypeDecl* bundle = elaboration.FindBundleType(port.bundle_type);
      for (const std::string& symbol : bundle->symbols) {
        std::string c_name = CNameOf(unit, port.local_name, symbol);
        if (info.value().defined_functions.count(c_name) > 0 ||
            info.value().defined_globals.count(c_name) > 0) {
          diags_.Error(port.loc, "unit '" + unit.name + "': files DEFINE '" + c_name +
                                     "', which is the C name of import " + port.local_name +
                                     "." + symbol + " (imports must only be declared)");
          ok = false;
        }
      }
    }
    for (const std::vector<InitFiniDecl>* list : {&unit.initializers, &unit.finalizers}) {
      for (const InitFiniDecl& decl : *list) {
        if (info.value().defined_functions.count(decl.function) == 0) {
          diags_.Error(decl.loc, "unit '" + unit.name + "': files do not define "
                                 "initializer/finalizer '" +
                                     decl.function + "'");
          ok = false;
        }
      }
    }
    if (!ok) {
      return Result<TranslationUnit>::Failure();
    }
    if (info_out != nullptr) {
      *info_out = std::move(info.value());
    }
    return tu;
  }

  // Compiles a unit once (cached); returns a copy of the object.
  Result<ObjectFile> CompileUnitOnce(const UnitDecl& unit) {
    auto it = unit_objects_.find(unit.name);
    if (it != unit_objects_.end()) {
      return it->second;  // copy; callers duplicate anyway
    }
    if (IsObjectUnit(unit)) {
      auto prebuilt = options_.prebuilt_objects.find(unit.files[0]);
      if (prebuilt == options_.prebuilt_objects.end()) {
        diags_.Error(unit.loc, "unit '" + unit.name + "': no prebuilt object '" +
                                   unit.files[0] + "' was provided");
        return Result<ObjectFile>::Failure();
      }
      // Verify the object defines every export (and initializer/finalizer) under
      // the unit's C names; the usual source-level checks don't apply.
      const ObjectFile& object = prebuilt->second;
      bool ok = true;
      for (const PortDecl& port : unit.exports) {
        const BundleTypeDecl* bundle = result_.elaboration->FindBundleType(port.bundle_type);
        for (const std::string& symbol : bundle->symbols) {
          std::string c_name = CNameOf(unit, port.local_name, symbol);
          int index = object.FindSymbol(c_name);
          if (index < 0 ||
              object.symbols[index].section == ObjSymbol::Section::kUndefined) {
            diags_.Error(port.loc, "unit '" + unit.name + "': prebuilt object does not "
                                   "define '" +
                                       c_name + "'");
            ok = false;
          }
        }
      }
      if (!ok) {
        return Result<ObjectFile>::Failure();
      }
      unit_objects_.emplace(unit.name, object);
      return object;
    }
    SemaInfo info;
    Result<TranslationUnit> tu = FrontUnit(unit, &info);
    if (!tu.ok()) {
      return Result<ObjectFile>::Failure();
    }
    Result<ObjectFile> object = CompileTranslationUnit(
        tu.value(), info, types_, UnitCodegenOptions(unit), unit.name + ".o", diags_);
    if (!object.ok()) {
      return object;
    }
    unit_objects_.emplace(unit.name, object.value());
    return object;
  }

  bool CompileEverything() {
    auto t0 = std::chrono::steady_clock::now();
    const Configuration& config = result_.config;

    // Standalone instances: compile unit once, objcopy-duplicate + rename.
    for (size_t i = 0; i < config.instances.size(); ++i) {
      if (groups_[i] >= 0) {
        continue;
      }
      const Instance& instance = config.instances[i];
      Result<ObjectFile> base = CompileUnitOnce(*instance.unit);
      if (!base.ok()) {
        return false;
      }
      auto t_objcopy = std::chrono::steady_clock::now();
      InstanceNames names;
      if (!BuildInstanceNames(static_cast<int>(i), names)) {
        return false;
      }
      ObjectFile object = ObjcopyDuplicate(base.value(), instance.path + ".o");
      if (!ObjcopyRename(object, names.renames, diags_).ok()) {
        return false;
      }
      // Hide every defined global that is not an export/init symbol: Knit's
      // "defined names that are not exported will be hidden from all other units".
      for (const ObjSymbol& symbol : object.symbols) {
        if (symbol.global && symbol.section != ObjSymbol::Section::kUndefined &&
            names.keep_global.count(symbol.name) == 0) {
          if (!ObjcopyLocalize(object, symbol.name, diags_).ok()) {
            return false;
          }
        }
      }
      // Verify init/fini symbols are global (a static initializer cannot be called
      // from the generated init object).
      for (const std::string& keep : names.keep_global) {
        int index = object.FindSymbol(keep);
        if (index < 0 || object.symbols[index].section == ObjSymbol::Section::kUndefined) {
          diags_.Error(instance.unit->loc,
                       "instance " + instance.path + ": expected defined symbol '" + keep +
                           "' after renaming (is an export or initializer declared static, "
                           "or missing?)");
          return false;
        }
      }
      result_.stats.objcopy_seconds += Seconds(t_objcopy);
      link_items_.emplace_back(std::move(object));
      ++result_.stats.object_count;
    }

    // Flatten groups: merge instance sources into one TU per group and compile.
    for (int group = 0; group < group_count_; ++group) {
      auto t_flatten = std::chrono::steady_clock::now();
      std::vector<FlattenInput> inputs;
      for (size_t i = 0; i < config.instances.size(); ++i) {
        if (groups_[i] != group) {
          continue;
        }
        const Instance& instance = config.instances[i];
        Result<TranslationUnit> tu = FrontUnit(*instance.unit, nullptr);
        if (!tu.ok()) {
          return false;
        }
        InstanceNames names;
        if (!BuildInstanceNames(static_cast<int>(i), names)) {
          return false;
        }
        FlattenInput input;
        input.instance_path = instance.path;
        input.unit = std::move(tu.value());
        input.renames = std::move(names.renames);
        input.keep_global.assign(names.keep_global.begin(), names.keep_global.end());
        inputs.push_back(std::move(input));
      }
      if (inputs.empty()) {
        continue;
      }
      FlattenOptions flatten_options;
      flatten_options.sort_definitions = options_.sort_definitions;
      flatten_options.callers_first = options_.callers_first_definitions;
      Result<TranslationUnit> merged = FlattenUnits(std::move(inputs), flatten_options, diags_);
      if (!merged.ok()) {
        return false;
      }
      result_.stats.flatten_seconds += Seconds(t_flatten);

      Result<SemaInfo> info = AnalyzeTranslationUnit(merged.value(), types_, diags_);
      if (!info.ok()) {
        return false;
      }
      CodegenOptions codegen_options;
      codegen_options.optimize = options_.optimize;
      Result<ObjectFile> object =
          CompileTranslationUnit(merged.value(), info.value(), types_, codegen_options,
                                 "flatten" + std::to_string(group) + ".o", diags_);
      if (!object.ok()) {
        return false;
      }
      link_items_.emplace_back(std::move(object.value()));
      ++result_.stats.object_count;
      ++result_.stats.flatten_group_count;
    }

    result_.stats.compile_seconds = Seconds(t0) - result_.stats.objcopy_seconds -
                                    result_.stats.flatten_seconds;
    return true;
  }

  // ---- init/fini object ----------------------------------------------------------

  // True when the compiled function bound to `link_name` returns a value. Such an
  // initializer is *failable*: the failsafe init runtime treats a nonzero return as
  // "initialization failed" and rolls back.
  bool ReturnsValue(const std::string& link_name) const {
    for (const LinkItem& item : link_items_) {
      const ObjectFile* object = std::get_if<ObjectFile>(&item);
      if (object == nullptr) {
        continue;
      }
      int index = object->FindSymbol(link_name);
      if (index < 0 || object->symbols[index].section != ObjSymbol::Section::kText) {
        continue;
      }
      return object->functions[object->symbols[index].index].returns_value;
    }
    return false;
  }

  // The failure-aware init runtime (DESIGN.md "Initialization failure semantics").
  // knit__status[i] counts instance i's completed initializer calls; knit__rollback
  // finalizes exactly the fully-initialized instances (finalizer-schedule order,
  // i.e. reverse dependency order) and resets progress; knit__init returns -1 on
  // success or the failing instance index after a status failure (having already
  // rolled back). A trapped knit__init leaves the status array intact so the host
  // can invoke knit__rollback itself.
  std::string GenerateFailsafeInitSource() {
    const Schedule& schedule = result_.schedule;
    std::vector<int> counts = InitializerCounts(result_.config);
    int instance_count = static_cast<int>(result_.config.instances.size());

    result_.rollback_function = "knit__rollback";
    result_.status_symbol = "knit__status";
    result_.failed_symbol = "knit__failed";

    std::string source;
    source += "int knit__status[" + std::to_string(std::max(1, instance_count)) + "];\n";
    source += "int knit__failed;\n";

    auto reset_progress = [&](std::string& out) {
      for (int i = 0; i < instance_count; ++i) {
        out += "  knit__status[" + std::to_string(i) + "] = 0;\n";
      }
      out += "  knit__failed = -1;\n";
    };

    source += "void knit__rollback(void) {\n";
    for (const InitCall& call : schedule.finalizers) {
      if (counts[call.instance] == 0) {
        continue;  // never had initializers: nothing to undo on rollback
      }
      source += "  if (knit__status[" + std::to_string(call.instance) +
                "] == " + std::to_string(counts[call.instance]) + ") { " +
                InitCallName(call) + "(); }\n";
    }
    reset_progress(source);
    source += "}\n";

    source += "int knit__init(void) {\n";
    for (const InitCall& call : schedule.initializers) {
      std::string instance = std::to_string(call.instance);
      std::string name = InitCallName(call);
      source += "  knit__failed = " + instance + ";\n";
      if (ReturnsValue(name)) {
        source += "  if (" + name + "() != 0) { knit__rollback(); return " + instance +
                  "; }\n";
      } else {
        source += "  " + name + "();\n";
      }
      source += "  knit__status[" + instance + "] = knit__status[" + instance + "] + 1;\n";
    }
    source += "  knit__failed = -1;\n";
    source += "  return -1;\n";
    source += "}\n";

    source += "void knit__fini(void) {\n";
    for (const InitCall& call : schedule.finalizers) {
      source += "  " + InitCallName(call) + "();\n";
    }
    reset_progress(source);
    source += "}\n";
    return source;
  }

  bool GenerateInitObject() {
    const Schedule& schedule = result_.schedule;
    for (const Instance& instance : result_.config.instances) {
      result_.instance_paths.push_back(instance.path);
    }
    for (const std::vector<InitCall>* list : {&schedule.initializers, &schedule.finalizers}) {
      for (const InitCall& call : *list) {
        result_.init_symbol_instances_.emplace(InitCallName(call), call.instance);
      }
    }

    std::string source;
    std::set<std::string> declared;
    auto declare = [&](const InitCall& call) {
      std::string name = InitCallName(call);
      if (declared.insert(name).second) {
        bool failable = options_.failsafe_init && ReturnsValue(name);
        source += std::string("extern ") + (failable ? "int " : "void ") + name + "(void);\n";
      }
    };
    for (const InitCall& call : schedule.initializers) {
      declare(call);
    }
    for (const InitCall& call : schedule.finalizers) {
      declare(call);
    }

    if (!options_.failsafe_init) {
      // The paper's monolithic call sequence: no progress tracking, no rollback.
      source += "void knit__init(void) {\n";
      for (const InitCall& call : schedule.initializers) {
        source += "  " + InitCallName(call) + "();\n";
      }
      source += "}\n";
      source += "void knit__fini(void) {\n";
      for (const InitCall& call : schedule.finalizers) {
        source += "  " + InitCallName(call) + "();\n";
      }
      source += "}\n";
    } else {
      source += GenerateFailsafeInitSource();
    }

    Result<TranslationUnit> tu = ParseCString(source, "<knit-init>", types_, diags_);
    if (!tu.ok()) {
      return false;
    }
    Result<SemaInfo> info = AnalyzeTranslationUnit(tu.value(), types_, diags_);
    if (!info.ok()) {
      return false;
    }
    CodegenOptions codegen_options;
    codegen_options.optimize = false;  // nothing to optimize; keep call order obvious
    Result<ObjectFile> object = CompileTranslationUnit(tu.value(), info.value(), types_,
                                                       codegen_options, "knit-init.o", diags_);
    if (!object.ok()) {
      return false;
    }
    link_items_.emplace_back(std::move(object.value()));
    return true;
  }

  // ---- final link ----------------------------------------------------------------

  bool LinkAll() {
    auto t0 = std::chrono::steady_clock::now();
    LinkOptions link_options;
    link_options.natives = IntrinsicNatives();
    const Configuration& config = result_.config;
    for (const PortDecl& port : config.top->imports) {
      const BundleTypeDecl* bundle = result_.elaboration->FindBundleType(port.bundle_type);
      for (const std::string& symbol : bundle->symbols) {
        link_options.natives.push_back(EnvSymbol(port.local_name, symbol));
      }
    }
    for (const std::string& native : options_.extra_natives) {
      link_options.natives.push_back(native);
    }
    result_.natives = link_options.natives;

    Result<LinkResult> linked = Link(std::move(link_items_), link_options, diags_);
    if (!linked.ok()) {
      return false;
    }
    result_.image = std::move(linked.value().image);
    result_.placements = std::move(linked.value().placements);
    result_.stats.link_seconds = Seconds(t0);
    return true;
  }

  void FillExportNames() {
    const Configuration& config = result_.config;
    for (size_t e = 0; e < config.top->exports.size(); ++e) {
      const PortDecl& port = config.top->exports[e];
      const BundleTypeDecl* bundle = result_.elaboration->FindBundleType(port.bundle_type);
      const SupplierRef& supplier = config.top_export_suppliers[e];
      for (const std::string& symbol : bundle->symbols) {
        result_.export_names_[{port.local_name, symbol}] =
            SupplierLinkName(supplier, symbol);
      }
    }
  }

  const std::string& knit_source_;
  const SourceMap& sources_;
  const std::string& top_unit_;
  const KnitcOptions& options_;
  Diagnostics& diags_;

  KnitBuildResult result_;
  TypeTable types_;
  std::vector<int> groups_;
  int group_count_ = 0;
  std::set<std::pair<int, int>> external_exports_;  // (instance, export port)
  std::map<std::string, ObjectFile> unit_objects_;
  std::vector<LinkItem> link_items_;
};

Result<KnitBuildResult> KnitBuild(const std::string& knit_source, const SourceMap& sources,
                                  const std::string& top_unit, const KnitcOptions& options,
                                  Diagnostics& diags) {
  KnitCompiler compiler(knit_source, sources, top_unit, options, diags);
  return compiler.Run();
}

}  // namespace knit
