#include "src/driver/build_cache.h"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/support/hash.h"

namespace knit {

namespace {

constexpr char kMagic[8] = {'K', 'O', 'B', 'J', '0', '0', '0', '1'};

void PutU32(std::string& out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void PutI32(std::string& out, int32_t value) { PutU32(out, static_cast<uint32_t>(value)); }

void PutString(std::string& out, const std::string& text) {
  PutU32(out, static_cast<uint32_t>(text.size()));
  out.append(text);
}

class Reader {
 public:
  Reader(const std::string& bytes, size_t start) : bytes_(bytes), pos_(start) {}

  bool ok() const { return ok_; }

  uint32_t U32() {
    if (pos_ + 4 > bytes_.size()) {
      ok_ = false;
      return 0;
    }
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= static_cast<uint32_t>(static_cast<unsigned char>(bytes_[pos_ + i])) << (8 * i);
    }
    pos_ += 4;
    return value;
  }

  int32_t I32() { return static_cast<int32_t>(U32()); }

  std::string Str() {
    uint32_t size = U32();
    if (!ok_ || pos_ + size > bytes_.size()) {
      ok_ = false;
      return "";
    }
    std::string out = bytes_.substr(pos_, size);
    pos_ += size;
    return out;
  }

  std::vector<uint8_t> Raw(uint32_t size) {
    if (!ok_ || pos_ + size > bytes_.size()) {
      ok_ = false;
      return {};
    }
    std::vector<uint8_t> out(bytes_.begin() + static_cast<ptrdiff_t>(pos_),
                             bytes_.begin() + static_cast<ptrdiff_t>(pos_ + size));
    pos_ += size;
    return out;
  }

  bool AtEnd() const { return pos_ == bytes_.size(); }

 private:
  const std::string& bytes_;
  size_t pos_;
  bool ok_ = true;
};

}  // namespace

std::string SerializeObjectFile(const ObjectFile& object) {
  std::string out(kMagic, sizeof(kMagic));
  PutString(out, object.name);

  PutU32(out, static_cast<uint32_t>(object.symbols.size()));
  for (const ObjSymbol& symbol : object.symbols) {
    PutString(out, symbol.name);
    PutU32(out, static_cast<uint32_t>(symbol.section));
    PutU32(out, symbol.global ? 1 : 0);
    PutI32(out, symbol.index);
    PutI32(out, symbol.size);
    PutI32(out, symbol.align);
  }

  PutU32(out, static_cast<uint32_t>(object.functions.size()));
  for (const BytecodeFunction& function : object.functions) {
    PutString(out, function.name);
    PutI32(out, function.frame_size);
    PutI32(out, function.param_count);
    PutU32(out, function.variadic ? 1 : 0);
    PutU32(out, function.returns_value ? 1 : 0);
    PutI32(out, function.text_offset);
    PutU32(out, static_cast<uint32_t>(function.code.size()));
    for (const Insn& insn : function.code) {
      PutU32(out, static_cast<uint32_t>(insn.op));
      PutI32(out, insn.a);
      PutI32(out, insn.b);
    }
  }

  PutU32(out, static_cast<uint32_t>(object.data.size()));
  out.append(reinterpret_cast<const char*>(object.data.data()), object.data.size());

  PutU32(out, static_cast<uint32_t>(object.data_relocs.size()));
  for (const DataReloc& reloc : object.data_relocs) {
    PutI32(out, reloc.data_offset);
    PutI32(out, reloc.symbol);
  }
  return out;
}

bool DeserializeObjectFile(const std::string& bytes, ObjectFile* out) {
  if (bytes.size() < sizeof(kMagic) || std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return false;
  }
  Reader reader(bytes, sizeof(kMagic));
  ObjectFile object;
  object.name = reader.Str();

  uint32_t symbol_count = reader.U32();
  for (uint32_t i = 0; reader.ok() && i < symbol_count; ++i) {
    ObjSymbol symbol;
    symbol.name = reader.Str();
    uint32_t section = reader.U32();
    if (section > static_cast<uint32_t>(ObjSymbol::Section::kData)) {
      return false;
    }
    symbol.section = static_cast<ObjSymbol::Section>(section);
    symbol.global = reader.U32() != 0;
    symbol.index = reader.I32();
    symbol.size = reader.I32();
    symbol.align = reader.I32();
    object.symbols.push_back(std::move(symbol));
  }

  uint32_t function_count = reader.U32();
  for (uint32_t i = 0; reader.ok() && i < function_count; ++i) {
    BytecodeFunction function;
    function.name = reader.Str();
    function.frame_size = reader.I32();
    function.param_count = reader.I32();
    function.variadic = reader.U32() != 0;
    function.returns_value = reader.U32() != 0;
    function.text_offset = reader.I32();
    uint32_t insn_count = reader.U32();
    for (uint32_t k = 0; reader.ok() && k < insn_count; ++k) {
      Insn insn;
      insn.op = static_cast<Op>(reader.U32());
      insn.a = reader.I32();
      insn.b = reader.I32();
      function.code.push_back(insn);
    }
    object.functions.push_back(std::move(function));
  }

  uint32_t data_size = reader.U32();
  object.data = reader.Raw(data_size);

  uint32_t reloc_count = reader.U32();
  for (uint32_t i = 0; reader.ok() && i < reloc_count; ++i) {
    DataReloc reloc;
    reloc.data_offset = reader.I32();
    reloc.symbol = reader.I32();
    object.data_relocs.push_back(reloc);
  }

  if (!reader.ok() || !reader.AtEnd()) {
    return false;
  }
  *out = std::move(object);
  return true;
}

BuildCache::BuildCache(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) {
    std::error_code error;
    std::filesystem::create_directories(dir_, error);
  }
}

std::string BuildCache::PathFor(uint64_t key) const {
  return dir_ + "/knit-" + HexDigest(key) + ".kobj";
}

bool BuildCache::Lookup(uint64_t key, ObjectFile* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = memory_.find(key);
  if (it != memory_.end()) {
    *out = it->second;
    return true;
  }
  if (dir_.empty()) {
    return false;
  }
  std::ifstream in(PathFor(key), std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  ObjectFile object;
  if (!DeserializeObjectFile(buffer.str(), &object)) {
    return false;  // stale format or corrupt file: treat as a miss
  }
  memory_.emplace(key, object);
  *out = std::move(object);
  return true;
}

void BuildCache::Store(uint64_t key, const ObjectFile& object) {
  std::lock_guard<std::mutex> lock(mutex_);
  memory_.insert_or_assign(key, object);
  if (dir_.empty()) {
    return;
  }
  std::ofstream out(PathFor(key), std::ios::binary | std::ios::trunc);
  if (out) {
    std::string bytes = SerializeObjectFile(object);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
}

size_t BuildCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return memory_.size();
}

}  // namespace knit
