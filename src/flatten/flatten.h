// The flattener (paper §6): merges the MiniC sources of several unit instances into
// ONE translation unit so the per-TU optimizer can inline across former component
// boundaries. The paper: "Knit merges the code from many different C files into a
// single file, and then invokes the C compiler on the resulting file. ... Knit must
// rename variables to eliminate conflicts, eliminate duplicate declarations for
// variables and types, and sort function definitions so that the definition of each
// function comes before as many uses as possible (to encourage inlining)."
//
// Inputs are per-instance translation units plus a symbol rename map per instance
// (import/export C names -> link names, everything else -> instance-local names).
// Renaming is scope-aware: a local variable shadowing a global name is not renamed.
#ifndef SRC_FLATTEN_FLATTEN_H_
#define SRC_FLATTEN_FLATTEN_H_

#include <map>
#include <string>
#include <vector>

#include "src/minic/ast.h"
#include "src/support/diagnostics.h"
#include "src/support/result.h"

namespace knit {

// One instance's contribution to a flattened TU.
struct FlattenInput {
  std::string instance_path;  // for diagnostics
  TranslationUnit unit;       // consumed

  // Top-level symbol renames (C name in the source -> global link name).
  std::map<std::string, std::string> renames;

  // Renamed top-level symbols that remain visible outside the merged TU (exports,
  // initializers). Everything else defined by the unit is made static so the
  // optimizer may inline it away entirely.
  std::vector<std::string> keep_global;
};

struct FlattenOptions {
  // Sort function definitions callees-first (the paper's defs-before-uses sorting;
  // switch off for the ablation benchmark).
  bool sort_definitions = true;
  // Ablation: emit definitions callers-first (the adversarial order for an inliner
  // that only inlines already-seen definitions). Overrides sort_definitions.
  bool callers_first = false;
};

// Renames all top-level symbols of `unit` in place (declarations and references).
// Symbols not present in `renames` get `local_prefix` prepended and are marked
// static. Scope-aware: locals shadowing globals are untouched.
void RenameTranslationUnit(TranslationUnit& unit,
                           const std::map<std::string, std::string>& renames,
                           const std::string& local_prefix,
                           const std::vector<std::string>& keep_global);

// Merges the inputs into a single TU: dedupes struct/typedef/extern declarations,
// orders function definitions callees-first, and reports conflicting definitions.
Result<TranslationUnit> FlattenUnits(std::vector<FlattenInput> inputs,
                                     const FlattenOptions& options, Diagnostics& diags);

}  // namespace knit

#endif  // SRC_FLATTEN_FLATTEN_H_
