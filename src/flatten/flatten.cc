#include "src/flatten/flatten.h"

#include <algorithm>
#include <set>

#include "src/graph/digraph.h"
#include "src/support/mangle.h"

namespace knit {
namespace {

// Scope-aware identifier renamer over one translation unit.
class Renamer {
 public:
  Renamer(const std::map<std::string, std::string>& renames, const std::string& local_prefix,
          const std::set<std::string>& keep_global)
      : renames_(renames), local_prefix_(local_prefix), keep_global_(keep_global) {}

  void Run(TranslationUnit& unit) {
    // Collect every top-level name first so references to later definitions rename
    // correctly.
    for (const Decl& decl : unit.decls) {
      if (decl.kind == Decl::Kind::kFunction || decl.kind == Decl::Kind::kGlobalVar) {
        toplevel_.insert(decl.name);
      }
    }
    for (Decl& decl : unit.decls) {
      RenameDecl(decl);
    }
  }

 private:
  std::string NewNameOf(const std::string& name) const {
    auto it = renames_.find(name);
    if (it != renames_.end()) {
      return it->second;
    }
    if (name.rfind("__", 0) == 0) {
      return name;  // intrinsics (__sbrk, __vararg, ...) live below the unit model
    }
    return local_prefix_ + name;
  }

  bool IsTopLevel(const std::string& name) const { return toplevel_.count(name) > 0; }

  void RenameDecl(Decl& decl) {
    switch (decl.kind) {
      case Decl::Kind::kFunction: {
        decl.name = NewNameOf(decl.name);
        if (decl.is_definition && keep_global_.count(decl.name) == 0) {
          decl.is_static = true;  // unit-local: invisible outside the merged TU
        }
        if (decl.is_definition) {
          scopes_.clear();
          scopes_.emplace_back();
          for (const ParamDecl& param : decl.params) {
            scopes_.back().insert(param.name);
          }
          RenameStmt(*decl.body);
        }
        break;
      }
      case Decl::Kind::kGlobalVar: {
        decl.name = NewNameOf(decl.name);
        if (keep_global_.count(decl.name) == 0 && !decl.is_extern) {
          decl.is_static = true;
        }
        if (decl.init) {
          RenameExpr(*decl.init);
        }
        for (ExprPtr& element : decl.init_list) {
          RenameExpr(*element);
        }
        break;
      }
      case Decl::Kind::kStructDef:
      case Decl::Kind::kTypedef:
      case Decl::Kind::kEnumConsts:
        break;  // type-level names share one namespace across the program
    }
  }

  void RenameStmt(Stmt& stmt) {
    if (stmt.kind == Stmt::Kind::kBlock || stmt.kind == Stmt::Kind::kFor) {
      scopes_.emplace_back();
      for (StmtPtr& child : stmt.stmts) {
        if (child) {
          RenameStmt(*child);
        }
      }
      for (ExprPtr& expr : stmt.exprs) {
        if (expr) {
          RenameExpr(*expr);
        }
      }
      scopes_.pop_back();
      return;
    }
    if (stmt.kind == Stmt::Kind::kLocalDecl) {
      // The initializer sees the outer binding set; the name binds afterwards.
      for (ExprPtr& expr : stmt.exprs) {
        if (expr) {
          RenameExpr(*expr);
        }
      }
      scopes_.back().insert(stmt.text);
      return;
    }
    for (ExprPtr& expr : stmt.exprs) {
      if (expr) {
        RenameExpr(*expr);
      }
    }
    for (StmtPtr& child : stmt.stmts) {
      if (child) {
        RenameStmt(*child);
      }
    }
  }

  bool BoundLocally(const std::string& name) const {
    for (const std::set<std::string>& scope : scopes_) {
      if (scope.count(name) > 0) {
        return true;
      }
    }
    return false;
  }

  void RenameExpr(Expr& expr) {
    if (expr.kind == Expr::Kind::kIdent && !BoundLocally(expr.text) && IsTopLevel(expr.text)) {
      expr.text = NewNameOf(expr.text);
    }
    for (ExprPtr& arg : expr.args) {
      if (arg) {
        RenameExpr(*arg);
      }
    }
  }

  const std::map<std::string, std::string>& renames_;
  const std::string& local_prefix_;
  const std::set<std::string>& keep_global_;
  std::set<std::string> toplevel_;
  std::vector<std::set<std::string>> scopes_;
};

// Collects direct-call callee names within a function body.
void CollectCalls(const Expr& expr, std::set<std::string>& out) {
  if (expr.kind == Expr::Kind::kCall && expr.args[0]->kind == Expr::Kind::kIdent) {
    out.insert(expr.args[0]->text);
  }
  for (const ExprPtr& arg : expr.args) {
    if (arg) {
      CollectCalls(*arg, out);
    }
  }
}

void CollectCalls(const Stmt& stmt, std::set<std::string>& out) {
  for (const ExprPtr& expr : stmt.exprs) {
    if (expr) {
      CollectCalls(*expr, out);
    }
  }
  for (const StmtPtr& child : stmt.stmts) {
    if (child) {
      CollectCalls(*child, out);
    }
  }
}

}  // namespace

void RenameTranslationUnit(TranslationUnit& unit,
                           const std::map<std::string, std::string>& renames,
                           const std::string& local_prefix,
                           const std::vector<std::string>& keep_global) {
  std::set<std::string> keep(keep_global.begin(), keep_global.end());
  Renamer renamer(renames, local_prefix, keep);
  renamer.Run(unit);
}

Result<TranslationUnit> FlattenUnits(std::vector<FlattenInput> inputs,
                                     const FlattenOptions& options, Diagnostics& diags) {
  TranslationUnit merged;
  merged.name = "<flattened>";

  // Pass 1: rename each input, then concatenate with deduplication.
  std::set<std::string> struct_tags;
  std::set<std::string> typedef_names;
  std::map<std::string, const FlattenInput*> defined_by;  // definition conflicts
  std::set<std::string> declared;                         // prototypes / externs seen

  std::vector<Decl> types_and_globals;
  std::vector<Decl> prototypes;
  std::vector<Decl> functions;

  for (FlattenInput& input : inputs) {
    RenameTranslationUnit(input.unit, input.renames, SanitizedPrefix(input.instance_path),
                          input.keep_global);
    for (Decl& decl : input.unit.decls) {
      switch (decl.kind) {
        case Decl::Kind::kStructDef:
          if (struct_tags.insert(decl.name).second) {
            types_and_globals.push_back(std::move(decl));
          }
          break;
        case Decl::Kind::kTypedef:
          if (typedef_names.insert(decl.name).second) {
            types_and_globals.push_back(std::move(decl));
          }
          break;
        case Decl::Kind::kEnumConsts:
          break;  // constants were folded by the parser; nothing to emit
        case Decl::Kind::kGlobalVar: {
          if (decl.is_extern) {
            // Keep at most one extern declaration per name; drop if defined here.
            if (defined_by.count(decl.name) == 0 && declared.insert(decl.name).second) {
              types_and_globals.push_back(std::move(decl));
            }
            break;
          }
          auto [it, inserted] = defined_by.emplace(decl.name, &input);
          if (!inserted) {
            diags.Error(decl.loc, "flattening: '" + decl.name + "' defined by both " +
                                      it->second->instance_path + " and " +
                                      input.instance_path);
            return Result<TranslationUnit>::Failure();
          }
          types_and_globals.push_back(std::move(decl));
          break;
        }
        case Decl::Kind::kFunction: {
          if (!decl.is_definition) {
            if (declared.insert(decl.name).second) {
              prototypes.push_back(std::move(decl));
            }
            break;
          }
          auto [it, inserted] = defined_by.emplace(decl.name, &input);
          if (!inserted) {
            diags.Error(decl.loc, "flattening: function '" + decl.name + "' defined by both " +
                                      it->second->instance_path + " and " +
                                      input.instance_path);
            return Result<TranslationUnit>::Failure();
          }
          functions.push_back(std::move(decl));
          break;
        }
      }
    }
  }

  // Pass 2: order function definitions callees-first (paper: "sort function
  // definitions so that the definition of each function comes before as many uses
  // as possible"). Tarjan SCC emits components in reverse-topological (callee
  // first) order; within a cyclic component the original order is kept.
  if ((options.sort_definitions || options.callers_first) && functions.size() > 1) {
    std::map<std::string, int> index_of;
    for (size_t i = 0; i < functions.size(); ++i) {
      index_of[functions[i].name] = static_cast<int>(i);
    }
    Digraph calls(functions.size());
    for (size_t i = 0; i < functions.size(); ++i) {
      std::set<std::string> callees;
      CollectCalls(*functions[i].body, callees);
      for (const std::string& callee : callees) {
        auto it = index_of.find(callee);
        if (it != index_of.end() && it->second != static_cast<int>(i)) {
          calls.AddEdgeUnique(static_cast<int>(i), it->second);
        }
      }
    }
    std::vector<Decl> ordered;
    ordered.reserve(functions.size());
    for (const std::vector<int>& component : calls.StronglyConnectedComponents()) {
      for (int index : component) {
        ordered.push_back(std::move(functions[index]));
      }
    }
    if (options.callers_first) {
      std::reverse(ordered.begin(), ordered.end());
    }
    functions = std::move(ordered);
  }

  // Assemble: types/globals, then a prototype for every function (so order never
  // breaks name resolution), then the definitions.
  for (Decl& decl : types_and_globals) {
    merged.decls.push_back(std::move(decl));
  }
  std::set<std::string> defined_names;
  for (const Decl& decl : functions) {
    defined_names.insert(decl.name);
  }
  for (const Decl& decl : functions) {
    Decl proto;
    proto.kind = Decl::Kind::kFunction;
    proto.loc = decl.loc;
    proto.name = decl.name;
    proto.func_type = decl.func_type;
    proto.params = decl.params;
    proto.is_static = decl.is_static;
    proto.is_definition = false;
    merged.decls.push_back(std::move(proto));
  }
  for (Decl& decl : prototypes) {
    if (defined_names.count(decl.name) == 0) {
      merged.decls.push_back(std::move(decl));
    }
  }
  for (Decl& decl : functions) {
    merged.decls.push_back(std::move(decl));
  }
  return merged;
}

}  // namespace knit
