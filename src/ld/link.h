// The bag-of-objects linker (paper §2.1, Figure 1).
//
// Faithful to classic Unix ld where it matters to the paper:
//  * A link line is an ordered list of objects and archives.
//  * Explicit objects are always included; archive members are pulled only when
//    they define a symbol that is currently referenced and undefined — which is
//    what enables the "override by listing a replacement object first" idiom, and
//    what makes interposition (Figure 1c) inexpressible.
//  * Two included objects defining the same global symbol is a multiple-definition
//    error; unresolved references are undefined-symbol errors.
//  * Local symbols resolve only within their object.
//
// Symbols that remain undefined after archive processing are resolved against the
// supplied native (environment) table — the VM's device/OS interface.
#ifndef SRC_LD_LINK_H_
#define SRC_LD_LINK_H_

#include <map>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "src/obj/object.h"
#include "src/support/diagnostics.h"
#include "src/support/result.h"
#include "src/vm/image.h"

namespace knit {

using LinkItem = std::variant<ObjectFile, Archive>;

struct LinkOptions {
  // Native callables available to resolve remaining undefined symbols. Order
  // defines native ids.
  std::vector<std::string> natives;

  // Base address where the data image is loaded.
  uint32_t data_base = 0x1000;

  // Function placement alignment in text (affects I-cache behaviour).
  int text_align = 16;

  // Instance paths (BytecodeFunction::component) whose global text symbols get
  // binding slots (Image::bindings): cross-component calls into them are emitted
  // as kCallBound through the slot instead of a baked-in function id, making the
  // instance hot-swappable at the cost of one indirection per boundary call.
  std::set<std::string> swappable_components;
};

// Link-map entry for reporting/tests.
struct PlacedObject {
  std::string name;
  uint32_t data_offset = 0;  // absolute address of this object's data blob
  int first_function = -1;   // first global function id contributed (-1 if none)
  int function_count = 0;
};

struct LinkResult {
  Image image;
  std::vector<PlacedObject> placements;
};

Result<LinkResult> Link(std::vector<LinkItem> items, const LinkOptions& options,
                        Diagnostics& diags);

}  // namespace knit

#endif  // SRC_LD_LINK_H_
