#include "src/ld/link.h"

#include <algorithm>
#include <cassert>
#include <set>

namespace knit {
namespace {

int RoundUp(int value, int align) { return (value + align - 1) / align * align; }

class Linker {
 public:
  Linker(std::vector<LinkItem> items, const LinkOptions& options, Diagnostics& diags)
      : items_(std::move(items)), options_(options), diags_(diags) {}

  Result<LinkResult> Run() {
    if (!SelectObjects()) {
      return Result<LinkResult>::Failure();
    }
    if (!CheckDefinitions()) {
      return Result<LinkResult>::Failure();
    }
    Layout();
    if (!Resolve()) {
      return Result<LinkResult>::Failure();
    }
    CreateBindings();
    Patch();
    return std::move(result_);
  }

 private:
  // Phase 1: decide which objects participate (archive pull semantics).
  bool SelectObjects() {
    // Explicit objects first, in order; track wanted (referenced, undefined
    // globally) symbols.
    std::set<std::string> defined;
    std::set<std::string> wanted;

    auto note_object = [&](const ObjectFile& object) {
      for (const ObjSymbol& symbol : object.symbols) {
        if (!symbol.global) {
          continue;
        }
        if (symbol.section == ObjSymbol::Section::kUndefined) {
          if (defined.count(symbol.name) == 0) {
            wanted.insert(symbol.name);
          }
        } else {
          defined.insert(symbol.name);
          wanted.erase(symbol.name);
        }
      }
    };

    for (LinkItem& item : items_) {
      if (std::holds_alternative<ObjectFile>(item)) {
        ObjectFile& object = std::get<ObjectFile>(item);
        note_object(object);
        included_.push_back(&object);
        continue;
      }
      // Archive: pull members while they satisfy wanted symbols.
      Archive& archive = std::get<Archive>(item);
      std::vector<bool> pulled(archive.members.size(), false);
      bool progress = true;
      while (progress) {
        progress = false;
        for (size_t m = 0; m < archive.members.size(); ++m) {
          if (pulled[m]) {
            continue;
          }
          const ObjectFile& member = archive.members[m];
          bool satisfies = false;
          for (const ObjSymbol& symbol : member.symbols) {
            if (symbol.global && symbol.section != ObjSymbol::Section::kUndefined &&
                wanted.count(symbol.name) > 0) {
              satisfies = true;
              break;
            }
          }
          if (!satisfies) {
            continue;
          }
          pulled[m] = true;
          note_object(member);
          included_.push_back(&archive.members[m]);
          progress = true;
        }
      }
    }
    return true;
  }

  // Phase 2: global definition table; duplicate definitions are errors.
  bool CheckDefinitions() {
    bool ok = true;
    for (const ObjectFile* object : included_) {
      for (size_t s = 0; s < object->symbols.size(); ++s) {
        const ObjSymbol& symbol = object->symbols[s];
        if (!symbol.global || symbol.section == ObjSymbol::Section::kUndefined) {
          continue;
        }
        auto [it, inserted] =
            global_defs_.emplace(symbol.name, std::make_pair(object, static_cast<int>(s)));
        if (!inserted) {
          diags_.Error(SourceLoc{object->name, 0, 0},
                       "multiple definition of '" + symbol.name + "' (first defined in " +
                           it->second.first->name + ")");
          ok = false;
        }
      }
    }
    return ok;
  }

  // Phase 3: place data blobs and functions.
  void Layout() {
    Image& image = result_.image;
    image.data_base = options_.data_base;
    image.natives = options_.natives;

    int text_cursor = 0;
    for (const ObjectFile* object : included_) {
      PlacedObject placement;
      placement.name = object->name;

      // Data blob.
      int data_offset = RoundUp(static_cast<int>(image.data.size()), 8);
      image.data.resize(static_cast<size_t>(data_offset), 0);
      image.data.insert(image.data.end(), object->data.begin(), object->data.end());
      data_offsets_[object] = data_offset;
      placement.data_offset = options_.data_base + static_cast<uint32_t>(data_offset);

      // Functions, in object order.
      placement.first_function = static_cast<int>(image.functions.size());
      placement.function_count = static_cast<int>(object->functions.size());
      for (const BytecodeFunction& function : object->functions) {
        BytecodeFunction placed = function;
        placed.text_offset = text_cursor;
        text_cursor += RoundUp(placed.TextBytes(), options_.text_align);
        function_base_[object] = placement.first_function;
        image.functions.push_back(std::move(placed));
      }
      function_base_[object] = placement.first_function;
      result_.placements.push_back(placement);
    }
    image.text_bytes = text_cursor;
  }

  // The callable id / address a symbol index in `object` resolves to.
  struct Resolved {
    enum class Kind { kFunction, kNative, kData };
    Kind kind = Kind::kData;
    int callable = -1;     // kFunction/kNative
    uint32_t address = 0;  // kData
  };

  bool ResolveSymbol(const ObjectFile* object, int symbol_index, Resolved& out) {
    const ObjSymbol& symbol = object->symbols[symbol_index];
    if (symbol.section == ObjSymbol::Section::kUndefined && !symbol.global) {
      // A dead local symbol (e.g. a static function removed by DCE): nothing can
      // reference it; leave it unresolved.
      out.kind = Resolved::Kind::kFunction;
      out.callable = -1;
      return true;
    }
    const ObjectFile* def_object = nullptr;
    const ObjSymbol* def = nullptr;
    if (symbol.section != ObjSymbol::Section::kUndefined) {
      def_object = object;  // local or defined here
      def = &symbol;
    } else {
      auto it = global_defs_.find(symbol.name);
      if (it != global_defs_.end()) {
        def_object = it->second.first;
        def = &def_object->symbols[it->second.second];
      }
    }
    if (def == nullptr) {
      // Try natives.
      for (size_t n = 0; n < options_.natives.size(); ++n) {
        if (options_.natives[n] == symbol.name) {
          out.kind = Resolved::Kind::kNative;
          out.callable = static_cast<int>(result_.image.functions.size()) + static_cast<int>(n);
          return true;
        }
      }
      diags_.Error(SourceLoc{object->name, 0, 0},
                   "undefined reference to '" + symbol.name + "'");
      return false;
    }
    if (def->section == ObjSymbol::Section::kText) {
      out.kind = Resolved::Kind::kFunction;
      out.callable = function_base_[def_object] + def->index;
      return true;
    }
    out.kind = Resolved::Kind::kData;
    out.address = options_.data_base + static_cast<uint32_t>(data_offsets_[def_object]) +
                  static_cast<uint32_t>(def->index);
    return true;
  }

  bool Resolve() {
    bool ok = true;
    for (const ObjectFile* object : included_) {
      std::vector<Resolved>& table = resolution_[object];
      table.resize(object->symbols.size());
      for (size_t s = 0; s < object->symbols.size(); ++s) {
        if (!ResolveSymbol(object, static_cast<int>(s), table[s])) {
          ok = false;
        }
      }
    }
    if (!ok) {
      return false;
    }
    // Export the global symbol tables.
    Image& image = result_.image;
    for (const auto& [name, def] : global_defs_) {
      const ObjectFile* object = def.first;
      const ObjSymbol& symbol = object->symbols[def.second];
      if (symbol.section == ObjSymbol::Section::kText) {
        image.function_symbols[name] = function_base_[object] + symbol.index;
      } else {
        image.data_symbols[name] = options_.data_base +
                                   static_cast<uint32_t>(data_offsets_[object]) +
                                   static_cast<uint32_t>(symbol.index);
      }
    }
    return true;
  }

  // Phase 3.5: binding slots for swappable components. Every global text symbol
  // defined by a swappable instance gets a slot; iteration over the sorted
  // global_defs_ map makes slot indices deterministic for identical links.
  void CreateBindings() {
    if (options_.swappable_components.empty()) {
      return;
    }
    Image& image = result_.image;
    for (const auto& [name, def] : global_defs_) {
      const ObjectFile* object = def.first;
      const ObjSymbol& symbol = object->symbols[def.second];
      if (symbol.section != ObjSymbol::Section::kText) {
        continue;
      }
      int target = function_base_[object] + symbol.index;
      const std::string& component = image.functions[target].component;
      if (options_.swappable_components.count(component) == 0) {
        continue;
      }
      slot_of_callable_[target] = static_cast<int>(image.bindings.size());
      image.bindings.push_back(BindingSlot{name, component, target});
    }
  }

  uint32_t ValueOf(const Resolved& resolved) const {
    switch (resolved.kind) {
      case Resolved::Kind::kFunction:
      case Resolved::Kind::kNative:
        return EncodeFuncRef(resolved.callable);
      case Resolved::Kind::kData:
        return resolved.address;
    }
    return 0;
  }

  // Phase 4: rewrite code and data relocations.
  void Patch() {
    Image& image = result_.image;
    for (const ObjectFile* object : included_) {
      const std::vector<Resolved>& table = resolution_[object];
      int base = function_base_[object];
      for (int f = 0; f < static_cast<int>(object->functions.size()); ++f) {
        BytecodeFunction& function = image.functions[base + f];
        for (Insn& insn : function.code) {
          if (insn.op == Op::kConstSym) {
            insn.op = Op::kConstInt;
            insn.a = static_cast<int32_t>(ValueOf(table[insn.a]));
          } else if (insn.op == Op::kCall) {
            const Resolved& resolved = table[insn.a];
            if (resolved.kind == Resolved::Kind::kData) {
              // Calling a data symbol: degrade to an indirect call through the
              // loaded word? In C this is a type error; treat as callable 0 trap.
              insn.a = -1;
            } else {
              auto slot = slot_of_callable_.find(resolved.callable);
              if (slot != slot_of_callable_.end() &&
                  function.component != image.bindings[slot->second].component) {
                // Cross-component edge into a swappable instance: call through
                // the binding slot so a swap retargets this site. Intra-instance
                // calls stay direct — they are replaced wholesale with the code.
                insn.op = Op::kCallBound;
                insn.a = slot->second;
              } else {
                insn.a = resolved.callable;
              }
            }
          }
        }
      }
      // Data relocations.
      int data_offset = data_offsets_[object];
      for (const DataReloc& reloc : object->data_relocs) {
        size_t at = static_cast<size_t>(data_offset) + reloc.data_offset;
        uint32_t addend = 0;
        for (int i = 0; i < 4; ++i) {
          addend |= static_cast<uint32_t>(image.data[at + i]) << (8 * i);
        }
        const Resolved& resolved = table[reloc.symbol];
        uint32_t value = ValueOf(resolved) + addend;
        for (int i = 0; i < 4; ++i) {
          image.data[at + i] = static_cast<uint8_t>((value >> (8 * i)) & 0xFF);
        }
        if (resolved.kind != Resolved::Kind::kData) {
          // A function ref now lives in data; record where, so the image
          // optimizer keeps its target alive (see Image::func_ref_data).
          image.func_ref_data.push_back(options_.data_base + static_cast<uint32_t>(at));
        }
      }
    }
  }

  std::vector<LinkItem> items_;
  const LinkOptions& options_;
  Diagnostics& diags_;
  LinkResult result_;

  std::vector<ObjectFile*> included_;
  std::map<std::string, std::pair<const ObjectFile*, int>> global_defs_;
  std::map<const ObjectFile*, int> data_offsets_;
  std::map<const ObjectFile*, int> function_base_;
  std::map<const ObjectFile*, std::vector<Resolved>> resolution_;
  std::map<int, int> slot_of_callable_;  // function id -> binding slot index
};

}  // namespace

Result<LinkResult> Link(std::vector<LinkItem> items, const LinkOptions& options,
                        Diagnostics& diags) {
  Linker linker(std::move(items), options, diags);
  return linker.Run();
}

}  // namespace knit
