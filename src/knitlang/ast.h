// Abstract syntax for the Knit linking language.
//
// Grammar (the paper's Figure 5 syntax, completed where the paper truncates):
//
//   program        := topdecl*
//   topdecl        := bundletype | flagsdecl | unitdecl | propertydecl | valuedecl
//   bundletype     := "bundletype" IDENT "=" "{" identlist? "}"
//   flagsdecl      := "flags" IDENT "=" "{" stringlist? "}"
//   propertydecl   := "property" IDENT
//   valuedecl      := "type" IDENT ("<" IDENT)?       // value of most recent property
//   unitdecl       := "unit" IDENT "=" "{" section* "}"
//   section        := imports | exports | depends | files | rename | initializer
//                   | finalizer | link | constraints | flatten
//   imports        := "imports" "[" port ("," port)* "]" ";"
//   exports        := "exports" "[" port ("," port)* "]" ";"
//   port           := IDENT ":" IDENT
//   depends        := "depends" "{" (depset "needs" depset ";")* "}" ";"
//   depset         := IDENT | "(" IDENT ("+" IDENT)* ")"
//   files          := "files" "{" STRING ("," STRING)* "}" ("with" "flags" IDENT)? ";"
//   rename         := "rename" "{" (IDENT "." IDENT "to" IDENT ";")* "}" ";"
//   initializer    := "initializer" IDENT "for" IDENT ";"
//   finalizer      := "finalizer" IDENT "for" IDENT ";"
//   link           := "link" "{" linkline* "}" ";"
//   linkline       := "[" identlist? "]" "<-" IDENT ("as" IDENT)? "<-" "[" identlist? "]" ";"
//   constraints    := "constraints" "{" (propexpr ("="|"<=") propexpr ";")* "}" ";"
//   propexpr       := IDENT "(" (IDENT | "imports" | "exports") ")"   // property of target
//                   | IDENT                                           // property value name
//   flatten        := "flatten" ";"
//
// A unit with a `files` section is atomic; a unit with a `link` section is compound.
#ifndef SRC_KNITLANG_AST_H_
#define SRC_KNITLANG_AST_H_

#include <string>
#include <vector>

#include "src/support/diagnostics.h"

namespace knit {

// bundletype Serve = { serve_web }
struct BundleTypeDecl {
  std::string name;
  std::vector<std::string> symbols;
  SourceLoc loc;
};

// flags CFlags = { "-Ioskit/include" }
struct FlagsDecl {
  std::string name;
  std::vector<std::string> flags;
  SourceLoc loc;
};

// property context
struct PropertyDecl {
  std::string name;
  SourceLoc loc;
};

// type ProcessContext < NoContext       (attached to the most recent property)
struct PropertyValueDecl {
  std::string property;  // filled in by the parser from the preceding `property`
  std::string name;
  std::string less_than;  // "" if this value is unordered / a top declaration
  SourceLoc loc;
};

// serveFile : Serve
struct PortDecl {
  std::string local_name;
  std::string bundle_type;
  SourceLoc loc;
};

// (open_log + close_log) needs stdio;   — lhs atoms each need every rhs atom.
// Atoms name either port local names or initializer/finalizer function names.
struct DependsClause {
  std::vector<std::string> dependents;
  std::vector<std::string> requirements;
  SourceLoc loc;
};

// rename serveWeb.serve_web to serve_unlogged;
struct RenameDecl {
  std::string port;    // local bundle name
  std::string symbol;  // symbol within the bundle type
  std::string c_name;  // identifier used in the C source
  SourceLoc loc;
};

// initializer open_log for serveLog;  (or finalizer)
struct InitFiniDecl {
  std::string function;
  std::string port;  // the export bundle this initializes/finalizes
  SourceLoc loc;
};

// [serveLog] <- Log as logger <- [serveWeb, stdio];
struct LinkLine {
  std::vector<std::string> outputs;  // local names bound to the instantiated unit's exports
  std::string unit;                  // unit to instantiate
  std::string instance_name;         // optional "as" name; "" means derive from unit name
  std::vector<std::string> inputs;   // local names supplied to the unit's imports
  SourceLoc loc;
};

// One side of a constraint: either property(target) or a bare value name.
struct PropertyExpr {
  enum class Kind {
    kOfPort,     // context(serveWeb)
    kOfImports,  // context(imports)  — every import port
    kOfExports,  // context(exports)  — every export port
    kValue,      // NoContext
  };
  Kind kind = Kind::kValue;
  std::string property;  // for kOf*: the property name
  std::string name;      // port name (kOfPort) or value name (kValue)
  SourceLoc loc;
};

// context(exports) <= context(imports);
struct ConstraintDecl {
  enum class Relation { kEqual, kLessEq };
  PropertyExpr lhs;
  Relation relation = Relation::kEqual;
  PropertyExpr rhs;
  SourceLoc loc;
};

struct UnitDecl {
  std::string name;
  SourceLoc loc;

  std::vector<PortDecl> imports;
  std::vector<PortDecl> exports;
  std::vector<DependsClause> depends;
  std::vector<RenameDecl> renames;
  std::vector<InitFiniDecl> initializers;
  std::vector<InitFiniDecl> finalizers;
  std::vector<ConstraintDecl> constraints;
  bool flatten = false;  // compound only: merge the subtree into one translation unit

  // Atomic units:
  std::vector<std::string> files;
  std::string flags_name;  // "" if none
  bool has_files = false;

  // Compound units:
  std::vector<LinkLine> links;
  bool has_links = false;

  bool IsAtomic() const { return has_files; }
  bool IsCompound() const { return has_links; }
};

struct KnitProgram {
  std::vector<BundleTypeDecl> bundle_types;
  std::vector<FlagsDecl> flag_sets;
  std::vector<PropertyDecl> properties;
  std::vector<PropertyValueDecl> property_values;
  std::vector<UnitDecl> units;
};

}  // namespace knit

#endif  // SRC_KNITLANG_AST_H_
