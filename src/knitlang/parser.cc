#include "src/knitlang/parser.h"

#include <utility>

#include "src/knitlang/lexer.h"

namespace knit {
namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, KnitProgram& program, Diagnostics& diags)
      : tokens_(std::move(tokens)), program_(program), diags_(diags) {}

  bool Run() {
    while (!At(TokenKind::kEnd)) {
      if (!ParseTopDecl()) {
        return false;
      }
    }
    return true;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  bool At(TokenKind kind) const { return Cur().kind == kind; }
  bool AtIdent(const char* spelling) const { return Cur().IsIdent(spelling); }

  Token Take() { return tokens_[pos_++]; }

  bool Expect(TokenKind kind, const char* what) {
    if (!At(kind)) {
      diags_.Error(Cur().loc, std::string("expected ") + TokenKindName(kind) + " " + what +
                                  ", found " + Describe(Cur()));
      return false;
    }
    ++pos_;
    return true;
  }

  bool ExpectIdent(const char* spelling) {
    if (!AtIdent(spelling)) {
      diags_.Error(Cur().loc,
                   std::string("expected '") + spelling + "', found " + Describe(Cur()));
      return false;
    }
    ++pos_;
    return true;
  }

  // Expects any identifier and stores it into `out`.
  bool ExpectAnyIdent(std::string& out, const char* what) {
    if (!At(TokenKind::kIdent)) {
      diags_.Error(Cur().loc,
                   std::string("expected identifier ") + what + ", found " + Describe(Cur()));
      return false;
    }
    out = Take().text;
    return true;
  }

  static std::string Describe(const Token& token) {
    if (token.kind == TokenKind::kIdent) {
      return "'" + token.text + "'";
    }
    if (token.kind == TokenKind::kString) {
      return "string \"" + token.text + "\"";
    }
    return TokenKindName(token.kind);
  }

  bool ParseTopDecl() {
    if (AtIdent("bundletype")) {
      return ParseBundleType();
    }
    if (AtIdent("flags")) {
      return ParseFlags();
    }
    if (AtIdent("unit")) {
      return ParseUnit();
    }
    if (AtIdent("property")) {
      return ParseProperty();
    }
    if (AtIdent("type")) {
      return ParsePropertyValue();
    }
    diags_.Error(Cur().loc, "expected 'bundletype', 'flags', 'unit', 'property', or 'type', "
                            "found " +
                                Describe(Cur()));
    return false;
  }

  // bundletype Serve = { serve_web }
  bool ParseBundleType() {
    BundleTypeDecl decl;
    decl.loc = Cur().loc;
    Take();  // bundletype
    if (!ExpectAnyIdent(decl.name, "(bundle type name)") ||
        !Expect(TokenKind::kEq, "after bundle type name") ||
        !Expect(TokenKind::kLBrace, "to open symbol list")) {
      return false;
    }
    while (!At(TokenKind::kRBrace)) {
      std::string symbol;
      if (!ExpectAnyIdent(symbol, "(bundle symbol)")) {
        return false;
      }
      decl.symbols.push_back(std::move(symbol));
      if (At(TokenKind::kComma)) {
        Take();
      }
    }
    Take();  // }
    MaybeSemi();
    program_.bundle_types.push_back(std::move(decl));
    return true;
  }

  // flags CFlags = { "-Ioskit/include" }
  bool ParseFlags() {
    FlagsDecl decl;
    decl.loc = Cur().loc;
    Take();  // flags
    if (!ExpectAnyIdent(decl.name, "(flag set name)") ||
        !Expect(TokenKind::kEq, "after flag set name") ||
        !Expect(TokenKind::kLBrace, "to open flag list")) {
      return false;
    }
    while (!At(TokenKind::kRBrace)) {
      if (!At(TokenKind::kString)) {
        diags_.Error(Cur().loc, "expected string flag, found " + Describe(Cur()));
        return false;
      }
      decl.flags.push_back(Take().text);
      if (At(TokenKind::kComma)) {
        Take();
      }
    }
    Take();  // }
    MaybeSemi();
    program_.flag_sets.push_back(std::move(decl));
    return true;
  }

  // property context
  bool ParseProperty() {
    PropertyDecl decl;
    decl.loc = Cur().loc;
    Take();  // property
    if (!ExpectAnyIdent(decl.name, "(property name)")) {
      return false;
    }
    MaybeSemi();
    current_property_ = decl.name;
    program_.properties.push_back(std::move(decl));
    return true;
  }

  // type ProcessContext < NoContext
  bool ParsePropertyValue() {
    PropertyValueDecl decl;
    decl.loc = Cur().loc;
    Take();  // type
    if (current_property_.empty()) {
      diags_.Error(decl.loc, "'type' declaration with no preceding 'property'");
      return false;
    }
    decl.property = current_property_;
    if (!ExpectAnyIdent(decl.name, "(property value name)")) {
      return false;
    }
    if (At(TokenKind::kLess)) {
      Take();
      if (!ExpectAnyIdent(decl.less_than, "(more general property value)")) {
        return false;
      }
    }
    MaybeSemi();
    program_.property_values.push_back(std::move(decl));
    return true;
  }

  bool ParseUnit() {
    UnitDecl unit;
    unit.loc = Cur().loc;
    Take();  // unit
    if (!ExpectAnyIdent(unit.name, "(unit name)") ||
        !Expect(TokenKind::kEq, "after unit name") ||
        !Expect(TokenKind::kLBrace, "to open unit body")) {
      return false;
    }
    while (!At(TokenKind::kRBrace)) {
      if (!ParseSection(unit)) {
        return false;
      }
    }
    Take();  // }
    MaybeSemi();
    if (unit.has_files && unit.has_links) {
      diags_.Error(unit.loc, "unit '" + unit.name + "' has both 'files' and 'link' sections; "
                             "a unit is either atomic or compound");
      return false;
    }
    program_.units.push_back(std::move(unit));
    return true;
  }

  bool ParseSection(UnitDecl& unit) {
    if (AtIdent("imports")) {
      return ParsePortList(unit.imports, "imports");
    }
    if (AtIdent("exports")) {
      return ParsePortList(unit.exports, "exports");
    }
    if (AtIdent("depends")) {
      return ParseDepends(unit);
    }
    if (AtIdent("files")) {
      return ParseFiles(unit);
    }
    if (AtIdent("rename")) {
      return ParseRename(unit);
    }
    if (AtIdent("initializer")) {
      return ParseInitFini(unit.initializers);
    }
    if (AtIdent("finalizer")) {
      return ParseInitFini(unit.finalizers);
    }
    if (AtIdent("link")) {
      return ParseLink(unit);
    }
    if (AtIdent("constraints")) {
      return ParseConstraints(unit);
    }
    if (AtIdent("flatten")) {
      Take();
      unit.flatten = true;
      return Expect(TokenKind::kSemi, "after 'flatten'");
    }
    diags_.Error(Cur().loc, "expected a unit section (imports, exports, depends, files, "
                            "rename, initializer, finalizer, link, constraints, flatten), "
                            "found " +
                                Describe(Cur()));
    return false;
  }

  // imports [ serveFile : Serve, serveCGI : Serve ];
  bool ParsePortList(std::vector<PortDecl>& out, const char* keyword) {
    Take();  // imports / exports
    if (!Expect(TokenKind::kLBracket, (std::string("after '") + keyword + "'").c_str())) {
      return false;
    }
    while (!At(TokenKind::kRBracket)) {
      PortDecl port;
      port.loc = Cur().loc;
      if (!ExpectAnyIdent(port.local_name, "(port name)") ||
          !Expect(TokenKind::kColon, "between port name and bundle type") ||
          !ExpectAnyIdent(port.bundle_type, "(bundle type)")) {
        return false;
      }
      out.push_back(std::move(port));
      if (At(TokenKind::kComma)) {
        Take();
      }
    }
    Take();  // ]
    return Expect(TokenKind::kSemi, "after port list");
  }

  // depends { serveWeb needs (serveFile + serveCGI); };
  bool ParseDepends(UnitDecl& unit) {
    Take();  // depends
    if (!Expect(TokenKind::kLBrace, "after 'depends'")) {
      return false;
    }
    while (!At(TokenKind::kRBrace)) {
      DependsClause clause;
      clause.loc = Cur().loc;
      if (!ParseDepSet(clause.dependents) || !ExpectIdent("needs") ||
          !ParseDepSet(clause.requirements) || !Expect(TokenKind::kSemi, "after depends clause")) {
        return false;
      }
      unit.depends.push_back(std::move(clause));
    }
    Take();  // }
    MaybeSemi();
    return true;
  }

  // IDENT | ( IDENT + IDENT + ... )     — also accepts comma separators, as the
  // paper's prose uses "serveLog needs serveWeb, stdio".
  bool ParseDepSet(std::vector<std::string>& out) {
    if (At(TokenKind::kLParen)) {
      Take();
      while (!At(TokenKind::kRParen)) {
        std::string name;
        if (!ExpectAnyIdent(name, "(dependency atom)")) {
          return false;
        }
        out.push_back(std::move(name));
        if (At(TokenKind::kPlus) || At(TokenKind::kComma)) {
          Take();
        }
      }
      Take();  // )
      return true;
    }
    std::string name;
    if (!ExpectAnyIdent(name, "(dependency atom)")) {
      return false;
    }
    out.push_back(std::move(name));
    while (At(TokenKind::kComma)) {
      Take();
      if (!ExpectAnyIdent(name, "(dependency atom)")) {
        return false;
      }
      out.push_back(std::move(name));
    }
    return true;
  }

  // files { "web.c" } with flags CFlags;
  bool ParseFiles(UnitDecl& unit) {
    Take();  // files
    unit.has_files = true;
    if (!Expect(TokenKind::kLBrace, "after 'files'")) {
      return false;
    }
    while (!At(TokenKind::kRBrace)) {
      if (!At(TokenKind::kString)) {
        diags_.Error(Cur().loc, "expected string file name, found " + Describe(Cur()));
        return false;
      }
      unit.files.push_back(Take().text);
      if (At(TokenKind::kComma)) {
        Take();
      }
    }
    Take();  // }
    if (AtIdent("with")) {
      Take();
      if (!ExpectIdent("flags") || !ExpectAnyIdent(unit.flags_name, "(flag set name)")) {
        return false;
      }
    }
    return Expect(TokenKind::kSemi, "after files section");
  }

  // rename { serveFile.serve_web to serve_file; };
  bool ParseRename(UnitDecl& unit) {
    Take();  // rename
    if (!Expect(TokenKind::kLBrace, "after 'rename'")) {
      return false;
    }
    while (!At(TokenKind::kRBrace)) {
      RenameDecl rename;
      rename.loc = Cur().loc;
      if (!ExpectAnyIdent(rename.port, "(port name)") ||
          !Expect(TokenKind::kDot, "between port and symbol") ||
          !ExpectAnyIdent(rename.symbol, "(bundle symbol)") || !ExpectIdent("to") ||
          !ExpectAnyIdent(rename.c_name, "(C identifier)") ||
          !Expect(TokenKind::kSemi, "after rename")) {
        return false;
      }
      unit.renames.push_back(std::move(rename));
    }
    Take();  // }
    MaybeSemi();
    return true;
  }

  // initializer open_log for serveLog;
  bool ParseInitFini(std::vector<InitFiniDecl>& out) {
    InitFiniDecl decl;
    decl.loc = Cur().loc;
    Take();  // initializer / finalizer
    if (!ExpectAnyIdent(decl.function, "(function name)") || !ExpectIdent("for") ||
        !ExpectAnyIdent(decl.port, "(export bundle name)") ||
        !Expect(TokenKind::kSemi, "after initializer/finalizer")) {
      return false;
    }
    out.push_back(std::move(decl));
    return true;
  }

  // link { [serveWeb] <- Web <- [serveFile, serveCGI]; ... };
  bool ParseLink(UnitDecl& unit) {
    Take();  // link
    unit.has_links = true;
    if (!Expect(TokenKind::kLBrace, "after 'link'")) {
      return false;
    }
    while (!At(TokenKind::kRBrace)) {
      LinkLine line;
      line.loc = Cur().loc;
      if (!ParseBracketedIdentList(line.outputs) ||
          !Expect(TokenKind::kArrowLeft, "after link outputs") ||
          !ExpectAnyIdent(line.unit, "(unit name)")) {
        return false;
      }
      if (AtIdent("as")) {
        Take();
        if (!ExpectAnyIdent(line.instance_name, "(instance name)")) {
          return false;
        }
      }
      if (!Expect(TokenKind::kArrowLeft, "before link inputs") ||
          !ParseBracketedIdentList(line.inputs) ||
          !Expect(TokenKind::kSemi, "after link line")) {
        return false;
      }
      unit.links.push_back(std::move(line));
    }
    Take();  // }
    MaybeSemi();
    return true;
  }

  bool ParseBracketedIdentList(std::vector<std::string>& out) {
    if (!Expect(TokenKind::kLBracket, "to open name list")) {
      return false;
    }
    while (!At(TokenKind::kRBracket)) {
      std::string name;
      if (!ExpectAnyIdent(name, "(local name)")) {
        return false;
      }
      out.push_back(std::move(name));
      if (At(TokenKind::kComma)) {
        Take();
      }
    }
    Take();  // ]
    return true;
  }

  // constraints { context(exports) <= context(imports); context(intr) = NoContext; };
  bool ParseConstraints(UnitDecl& unit) {
    Take();  // constraints
    if (!Expect(TokenKind::kLBrace, "after 'constraints'")) {
      return false;
    }
    while (!At(TokenKind::kRBrace)) {
      ConstraintDecl constraint;
      constraint.loc = Cur().loc;
      if (!ParsePropertyExpr(constraint.lhs)) {
        return false;
      }
      if (At(TokenKind::kEq)) {
        Take();
        constraint.relation = ConstraintDecl::Relation::kEqual;
      } else if (At(TokenKind::kLessEq)) {
        Take();
        constraint.relation = ConstraintDecl::Relation::kLessEq;
      } else {
        diags_.Error(Cur().loc, "expected '=' or '<=' in constraint, found " + Describe(Cur()));
        return false;
      }
      if (!ParsePropertyExpr(constraint.rhs) ||
          !Expect(TokenKind::kSemi, "after constraint")) {
        return false;
      }
      unit.constraints.push_back(std::move(constraint));
    }
    Take();  // }
    MaybeSemi();
    return true;
  }

  bool ParsePropertyExpr(PropertyExpr& out) {
    out.loc = Cur().loc;
    std::string first;
    if (!ExpectAnyIdent(first, "(property or value name)")) {
      return false;
    }
    if (!At(TokenKind::kLParen)) {
      out.kind = PropertyExpr::Kind::kValue;
      out.name = std::move(first);
      return true;
    }
    Take();  // (
    out.property = std::move(first);
    if (AtIdent("imports")) {
      Take();
      out.kind = PropertyExpr::Kind::kOfImports;
    } else if (AtIdent("exports")) {
      Take();
      out.kind = PropertyExpr::Kind::kOfExports;
    } else {
      out.kind = PropertyExpr::Kind::kOfPort;
      if (!ExpectAnyIdent(out.name, "(port name)")) {
        return false;
      }
    }
    return Expect(TokenKind::kRParen, "to close property expression");
  }

  // Declarations may optionally be terminated with ';'.
  void MaybeSemi() {
    if (At(TokenKind::kSemi)) {
      Take();
    }
  }

  std::vector<Token> tokens_;
  KnitProgram& program_;
  Diagnostics& diags_;
  size_t pos_ = 0;
  std::string current_property_;
};

}  // namespace

Result<void> ParseKnitInto(std::string_view source, const std::string& file_name,
                           KnitProgram& program, Diagnostics& diags) {
  Result<std::vector<Token>> tokens = LexKnit(source, file_name, diags);
  if (!tokens.ok()) {
    return Result<void>::Failure();
  }
  Parser parser(tokens.take(), program, diags);
  return parser.Run() ? Result<void>::Success() : Result<void>::Failure();
}

Result<KnitProgram> ParseKnit(std::string_view source, const std::string& file_name,
                              Diagnostics& diags) {
  KnitProgram program;
  if (!ParseKnitInto(source, file_name, program, diags).ok()) {
    return Result<KnitProgram>::Failure();
  }
  return program;
}

}  // namespace knit
