#include "src/knitlang/printer.h"

#include "src/support/strings.h"

namespace knit {
namespace {

std::string PrintPorts(const std::vector<PortDecl>& ports) {
  std::vector<std::string> parts;
  parts.reserve(ports.size());
  for (const PortDecl& port : ports) {
    parts.push_back(port.local_name + " : " + port.bundle_type);
  }
  return "[ " + Join(parts, ", ") + " ]";
}

std::string PrintDepSet(const std::vector<std::string>& atoms) {
  if (atoms.size() == 1) {
    return atoms[0];
  }
  return "(" + Join(atoms, " + ") + ")";
}

std::string PrintPropertyExpr(const PropertyExpr& expr) {
  switch (expr.kind) {
    case PropertyExpr::Kind::kValue:
      return expr.name;
    case PropertyExpr::Kind::kOfPort:
      return expr.property + "(" + expr.name + ")";
    case PropertyExpr::Kind::kOfImports:
      return expr.property + "(imports)";
    case PropertyExpr::Kind::kOfExports:
      return expr.property + "(exports)";
  }
  return "?";
}

std::string QuoteList(const std::vector<std::string>& items) {
  std::vector<std::string> quoted;
  quoted.reserve(items.size());
  for (const std::string& item : items) {
    quoted.push_back("\"" + item + "\"");
  }
  return Join(quoted, ", ");
}

}  // namespace

std::string PrintUnitDecl(const UnitDecl& unit) {
  std::string out = "unit " + unit.name + " = {\n";
  out += "  imports " + PrintPorts(unit.imports) + ";\n";
  out += "  exports " + PrintPorts(unit.exports) + ";\n";
  for (const InitFiniDecl& decl : unit.initializers) {
    out += "  initializer " + decl.function + " for " + decl.port + ";\n";
  }
  for (const InitFiniDecl& decl : unit.finalizers) {
    out += "  finalizer " + decl.function + " for " + decl.port + ";\n";
  }
  if (!unit.depends.empty()) {
    out += "  depends {\n";
    for (const DependsClause& clause : unit.depends) {
      out += "    " + PrintDepSet(clause.dependents) + " needs " +
             (clause.requirements.empty() ? "()" : PrintDepSet(clause.requirements)) + ";\n";
    }
    out += "  };\n";
  }
  if (unit.flatten) {
    out += "  flatten;\n";
  }
  if (unit.has_files) {
    out += "  files { " + QuoteList(unit.files) + " }";
    if (!unit.flags_name.empty()) {
      out += " with flags " + unit.flags_name;
    }
    out += ";\n";
  }
  if (unit.has_links) {
    out += "  link {\n";
    for (const LinkLine& line : unit.links) {
      out += "    [" + Join(line.outputs, ", ") + "] <- " + line.unit;
      if (!line.instance_name.empty()) {
        out += " as " + line.instance_name;
      }
      out += " <- [" + Join(line.inputs, ", ") + "];\n";
    }
    out += "  };\n";
  }
  if (!unit.renames.empty()) {
    out += "  rename {\n";
    for (const RenameDecl& rename : unit.renames) {
      out += "    " + rename.port + "." + rename.symbol + " to " + rename.c_name + ";\n";
    }
    out += "  };\n";
  }
  if (!unit.constraints.empty()) {
    out += "  constraints {\n";
    for (const ConstraintDecl& constraint : unit.constraints) {
      out += "    " + PrintPropertyExpr(constraint.lhs) +
             (constraint.relation == ConstraintDecl::Relation::kEqual ? " = " : " <= ") +
             PrintPropertyExpr(constraint.rhs) + ";\n";
    }
    out += "  };\n";
  }
  out += "}\n";
  return out;
}

std::string PrintKnitProgram(const KnitProgram& program) {
  std::string out;
  for (const BundleTypeDecl& decl : program.bundle_types) {
    out += "bundletype " + decl.name + " = { " + Join(decl.symbols, ", ") + " }\n";
  }
  for (const FlagsDecl& decl : program.flag_sets) {
    out += "flags " + decl.name + " = { " + QuoteList(decl.flags) + " }\n";
  }
  // `type` declarations attach to the most recent `property`; group them.
  for (const PropertyDecl& property : program.properties) {
    out += "property " + property.name + "\n";
    for (const PropertyValueDecl& value : program.property_values) {
      if (value.property == property.name) {
        out += "type " + value.name;
        if (!value.less_than.empty()) {
          out += " < " + value.less_than;
        }
        out += "\n";
      }
    }
  }
  for (const UnitDecl& unit : program.units) {
    out += "\n" + PrintUnitDecl(unit);
  }
  return out;
}

}  // namespace knit
