// Token stream for the Knit linking language.
#ifndef SRC_KNITLANG_TOKEN_H_
#define SRC_KNITLANG_TOKEN_H_

#include <string>

#include "src/support/diagnostics.h"

namespace knit {

enum class TokenKind {
  kIdent,     // identifiers and keywords (the parser distinguishes by text)
  kString,    // "..." with escapes resolved
  kLBrace,    // {
  kRBrace,    // }
  kLBracket,  // [
  kRBracket,  // ]
  kLParen,    // (
  kRParen,    // )
  kComma,     // ,
  kSemi,      // ;
  kColon,     // :
  kDot,       // .
  kPlus,      // +
  kEq,        // =
  kLess,      // <
  kLessEq,    // <=
  kArrowLeft, // <-
  kEnd,       // end of input
};

const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;  // identifier spelling or decoded string contents
  SourceLoc loc;

  bool IsIdent(const char* spelling) const {
    return kind == TokenKind::kIdent && text == spelling;
  }
};

}  // namespace knit

#endif  // SRC_KNITLANG_TOKEN_H_
