#include "src/knitlang/lexer.h"

#include <cctype>

namespace knit {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kString:
      return "string";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kSemi:
      return "';'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kLess:
      return "'<'";
    case TokenKind::kLessEq:
      return "'<='";
    case TokenKind::kArrowLeft:
      return "'<-'";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "token";
}

namespace {

class Lexer {
 public:
  Lexer(std::string_view source, std::string file_name, Diagnostics& diags)
      : source_(source), file_(std::move(file_name)), diags_(diags) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      if (!SkipTrivia()) {
        return Result<std::vector<Token>>::Failure();
      }
      SourceLoc loc = Here();
      if (AtEnd()) {
        tokens.push_back(Token{TokenKind::kEnd, "", loc});
        return tokens;
      }
      char c = Peek();
      if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
        tokens.push_back(LexIdent(loc));
        continue;
      }
      if (c == '"') {
        Result<Token> token = LexString(loc);
        if (!token.ok()) {
          return Result<std::vector<Token>>::Failure();
        }
        tokens.push_back(token.take());
        continue;
      }
      TokenKind kind;
      switch (c) {
        case '{':
          kind = TokenKind::kLBrace;
          break;
        case '}':
          kind = TokenKind::kRBrace;
          break;
        case '[':
          kind = TokenKind::kLBracket;
          break;
        case ']':
          kind = TokenKind::kRBracket;
          break;
        case '(':
          kind = TokenKind::kLParen;
          break;
        case ')':
          kind = TokenKind::kRParen;
          break;
        case ',':
          kind = TokenKind::kComma;
          break;
        case ';':
          kind = TokenKind::kSemi;
          break;
        case ':':
          kind = TokenKind::kColon;
          break;
        case '.':
          kind = TokenKind::kDot;
          break;
        case '+':
          kind = TokenKind::kPlus;
          break;
        case '=':
          kind = TokenKind::kEq;
          break;
        case '<':
          Advance();
          if (!AtEnd() && Peek() == '=') {
            Advance();
            tokens.push_back(Token{TokenKind::kLessEq, "<=", loc});
          } else if (!AtEnd() && Peek() == '-') {
            Advance();
            tokens.push_back(Token{TokenKind::kArrowLeft, "<-", loc});
          } else {
            tokens.push_back(Token{TokenKind::kLess, "<", loc});
          }
          continue;
        default:
          diags_.Error(loc, std::string("unexpected character '") + c + "' in Knit source");
          return Result<std::vector<Token>>::Failure();
      }
      Advance();
      tokens.push_back(Token{kind, std::string(1, c), loc});
    }
  }

 private:
  bool AtEnd() const { return pos_ >= source_.size(); }
  char Peek() const { return source_[pos_]; }
  char PeekAt(size_t offset) const {
    return pos_ + offset < source_.size() ? source_[pos_ + offset] : '\0';
  }

  void Advance() {
    if (source_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  SourceLoc Here() const { return SourceLoc{file_, line_, column_}; }

  // Skips whitespace and comments. Returns false on an unterminated block comment.
  bool SkipTrivia() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        Advance();
        continue;
      }
      if (c == '/' && PeekAt(1) == '/') {
        while (!AtEnd() && Peek() != '\n') {
          Advance();
        }
        continue;
      }
      if (c == '/' && PeekAt(1) == '*') {
        SourceLoc start = Here();
        Advance();
        Advance();
        while (!AtEnd() && !(Peek() == '*' && PeekAt(1) == '/')) {
          Advance();
        }
        if (AtEnd()) {
          diags_.Error(start, "unterminated block comment");
          return false;
        }
        Advance();
        Advance();
        continue;
      }
      break;
    }
    return true;
  }

  Token LexIdent(SourceLoc loc) {
    size_t start = pos_;
    while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) != 0 || Peek() == '_')) {
      Advance();
    }
    return Token{TokenKind::kIdent, std::string(source_.substr(start, pos_ - start)), loc};
  }

  Result<Token> LexString(SourceLoc loc) {
    Advance();  // opening quote
    std::string text;
    while (true) {
      if (AtEnd() || Peek() == '\n') {
        diags_.Error(loc, "unterminated string literal");
        return Result<Token>::Failure();
      }
      char c = Peek();
      Advance();
      if (c == '"') {
        return Token{TokenKind::kString, std::move(text), loc};
      }
      if (c == '\\') {
        if (AtEnd()) {
          diags_.Error(loc, "unterminated string literal");
          return Result<Token>::Failure();
        }
        char escaped = Peek();
        Advance();
        switch (escaped) {
          case 'n':
            text += '\n';
            break;
          case 't':
            text += '\t';
            break;
          case '"':
            text += '"';
            break;
          case '\\':
            text += '\\';
            break;
          default:
            diags_.Error(Here(), std::string("unknown escape '\\") + escaped + "' in string");
            return Result<Token>::Failure();
        }
        continue;
      }
      text += c;
    }
  }

  std::string_view source_;
  std::string file_;
  Diagnostics& diags_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<std::vector<Token>> LexKnit(std::string_view source, const std::string& file_name,
                                   Diagnostics& diags) {
  return Lexer(source, file_name, diags).Run();
}

}  // namespace knit
