// Recursive-descent parser for the Knit linking language.
#ifndef SRC_KNITLANG_PARSER_H_
#define SRC_KNITLANG_PARSER_H_

#include <string>
#include <string_view>

#include "src/knitlang/ast.h"
#include "src/support/diagnostics.h"
#include "src/support/result.h"

namespace knit {

// Parses a whole Knit source. Errors go to `diags`.
Result<KnitProgram> ParseKnit(std::string_view source, const std::string& file_name,
                              Diagnostics& diags);

// Parses and appends onto an existing program (Knit sources are frequently split
// across several files: bundle types in one, units in others).
Result<void> ParseKnitInto(std::string_view source, const std::string& file_name,
                           KnitProgram& program, Diagnostics& diags);

}  // namespace knit

#endif  // SRC_KNITLANG_PARSER_H_
