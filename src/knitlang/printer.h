// Renders a KnitProgram back to canonical Knit source. Used by tooling (knitc
// --dump-units), by tests (parse/print round-trips), and as executable
// documentation of the concrete syntax.
#ifndef SRC_KNITLANG_PRINTER_H_
#define SRC_KNITLANG_PRINTER_H_

#include <string>

#include "src/knitlang/ast.h"

namespace knit {

std::string PrintKnitProgram(const KnitProgram& program);
std::string PrintUnitDecl(const UnitDecl& unit);

}  // namespace knit

#endif  // SRC_KNITLANG_PRINTER_H_
