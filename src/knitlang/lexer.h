// Lexer for the Knit linking language. Produces the full token vector up front;
// Knit sources are small, so there is no need for streaming.
#ifndef SRC_KNITLANG_LEXER_H_
#define SRC_KNITLANG_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/knitlang/token.h"
#include "src/support/diagnostics.h"
#include "src/support/result.h"

namespace knit {

// Tokenizes `source`. `file_name` is used for locations. Reports lexical errors
// (bad characters, unterminated strings/comments) into `diags` and fails.
Result<std::vector<Token>> LexKnit(std::string_view source, const std::string& file_name,
                                   Diagnostics& diags);

}  // namespace knit

#endif  // SRC_KNITLANG_LEXER_H_
