// Simulated object files, archives, and objcopy-style symbol surgery.
//
// This reproduces the toolchain layer Knit manipulates: compiled objects with
// global/local symbols, archives with pull-on-demand member semantics, and the
// renaming/localizing/duplication operations Knit performs with its modified
// objcopy ("renaming symbols and duplicating object code for multiply-instantiated
// units"). The bag-of-objects linker over this format lives in src/ld.
#ifndef SRC_OBJ_OBJECT_H_
#define SRC_OBJ_OBJECT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/support/diagnostics.h"
#include "src/support/result.h"
#include "src/vm/bytecode.h"

namespace knit {

struct ObjSymbol {
  enum class Section {
    kUndefined,  // referenced, defined elsewhere
    kText,       // a function: `index` is into ObjectFile::functions
    kData,       // a global: `index` is a byte offset into ObjectFile::data
  };

  std::string name;
  Section section = Section::kUndefined;
  bool global = true;  // false: local (invisible to other objects)
  int index = 0;       // function index (kText) or data offset (kData)
  int size = 0;        // data bytes (kData)
  int align = 4;       // data alignment (kData)
};

// An absolute 32-bit relocation inside the data image: the word at `data_offset`
// must be patched with the address/function-reference of `symbol`.
struct DataReloc {
  int data_offset = 0;
  int symbol = 0;  // index into ObjectFile::symbols
};

struct ObjectFile {
  std::string name;  // for diagnostics and link maps
  std::vector<ObjSymbol> symbols;
  std::vector<BytecodeFunction> functions;  // code refers to symbols by index
                                            // (kCall.a / kConstSym.a)
  std::vector<uint8_t> data;                // initialized + zero-init globals
  std::vector<DataReloc> data_relocs;

  int FindSymbol(const std::string& name) const;  // -1 if absent

  // Adds (or returns) an undefined global symbol.
  int AddUndefined(const std::string& name);
};

// An archive: an ordered bag of objects with standard member-pull semantics.
struct Archive {
  std::string name;
  std::vector<ObjectFile> members;
};

// ---- objcopy operations ------------------------------------------------------

// Renames symbols per `renames` (old -> new). Both defined and undefined symbols
// are renamed; code references follow automatically (they go through the symbol
// table). Renaming onto a name that already exists in the object is an error.
Result<void> ObjcopyRename(ObjectFile& object, const std::map<std::string, std::string>& renames,
                           Diagnostics& diags);

// Makes a defined global symbol local (Knit hides defined-but-not-exported names).
// Unknown or undefined symbols are an error.
Result<void> ObjcopyLocalize(ObjectFile& object, const std::string& symbol, Diagnostics& diags);

// Clones an object under a new name (for multiply-instantiated units; the caller
// then renames the clone's symbols per instance).
ObjectFile ObjcopyDuplicate(const ObjectFile& object, const std::string& new_name);

}  // namespace knit

#endif  // SRC_OBJ_OBJECT_H_
