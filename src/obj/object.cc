#include "src/obj/object.h"

namespace knit {

int ObjectFile::FindSymbol(const std::string& symbol_name) const {
  for (size_t i = 0; i < symbols.size(); ++i) {
    if (symbols[i].name == symbol_name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int ObjectFile::AddUndefined(const std::string& symbol_name) {
  int existing = FindSymbol(symbol_name);
  if (existing >= 0) {
    return existing;
  }
  ObjSymbol symbol;
  symbol.name = symbol_name;
  symbol.section = ObjSymbol::Section::kUndefined;
  symbol.global = true;
  symbols.push_back(std::move(symbol));
  return static_cast<int>(symbols.size()) - 1;
}

Result<void> ObjcopyRename(ObjectFile& object, const std::map<std::string, std::string>& renames,
                           Diagnostics& diags) {
  // Validate against collisions first: renaming a -> b when b already exists in the
  // object (and is not itself being renamed away) would merge distinct symbols.
  for (const auto& [from, to] : renames) {
    if (object.FindSymbol(from) < 0) {
      continue;  // nothing to rename; harmless (unit may not reference an import)
    }
    int clash = object.FindSymbol(to);
    if (clash >= 0 && renames.count(to) == 0 && from != to) {
      diags.Error(SourceLoc{object.name, 0, 0},
                  "objcopy rename '" + from + "' -> '" + to + "' collides with an existing "
                  "symbol in " + object.name);
      return Result<void>::Failure();
    }
  }
  for (ObjSymbol& symbol : object.symbols) {
    auto it = renames.find(symbol.name);
    if (it != renames.end()) {
      symbol.name = it->second;
    }
  }
  // Function display names track their defining symbol where one exists.
  for (BytecodeFunction& function : object.functions) {
    auto it = renames.find(function.name);
    if (it != renames.end()) {
      function.name = it->second;
    }
  }
  return Result<void>::Success();
}

Result<void> ObjcopyLocalize(ObjectFile& object, const std::string& symbol_name,
                             Diagnostics& diags) {
  int index = object.FindSymbol(symbol_name);
  if (index < 0) {
    diags.Error(SourceLoc{object.name, 0, 0},
                "objcopy localize: no symbol '" + symbol_name + "' in " + object.name);
    return Result<void>::Failure();
  }
  ObjSymbol& symbol = object.symbols[index];
  if (symbol.section == ObjSymbol::Section::kUndefined) {
    diags.Error(SourceLoc{object.name, 0, 0},
                "objcopy localize: symbol '" + symbol_name + "' is undefined in " + object.name);
    return Result<void>::Failure();
  }
  symbol.global = false;
  return Result<void>::Success();
}

ObjectFile ObjcopyDuplicate(const ObjectFile& object, const std::string& new_name) {
  ObjectFile copy = object;
  copy.name = new_name;
  return copy;
}

}  // namespace knit
