// A small directed-graph toolkit: adjacency storage, Kahn topological sort, Tarjan
// strongly-connected components, cycle extraction, and reachability. Nodes are dense
// integer ids assigned by the caller (typically indices into a parallel entity table).
#ifndef SRC_GRAPH_DIGRAPH_H_
#define SRC_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace knit {

class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(size_t node_count) : successors_(node_count) {}

  // Adds a node and returns its id.
  int AddNode();

  // Ensures ids [0, count) exist.
  void Resize(size_t count);

  // Adds the edge from -> to. Duplicate edges are kept (harmless for our algorithms)
  // unless AddEdgeUnique is used.
  void AddEdge(int from, int to);
  void AddEdgeUnique(int from, int to);

  size_t node_count() const { return successors_.size(); }
  const std::vector<int>& SuccessorsOf(int node) const { return successors_[node]; }

  bool HasEdge(int from, int to) const;

  // Kahn topological sort. Returns the order (every edge from->to has `from` earlier)
  // or nullopt if the graph has a cycle. Ties are broken by smallest node id so the
  // result is deterministic.
  std::optional<std::vector<int>> TopologicalSort() const;

  // Tarjan SCC. Returns components in reverse topological order (callees first);
  // each component lists its member nodes.
  std::vector<std::vector<int>> StronglyConnectedComponents() const;

  // Finds some cycle and returns it as a node sequence [n0, n1, ..., n0-implied]
  // (the edge nk -> n0 closes it). Empty if acyclic.
  std::vector<int> FindCycle() const;

  // All nodes reachable from `start` (including start).
  std::vector<bool> ReachableFrom(int start) const;

  // A copy of this graph with every edge reversed.
  Digraph Reversed() const;

 private:
  std::vector<std::vector<int>> successors_;
};

}  // namespace knit

#endif  // SRC_GRAPH_DIGRAPH_H_
