#include "src/graph/digraph.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <queue>

namespace knit {

int Digraph::AddNode() {
  successors_.emplace_back();
  return static_cast<int>(successors_.size()) - 1;
}

void Digraph::Resize(size_t count) {
  if (count > successors_.size()) {
    successors_.resize(count);
  }
}

void Digraph::AddEdge(int from, int to) {
  assert(from >= 0 && static_cast<size_t>(from) < successors_.size());
  assert(to >= 0 && static_cast<size_t>(to) < successors_.size());
  successors_[from].push_back(to);
}

void Digraph::AddEdgeUnique(int from, int to) {
  if (!HasEdge(from, to)) {
    AddEdge(from, to);
  }
}

bool Digraph::HasEdge(int from, int to) const {
  assert(from >= 0 && static_cast<size_t>(from) < successors_.size());
  const std::vector<int>& succ = successors_[from];
  return std::find(succ.begin(), succ.end(), to) != succ.end();
}

std::optional<std::vector<int>> Digraph::TopologicalSort() const {
  const size_t n = successors_.size();
  std::vector<int> in_degree(n, 0);
  for (const std::vector<int>& succ : successors_) {
    for (int to : succ) {
      ++in_degree[to];
    }
  }
  // Min-heap on node id for deterministic output.
  std::priority_queue<int, std::vector<int>, std::greater<int>> ready;
  for (size_t i = 0; i < n; ++i) {
    if (in_degree[i] == 0) {
      ready.push(static_cast<int>(i));
    }
  }
  std::vector<int> order;
  order.reserve(n);
  while (!ready.empty()) {
    int node = ready.top();
    ready.pop();
    order.push_back(node);
    for (int to : successors_[node]) {
      if (--in_degree[to] == 0) {
        ready.push(to);
      }
    }
  }
  if (order.size() != n) {
    return std::nullopt;
  }
  return order;
}

std::vector<std::vector<int>> Digraph::StronglyConnectedComponents() const {
  const size_t n = successors_.size();
  std::vector<int> index(n, -1);
  std::vector<int> low_link(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<int> stack;
  std::vector<std::vector<int>> components;
  int next_index = 0;

  // Iterative Tarjan: systems configs can be deep enough to overflow the C++ stack
  // with a recursive formulation.
  struct Frame {
    int node;
    size_t child;
  };
  std::vector<Frame> work;

  for (size_t root = 0; root < n; ++root) {
    if (index[root] != -1) {
      continue;
    }
    work.push_back(Frame{static_cast<int>(root), 0});
    while (!work.empty()) {
      Frame& frame = work.back();
      int node = frame.node;
      if (frame.child == 0) {
        index[node] = low_link[node] = next_index++;
        stack.push_back(node);
        on_stack[node] = true;
      }
      if (frame.child < successors_[node].size()) {
        int to = successors_[node][frame.child++];
        if (index[to] == -1) {
          work.push_back(Frame{to, 0});
        } else if (on_stack[to]) {
          low_link[node] = std::min(low_link[node], index[to]);
        }
        continue;
      }
      if (low_link[node] == index[node]) {
        std::vector<int> component;
        while (true) {
          int member = stack.back();
          stack.pop_back();
          on_stack[member] = false;
          component.push_back(member);
          if (member == node) {
            break;
          }
        }
        std::sort(component.begin(), component.end());
        components.push_back(std::move(component));
      }
      work.pop_back();
      if (!work.empty()) {
        int parent = work.back().node;
        low_link[parent] = std::min(low_link[parent], low_link[node]);
      }
    }
  }
  return components;
}

std::vector<int> Digraph::FindCycle() const {
  // A single node with a self edge is a cycle; otherwise any SCC with >1 node
  // contains one. Walk within the SCC to extract an explicit path.
  for (const std::vector<std::vector<int>>& sccs = StronglyConnectedComponents();
       const std::vector<int>& scc : sccs) {
    bool cyclic = scc.size() > 1 || HasEdge(scc[0], scc[0]);
    if (!cyclic) {
      continue;
    }
    std::vector<bool> in_scc(successors_.size(), false);
    for (int node : scc) {
      in_scc[node] = true;
    }
    // DFS restricted to the SCC from scc[0] until we revisit a node on the path.
    std::vector<int> path;
    std::vector<bool> on_path(successors_.size(), false);
    std::function<std::vector<int>(int)> dfs = [&](int node) -> std::vector<int> {
      path.push_back(node);
      on_path[node] = true;
      for (int to : successors_[node]) {
        if (!in_scc[to]) {
          continue;
        }
        if (on_path[to]) {
          // Found the cycle: slice the path from the first occurrence of `to`.
          auto it = std::find(path.begin(), path.end(), to);
          return std::vector<int>(it, path.end());
        }
        std::vector<int> found = dfs(to);
        if (!found.empty()) {
          return found;
        }
      }
      on_path[node] = false;
      path.pop_back();
      return {};
    };
    std::vector<int> cycle = dfs(scc[0]);
    if (!cycle.empty()) {
      return cycle;
    }
  }
  return {};
}

std::vector<bool> Digraph::ReachableFrom(int start) const {
  std::vector<bool> seen(successors_.size(), false);
  std::vector<int> work{start};
  seen[start] = true;
  while (!work.empty()) {
    int node = work.back();
    work.pop_back();
    for (int to : successors_[node]) {
      if (!seen[to]) {
        seen[to] = true;
        work.push_back(to);
      }
    }
  }
  return seen;
}

Digraph Digraph::Reversed() const {
  Digraph out(successors_.size());
  for (size_t from = 0; from < successors_.size(); ++from) {
    for (int to : successors_[from]) {
      out.AddEdge(to, static_cast<int>(from));
    }
  }
  return out;
}

}  // namespace knit
