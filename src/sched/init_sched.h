// Automatic initialization/finalization scheduling (paper §3.2).
//
// Semantics reproduced from the paper:
//  * "serveLog needs stdio" (an *export-level* clause) means: before any function in
//    the serveLog bundle is called, stdio's supplier must be initialized. It does NOT
//    by itself order the two components' initializers.
//  * "open_log needs stdio" (an *initializer-level* clause) means: the stdio
//    supplier's initialization must precede running open_log. Only these clauses
//    (expanded through export-level usability closure) create ordering edges.
//  * A dependent (export bundle or initializer/finalizer) with no explicit clause
//    conservatively needs ALL of the unit's imports — which is why cyclic import
//    graphs become unschedulable until the programmer adds fine-grained clauses
//    ("the programmer must occasionally provide fine-grained dependency information
//    to break cycles").
//  * Finalizers run with the mirrored constraint: a finalizer that needs a bundle
//    must run before the finalizers that tear that bundle down.
#ifndef SRC_SCHED_INIT_SCHED_H_
#define SRC_SCHED_INIT_SCHED_H_

#include <string>
#include <vector>

#include "src/knitsem/instantiate.h"
#include "src/support/diagnostics.h"
#include "src/support/result.h"

namespace knit {

// One call in the generated startup (or shutdown) sequence.
struct InitCall {
  int instance = -1;        // index into Configuration::instances
  std::string function;     // the C-level initializer/finalizer function name

  bool operator==(const InitCall& other) const = default;
};

struct Schedule {
  std::vector<InitCall> initializers;  // legal startup order
  std::vector<InitCall> finalizers;    // legal shutdown order
};

// Computes a legal schedule, or reports the dependency cycle (with instance paths and
// function names) and fails.
Result<Schedule> ScheduleInitFini(const Configuration& config, Diagnostics& diags);

// Number of initializer calls each instance contributes to the schedule, indexed
// like Configuration::instances. The failure-aware init runtime treats an instance
// as "initialized" (and thus eligible for rollback finalization) once this many of
// its initializers have completed; instances with zero initializers have nothing to
// undo and are never finalized by rollback.
std::vector<int> InitializerCounts(const Configuration& config);

}  // namespace knit

#endif  // SRC_SCHED_INIT_SCHED_H_
