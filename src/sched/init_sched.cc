#include "src/sched/init_sched.h"

#include <cassert>
#include <map>
#include <set>

#include "src/graph/digraph.h"
#include "src/support/strings.h"

namespace knit {
namespace {

// Scheduling is symmetric for initializers and finalizers; `Phase` selects which
// declaration list and edge orientation to use.
enum class Phase { kInit, kFini };

class Scheduler {
 public:
  Scheduler(const Configuration& config, Diagnostics& diags) : config_(config), diags_(diags) {}

  Result<Schedule> Run() {
    Schedule schedule;
    if (!RunPhase(Phase::kInit, schedule.initializers) ||
        !RunPhase(Phase::kFini, schedule.finalizers)) {
      return Result<Schedule>::Failure();
    }
    return schedule;
  }

 private:
  const std::vector<InitFiniDecl>& DeclsOf(const Instance& instance, Phase phase) const {
    return phase == Phase::kInit ? instance.unit->initializers : instance.unit->finalizers;
  }

  // The set of import-port indices an atom (export bundle name or init/fini function
  // name) needs. Explicit clauses override; the default is every import.
  std::vector<int> NeedsOf(const UnitDecl& unit, const std::string& atom) const {
    std::set<int> needed;
    bool has_clause = false;
    for (const DependsClause& clause : unit.depends) {
      bool mentions = false;
      for (const std::string& dependent : clause.dependents) {
        if (dependent == atom) {
          mentions = true;
          break;
        }
      }
      if (!mentions) {
        continue;
      }
      has_clause = true;
      for (const std::string& requirement : clause.requirements) {
        int index = Elaboration::PortIndex(unit.imports, requirement);
        assert(index >= 0);  // elaboration validated requirements
        needed.insert(index);
      }
    }
    if (!has_clause) {
      for (size_t i = 0; i < unit.imports.size(); ++i) {
        needed.insert(static_cast<int>(i));
      }
    }
    return std::vector<int>(needed.begin(), needed.end());
  }

  bool RunPhase(Phase phase, std::vector<InitCall>& out) {
    // Node numbering: one "call node" per (instance, decl); one "bundle node" per
    // (instance, export port). Bundle nodes exist only to compute usability closure.
    struct CallNode {
      int instance;
      const InitFiniDecl* decl;
    };
    std::vector<CallNode> calls;
    std::map<std::pair<int, int>, int> bundle_node;  // (instance, export idx) -> node id

    for (size_t i = 0; i < config_.instances.size(); ++i) {
      for (const InitFiniDecl& decl : DeclsOf(config_.instances[i], phase)) {
        calls.push_back(CallNode{static_cast<int>(i), &decl});
      }
    }
    int next = static_cast<int>(calls.size());
    for (size_t i = 0; i < config_.instances.size(); ++i) {
      const UnitDecl& unit = *config_.instances[i].unit;
      for (size_t e = 0; e < unit.exports.size(); ++e) {
        bundle_node[{static_cast<int>(i), static_cast<int>(e)}] = next++;
      }
    }

    // Usability graph: bundle -> call (own initializers for that export), and
    // bundle -> supplier bundle (export-level needs).
    Digraph usability(static_cast<size_t>(next));
    for (size_t c = 0; c < calls.size(); ++c) {
      const Instance& instance = config_.instances[calls[c].instance];
      int export_index =
          Elaboration::PortIndex(instance.unit->exports, calls[c].decl->port);
      assert(export_index >= 0);
      usability.AddEdgeUnique(bundle_node[{calls[c].instance, export_index}],
                              static_cast<int>(c));
    }
    for (size_t i = 0; i < config_.instances.size(); ++i) {
      const Instance& instance = config_.instances[i];
      const UnitDecl& unit = *instance.unit;
      for (size_t e = 0; e < unit.exports.size(); ++e) {
        int from = bundle_node[{static_cast<int>(i), static_cast<int>(e)}];
        for (int import_index : NeedsOf(unit, unit.exports[e].local_name)) {
          const SupplierRef& supplier = instance.import_suppliers[import_index];
          if (supplier.IsEnvironment()) {
            continue;  // the environment is always ready
          }
          usability.AddEdgeUnique(from, bundle_node[{supplier.instance, supplier.port}]);
        }
      }
    }

    // Ordering graph over call nodes. For initializers: everything a call needs must
    // run before it (edge needed -> call). For finalizers, mirrored: the call must
    // run before the teardown of anything it needs (edge call -> needed).
    Digraph ordering(calls.size());
    for (size_t c = 0; c < calls.size(); ++c) {
      const Instance& instance = config_.instances[calls[c].instance];
      for (int import_index : NeedsOf(*instance.unit, calls[c].decl->function)) {
        const SupplierRef& supplier = instance.import_suppliers[import_index];
        if (supplier.IsEnvironment()) {
          continue;
        }
        int supplier_bundle = bundle_node[{supplier.instance, supplier.port}];
        std::vector<bool> reachable = usability.ReachableFrom(supplier_bundle);
        for (size_t m = 0; m < calls.size(); ++m) {
          if (!reachable[m] || m == c) {
            continue;
          }
          if (phase == Phase::kInit) {
            ordering.AddEdgeUnique(static_cast<int>(m), static_cast<int>(c));
          } else {
            ordering.AddEdgeUnique(static_cast<int>(c), static_cast<int>(m));
          }
        }
        // A call whose needs reach back to itself is a genuine cycle.
        if (reachable[c]) {
          ReportSelfCycle(phase, calls[c].instance, calls[c].decl->function);
          return false;
        }
      }
    }

    std::optional<std::vector<int>> order = ordering.TopologicalSort();
    if (!order.has_value()) {
      std::vector<int> cycle = ordering.FindCycle();
      std::vector<std::string> parts;
      for (int node : cycle) {
        parts.push_back(config_.instances[calls[node].instance].path + "." +
                        calls[node].decl->function);
      }
      diags_.Error(SourceLoc::Unknown(),
                   std::string(phase == Phase::kInit ? "initialization" : "finalization") +
                       " order has a genuine cycle: " + Join(parts, " -> ") +
                       " -> (back to start); add fine-grained 'needs' clauses to break it");
      return false;
    }
    for (int node : *order) {
      out.push_back(InitCall{calls[node].instance, calls[node].decl->function});
    }
    return true;
  }

  void ReportSelfCycle(Phase phase, int instance, const std::string& function) {
    diags_.Error(SourceLoc::Unknown(),
                 std::string(phase == Phase::kInit ? "initializer '" : "finalizer '") + function +
                     "' of instance '" + config_.instances[instance].path +
                     "' transitively needs a bundle that requires itself; add fine-grained "
                     "'needs' clauses to break the cycle");
  }

  const Configuration& config_;
  Diagnostics& diags_;
};

}  // namespace

Result<Schedule> ScheduleInitFini(const Configuration& config, Diagnostics& diags) {
  return Scheduler(config, diags).Run();
}

std::vector<int> InitializerCounts(const Configuration& config) {
  std::vector<int> counts(config.instances.size(), 0);
  for (size_t i = 0; i < config.instances.size(); ++i) {
    counts[i] = static_cast<int>(config.instances[i].unit->initializers.size());
  }
  return counts;
}

}  // namespace knit
