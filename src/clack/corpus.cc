#include "src/clack/corpus.h"

#include "src/oskit/alloc_corpus.h"

namespace knit {

namespace {

SourceMap BuildSources() {
  SourceMap sources;

  sources["pkt.h"] = R"(
struct pkt {
  char *data;
  int len;
  int port;
  unsigned nexthop;
};
)";

  sources["portcfg0.c"] = R"(
int cfg_port(void) { return 0; }
)";

  sources["portcfg1.c"] = R"(
int cfg_port(void) { return 1; }
)";

  sources["fromdevice.c"] = R"(
#include "pkt.h"
extern void out_push(struct pkt *p);
extern int cfg_port(void);
void pkt_push(struct pkt *p) {
  p->port = cfg_port();
  out_push(p);
}
)";

  sources["counter.c"] = R"(
#include "pkt.h"
extern void out_push(struct pkt *p);
static unsigned g_count = 0;
static unsigned g_bytes = 0;
void pkt_push(struct pkt *p) {
  g_count++;
  g_bytes += (unsigned)p->len;
  out_push(p);
}
unsigned counter_value(void) { return g_count; }
)";

  sources["classifier.c"] = R"(
#include "pkt.h"
extern void out_ip(struct pkt *p);
extern void out_arp(struct pkt *p);
extern void out_other(struct pkt *p);
void pkt_push(struct pkt *p) {
  if (p->len < 14) {
    out_other(p);
    return;
  }
  unsigned t = ((unsigned)(p->data[12] & 0xFF) << 8) | (unsigned)(p->data[13] & 0xFF);
  if (t == 0x800) {
    out_ip(p);
    return;
  }
  if (t == 0x806) {
    out_arp(p);
    return;
  }
  out_other(p);
}
)";

  sources["discard.c"] = R"(
#include "pkt.h"
static unsigned g_count = 0;
void pkt_push(struct pkt *p) {
  (void)p;
  g_count++;
}
unsigned counter_value(void) { return g_count; }
)";

  sources["strip.c"] = R"(
#include "pkt.h"
extern void out_push(struct pkt *p);
void pkt_push(struct pkt *p) {
  p->data += 14;
  p->len -= 14;
  out_push(p);
}
)";

  sources["checkip.c"] = R"(
#include "pkt.h"
extern void out_good(struct pkt *p);
extern void out_bad(struct pkt *p);
void pkt_push(struct pkt *p) {
  if (p->len < 20) {
    out_bad(p);
    return;
  }
  char *h = p->data;
  int vh = h[0] & 0xFF;
  if ((vh >> 4) != 4) {
    out_bad(p);
    return;
  }
  if ((vh & 0xF) != 5) {
    out_bad(p);
    return;
  }
  int total = ((h[2] & 0xFF) << 8) | (h[3] & 0xFF);
  if (total < 20 || total > p->len) {
    out_bad(p);
    return;
  }
  unsigned sum = 0;
  for (int i = 0; i < 20; i += 2) {
    sum += (unsigned)(((h[i] & 0xFF) << 8) | (h[i + 1] & 0xFF));
  }
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  if (sum != 0xFFFF) {
    out_bad(p);
    return;
  }
  out_good(p);
}
)";

  sources["routelookup.c"] = R"(
#include "pkt.h"
extern void out_good(struct pkt *p);
extern void out_miss(struct pkt *p);

enum { ROUTES = 5 };
static unsigned g_prefix[ROUTES] = {
  0x0A010500u,  /* 10.1.5.0/24    via 10.1.5.42   port 0 */
  0x0A010000u,  /* 10.1.0.0/16    via 10.1.0.1    port 0 */
  0x0A020000u,  /* 10.2.0.0/16    via 10.2.0.1    port 1 */
  0xC0A80000u,  /* 192.168.0.0/16 via 192.168.0.9 port 1 */
  0x00000000u   /* default        via 10.1.0.254  port 0 */
};
static unsigned g_mask[ROUTES] = {
  0xFFFFFF00u, 0xFFFF0000u, 0xFFFF0000u, 0xFFFF0000u, 0x00000000u
};
static unsigned g_gateway[ROUTES] = {
  0x0A01052Au, 0x0A010001u, 0x0A020001u, 0xC0A80009u, 0x0A0100FEu
};
static int g_outport[ROUTES] = { 0, 0, 1, 1, 0 };

void pkt_push(struct pkt *p) {
  char *h = p->data;
  unsigned dst = ((unsigned)(h[16] & 0xFF) << 24) | ((unsigned)(h[17] & 0xFF) << 16) |
                 ((unsigned)(h[18] & 0xFF) << 8) | (unsigned)(h[19] & 0xFF);
  int best = -1;
  unsigned best_mask = 0;
  for (int i = 0; i < ROUTES; i++) {
    if ((dst & g_mask[i]) == g_prefix[i]) {
      if (best < 0 || g_mask[i] > best_mask || (g_mask[i] == 0 && best < 0)) {
        best = i;
        best_mask = g_mask[i];
      }
    }
  }
  if (best < 0) {
    out_miss(p);
    return;
  }
  p->nexthop = g_gateway[best];
  p->port = g_outport[best];
  out_good(p);
}
)";

  sources["decttl.c"] = R"(
#include "pkt.h"
extern void out_good(struct pkt *p);
extern void out_expired(struct pkt *p);
void pkt_push(struct pkt *p) {
  char *h = p->data;
  int ttl = h[8] & 0xFF;
  if (ttl <= 1) {
    out_expired(p);
    return;
  }
  h[8] = (char)(ttl - 1);
  out_good(p);
}
)";

  sources["fixcksum.c"] = R"(
#include "pkt.h"
extern void out_push(struct pkt *p);
void pkt_push(struct pkt *p) {
  char *h = p->data;
  h[10] = (char)0;
  h[11] = (char)0;
  unsigned sum = 0;
  for (int i = 0; i < 20; i += 2) {
    sum += (unsigned)(((h[i] & 0xFF) << 8) | (h[i + 1] & 0xFF));
  }
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  unsigned ck = ~sum & 0xFFFF;
  h[10] = (char)((ck >> 8) & 0xFF);
  h[11] = (char)(ck & 0xFF);
  out_push(p);
}
)";

  sources["etherencap.c"] = R"(
#include "pkt.h"
extern void out_push(struct pkt *p);
void pkt_push(struct pkt *p) {
  p->data -= 14;
  p->len += 14;
  char *e = p->data;
  unsigned nh = p->nexthop;
  e[0] = (char)2;
  e[1] = (char)0;
  e[2] = (char)((nh >> 24) & 0xFF);
  e[3] = (char)((nh >> 16) & 0xFF);
  e[4] = (char)((nh >> 8) & 0xFF);
  e[5] = (char)(nh & 0xFF);
  e[6] = (char)2;
  e[7] = (char)1;
  e[8] = (char)0;
  e[9] = (char)0;
  e[10] = (char)0;
  e[11] = (char)(p->port & 0xFF);
  e[12] = (char)8;
  e[13] = (char)0;
  out_push(p);
}
)";

  sources["portswitch.c"] = R"(
#include "pkt.h"
extern void out0_push(struct pkt *p);
extern void out1_push(struct pkt *p);
void pkt_push(struct pkt *p) {
  if (p->port == 0) {
    out0_push(p);
    return;
  }
  out1_push(p);
}
)";

  sources["queue.c"] = R"(
#include "pkt.h"
extern void out_push(struct pkt *p);
enum { QCAP = 16 };
static struct pkt *g_ring[QCAP];
static int g_head = 0;
static int g_tail = 0;
static unsigned g_drops = 0;
void pkt_push(struct pkt *p) {
  int next = (g_tail + 1) % QCAP;
  if (next == g_head) {
    g_drops++;
    return;
  }
  g_ring[g_tail] = p;
  g_tail = next;
  while (g_head != g_tail) {
    struct pkt *q = g_ring[g_head];
    g_head = (g_head + 1) % QCAP;
    out_push(q);
  }
}
)";

  sources["todevice.c"] = R"(
#include "pkt.h"
extern void dev_tx(char *data, int len, int port);
void pkt_push(struct pkt *p) {
  dev_tx(p->data, p->len, p->port);
}
)";

  sources["arpresponder.c"] = R"(
#include "pkt.h"
extern void out_push(struct pkt *p);
void pkt_push(struct pkt *p) {
  if (p->len < 42) {
    return;
  }
  char *e = p->data;
  char *a = p->data + 14;
  int op = ((a[6] & 0xFF) << 8) | (a[7] & 0xFF);
  if (op != 1) {
    return;
  }
  /* Ethernet: reply to sender, from our synthetic MAC 02:01:00:00:00:pp. */
  for (int i = 0; i < 6; i++) e[i] = e[6 + i];
  e[6] = (char)2;
  e[7] = (char)1;
  e[8] = (char)0;
  e[9] = (char)0;
  e[10] = (char)0;
  e[11] = (char)(p->port & 0xFF);
  /* ARP: op = reply; target <- old sender; sender <- us with the asked IP. */
  a[7] = (char)2;
  char sha[6];
  char spa[4];
  for (int i = 0; i < 6; i++) sha[i] = a[8 + i];
  for (int i = 0; i < 4; i++) spa[i] = a[14 + i];
  char tpa[4];
  for (int i = 0; i < 4; i++) tpa[i] = a[24 + i];
  for (int i = 0; i < 6; i++) a[18 + i] = sha[i];
  for (int i = 0; i < 4; i++) a[24 + i] = spa[i];
  a[8] = (char)2;
  a[9] = (char)1;
  a[10] = (char)0;
  a[11] = (char)0;
  a[12] = (char)0;
  a[13] = (char)(p->port & 0xFF);
  for (int i = 0; i < 4; i++) a[14 + i] = tpa[i];
  out_push(p);
}
)";

  // ---- the hand-optimized 2-component rewrite --------------------------------

  sources["handopt_in.c"] = R"(
#include "pkt.h"
extern void tx_ip(struct pkt *p);
extern void tx_raw(struct pkt *p);

static unsigned g_in0 = 0;
static unsigned g_in1 = 0;
static unsigned g_in_bytes0 = 0;
static unsigned g_in_bytes1 = 0;
static unsigned g_ip = 0;
static unsigned g_ip_bytes = 0;
static unsigned g_drop = 0;

unsigned stats_in0(void) { return g_in0; }
unsigned stats_in1(void) { return g_in1; }
unsigned stats_ip(void) { return g_ip; }
unsigned stats_drop(void) { return g_drop; }

enum { ROUTES = 5 };
static unsigned g_prefix[ROUTES] = {
  0x0A010500u, 0x0A010000u, 0x0A020000u, 0xC0A80000u, 0x00000000u
};
static unsigned g_mask[ROUTES] = {
  0xFFFFFF00u, 0xFFFF0000u, 0xFFFF0000u, 0xFFFF0000u, 0x00000000u
};
static unsigned g_gateway[ROUTES] = {
  0x0A01052Au, 0x0A010001u, 0x0A020001u, 0xC0A80009u, 0x0A0100FEu
};
static int g_outport[ROUTES] = { 0, 0, 1, 1, 0 };

static void process_arp(struct pkt *p) {
  if (p->len < 42) return;
  char *e = p->data;
  char *a = p->data + 14;
  int op = ((a[6] & 0xFF) << 8) | (a[7] & 0xFF);
  if (op != 1) return;
  for (int i = 0; i < 6; i++) e[i] = e[6 + i];
  e[6] = (char)2;
  e[7] = (char)1;
  e[8] = (char)0;
  e[9] = (char)0;
  e[10] = (char)0;
  e[11] = (char)(p->port & 0xFF);
  a[7] = (char)2;
  char sha[6];
  char spa[4];
  for (int i = 0; i < 6; i++) sha[i] = a[8 + i];
  for (int i = 0; i < 4; i++) spa[i] = a[14 + i];
  char tpa[4];
  for (int i = 0; i < 4; i++) tpa[i] = a[24 + i];
  for (int i = 0; i < 6; i++) a[18 + i] = sha[i];
  for (int i = 0; i < 4; i++) a[24 + i] = spa[i];
  a[8] = (char)2;
  a[9] = (char)1;
  a[10] = (char)0;
  a[11] = (char)0;
  a[12] = (char)0;
  a[13] = (char)(p->port & 0xFF);
  for (int i = 0; i < 4; i++) a[14 + i] = tpa[i];
  tx_raw(p);
}

/* The idiomatic rewrite: one pass over the headers with everything cached in
   locals — classification, IP validation, route lookup, TTL, checksum. */
static void process(struct pkt *p) {
  int len = p->len;
  char *d = p->data;
  if (len < 14) {
    g_drop++;
    return;
  }
  unsigned t = ((unsigned)(d[12] & 0xFF) << 8) | (unsigned)(d[13] & 0xFF);
  if (t == 0x806) {
    process_arp(p);
    return;
  }
  if (t != 0x800) {
    g_drop++;
    return;
  }
  g_ip++;
  g_ip_bytes += (unsigned)(len - 14);
  char *h = d + 14;
  int iplen = len - 14;
  if (iplen < 20) {
    g_drop++;
    return;
  }
  int vh = h[0] & 0xFF;
  if ((vh >> 4) != 4 || (vh & 0xF) != 5) {
    g_drop++;
    return;
  }
  int total = ((h[2] & 0xFF) << 8) | (h[3] & 0xFF);
  if (total < 20 || total > iplen) {
    g_drop++;
    return;
  }
  unsigned sum = 0;
  for (int i = 0; i < 20; i += 2) {
    sum += (unsigned)(((h[i] & 0xFF) << 8) | (h[i + 1] & 0xFF));
  }
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  if (sum != 0xFFFF) {
    g_drop++;
    return;
  }
  unsigned dst = ((unsigned)(h[16] & 0xFF) << 24) | ((unsigned)(h[17] & 0xFF) << 16) |
                 ((unsigned)(h[18] & 0xFF) << 8) | (unsigned)(h[19] & 0xFF);
  int best = -1;
  unsigned best_mask = 0;
  for (int i = 0; i < ROUTES; i++) {
    if ((dst & g_mask[i]) == g_prefix[i]) {
      if (best < 0 || g_mask[i] > best_mask) {
        best = i;
        best_mask = g_mask[i];
      }
    }
  }
  if (best < 0) {
    g_drop++;
    return;
  }
  int ttl = h[8] & 0xFF;
  if (ttl <= 1) {
    g_drop++;
    return;
  }
  h[8] = (char)(ttl - 1);
  h[10] = (char)0;
  h[11] = (char)0;
  unsigned sum2 = 0;
  for (int i = 0; i < 20; i += 2) {
    sum2 += (unsigned)(((h[i] & 0xFF) << 8) | (h[i + 1] & 0xFF));
  }
  while (sum2 >> 16) sum2 = (sum2 & 0xFFFF) + (sum2 >> 16);
  unsigned ck = ~sum2 & 0xFFFF;
  h[10] = (char)((ck >> 8) & 0xFF);
  h[11] = (char)(ck & 0xFF);
  /* Hand Strip: the IP path hands the stripped packet to the output half. */
  p->data = h;
  p->len = iplen;
  p->nexthop = g_gateway[best];
  p->port = g_outport[best];
  tx_ip(p);
}

void hand_in0(struct pkt *p) {
  p->port = 0;
  g_in0++;
  g_in_bytes0 += (unsigned)p->len;
  process(p);
}

void hand_in1(struct pkt *p) {
  p->port = 1;
  g_in1++;
  g_in_bytes1 += (unsigned)p->len;
  process(p);
}
)";

  sources["handopt_out.c"] = R"(
#include "pkt.h"
extern void dev_tx(char *data, int len, int port);

static unsigned g_out = 0;
static unsigned g_out_bytes = 0;
unsigned counter_value(void) { return g_out; }

void hand_tx_ip(struct pkt *p) {
  /* EtherEncap + CounterOut + ToDevice in one function. */
  p->data -= 14;
  p->len += 14;
  char *e = p->data;
  unsigned nh = p->nexthop;
  e[0] = (char)2;
  e[1] = (char)0;
  e[2] = (char)((nh >> 24) & 0xFF);
  e[3] = (char)((nh >> 16) & 0xFF);
  e[4] = (char)((nh >> 8) & 0xFF);
  e[5] = (char)(nh & 0xFF);
  e[6] = (char)2;
  e[7] = (char)1;
  e[8] = (char)0;
  e[9] = (char)0;
  e[10] = (char)0;
  e[11] = (char)(p->port & 0xFF);
  e[12] = (char)8;
  e[13] = (char)0;
  g_out++;
  g_out_bytes += (unsigned)(p->len - 14);
  dev_tx(p->data, p->len, p->port);
}

void hand_tx_raw(struct pkt *p) {
  dev_tx(p->data, p->len, p->port);
}
)";

  // Allocation-heavy element: copies the payload into scratch storage, digests
  // the copy, releases it, and forwards the ORIGINAL packet unchanged. When
  // malloc fails it digests in place — so the tx stream (and its hash) is
  // byte-identical whichever allocator serves the heap import, and across
  // exhaustion. malloc/free are the implicit MiniC builtins: no declarations,
  // the linker resolves them against the unit's Alloc import.
  sources["payload_scratch.c"] = R"(
#include "pkt.h"
extern void out_push(struct pkt *p);
static unsigned g_count = 0;
static unsigned g_digest = 0;
void pkt_push(struct pkt *p) {
  unsigned sum = 0;
  char *scratch = (char *)malloc((unsigned)p->len);
  if (scratch) {
    for (int i = 0; i < p->len; i++) {
      scratch[i] = p->data[i];
    }
    for (int i = 0; i < p->len; i++) {
      sum = sum + (unsigned)(scratch[i] & 0xFF);
    }
    free((void *)scratch);
  } else {
    for (int i = 0; i < p->len; i++) {
      sum = sum + (unsigned)(p->data[i] & 0xFF);
    }
  }
  g_digest = g_digest * 31u + sum;
  g_count++;
  out_push(p);
}
unsigned counter_value(void) { return g_count; }
)";

  // The allocator-family sources ride along so any Clack top unit can link an
  // Alloc provider.
  for (const auto& [name, text] : AllocSources()) {
    sources[name] = text;
  }

  return sources;
}

std::string BuildKnit() {
  return R"KNIT(
bundletype PktSink = { pkt_push }
bundletype PortCfg = { cfg_port }
bundletype DevTx = { dev_tx }
bundletype Stats = { counter_value }

flags ClackFlags = { "-O2" }

// Packet-type discipline (paper 5.2: "ensuring, for example, that components only
// receive packets of an appropriate type (Ethernet, IP, TCP, ARP, etc.)").
// An element's export states what it accepts; an element's import states what it
// pushes downstream (Kind <= pkttype(out): the consumer must be at least that
// general). Pass-through elements equate their ports.
property pkttype
type AnyPacket
type EtherPacket < AnyPacket
type IpPacket < AnyPacket

unit PortCfg0 = {
  imports [];
  exports [ cfg : PortCfg ];
  files { "portcfg0.c" } with flags ClackFlags;
}

unit PortCfg1 = {
  imports [];
  exports [ cfg : PortCfg ];
  files { "portcfg1.c" } with flags ClackFlags;
}

unit FromDevice = {
  imports [ out : PktSink, cfg : PortCfg ];
  exports [ push : PktSink ];
  depends { push needs (out + cfg); };
  files { "fromdevice.c" } with flags ClackFlags;
  rename { out.pkt_push to out_push; };
  constraints {
    pkttype(push) = EtherPacket;
    EtherPacket <= pkttype(out);
  };
}

unit Counter = {
  imports [ out : PktSink ];
  exports [ push : PktSink, stats : Stats ];
  depends { push needs out; stats needs (); };
  files { "counter.c" } with flags ClackFlags;
  rename { out.pkt_push to out_push; };
  constraints { pkttype(push) = pkttype(out); };
}

unit Classifier = {
  imports [ ip : PktSink, arp : PktSink, other : PktSink ];
  exports [ push : PktSink ];
  depends { push needs (ip + arp + other); };
  files { "classifier.c" } with flags ClackFlags;
  rename {
    ip.pkt_push to out_ip;
    arp.pkt_push to out_arp;
    other.pkt_push to out_other;
  };
  constraints {
    pkttype(push) = EtherPacket;
    EtherPacket <= pkttype(ip);
    EtherPacket <= pkttype(arp);
    EtherPacket <= pkttype(other);
  };
}

unit Discard = {
  imports [];
  exports [ push : PktSink, stats : Stats ];
  files { "discard.c" } with flags ClackFlags;
  constraints { pkttype(push) = AnyPacket; };
}

unit Strip = {
  imports [ out : PktSink ];
  exports [ push : PktSink ];
  depends { push needs out; };
  files { "strip.c" } with flags ClackFlags;
  rename { out.pkt_push to out_push; };
  constraints {
    pkttype(push) = EtherPacket;
    IpPacket <= pkttype(out);
  };
}

unit CheckIPHeader = {
  imports [ good : PktSink, bad : PktSink ];
  exports [ push : PktSink ];
  depends { push needs (good + bad); };
  files { "checkip.c" } with flags ClackFlags;
  rename {
    good.pkt_push to out_good;
    bad.pkt_push to out_bad;
  };
  constraints {
    pkttype(push) = IpPacket;
    IpPacket <= pkttype(good);
    IpPacket <= pkttype(bad);
  };
}

unit RouteLookup = {
  imports [ good : PktSink, miss : PktSink ];
  exports [ push : PktSink ];
  depends { push needs (good + miss); };
  files { "routelookup.c" } with flags ClackFlags;
  rename {
    good.pkt_push to out_good;
    miss.pkt_push to out_miss;
  };
  constraints {
    pkttype(push) = IpPacket;
    IpPacket <= pkttype(good);
    IpPacket <= pkttype(miss);
  };
}

unit DecIPTTL = {
  imports [ good : PktSink, expired : PktSink ];
  exports [ push : PktSink ];
  depends { push needs (good + expired); };
  files { "decttl.c" } with flags ClackFlags;
  rename {
    good.pkt_push to out_good;
    expired.pkt_push to out_expired;
  };
  constraints {
    pkttype(push) = IpPacket;
    IpPacket <= pkttype(good);
    IpPacket <= pkttype(expired);
  };
}

unit FixIPChecksum = {
  imports [ out : PktSink ];
  exports [ push : PktSink ];
  depends { push needs out; };
  files { "fixcksum.c" } with flags ClackFlags;
  rename { out.pkt_push to out_push; };
  constraints {
    pkttype(push) = IpPacket;
    IpPacket <= pkttype(out);
  };
}

unit EtherEncap = {
  imports [ out : PktSink ];
  exports [ push : PktSink ];
  depends { push needs out; };
  files { "etherencap.c" } with flags ClackFlags;
  rename { out.pkt_push to out_push; };
  constraints {
    pkttype(push) = IpPacket;
    EtherPacket <= pkttype(out);
  };
}

unit PortSwitch = {
  imports [ out0 : PktSink, out1 : PktSink ];
  exports [ push : PktSink ];
  depends { push needs (out0 + out1); };
  files { "portswitch.c" } with flags ClackFlags;
  rename {
    out0.pkt_push to out0_push;
    out1.pkt_push to out1_push;
  };
  constraints {
    pkttype(push) = pkttype(out0);
    pkttype(push) = pkttype(out1);
  };
}

unit Queue = {
  imports [ out : PktSink ];
  exports [ push : PktSink ];
  depends { push needs out; };
  files { "queue.c" } with flags ClackFlags;
  rename { out.pkt_push to out_push; };
  constraints { pkttype(push) = pkttype(out); };
}

unit ToDevice = {
  imports [ dev : DevTx ];
  exports [ push : PktSink ];
  depends { push needs dev; };
  files { "todevice.c" } with flags ClackFlags;
  constraints { pkttype(push) = EtherPacket; };
}

unit ARPResponder = {
  imports [ out : PktSink ];
  exports [ push : PktSink ];
  depends { push needs out; };
  files { "arpresponder.c" } with flags ClackFlags;
  rename { out.pkt_push to out_push; };
  constraints {
    pkttype(push) = EtherPacket;
    EtherPacket <= pkttype(out);
  };
}

unit ClackRouter = {
  imports [ dev : DevTx ];
  exports [ in0 : PktSink, in1 : PktSink,
            statsIn0 : Stats, statsIn1 : Stats, statsIp : Stats,
            statsOut : Stats, statsDrop : Stats ];
  link {
    [cfg0] <- PortCfg0 <- [];
    [cfg1] <- PortCfg1 <- [];
    [drop, statsDrop] <- Discard <- [];
    [tod0] <- ToDevice as todevice0 <- [dev];
    [tod1] <- ToDevice as todevice1 <- [dev];
    [q0] <- Queue as queue0 <- [tod0];
    [q1] <- Queue as queue1 <- [tod1];
    [psw] <- PortSwitch <- [q0, q1];
    [cout, statsOut] <- Counter as counterOut <- [psw];
    [enc] <- EtherEncap <- [cout];
    [fix] <- FixIPChecksum <- [enc];
    [ttl] <- DecIPTTL <- [fix, drop];
    [rt] <- RouteLookup <- [ttl, drop];
    [chk] <- CheckIPHeader <- [rt, drop];
    [strip] <- Strip <- [chk];
    [cip, statsIp] <- Counter as counterIp <- [strip];
    [arp0] <- ARPResponder as arp0u <- [q0];
    [arp1] <- ARPResponder as arp1u <- [q1];
    [cls0] <- Classifier as cls0u <- [cip, arp0, drop];
    [cls1] <- Classifier as cls1u <- [cip, arp1, drop];
    [cin0, statsIn0] <- Counter as counterIn0 <- [cls0];
    [cin1, statsIn1] <- Counter as counterIn1 <- [cls1];
    [in0] <- FromDevice as from0 <- [cin0, cfg0];
    [in1] <- FromDevice as from1 <- [cin1, cfg1];
  };
}

unit ClackRouterFlat = {
  imports [ dev : DevTx ];
  exports [ in0 : PktSink, in1 : PktSink,
            statsIn0 : Stats, statsIn1 : Stats, statsIp : Stats,
            statsOut : Stats, statsDrop : Stats ];
  flatten;
  link {
    [cfg0] <- PortCfg0 <- [];
    [cfg1] <- PortCfg1 <- [];
    [drop, statsDrop] <- Discard <- [];
    [tod0] <- ToDevice as todevice0 <- [dev];
    [tod1] <- ToDevice as todevice1 <- [dev];
    [q0] <- Queue as queue0 <- [tod0];
    [q1] <- Queue as queue1 <- [tod1];
    [psw] <- PortSwitch <- [q0, q1];
    [cout, statsOut] <- Counter as counterOut <- [psw];
    [enc] <- EtherEncap <- [cout];
    [fix] <- FixIPChecksum <- [enc];
    [ttl] <- DecIPTTL <- [fix, drop];
    [rt] <- RouteLookup <- [ttl, drop];
    [chk] <- CheckIPHeader <- [rt, drop];
    [strip] <- Strip <- [chk];
    [cip, statsIp] <- Counter as counterIp <- [strip];
    [arp0] <- ARPResponder as arp0u <- [q0];
    [arp1] <- ARPResponder as arp1u <- [q1];
    [cls0] <- Classifier as cls0u <- [cip, arp0, drop];
    [cls1] <- Classifier as cls1u <- [cip, arp1, drop];
    [cin0, statsIn0] <- Counter as counterIn0 <- [cls0];
    [cin1, statsIn1] <- Counter as counterIn1 <- [cls1];
    [in0] <- FromDevice as from0 <- [cin0, cfg0];
    [in1] <- FromDevice as from1 <- [cin1, cfg1];
  };
}

// A misconfiguration the paper's constraint system exists to catch: the classifier's
// IP output wired directly into CheckIPHeader (the Strip element forgotten), so the
// IP-header checker would read Ethernet bytes. pkttype checking rejects this.
unit MiswiredClackRouter = {
  imports [ dev : DevTx ];
  exports [ in0 : PktSink, statsDrop : Stats ];
  link {
    [cfg0] <- PortCfg0 <- [];
    [drop, statsDrop] <- Discard <- [];
    [tod0] <- ToDevice as todevice0 <- [dev];
    [q0] <- Queue as queue0 <- [tod0];
    [enc] <- EtherEncap <- [q0];
    [fix] <- FixIPChecksum <- [enc];
    [ttl] <- DecIPTTL <- [fix, drop];
    [rt] <- RouteLookup <- [ttl, drop];
    [chk] <- CheckIPHeader <- [rt, drop];
    [arp0] <- ARPResponder as arp0u <- [q0];
    [cls0] <- Classifier as cls0u <- [chk, arp0, drop];
    [in0] <- FromDevice as from0 <- [cls0, cfg0];
  };
}

unit HandIn = {
  imports [ ipout : PktSink, rawout : PktSink ];
  exports [ in0 : PktSink, in1 : PktSink,
            statsIn0 : Stats, statsIn1 : Stats, statsIp : Stats, statsDrop : Stats ];
  depends {
    (in0 + in1) needs (ipout + rawout);
    (statsIn0 + statsIn1 + statsIp + statsDrop) needs ();
  };
  files { "handopt_in.c" } with flags ClackFlags;
  rename {
    ipout.pkt_push to tx_ip;
    rawout.pkt_push to tx_raw;
    in0.pkt_push to hand_in0;
    in1.pkt_push to hand_in1;
    statsIn0.counter_value to stats_in0;
    statsIn1.counter_value to stats_in1;
    statsIp.counter_value to stats_ip;
    statsDrop.counter_value to stats_drop;
  };
}

unit HandOut = {
  imports [ dev : DevTx ];
  exports [ ipout : PktSink, rawout : PktSink, statsOut : Stats ];
  depends { (ipout + rawout) needs dev; statsOut needs (); };
  files { "handopt_out.c" } with flags ClackFlags;
  rename {
    ipout.pkt_push to hand_tx_ip;
    rawout.pkt_push to hand_tx_raw;
  };
}

unit HandRouter = {
  imports [ dev : DevTx ];
  exports [ in0 : PktSink, in1 : PktSink,
            statsIn0 : Stats, statsIn1 : Stats, statsIp : Stats,
            statsOut : Stats, statsDrop : Stats ];
  link {
    [ipout, rawout, statsOut] <- HandOut <- [dev];
    [in0, in1, statsIn0, statsIn1, statsIp, statsDrop] <- HandIn <- [ipout, rawout];
  };
}

unit HandRouterFlat = {
  imports [ dev : DevTx ];
  exports [ in0 : PktSink, in1 : PktSink,
            statsIn0 : Stats, statsIn1 : Stats, statsIp : Stats,
            statsOut : Stats, statsDrop : Stats ];
  flatten;
  link {
    [ipout, rawout, statsOut] <- HandOut <- [dev];
    [in0, in1, statsIn0, statsIn1, statsIp, statsDrop] <- HandIn <- [ipout, rawout];
  };
}
)KNIT" + AllocKnit() +
         R"KNIT(
// Scratch-copying element over the Alloc import (payload_scratch.c): forwards
// packets unchanged, so the configuration's tx hash is allocator-invariant.
unit PayloadScratch = {
  imports [ out : PktSink, heap : Alloc ];
  exports [ push : PktSink, stats : Stats ];
  depends { push needs (out + heap); stats needs (); };
  files { "payload_scratch.c" } with flags ClackFlags;
  rename { out.pkt_push to out_push; };
  constraints { pkttype(push) = pkttype(out); };
}

// ClackRouter with a heap on the IP path: PayloadScratch sits between counterIp
// and Strip, and the allocator instance is exported (port `alloc`) so hosts can
// call alloc_reset between batches and --alloc / RewriteAllocProvider can swap
// the provider as a one-line change.
unit ClackAllocRouter = {
  imports [ dev : DevTx ];
  exports [ in0 : PktSink, in1 : PktSink,
            statsIn0 : Stats, statsIn1 : Stats, statsIp : Stats,
            statsOut : Stats, statsDrop : Stats, statsScratch : Stats,
            alloc : Alloc ];
  link {
    [alloc] <- AllocFreelist <- [];
    [cfg0] <- PortCfg0 <- [];
    [cfg1] <- PortCfg1 <- [];
    [drop, statsDrop] <- Discard <- [];
    [tod0] <- ToDevice as todevice0 <- [dev];
    [tod1] <- ToDevice as todevice1 <- [dev];
    [q0] <- Queue as queue0 <- [tod0];
    [q1] <- Queue as queue1 <- [tod1];
    [psw] <- PortSwitch <- [q0, q1];
    [cout, statsOut] <- Counter as counterOut <- [psw];
    [enc] <- EtherEncap <- [cout];
    [fix] <- FixIPChecksum <- [enc];
    [ttl] <- DecIPTTL <- [fix, drop];
    [rt] <- RouteLookup <- [ttl, drop];
    [chk] <- CheckIPHeader <- [rt, drop];
    [scr, statsScratch] <- PayloadScratch <- [chk, alloc];
    [strip] <- Strip <- [scr];
    [cip, statsIp] <- Counter as counterIp <- [strip];
    [arp0] <- ARPResponder as arp0u <- [q0];
    [arp1] <- ARPResponder as arp1u <- [q1];
    [cls0] <- Classifier as cls0u <- [cip, arp0, drop];
    [cls1] <- Classifier as cls1u <- [cip, arp1, drop];
    [cin0, statsIn0] <- Counter as counterIn0 <- [cls0];
    [cin1, statsIn1] <- Counter as counterIn1 <- [cls1];
    [in0] <- FromDevice as from0 <- [cin0, cfg0];
    [in1] <- FromDevice as from1 <- [cin1, cfg1];
  };
}
)KNIT";
}

}  // namespace

const SourceMap& ClackSources() {
  static const SourceMap kSources = BuildSources();
  return kSources;
}

const std::string& ClackKnit() {
  static const std::string kKnit = BuildKnit();
  return kKnit;
}

}  // namespace knit
