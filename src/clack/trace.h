// Deterministic packet-trace generation for the router benchmarks. The paper's
// testbed sent traffic through a "machine in the middle" router over two 10/100
// NICs; we synthesize the equivalent two-port trace: mostly forwardable IPv4
// traffic (smallest-size-dominated, as in router benchmarks of the era), plus ARP
// requests, foreign ethertypes, corrupted checksums, and TTL-expired packets.
#ifndef SRC_CLACK_TRACE_H_
#define SRC_CLACK_TRACE_H_

#include <cstdint>
#include <vector>

namespace knit {

enum class PacketKind {
  kForward,      // valid IPv4, route hit, TTL ok -> forwarded
  kArpRequest,   // ARP request -> replied out the same port
  kOther,        // unknown ethertype -> discarded
  kBadChecksum,  // corrupted IPv4 header -> discarded
  kTtlExpired,   // TTL 1 -> discarded
};

struct TracePacket {
  std::vector<uint8_t> frame;  // full Ethernet frame
  int in_port = 0;             // 0 or 1
  PacketKind kind = PacketKind::kForward;
};

struct TraceOptions {
  int count = 1000;
  uint32_t seed = 0x12345u;
  // Percentages (of 100) for the non-forwarding kinds; the rest forward.
  int arp_percent = 3;
  int other_percent = 2;
  int bad_checksum_percent = 2;
  int ttl_expired_percent = 2;
  int min_payload = 6;    // 64-byte frames dominate
  int max_payload = 512;
  int small_packet_percent = 70;  // fraction pinned to minimum size
};

std::vector<TracePacket> GenerateTrace(const TraceOptions& options);

// Expected router behaviour for a trace (used to validate every configuration).
struct TraceExpectation {
  uint32_t in0 = 0;
  uint32_t in1 = 0;
  uint32_t ip = 0;
  uint32_t out = 0;
  uint32_t drop = 0;
  uint32_t tx = 0;  // dev_tx calls: forwarded + ARP replies
};

TraceExpectation ExpectationOf(const std::vector<TracePacket>& trace);

}  // namespace knit

#endif  // SRC_CLACK_TRACE_H_
