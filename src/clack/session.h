// RouterSession: the one packet path of the measurement and serving stack.
//
// A session is opened on a Machine that runs a router image (the Clack
// configurations, the Click emulation, or any image exposing the same entry
// contract), and then follows a strict lifecycle:
//
//   open -> feed batches -> snapshot stats -> close
//
// Every packet that flows through the repo goes through RouterSession::Feed:
// RouterProgram::RunTrace/RunTraceRange are thin wrappers over an internal
// session, and the fleet of src/serve/ opens one session per shard machine —
// so single-shard measurement and N-shard serving are literally the same code.
//
// Transmission hashing. dev_tx transmissions are accounted as a *per-packet*
// FNV digest (reset to the FNV offset basis when a packet enters the graph,
// mixed with (port, len, bytes) of every transmission it causes), and packets
// that transmitted anything fold their digest into RouterStats::tx_hash in
// feed order. Because the digest of a packet depends only on that packet's own
// transmissions, the fold is shard-count invariant: N shards can process
// disjoint packets concurrently and fold the recorded digests in trace order
// afterwards, reproducing the single-machine hash byte for byte (the serving
// layer's equivalence guarantee; see DESIGN.md §12).
#ifndef SRC_CLACK_SESSION_H_
#define SRC_CLACK_SESSION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/clack/trace.h"
#include "src/support/diagnostics.h"
#include "src/support/result.h"
#include "src/vm/machine.h"

namespace knit {

// Everything a session (or a whole fleet — the aggregate has the same shape)
// measured about its packet stream.
struct RouterStats {
  int packets = 0;
  long long cycles = 0;         // sum over per-packet deltas
  long long ifetch_stalls = 0;  // sum over per-packet deltas
  int text_bytes = 0;

  // Counters read back from the router's Stats exports.
  uint32_t in0 = 0;
  uint32_t in1 = 0;
  uint32_t ip = 0;
  uint32_t out = 0;
  uint32_t drop = 0;

  // Transmission log for equivalence checking across configurations: `tx_hash`
  // is the trace-order fold of the per-packet transmission digests (see the
  // file comment), so it is identical for any execution that transmits the
  // same bytes for the same packets in the same stream order — regardless of
  // how many shards processed the stream.
  uint32_t tx_count = 0;
  uint64_t tx_hash = 0;

  // Per-component attribution of the measured packet window (empty unless the
  // machine's profiler was enabled before feeding). Its totals equal the
  // `cycles`/`ifetch_stalls` sums above exactly: the profile is snapshotted
  // before the stats counters are read back, so only packet processing is
  // attributed.
  ComponentProfile profile;

  double CyclesPerPacket() const { return packets == 0 ? 0 : double(cycles) / packets; }
  double StallsPerPacket() const {
    return packets == 0 ? 0 : double(ifetch_stalls) / packets;
  }
};

// One packet's transmission digest, recorded (when enabled) for cross-shard
// hash aggregation. `seq` is the packet's index in the original stream.
struct TxRecord {
  uint64_t seq = 0;
  uint64_t digest = 0;
};

// Folds one packet digest into a running tx hash. Exposed so the serving
// layer's trace-order aggregation and the session's inline fold are the same
// arithmetic by construction.
uint64_t FoldTxDigest(uint64_t hash, uint64_t digest);

class RouterSession {
 public:
  // Opens a session driving `machine`. `entry_names` maps the logical names
  // (in0, in1, statsIn0, statsIn1, statsIp, statsOut, statsDrop) to image
  // symbols; in0/in1 must resolve. Binds the transmission-accounting native
  // under `dev_native` and allocates the packet buffers. Does NOT run
  // knit__init — the owner decides when the image initializes.
  static Result<std::unique_ptr<RouterSession>> Open(
      Machine& machine, std::map<std::string, std::string> entry_names,
      const std::string& dev_native, Diagnostics& diags);

  // Feeds one packet through its input port. `seq` is the packet's position in
  // the overall stream (drives TxRecord::seq and the packet hook's index).
  Result<void> Feed(const TracePacket& packet, uint64_t seq, Diagnostics& diags);

  // Batched dispatch: feeds `count` packets in one entry into the session,
  // resolving the in0/in1 entry symbols once for the whole batch instead of
  // per packet. With a packet hook installed the session falls back to
  // per-packet re-resolution, because the hook may hot-swap the element that
  // owns an entry symbol between two packets of the batch (see the reconfig
  // scenario test).
  Result<void> FeedBatch(const TracePacket* const* packets, const uint64_t* seqs,
                         size_t count, Diagnostics& diags);

  // Convenience over a contiguous trace range; seq = trace index.
  Result<void> FeedRange(const std::vector<TracePacket>& trace, size_t begin,
                         size_t end, Diagnostics& diags);

  // Reads the router's counter exports and (if the machine profiles) the
  // component attribution back into the stats, and returns the snapshot.
  // Feeding may continue afterwards.
  Result<RouterStats> Snapshot(Diagnostics& diags);

  // Final snapshot; the session refuses further packets afterwards.
  Result<RouterStats> Close(Diagnostics& diags);
  bool closed() const { return closed_; }

  // Accumulated stats (counters are only current after a Snapshot).
  const RouterStats& stats() const { return *stats_; }
  void ResetStats();

  // Host callback fired after packet `seq` completes, at a quiescent point (no
  // router frame live) — the reconfig tests Pump() an engine here. Installing
  // a hook switches FeedBatch to per-packet entry re-resolution.
  void SetPacketHook(std::function<void(int)> hook) { packet_hook_ = std::move(hook); }

  // Per-packet observer: (seq, modeled cycles the packet spent in the graph).
  // The serving layer builds its latency histograms from this.
  void SetPacketObserver(std::function<void(uint64_t, long long)> observer) {
    packet_observer_ = std::move(observer);
  }

  // When enabled, every packet that transmitted anything appends a TxRecord —
  // the raw material for trace-order hash aggregation across shards.
  void set_collect_tx_records(bool on) { collect_tx_records_ = on; }
  const std::vector<TxRecord>& tx_records() const { return tx_records_; }

  Machine& machine() { return *machine_; }

 private:
  // Per-packet transmission accounting shared with the dev native (heap-held
  // so the capture survives session moves).
  struct TxAccum {
    uint32_t count = 0;
    uint64_t packet_digest = 0;
  };

  RouterSession() = default;

  std::vector<int> ResolveEntries() const;  // {in0 id, in1 id}

  Machine* machine_ = nullptr;
  std::map<std::string, std::string> entry_names_;
  uint32_t pkt_struct_addr_ = 0;
  uint32_t frame_addr_ = 0;
  bool closed_ = false;
  bool collect_tx_records_ = false;

  std::function<void(int)> packet_hook_;
  std::function<void(uint64_t, long long)> packet_observer_;
  std::vector<TxRecord> tx_records_;

  std::shared_ptr<TxAccum> accum_ = std::make_shared<TxAccum>();
  std::shared_ptr<RouterStats> stats_ = std::make_shared<RouterStats>();
};

}  // namespace knit

#endif  // SRC_CLACK_SESSION_H_
