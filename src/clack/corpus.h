// Clack: the paper's re-implementation of (a subset of) MIT's Click modular
// router as Knit components (paper §5.2, §6; Table 1). A two-port IPv4 router
// without fragmentation or IP options, built from 24 small unit instances:
//
//   port i (host) -> FromDevice_i -> CounterIn_i -> Classifier_i
//        Classifier: IP  -> CounterIP -> Strip -> CheckIPHeader -> RouteLookup
//                         -> DecIPTTL -> FixIPChecksum -> EtherEncap -> CounterOut
//                         -> PortSwitch -> Queue_j -> ToDevice_j -> env dev_tx
//                    ARP -> ARPResponder_i -> Queue_i (reply out the same port)
//                    other/bad/expired/miss -> Discard (counting)
//
// Per the paper, "Click supports component initialization through user-provided
// strings; Clack emulates this feature with trivial components that provide
// initialization data" — the PortCfg0/PortCfg1 units.
//
// The hand-optimized comparison ("we rewrote our router components in a less
// modular way: combining 24 separate components into just 2 components, converting
// the result to idiomatic C, and eliminating redundant data fetches") is the
// HandIn/HandOut pair; it preserves observable behaviour exactly (same dev_tx
// sequence, same counter values).
#ifndef SRC_CLACK_CORPUS_H_
#define SRC_CLACK_CORPUS_H_

#include <string>

#include "src/minic/clexer.h"

namespace knit {

const SourceMap& ClackSources();
const std::string& ClackKnit();

// Top-level router units defined by ClackKnit():
//   "ClackRouter"      — 24 modular instances, one object per instance
//   "ClackRouterFlat"  — same, flattened into one translation unit
//   "HandRouter"       — the 2-component hand-optimized rewrite
//   "HandRouterFlat"   — hand-optimized + flattened
// All export: in0, in1 (PktSink), statsIn0, statsIn1, statsIp, statsOut, statsDrop
// (Stats) and import dev : DevTx from the environment.

}  // namespace knit

#endif  // SRC_CLACK_CORPUS_H_
