// RouterProgram: loads a router image (a Knit-built Clack configuration, or any
// image exposing the same entry points, e.g. the object-style Click emulation),
// binds the device environment, and measures a packet trace exactly the way the
// paper does: "measured in number of cycles from the moment a packet enters the
// router graph to the moment it leaves".
//
// The packet path itself lives in RouterSession (src/clack/session.h): a
// program owns one machine and one session over it, and the legacy
// RunTrace/RunTraceRange/ResetStats/SetPacketHook cluster forwards there. Hosts
// that want the session lifecycle explicitly (open -> feed batches -> snapshot
// -> close), or that shard one image across many machines, use RouterSession /
// src/serve directly.
#ifndef SRC_CLACK_HARNESS_H_
#define SRC_CLACK_HARNESS_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/clack/session.h"
#include "src/clack/trace.h"
#include "src/driver/knitc.h"
#include "src/support/diagnostics.h"
#include "src/support/result.h"
#include "src/vm/machine.h"

namespace knit {

class RouterProgram {
 public:
  // THE factory: builds a Clack router (a top unit from ClackKnit()) on a
  // caller-owned staged pipeline. The caller's KnitcOptions (jobs, cache, opt
  // level) apply, the artifact cache persists across calls (building four
  // router variants shares every unchanged unit object), and the caller can
  // read pipeline.metrics() afterwards. `cost` lets experiments scale the
  // simulated machine (e.g. the L1I size, to preserve the paper's text:cache
  // ratio).
  static Result<RouterProgram> FromClack(KnitPipeline& pipeline, const std::string& top_unit,
                                         Diagnostics& diags,
                                         const CostModel& cost = CostModel());

  // Legacy convenience: constructs a throwaway pipeline over `options` and
  // forwards to the pipeline-taking factory above.
  static Result<RouterProgram> FromClack(const std::string& top_unit,
                                         const KnitcOptions& options, Diagnostics& diags,
                                         const CostModel& cost = CostModel());

  // Like FromClack, but over caller-provided knit text and sources — the entry
  // point for configurations derived from the corpus, e.g. RewriteAllocProvider
  // output (`knitc run --alloc=NAME`) or bench-generated variants.
  static Result<RouterProgram> FromKnit(KnitPipeline& pipeline, const std::string& knit_text,
                                        const SourceMap& sources, const std::string& top_unit,
                                        Diagnostics& diags, const CostModel& cost = CostModel());

  // Wraps an already-linked image. `entry_names` maps the harness's logical names
  // (in0, in1, statsIn0, statsIn1, statsIp, statsOut, statsDrop) to image symbols;
  // the image must import the native named by `dev_native`.
  static Result<RouterProgram> FromImage(std::unique_ptr<Image> image,
                                         std::map<std::string, std::string> entry_names,
                                         const std::string& dev_native, Diagnostics& diags,
                                         const CostModel& cost = CostModel());

  // The harness's logical-entry map for a Knit-built Clack router — shared
  // with the serving layer, which opens sessions on shard machines over the
  // same build.
  static std::map<std::string, std::string> ClackEntryNames(const KnitBuildResult& build);

  // Runs the trace; each packet is written into VM memory and pushed through the
  // matching input port, with cycle/stall deltas accumulated per packet.
  // Equivalent to ResetStats() followed by RunTraceRange over the whole trace.
  Result<RouterStats> RunTrace(const std::vector<TracePacket>& trace, Diagnostics& diags);

  // Runs packets [begin, end) of the trace WITHOUT resetting the accumulated
  // stats, and re-resolves the input entry points per packet — so traffic keeps
  // flowing (and keeps being counted) across a live reconfiguration that
  // repoints those symbols mid-run. The packet hook (if set) fires after each
  // packet completes, at a quiescent point: no router frame is live.
  Result<RouterStats> RunTraceRange(const std::vector<TracePacket>& trace, size_t begin,
                                    size_t end, Diagnostics& diags);

  // Zeroes the accumulated RouterStats (packets, cycles, counters, tx log).
  void ResetStats() { session_->ResetStats(); }

  // Host callback invoked after packet index N of a RunTrace/RunTraceRange loop.
  // The reconfig tests use it to Pump() a ReconfigEngine between packets.
  void SetPacketHook(std::function<void(int)> hook) {
    session_->SetPacketHook(std::move(hook));
  }

  // Turns on the machine's component profiler; subsequent RunTrace calls fill
  // RouterStats::profile with the measured window's attribution.
  void EnableProfiling(size_t max_events = 1 << 20);

  // The session-style run API over this program's machine (open already
  // happened; the program closes it on destruction).
  RouterSession& session() { return *session_; }

  Machine& machine() { return *machine_; }
  const KnitBuildResult* build() const { return build_.get(); }
  // Mutable access for the reconfig engine, which rewrites the build's image
  // (binding slots, appended functions) while the machine runs it.
  KnitBuildResult* mutable_build() { return build_.get(); }

 private:
  RouterProgram() = default;

  std::unique_ptr<KnitBuildResult> build_;  // null for FromImage
  std::unique_ptr<Image> image_;            // null for FromClack (owned by build_)
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<RouterSession> session_;
};

}  // namespace knit

#endif  // SRC_CLACK_HARNESS_H_
