// RouterProgram: loads a router image (a Knit-built Clack configuration, or any
// image exposing the same entry points, e.g. the object-style Click emulation),
// binds the device environment, and measures a packet trace exactly the way the
// paper does: "measured in number of cycles from the moment a packet enters the
// router graph to the moment it leaves".
#ifndef SRC_CLACK_HARNESS_H_
#define SRC_CLACK_HARNESS_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/clack/trace.h"
#include "src/driver/knitc.h"
#include "src/support/diagnostics.h"
#include "src/support/result.h"
#include "src/vm/machine.h"

namespace knit {

struct RouterStats {
  int packets = 0;
  long long cycles = 0;         // sum over per-packet deltas
  long long ifetch_stalls = 0;  // sum over per-packet deltas
  int text_bytes = 0;

  // Counters read back from the router's Stats exports.
  uint32_t in0 = 0;
  uint32_t in1 = 0;
  uint32_t ip = 0;
  uint32_t out = 0;
  uint32_t drop = 0;

  // Transmission log for equivalence checking across configurations.
  uint32_t tx_count = 0;
  uint64_t tx_hash = 0;  // FNV over (port, len, bytes) of every dev_tx

  // Per-component attribution of the measured packet window (empty unless
  // RouterProgram::EnableProfiling was called before RunTrace). Its totals equal
  // the `cycles`/`ifetch_stalls` sums above exactly: the profile is reset when
  // the packet loop starts and snapshotted before the stats counters are read
  // back, so only packet processing is attributed.
  ComponentProfile profile;

  double CyclesPerPacket() const { return packets == 0 ? 0 : double(cycles) / packets; }
  double StallsPerPacket() const {
    return packets == 0 ? 0 : double(ifetch_stalls) / packets;
  }
};

class RouterProgram {
 public:
  // Builds a Clack router (top unit from ClackKnit()) through the knitc pipeline.
  // `cost` lets experiments scale the simulated machine (e.g. the L1I size, to
  // preserve the paper's text:cache ratio).
  static Result<RouterProgram> FromClack(const std::string& top_unit,
                                         const KnitcOptions& options, Diagnostics& diags,
                                         const CostModel& cost = CostModel());

  // Same, but on a caller-owned staged pipeline: the caller's KnitcOptions (jobs,
  // cache) apply, the artifact cache persists across calls (building four router
  // variants shares every unchanged unit object), and the caller can read
  // pipeline.metrics() afterwards.
  static Result<RouterProgram> FromClack(KnitPipeline& pipeline, const std::string& top_unit,
                                         Diagnostics& diags,
                                         const CostModel& cost = CostModel());

  // Wraps an already-linked image. `entry_names` maps the harness's logical names
  // (in0, in1, statsIn0, statsIn1, statsIp, statsOut, statsDrop) to image symbols;
  // the image must import the native named by `dev_native`.
  static Result<RouterProgram> FromImage(std::unique_ptr<Image> image,
                                         std::map<std::string, std::string> entry_names,
                                         const std::string& dev_native, Diagnostics& diags,
                                         const CostModel& cost = CostModel());

  // Runs the trace; each packet is written into VM memory and pushed through the
  // matching input port, with cycle/stall deltas accumulated per packet.
  // Equivalent to ResetStats() followed by RunTraceRange over the whole trace.
  Result<RouterStats> RunTrace(const std::vector<TracePacket>& trace, Diagnostics& diags);

  // Runs packets [begin, end) of the trace WITHOUT resetting the accumulated
  // stats, and re-resolves the input entry points per packet — so traffic keeps
  // flowing (and keeps being counted) across a live reconfiguration that
  // repoints those symbols mid-run. The packet hook (if set) fires after each
  // packet completes, at a quiescent point: no router frame is live.
  Result<RouterStats> RunTraceRange(const std::vector<TracePacket>& trace, size_t begin,
                                    size_t end, Diagnostics& diags);

  // Zeroes the accumulated RouterStats (packets, cycles, counters, tx log).
  void ResetStats();

  // Host callback invoked after packet index N of a RunTrace/RunTraceRange loop.
  // The reconfig tests use it to Pump() a ReconfigEngine between packets.
  void SetPacketHook(std::function<void(int)> hook) { packet_hook_ = std::move(hook); }

  // Turns on the machine's component profiler; subsequent RunTrace calls fill
  // RouterStats::profile with the measured window's attribution.
  void EnableProfiling(size_t max_events = 1 << 20);

  Machine& machine() { return *machine_; }
  const KnitBuildResult* build() const { return build_.get(); }
  // Mutable access for the reconfig engine, which rewrites the build's image
  // (binding slots, appended functions) while the machine runs it.
  KnitBuildResult* mutable_build() { return build_.get(); }

 private:
  RouterProgram() = default;

  void BindDevice(const std::string& native_name);
  Result<void> Prepare(Diagnostics& diags);

  std::unique_ptr<KnitBuildResult> build_;  // null for FromImage
  std::unique_ptr<Image> image_;            // null for FromClack (owned by build_)
  std::unique_ptr<Machine> machine_;
  std::map<std::string, std::string> entry_names_;

  uint32_t pkt_struct_addr_ = 0;
  uint32_t frame_addr_ = 0;
  std::function<void(int)> packet_hook_;
  // Heap-allocated so the dev_tx native (which captures it) survives moves of the
  // RouterProgram object.
  std::shared_ptr<RouterStats> stats_ = std::make_shared<RouterStats>();
};

}  // namespace knit

#endif  // SRC_CLACK_HARNESS_H_
