#include "src/clack/session.h"

namespace knit {

namespace {
constexpr uint32_t kFrameCapacity = 2048;
constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ull;

uint64_t FnvMix(uint64_t hash, uint8_t byte) {
  return (hash ^ byte) * 0x100000001B3ull;
}
}  // namespace

uint64_t FoldTxDigest(uint64_t hash, uint64_t digest) {
  for (int shift = 0; shift < 64; shift += 8) {
    hash = FnvMix(hash, static_cast<uint8_t>(digest >> shift));
  }
  return hash;
}

Result<std::unique_ptr<RouterSession>> RouterSession::Open(
    Machine& machine, std::map<std::string, std::string> entry_names,
    const std::string& dev_native, Diagnostics& diags) {
  std::unique_ptr<RouterSession> session(new RouterSession());
  session->machine_ = &machine;
  session->entry_names_ = std::move(entry_names);

  for (const char* required : {"in0", "in1"}) {
    auto it = session->entry_names_.find(required);
    if (it == session->entry_names_.end() || it->second.empty() ||
        machine.image().FindFunction(it->second) < 0) {
      diags.Error(SourceLoc::Unknown(),
                  std::string("router image is missing entry point '") + required + "'");
      return Result<std::unique_ptr<RouterSession>>::Failure();
    }
  }
  session->pkt_struct_addr_ = machine.Sbrk(32);
  session->frame_addr_ = machine.Sbrk(kFrameCapacity);

  // The device: every transmission mixes (port, len, bytes) into the current
  // packet's digest. Captures are shared_ptrs so the native outlives session
  // moves (the Machine keeps the closure).
  std::shared_ptr<TxAccum> accum = session->accum_;
  std::shared_ptr<RouterStats> stats = session->stats_;
  machine.BindNative(dev_native, [accum, stats](Machine& m,
                                                const std::vector<uint32_t>& args) {
    if (args.size() < 3) {
      return 0u;
    }
    uint32_t data = args[0];
    uint32_t len = args[1];
    uint32_t port = args[2];
    ++accum->count;
    ++stats->tx_count;
    uint64_t digest = accum->packet_digest;
    digest = FnvMix(digest, static_cast<uint8_t>(port));
    digest = FnvMix(digest, static_cast<uint8_t>(len & 0xFF));
    digest = FnvMix(digest, static_cast<uint8_t>((len >> 8) & 0xFF));
    for (uint32_t i = 0; i < len && i < kFrameCapacity; ++i) {
      digest = FnvMix(digest, m.ReadByte(data + i));
    }
    accum->packet_digest = digest;
    return 0u;
  });
  return session;
}

std::vector<int> RouterSession::ResolveEntries() const {
  return {machine_->image().FindFunction(entry_names_.at("in0")),
          machine_->image().FindFunction(entry_names_.at("in1"))};
}

Result<void> RouterSession::Feed(const TracePacket& packet, uint64_t seq,
                                 Diagnostics& diags) {
  const TracePacket* packets[1] = {&packet};
  uint64_t seqs[1] = {seq};
  return FeedBatch(packets, seqs, 1, diags);
}

Result<void> RouterSession::FeedBatch(const TracePacket* const* packets,
                                      const uint64_t* seqs, size_t count,
                                      Diagnostics& diags) {
  if (closed_) {
    diags.Error(SourceLoc::Unknown(), "RouterSession: fed after Close()");
    return Result<void>::Failure();
  }
  // Batched dispatch: the entry symbols resolve once per batch. A packet hook
  // can hot-swap the element owning an entry between packets, so its presence
  // forces per-packet re-resolution (correctness over amortization).
  std::vector<int> entries = ResolveEntries();

  for (size_t p = 0; p < count; ++p) {
    const TracePacket& packet = *packets[p];
    if (packet.frame.size() > kFrameCapacity) {
      diags.Error(SourceLoc::Unknown(), "trace frame exceeds buffer capacity");
      return Result<void>::Failure();
    }
    for (size_t i = 0; i < packet.frame.size(); ++i) {
      machine_->WriteByte(frame_addr_ + static_cast<uint32_t>(i), packet.frame[i]);
    }
    // struct pkt { char *data; int len; int port; unsigned nexthop; }
    machine_->WriteWord(pkt_struct_addr_ + 0, frame_addr_);
    machine_->WriteWord(pkt_struct_addr_ + 4, static_cast<uint32_t>(packet.frame.size()));
    machine_->WriteWord(pkt_struct_addr_ + 8, 0);
    machine_->WriteWord(pkt_struct_addr_ + 12, 0);

    if (packet_hook_) {
      entries = ResolveEntries();
    }
    accum_->packet_digest = kFnvBasis;
    uint32_t tx_before = accum_->count;
    long long cycles_before = machine_->cycles();
    long long stalls_before = machine_->ifetch_stalls();
    RunResult result =
        machine_->CallId(entries[packet.in_port == 0 ? 0 : 1], {pkt_struct_addr_});
    if (!result.ok) {
      diags.Error(SourceLoc::Unknown(), "router trapped on packet " +
                                            std::to_string(stats_->packets) + ": " +
                                            result.error);
      return Result<void>::Failure();
    }
    long long packet_cycles = machine_->cycles() - cycles_before;
    stats_->cycles += packet_cycles;
    stats_->ifetch_stalls += machine_->ifetch_stalls() - stalls_before;
    ++stats_->packets;
    if (accum_->count != tx_before) {
      stats_->tx_hash = FoldTxDigest(stats_->tx_hash, accum_->packet_digest);
      if (collect_tx_records_) {
        tx_records_.push_back(TxRecord{seqs[p], accum_->packet_digest});
      }
    }
    if (packet_observer_) {
      packet_observer_(seqs[p], packet_cycles);
    }
    if (packet_hook_) {
      packet_hook_(static_cast<int>(seqs[p]));
    }
  }
  return Result<void>::Success();
}

Result<void> RouterSession::FeedRange(const std::vector<TracePacket>& trace, size_t begin,
                                      size_t end, Diagnostics& diags) {
  for (size_t p = begin; p < end && p < trace.size(); ++p) {
    Result<void> fed = Feed(trace[p], p, diags);
    if (!fed.ok()) {
      return fed;
    }
  }
  return Result<void>::Success();
}

Result<RouterStats> RouterSession::Snapshot(Diagnostics& diags) {
  (void)diags;
  stats_->text_bytes = machine_->image().text_bytes;

  // Profile first: the counter read-back below runs on the same machine and
  // must not leak into the attributed window.
  if (machine_->profiling()) {
    stats_->profile = machine_->Profile();
  }
  auto read_counter = [&](const char* name, uint32_t& out) {
    auto it = entry_names_.find(name);
    if (it == entry_names_.end() || it->second.empty()) {
      return;
    }
    RunResult result = machine_->Call(it->second);
    if (result.ok) {
      out = result.value;
    }
  };
  read_counter("statsIn0", stats_->in0);
  read_counter("statsIn1", stats_->in1);
  read_counter("statsIp", stats_->ip);
  read_counter("statsOut", stats_->out);
  read_counter("statsDrop", stats_->drop);
  return *stats_;
}

Result<RouterStats> RouterSession::Close(Diagnostics& diags) {
  Result<RouterStats> snapshot = Snapshot(diags);
  closed_ = true;
  return snapshot;
}

void RouterSession::ResetStats() {
  *stats_ = RouterStats{};
  *accum_ = TxAccum{};
  tx_records_.clear();
}

}  // namespace knit
