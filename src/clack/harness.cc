#include "src/clack/harness.h"

#include "src/clack/corpus.h"
#include "src/support/mangle.h"

namespace knit {

namespace {
constexpr uint32_t kFrameCapacity = 2048;

uint64_t FnvMix(uint64_t hash, uint8_t byte) {
  return (hash ^ byte) * 0x100000001B3ull;
}
}  // namespace

Result<RouterProgram> RouterProgram::FromClack(const std::string& top_unit,
                                               const KnitcOptions& options, Diagnostics& diags,
                                               const CostModel& cost) {
  KnitPipeline pipeline(options);
  return FromClack(pipeline, top_unit, diags, cost);
}

Result<RouterProgram> RouterProgram::FromClack(KnitPipeline& pipeline,
                                               const std::string& top_unit, Diagnostics& diags,
                                               const CostModel& cost) {
  RouterProgram program;
  Result<LinkedImage> built = pipeline.Build(ClackKnit(), ClackSources(), top_unit, diags);
  if (!built.ok()) {
    return Result<RouterProgram>::Failure();
  }
  program.build_ = std::make_unique<KnitBuildResult>(
      KnitBuildResultFrom(built.take(), pipeline.metrics()));
  for (const char* port : {"in0", "in1"}) {
    program.entry_names_[port] = program.build_->ExportedSymbol(port, "pkt_push");
  }
  for (const char* stats : {"statsIn0", "statsIn1", "statsIp", "statsOut", "statsDrop"}) {
    program.entry_names_[stats] = program.build_->ExportedSymbol(stats, "counter_value");
  }
  program.machine_ = std::make_unique<Machine>(program.build_->image, cost);
  program.BindDevice(EnvSymbol("dev", "dev_tx"));
  if (!program.Prepare(diags).ok()) {
    return Result<RouterProgram>::Failure();
  }
  // Run the generated initializers (Clack has none today, but configurations may
  // grow them).
  RunResult init = program.machine_->Call(program.build_->init_function);
  if (!init.ok) {
    diags.Error(SourceLoc::Unknown(), "knit__init failed: " + init.error);
    return Result<RouterProgram>::Failure();
  }
  return program;
}

Result<RouterProgram> RouterProgram::FromImage(std::unique_ptr<Image> image,
                                               std::map<std::string, std::string> entry_names,
                                               const std::string& dev_native,
                                               Diagnostics& diags, const CostModel& cost) {
  RouterProgram program;
  program.image_ = std::move(image);
  program.entry_names_ = std::move(entry_names);
  program.machine_ = std::make_unique<Machine>(*program.image_, cost);
  program.BindDevice(dev_native);
  if (!program.Prepare(diags).ok()) {
    return Result<RouterProgram>::Failure();
  }
  return program;
}

void RouterProgram::BindDevice(const std::string& native_name) {
  std::shared_ptr<RouterStats> stats = stats_;
  machine_->BindNative(native_name, [stats](Machine& m, const std::vector<uint32_t>& args) {
    if (args.size() < 3) {
      return 0u;
    }
    uint32_t data = args[0];
    uint32_t len = args[1];
    uint32_t port = args[2];
    ++stats->tx_count;
    uint64_t hash = stats->tx_hash;
    hash = FnvMix(hash, static_cast<uint8_t>(port));
    hash = FnvMix(hash, static_cast<uint8_t>(len & 0xFF));
    hash = FnvMix(hash, static_cast<uint8_t>((len >> 8) & 0xFF));
    for (uint32_t i = 0; i < len && i < kFrameCapacity; ++i) {
      hash = FnvMix(hash, m.ReadByte(data + i));
    }
    stats->tx_hash = hash;
    return 0u;
  });
}

Result<void> RouterProgram::Prepare(Diagnostics& diags) {
  for (const char* required : {"in0", "in1"}) {
    auto it = entry_names_.find(required);
    if (it == entry_names_.end() || it->second.empty() ||
        machine_->image().FindFunction(it->second) < 0) {
      diags.Error(SourceLoc::Unknown(),
                  std::string("router image is missing entry point '") + required + "'");
      return Result<void>::Failure();
    }
  }
  pkt_struct_addr_ = machine_->Sbrk(32);
  frame_addr_ = machine_->Sbrk(kFrameCapacity);
  return Result<void>::Success();
}

void RouterProgram::EnableProfiling(size_t max_events) {
  machine_->EnableProfiling(max_events);
}

void RouterProgram::ResetStats() { *stats_ = RouterStats{}; }

Result<RouterStats> RouterProgram::RunTrace(const std::vector<TracePacket>& trace,
                                            Diagnostics& diags) {
  ResetStats();

  // Attribute exactly the measured window: init already ran (Prepare), and the
  // stats read-back below happens after the snapshot.
  if (machine_->profiling()) {
    machine_->ResetProfile();
  }
  return RunTraceRange(trace, 0, trace.size(), diags);
}

Result<RouterStats> RouterProgram::RunTraceRange(const std::vector<TracePacket>& trace,
                                                 size_t begin, size_t end,
                                                 Diagnostics& diags) {
  stats_->text_bytes = machine_->image().text_bytes;

  for (size_t p = begin; p < end && p < trace.size(); ++p) {
    const TracePacket& packet = trace[p];
    if (packet.frame.size() > kFrameCapacity) {
      diags.Error(SourceLoc::Unknown(), "trace frame exceeds buffer capacity");
      return Result<RouterStats>::Failure();
    }
    for (size_t i = 0; i < packet.frame.size(); ++i) {
      machine_->WriteByte(frame_addr_ + static_cast<uint32_t>(i), packet.frame[i]);
    }
    // struct pkt { char *data; int len; int port; unsigned nexthop; }
    machine_->WriteWord(pkt_struct_addr_ + 0, frame_addr_);
    machine_->WriteWord(pkt_struct_addr_ + 4, static_cast<uint32_t>(packet.frame.size()));
    machine_->WriteWord(pkt_struct_addr_ + 8, 0);
    machine_->WriteWord(pkt_struct_addr_ + 12, 0);

    // Re-resolved every packet: a hot swap of the source element repoints the
    // unversioned entry symbol to the replacement generation.
    int entry = machine_->image().FindFunction(
        entry_names_[packet.in_port == 0 ? "in0" : "in1"]);
    long long cycles_before = machine_->cycles();
    long long stalls_before = machine_->ifetch_stalls();
    RunResult result = machine_->CallId(entry, {pkt_struct_addr_});
    if (!result.ok) {
      diags.Error(SourceLoc::Unknown(), "router trapped on packet " +
                                            std::to_string(stats_->packets) + ": " +
                                            result.error);
      return Result<RouterStats>::Failure();
    }
    stats_->cycles += machine_->cycles() - cycles_before;
    stats_->ifetch_stalls += machine_->ifetch_stalls() - stalls_before;
    ++stats_->packets;
    if (packet_hook_) {
      packet_hook_(static_cast<int>(p));
    }
  }

  if (machine_->profiling()) {
    stats_->profile = machine_->Profile();
  }

  // Read back the counters.
  auto read_counter = [&](const char* name, uint32_t& out) {
    auto it = entry_names_.find(name);
    if (it == entry_names_.end() || it->second.empty()) {
      return;
    }
    RunResult result = machine_->Call(it->second);
    if (result.ok) {
      out = result.value;
    }
  };
  read_counter("statsIn0", stats_->in0);
  read_counter("statsIn1", stats_->in1);
  read_counter("statsIp", stats_->ip);
  read_counter("statsOut", stats_->out);
  read_counter("statsDrop", stats_->drop);
  return *stats_;
}

}  // namespace knit
