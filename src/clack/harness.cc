#include "src/clack/harness.h"

#include "src/clack/corpus.h"
#include "src/support/mangle.h"

namespace knit {

Result<RouterProgram> RouterProgram::FromClack(const std::string& top_unit,
                                               const KnitcOptions& options, Diagnostics& diags,
                                               const CostModel& cost) {
  KnitPipeline pipeline(options);
  return FromClack(pipeline, top_unit, diags, cost);
}

std::map<std::string, std::string> RouterProgram::ClackEntryNames(
    const KnitBuildResult& build) {
  std::map<std::string, std::string> names;
  for (const char* port : {"in0", "in1"}) {
    names[port] = build.ExportedSymbol(port, "pkt_push");
  }
  for (const char* stats : {"statsIn0", "statsIn1", "statsIp", "statsOut", "statsDrop"}) {
    names[stats] = build.ExportedSymbol(stats, "counter_value");
  }
  // Configurations with a heap (e.g. ClackAllocRouter) export their allocator;
  // the serving layer calls this entry between batches to recycle shard arenas.
  std::string alloc_reset = build.ExportedSymbol("alloc", "alloc_reset");
  if (!alloc_reset.empty()) {
    names["allocReset"] = alloc_reset;
  }
  std::string scratch = build.ExportedSymbol("statsScratch", "counter_value");
  if (!scratch.empty()) {
    names["statsScratch"] = scratch;
  }
  return names;
}

Result<RouterProgram> RouterProgram::FromClack(KnitPipeline& pipeline,
                                               const std::string& top_unit, Diagnostics& diags,
                                               const CostModel& cost) {
  return FromKnit(pipeline, ClackKnit(), ClackSources(), top_unit, diags, cost);
}

Result<RouterProgram> RouterProgram::FromKnit(KnitPipeline& pipeline,
                                              const std::string& knit_text,
                                              const SourceMap& sources,
                                              const std::string& top_unit, Diagnostics& diags,
                                              const CostModel& cost) {
  RouterProgram program;
  Result<LinkedImage> built = pipeline.Build(knit_text, sources, top_unit, diags);
  if (!built.ok()) {
    return Result<RouterProgram>::Failure();
  }
  program.build_ = std::make_unique<KnitBuildResult>(
      KnitBuildResultFrom(built.take(), pipeline.metrics()));
  program.machine_ = std::make_unique<Machine>(program.build_->image, cost);
  Result<std::unique_ptr<RouterSession>> session = RouterSession::Open(
      *program.machine_, ClackEntryNames(*program.build_), EnvSymbol("dev", "dev_tx"), diags);
  if (!session.ok()) {
    return Result<RouterProgram>::Failure();
  }
  program.session_ = session.take();
  // Run the generated initializers (Clack has none today, but configurations may
  // grow them).
  RunResult init = program.machine_->Call(program.build_->init_function);
  if (!init.ok) {
    diags.Error(SourceLoc::Unknown(), "knit__init failed: " + init.error);
    return Result<RouterProgram>::Failure();
  }
  return program;
}

Result<RouterProgram> RouterProgram::FromImage(std::unique_ptr<Image> image,
                                               std::map<std::string, std::string> entry_names,
                                               const std::string& dev_native,
                                               Diagnostics& diags, const CostModel& cost) {
  RouterProgram program;
  program.image_ = std::move(image);
  program.machine_ = std::make_unique<Machine>(*program.image_, cost);
  Result<std::unique_ptr<RouterSession>> session =
      RouterSession::Open(*program.machine_, std::move(entry_names), dev_native, diags);
  if (!session.ok()) {
    return Result<RouterProgram>::Failure();
  }
  program.session_ = session.take();
  return program;
}

void RouterProgram::EnableProfiling(size_t max_events) {
  machine_->EnableProfiling(max_events);
}

Result<RouterStats> RouterProgram::RunTrace(const std::vector<TracePacket>& trace,
                                            Diagnostics& diags) {
  session_->ResetStats();

  // Attribute exactly the measured window: init already ran (FromClack), and
  // the counter read-back happens after the profile snapshot (see Snapshot).
  if (machine_->profiling()) {
    machine_->ResetProfile();
  }
  return RunTraceRange(trace, 0, trace.size(), diags);
}

Result<RouterStats> RouterProgram::RunTraceRange(const std::vector<TracePacket>& trace,
                                                 size_t begin, size_t end,
                                                 Diagnostics& diags) {
  if (!session_->FeedRange(trace, begin, end, diags).ok()) {
    return Result<RouterStats>::Failure();
  }
  return session_->Snapshot(diags);
}

}  // namespace knit
