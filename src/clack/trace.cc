#include "src/clack/trace.h"

#include <cstddef>

namespace knit {
namespace {

// Deterministic xorshift PRNG (the VM forbids nothing here, but determinism makes
// every experiment reproducible bit-for-bit).
class Rng {
 public:
  explicit Rng(uint32_t seed) : state_(seed == 0 ? 0xdeadbeef : seed) {}

  uint32_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 17;
    state_ ^= state_ << 5;
    return state_;
  }

  int Range(int lo, int hi) {  // inclusive
    return lo + static_cast<int>(Next() % static_cast<uint32_t>(hi - lo + 1));
  }

 private:
  uint32_t state_;
};

uint16_t IpChecksum(const uint8_t* header, int length) {
  uint32_t sum = 0;
  for (int i = 0; i + 1 < length; i += 2) {
    sum += (static_cast<uint32_t>(header[i]) << 8) | header[i + 1];
  }
  while ((sum >> 16) != 0) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  return static_cast<uint16_t>(~sum & 0xFFFF);
}

void PutEthernetHeader(std::vector<uint8_t>& frame, uint16_t ethertype, Rng& rng) {
  for (int i = 0; i < 6; ++i) {
    frame.push_back(static_cast<uint8_t>(rng.Next() & 0xFF));  // dst (router MAC-ish)
  }
  for (int i = 0; i < 6; ++i) {
    frame.push_back(static_cast<uint8_t>(rng.Next() & 0xFF));  // src
  }
  frame.push_back(static_cast<uint8_t>(ethertype >> 8));
  frame.push_back(static_cast<uint8_t>(ethertype & 0xFF));
}

uint32_t PickRoutableDst(Rng& rng) {
  switch (rng.Range(0, 3)) {
    case 0:
      return 0x0A010000u | (rng.Next() & 0xFFFF);  // 10.1.x.x
    case 1:
      return 0x0A020000u | (rng.Next() & 0xFFFF);  // 10.2.x.x
    case 2:
      return 0xC0A80000u | (rng.Next() & 0xFFFF);  // 192.168.x.x
    default:
      return rng.Next();  // anywhere: the default route catches it
  }
}

TracePacket MakeIpPacket(Rng& rng, const TraceOptions& options, PacketKind kind) {
  TracePacket packet;
  packet.kind = kind;
  packet.in_port = rng.Range(0, 1);

  int payload = rng.Range(0, 99) < options.small_packet_percent
                    ? options.min_payload
                    : rng.Range(options.min_payload, options.max_payload);
  std::vector<uint8_t>& frame = packet.frame;
  PutEthernetHeader(frame, 0x0800, rng);

  int total = 20 + payload;
  uint8_t header[20] = {0};
  header[0] = 0x45;
  header[1] = 0;
  header[2] = static_cast<uint8_t>(total >> 8);
  header[3] = static_cast<uint8_t>(total & 0xFF);
  header[4] = static_cast<uint8_t>(rng.Next() & 0xFF);  // id
  header[5] = static_cast<uint8_t>(rng.Next() & 0xFF);
  header[8] = kind == PacketKind::kTtlExpired ? 1 : static_cast<uint8_t>(rng.Range(2, 64));
  header[9] = 17;  // UDP
  uint32_t src = rng.Next();
  uint32_t dst = PickRoutableDst(rng);
  for (int i = 0; i < 4; ++i) {
    header[12 + i] = static_cast<uint8_t>((src >> (24 - 8 * i)) & 0xFF);
    header[16 + i] = static_cast<uint8_t>((dst >> (24 - 8 * i)) & 0xFF);
  }
  uint16_t checksum = IpChecksum(header, 20);
  header[10] = static_cast<uint8_t>(checksum >> 8);
  header[11] = static_cast<uint8_t>(checksum & 0xFF);
  if (kind == PacketKind::kBadChecksum) {
    header[10] ^= 0x5A;  // corrupt
  }
  frame.insert(frame.end(), header, header + 20);
  for (int i = 0; i < payload; ++i) {
    frame.push_back(static_cast<uint8_t>(rng.Next() & 0xFF));
  }
  return packet;
}

TracePacket MakeArpRequest(Rng& rng) {
  TracePacket packet;
  packet.kind = PacketKind::kArpRequest;
  packet.in_port = rng.Range(0, 1);
  std::vector<uint8_t>& frame = packet.frame;
  PutEthernetHeader(frame, 0x0806, rng);
  // htype=1, ptype=0x0800, hlen=6, plen=4, op=1 (request)
  const uint8_t fixed[] = {0, 1, 8, 0, 6, 4, 0, 1};
  frame.insert(frame.end(), fixed, fixed + 8);
  for (int i = 0; i < 6; ++i) {
    frame.push_back(static_cast<uint8_t>(rng.Next() & 0xFF));  // sender MAC
  }
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<uint8_t>(rng.Next() & 0xFF));  // sender IP
  }
  for (int i = 0; i < 6; ++i) {
    frame.push_back(0);  // target MAC (unknown)
  }
  for (int i = 0; i < 4; ++i) {
    frame.push_back(static_cast<uint8_t>(rng.Next() & 0xFF));  // target IP
  }
  // Pad to the 60-byte Ethernet minimum.
  while (frame.size() < 60) {
    frame.push_back(0);
  }
  return packet;
}

TracePacket MakeOther(Rng& rng) {
  TracePacket packet;
  packet.kind = PacketKind::kOther;
  packet.in_port = rng.Range(0, 1);
  PutEthernetHeader(packet.frame, 0x86DD, rng);  // IPv6 — not handled by this router
  for (int i = 0; i < 46; ++i) {
    packet.frame.push_back(static_cast<uint8_t>(rng.Next() & 0xFF));
  }
  return packet;
}

}  // namespace

std::vector<TracePacket> GenerateTrace(const TraceOptions& options) {
  Rng rng(options.seed);
  std::vector<TracePacket> trace;
  trace.reserve(static_cast<size_t>(options.count));
  for (int i = 0; i < options.count; ++i) {
    int roll = rng.Range(0, 99);
    if (roll < options.arp_percent) {
      trace.push_back(MakeArpRequest(rng));
    } else if (roll < options.arp_percent + options.other_percent) {
      trace.push_back(MakeOther(rng));
    } else if (roll < options.arp_percent + options.other_percent +
                          options.bad_checksum_percent) {
      trace.push_back(MakeIpPacket(rng, options, PacketKind::kBadChecksum));
    } else if (roll < options.arp_percent + options.other_percent +
                          options.bad_checksum_percent + options.ttl_expired_percent) {
      trace.push_back(MakeIpPacket(rng, options, PacketKind::kTtlExpired));
    } else {
      trace.push_back(MakeIpPacket(rng, options, PacketKind::kForward));
    }
  }
  return trace;
}

TraceExpectation ExpectationOf(const std::vector<TracePacket>& trace) {
  TraceExpectation expect;
  for (const TracePacket& packet : trace) {
    if (packet.in_port == 0) {
      ++expect.in0;
    } else {
      ++expect.in1;
    }
    switch (packet.kind) {
      case PacketKind::kForward:
        ++expect.ip;
        ++expect.out;
        ++expect.tx;
        break;
      case PacketKind::kArpRequest:
        ++expect.tx;  // replied, not counted as IP/out/drop
        break;
      case PacketKind::kOther:
        ++expect.drop;
        break;
      case PacketKind::kBadChecksum:
      case PacketKind::kTtlExpired:
        ++expect.ip;
        ++expect.drop;
        break;
    }
  }
  return expect;
}

}  // namespace knit
