#include "src/click/click_gen.h"

#include <map>
#include <vector>

#include "src/ld/link.h"
#include "src/minic/cparser.h"
#include "src/minic/sema.h"
#include "src/vm/codegen.h"

namespace knit {
namespace {

// One element instance in the Click configuration graph.
struct ClickElement {
  std::string kind;        // fromdevice counter classifier arp strip checkip route
                           // decttl fixck encap portswitch queue todevice discard
                           // decttl_fixck queue_tod (fused kinds, via xform)
  int cfg = 0;             // port number where relevant
  std::vector<int> outs;   // successors; meaning depends on kind
};

// The same two-port IP router graph as Clack. Indices are stable and used by the
// stats accessors below.
enum ElementIndex {
  kFrom0 = 0,
  kCntIn0 = 1,
  kCls0 = 2,
  kCntIp = 3,
  kArp0 = 4,
  kDiscard = 5,
  kStrip = 6,
  kCheckIp = 7,
  kRoute = 8,
  kDecTtl = 9,
  kFixCk = 10,
  kEncap = 11,
  kCntOut = 12,
  kPortSw = 13,
  kQueue0 = 14,
  kQueue1 = 15,
  kToDev0 = 16,
  kToDev1 = 17,
  kFrom1 = 18,
  kCntIn1 = 19,
  kCls1 = 20,
  kArp1 = 21,
};

std::vector<ClickElement> BuildGraph(const ClickOptim& optim) {
  std::vector<ClickElement> g(22);
  g[kFrom0] = {"fromdevice", 0, {kCntIn0}};
  g[kCntIn0] = {"counter", 0, {kCls0}};
  g[kCls0] = {"classifier", 0, {kCntIp, kArp0, kDiscard}};
  g[kCntIp] = {"counter", 0, {kStrip}};
  g[kArp0] = {"arp", 0, {kQueue0}};
  g[kDiscard] = {"discard", 0, {}};
  g[kStrip] = {"strip", 0, {kCheckIp}};
  g[kCheckIp] = {"checkip", 0, {kRoute, kDiscard}};
  g[kRoute] = {"route", 0, {kDecTtl, kDiscard}};
  g[kDecTtl] = {"decttl", 0, {kFixCk, kDiscard}};
  g[kFixCk] = {"fixck", 0, {kEncap}};
  g[kEncap] = {"encap", 0, {kCntOut}};
  g[kCntOut] = {"counter", 0, {kPortSw}};
  g[kPortSw] = {"portswitch", 0, {kQueue0, kQueue1}};
  g[kQueue0] = {"queue", 0, {kToDev0}};
  g[kQueue1] = {"queue", 0, {kToDev1}};
  g[kToDev0] = {"todevice", 0, {}};
  g[kToDev1] = {"todevice", 1, {}};
  g[kFrom1] = {"fromdevice", 1, {kCntIn1}};
  g[kCntIn1] = {"counter", 0, {kCls1}};
  g[kCls1] = {"classifier", 0, {kCntIp, kArp1, kDiscard}};
  g[kArp1] = {"arp", 0, {kQueue1}};

  if (optim.xform) {
    // Pattern replacement: DecIPTTL -> FixIPChecksum becomes one fused element
    // with an incremental checksum update; Queue -> ToDevice becomes a direct
    // transmit (the consumer is always ready in this configuration).
    g[kDecTtl] = {"decttl_fixck", 0, {kEncap, kDiscard}};
    g[kFixCk] = {"unused", 0, {}};
    g[kQueue0] = {"queue_tod", 0, {}};
    g[kQueue1] = {"queue_tod", 1, {}};
    g[kToDev0] = {"unused", 0, {}};
    g[kToDev1] = {"unused", 1, {}};
  }
  return g;
}

const char* kCommonHeader = R"(
extern void dev_tx(char *data, int len, int port);

struct pkt {
  char *data;
  int len;
  int port;
  unsigned nexthop;
};

enum { ROUTES = 5 };
static unsigned g_prefix[ROUTES] = {
  0x0A010500u, 0x0A010000u, 0x0A020000u, 0xC0A80000u, 0x00000000u
};
static unsigned g_mask[ROUTES] = {
  0xFFFFFF00u, 0xFFFF0000u, 0xFFFF0000u, 0xFFFF0000u, 0x00000000u
};
static unsigned g_gateway[ROUTES] = {
  0x0A01052Au, 0x0A010001u, 0x0A020001u, 0xC0A80009u, 0x0A0100FEu
};
static int g_outport[ROUTES] = { 0, 0, 1, 1, 0 };

struct element {
  void (*push)(struct element *self, struct pkt *p);
  struct element *out0;
  struct element *out1;
  struct element *out2;
  int cfg;
  unsigned count;
  unsigned bytes;
  int pat_n;
  int pat_off[4];
  int pat_val[4];
  struct pkt *ring[16];
  int head;
  int tail;
  unsigned drops;
};

static struct element g_el[22];
)";

// ---- shared element bodies -----------------------------------------------------
//
// `D` (dispatch) lets one body text serve both modes: in the object-based build it
// becomes an indirect call through the element graph; in the specialized build the
// generator substitutes a direct call to the successor's per-instance function.

struct BodyText {
  // %OUT0%/%OUT1%/%OUT2% are successor dispatches; %SELF% is the element state.
  std::string text;
};

std::string BodyFor(const std::string& kind, bool fast_classifier) {
  if (kind == "fromdevice") {
    return "  p->port = %SELF%.cfg;\n  %OUT0%;\n";
  }
  if (kind == "counter") {
    return "  %SELF%.count++;\n  %SELF%.bytes += (unsigned)p->len;\n  %OUT0%;\n";
  }
  if (kind == "classifier" && !fast_classifier) {
    // Click's generic classifier: interpret the configured pattern table.
    return R"(  for (int k = 0; k < %SELF%.pat_n; k++) {
    int off = %SELF%.pat_off[k];
    if (p->len >= off + 2) {
      int v = ((p->data[off] & 0xFF) << 8) | (p->data[off + 1] & 0xFF);
      if (v == %SELF%.pat_val[k]) {
        if (k == 0) { %OUT0%; return; }
        %OUT1%;
        return;
      }
    }
  }
  %OUT2%;
)";
  }
  if (kind == "classifier") {
    // Fast classifier: compare code specialized to the configuration.
    return R"(  if (p->len >= 14) {
    int v = ((p->data[12] & 0xFF) << 8) | (p->data[13] & 0xFF);
    if (v == 0x800) { %OUT0%; return; }
    if (v == 0x806) { %OUT1%; return; }
  }
  %OUT2%;
)";
  }
  if (kind == "discard") {
    return "  (void)p;\n  %SELF%.count++;\n";
  }
  if (kind == "strip") {
    return "  p->data += 14;\n  p->len -= 14;\n  %OUT0%;\n";
  }
  if (kind == "checkip") {
    return R"(  if (p->len < 20) { %OUT1%; return; }
  char *h = p->data;
  int vh = h[0] & 0xFF;
  if ((vh >> 4) != 4) { %OUT1%; return; }
  if ((vh & 0xF) != 5) { %OUT1%; return; }
  int total = ((h[2] & 0xFF) << 8) | (h[3] & 0xFF);
  if (total < 20 || total > p->len) { %OUT1%; return; }
  unsigned sum = 0;
  for (int i = 0; i < 20; i += 2) {
    sum += (unsigned)(((h[i] & 0xFF) << 8) | (h[i + 1] & 0xFF));
  }
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  if (sum != 0xFFFF) { %OUT1%; return; }
  %OUT0%;
)";
  }
  if (kind == "route") {
    return R"(  char *h = p->data;
  unsigned dst = ((unsigned)(h[16] & 0xFF) << 24) | ((unsigned)(h[17] & 0xFF) << 16) |
                 ((unsigned)(h[18] & 0xFF) << 8) | (unsigned)(h[19] & 0xFF);
  int best = -1;
  unsigned best_mask = 0;
  for (int i = 0; i < ROUTES; i++) {
    if ((dst & g_mask[i]) == g_prefix[i]) {
      if (best < 0 || g_mask[i] > best_mask) {
        best = i;
        best_mask = g_mask[i];
      }
    }
  }
  if (best < 0) { %OUT1%; return; }
  p->nexthop = g_gateway[best];
  p->port = g_outport[best];
  %OUT0%;
)";
  }
  if (kind == "decttl") {
    return R"(  char *h = p->data;
  int ttl = h[8] & 0xFF;
  if (ttl <= 1) { %OUT1%; return; }
  h[8] = (char)(ttl - 1);
  %OUT0%;
)";
  }
  if (kind == "fixck") {
    return R"(  char *h = p->data;
  h[10] = (char)0;
  h[11] = (char)0;
  unsigned sum = 0;
  for (int i = 0; i < 20; i += 2) {
    sum += (unsigned)(((h[i] & 0xFF) << 8) | (h[i + 1] & 0xFF));
  }
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  unsigned ck = ~sum & 0xFFFF;
  h[10] = (char)((ck >> 8) & 0xFF);
  h[11] = (char)(ck & 0xFF);
  %OUT0%;
)";
  }
  if (kind == "decttl_fixck") {
    // xform fusion: one pass, incremental RFC 1624 checksum update.
    return R"(  char *h = p->data;
  int ttl = h[8] & 0xFF;
  if (ttl <= 1) { %OUT1%; return; }
  h[8] = (char)(ttl - 1);
  unsigned old_ck = (unsigned)(((h[10] & 0xFF) << 8) | (h[11] & 0xFF));
  unsigned old_hw = ((unsigned)ttl << 8) | (unsigned)(h[9] & 0xFF);
  unsigned new_hw = ((unsigned)(ttl - 1) << 8) | (unsigned)(h[9] & 0xFF);
  unsigned sum = (~old_ck & 0xFFFF) + (~old_hw & 0xFFFF) + new_hw;
  sum = (sum & 0xFFFF) + (sum >> 16);
  sum = (sum & 0xFFFF) + (sum >> 16);
  unsigned ck = ~sum & 0xFFFF;
  h[10] = (char)((ck >> 8) & 0xFF);
  h[11] = (char)(ck & 0xFF);
  %OUT0%;
)";
  }
  if (kind == "encap") {
    return R"(  p->data -= 14;
  p->len += 14;
  char *e = p->data;
  unsigned nh = p->nexthop;
  e[0] = (char)2;
  e[1] = (char)0;
  e[2] = (char)((nh >> 24) & 0xFF);
  e[3] = (char)((nh >> 16) & 0xFF);
  e[4] = (char)((nh >> 8) & 0xFF);
  e[5] = (char)(nh & 0xFF);
  e[6] = (char)2;
  e[7] = (char)1;
  e[8] = (char)0;
  e[9] = (char)0;
  e[10] = (char)0;
  e[11] = (char)(p->port & 0xFF);
  e[12] = (char)8;
  e[13] = (char)0;
  %OUT0%;
)";
  }
  if (kind == "portswitch") {
    return "  if (p->port == 0) { %OUT0%; return; }\n  %OUT1%;\n";
  }
  if (kind == "queue") {
    return R"(  int next = (%SELF%.tail + 1) % 16;
  if (next == %SELF%.head) {
    %SELF%.drops++;
    return;
  }
  %SELF%.ring[%SELF%.tail] = p;
  %SELF%.tail = next;
  while (%SELF%.head != %SELF%.tail) {
    struct pkt *q = %SELF%.ring[%SELF%.head];
    %SELF%.head = (%SELF%.head + 1) % 16;
    p = q;
    %OUT0%;
  }
)";
  }
  if (kind == "queue_tod") {
    // xform fusion: the downstream ToDevice is always ready; transmit directly.
    return "  dev_tx(p->data, p->len, p->port);\n";
  }
  if (kind == "todevice") {
    return "  dev_tx(p->data, p->len, p->port);\n";
  }
  if (kind == "arp") {
    return R"(  if (p->len < 42) return;
  char *e = p->data;
  char *a = p->data + 14;
  int op = ((a[6] & 0xFF) << 8) | (a[7] & 0xFF);
  if (op != 1) return;
  for (int i = 0; i < 6; i++) e[i] = e[6 + i];
  e[6] = (char)2;
  e[7] = (char)1;
  e[8] = (char)0;
  e[9] = (char)0;
  e[10] = (char)0;
  e[11] = (char)(p->port & 0xFF);
  a[7] = (char)2;
  char sha[6];
  char spa[4];
  for (int i = 0; i < 6; i++) sha[i] = a[8 + i];
  for (int i = 0; i < 4; i++) spa[i] = a[14 + i];
  char tpa[4];
  for (int i = 0; i < 4; i++) tpa[i] = a[24 + i];
  for (int i = 0; i < 6; i++) a[18 + i] = sha[i];
  for (int i = 0; i < 4; i++) a[24 + i] = spa[i];
  a[8] = (char)2;
  a[9] = (char)1;
  a[10] = (char)0;
  a[11] = (char)0;
  a[12] = (char)0;
  a[13] = (char)(p->port & 0xFF);
  for (int i = 0; i < 4; i++) a[14 + i] = tpa[i];
  %OUT0%;
)";
  }
  return "";
}

std::string ReplaceAll(std::string text, const std::string& from, const std::string& to) {
  size_t pos = 0;
  while ((pos = text.find(from, pos)) != std::string::npos) {
    text.replace(pos, from.size(), to);
    pos += to.size();
  }
  return text;
}

// Post-order over the element graph (successors before predecessors) so the
// specialized build defines callees before callers.
void PostOrder(const std::vector<ClickElement>& graph, int node, std::vector<bool>& seen,
               std::vector<int>& order) {
  if (seen[node]) {
    return;
  }
  seen[node] = true;
  for (int out : graph[node].outs) {
    PostOrder(graph, out, seen, order);
  }
  order.push_back(node);
}

std::string GenerateIndirect(const std::vector<ClickElement>& graph,
                             const ClickOptim& optim) {
  std::string out = kCommonHeader;

  // One shared push function per element kind, dispatching through pointers.
  std::map<std::string, bool> kinds;
  for (const ClickElement& element : graph) {
    if (element.kind != "unused") {
      kinds[element.kind] = true;
    }
  }
  for (const auto& [kind, _] : kinds) {
    std::string body = BodyFor(kind, optim.fast_classifier);
    body = ReplaceAll(body, "%SELF%", "(*self)");
    body = ReplaceAll(body, "%OUT0%", "self->out0->push(self->out0, p)");
    body = ReplaceAll(body, "%OUT1%", "self->out1->push(self->out1, p)");
    body = ReplaceAll(body, "%OUT2%", "self->out2->push(self->out2, p)");
    out += "static void click_" + kind + "_push(struct element *self, struct pkt *p) {\n" +
           body + "}\n\n";
  }

  // Run-time graph construction — the object-based linking of paper section 2.2.
  out += "void click_init(void) {\n";
  for (size_t i = 0; i < graph.size(); ++i) {
    const ClickElement& element = graph[i];
    if (element.kind == "unused") {
      continue;
    }
    std::string self = "g_el[" + std::to_string(i) + "]";
    out += "  " + self + ".push = click_" + element.kind + "_push;\n";
    for (size_t o = 0; o < element.outs.size(); ++o) {
      out += "  " + self + ".out" + std::to_string(o) + " = &g_el[" +
             std::to_string(element.outs[o]) + "];\n";
    }
    out += "  " + self + ".cfg = " + std::to_string(element.cfg) + ";\n";
    if (element.kind == "classifier") {
      out += "  " + self + ".pat_n = 2;\n";
      out += "  " + self + ".pat_off[0] = 12;\n  " + self + ".pat_val[0] = 0x800;\n";
      out += "  " + self + ".pat_off[1] = 12;\n  " + self + ".pat_val[1] = 0x806;\n";
    }
  }
  out += "}\n\n";
  out +=
      "void click_in0(struct pkt *p) { g_el[0].push(&g_el[0], p); }\n"
      "void click_in1(struct pkt *p) { g_el[18].push(&g_el[18], p); }\n";
  return out;
}

std::string GenerateSpecialized(const std::vector<ClickElement>& graph,
                                const ClickOptim& optim) {
  std::string out = kCommonHeader;

  // Prototypes for every per-instance function (cycles are impossible here, but
  // declarations-before-use keeps the front end happy regardless of order).
  for (size_t i = 0; i < graph.size(); ++i) {
    if (graph[i].kind != "unused") {
      out += "static void el" + std::to_string(i) + "_push(struct pkt *p);\n";
    }
  }
  out += "\n";

  std::vector<bool> seen(graph.size(), false);
  std::vector<int> order;
  PostOrder(graph, kFrom0, seen, order);
  PostOrder(graph, kFrom1, seen, order);

  for (int i : order) {
    const ClickElement& element = graph[i];
    if (element.kind == "unused") {
      continue;
    }
    std::string body = BodyFor(element.kind, optim.fast_classifier);
    body = ReplaceAll(body, "%SELF%", "g_el[" + std::to_string(i) + "]");
    for (size_t o = 0; o < 3; ++o) {
      std::string token = "%OUT" + std::to_string(o) + "%";
      if (o < element.outs.size()) {
        body = ReplaceAll(body, token,
                          "el" + std::to_string(element.outs[o]) + "_push(p)");
      }
    }
    out += "static void el" + std::to_string(i) + "_push(struct pkt *p) {\n" + body + "}\n\n";
  }

  out += "void click_init(void) {\n";
  for (size_t i = 0; i < graph.size(); ++i) {
    const ClickElement& element = graph[i];
    if (element.kind == "unused") {
      continue;
    }
    std::string self = "g_el[" + std::to_string(i) + "]";
    out += "  " + self + ".cfg = " + std::to_string(element.cfg) + ";\n";
    if (element.kind == "classifier" && !optim.fast_classifier) {
      out += "  " + self + ".pat_n = 2;\n";
      out += "  " + self + ".pat_off[0] = 12;\n  " + self + ".pat_val[0] = 0x800;\n";
      out += "  " + self + ".pat_off[1] = 12;\n  " + self + ".pat_val[1] = 0x806;\n";
    }
  }
  out += "}\n\n";
  out +=
      "void click_in0(struct pkt *p) { el0_push(p); }\n"
      "void click_in1(struct pkt *p) { el18_push(p); }\n";
  return out;
}

}  // namespace

std::string GenerateClickRouter(const ClickOptim& optim) {
  std::vector<ClickElement> graph = BuildGraph(optim);
  std::string out =
      optim.devirtualize ? GenerateSpecialized(graph, optim) : GenerateIndirect(graph, optim);
  out +=
      "unsigned click_stats_in0(void) { return g_el[1].count; }\n"
      "unsigned click_stats_in1(void) { return g_el[19].count; }\n"
      "unsigned click_stats_ip(void) { return g_el[3].count; }\n"
      "unsigned click_stats_out(void) { return g_el[12].count; }\n"
      "unsigned click_stats_drop(void) { return g_el[5].count; }\n";
  return out;
}

Result<std::unique_ptr<Image>> BuildClickRouter(const ClickOptim& optim, Diagnostics& diags) {
  std::string source = GenerateClickRouter(optim);
  TypeTable types;
  Result<TranslationUnit> unit = ParseCString(source, "click_router.c", types, diags);
  if (!unit.ok()) {
    return Result<std::unique_ptr<Image>>::Failure();
  }
  Result<SemaInfo> info = AnalyzeTranslationUnit(unit.value(), types, diags);
  if (!info.ok()) {
    return Result<std::unique_ptr<Image>>::Failure();
  }
  CodegenOptions options;  // one TU at -O2, like a normal Click build
  Result<ObjectFile> object = CompileTranslationUnit(unit.value(), info.value(), types,
                                                     options, "click_router.o", diags);
  if (!object.ok()) {
    return Result<std::unique_ptr<Image>>::Failure();
  }
  LinkOptions link_options;
  link_options.natives = {"dev_tx"};
  std::vector<LinkItem> items;
  items.emplace_back(object.take());
  Result<LinkResult> linked = Link(std::move(items), link_options, diags);
  if (!linked.ok()) {
    return Result<std::unique_ptr<Image>>::Failure();
  }
  return std::make_unique<Image>(std::move(linked.value().image));
}

}  // namespace knit
