// The object-based Click emulation (paper §5.2, §6, Table 2).
//
// Click implements router elements as C++ class instances connected by pointers;
// packets traverse the graph through virtual calls. We reproduce that structure in
// MiniC: every element is a `struct element` holding a push function pointer,
// output-edge pointers, and per-instance state; an init function wires the graph at
// run time (the "linking via arbitrary run-time code" of paper §2.2). The element
// graph is the same 24-element two-port IP router as Clack, so Table 2's
// Click-vs-Clack comparison runs the same workload.
//
// The three MIT optimizations (Kohler et al., MIT-LCS-TR-812, paper [19]) are
// reproduced as source-level transforms, individually selectable for ablation:
//   * fast classifier — replaces the generic pattern-table interpreter with
//     compare code specialized to the configured patterns;
//   * specializer (devirtualization) — per-instance functions with direct calls
//     instead of indirect dispatch (which also unlocks the compiler's inliner);
//   * xform — graph pattern replacement: DecIPTTL+FixIPChecksum fuse into a single
//     pass with an incremental (RFC 1624) checksum update; Queue+ToDevice fuse
//     into a direct transmit.
#ifndef SRC_CLICK_CLICK_GEN_H_
#define SRC_CLICK_CLICK_GEN_H_

#include <memory>
#include <string>

#include "src/support/diagnostics.h"
#include "src/support/result.h"
#include "src/vm/image.h"

namespace knit {

struct ClickOptim {
  bool fast_classifier = false;
  bool devirtualize = false;
  bool xform = false;

  static ClickOptim None() { return ClickOptim{}; }
  static ClickOptim All() { return ClickOptim{true, true, true}; }
};

// Generates the complete MiniC source of the Click router program.
std::string GenerateClickRouter(const ClickOptim& optim);

// Compiles and links the Click router into a runnable image. The image exports
// click_init, click_in0/click_in1, and click_stats_{in0,in1,ip,out,drop}; it
// imports the native `dev_tx`.
Result<std::unique_ptr<Image>> BuildClickRouter(const ClickOptim& optim, Diagnostics& diags);

}  // namespace knit

#endif  // SRC_CLICK_CLICK_GEN_H_
