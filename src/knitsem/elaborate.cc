#include "src/knitsem/elaborate.h"

#include <algorithm>
#include <set>

namespace knit {

const BundleTypeDecl* Elaboration::FindBundleType(const std::string& name) const {
  auto it = bundle_types.find(name);
  return it == bundle_types.end() ? nullptr : &it->second;
}

const UnitDecl* Elaboration::FindUnit(const std::string& name) const {
  auto it = units.find(name);
  return it == units.end() ? nullptr : &it->second;
}

const FlagsDecl* Elaboration::FindFlags(const std::string& name) const {
  auto it = flag_sets.find(name);
  return it == flag_sets.end() ? nullptr : &it->second;
}

int Elaboration::PortIndex(const std::vector<PortDecl>& ports, const std::string& name) {
  for (size_t i = 0; i < ports.size(); ++i) {
    if (ports[i].local_name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

namespace {

// True if `name` is a declared initializer or finalizer function of `unit`.
bool IsInitFiniFunction(const UnitDecl& unit, const std::string& name) {
  for (const InitFiniDecl& d : unit.initializers) {
    if (d.function == name) {
      return true;
    }
  }
  for (const InitFiniDecl& d : unit.finalizers) {
    if (d.function == name) {
      return true;
    }
  }
  return false;
}

class ElaborationPass {
 public:
  ElaborationPass(const KnitProgram& program, Diagnostics& diags)
      : program_(program), diags_(diags) {}

  Result<Elaboration> Run() {
    bool ok = CollectBundleTypes() & CollectFlags() & CollectProperties() & CollectUnits();
    if (!ok) {
      return Result<Elaboration>::Failure();
    }
    for (const auto& [name, unit] : out_.units) {
      if (!CheckUnit(unit)) {
        ok = false;
      }
    }
    if (!ok || diags_.has_errors()) {
      return Result<Elaboration>::Failure();
    }
    return std::move(out_);
  }

 private:
  bool CollectBundleTypes() {
    bool ok = true;
    for (const BundleTypeDecl& decl : program_.bundle_types) {
      std::set<std::string> seen;
      for (const std::string& symbol : decl.symbols) {
        if (!seen.insert(symbol).second) {
          diags_.Error(decl.loc, "bundle type '" + decl.name + "' lists symbol '" + symbol +
                                     "' more than once");
          ok = false;
        }
      }
      if (!out_.bundle_types.emplace(decl.name, decl).second) {
        diags_.Error(decl.loc, "duplicate bundle type '" + decl.name + "'");
        ok = false;
      }
    }
    return ok;
  }

  bool CollectFlags() {
    bool ok = true;
    for (const FlagsDecl& decl : program_.flag_sets) {
      if (!out_.flag_sets.emplace(decl.name, decl).second) {
        diags_.Error(decl.loc, "duplicate flag set '" + decl.name + "'");
        ok = false;
      }
    }
    return ok;
  }

  bool CollectProperties() {
    bool ok = true;
    std::set<std::string> property_names;
    for (const PropertyDecl& decl : program_.properties) {
      if (!property_names.insert(decl.name).second) {
        diags_.Error(decl.loc, "duplicate property '" + decl.name + "'");
        ok = false;
      }
      out_.properties.push_back(decl);
    }
    std::set<std::pair<std::string, std::string>> value_names;
    for (const PropertyValueDecl& decl : program_.property_values) {
      if (property_names.count(decl.property) == 0) {
        diags_.Error(decl.loc, "value '" + decl.name + "' declared for unknown property '" +
                                   decl.property + "'");
        ok = false;
      }
      if (!value_names.insert({decl.property, decl.name}).second) {
        diags_.Error(decl.loc, "duplicate value '" + decl.name + "' for property '" +
                                   decl.property + "'");
        ok = false;
      }
      out_.property_values.push_back(decl);
    }
    // `less_than` targets must themselves be declared values of the same property.
    for (const PropertyValueDecl& decl : out_.property_values) {
      if (!decl.less_than.empty() &&
          value_names.count({decl.property, decl.less_than}) == 0) {
        diags_.Error(decl.loc, "property value '" + decl.name + "' declared below unknown "
                               "value '" +
                                   decl.less_than + "'");
        ok = false;
      }
    }
    return ok;
  }

  bool CollectUnits() {
    bool ok = true;
    for (const UnitDecl& decl : program_.units) {
      if (!out_.units.emplace(decl.name, decl).second) {
        diags_.Error(decl.loc, "duplicate unit '" + decl.name + "'");
        ok = false;
      }
    }
    return ok;
  }

  bool CheckPorts(const UnitDecl& unit, const std::vector<PortDecl>& ports,
                  std::set<std::string>& local_names) {
    bool ok = true;
    for (const PortDecl& port : ports) {
      if (out_.FindBundleType(port.bundle_type) == nullptr) {
        diags_.Error(port.loc, "unit '" + unit.name + "': unknown bundle type '" +
                                   port.bundle_type + "'");
        ok = false;
      }
      if (!local_names.insert(port.local_name).second) {
        diags_.Error(port.loc, "unit '" + unit.name + "': duplicate port name '" +
                                   port.local_name + "'");
        ok = false;
      }
    }
    return ok;
  }

  bool CheckUnit(const UnitDecl& unit) {
    bool ok = true;
    std::set<std::string> local_names;
    ok &= CheckPorts(unit, unit.imports, local_names);
    ok &= CheckPorts(unit, unit.exports, local_names);

    if (!unit.IsAtomic() && !unit.IsCompound()) {
      diags_.Error(unit.loc, "unit '" + unit.name + "' has neither 'files' nor 'link'; "
                             "every unit is atomic (files) or compound (link)");
      ok = false;
    }

    ok &= CheckInitFini(unit);
    ok &= CheckDepends(unit, local_names);
    ok &= CheckRenames(unit);
    ok &= CheckConstraintTargets(unit);

    if (unit.IsAtomic()) {
      if (!unit.flags_name.empty() && out_.FindFlags(unit.flags_name) == nullptr) {
        diags_.Error(unit.loc, "unit '" + unit.name + "': unknown flag set '" +
                                   unit.flags_name + "'");
        ok = false;
      }
      if (!unit.links.empty()) {
        diags_.Error(unit.loc, "atomic unit '" + unit.name + "' may not have link lines");
        ok = false;
      }
    }
    if (unit.IsCompound()) {
      ok &= CheckCompound(unit);
    }
    return ok;
  }

  bool CheckInitFini(const UnitDecl& unit) {
    bool ok = true;
    for (const std::vector<InitFiniDecl>* list : {&unit.initializers, &unit.finalizers}) {
      for (const InitFiniDecl& decl : *list) {
        if (Elaboration::PortIndex(unit.exports, decl.port) < 0) {
          diags_.Error(decl.loc, "unit '" + unit.name + "': initializer/finalizer is for '" +
                                     decl.port + "', which is not an export of the unit");
          ok = false;
        }
      }
    }
    return ok;
  }

  bool CheckDepends(const UnitDecl& unit, const std::set<std::string>& local_names) {
    bool ok = true;
    for (const DependsClause& clause : unit.depends) {
      for (const std::string& dependent : clause.dependents) {
        // A dependent is an export bundle or an init/fini function.
        bool is_export = Elaboration::PortIndex(unit.exports, dependent) >= 0;
        if (!is_export && !IsInitFiniFunction(unit, dependent)) {
          diags_.Error(clause.loc, "unit '" + unit.name + "': depends clause mentions '" +
                                       dependent +
                                       "', which is neither an export bundle nor a declared "
                                       "initializer/finalizer");
          ok = false;
        }
      }
      for (const std::string& requirement : clause.requirements) {
        // A requirement is an import bundle (what the dependent calls into).
        if (Elaboration::PortIndex(unit.imports, requirement) < 0) {
          bool is_local = local_names.count(requirement) > 0;
          diags_.Error(clause.loc,
                       "unit '" + unit.name + "': depends clause requires '" + requirement +
                           (is_local ? "', which is not an import bundle of the unit"
                                     : "', which is not a port of the unit"));
          ok = false;
        }
      }
    }
    return ok;
  }

  bool CheckRenames(const UnitDecl& unit) {
    bool ok = true;
    std::set<std::pair<std::string, std::string>> renamed;
    for (const RenameDecl& rename : unit.renames) {
      int import_index = Elaboration::PortIndex(unit.imports, rename.port);
      int export_index = Elaboration::PortIndex(unit.exports, rename.port);
      const PortDecl* port = nullptr;
      if (import_index >= 0) {
        port = &unit.imports[import_index];
      } else if (export_index >= 0) {
        port = &unit.exports[export_index];
      } else {
        diags_.Error(rename.loc, "unit '" + unit.name + "': rename of unknown port '" +
                                     rename.port + "'");
        ok = false;
        continue;
      }
      const BundleTypeDecl* type = out_.FindBundleType(port->bundle_type);
      if (type != nullptr &&
          std::find(type->symbols.begin(), type->symbols.end(), rename.symbol) ==
              type->symbols.end()) {
        diags_.Error(rename.loc, "unit '" + unit.name + "': bundle type '" + port->bundle_type +
                                     "' has no symbol '" + rename.symbol + "'");
        ok = false;
      }
      if (!renamed.insert({rename.port, rename.symbol}).second) {
        diags_.Error(rename.loc, "unit '" + unit.name + "': '" + rename.port + "." +
                                     rename.symbol + "' renamed more than once");
        ok = false;
      }
    }
    return ok;
  }

  bool CheckConstraintTargets(const UnitDecl& unit) {
    bool ok = true;
    for (const ConstraintDecl& constraint : unit.constraints) {
      for (const PropertyExpr* expr : {&constraint.lhs, &constraint.rhs}) {
        if (expr->kind == PropertyExpr::Kind::kOfPort) {
          if (Elaboration::PortIndex(unit.imports, expr->name) < 0 &&
              Elaboration::PortIndex(unit.exports, expr->name) < 0) {
            diags_.Error(expr->loc, "unit '" + unit.name + "': constraint on unknown port '" +
                                        expr->name + "'");
            ok = false;
          }
        }
      }
    }
    return ok;
  }

  bool CheckCompound(const UnitDecl& unit) {
    bool ok = true;
    // Local names: compound imports plus link-line outputs. Every name defined once.
    std::map<std::string, std::string> local_types;  // name -> bundle type
    for (const PortDecl& port : unit.imports) {
      local_types[port.local_name] = port.bundle_type;
    }
    for (const LinkLine& line : unit.links) {
      const UnitDecl* child = out_.FindUnit(line.unit);
      if (child == nullptr) {
        diags_.Error(line.loc, "unit '" + unit.name + "': link of unknown unit '" + line.unit +
                                   "'");
        ok = false;
        continue;
      }
      if (line.outputs.size() != child->exports.size()) {
        diags_.Error(line.loc, "unit '" + unit.name + "': link of '" + line.unit + "' binds " +
                                   std::to_string(line.outputs.size()) + " outputs but the unit "
                                   "exports " +
                                   std::to_string(child->exports.size()) + " bundles");
        ok = false;
      }
      if (line.inputs.size() != child->imports.size()) {
        diags_.Error(line.loc, "unit '" + unit.name + "': link of '" + line.unit + "' supplies " +
                                   std::to_string(line.inputs.size()) + " inputs but the unit "
                                   "imports " +
                                   std::to_string(child->imports.size()) + " bundles");
        ok = false;
      }
      for (size_t i = 0; i < line.outputs.size() && i < child->exports.size(); ++i) {
        auto [it, inserted] = local_types.emplace(line.outputs[i], child->exports[i].bundle_type);
        if (!inserted) {
          diags_.Error(line.loc, "unit '" + unit.name + "': local name '" + line.outputs[i] +
                                     "' is bound more than once");
          ok = false;
        }
      }
    }
    // Inputs must reference defined locals with matching bundle types.
    for (const LinkLine& line : unit.links) {
      const UnitDecl* child = out_.FindUnit(line.unit);
      if (child == nullptr) {
        continue;
      }
      for (size_t i = 0; i < line.inputs.size() && i < child->imports.size(); ++i) {
        auto it = local_types.find(line.inputs[i]);
        if (it == local_types.end()) {
          diags_.Error(line.loc, "unit '" + unit.name + "': link input '" + line.inputs[i] +
                                     "' is not a compound import or a link output");
          ok = false;
        } else if (it->second != child->imports[i].bundle_type) {
          diags_.Error(line.loc, "unit '" + unit.name + "': link input '" + line.inputs[i] +
                                     "' has bundle type '" + it->second + "' but '" + line.unit +
                                     "' imports '" + child->imports[i].bundle_type + "' here");
          ok = false;
        }
      }
    }
    // Compound exports must name defined locals of the right type.
    for (const PortDecl& port : unit.exports) {
      auto it = local_types.find(port.local_name);
      if (it == local_types.end()) {
        diags_.Error(port.loc, "unit '" + unit.name + "': export '" + port.local_name +
                                   "' is not bound by any link line or compound import");
        ok = false;
      } else if (it->second != port.bundle_type) {
        diags_.Error(port.loc, "unit '" + unit.name + "': export '" + port.local_name +
                                   "' has bundle type '" + it->second + "', not '" +
                                   port.bundle_type + "'");
        ok = false;
      }
    }
    return ok;
  }

  const KnitProgram& program_;
  Diagnostics& diags_;
  Elaboration out_;
};

}  // namespace

Result<Elaboration> Elaborate(const KnitProgram& program, Diagnostics& diags) {
  return ElaborationPass(program, diags).Run();
}

}  // namespace knit
