// Elaboration: validates a parsed KnitProgram into name-resolved definition tables.
// Checks performed here are per-definition (does this unit's rename refer to a real
// port/symbol?); cross-unit wiring checks happen during instantiation.
#ifndef SRC_KNITSEM_ELABORATE_H_
#define SRC_KNITSEM_ELABORATE_H_

#include <map>
#include <string>
#include <vector>

#include "src/knitlang/ast.h"
#include "src/support/diagnostics.h"
#include "src/support/result.h"

namespace knit {

// Validated program definitions. Maps are node-based so pointers into them remain
// stable for the lifetime of the Elaboration.
struct Elaboration {
  std::map<std::string, BundleTypeDecl> bundle_types;
  std::map<std::string, FlagsDecl> flag_sets;
  std::map<std::string, UnitDecl> units;
  std::vector<PropertyDecl> properties;
  std::vector<PropertyValueDecl> property_values;

  const BundleTypeDecl* FindBundleType(const std::string& name) const;
  const UnitDecl* FindUnit(const std::string& name) const;
  const FlagsDecl* FindFlags(const std::string& name) const;

  // Index of a port with the given local name, or -1.
  static int PortIndex(const std::vector<PortDecl>& ports, const std::string& name);
};

// Validates `program`. On any error, reports into `diags` and fails. Warnings (e.g.
// a unit that exports a bundle no one imports) do not fail elaboration.
Result<Elaboration> Elaborate(const KnitProgram& program, Diagnostics& diags);

}  // namespace knit

#endif  // SRC_KNITSEM_ELABORATE_H_
