// Instantiation: expands a top-level (possibly compound) unit into a flat graph of
// atomic unit instances with fully resolved wiring. Hierarchy disappears here; what
// remains is exactly what the later phases need: which instance supplies each import
// of each instance.
//
// Cyclic linking (A imports from B while B imports from A) is legal and resolved via
// wire unification: every bundle connection point is a wire, link-line outputs start
// as placeholder wires, and instantiating a child unifies the child's export wires
// with the placeholders.
#ifndef SRC_KNITSEM_INSTANTIATE_H_
#define SRC_KNITSEM_INSTANTIATE_H_

#include <string>
#include <vector>

#include "src/knitsem/elaborate.h"
#include "src/support/diagnostics.h"
#include "src/support/result.h"

namespace knit {

// Identifies the supplier of a bundle: an export port of an atomic instance, or —
// when instance == kEnvironment — an import of the top-level unit that the embedding
// program (the "environment": VM builtins, test harness) must satisfy.
struct SupplierRef {
  static constexpr int kEnvironment = -1;

  int instance = kEnvironment;
  int port = -1;

  bool IsEnvironment() const { return instance == kEnvironment; }
  bool operator==(const SupplierRef& other) const = default;
};

// One atomic unit instance in the final configuration.
struct Instance {
  std::string path;  // hierarchical name, e.g. "LogServe/logger"
  const UnitDecl* unit = nullptr;

  // Parallel to unit->imports: who supplies each imported bundle.
  std::vector<SupplierRef> import_suppliers;

  // Flatten region this instance belongs to, or -1 (compiled as its own translation
  // unit). Instances sharing a group are merged into one TU by the flattener.
  int flatten_group = -1;
};

struct Configuration {
  const UnitDecl* top = nullptr;
  std::vector<Instance> instances;

  // Parallel to top->exports: which instance export realizes each top-level export.
  std::vector<SupplierRef> top_export_suppliers;

  // Number of flatten groups allocated (group ids are [0, flatten_group_count)).
  int flatten_group_count = 0;

  // Instance lookup by hierarchical path; -1 if absent.
  int FindInstance(const std::string& path) const;
};

// Expands `top_unit`. Fails (into diags) on unknown units, recursive composition
// (a compound that transitively links itself), or arity/type mismatches not caught
// during elaboration.
Result<Configuration> Instantiate(const Elaboration& elaboration, const std::string& top_unit,
                                  Diagnostics& diags);

}  // namespace knit

#endif  // SRC_KNITSEM_INSTANTIATE_H_
