#include "src/knitsem/instantiate.h"

#include <cassert>
#include <map>
#include <numeric>
#include <optional>

namespace knit {

int Configuration::FindInstance(const std::string& path) const {
  for (size_t i = 0; i < instances.size(); ++i) {
    if (instances[i].path == path) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

namespace {

// A wire is one bundle connection point. Wires form union-find sets; at most one
// wire in a set carries a definer (the supplier of the bundle).
struct Wire {
  int parent;
  std::optional<SupplierRef> definer;
};

class Instantiator {
 public:
  Instantiator(const Elaboration& elaboration, Diagnostics& diags)
      : elaboration_(elaboration), diags_(diags) {}

  Result<Configuration> Run(const std::string& top_unit) {
    const UnitDecl* top = elaboration_.FindUnit(top_unit);
    if (top == nullptr) {
      diags_.Error(SourceLoc::Unknown(), "unknown top-level unit '" + top_unit + "'");
      return Result<Configuration>::Failure();
    }
    config_.top = top;

    // The environment supplies the top unit's imports.
    std::vector<int> import_wires;
    for (size_t i = 0; i < top->imports.size(); ++i) {
      import_wires.push_back(
          NewWire(SupplierRef{SupplierRef::kEnvironment, static_cast<int>(i)}));
    }
    std::vector<int> export_wires;
    if (!InstantiateUnit(*top, import_wires, top->name, /*flatten_group=*/-1, export_wires)) {
      return Result<Configuration>::Failure();
    }
    top_export_wires_ = export_wires;

    // Resolve every recorded wire to its definer.
    bool ok = true;
    for (size_t i = 0; i < config_.instances.size(); ++i) {
      Instance& instance = config_.instances[i];
      for (size_t p = 0; p < instance.import_suppliers.size(); ++p) {
        int wire = pending_imports_[i][p];
        std::optional<SupplierRef> definer = wires_[Find(wire)].definer;
        if (!definer.has_value()) {
          diags_.Error(instance.unit->imports[p].loc,
                       "import '" + instance.unit->imports[p].local_name + "' of instance '" +
                           instance.path + "' is not supplied by any unit");
          ok = false;
          continue;
        }
        instance.import_suppliers[p] = *definer;
      }
    }
    for (int wire : top_export_wires_) {
      std::optional<SupplierRef> definer = wires_[Find(wire)].definer;
      if (!definer.has_value()) {
        diags_.Error(top->loc, "a top-level export of '" + top->name + "' has no supplier");
        ok = false;
        continue;
      }
      config_.top_export_suppliers.push_back(*definer);
    }
    if (!ok) {
      return Result<Configuration>::Failure();
    }
    return std::move(config_);
  }

 private:
  int NewWire(std::optional<SupplierRef> definer = std::nullopt) {
    wires_.push_back(Wire{static_cast<int>(wires_.size()), definer});
    return static_cast<int>(wires_.size()) - 1;
  }

  int Find(int wire) {
    while (wires_[wire].parent != wire) {
      wires_[wire].parent = wires_[wires_[wire].parent].parent;
      wire = wires_[wire].parent;
    }
    return wire;
  }

  // Unifies two wires. Both carrying a definer would mean one bundle supplied twice;
  // the construction (fresh wires for every export) makes that impossible, so assert.
  void Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) {
      return;
    }
    assert(!(wires_[a].definer.has_value() && wires_[b].definer.has_value()));
    if (wires_[b].definer.has_value()) {
      std::swap(a, b);
    }
    wires_[b].parent = a;
  }

  // Instantiates `unit` with the given import wires; fills `export_wires` (parallel
  // to unit.exports). `path` names this instantiation; `flatten_group` is inherited
  // from enclosing flatten regions (-1 outside any).
  bool InstantiateUnit(const UnitDecl& unit, const std::vector<int>& import_wires,
                       const std::string& path, int flatten_group,
                       std::vector<int>& export_wires) {
    assert(import_wires.size() == unit.imports.size());
    if (unit.flatten && flatten_group < 0) {
      flatten_group = config_.flatten_group_count++;
    }
    if (unit.IsAtomic()) {
      int id = static_cast<int>(config_.instances.size());
      Instance instance;
      instance.path = path;
      instance.unit = &unit;
      instance.import_suppliers.resize(unit.imports.size());
      instance.flatten_group = flatten_group;
      config_.instances.push_back(std::move(instance));
      pending_imports_.push_back(import_wires);
      for (size_t e = 0; e < unit.exports.size(); ++e) {
        export_wires.push_back(NewWire(SupplierRef{id, static_cast<int>(e)}));
      }
      return true;
    }

    // Compound: detect recursive composition.
    for (const std::string& open : open_units_) {
      if (open == unit.name) {
        diags_.Error(unit.loc, "recursive composition: unit '" + unit.name +
                                   "' transitively links itself (at " + path + ")");
        return false;
      }
    }
    open_units_.push_back(unit.name);

    // Local scope: compound imports first, then placeholder wires for link outputs.
    std::map<std::string, int> locals;
    for (size_t i = 0; i < unit.imports.size(); ++i) {
      locals[unit.imports[i].local_name] = import_wires[i];
    }
    for (const LinkLine& line : unit.links) {
      for (const std::string& output : line.outputs) {
        locals[output] = NewWire();
      }
    }

    // Instantiate each link line, unifying child exports with the placeholders.
    std::map<std::string, int> name_counters;
    for (const LinkLine& line : unit.links) {
      const UnitDecl* child = elaboration_.FindUnit(line.unit);
      assert(child != nullptr);  // elaboration validated this
      std::vector<int> child_imports;
      for (const std::string& input : line.inputs) {
        auto it = locals.find(input);
        assert(it != locals.end());
        child_imports.push_back(it->second);
      }
      std::string base = line.instance_name.empty() ? line.unit : line.instance_name;
      int count = name_counters[base]++;
      std::string child_path = path + "/" + base;
      if (count > 0) {
        child_path += "#" + std::to_string(count + 1);
      }
      std::vector<int> child_exports;
      if (!InstantiateUnit(*child, child_imports, child_path, flatten_group, child_exports)) {
        return false;
      }
      for (size_t e = 0; e < line.outputs.size(); ++e) {
        Union(locals[line.outputs[e]], child_exports[e]);
      }
    }
    open_units_.pop_back();

    for (const PortDecl& port : unit.exports) {
      auto it = locals.find(port.local_name);
      assert(it != locals.end());
      export_wires.push_back(it->second);
    }
    return true;
  }

  const Elaboration& elaboration_;
  Diagnostics& diags_;
  Configuration config_;
  std::vector<Wire> wires_;
  // Parallel to config_.instances: the wire id of each import port, resolved at the end.
  std::vector<std::vector<int>> pending_imports_;
  std::vector<int> top_export_wires_;
  std::vector<std::string> open_units_;
};

}  // namespace

Result<Configuration> Instantiate(const Elaboration& elaboration, const std::string& top_unit,
                                  Diagnostics& diags) {
  return Instantiator(elaboration, diags).Run(top_unit);
}

}  // namespace knit
