// HDR-style latency histogram for per-packet cycle counts: 32 exact buckets
// below 32, then 32 logarithmic sub-buckets per octave — constant memory for a
// million-packet run, ≤ ~3% value error at the top of each octave, and exact
// counts (percentile ranks are never approximated, only the reported value is
// quantized to its bucket's upper edge). Mergeable across shards by addition.
#ifndef SRC_SERVE_LATENCY_H_
#define SRC_SERVE_LATENCY_H_

#include <cstdint>
#include <vector>

namespace knit {

class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(long long value);
  void Merge(const LatencyHistogram& other);

  long long count() const { return count_; }
  long long min() const { return count_ == 0 ? 0 : min_; }
  long long max() const { return max_; }
  double Mean() const { return count_ == 0 ? 0 : double(sum_) / double(count_); }

  // Value at quantile q in [0, 1]: the upper edge of the bucket holding the
  // ceil(q * count)-th smallest sample (clamped to the observed max).
  long long Percentile(double q) const;

 private:
  static constexpr int kSubBits = 5;                  // 32 sub-buckets per octave
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kOctaves = 42;                 // values up to ~2^46

  static int BucketIndex(long long value);
  static long long BucketUpperEdge(int index);

  std::vector<long long> buckets_;
  long long count_ = 0;
  long long sum_ = 0;
  long long min_ = 0;
  long long max_ = 0;
};

}  // namespace knit

#endif  // SRC_SERVE_LATENCY_H_
