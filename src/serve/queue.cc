#include "src/serve/queue.h"

namespace knit {

bool PacketQueue::Push(PacketRef item) {
  std::unique_lock<std::mutex> lock(mu_);
  can_push_.wait(lock, [this] {
    return closed_ || capacity_ == 0 || items_.size() < capacity_;
  });
  if (closed_) {
    return false;
  }
  items_.push_back(item);
  if (items_.size() > max_depth_) {
    max_depth_ = items_.size();
  }
  lock.unlock();
  can_pop_.notify_one();
  return true;
}

size_t PacketQueue::PopBatch(std::vector<PacketRef>& out, size_t max) {
  out.clear();
  std::unique_lock<std::mutex> lock(mu_);
  can_pop_.wait(lock, [this] { return closed_ || !items_.empty(); });
  size_t n = 0;
  while (n < max && !items_.empty()) {
    out.push_back(items_.front());
    items_.pop_front();
    ++n;
  }
  lock.unlock();
  if (n > 0) {
    // Popping may have made room for several blocked producers.
    can_push_.notify_all();
  }
  return n;
}

void PacketQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  can_push_.notify_all();
  can_pop_.notify_all();
}

bool PacketQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t PacketQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

size_t PacketQueue::max_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_depth_;
}

}  // namespace knit
