// Bounded MPSC packet queue: the hand-off between the stream feeder(s) and one
// shard worker. Push blocks while the queue is full (backpressure toward the
// producer), PopBatch blocks while it is empty and drains up to a whole batch
// in one lock acquisition — the K in the serving layer's batched dispatch.
// Close() is the drain protocol: producers stop, consumers finish whatever is
// left, then PopBatch returns 0.
#ifndef SRC_SERVE_QUEUE_H_
#define SRC_SERVE_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace knit {

struct TracePacket;  // src/clack/trace.h

// One enqueued packet: a borrowed pointer into the caller's trace plus the
// packet's stream sequence number (its index in that trace).
struct PacketRef {
  const TracePacket* packet = nullptr;
  uint64_t seq = 0;
};

class PacketQueue {
 public:
  // `capacity` == 0 means unbounded (the serving layer's pre-feed mode, used
  // when the executor has fewer threads than queues).
  explicit PacketQueue(size_t capacity) : capacity_(capacity) {}

  // Blocks while full. Returns false (and drops the packet) iff the queue was
  // closed — a shard that failed mid-drain closes its queue so producers
  // cannot block on a consumer that will never pop again.
  bool Push(PacketRef item);

  // Appends up to `max` items to `out` (cleared first). Blocks while the queue
  // is empty and open; returns 0 only when the queue is closed AND empty —
  // the worker's signal to run its drain epilogue.
  size_t PopBatch(std::vector<PacketRef>& out, size_t max);

  // Idempotent. Wakes every blocked producer and consumer.
  void Close();

  bool closed() const;
  size_t depth() const;
  // High-water mark of the queue depth (reporting).
  size_t max_depth() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable can_push_;
  std::condition_variable can_pop_;
  std::deque<PacketRef> items_;
  size_t capacity_;
  size_t max_depth_ = 0;
  bool closed_ = false;
};

}  // namespace knit

#endif  // SRC_SERVE_QUEUE_H_
