// Fleet-scale serving: N router images — one Machine per shard, all cloned
// from ONE linked image — behind flow-hash sharding, bounded per-shard MPSC
// queues, and batched dispatch on the work-pulling Executor.
//
// The paper's claim is that component composition is free at the boundary; the
// serving layer stresses that it stays free at fleet scale, where the unit of
// scale is the *image*: Knit images have per-instance VM state and no globals,
// so cloning a router is "construct another Machine over the same Image".
//
// Guarantees (tested in tests/serve_test.cc, reported by bench/serve_throughput):
//   * per-flow ordering: a flow hashes to exactly one shard, whose queue and
//     session are FIFO — packets of one flow are processed in stream order;
//   * exact aggregation: every RouterStats counter (packets, cycles, stalls,
//     element counters, tx_count) and every ComponentProfile row of the
//     aggregate is the exact sum of the shard values;
//   * hash equivalence: the aggregate tx_hash — per-packet transmission
//     digests folded in trace order (see src/clack/session.h) — is
//     byte-identical to a single-machine RunTrace of the same trace;
//   * graceful drain: Serve() closes the queues after the last packet, every
//     worker drains what is left, snapshots, and the last one to finish
//     submits the aggregation task. A shard failure closes its queue (so
//     producers never block on a dead consumer), stops the feed, and surfaces
//     the shard's diagnostics.
#ifndef SRC_SERVE_SERVE_H_
#define SRC_SERVE_SERVE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/clack/harness.h"
#include "src/serve/latency.h"
#include "src/serve/queue.h"
#include "src/support/executor.h"

namespace knit {

struct ServeOptions {
  int shards = 1;

  // Batched dispatch: a worker drains up to `batch` packets from its queue per
  // wake-up and feeds them in one RouterSession::FeedBatch entry — one lock
  // acquisition and one entry-symbol resolution amortized over the batch.
  int batch = 32;

  // Per-shard queue bound (backpressure toward the feeder) in streaming mode.
  size_t queue_capacity = 1024;

  // Worker-pool width. 0 sizes it as shards + 1 (N shard workers + the feed
  // task) — full streaming. Anything smaller switches the fleet to pre-feed
  // mode: the queues become unbounded, the whole trace is sharded up front,
  // and the workers run on however many threads there are (the "more shards
  // than threads" case must degrade, never deadlock).
  int executor_jobs = 0;

  // Attribute cycles/stalls to components on every shard; the aggregate
  // profile is the exact per-component sum across shards.
  bool profile = false;

  // Per-shard VM instruction budget; 0 keeps the CostModel default. Long
  // serving runs (millions of packets on few shards) need more fuel than the
  // default 2e9.
  long long fuel = 0;

  // Call the configuration's allocator-reset export (entry map key
  // "allocReset", exported by e.g. ClackAllocRouter) on a shard after each
  // drained batch. Every cloned machine owns a private Alloc instance, so a
  // reset recycles that shard's arena without touching its neighbours — and
  // since the elements forward packets unchanged whether malloc succeeds or
  // not, resets never change the tx hash. Ignored when the configuration
  // exports no allocator.
  bool reset_alloc_per_batch = false;

  CostModel cost;
};

struct ShardReport {
  int shard = 0;
  RouterStats stats;          // this shard's exact measurement
  long long batches = 0;      // queue wake-ups
  long long max_batch = 0;    // largest batch actually drained
  size_t max_queue_depth = 0; // high-water mark of the shard's queue
};

struct ServeReport {
  // Exact sums of the shard stats; tx_hash is the trace-order fold across
  // shards (byte-identical to the single-machine hash); profile rows are
  // per-component sums when ServeOptions::profile was set.
  RouterStats total;
  std::vector<ShardReport> shards;

  // Per-packet latency under the cycle model (cycles from graph entry to
  // exit), merged across shards.
  LatencyHistogram latency;
  long long p50_cycles = 0;
  long long p99_cycles = 0;

  double wall_seconds = 0;        // host wall time of the serve run
  double packets_per_second = 0;  // host throughput (packets / wall_seconds)
  bool streamed = true;           // false: pre-feed mode (see executor_jobs)
  int threads = 0;                // executor threads used
};

class RouterFleet {
 public:
  // Clones `build` into `options.shards` machines (sessions opened, knit__init
  // run per shard). `entry_names`/`dev_native` follow the RouterSession::Open
  // contract.
  static Result<std::unique_ptr<RouterFleet>> FromBuild(
      std::shared_ptr<const KnitBuildResult> build,
      std::map<std::string, std::string> entry_names, const std::string& dev_native,
      const ServeOptions& options, Diagnostics& diags);

  // Builds a Clack top unit through the staged pipeline, then FromBuild with
  // the standard Clack entry map.
  static Result<std::unique_ptr<RouterFleet>> FromClack(const std::string& top_unit,
                                                        const KnitcOptions& build_options,
                                                        const ServeOptions& options,
                                                        Diagnostics& diags);

  // Flow identity hash: IPv4 packets hash (src, dst, protocol); everything
  // else hashes the Ethernet header and the input port. Deterministic, so a
  // flow lands on the same shard for the lifetime of the fleet.
  static uint32_t FlowHash(const TracePacket& packet);
  int ShardOf(const TracePacket& packet) const;

  int shards() const { return static_cast<int>(shards_.size()); }

  // Serves the whole trace: feeds every packet to its flow's shard, drains,
  // shuts down, and aggregates. One-shot — the sessions close on drain.
  Result<ServeReport> Serve(const std::vector<TracePacket>& trace, Diagnostics& diags);

 private:
  struct Shard {
    int index = 0;
    std::unique_ptr<Machine> machine;
    std::unique_ptr<RouterSession> session;
    std::unique_ptr<PacketQueue> queue;
    LatencyHistogram latency;
    ShardReport report;
    Diagnostics diags;   // merged into the caller's on failure
    bool failed = false;
  };

  RouterFleet() = default;

  void WorkerLoop(Shard& shard);
  void FeedLoop(const std::vector<TracePacket>& trace);
  void Aggregate();

  std::shared_ptr<const KnitBuildResult> build_;
  ServeOptions options_;
  std::string alloc_reset_symbol_;  // "" when the config exports no allocator
  std::vector<std::unique_ptr<Shard>> shards_;
  ServeReport report_;
  bool served_ = false;

  TaskSet* task_set_ = nullptr;       // live only inside Serve()
  std::atomic<int> remaining_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace knit

#endif  // SRC_SERVE_SERVE_H_
