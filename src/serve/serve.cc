#include "src/serve/serve.h"

#include <algorithm>
#include <chrono>

#include "src/clack/corpus.h"
#include "src/support/mangle.h"

namespace knit {

namespace {

// Re-reports one Diagnostics into another (shard workers accumulate privately —
// Diagnostics is not thread-safe — and Serve merges the failures afterwards).
void MergeDiags(const Diagnostics& from, Diagnostics& into) {
  for (const Diagnostic& d : from.entries()) {
    switch (d.severity) {
      case Severity::kError:
        into.Error(d.loc, d.message);
        break;
      case Severity::kWarning:
        into.Warning(d.loc, d.message);
        break;
      case Severity::kNote:
        into.Note(d.loc, d.message);
        break;
    }
  }
}

// Exact per-component sum of shard profiles: every counter of the aggregate is
// the sum of the shard rows for that component / edge — attribution never
// loses a cycle across shards, same as it never loses one within a shard.
ComponentProfile MergeProfiles(const std::vector<const ComponentProfile*>& parts) {
  ComponentProfile merged;
  std::map<std::string, ComponentProfileEntry> components;
  std::map<std::pair<std::string, std::string>, long long> edges;
  for (const ComponentProfile* part : parts) {
    for (const ComponentProfileEntry& entry : part->components) {
      ComponentProfileEntry& slot = components[entry.component];
      slot.component = entry.component;
      slot.cycles += entry.cycles;
      slot.ifetch_stalls += entry.ifetch_stalls;
      slot.insns += entry.insns;
      slot.calls_in += entry.calls_in;
      slot.calls_out += entry.calls_out;
      slot.bytes_alloc += entry.bytes_alloc;
      slot.bytes_freed += entry.bytes_freed;
      // Shards have disjoint heaps, so their peaks need not coincide in time:
      // the fleet-level peak is the max shard peak, not a sum.
      slot.live_peak = std::max(slot.live_peak, entry.live_peak);
    }
    for (const BoundaryEdge& edge : part->edges) {
      edges[{edge.caller, edge.callee}] += edge.calls;
    }
    merged.total_cycles += part->total_cycles;
    merged.total_ifetch_stalls += part->total_ifetch_stalls;
    merged.total_insns += part->total_insns;
    merged.total_bytes_alloc += part->total_bytes_alloc;
    merged.total_bytes_freed += part->total_bytes_freed;
    merged.events_truncated = merged.events_truncated || part->events_truncated;
  }
  for (auto& [name, entry] : components) {
    merged.components.push_back(entry);
  }
  std::sort(merged.components.begin(), merged.components.end(),
            [](const ComponentProfileEntry& a, const ComponentProfileEntry& b) {
              if (a.cycles != b.cycles) {
                return a.cycles > b.cycles;
              }
              return a.component < b.component;
            });
  for (const auto& [pair, calls] : edges) {
    merged.edges.push_back(BoundaryEdge{pair.first, pair.second, calls});
    if (pair.first != pair.second) {
      merged.boundary_calls += calls;
    }
  }
  std::sort(merged.edges.begin(), merged.edges.end(),
            [](const BoundaryEdge& a, const BoundaryEdge& b) {
              if (a.calls != b.calls) {
                return a.calls > b.calls;
              }
              if (a.caller != b.caller) {
                return a.caller < b.caller;
              }
              return a.callee < b.callee;
            });
  return merged;
}

}  // namespace

uint32_t RouterFleet::FlowHash(const TracePacket& packet) {
  uint32_t hash = 2166136261u;
  auto mix = [&hash](uint8_t byte) { hash = (hash ^ byte) * 16777619u; };
  const std::vector<uint8_t>& f = packet.frame;
  if (f.size() >= 34 && f[12] == 0x08 && f[13] == 0x00) {
    // IPv4: the flow identity is (src address, dst address, protocol), so both
    // directions of unrelated flows spread while one flow stays put.
    for (int i = 26; i < 34; ++i) {
      mix(f[i]);
    }
    mix(f[23]);
  } else {
    // Non-IP (ARP, foreign ethertypes): hash the Ethernet header + input port.
    for (size_t i = 0; i < f.size() && i < 14; ++i) {
      mix(f[i]);
    }
    mix(static_cast<uint8_t>(packet.in_port));
  }
  return hash;
}

int RouterFleet::ShardOf(const TracePacket& packet) const {
  return static_cast<int>(FlowHash(packet) % static_cast<uint32_t>(shards_.size()));
}

Result<std::unique_ptr<RouterFleet>> RouterFleet::FromBuild(
    std::shared_ptr<const KnitBuildResult> build,
    std::map<std::string, std::string> entry_names, const std::string& dev_native,
    const ServeOptions& options, Diagnostics& diags) {
  if (options.shards < 1) {
    diags.Error(SourceLoc::Unknown(), "serve: shards must be >= 1");
    return Result<std::unique_ptr<RouterFleet>>::Failure();
  }
  if (options.batch < 1) {
    diags.Error(SourceLoc::Unknown(), "serve: batch must be >= 1");
    return Result<std::unique_ptr<RouterFleet>>::Failure();
  }
  auto fleet = std::unique_ptr<RouterFleet>(new RouterFleet());
  fleet->build_ = std::move(build);
  fleet->options_ = options;
  if (options.reset_alloc_per_batch) {
    auto reset = entry_names.find("allocReset");
    if (reset != entry_names.end()) {
      fleet->alloc_reset_symbol_ = reset->second;
    }
  }
  for (int i = 0; i < options.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->index = i;
    shard->report.shard = i;
    // The whole point of the fleet: one immutable linked image, N machines.
    shard->machine = std::make_unique<Machine>(fleet->build_->image, options.cost);
    if (options.fuel > 0) {
      shard->machine->set_max_insns(options.fuel);
    }
    if (options.profile) {
      shard->machine->EnableProfiling();
    }
    Result<std::unique_ptr<RouterSession>> session =
        RouterSession::Open(*shard->machine, entry_names, dev_native, diags);
    if (!session.ok()) {
      return Result<std::unique_ptr<RouterFleet>>::Failure();
    }
    shard->session = session.take();
    RunResult init = shard->machine->Call(fleet->build_->init_function);
    if (!init.ok) {
      diags.Error(SourceLoc::Unknown(),
                  "serve: knit__init failed on shard " + std::to_string(i) + ": " + init.error);
      return Result<std::unique_ptr<RouterFleet>>::Failure();
    }
    if (options.profile) {
      // Attribute the serving window only, not image initialization.
      shard->machine->ResetProfile();
    }
    shard->session->set_collect_tx_records(true);
    Shard* raw = shard.get();
    shard->session->SetPacketObserver(
        [raw](uint64_t, long long packet_cycles) { raw->latency.Record(packet_cycles); });
    fleet->shards_.push_back(std::move(shard));
  }
  return fleet;
}

Result<std::unique_ptr<RouterFleet>> RouterFleet::FromClack(const std::string& top_unit,
                                                            const KnitcOptions& build_options,
                                                            const ServeOptions& options,
                                                            Diagnostics& diags) {
  KnitPipeline pipeline(build_options);
  Result<LinkedImage> built = pipeline.Build(ClackKnit(), ClackSources(), top_unit, diags);
  if (!built.ok()) {
    return Result<std::unique_ptr<RouterFleet>>::Failure();
  }
  auto build = std::make_shared<const KnitBuildResult>(
      KnitBuildResultFrom(built.take(), pipeline.metrics()));
  return FromBuild(build, RouterProgram::ClackEntryNames(*build), EnvSymbol("dev", "dev_tx"),
                   options, diags);
}

void RouterFleet::FeedLoop(const std::vector<TracePacket>& trace) {
  for (size_t i = 0; i < trace.size(); ++i) {
    if (stop_.load(std::memory_order_relaxed)) {
      break;
    }
    // Push returns false only for a closed (failed) shard queue; the packet is
    // dropped and stop_ ends the feed on the next iteration.
    shards_[static_cast<size_t>(ShardOf(trace[i]))]->queue->Push(
        PacketRef{&trace[i], static_cast<uint64_t>(i)});
  }
  // Drain protocol, step 1: no more input. Workers finish what is queued.
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->queue->Close();
  }
}

void RouterFleet::WorkerLoop(Shard& shard) {
  std::vector<PacketRef> batch;
  std::vector<const TracePacket*> packets(static_cast<size_t>(options_.batch));
  std::vector<uint64_t> seqs(static_cast<size_t>(options_.batch));
  for (;;) {
    size_t n = shard.queue->PopBatch(batch, static_cast<size_t>(options_.batch));
    if (n == 0) {
      break;  // closed and fully drained
    }
    shard.report.batches++;
    shard.report.max_batch = std::max(shard.report.max_batch, static_cast<long long>(n));
    for (size_t i = 0; i < n; ++i) {
      packets[i] = batch[i].packet;
      seqs[i] = batch[i].seq;
    }
    if (!shard.session->FeedBatch(packets.data(), seqs.data(), n, shard.diags).ok()) {
      shard.failed = true;
      // Failure drain: stop the feed and close our queue so no producer can
      // block forever on a consumer that stopped popping.
      stop_.store(true, std::memory_order_relaxed);
      shard.queue->Close();
      break;
    }
    // Batch boundary is a quiescent point for this shard (no router frame
    // live), so recycling its private arena here is race-free by construction.
    if (!alloc_reset_symbol_.empty()) {
      RunResult reset = shard.machine->Call(alloc_reset_symbol_);
      if (!reset.ok) {
        shard.diags.Error(SourceLoc::Unknown(),
                          "serve: alloc_reset failed on shard " +
                              std::to_string(shard.index) + ": " + reset.error);
        shard.failed = true;
        stop_.store(true, std::memory_order_relaxed);
        shard.queue->Close();
        break;
      }
    }
  }
  shard.report.max_queue_depth = shard.queue->max_depth();
  // Drain protocol, step 2: final snapshot; the session refuses packets after.
  Result<RouterStats> final_stats = shard.session->Close(shard.diags);
  if (final_stats.ok()) {
    shard.report.stats = final_stats.take();
  } else {
    shard.failed = true;
  }
  // Drain protocol, step 3: the last worker out submits the aggregation task —
  // aggregation is itself a task of the set, so Serve() just waits for the set.
  if (remaining_.fetch_sub(1) == 1) {
    task_set_->Submit([this] { Aggregate(); });
  }
}

void RouterFleet::Aggregate() {
  RouterStats total;
  // The image (and so its text) is shared by construction; don't sum it.
  total.text_bytes = shards_[0]->report.stats.text_bytes;
  for (std::unique_ptr<Shard>& shard : shards_) {
    const RouterStats& s = shard->report.stats;
    total.packets += s.packets;
    total.cycles += s.cycles;
    total.ifetch_stalls += s.ifetch_stalls;
    total.in0 += s.in0;
    total.in1 += s.in1;
    total.ip += s.ip;
    total.out += s.out;
    total.drop += s.drop;
    total.tx_count += s.tx_count;
    report_.latency.Merge(shard->latency);
    report_.shards.push_back(shard->report);
  }
  // Trace-order fold of the per-packet digests: a k-way merge by seq across the
  // shards' (already seq-sorted) transmission logs reproduces the exact fold
  // order of a single machine running the whole trace.
  std::vector<size_t> cursor(shards_.size(), 0);
  uint64_t hash = 0;
  for (;;) {
    int best = -1;
    uint64_t best_seq = 0;
    for (size_t k = 0; k < shards_.size(); ++k) {
      const std::vector<TxRecord>& records = shards_[k]->session->tx_records();
      if (cursor[k] < records.size() &&
          (best < 0 || records[cursor[k]].seq < best_seq)) {
        best = static_cast<int>(k);
        best_seq = records[cursor[k]].seq;
      }
    }
    if (best < 0) {
      break;
    }
    hash = FoldTxDigest(hash, shards_[static_cast<size_t>(best)]
                                  ->session->tx_records()[cursor[static_cast<size_t>(best)]]
                                  .digest);
    cursor[static_cast<size_t>(best)]++;
  }
  total.tx_hash = hash;
  if (options_.profile) {
    std::vector<const ComponentProfile*> parts;
    for (std::unique_ptr<Shard>& shard : shards_) {
      parts.push_back(&shard->report.stats.profile);
    }
    total.profile = MergeProfiles(parts);
  }
  report_.total = total;
  report_.p50_cycles = report_.latency.Percentile(0.50);
  report_.p99_cycles = report_.latency.Percentile(0.99);
}

Result<ServeReport> RouterFleet::Serve(const std::vector<TracePacket>& trace,
                                       Diagnostics& diags) {
  if (served_) {
    diags.Error(SourceLoc::Unknown(), "serve: fleet already served (sessions are closed)");
    return Result<ServeReport>::Failure();
  }
  served_ = true;

  int jobs = options_.executor_jobs > 0 ? options_.executor_jobs : shards() + 1;
  // Streaming needs a thread per shard worker plus one for the feed task:
  // bounded queues block, and a blocked producer whose consumer never got a
  // thread is a deadlock. With fewer threads, pre-feed: unbounded queues,
  // sharded up front, closed before any worker runs.
  bool streamed = jobs >= shards() + 1;
  for (std::unique_ptr<Shard>& shard : shards_) {
    shard->queue =
        std::make_unique<PacketQueue>(streamed ? options_.queue_capacity : 0);
  }

  TaskSet tasks;
  task_set_ = &tasks;
  remaining_.store(shards(), std::memory_order_relaxed);
  stop_.store(false, std::memory_order_relaxed);

  if (streamed) {
    tasks.Submit([this, &trace] { FeedLoop(trace); });
  } else {
    FeedLoop(trace);
  }
  for (std::unique_ptr<Shard>& shard : shards_) {
    Shard* raw = shard.get();
    tasks.Submit([this, raw] { WorkerLoop(*raw); });
  }

  Executor executor(jobs);
  auto start = std::chrono::steady_clock::now();
  int threads = executor.Run(tasks);
  auto end = std::chrono::steady_clock::now();
  task_set_ = nullptr;

  bool failed = false;
  for (std::unique_ptr<Shard>& shard : shards_) {
    if (shard->failed) {
      failed = true;
    }
    MergeDiags(shard->diags, diags);
  }
  if (failed) {
    return Result<ServeReport>::Failure();
  }

  report_.wall_seconds = std::chrono::duration<double>(end - start).count();
  report_.packets_per_second =
      report_.wall_seconds > 0 ? double(report_.total.packets) / report_.wall_seconds : 0;
  report_.streamed = streamed;
  report_.threads = threads;
  return report_;
}

}  // namespace knit
