#include "src/serve/latency.h"

#include <bit>
#include <cstddef>

namespace knit {

LatencyHistogram::LatencyHistogram() : buckets_(size_t(kOctaves) * kSub, 0) {}

int LatencyHistogram::BucketIndex(long long value) {
  if (value < 0) {
    value = 0;
  }
  if (value < kSub) {
    return static_cast<int>(value);  // exact low buckets
  }
  // Highest set bit h >= kSubBits: octave (h - kSubBits + 1), sub-bucket = the
  // kSubBits bits below the leading bit.
  int high = 63 - std::countl_zero(static_cast<uint64_t>(value));
  int octave = high - kSubBits + 1;
  if (octave >= kOctaves) {
    octave = kOctaves - 1;
    high = octave + kSubBits - 1;
  }
  int sub = static_cast<int>((value >> (high - kSubBits)) & (kSub - 1));
  return octave * kSub + sub;
}

long long LatencyHistogram::BucketUpperEdge(int index) {
  int octave = index / kSub;
  int sub = index % kSub;
  if (octave == 0) {
    return sub;  // exact
  }
  int high = octave + kSubBits - 1;
  long long base = 1ll << high;
  long long width = 1ll << (high - kSubBits);
  return base + (sub + 1) * width - 1;
}

void LatencyHistogram::Record(long long value) {
  if (value < 0) {
    value = 0;
  }
  buckets_[static_cast<size_t>(BucketIndex(value))]++;
  if (count_ == 0 || value < min_) {
    min_ = value;
  }
  if (value > max_) {
    max_ = value;
  }
  ++count_;
  sum_ += value;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0 || other.min_ < min_) {
      min_ = other.min_;
    }
    if (other.max_ > max_) {
      max_ = other.max_;
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

long long LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  if (q < 0) {
    q = 0;
  }
  if (q > 1) {
    q = 1;
  }
  long long rank = static_cast<long long>(q * double(count_) + 0.5);
  if (rank < 1) {
    rank = 1;
  }
  long long seen = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      long long edge = BucketUpperEdge(static_cast<int>(i));
      return edge > max_ ? max_ : edge;
    }
  }
  return max_;
}

}  // namespace knit
