// Renders MiniC ASTs back to C source. Used to materialize flattened translation
// units (the paper's Knit hands merged C to gcc; we both compile the AST directly
// and can emit the merged source for inspection) and by tests for round-tripping.
#ifndef SRC_MINIC_PRINTER_H_
#define SRC_MINIC_PRINTER_H_

#include <string>

#include "src/minic/ast.h"

namespace knit {

std::string PrintTranslationUnit(const TranslationUnit& unit);
std::string PrintDecl(const Decl& decl);
std::string PrintStmt(const Stmt& stmt, int indent);
std::string PrintExpr(const Expr& expr);

// Renders "T name" for declarations (C declarator syntax, including function
// pointers and arrays).
std::string PrintTypedName(const Type* type, const std::string& name);

}  // namespace knit

#endif  // SRC_MINIC_PRINTER_H_
