#include "src/minic/clexer.h"

#include <cctype>
#include <set>

namespace knit {
namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kKeywords = {
      "void",   "char",  "int",     "unsigned", "struct",  "typedef", "enum",
      "static", "extern", "const",  "if",       "else",    "while",   "for",
      "return", "break", "continue", "sizeof",
  };
  return kKeywords;
}

// Multi-character punctuators, longest first so maximal munch works.
const std::vector<std::string>& Puncts() {
  static const std::vector<std::string> kPuncts = {
      "<<=", ">>=", "...", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
      "&&",  "||",  "+=",  "-=", "*=", "/=", "%=", "&=", "|=", "^=",  "(",  ")",
      "{",   "}",   "[",   "]",  ";",  ",",  ".",  "+",  "-",  "*",   "/",  "%",
      "<",   ">",   "=",   "!",  "~",  "&",  "|",  "^",  "?",  ":",
  };
  return kPuncts;
}

class CLexer {
 public:
  CLexer(const SourceMap& sources, Diagnostics& diags, std::vector<CToken>& out)
      : sources_(sources), diags_(diags), out_(out) {}

  bool LexFile(const std::string& file) {
    if (!included_.insert(file).second) {
      return true;  // include-once
    }
    auto it = sources_.find(file);
    if (it == sources_.end()) {
      diags_.Error(SourceLoc{file, 0, 0}, "no such source file '" + file + "'");
      return false;
    }
    return LexBuffer(it->second, file);
  }

  bool LexBuffer(std::string_view source, const std::string& file) {
    size_t pos = 0;
    int line = 1;
    int column = 1;

    auto here = [&] { return SourceLoc{file, line, column}; };
    auto advance = [&](size_t n) {
      for (size_t i = 0; i < n; ++i) {
        if (source[pos] == '\n') {
          ++line;
          column = 1;
        } else {
          ++column;
        }
        ++pos;
      }
    };
    auto peek = [&](size_t off = 0) -> char {
      return pos + off < source.size() ? source[pos + off] : '\0';
    };

    while (pos < source.size()) {
      char c = peek();
      if (std::isspace(static_cast<unsigned char>(c)) != 0) {
        advance(1);
        continue;
      }
      if (c == '/' && peek(1) == '/') {
        while (pos < source.size() && peek() != '\n') {
          advance(1);
        }
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        SourceLoc start = here();
        advance(2);
        while (pos < source.size() && !(peek() == '*' && peek(1) == '/')) {
          advance(1);
        }
        if (pos >= source.size()) {
          diags_.Error(start, "unterminated block comment");
          return false;
        }
        advance(2);
        continue;
      }
      if (c == '#') {
        // Only `#include "file"` is supported; it must be the construct beginning
        // at this '#'.
        SourceLoc start = here();
        advance(1);
        size_t word_start = pos;
        while (pos < source.size() &&
               std::isalpha(static_cast<unsigned char>(peek())) != 0) {
          advance(1);
        }
        std::string directive(source.substr(word_start, pos - word_start));
        if (directive != "include") {
          diags_.Error(start, "unsupported preprocessor directive '#" + directive +
                                  "' (MiniC supports only #include \"file\")");
          return false;
        }
        while (pos < source.size() && (peek() == ' ' || peek() == '\t')) {
          advance(1);
        }
        if (peek() != '"') {
          diags_.Error(here(), "#include expects a \"file\" name");
          return false;
        }
        advance(1);
        size_t name_start = pos;
        while (pos < source.size() && peek() != '"' && peek() != '\n') {
          advance(1);
        }
        if (peek() != '"') {
          diags_.Error(start, "unterminated #include file name");
          return false;
        }
        std::string name(source.substr(name_start, pos - name_start));
        advance(1);
        if (!LexFile(name)) {
          diags_.Note(start, "included from here");
          return false;
        }
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
        SourceLoc loc = here();
        size_t start = pos;
        while (pos < source.size() &&
               (std::isalnum(static_cast<unsigned char>(peek())) != 0 || peek() == '_')) {
          advance(1);
        }
        std::string text(source.substr(start, pos - start));
        if (text == "const") {
          continue;  // const is accepted and ignored (MiniC has no const semantics)
        }
        CTokenKind kind =
            Keywords().count(text) > 0 ? CTokenKind::kKeyword : CTokenKind::kIdent;
        out_.push_back(CToken{kind, std::move(text), 0, loc});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        SourceLoc loc = here();
        long long value = 0;
        if (c == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
          advance(2);
          while (std::isxdigit(static_cast<unsigned char>(peek())) != 0) {
            char d = peek();
            int digit = std::isdigit(static_cast<unsigned char>(d)) != 0
                            ? d - '0'
                            : std::tolower(d) - 'a' + 10;
            value = value * 16 + digit;
            advance(1);
          }
        } else {
          while (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
            value = value * 10 + (peek() - '0');
            advance(1);
          }
        }
        // Accept and ignore integer suffixes.
        while (peek() == 'u' || peek() == 'U' || peek() == 'l' || peek() == 'L') {
          advance(1);
        }
        out_.push_back(CToken{CTokenKind::kIntLit, "", value, loc});
        continue;
      }
      if (c == '\'') {
        SourceLoc loc = here();
        advance(1);
        long long value = 0;
        if (peek() == '\\') {
          advance(1);
          value = DecodeEscape(peek(), loc);
          advance(1);
        } else {
          value = static_cast<unsigned char>(peek());
          advance(1);
        }
        if (peek() != '\'') {
          diags_.Error(loc, "unterminated character literal");
          return false;
        }
        advance(1);
        out_.push_back(CToken{CTokenKind::kCharLit, "", value, loc});
        continue;
      }
      if (c == '"') {
        SourceLoc loc = here();
        advance(1);
        std::string text;
        while (true) {
          if (pos >= source.size() || peek() == '\n') {
            diags_.Error(loc, "unterminated string literal");
            return false;
          }
          char d = peek();
          advance(1);
          if (d == '"') {
            break;
          }
          if (d == '\\') {
            text += static_cast<char>(DecodeEscape(peek(), loc));
            advance(1);
            continue;
          }
          text += d;
        }
        out_.push_back(CToken{CTokenKind::kStrLit, std::move(text), 0, loc});
        continue;
      }
      // Punctuators, maximal munch.
      bool matched = false;
      for (const std::string& punct : Puncts()) {
        if (source.substr(pos, punct.size()) == punct) {
          out_.push_back(CToken{CTokenKind::kPunct, punct, 0, here()});
          advance(punct.size());
          matched = true;
          break;
        }
      }
      if (!matched) {
        diags_.Error(here(), std::string("unexpected character '") + c + "' in MiniC source");
        return false;
      }
    }
    return true;
  }

 private:
  long long DecodeEscape(char c, const SourceLoc& loc) {
    switch (c) {
      case 'n':
        return '\n';
      case 't':
        return '\t';
      case 'r':
        return '\r';
      case '0':
        return 0;
      case '\\':
        return '\\';
      case '\'':
        return '\'';
      case '"':
        return '"';
      default:
        diags_.Warning(loc, std::string("unknown escape '\\") + c + "'");
        return c;
    }
  }

  const SourceMap& sources_;
  Diagnostics& diags_;
  std::vector<CToken>& out_;
  std::set<std::string> included_;
};

}  // namespace

Result<std::vector<CToken>> LexC(const SourceMap& sources, const std::string& file,
                                 Diagnostics& diags) {
  std::vector<CToken> tokens;
  CLexer lexer(sources, diags, tokens);
  if (!lexer.LexFile(file)) {
    return Result<std::vector<CToken>>::Failure();
  }
  tokens.push_back(CToken{CTokenKind::kEnd, "", 0, SourceLoc{file, 0, 0}});
  return tokens;
}

Result<std::vector<CToken>> LexCString(std::string_view source, const std::string& name,
                                       Diagnostics& diags) {
  SourceMap empty;
  std::vector<CToken> tokens;
  CLexer lexer(empty, diags, tokens);
  if (!lexer.LexBuffer(source, name)) {
    return Result<std::vector<CToken>>::Failure();
  }
  tokens.push_back(CToken{CTokenKind::kEnd, "", 0, SourceLoc{name, 0, 0}});
  return tokens;
}

}  // namespace knit
