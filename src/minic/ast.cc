#include "src/minic/ast.h"

namespace knit {

ExprPtr Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->loc = loc;
  out->int_value = int_value;
  out->text = text;
  out->cast_type = cast_type;
  out->sizeof_type = sizeof_type;
  out->member_arrow = member_arrow;
  out->type = type;
  out->is_lvalue = is_lvalue;
  out->args.reserve(args.size());
  for (const ExprPtr& arg : args) {
    out->args.push_back(arg ? arg->Clone() : nullptr);
  }
  return out;
}

StmtPtr Stmt::Clone() const {
  auto out = std::make_unique<Stmt>();
  out->kind = kind;
  out->loc = loc;
  out->text = text;
  out->decl_type = decl_type;
  out->exprs.reserve(exprs.size());
  for (const ExprPtr& e : exprs) {
    out->exprs.push_back(e ? e->Clone() : nullptr);
  }
  out->stmts.reserve(stmts.size());
  for (const StmtPtr& s : stmts) {
    out->stmts.push_back(s ? s->Clone() : nullptr);
  }
  return out;
}

}  // namespace knit
