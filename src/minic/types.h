// MiniC type system. MiniC targets a 32-bit machine model (the paper's evaluation
// hardware was a Pentium Pro): char is 1 byte, int/unsigned/pointers are 4 bytes.
// Types are interned in a TypeTable and referenced as `const Type*`; pointer equality
// is type equality (struct types are interned by tag + field layout).
#ifndef SRC_MINIC_TYPES_H_
#define SRC_MINIC_TYPES_H_

#include <memory>
#include <string>
#include <vector>

namespace knit {

struct Type;

struct StructField {
  std::string name;
  const Type* type = nullptr;
  int offset = 0;  // computed when the struct is completed
};

struct FuncParam {
  const Type* type = nullptr;
};

struct Type {
  enum class Kind {
    kVoid,
    kChar,      // signed 8-bit
    kInt,       // signed 32-bit
    kUnsigned,  // unsigned 32-bit
    kPointer,
    kArray,
    kStruct,
    kFunc,
  };

  Kind kind = Kind::kVoid;

  // kPointer: pointee; kArray: element; kFunc: return type.
  const Type* base = nullptr;

  // kArray: element count (>= 0).
  int array_count = 0;

  // kStruct:
  std::string struct_tag;           // "" for anonymous (not supported by the parser)
  std::vector<StructField> fields;  // empty while incomplete
  bool complete = false;
  int struct_size = 0;
  int struct_align = 1;

  // kFunc:
  std::vector<FuncParam> params;
  bool variadic = false;

  bool IsInteger() const {
    return kind == Kind::kChar || kind == Kind::kInt || kind == Kind::kUnsigned;
  }
  bool IsPointer() const { return kind == Kind::kPointer; }
  bool IsScalar() const { return IsInteger() || IsPointer(); }
  bool IsVoid() const { return kind == Kind::kVoid; }
  bool IsFunc() const { return kind == Kind::kFunc; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsStruct() const { return kind == Kind::kStruct; }

  // Size/alignment in bytes; 0 for void/func/incomplete structs.
  int SizeOf() const;
  int AlignOf() const;

  // Field lookup for kStruct; nullptr if absent.
  const StructField* FindField(const std::string& name) const;

  // C-ish rendering for diagnostics ("int", "struct packet *", "int (*)(char *)").
  std::string ToString() const;
};

// Owns and interns types. One table is shared across every translation unit of a
// compilation so that `const Type*` equality works across merged/linked units.
class TypeTable {
 public:
  TypeTable();

  const Type* Void() const { return void_; }
  const Type* Char() const { return char_; }
  const Type* Int() const { return int_; }
  const Type* Unsigned() const { return unsigned_; }

  const Type* PointerTo(const Type* base);
  const Type* ArrayOf(const Type* element, int count);
  const Type* Function(const Type* ret, std::vector<FuncParam> params, bool variadic);

  // Returns the struct type for `tag`, creating an incomplete one on first use.
  // Struct tags are a single global namespace within one TypeTable; the flattener
  // renames conflicting tags before merging.
  Type* StructFor(const std::string& tag);

  // Completes `type` with fields, computing layout. Returns false if it was already
  // complete with a *different* layout (redefinition conflict); identical
  // re-completion is accepted (common headers).
  bool CompleteStruct(Type* type, std::vector<StructField> fields);

 private:
  Type* NewType();

  std::vector<std::unique_ptr<Type>> all_;
  const Type* void_;
  const Type* char_;
  const Type* int_;
  const Type* unsigned_;
};

}  // namespace knit

#endif  // SRC_MINIC_TYPES_H_
