#include "src/minic/printer.h"

#include <sstream>

namespace knit {
namespace {

std::string Indent(int n) { return std::string(static_cast<size_t>(n) * 2, ' '); }

std::string EscapeString(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\0':
        out += "\\0";
        break;
      default:
        out += c;
    }
  }
  return out;
}

// Operator precedence for minimal parenthesization. Higher binds tighter.
int Precedence(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kIntLit:
    case Expr::Kind::kStrLit:
    case Expr::Kind::kIdent:
      return 100;
    case Expr::Kind::kCall:
    case Expr::Kind::kIndex:
    case Expr::Kind::kMember:
      return 90;
    case Expr::Kind::kIncDec:
      return expr.int_value != 0 ? 80 : 90;  // prefix : postfix
    case Expr::Kind::kUnary:
    case Expr::Kind::kCast:
    case Expr::Kind::kSizeof:
      return 80;
    case Expr::Kind::kBinary: {
      const std::string& op = expr.text;
      if (op == "*" || op == "/" || op == "%") {
        return 70;
      }
      if (op == "+" || op == "-") {
        return 65;
      }
      if (op == "<<" || op == ">>") {
        return 60;
      }
      if (op == "<" || op == ">" || op == "<=" || op == ">=") {
        return 55;
      }
      if (op == "==" || op == "!=") {
        return 50;
      }
      if (op == "&") {
        return 45;
      }
      if (op == "^") {
        return 44;
      }
      if (op == "|") {
        return 43;
      }
      if (op == "&&") {
        return 40;
      }
      return 39;  // ||
    }
    case Expr::Kind::kCond:
      return 20;
    case Expr::Kind::kAssign:
      return 10;
  }
  return 0;
}

std::string PrintChild(const Expr& child, int parent_precedence) {
  std::string text = PrintExpr(child);
  if (Precedence(child) < parent_precedence) {
    return "(" + text + ")";
  }
  return text;
}

}  // namespace

std::string PrintTypedName(const Type* type, const std::string& name) {
  // Unwind the declarator inside-out.
  std::string decl = name;
  const Type* t = type;
  while (true) {
    switch (t->kind) {
      case Type::Kind::kPointer:
        decl = "*" + decl;
        t = t->base;
        continue;
      case Type::Kind::kArray:
        if (decl.front() == '*') {
          decl = "(" + decl + ")";
        }
        decl += "[" + std::to_string(t->array_count) + "]";
        t = t->base;
        continue;
      case Type::Kind::kFunc: {
        if (!decl.empty() && decl.front() == '*') {
          decl = "(" + decl + ")";
        }
        std::string params;
        if (t->params.empty() && !t->variadic) {
          params = "void";
        } else {
          for (size_t i = 0; i < t->params.size(); ++i) {
            if (i > 0) {
              params += ", ";
            }
            params += PrintTypedName(t->params[i].type, "");
          }
          if (t->variadic) {
            params += params.empty() ? "..." : ", ...";
          }
        }
        decl += "(" + params + ")";
        t = t->base;
        continue;
      }
      default: {
        std::string base = t->ToString();
        if (decl.empty()) {
          return base;
        }
        return base + " " + decl;
      }
    }
  }
}

std::string PrintExpr(const Expr& expr) {
  switch (expr.kind) {
    case Expr::Kind::kIntLit:
      return std::to_string(expr.int_value);
    case Expr::Kind::kStrLit:
      return "\"" + EscapeString(expr.text) + "\"";
    case Expr::Kind::kIdent:
      return expr.text;
    case Expr::Kind::kUnary:
      return expr.text + PrintChild(*expr.args[0], Precedence(expr));
    case Expr::Kind::kBinary:
      return PrintChild(*expr.args[0], Precedence(expr)) + " " + expr.text + " " +
             PrintChild(*expr.args[1], Precedence(expr) + 1);
    case Expr::Kind::kAssign:
      return PrintChild(*expr.args[0], Precedence(expr) + 1) + " " + expr.text + " " +
             PrintChild(*expr.args[1], Precedence(expr));
    case Expr::Kind::kCall: {
      std::string out = PrintChild(*expr.args[0], 90) + "(";
      for (size_t i = 1; i < expr.args.size(); ++i) {
        if (i > 1) {
          out += ", ";
        }
        out += PrintExpr(*expr.args[i]);
      }
      return out + ")";
    }
    case Expr::Kind::kIndex:
      return PrintChild(*expr.args[0], 90) + "[" + PrintExpr(*expr.args[1]) + "]";
    case Expr::Kind::kMember:
      return PrintChild(*expr.args[0], 90) + (expr.member_arrow ? "->" : ".") + expr.text;
    case Expr::Kind::kCast:
      return "(" + PrintTypedName(expr.cast_type, "") + ")" + PrintChild(*expr.args[0], 80);
    case Expr::Kind::kCond:
      return PrintChild(*expr.args[0], 21) + " ? " + PrintExpr(*expr.args[1]) + " : " +
             PrintChild(*expr.args[2], 20);
    case Expr::Kind::kSizeof:
      if (expr.sizeof_type != nullptr) {
        return "sizeof(" + PrintTypedName(expr.sizeof_type, "") + ")";
      }
      return "sizeof " + PrintChild(*expr.args[0], 80);
    case Expr::Kind::kIncDec:
      if (expr.int_value != 0) {
        return expr.text + PrintChild(*expr.args[0], 80);
      }
      return PrintChild(*expr.args[0], 90) + expr.text;
  }
  return "?";
}

std::string PrintStmt(const Stmt& stmt, int indent) {
  std::string pad = Indent(indent);
  switch (stmt.kind) {
    case Stmt::Kind::kEmpty:
      return pad + ";\n";
    case Stmt::Kind::kExpr:
      return pad + PrintExpr(*stmt.exprs[0]) + ";\n";
    case Stmt::Kind::kIf: {
      std::string out = pad + "if (" + PrintExpr(*stmt.exprs[0]) + ")\n";
      out += PrintStmt(*stmt.stmts[0], indent + (stmt.stmts[0]->kind == Stmt::Kind::kBlock ? 0 : 1));
      if (stmt.stmts.size() > 1) {
        out += pad + "else\n";
        out += PrintStmt(*stmt.stmts[1],
                         indent + (stmt.stmts[1]->kind == Stmt::Kind::kBlock ? 0 : 1));
      }
      return out;
    }
    case Stmt::Kind::kWhile:
      return pad + "while (" + PrintExpr(*stmt.exprs[0]) + ")\n" +
             PrintStmt(*stmt.stmts[0],
                       indent + (stmt.stmts[0]->kind == Stmt::Kind::kBlock ? 0 : 1));
    case Stmt::Kind::kFor: {
      std::string init;
      if (stmt.stmts[0]) {
        init = PrintStmt(*stmt.stmts[0], 0);
        // strip trailing newline and the statement's own ';\n' formatting
        while (!init.empty() && (init.back() == '\n' || init.back() == ' ')) {
          init.pop_back();
        }
        if (!init.empty() && init.back() == ';') {
          init.pop_back();
        }
      }
      std::string cond = stmt.exprs[0] ? PrintExpr(*stmt.exprs[0]) : "";
      std::string step = stmt.exprs[1] ? PrintExpr(*stmt.exprs[1]) : "";
      return pad + "for (" + init + "; " + cond + "; " + step + ")\n" +
             PrintStmt(*stmt.stmts[1],
                       indent + (stmt.stmts[1]->kind == Stmt::Kind::kBlock ? 0 : 1));
    }
    case Stmt::Kind::kReturn:
      if (stmt.exprs.empty()) {
        return pad + "return;\n";
      }
      return pad + "return " + PrintExpr(*stmt.exprs[0]) + ";\n";
    case Stmt::Kind::kBreak:
      return pad + "break;\n";
    case Stmt::Kind::kContinue:
      return pad + "continue;\n";
    case Stmt::Kind::kBlock: {
      std::string out = pad + "{\n";
      for (const StmtPtr& child : stmt.stmts) {
        out += PrintStmt(*child, indent + 1);
      }
      return out + pad + "}\n";
    }
    case Stmt::Kind::kLocalDecl: {
      std::string out = pad + PrintTypedName(stmt.decl_type, stmt.text);
      if (!stmt.exprs.empty() && stmt.exprs[0]) {
        out += " = " + PrintExpr(*stmt.exprs[0]);
      }
      return out + ";\n";
    }
  }
  return pad + "/* ? */\n";
}

std::string PrintDecl(const Decl& decl) {
  switch (decl.kind) {
    case Decl::Kind::kFunction: {
      std::string out;
      if (decl.is_static) {
        out += "static ";
      }
      // Re-render with parameter names for definitions.
      std::string params;
      if (decl.func_type->params.empty() && !decl.func_type->variadic) {
        params = "void";
      } else {
        for (size_t i = 0; i < decl.func_type->params.size(); ++i) {
          if (i > 0) {
            params += ", ";
          }
          std::string pname = i < decl.params.size() ? decl.params[i].name : "";
          params += PrintTypedName(decl.func_type->params[i].type, pname);
        }
        if (decl.func_type->variadic) {
          params += ", ...";
        }
      }
      out += PrintTypedName(decl.func_type->base, decl.name + "(" + params + ")");
      if (!decl.is_definition) {
        return out + ";\n";
      }
      return out + "\n" + PrintStmt(*decl.body, 0);
    }
    case Decl::Kind::kGlobalVar: {
      std::string out;
      if (decl.is_static) {
        out += "static ";
      }
      if (decl.is_extern) {
        out += "extern ";
      }
      out += PrintTypedName(decl.var_type, decl.name);
      if (decl.init) {
        out += " = " + PrintExpr(*decl.init);
      } else if (!decl.init_list.empty()) {
        out += " = { ";
        for (size_t i = 0; i < decl.init_list.size(); ++i) {
          if (i > 0) {
            out += ", ";
          }
          out += PrintExpr(*decl.init_list[i]);
        }
        out += " }";
      }
      return out + ";\n";
    }
    case Decl::Kind::kStructDef: {
      std::string out = "struct " + decl.name + " {\n";
      for (const StructField& field : decl.defined_type->fields) {
        out += "  " + PrintTypedName(field.type, field.name) + ";\n";
      }
      return out + "};\n";
    }
    case Decl::Kind::kTypedef:
      return "typedef " + PrintTypedName(decl.defined_type, decl.name) + ";\n";
    case Decl::Kind::kEnumConsts: {
      std::string out = "enum {\n";
      for (const auto& [name, value] : decl.enum_values) {
        out += "  " + name + " = " + std::to_string(value) + ",\n";
      }
      return out + "};\n";
    }
  }
  return "/* ? */\n";
}

std::string PrintTranslationUnit(const TranslationUnit& unit) {
  std::string out;
  out += "/* " + unit.name + " */\n";
  for (const Decl& decl : unit.decls) {
    out += PrintDecl(decl);
    out += "\n";
  }
  return out;
}

}  // namespace knit
