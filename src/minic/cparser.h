// MiniC parser. Produces an untyped TranslationUnit; run Sema (sema.h) afterwards to
// annotate and check types. Typedef names and enum constants are resolved here
// (enum constants are substituted as integer literals, which conveniently makes them
// collision-free when translation units are merged by the flattener).
#ifndef SRC_MINIC_CPARSER_H_
#define SRC_MINIC_CPARSER_H_

#include <string>
#include <string_view>

#include "src/minic/ast.h"
#include "src/minic/clexer.h"
#include "src/minic/types.h"
#include "src/support/diagnostics.h"
#include "src/support/result.h"

namespace knit {

// Parses `file` (resolving #include through `sources`) into a TranslationUnit.
Result<TranslationUnit> ParseC(const SourceMap& sources, const std::string& file,
                               TypeTable& types, Diagnostics& diags);

// Parses a bare string (used heavily by tests and by generated code).
Result<TranslationUnit> ParseCString(std::string_view source, const std::string& name,
                                     TypeTable& types, Diagnostics& diags);

// Parses several files into ONE TranslationUnit (a Knit atomic unit may list several
// .c files; they are compiled together as the unit's content).
Result<TranslationUnit> ParseCFiles(const SourceMap& sources,
                                    const std::vector<std::string>& files,
                                    const std::string& unit_name, TypeTable& types,
                                    Diagnostics& diags);

}  // namespace knit

#endif  // SRC_MINIC_CPARSER_H_
