#include "src/minic/sema.h"

#include <cassert>
#include <vector>

namespace knit {
namespace {

class Sema {
 public:
  Sema(TranslationUnit& unit, TypeTable& types, Diagnostics& diags)
      : unit_(unit), types_(types), diags_(diags) {}

  Result<SemaInfo> Run() {
    if (!CollectToplevel()) {
      return Result<SemaInfo>::Failure();
    }
    DeclareAllocBuiltins();
    for (Decl& decl : unit_.decls) {
      if (decl.kind == Decl::Kind::kFunction && decl.is_definition) {
        if (!CheckFunction(decl)) {
          return Result<SemaInfo>::Failure();
        }
      }
      if (decl.kind == Decl::Kind::kGlobalVar && !decl.is_extern) {
        if (!CheckGlobalInit(decl)) {
          return Result<SemaInfo>::Failure();
        }
      }
    }
    // Undefined = referenced but not defined here.
    for (const auto& [name, type] : info_.functions) {
      if (info_.defined_functions.count(name) == 0 && referenced_.count(name) > 0) {
        info_.undefined.insert(name);
      }
    }
    for (const auto& [name, type] : info_.globals) {
      if (info_.defined_globals.count(name) == 0 && referenced_.count(name) > 0) {
        info_.undefined.insert(name);
      }
    }
    if (diags_.has_errors()) {
      return Result<SemaInfo>::Failure();
    }
    return std::move(info_);
  }

 private:
  // ---- symbol collection ---------------------------------------------------

  bool CollectToplevel() {
    bool ok = true;
    for (const Decl& decl : unit_.decls) {
      if (decl.kind == Decl::Kind::kFunction) {
        auto it = info_.functions.find(decl.name);
        if (it != info_.functions.end() && it->second != decl.func_type) {
          diags_.Error(decl.loc, "conflicting declarations of function '" + decl.name + "': " +
                                     it->second->ToString() + " vs " +
                                     decl.func_type->ToString());
          ok = false;
          continue;
        }
        if (info_.globals.count(decl.name) > 0) {
          diags_.Error(decl.loc, "'" + decl.name + "' declared as both function and variable");
          ok = false;
          continue;
        }
        info_.functions[decl.name] = decl.func_type;
        if (decl.is_definition) {
          if (!info_.defined_functions.insert(decl.name).second) {
            diags_.Error(decl.loc, "function '" + decl.name + "' defined more than once");
            ok = false;
          }
        }
      } else if (decl.kind == Decl::Kind::kGlobalVar) {
        auto it = info_.globals.find(decl.name);
        if (it != info_.globals.end() && it->second != decl.var_type) {
          diags_.Error(decl.loc, "conflicting declarations of global '" + decl.name + "': " +
                                     it->second->ToString() + " vs " + decl.var_type->ToString());
          ok = false;
          continue;
        }
        if (info_.functions.count(decl.name) > 0) {
          diags_.Error(decl.loc, "'" + decl.name + "' declared as both function and variable");
          ok = false;
          continue;
        }
        info_.globals[decl.name] = decl.var_type;
        if (!decl.is_extern) {
          if (!info_.defined_globals.insert(decl.name).second) {
            diags_.Error(decl.loc, "global '" + decl.name + "' defined more than once");
            ok = false;
          }
          if (decl.var_type->IsStruct() && !decl.var_type->complete) {
            diags_.Error(decl.loc, "global '" + decl.name + "' has incomplete type " +
                                       decl.var_type->ToString());
            ok = false;
          }
        }
      }
    }
    return ok;
  }

  // Implicit allocator builtins: `malloc(n)` / `free(p)` are callable without a
  // declaration. They lower to ordinary undefined-symbol calls, which the link
  // stage resolves against the unit's `Alloc` bundle import exactly like any
  // other cross-component call (so devirtualization, cross-unit inlining, and
  // PGO apply unchanged). A TU's own declaration or definition — the allocator
  // units themselves define malloc/free — always wins; the builtins are seeded
  // only when the name is entirely absent.
  void DeclareAllocBuiltins() {
    if (info_.functions.count("malloc") == 0 && info_.globals.count("malloc") == 0) {
      info_.functions["malloc"] = types_.Function(
          types_.PointerTo(types_.Void()), {FuncParam{types_.Unsigned()}}, false);
    }
    if (info_.functions.count("free") == 0 && info_.globals.count("free") == 0) {
      info_.functions["free"] = types_.Function(
          types_.Void(), {FuncParam{types_.PointerTo(types_.Void())}}, false);
    }
  }

  // ---- scopes ----------------------------------------------------------------

  struct Local {
    std::string name;
    const Type* type;
  };

  void PushScope() { scopes_.emplace_back(); }
  void PopScope() { scopes_.pop_back(); }

  bool DeclareLocal(const std::string& name, const Type* type, const SourceLoc& loc) {
    for (const Local& local : scopes_.back()) {
      if (local.name == name) {
        diags_.Error(loc, "redeclaration of '" + name + "' in the same scope");
        return false;
      }
    }
    scopes_.back().push_back(Local{name, type});
    return true;
  }

  const Type* LookupLocal(const std::string& name) const {
    for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope) {
      for (const Local& local : *scope) {
        if (local.name == name) {
          return local.type;
        }
      }
    }
    return nullptr;
  }

  // ---- function bodies -------------------------------------------------------

  bool CheckFunction(Decl& decl) {
    current_return_ = decl.func_type->base;
    scopes_.clear();
    PushScope();
    for (const ParamDecl& param : decl.params) {
      if (!DeclareLocal(param.name, param.type, decl.loc)) {
        return false;
      }
    }
    bool ok = CheckStmt(*decl.body);
    PopScope();
    return ok;
  }

  bool CheckStmt(Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::kEmpty:
      case Stmt::Kind::kBreak:
      case Stmt::Kind::kContinue:
        return true;
      case Stmt::Kind::kExpr:
        return CheckExpr(*stmt.exprs[0]) != nullptr;
      case Stmt::Kind::kIf: {
        bool ok = CheckScalarExpr(*stmt.exprs[0]);
        ok &= CheckStmt(*stmt.stmts[0]);
        if (stmt.stmts.size() > 1) {
          ok &= CheckStmt(*stmt.stmts[1]);
        }
        return ok;
      }
      case Stmt::Kind::kWhile: {
        bool ok = CheckScalarExpr(*stmt.exprs[0]);
        return CheckStmt(*stmt.stmts[0]) && ok;
      }
      case Stmt::Kind::kFor: {
        PushScope();
        bool ok = true;
        if (stmt.stmts[0]) {
          ok &= CheckStmt(*stmt.stmts[0]);
        }
        if (stmt.exprs[0]) {
          ok &= CheckScalarExpr(*stmt.exprs[0]);
        }
        if (stmt.exprs[1]) {
          ok &= CheckExpr(*stmt.exprs[1]) != nullptr;
        }
        ok &= CheckStmt(*stmt.stmts[1]);
        PopScope();
        return ok;
      }
      case Stmt::Kind::kReturn: {
        if (stmt.exprs.empty()) {
          if (!current_return_->IsVoid()) {
            diags_.Error(stmt.loc, "return without a value in a non-void function");
            return false;
          }
          return true;
        }
        const Type* type = CheckExpr(*stmt.exprs[0]);
        if (type == nullptr) {
          return false;
        }
        if (current_return_->IsVoid()) {
          diags_.Error(stmt.loc, "returning a value from a void function");
          return false;
        }
        return RequireConvertible(type, current_return_, stmt.loc, "return value");
      }
      case Stmt::Kind::kBlock: {
        PushScope();
        bool ok = true;
        for (StmtPtr& child : stmt.stmts) {
          ok &= CheckStmt(*child);
        }
        PopScope();
        return ok;
      }
      case Stmt::Kind::kLocalDecl: {
        if (stmt.decl_type->IsVoid() ||
            (stmt.decl_type->IsStruct() && !stmt.decl_type->complete)) {
          diags_.Error(stmt.loc, "local '" + stmt.text + "' has invalid type " +
                                     stmt.decl_type->ToString());
          return false;
        }
        bool ok = DeclareLocal(stmt.text, stmt.decl_type, stmt.loc);
        if (!stmt.exprs.empty() && stmt.exprs[0]) {
          const Type* init = CheckExpr(*stmt.exprs[0]);
          if (init == nullptr) {
            return false;
          }
          ok &= RequireConvertible(init, stmt.decl_type, stmt.loc,
                                   "initializer of '" + stmt.text + "'");
        }
        return ok;
      }
    }
    return true;
  }

  bool CheckScalarExpr(Expr& expr) {
    const Type* type = CheckExpr(expr);
    if (type == nullptr) {
      return false;
    }
    if (!Decayed(type)->IsScalar()) {
      diags_.Error(expr.loc, "condition has non-scalar type " + type->ToString());
      return false;
    }
    return true;
  }

  // ---- global initializers ---------------------------------------------------

  bool CheckGlobalInit(Decl& decl) {
    bool ok = true;
    if (decl.init) {
      const Type* type = CheckExpr(*decl.init);
      if (type == nullptr) {
        return false;
      }
      ok &= RequireConvertible(type, decl.var_type, decl.loc,
                               "initializer of '" + decl.name + "'");
      ok &= RequireConstant(*decl.init);
    }
    for (ExprPtr& element : decl.init_list) {
      const Type* type = CheckExpr(*element);
      if (type == nullptr) {
        return false;
      }
      const Type* target = decl.var_type->IsArray() ? decl.var_type->base : nullptr;
      if (target != nullptr) {
        ok &= RequireConvertible(type, target, element->loc,
                                 "initializer element of '" + decl.name + "'");
      }
      ok &= RequireConstant(*element);
    }
    if (!decl.init_list.empty() && decl.var_type->IsArray() &&
        static_cast<int>(decl.init_list.size()) > decl.var_type->array_count) {
      diags_.Error(decl.loc, "too many initializers for '" + decl.name + "'");
      ok = false;
    }
    if (!decl.init_list.empty() && decl.var_type->IsStruct()) {
      if (decl.init_list.size() > decl.var_type->fields.size()) {
        diags_.Error(decl.loc, "too many initializers for '" + decl.name + "'");
        ok = false;
      }
    }
    return ok;
  }

  // Static initializers must be link-time constants: integer constant expressions,
  // string literals, or addresses of globals/functions (possibly with a cast).
  bool RequireConstant(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kIntLit:
      case Expr::Kind::kStrLit:
        return true;
      case Expr::Kind::kIdent:
        // A function name or global array used as a value is an address constant.
        if (info_.functions.count(expr.text) > 0) {
          return true;
        }
        if (expr.type != nullptr && expr.type->IsArray() &&
            info_.globals.count(expr.text) > 0) {
          return true;
        }
        diags_.Error(expr.loc, "initializer element '" + expr.text + "' is not constant");
        return false;
      case Expr::Kind::kUnary:
        if (expr.text == "&" && expr.args[0]->kind == Expr::Kind::kIdent) {
          return true;  // address of a global (locals can't appear at file scope)
        }
        return RequireConstant(*expr.args[0]);
      case Expr::Kind::kBinary:
        return RequireConstant(*expr.args[0]) && RequireConstant(*expr.args[1]);
      case Expr::Kind::kCast:
      case Expr::Kind::kSizeof:
        return expr.args.empty() || RequireConstant(*expr.args[0]);
      default:
        diags_.Error(expr.loc, "initializer is not a link-time constant");
        return false;
    }
  }

  // ---- expression checking ---------------------------------------------------

  // Array-of-T used as a value decays to pointer-to-T.
  const Type* Decayed(const Type* type) const {
    if (type->IsArray()) {
      return types_.PointerTo(type->base);
    }
    if (type->IsFunc()) {
      return types_.PointerTo(type);
    }
    return type;
  }

  bool RequireConvertible(const Type* from, const Type* to, const SourceLoc& loc,
                          const std::string& what) {
    from = Decayed(from);
    to = Decayed(to);
    if (from == to) {
      return true;
    }
    if (from->IsInteger() && to->IsInteger()) {
      return true;
    }
    if (from->IsPointer() && to->IsPointer()) {
      // void* converts freely; otherwise warn but accept (C is C).
      if (from->base->IsVoid() || to->base->IsVoid()) {
        return true;
      }
      diags_.Warning(loc, what + " converts " + from->ToString() + " to " + to->ToString() +
                              " without a cast");
      return true;
    }
    if (from->IsInteger() && to->IsPointer()) {
      diags_.Warning(loc, what + " makes pointer from integer without a cast");
      return true;
    }
    if (from->IsPointer() && to->IsInteger()) {
      diags_.Warning(loc, what + " makes integer from pointer without a cast");
      return true;
    }
    diags_.Error(loc, what + ": cannot convert " + from->ToString() + " to " + to->ToString());
    return false;
  }

  const Type* Arith(const Type* a, const Type* b) const {
    if (a->kind == Type::Kind::kUnsigned || b->kind == Type::Kind::kUnsigned) {
      return types_.Unsigned();
    }
    return types_.Int();
  }

  // Returns the annotated type, or nullptr after reporting.
  const Type* CheckExpr(Expr& expr) {
    const Type* type = CheckExprInner(expr);
    if (type != nullptr) {
      expr.type = type;
    }
    return type;
  }

  const Type* CheckExprInner(Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kIntLit:
        expr.is_lvalue = false;
        return types_.Int();
      case Expr::Kind::kStrLit:
        expr.is_lvalue = false;
        return types_.PointerTo(types_.Char());
      case Expr::Kind::kIdent: {
        const Type* local = LookupLocal(expr.text);
        if (local != nullptr) {
          expr.is_lvalue = true;
          return local;
        }
        auto git = info_.globals.find(expr.text);
        if (git != info_.globals.end()) {
          referenced_.insert(expr.text);
          expr.is_lvalue = true;
          return git->second;
        }
        auto fit = info_.functions.find(expr.text);
        if (fit != info_.functions.end()) {
          referenced_.insert(expr.text);
          if (!suppress_function_addr_) {
            // Used as a value (stored, passed, compared): its address escapes.
            info_.address_taken.insert(expr.text);
          }
          expr.is_lvalue = false;
          return fit->second;  // function designator
        }
        diags_.Error(expr.loc, "use of undeclared identifier '" + expr.text + "'");
        return nullptr;
      }
      case Expr::Kind::kUnary:
        return CheckUnary(expr);
      case Expr::Kind::kBinary:
        return CheckBinary(expr);
      case Expr::Kind::kAssign:
        return CheckAssign(expr);
      case Expr::Kind::kCall:
        return CheckCall(expr);
      case Expr::Kind::kIndex: {
        const Type* base = CheckExpr(*expr.args[0]);
        const Type* index = CheckExpr(*expr.args[1]);
        if (base == nullptr || index == nullptr) {
          return nullptr;
        }
        base = Decayed(base);
        if (!base->IsPointer()) {
          diags_.Error(expr.loc, "indexed expression has type " + base->ToString() +
                                     ", not pointer/array");
          return nullptr;
        }
        if (!Decayed(index)->IsInteger()) {
          diags_.Error(expr.loc, "array index has non-integer type " + index->ToString());
          return nullptr;
        }
        expr.is_lvalue = true;
        return base->base;
      }
      case Expr::Kind::kMember: {
        const Type* base = CheckExpr(*expr.args[0]);
        if (base == nullptr) {
          return nullptr;
        }
        const Type* struct_type = nullptr;
        if (expr.member_arrow) {
          base = Decayed(base);
          if (!base->IsPointer() || !base->base->IsStruct()) {
            diags_.Error(expr.loc, "'->' applied to non-pointer-to-struct type " +
                                       base->ToString());
            return nullptr;
          }
          struct_type = base->base;
        } else {
          if (!base->IsStruct()) {
            diags_.Error(expr.loc, "'.' applied to non-struct type " + base->ToString());
            return nullptr;
          }
          struct_type = base;
        }
        if (!struct_type->complete) {
          diags_.Error(expr.loc, "member access into incomplete " + struct_type->ToString());
          return nullptr;
        }
        const StructField* field = struct_type->FindField(expr.text);
        if (field == nullptr) {
          diags_.Error(expr.loc, struct_type->ToString() + " has no member '" + expr.text + "'");
          return nullptr;
        }
        expr.is_lvalue = true;
        return field->type;
      }
      case Expr::Kind::kCast: {
        const Type* from = CheckExpr(*expr.args[0]);
        if (from == nullptr) {
          return nullptr;
        }
        expr.is_lvalue = false;
        return expr.cast_type;
      }
      case Expr::Kind::kCond: {
        if (!CheckScalarExpr(*expr.args[0])) {
          return nullptr;
        }
        const Type* a = CheckExpr(*expr.args[1]);
        const Type* b = CheckExpr(*expr.args[2]);
        if (a == nullptr || b == nullptr) {
          return nullptr;
        }
        a = Decayed(a);
        b = Decayed(b);
        expr.is_lvalue = false;
        if (a == b) {
          return a;
        }
        if (a->IsInteger() && b->IsInteger()) {
          return Arith(a, b);
        }
        if (a->IsPointer() && b->IsPointer()) {
          return a;
        }
        diags_.Error(expr.loc, "incompatible conditional branches: " + a->ToString() + " vs " +
                                   b->ToString());
        return nullptr;
      }
      case Expr::Kind::kSizeof: {
        if (expr.sizeof_type == nullptr) {
          const Type* operand = CheckExpr(*expr.args[0]);
          if (operand == nullptr) {
            return nullptr;
          }
          expr.sizeof_type = operand;
          expr.args.clear();
        }
        if (expr.sizeof_type->SizeOf() == 0 && !expr.sizeof_type->IsVoid()) {
          diags_.Error(expr.loc, "sizeof applied to incomplete type " +
                                     expr.sizeof_type->ToString());
          return nullptr;
        }
        expr.is_lvalue = false;
        return types_.Unsigned();
      }
      case Expr::Kind::kIncDec: {
        const Type* operand = CheckExpr(*expr.args[0]);
        if (operand == nullptr) {
          return nullptr;
        }
        if (!expr.args[0]->is_lvalue) {
          diags_.Error(expr.loc, "'" + expr.text + "' requires an lvalue");
          return nullptr;
        }
        if (!operand->IsScalar()) {
          diags_.Error(expr.loc, "'" + expr.text + "' on non-scalar type " +
                                     operand->ToString());
          return nullptr;
        }
        expr.is_lvalue = false;
        return operand;
      }
    }
    return nullptr;
  }

  const Type* CheckUnary(Expr& expr) {
    if (expr.text == "&") {
      const Type* operand = CheckExpr(*expr.args[0]);
      if (operand == nullptr) {
        return nullptr;
      }
      if (operand->IsFunc()) {
        // &function — record address-taken.
        if (expr.args[0]->kind == Expr::Kind::kIdent) {
          info_.address_taken.insert(expr.args[0]->text);
        }
        expr.is_lvalue = false;
        return types_.PointerTo(operand);
      }
      if (!expr.args[0]->is_lvalue) {
        diags_.Error(expr.loc, "'&' requires an lvalue");
        return nullptr;
      }
      expr.is_lvalue = false;
      return types_.PointerTo(operand);
    }
    const Type* operand = CheckExpr(*expr.args[0]);
    if (operand == nullptr) {
      return nullptr;
    }
    if (expr.text == "*") {
      const Type* decayed = Decayed(operand);
      if (!decayed->IsPointer()) {
        diags_.Error(expr.loc, "'*' applied to non-pointer type " + operand->ToString());
        return nullptr;
      }
      if (decayed->base->IsFunc()) {
        expr.is_lvalue = false;
        return decayed->base;  // *fp is still a function designator
      }
      if (decayed->base->IsVoid()) {
        diags_.Error(expr.loc, "dereferencing 'void *'");
        return nullptr;
      }
      expr.is_lvalue = true;
      return decayed->base;
    }
    const Type* decayed = Decayed(operand);
    if (expr.text == "!") {
      if (!decayed->IsScalar()) {
        diags_.Error(expr.loc, "'!' on non-scalar type " + operand->ToString());
        return nullptr;
      }
      expr.is_lvalue = false;
      return types_.Int();
    }
    // "-" and "~"
    if (!decayed->IsInteger()) {
      diags_.Error(expr.loc, "'" + expr.text + "' on non-integer type " + operand->ToString());
      return nullptr;
    }
    expr.is_lvalue = false;
    return decayed->kind == Type::Kind::kUnsigned ? types_.Unsigned() : types_.Int();
  }

  const Type* CheckBinary(Expr& expr) {
    const Type* a = CheckExpr(*expr.args[0]);
    const Type* b = CheckExpr(*expr.args[1]);
    if (a == nullptr || b == nullptr) {
      return nullptr;
    }
    a = Decayed(a);
    b = Decayed(b);
    const std::string& op = expr.text;
    expr.is_lvalue = false;

    if (op == "&&" || op == "||") {
      if (!a->IsScalar() || !b->IsScalar()) {
        diags_.Error(expr.loc, "'" + op + "' on non-scalar operands");
        return nullptr;
      }
      return types_.Int();
    }
    if (op == "==" || op == "!=" || op == "<" || op == ">" || op == "<=" || op == ">=") {
      if (a->IsPointer() != b->IsPointer()) {
        // pointer vs integer: only sensible against a null constant
        const Expr& int_side = a->IsPointer() ? *expr.args[1] : *expr.args[0];
        if (!(int_side.kind == Expr::Kind::kIntLit && int_side.int_value == 0)) {
          diags_.Warning(expr.loc, "comparison between pointer and integer");
        }
      }
      if (!a->IsScalar() || !b->IsScalar()) {
        diags_.Error(expr.loc, "comparison of non-scalar operands");
        return nullptr;
      }
      return types_.Int();
    }
    if (op == "+" || op == "-") {
      if (a->IsPointer() && b->IsInteger()) {
        if (a->base->SizeOf() == 0) {
          diags_.Error(expr.loc, "arithmetic on pointer to incomplete type " + a->ToString());
          return nullptr;
        }
        return a;
      }
      if (op == "+" && a->IsInteger() && b->IsPointer()) {
        if (b->base->SizeOf() == 0) {
          diags_.Error(expr.loc, "arithmetic on pointer to incomplete type " + b->ToString());
          return nullptr;
        }
        return b;
      }
      if (op == "-" && a->IsPointer() && b->IsPointer()) {
        if (a != b) {
          diags_.Warning(expr.loc, "subtraction of pointers to different types");
        }
        return types_.Int();
      }
      if (a->IsInteger() && b->IsInteger()) {
        return Arith(a, b);
      }
      diags_.Error(expr.loc, "invalid operands to '" + op + "': " + a->ToString() + " and " +
                                 b->ToString());
      return nullptr;
    }
    // * / % << >> & | ^  — integer only
    if (!a->IsInteger() || !b->IsInteger()) {
      diags_.Error(expr.loc, "invalid operands to '" + op + "': " + a->ToString() + " and " +
                                 b->ToString());
      return nullptr;
    }
    if (op == "<<" || op == ">>") {
      return a;
    }
    return Arith(a, b);
  }

  const Type* CheckAssign(Expr& expr) {
    const Type* lhs = CheckExpr(*expr.args[0]);
    const Type* rhs = CheckExpr(*expr.args[1]);
    if (lhs == nullptr || rhs == nullptr) {
      return nullptr;
    }
    if (!expr.args[0]->is_lvalue) {
      diags_.Error(expr.loc, "assignment target is not an lvalue");
      return nullptr;
    }
    if (lhs->IsArray() || lhs->IsStruct()) {
      diags_.Error(expr.loc, "cannot assign to " + lhs->ToString() +
                                 " (MiniC has no aggregate assignment; use fields or memcpy)");
      return nullptr;
    }
    if (expr.text == "=") {
      if (!RequireConvertible(rhs, lhs, expr.loc, "assignment")) {
        return nullptr;
      }
    } else {
      // Compound: lhs OP= rhs requires the underlying binary op to make sense.
      std::string op = expr.text.substr(0, expr.text.size() - 1);
      bool pointer_step = lhs->IsPointer() && (op == "+" || op == "-") &&
                          Decayed(rhs)->IsInteger();
      if (!pointer_step && (!Decayed(lhs)->IsInteger() || !Decayed(rhs)->IsInteger())) {
        diags_.Error(expr.loc, "invalid compound assignment '" + expr.text + "' on " +
                                   lhs->ToString());
        return nullptr;
      }
    }
    expr.is_lvalue = false;
    return lhs;
  }

  const Type* CheckCall(Expr& expr) {
    Expr& callee = *expr.args[0];
    // A direct call through a function name is not an address-taking use.
    bool direct = callee.kind == Expr::Kind::kIdent && LookupLocal(callee.text) == nullptr &&
                  info_.functions.count(callee.text) > 0;
    suppress_function_addr_ = direct;
    const Type* callee_type = CheckExpr(callee);
    suppress_function_addr_ = false;
    if (callee_type == nullptr) {
      return nullptr;
    }
    const Type* func = nullptr;
    if (callee_type->IsFunc()) {
      func = callee_type;
    } else if (callee_type->IsPointer() && callee_type->base->IsFunc()) {
      func = callee_type->base;
    } else {
      diags_.Error(expr.loc, "called object has type " + callee_type->ToString() +
                                 ", not a function");
      return nullptr;
    }
    size_t arg_count = expr.args.size() - 1;
    if (func->variadic ? arg_count < func->params.size() : arg_count != func->params.size()) {
      diags_.Error(expr.loc, "call passes " + std::to_string(arg_count) + " arguments; callee "
                             "expects " +
                                 std::to_string(func->params.size()) +
                                 (func->variadic ? "+" : ""));
      return nullptr;
    }
    for (size_t i = 0; i < arg_count; ++i) {
      const Type* arg = CheckExpr(*expr.args[i + 1]);
      if (arg == nullptr) {
        return nullptr;
      }
      if (i < func->params.size()) {
        if (!RequireConvertible(arg, func->params[i].type, expr.args[i + 1]->loc,
                                "argument " + std::to_string(i + 1))) {
          return nullptr;
        }
      } else if (!Decayed(arg)->IsScalar()) {
        diags_.Error(expr.args[i + 1]->loc, "variadic argument must be scalar");
        return nullptr;
      }
    }
    expr.is_lvalue = false;
    return func->base;
  }

  TranslationUnit& unit_;
  TypeTable& types_;
  Diagnostics& diags_;
  SemaInfo info_;
  std::set<std::string> referenced_;
  std::vector<std::vector<Local>> scopes_;
  const Type* current_return_ = nullptr;
  bool suppress_function_addr_ = false;
};

}  // namespace

Result<SemaInfo> AnalyzeTranslationUnit(TranslationUnit& unit, TypeTable& types,
                                        Diagnostics& diags) {
  return Sema(unit, types, diags).Run();
}

}  // namespace knit
