// MiniC semantic analysis: symbol resolution, type checking, and in-place type
// annotation of the AST (Expr::type / Expr::is_lvalue). Codegen requires a TU to
// have passed Sema.
#ifndef SRC_MINIC_SEMA_H_
#define SRC_MINIC_SEMA_H_

#include <map>
#include <set>
#include <string>

#include "src/minic/ast.h"
#include "src/support/diagnostics.h"
#include "src/support/result.h"

namespace knit {

// Facts about the checked TU that later phases want.
struct SemaInfo {
  // name -> type of every function known to the TU (defined or declared).
  std::map<std::string, const Type*> functions;
  // name -> type of every global variable (defined or extern).
  std::map<std::string, const Type*> globals;
  // Functions defined in this TU.
  std::set<std::string> defined_functions;
  // Globals defined (not extern) in this TU.
  std::set<std::string> defined_globals;
  // Functions whose address is taken anywhere in the TU (used as a value rather than
  // called directly) — the inliner and DCE must keep these.
  std::set<std::string> address_taken;
  // Names referenced but not defined here (the object file's undefined symbols).
  std::set<std::string> undefined;
};

// Checks `unit`, annotating expression types. Reports into diags; fails on errors.
Result<SemaInfo> AnalyzeTranslationUnit(TranslationUnit& unit, TypeTable& types,
                                        Diagnostics& diags);

}  // namespace knit

#endif  // SRC_MINIC_SEMA_H_
