// MiniC lexer with a miniature preprocessor: `#include "file"` is resolved through a
// caller-provided virtual file system with include-once semantics. No macros — the
// corpus uses enum constants instead (the paper's Knit likewise leaves cpp to the C
// compiler; our MiniC is preprocessor-free by design).
#ifndef SRC_MINIC_CLEXER_H_
#define SRC_MINIC_CLEXER_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/diagnostics.h"
#include "src/support/result.h"

namespace knit {

// Maps file name -> contents. The whole toolchain works on in-memory sources.
using SourceMap = std::map<std::string, std::string>;

enum class CTokenKind {
  kIdent,
  kKeyword,  // text is the keyword spelling
  kIntLit,   // int_value
  kCharLit,  // int_value
  kStrLit,   // text is decoded contents
  kPunct,    // text is the operator/punctuator spelling
  kEnd,
};

struct CToken {
  CTokenKind kind = CTokenKind::kEnd;
  std::string text;
  long long int_value = 0;
  SourceLoc loc;

  bool IsPunct(const char* spelling) const {
    return kind == CTokenKind::kPunct && text == spelling;
  }
  bool IsKeyword(const char* spelling) const {
    return kind == CTokenKind::kKeyword && text == spelling;
  }
};

// Tokenizes `file` from `sources`, following #include "..." directives (each included
// file is lexed at most once per call). Errors go to diags.
Result<std::vector<CToken>> LexC(const SourceMap& sources, const std::string& file,
                                 Diagnostics& diags);

// Tokenizes a bare string (no includes possible unless present in `sources`).
Result<std::vector<CToken>> LexCString(std::string_view source, const std::string& name,
                                       Diagnostics& diags);

}  // namespace knit

#endif  // SRC_MINIC_CLEXER_H_
