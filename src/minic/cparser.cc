#include "src/minic/cparser.h"

#include <cassert>
#include <functional>
#include <map>

namespace knit {
namespace {

class CParser {
 public:
  CParser(std::vector<CToken> tokens, TypeTable& types, Diagnostics& diags)
      : tokens_(std::move(tokens)), types_(types), diags_(diags) {}

  bool ParseInto(TranslationUnit& unit) {
    while (!At(CTokenKind::kEnd)) {
      if (!ParseTopDecl(unit)) {
        return false;
      }
    }
    return true;
  }

 private:
  // ---- token helpers -------------------------------------------------------

  const CToken& Cur() const { return tokens_[pos_]; }
  const CToken& Next() const {
    return pos_ + 1 < tokens_.size() ? tokens_[pos_ + 1] : tokens_.back();
  }
  bool At(CTokenKind kind) const { return Cur().kind == kind; }
  bool AtPunct(const char* spelling) const { return Cur().IsPunct(spelling); }
  bool AtKeyword(const char* spelling) const { return Cur().IsKeyword(spelling); }
  CToken Take() { return tokens_[pos_++]; }

  bool ExpectPunct(const char* spelling, const char* context) {
    if (!AtPunct(spelling)) {
      diags_.Error(Cur().loc, std::string("expected '") + spelling + "' " + context +
                                  ", found " + Describe(Cur()));
      return false;
    }
    ++pos_;
    return true;
  }

  static std::string Describe(const CToken& token) {
    switch (token.kind) {
      case CTokenKind::kIdent:
      case CTokenKind::kKeyword:
      case CTokenKind::kPunct:
        return "'" + token.text + "'";
      case CTokenKind::kIntLit:
      case CTokenKind::kCharLit:
        return "integer literal";
      case CTokenKind::kStrLit:
        return "string literal";
      case CTokenKind::kEnd:
        return "end of input";
    }
    return "token";
  }

  // ---- type parsing --------------------------------------------------------

  bool AtTypeStart() const {
    if (AtKeyword("void") || AtKeyword("char") || AtKeyword("int") || AtKeyword("unsigned") ||
        AtKeyword("struct")) {
      return true;
    }
    return At(CTokenKind::kIdent) && typedefs_.count(Cur().text) > 0;
  }

  // Parses the base type: void/char/int/unsigned/struct tag/typedef-name.
  const Type* ParseBaseType() {
    if (AtKeyword("void")) {
      Take();
      return types_.Void();
    }
    if (AtKeyword("char")) {
      Take();
      return types_.Char();
    }
    if (AtKeyword("int")) {
      Take();
      return types_.Int();
    }
    if (AtKeyword("unsigned")) {
      Take();
      if (AtKeyword("char")) {
        Take();
        return types_.Char();  // model simplification: unsigned char == char (8-bit)
      }
      if (AtKeyword("int")) {
        Take();
      }
      return types_.Unsigned();
    }
    if (AtKeyword("struct")) {
      Take();
      if (!At(CTokenKind::kIdent)) {
        diags_.Error(Cur().loc, "expected struct tag, found " + Describe(Cur()));
        return nullptr;
      }
      std::string tag = Take().text;
      return types_.StructFor(tag);
    }
    if (At(CTokenKind::kIdent)) {
      auto it = typedefs_.find(Cur().text);
      if (it != typedefs_.end()) {
        Take();
        return it->second;
      }
    }
    diags_.Error(Cur().loc, "expected a type, found " + Describe(Cur()));
    return nullptr;
  }

  // C declarator parsing. Returns the complete type and the declared name ("" when
  // `allow_abstract` and no name is present). Uses the classic approach: build an
  // inside-out chain of type constructors, then apply them to the base type.
  struct Declarator {
    const Type* type = nullptr;
    std::string name;
    std::vector<ParamDecl> params;  // set when the outermost constructor is a function
    bool is_function = false;
    bool variadic = false;
  };

  bool ParseDeclarator(const Type* base, bool allow_abstract, Declarator& out) {
    // C declarator semantics, realized with delayed type construction. Each nesting
    // level parses `'*'* direct suffix*` and returns a Wrap: given the incoming type
    // T it (1) wraps T in the level's pointers, (2) applies the suffixes
    // right-to-left (so `x[2][3]` is array-2 of array-3), then (3) hands the result
    // to the inner declarator. Thus `int (*fp)(int)` makes fp a pointer to function,
    // while `int *f(void)` makes f a function returning int*.
    using Wrap = std::function<const Type*(const Type*)>;
    std::string name;
    std::vector<ParamDecl> named_params;
    bool have_named_params = false;
    bool variadic_params = false;
    bool failed = false;

    std::function<Wrap()> parse_one = [&]() -> Wrap {
      int stars = 0;
      while (AtPunct("*")) {
        Take();
        ++stars;
      }
      Wrap inner;
      bool name_bound_here = false;
      if (AtPunct("(") && IsNestedDeclaratorParen()) {
        Take();
        inner = parse_one();
        if (failed || !ExpectPunct(")", "to close declarator")) {
          failed = true;
          return [](const Type* t) { return t; };
        }
      } else if (At(CTokenKind::kIdent)) {
        name = Take().text;
        name_bound_here = true;
        inner = [](const Type* t) { return t; };
      } else if (allow_abstract) {
        inner = [](const Type* t) { return t; };
      } else {
        diags_.Error(Cur().loc, "expected declarator name, found " + Describe(Cur()));
        failed = true;
        return [](const Type* t) { return t; };
      }
      std::vector<Wrap> suffixes;
      bool first_suffix = true;
      while (!failed) {
        if (AtPunct("[")) {
          Take();
          int count = -1;  // unspecified; completed from the initializer
          if (At(CTokenKind::kIntLit) || At(CTokenKind::kCharLit)) {
            count = static_cast<int>(Take().int_value);
          } else if (At(CTokenKind::kIdent)) {
            auto it = enum_consts_.find(Cur().text);
            if (it == enum_consts_.end()) {
              diags_.Error(Cur().loc, "array size must be an integer or enum constant");
              failed = true;
              break;
            }
            count = static_cast<int>(it->second);
            Take();
          }
          if (!ExpectPunct("]", "to close array size")) {
            failed = true;
            break;
          }
          suffixes.push_back(
              [this, count](const Type* t) { return types_.ArrayOf(t, count); });
          first_suffix = false;
          continue;
        }
        if (AtPunct("(")) {
          Take();
          std::vector<ParamDecl> params;
          bool variadic = false;
          if (!ParseParamList(params, variadic)) {
            failed = true;
            break;
          }
          if (name_bound_here && first_suffix) {
            // `f(int a, int b)` directly after the name: these are the named
            // parameters of a potential function definition.
            named_params = params;
            have_named_params = true;
            variadic_params = variadic;
          }
          first_suffix = false;
          suffixes.push_back([this, params, variadic](const Type* t) {
            std::vector<FuncParam> fp;
            fp.reserve(params.size());
            for (const ParamDecl& p : params) {
              fp.push_back(FuncParam{p.type});
            }
            return types_.Function(t, std::move(fp), variadic);
          });
          continue;
        }
        break;
      }
      return [this, inner, suffixes, stars](const Type* t) {
        const Type* cur = t;
        for (int i = 0; i < stars; ++i) {
          cur = types_.PointerTo(cur);
        }
        for (auto it = suffixes.rbegin(); it != suffixes.rend(); ++it) {
          cur = (*it)(cur);
        }
        return inner(cur);
      };
    };

    Wrap chain = parse_one();
    if (failed) {
      return false;
    }
    out.type = chain(base);
    if (out.type == nullptr) {
      return false;
    }
    out.name = std::move(name);
    out.is_function = have_named_params && out.type->IsFunc();
    out.params = std::move(named_params);
    out.variadic = variadic_params;
    return true;
  }

  // Distinguish `(*fp)(...)` style nesting from a parameter list `(void)` /
  // `(int x)`. A nested declarator paren is followed by '*' , '(' or an identifier
  // that is NOT a typedef name.
  bool IsNestedDeclaratorParen() const {
    const CToken& next = Next();
    if (next.IsPunct("*") || next.IsPunct("(")) {
      return true;
    }
    if (next.kind == CTokenKind::kIdent && typedefs_.count(next.text) == 0) {
      return true;
    }
    return false;
  }

  bool ParseParamList(std::vector<ParamDecl>& params, bool& variadic) {
    variadic = false;
    if (AtPunct(")")) {
      Take();
      return true;  // () — unspecified params, treated as (void)
    }
    if (AtKeyword("void") && Next().IsPunct(")")) {
      Take();
      Take();
      return true;
    }
    while (true) {
      if (AtPunct("...")) {
        Take();
        variadic = true;
        break;
      }
      const Type* base = ParseBaseType();
      if (base == nullptr) {
        return false;
      }
      Declarator d;
      if (!ParseDeclarator(base, /*allow_abstract=*/true, d)) {
        return false;
      }
      const Type* type = d.type;
      if (type->IsArray()) {
        type = types_.PointerTo(type->base);  // arrays decay in parameters
      }
      params.push_back(ParamDecl{d.name, type});
      if (AtPunct(",")) {
        Take();
        continue;
      }
      break;
    }
    return ExpectPunct(")", "to close parameter list");
  }

  // Parses a type-name (for casts and sizeof): base type + abstract declarator.
  const Type* ParseTypeName() {
    const Type* base = ParseBaseType();
    if (base == nullptr) {
      return nullptr;
    }
    Declarator d;
    if (!ParseDeclarator(base, /*allow_abstract=*/true, d)) {
      return nullptr;
    }
    if (!d.name.empty()) {
      diags_.Error(Cur().loc, "type name may not declare '" + d.name + "'");
      return nullptr;
    }
    return d.type;
  }

  // ---- top-level declarations ---------------------------------------------

  bool ParseTopDecl(TranslationUnit& unit) {
    if (AtKeyword("typedef")) {
      return ParseTypedef(unit);
    }
    if (AtKeyword("enum")) {
      return ParseEnum(unit);
    }
    if (AtKeyword("struct") && Next().kind == CTokenKind::kIdent &&
        (tokens_[pos_ + 2].IsPunct("{") || tokens_[pos_ + 2].IsPunct(";"))) {
      return ParseStructDef(unit);
    }
    bool is_static = false;
    bool is_extern = false;
    while (AtKeyword("static") || AtKeyword("extern")) {
      if (Take().text == "static") {
        is_static = true;
      } else {
        is_extern = true;
      }
    }
    const Type* base = ParseBaseType();
    if (base == nullptr) {
      return false;
    }
    while (true) {
      Declarator d;
      SourceLoc loc = Cur().loc;
      if (!ParseDeclarator(base, /*allow_abstract=*/false, d)) {
        return false;
      }
      if (d.is_function) {
        if (AtPunct("{")) {
          return ParseFunctionDefinition(unit, d, is_static, loc);
        }
        Decl decl;
        decl.kind = Decl::Kind::kFunction;
        decl.loc = loc;
        decl.name = d.name;
        decl.func_type = d.type;
        decl.params = d.params;
        decl.is_static = is_static;
        decl.is_definition = false;
        unit.decls.push_back(std::move(decl));
      } else {
        Decl decl;
        decl.kind = Decl::Kind::kGlobalVar;
        decl.loc = loc;
        decl.name = d.name;
        decl.var_type = d.type;
        decl.is_static = is_static;
        decl.is_extern = is_extern;
        if (AtPunct("=")) {
          Take();
          if (!ParseInitializer(decl)) {
            return false;
          }
        }
        // Complete unsized arrays from their initializer.
        if (decl.var_type->IsArray() && decl.var_type->array_count < 0) {
          if (decl.init_list.empty()) {
            diags_.Error(loc, "array '" + decl.name + "' has no size and no initializer");
            return false;
          }
          decl.var_type =
              types_.ArrayOf(decl.var_type->base, static_cast<int>(decl.init_list.size()));
        }
        unit.decls.push_back(std::move(decl));
      }
      if (AtPunct(",")) {
        Take();
        continue;
      }
      return ExpectPunct(";", "after declaration");
    }
  }

  bool ParseInitializer(Decl& decl) {
    if (AtPunct("{")) {
      Take();
      while (!AtPunct("}")) {
        ExprPtr element = ParseAssign();
        if (!element) {
          return false;
        }
        decl.init_list.push_back(std::move(element));
        if (AtPunct(",")) {
          Take();
        }
      }
      Take();  // }
      return true;
    }
    decl.init = ParseAssign();
    return decl.init != nullptr;
  }

  bool ParseTypedef(TranslationUnit& unit) {
    SourceLoc loc = Take().loc;  // typedef
    const Type* base = nullptr;
    // Allow `typedef struct tag { ... } name;` as well as simple base types.
    if (AtKeyword("struct") && Next().kind == CTokenKind::kIdent &&
        tokens_[pos_ + 2].IsPunct("{")) {
      if (!ParseStructDefNoSemi(unit, base)) {
        return false;
      }
    } else {
      base = ParseBaseType();
      if (base == nullptr) {
        return false;
      }
    }
    Declarator d;
    if (!ParseDeclarator(base, /*allow_abstract=*/false, d)) {
      return false;
    }
    typedefs_[d.name] = d.type;
    Decl decl;
    decl.kind = Decl::Kind::kTypedef;
    decl.loc = loc;
    decl.name = d.name;
    decl.defined_type = d.type;
    unit.decls.push_back(std::move(decl));
    return ExpectPunct(";", "after typedef");
  }

  bool ParseStructDef(TranslationUnit& unit) {
    const Type* type = nullptr;
    if (Next().kind == CTokenKind::kIdent && tokens_[pos_ + 2].IsPunct(";")) {
      // Forward declaration: struct foo;
      Take();  // struct
      std::string tag = Take().text;
      types_.StructFor(tag);
      Take();  // ;
      return true;
    }
    if (!ParseStructDefNoSemi(unit, type)) {
      return false;
    }
    return ExpectPunct(";", "after struct definition");
  }

  bool ParseStructDefNoSemi(TranslationUnit& unit, const Type*& out_type) {
    SourceLoc loc = Take().loc;  // struct
    std::string tag = Take().text;
    Type* type = types_.StructFor(tag);
    if (!ExpectPunct("{", "to open struct body")) {
      return false;
    }
    std::vector<StructField> fields;
    while (!AtPunct("}")) {
      const Type* base = ParseBaseType();
      if (base == nullptr) {
        return false;
      }
      while (true) {
        Declarator d;
        if (!ParseDeclarator(base, /*allow_abstract=*/false, d)) {
          return false;
        }
        fields.push_back(StructField{d.name, d.type, 0});
        if (AtPunct(",")) {
          Take();
          continue;
        }
        break;
      }
      if (!ExpectPunct(";", "after struct field")) {
        return false;
      }
    }
    Take();  // }
    if (!types_.CompleteStruct(type, std::move(fields))) {
      diags_.Error(loc, "struct '" + tag + "' redefined with a different layout");
      return false;
    }
    Decl decl;
    decl.kind = Decl::Kind::kStructDef;
    decl.loc = loc;
    decl.name = tag;
    decl.defined_type = type;
    unit.decls.push_back(std::move(decl));
    out_type = type;
    return true;
  }

  bool ParseEnum(TranslationUnit& unit) {
    SourceLoc loc = Take().loc;  // enum
    if (!ExpectPunct("{", "after 'enum' (MiniC supports only anonymous enums)")) {
      return false;
    }
    Decl decl;
    decl.kind = Decl::Kind::kEnumConsts;
    decl.loc = loc;
    long long next_value = 0;
    while (!AtPunct("}")) {
      if (!At(CTokenKind::kIdent)) {
        diags_.Error(Cur().loc, "expected enum constant name, found " + Describe(Cur()));
        return false;
      }
      std::string name = Take().text;
      if (AtPunct("=")) {
        Take();
        ExprPtr value = ParseConditional();
        if (!value) {
          return false;
        }
        long long folded = 0;
        if (!FoldConst(*value, folded)) {
          diags_.Error(value->loc, "enum value for '" + name + "' is not a constant expression");
          return false;
        }
        next_value = folded;
      }
      enum_consts_[name] = next_value;
      decl.enum_values.emplace_back(name, next_value);
      ++next_value;
      if (AtPunct(",")) {
        Take();
      }
    }
    Take();  // }
    unit.decls.push_back(std::move(decl));
    return ExpectPunct(";", "after enum");
  }

  bool ParseFunctionDefinition(TranslationUnit& unit, const Declarator& d, bool is_static,
                               SourceLoc loc) {
    for (const ParamDecl& p : d.params) {
      if (p.name.empty()) {
        diags_.Error(loc, "function definition '" + d.name + "' has an unnamed parameter");
        return false;
      }
    }
    Decl decl;
    decl.kind = Decl::Kind::kFunction;
    decl.loc = loc;
    decl.name = d.name;
    decl.func_type = d.type;
    decl.params = d.params;
    decl.is_static = is_static;
    decl.is_definition = true;
    decl.body = ParseBlock();
    if (!decl.body) {
      return false;
    }
    unit.decls.push_back(std::move(decl));
    return true;
  }

  // ---- statements ----------------------------------------------------------

  StmtPtr ParseBlock() {
    auto block = std::make_unique<Stmt>();
    block->kind = Stmt::Kind::kBlock;
    block->loc = Cur().loc;
    if (!ExpectPunct("{", "to open block")) {
      return nullptr;
    }
    while (!AtPunct("}")) {
      if (At(CTokenKind::kEnd)) {
        diags_.Error(Cur().loc, "unexpected end of input inside block");
        return nullptr;
      }
      StmtPtr stmt = ParseStmt();
      if (!stmt) {
        return nullptr;
      }
      block->stmts.push_back(std::move(stmt));
    }
    Take();  // }
    return block;
  }

  StmtPtr ParseStmt() {
    SourceLoc loc = Cur().loc;
    if (AtPunct("{")) {
      return ParseBlock();
    }
    if (AtPunct(";")) {
      Take();
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = Stmt::Kind::kEmpty;
      stmt->loc = loc;
      return stmt;
    }
    if (AtKeyword("if")) {
      Take();
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = Stmt::Kind::kIf;
      stmt->loc = loc;
      if (!ExpectPunct("(", "after 'if'")) {
        return nullptr;
      }
      stmt->exprs.push_back(ParseExpr());
      if (!stmt->exprs[0] || !ExpectPunct(")", "after if condition")) {
        return nullptr;
      }
      stmt->stmts.push_back(ParseStmt());
      if (!stmt->stmts[0]) {
        return nullptr;
      }
      if (AtKeyword("else")) {
        Take();
        stmt->stmts.push_back(ParseStmt());
        if (!stmt->stmts[1]) {
          return nullptr;
        }
      }
      return stmt;
    }
    if (AtKeyword("while")) {
      Take();
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = Stmt::Kind::kWhile;
      stmt->loc = loc;
      if (!ExpectPunct("(", "after 'while'")) {
        return nullptr;
      }
      stmt->exprs.push_back(ParseExpr());
      if (!stmt->exprs[0] || !ExpectPunct(")", "after while condition")) {
        return nullptr;
      }
      stmt->stmts.push_back(ParseStmt());
      return stmt->stmts[0] ? std::move(stmt) : nullptr;
    }
    if (AtKeyword("for")) {
      Take();
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = Stmt::Kind::kFor;
      stmt->loc = loc;
      if (!ExpectPunct("(", "after 'for'")) {
        return nullptr;
      }
      // init: declaration, expression, or empty
      if (AtPunct(";")) {
        Take();
        stmt->stmts.push_back(nullptr);
      } else if (AtTypeStart()) {
        StmtPtr init = ParseLocalDecl();
        if (!init) {
          return nullptr;
        }
        stmt->stmts.push_back(std::move(init));
      } else {
        auto init = std::make_unique<Stmt>();
        init->kind = Stmt::Kind::kExpr;
        init->loc = Cur().loc;
        init->exprs.push_back(ParseExpr());
        if (!init->exprs[0] || !ExpectPunct(";", "after for-init")) {
          return nullptr;
        }
        stmt->stmts.push_back(std::move(init));
      }
      // condition
      if (AtPunct(";")) {
        stmt->exprs.push_back(nullptr);
      } else {
        stmt->exprs.push_back(ParseExpr());
        if (!stmt->exprs[0]) {
          return nullptr;
        }
      }
      if (!ExpectPunct(";", "after for-condition")) {
        return nullptr;
      }
      // step
      if (AtPunct(")")) {
        stmt->exprs.push_back(nullptr);
      } else {
        stmt->exprs.push_back(ParseExpr());
        if (!stmt->exprs[1]) {
          return nullptr;
        }
      }
      if (!ExpectPunct(")", "after for header")) {
        return nullptr;
      }
      stmt->stmts.push_back(ParseStmt());
      return stmt->stmts[1] ? std::move(stmt) : nullptr;
    }
    if (AtKeyword("return")) {
      Take();
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = Stmt::Kind::kReturn;
      stmt->loc = loc;
      if (!AtPunct(";")) {
        stmt->exprs.push_back(ParseExpr());
        if (!stmt->exprs[0]) {
          return nullptr;
        }
      }
      return ExpectPunct(";", "after return") ? std::move(stmt) : nullptr;
    }
    if (AtKeyword("break") || AtKeyword("continue")) {
      bool is_break = Take().text == "break";
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = is_break ? Stmt::Kind::kBreak : Stmt::Kind::kContinue;
      stmt->loc = loc;
      return ExpectPunct(";", "after break/continue") ? std::move(stmt) : nullptr;
    }
    if (AtTypeStart()) {
      return ParseLocalDecl();
    }
    // Expression statement.
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = Stmt::Kind::kExpr;
    stmt->loc = loc;
    stmt->exprs.push_back(ParseExpr());
    if (!stmt->exprs[0]) {
      return nullptr;
    }
    return ExpectPunct(";", "after expression") ? std::move(stmt) : nullptr;
  }

  // One or more comma-separated local declarations sharing a base type. Multiple
  // declarators become a block of kLocalDecl statements.
  StmtPtr ParseLocalDecl() {
    SourceLoc loc = Cur().loc;
    const Type* base = ParseBaseType();
    if (base == nullptr) {
      return nullptr;
    }
    std::vector<StmtPtr> decls;
    while (true) {
      Declarator d;
      if (!ParseDeclarator(base, /*allow_abstract=*/false, d)) {
        return nullptr;
      }
      auto stmt = std::make_unique<Stmt>();
      stmt->kind = Stmt::Kind::kLocalDecl;
      stmt->loc = loc;
      stmt->text = d.name;
      stmt->decl_type = d.type;
      if (AtPunct("=")) {
        Take();
        stmt->exprs.push_back(ParseAssign());
        if (!stmt->exprs[0]) {
          return nullptr;
        }
      }
      if (stmt->decl_type->IsArray() && stmt->decl_type->array_count < 0) {
        diags_.Error(loc, "local array '" + d.name + "' must have an explicit size");
        return nullptr;
      }
      decls.push_back(std::move(stmt));
      if (AtPunct(",")) {
        Take();
        continue;
      }
      break;
    }
    if (!ExpectPunct(";", "after declaration")) {
      return nullptr;
    }
    if (decls.size() == 1) {
      return std::move(decls[0]);
    }
    auto block = std::make_unique<Stmt>();
    block->kind = Stmt::Kind::kBlock;
    block->loc = loc;
    block->stmts = std::move(decls);
    return block;
  }

  // ---- expressions ---------------------------------------------------------

  ExprPtr ParseExpr() { return ParseAssign(); }

  ExprPtr ParseAssign() {
    ExprPtr lhs = ParseConditional();
    if (!lhs) {
      return nullptr;
    }
    static const char* kAssignOps[] = {"=",  "+=", "-=", "*=", "/=",
                                       "%=", "&=", "|=", "^=", "<<=", ">>="};
    for (const char* op : kAssignOps) {
      if (AtPunct(op)) {
        SourceLoc loc = Take().loc;
        ExprPtr rhs = ParseAssign();
        if (!rhs) {
          return nullptr;
        }
        auto out = std::make_unique<Expr>();
        out->kind = Expr::Kind::kAssign;
        out->loc = loc;
        out->text = op;
        out->args.push_back(std::move(lhs));
        out->args.push_back(std::move(rhs));
        return out;
      }
    }
    return lhs;
  }

  ExprPtr ParseConditional() {
    ExprPtr cond = ParseBinary(0);
    if (!cond) {
      return nullptr;
    }
    if (!AtPunct("?")) {
      return cond;
    }
    SourceLoc loc = Take().loc;
    ExprPtr then_expr = ParseExpr();
    if (!then_expr || !ExpectPunct(":", "in conditional expression")) {
      return nullptr;
    }
    ExprPtr else_expr = ParseConditional();
    if (!else_expr) {
      return nullptr;
    }
    auto out = std::make_unique<Expr>();
    out->kind = Expr::Kind::kCond;
    out->loc = loc;
    out->args.push_back(std::move(cond));
    out->args.push_back(std::move(then_expr));
    out->args.push_back(std::move(else_expr));
    return out;
  }

  // Precedence-climbing over binary operators.
  struct BinOp {
    const char* spelling;
    int precedence;
  };

  static const BinOp* FindBinOp(const CToken& token) {
    static const BinOp kOps[] = {
        {"||", 1}, {"&&", 2}, {"|", 3},  {"^", 4},  {"&", 5},  {"==", 6}, {"!=", 6},
        {"<", 7},  {">", 7},  {"<=", 7}, {">=", 7}, {"<<", 8}, {">>", 8}, {"+", 9},
        {"-", 9},  {"*", 10}, {"/", 10}, {"%", 10},
    };
    if (token.kind != CTokenKind::kPunct) {
      return nullptr;
    }
    for (const BinOp& op : kOps) {
      if (token.text == op.spelling) {
        return &op;
      }
    }
    return nullptr;
  }

  ExprPtr ParseBinary(int min_precedence) {
    ExprPtr lhs = ParseUnary();
    if (!lhs) {
      return nullptr;
    }
    while (true) {
      const BinOp* op = FindBinOp(Cur());
      if (op == nullptr || op->precedence < min_precedence) {
        return lhs;
      }
      SourceLoc loc = Take().loc;
      ExprPtr rhs = ParseBinary(op->precedence + 1);
      if (!rhs) {
        return nullptr;
      }
      auto out = std::make_unique<Expr>();
      out->kind = Expr::Kind::kBinary;
      out->loc = loc;
      out->text = op->spelling;
      out->args.push_back(std::move(lhs));
      out->args.push_back(std::move(rhs));
      lhs = std::move(out);
    }
  }

  ExprPtr ParseUnary() {
    SourceLoc loc = Cur().loc;
    if (AtPunct("-") || AtPunct("!") || AtPunct("~") || AtPunct("&") || AtPunct("*")) {
      std::string op = Take().text;
      ExprPtr operand = ParseUnary();
      if (!operand) {
        return nullptr;
      }
      auto out = std::make_unique<Expr>();
      out->kind = Expr::Kind::kUnary;
      out->loc = loc;
      out->text = op;
      out->args.push_back(std::move(operand));
      return out;
    }
    if (AtPunct("+")) {
      Take();
      return ParseUnary();
    }
    if (AtPunct("++") || AtPunct("--")) {
      std::string op = Take().text;
      ExprPtr operand = ParseUnary();
      if (!operand) {
        return nullptr;
      }
      auto out = std::make_unique<Expr>();
      out->kind = Expr::Kind::kIncDec;
      out->loc = loc;
      out->text = op;
      out->int_value = 1;  // prefix
      out->args.push_back(std::move(operand));
      return out;
    }
    if (AtKeyword("sizeof")) {
      Take();
      auto out = std::make_unique<Expr>();
      out->kind = Expr::Kind::kSizeof;
      out->loc = loc;
      if (AtPunct("(") && NextIsTypeStart()) {
        Take();
        out->sizeof_type = ParseTypeName();
        if (out->sizeof_type == nullptr || !ExpectPunct(")", "after sizeof type")) {
          return nullptr;
        }
      } else {
        ExprPtr operand = ParseUnary();
        if (!operand) {
          return nullptr;
        }
        out->args.push_back(std::move(operand));  // sema resolves to a type
      }
      return out;
    }
    if (AtPunct("(") && NextIsTypeStart()) {
      Take();
      const Type* type = ParseTypeName();
      if (type == nullptr || !ExpectPunct(")", "after cast type")) {
        return nullptr;
      }
      ExprPtr operand = ParseUnary();
      if (!operand) {
        return nullptr;
      }
      auto out = std::make_unique<Expr>();
      out->kind = Expr::Kind::kCast;
      out->loc = loc;
      out->cast_type = type;
      out->args.push_back(std::move(operand));
      return out;
    }
    return ParsePostfix();
  }

  bool NextIsTypeStart() const {
    const CToken& next = Next();
    if (next.IsKeyword("void") || next.IsKeyword("char") || next.IsKeyword("int") ||
        next.IsKeyword("unsigned") || next.IsKeyword("struct")) {
      return true;
    }
    return next.kind == CTokenKind::kIdent && typedefs_.count(next.text) > 0;
  }

  ExprPtr ParsePostfix() {
    ExprPtr expr = ParsePrimary();
    if (!expr) {
      return nullptr;
    }
    while (true) {
      SourceLoc loc = Cur().loc;
      if (AtPunct("(")) {
        Take();
        auto out = std::make_unique<Expr>();
        out->kind = Expr::Kind::kCall;
        out->loc = loc;
        out->args.push_back(std::move(expr));
        while (!AtPunct(")")) {
          ExprPtr arg = ParseAssign();
          if (!arg) {
            return nullptr;
          }
          out->args.push_back(std::move(arg));
          if (AtPunct(",")) {
            Take();
          }
        }
        Take();  // )
        expr = std::move(out);
        continue;
      }
      if (AtPunct("[")) {
        Take();
        ExprPtr index = ParseExpr();
        if (!index || !ExpectPunct("]", "to close index")) {
          return nullptr;
        }
        auto out = std::make_unique<Expr>();
        out->kind = Expr::Kind::kIndex;
        out->loc = loc;
        out->args.push_back(std::move(expr));
        out->args.push_back(std::move(index));
        expr = std::move(out);
        continue;
      }
      if (AtPunct(".") || AtPunct("->")) {
        bool arrow = Take().text == "->";
        if (!At(CTokenKind::kIdent)) {
          diags_.Error(Cur().loc, "expected member name, found " + Describe(Cur()));
          return nullptr;
        }
        auto out = std::make_unique<Expr>();
        out->kind = Expr::Kind::kMember;
        out->loc = loc;
        out->text = Take().text;
        out->member_arrow = arrow;
        out->args.push_back(std::move(expr));
        expr = std::move(out);
        continue;
      }
      if (AtPunct("++") || AtPunct("--")) {
        std::string op = Take().text;
        auto out = std::make_unique<Expr>();
        out->kind = Expr::Kind::kIncDec;
        out->loc = loc;
        out->text = op;
        out->int_value = 0;  // postfix
        out->args.push_back(std::move(expr));
        expr = std::move(out);
        continue;
      }
      return expr;
    }
  }

  ExprPtr ParsePrimary() {
    SourceLoc loc = Cur().loc;
    if (At(CTokenKind::kIntLit) || At(CTokenKind::kCharLit)) {
      auto out = std::make_unique<Expr>();
      out->kind = Expr::Kind::kIntLit;
      out->loc = loc;
      out->int_value = Take().int_value;
      return out;
    }
    if (At(CTokenKind::kStrLit)) {
      auto out = std::make_unique<Expr>();
      out->kind = Expr::Kind::kStrLit;
      out->loc = loc;
      out->text = Take().text;
      return out;
    }
    if (At(CTokenKind::kIdent)) {
      std::string name = Take().text;
      auto it = enum_consts_.find(name);
      if (it != enum_consts_.end()) {
        auto out = std::make_unique<Expr>();
        out->kind = Expr::Kind::kIntLit;
        out->loc = loc;
        out->int_value = it->second;
        return out;
      }
      auto out = std::make_unique<Expr>();
      out->kind = Expr::Kind::kIdent;
      out->loc = loc;
      out->text = std::move(name);
      return out;
    }
    if (AtPunct("(")) {
      Take();
      ExprPtr inner = ParseExpr();
      if (!inner || !ExpectPunct(")", "to close parenthesized expression")) {
        return nullptr;
      }
      return inner;
    }
    diags_.Error(loc, "expected expression, found " + Describe(Cur()));
    return nullptr;
  }

  // Folds a parse-time constant (integer literals, unary -, binary arith on
  // constants) for enum values and array sizes.
  bool FoldConst(const Expr& expr, long long& out) {
    switch (expr.kind) {
      case Expr::Kind::kIntLit:
        out = expr.int_value;
        return true;
      case Expr::Kind::kUnary: {
        long long v = 0;
        if (expr.text == "-" && FoldConst(*expr.args[0], v)) {
          out = -v;
          return true;
        }
        if (expr.text == "~" && FoldConst(*expr.args[0], v)) {
          out = ~v;
          return true;
        }
        return false;
      }
      case Expr::Kind::kBinary: {
        long long a = 0;
        long long b = 0;
        if (!FoldConst(*expr.args[0], a) || !FoldConst(*expr.args[1], b)) {
          return false;
        }
        const std::string& op = expr.text;
        if (op == "+") {
          out = a + b;
        } else if (op == "-") {
          out = a - b;
        } else if (op == "*") {
          out = a * b;
        } else if (op == "/" && b != 0) {
          out = a / b;
        } else if (op == "<<") {
          out = a << b;
        } else if (op == ">>") {
          out = a >> b;
        } else if (op == "|") {
          out = a | b;
        } else if (op == "&") {
          out = a & b;
        } else if (op == "^") {
          out = a ^ b;
        } else {
          return false;
        }
        return true;
      }
      default:
        return false;
    }
  }

  std::vector<CToken> tokens_;
  TypeTable& types_;
  Diagnostics& diags_;
  size_t pos_ = 0;
  std::map<std::string, const Type*> typedefs_;
  std::map<std::string, long long> enum_consts_;
};

}  // namespace

Result<TranslationUnit> ParseCFiles(const SourceMap& sources,
                                    const std::vector<std::string>& files,
                                    const std::string& unit_name, TypeTable& types,
                                    Diagnostics& diags) {
  TranslationUnit unit;
  unit.name = unit_name;
  for (const std::string& file : files) {
    Result<std::vector<CToken>> tokens = LexC(sources, file, diags);
    if (!tokens.ok()) {
      return Result<TranslationUnit>::Failure();
    }
    CParser parser(tokens.take(), types, diags);
    if (!parser.ParseInto(unit)) {
      return Result<TranslationUnit>::Failure();
    }
  }
  return unit;
}

Result<TranslationUnit> ParseC(const SourceMap& sources, const std::string& file,
                               TypeTable& types, Diagnostics& diags) {
  return ParseCFiles(sources, {file}, file, types, diags);
}

Result<TranslationUnit> ParseCString(std::string_view source, const std::string& name,
                                     TypeTable& types, Diagnostics& diags) {
  Result<std::vector<CToken>> tokens = LexCString(source, name, diags);
  if (!tokens.ok()) {
    return Result<TranslationUnit>::Failure();
  }
  TranslationUnit unit;
  unit.name = name;
  CParser parser(tokens.take(), types, diags);
  if (!parser.ParseInto(unit)) {
    return Result<TranslationUnit>::Failure();
  }
  return unit;
}

}  // namespace knit
