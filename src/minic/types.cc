#include "src/minic/types.h"

namespace knit {

namespace {
constexpr int kWordSize = 4;  // 32-bit machine model

int RoundUp(int value, int align) { return (value + align - 1) / align * align; }
}  // namespace

int Type::SizeOf() const {
  switch (kind) {
    case Kind::kVoid:
    case Kind::kFunc:
      return 0;
    case Kind::kChar:
      return 1;
    case Kind::kInt:
    case Kind::kUnsigned:
    case Kind::kPointer:
      return kWordSize;
    case Kind::kArray:
      return base->SizeOf() * array_count;
    case Kind::kStruct:
      return complete ? struct_size : 0;
  }
  return 0;
}

int Type::AlignOf() const {
  switch (kind) {
    case Kind::kVoid:
    case Kind::kFunc:
      return 1;
    case Kind::kChar:
      return 1;
    case Kind::kInt:
    case Kind::kUnsigned:
    case Kind::kPointer:
      return kWordSize;
    case Kind::kArray:
      return base->AlignOf();
    case Kind::kStruct:
      return complete ? struct_align : 1;
  }
  return 1;
}

const StructField* Type::FindField(const std::string& name) const {
  for (const StructField& field : fields) {
    if (field.name == name) {
      return &field;
    }
  }
  return nullptr;
}

std::string Type::ToString() const {
  switch (kind) {
    case Kind::kVoid:
      return "void";
    case Kind::kChar:
      return "char";
    case Kind::kInt:
      return "int";
    case Kind::kUnsigned:
      return "unsigned";
    case Kind::kPointer:
      if (base->IsFunc()) {
        std::string out = base->base->ToString() + " (*)(";
        for (size_t i = 0; i < base->params.size(); ++i) {
          if (i > 0) {
            out += ", ";
          }
          out += base->params[i].type->ToString();
        }
        if (base->variadic) {
          out += base->params.empty() ? "..." : ", ...";
        }
        return out + ")";
      }
      return base->ToString() + " *";
    case Kind::kArray:
      return base->ToString() + "[" + std::to_string(array_count) + "]";
    case Kind::kStruct:
      return "struct " + struct_tag;
    case Kind::kFunc: {
      std::string out = base->ToString() + " (";
      for (size_t i = 0; i < params.size(); ++i) {
        if (i > 0) {
          out += ", ";
        }
        out += params[i].type->ToString();
      }
      if (variadic) {
        out += params.empty() ? "..." : ", ...";
      }
      return out + ")";
    }
  }
  return "?";
}

TypeTable::TypeTable() {
  Type* v = NewType();
  v->kind = Type::Kind::kVoid;
  void_ = v;
  Type* c = NewType();
  c->kind = Type::Kind::kChar;
  char_ = c;
  Type* i = NewType();
  i->kind = Type::Kind::kInt;
  int_ = i;
  Type* u = NewType();
  u->kind = Type::Kind::kUnsigned;
  unsigned_ = u;
}

Type* TypeTable::NewType() {
  all_.push_back(std::make_unique<Type>());
  return all_.back().get();
}

const Type* TypeTable::PointerTo(const Type* base) {
  for (const auto& t : all_) {
    if (t->kind == Type::Kind::kPointer && t->base == base) {
      return t.get();
    }
  }
  Type* t = NewType();
  t->kind = Type::Kind::kPointer;
  t->base = base;
  return t;
}

const Type* TypeTable::ArrayOf(const Type* element, int count) {
  for (const auto& t : all_) {
    if (t->kind == Type::Kind::kArray && t->base == element && t->array_count == count) {
      return t.get();
    }
  }
  Type* t = NewType();
  t->kind = Type::Kind::kArray;
  t->base = element;
  t->array_count = count;
  return t;
}

const Type* TypeTable::Function(const Type* ret, std::vector<FuncParam> params, bool variadic) {
  for (const auto& t : all_) {
    if (t->kind != Type::Kind::kFunc || t->base != ret || t->variadic != variadic ||
        t->params.size() != params.size()) {
      continue;
    }
    bool same = true;
    for (size_t i = 0; i < params.size(); ++i) {
      if (t->params[i].type != params[i].type) {
        same = false;
        break;
      }
    }
    if (same) {
      return t.get();
    }
  }
  Type* t = NewType();
  t->kind = Type::Kind::kFunc;
  t->base = ret;
  t->params = std::move(params);
  t->variadic = variadic;
  return t;
}

Type* TypeTable::StructFor(const std::string& tag) {
  for (const auto& t : all_) {
    if (t->kind == Type::Kind::kStruct && t->struct_tag == tag) {
      return t.get();
    }
  }
  Type* t = NewType();
  t->kind = Type::Kind::kStruct;
  t->struct_tag = tag;
  return t;
}

bool TypeTable::CompleteStruct(Type* type, std::vector<StructField> fields) {
  // Layout first so we can compare against an existing completion.
  int offset = 0;
  int align = 1;
  for (StructField& field : fields) {
    int field_align = field.type->AlignOf();
    offset = RoundUp(offset, field_align);
    field.offset = offset;
    offset += field.type->SizeOf();
    align = std::max(align, field_align);
  }
  int size = RoundUp(offset, align);

  if (type->complete) {
    if (type->fields.size() != fields.size() || type->struct_size != size) {
      return false;
    }
    for (size_t i = 0; i < fields.size(); ++i) {
      if (type->fields[i].name != fields[i].name || type->fields[i].type != fields[i].type ||
          type->fields[i].offset != fields[i].offset) {
        return false;
      }
    }
    return true;  // identical redefinition (shared header)
  }
  type->fields = std::move(fields);
  type->struct_size = size;
  type->struct_align = align;
  type->complete = true;
  return true;
}

}  // namespace knit
