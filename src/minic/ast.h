// MiniC abstract syntax. One Expr/Stmt node struct each, discriminated by Kind, with
// children in a vector — compact and easy to transform (the flattener rewrites names;
// the semantic pass annotates types in place).
//
// Supported language (a C subset sufficient for systems components):
//   types:   void, char, int, unsigned, pointers, arrays, struct, function pointers
//   decls:   globals (with constant/string/address initializers), functions (static
//            or extern linkage), struct definitions, typedefs, enum constant groups,
//            extern declarations and prototypes
//   stmts:   expression, if/else, while, for, return, break, continue, blocks,
//            local declarations
//   exprs:   integer/char/string literals, identifiers, unary - ! ~ & *, full binary
//            operator set, assignment (= += -= *= /= &= |= ^= <<= >>=), calls
//            (direct and through pointers), indexing, member access (. and ->),
//            casts, ?:, sizeof, pre/post ++/--
//   cpp:     #include "file" (resolved through a virtual file system, include-once)
#ifndef SRC_MINIC_AST_H_
#define SRC_MINIC_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/minic/types.h"
#include "src/support/diagnostics.h"

namespace knit {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind {
    kIntLit,    // int_value
    kStrLit,    // text = contents (address of static data)
    kIdent,     // text = name
    kUnary,     // text = "-" "!" "~" "&" "*"; args[0]
    kBinary,    // text = operator; args[0], args[1]
    kAssign,    // text = "=" "+=" ...; args[0] = lvalue, args[1] = rhs
    kCall,      // args[0] = callee, args[1..] = arguments
    kIndex,     // args[0][args[1]]
    kMember,    // args[0].text or args[0]->text (member_arrow)
    kCast,      // (cast_type) args[0]
    kCond,      // args[0] ? args[1] : args[2]
    kSizeof,    // sizeof_type (sizeof expr is folded to a type by the parser)
    kIncDec,    // text = "++" or "--"; args[0]; postfix flag in member_arrow? no:
                // prefix stored in int_value (1 = prefix, 0 = postfix)
  };

  Kind kind = Kind::kIntLit;
  SourceLoc loc;
  long long int_value = 0;
  std::string text;
  std::vector<ExprPtr> args;
  const Type* cast_type = nullptr;    // kCast
  const Type* sizeof_type = nullptr;  // kSizeof
  bool member_arrow = false;          // kMember: true for ->

  // Filled by Sema:
  const Type* type = nullptr;
  bool is_lvalue = false;

  ExprPtr Clone() const;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind {
    kExpr,      // exprs[0]
    kIf,        // exprs[0]; stmts[0] = then, stmts[1] = else (optional)
    kWhile,     // exprs[0]; stmts[0]
    kFor,       // stmts[0] = init stmt (or null), exprs[0] = cond (or null),
                // exprs[1] = step (or null), stmts[1] = body
    kReturn,    // exprs[0] optional
    kBreak,
    kContinue,
    kBlock,     // stmts[*]
    kLocalDecl, // text = name, decl_type, exprs[0] = init (optional)
    kEmpty,
  };

  Kind kind = Kind::kEmpty;
  SourceLoc loc;
  std::string text;
  const Type* decl_type = nullptr;
  std::vector<ExprPtr> exprs;
  std::vector<StmtPtr> stmts;

  StmtPtr Clone() const;
};

struct ParamDecl {
  std::string name;
  const Type* type = nullptr;
};

// Top-level declaration.
struct Decl {
  enum class Kind {
    kFunction,
    kGlobalVar,
    kStructDef,  // struct definitions carry no payload beyond the (completed) type
    kTypedef,
    kEnumConsts,
  };

  Kind kind = Kind::kFunction;
  SourceLoc loc;
  std::string name;

  // kFunction:
  const Type* func_type = nullptr;  // Kind::kFunc
  std::vector<ParamDecl> params;
  bool is_static = false;
  bool is_definition = false;  // false: prototype / extern declaration
  StmtPtr body;

  // kGlobalVar:
  const Type* var_type = nullptr;
  bool is_extern = false;
  ExprPtr init;  // constant expression, string literal, address-of, or brace list
                 // (brace lists are lowered by the parser into init_list)
  std::vector<ExprPtr> init_list;  // array/struct initializer elements, if any

  // kStructDef / kTypedef:
  const Type* defined_type = nullptr;

  // kEnumConsts:
  std::vector<std::pair<std::string, long long>> enum_values;
};

struct TranslationUnit {
  std::string name;  // principal file name, for diagnostics
  std::vector<Decl> decls;
};

}  // namespace knit

#endif  // SRC_MINIC_AST_H_
