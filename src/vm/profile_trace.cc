#include "src/vm/profile_trace.h"

#include <vector>

namespace knit {

void AppendComponentProfileTrace(const ComponentProfile& profile, const std::string& track_name,
                                 TraceEventLog& log, int pid, int tid) {
  // Timeline track: the component entry/exit events, nested like call frames.
  log.NameThread(pid, tid, track_name + " (timeline)");
  int depth = 0;
  for (const ProfileEvent& event : profile.events) {
    if (event.begin) {
      const std::string& name = event.component >= 0 && static_cast<size_t>(event.component) <
                                                            profile.component_names.size()
                                    ? profile.component_names[event.component]
                                    : "<?>";
      log.AddBegin(name, "component", static_cast<double>(event.at_cycle), pid, tid);
      ++depth;
    } else if (depth > 0) {
      log.AddEnd(static_cast<double>(event.at_cycle), pid, tid);
      --depth;
    }
  }
  // A truncated event log can leave spans open; close them at the last counted
  // cycle so viewers do not extend them to infinity.
  while (depth-- > 0) {
    log.AddEnd(static_cast<double>(profile.total_cycles), pid, tid);
  }

  // Summary track: one proportional span per component (cycles-descending, laid
  // end to end), carrying the aggregate counters as args. Present even when the
  // event log is absent (RunResult::profile snapshots).
  int summary_tid = tid + 1;
  log.NameThread(pid, summary_tid, track_name + " (per-component totals)");
  double offset = 0;
  for (const ComponentProfileEntry& entry : profile.components) {
    TraceEvent event;
    event.name = entry.component;
    event.category = "component-summary";
    event.phase = 'X';
    event.timestamp_us = offset;
    event.duration_us = static_cast<double>(entry.cycles);
    event.pid = pid;
    event.tid = summary_tid;
    event.args.emplace_back("cycles", std::to_string(entry.cycles));
    event.args.emplace_back("ifetch_stalls", std::to_string(entry.ifetch_stalls));
    event.args.emplace_back("insns", std::to_string(entry.insns));
    event.args.emplace_back("calls_in", std::to_string(entry.calls_in));
    event.args.emplace_back("calls_out", std::to_string(entry.calls_out));
    log.Add(std::move(event));
    offset += static_cast<double>(entry.cycles);
  }
}

std::string ComponentProfileTraceJson(const ComponentProfile& profile,
                                      const std::string& track_name) {
  TraceEventLog log;
  log.NameProcess(1, "knit vm");
  AppendComponentProfileTrace(profile, track_name, log);
  return log.ToJson();
}

}  // namespace knit
