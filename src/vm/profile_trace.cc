#include "src/vm/profile_trace.h"

#include <cctype>
#include <cstdlib>
#include <vector>

#include "src/support/hash.h"

namespace knit {

void AppendComponentProfileTrace(const ComponentProfile& profile, const std::string& track_name,
                                 TraceEventLog& log, int pid, int tid) {
  // Timeline track: the component entry/exit events, nested like call frames.
  log.NameThread(pid, tid, track_name + " (timeline)");
  int depth = 0;
  for (const ProfileEvent& event : profile.events) {
    if (event.begin) {
      const std::string& name = event.component >= 0 && static_cast<size_t>(event.component) <
                                                            profile.component_names.size()
                                    ? profile.component_names[event.component]
                                    : "<?>";
      log.AddBegin(name, "component", static_cast<double>(event.at_cycle), pid, tid);
      ++depth;
    } else if (depth > 0) {
      log.AddEnd(static_cast<double>(event.at_cycle), pid, tid);
      --depth;
    }
  }
  // A truncated event log can leave spans open; close them at the last counted
  // cycle so viewers do not extend them to infinity.
  while (depth-- > 0) {
    log.AddEnd(static_cast<double>(profile.total_cycles), pid, tid);
  }

  // Summary track: one proportional span per component (cycles-descending, laid
  // end to end), carrying the aggregate counters as args. Present even when the
  // event log is absent (RunResult::profile snapshots).
  int summary_tid = tid + 1;
  log.NameThread(pid, summary_tid, track_name + " (per-component totals)");
  double offset = 0;
  for (const ComponentProfileEntry& entry : profile.components) {
    TraceEvent event;
    event.name = entry.component;
    event.category = "component-summary";
    event.phase = 'X';
    event.timestamp_us = offset;
    event.duration_us = static_cast<double>(entry.cycles);
    event.pid = pid;
    event.tid = summary_tid;
    event.args.emplace_back("cycles", std::to_string(entry.cycles));
    event.args.emplace_back("ifetch_stalls", std::to_string(entry.ifetch_stalls));
    event.args.emplace_back("insns", std::to_string(entry.insns));
    event.args.emplace_back("calls_in", std::to_string(entry.calls_in));
    event.args.emplace_back("calls_out", std::to_string(entry.calls_out));
    log.Add(std::move(event));
    offset += static_cast<double>(entry.cycles);
  }
}

std::string ComponentProfileTraceJson(const ComponentProfile& profile,
                                      const std::string& track_name) {
  TraceEventLog log;
  log.NameProcess(1, "knit vm");
  AppendComponentProfileTrace(profile, track_name, log);
  return log.ToJson();
}

// ---- on-disk profile documents ------------------------------------------------

std::string SerializeComponentProfile(const ComponentProfile& profile, const ProfileMeta& meta,
                                      const std::string& track_name) {
  std::string out = "{\"knit_profile\":{\n";
  out += " \"version\":" + std::to_string(meta.version);
  out += ",\"top\":\"" + JsonEscape(meta.top) + "\"";
  out += ",\"config_digest\":\"" + HexDigest(meta.config_digest) + "\"";
  out += ",\"opt_level\":" + std::to_string(meta.opt_level);
  out += ",\n \"total_cycles\":" + std::to_string(profile.total_cycles);
  out += ",\"total_ifetch_stalls\":" + std::to_string(profile.total_ifetch_stalls);
  out += ",\"total_insns\":" + std::to_string(profile.total_insns);
  out += ",\"boundary_calls\":" + std::to_string(profile.boundary_calls);
  out += ",\n \"components\":[";
  for (size_t i = 0; i < profile.components.size(); ++i) {
    const ComponentProfileEntry& entry = profile.components[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"component\":\"" + JsonEscape(entry.component) + "\"";
    out += ",\"cycles\":" + std::to_string(entry.cycles);
    out += ",\"ifetch_stalls\":" + std::to_string(entry.ifetch_stalls);
    out += ",\"insns\":" + std::to_string(entry.insns);
    out += ",\"calls_in\":" + std::to_string(entry.calls_in);
    out += ",\"calls_out\":" + std::to_string(entry.calls_out) + "}";
  }
  out += "],\n \"edges\":[";
  for (size_t i = 0; i < profile.edges.size(); ++i) {
    const BoundaryEdge& edge = profile.edges[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"caller\":\"" + JsonEscape(edge.caller) + "\"";
    out += ",\"callee\":\"" + JsonEscape(edge.callee) + "\"";
    out += ",\"calls\":" + std::to_string(edge.calls) + "}";
  }
  out += "],\n \"functions\":[";
  for (size_t i = 0; i < profile.function_calls.size(); ++i) {
    const FunctionCallCount& fn = profile.function_calls[i];
    out += i == 0 ? "\n" : ",\n";
    out += "  {\"function\":\"" + JsonEscape(fn.function) + "\"";
    out += ",\"calls\":" + std::to_string(fn.calls) + "}";
  }
  out += "]\n},\n";
  // The timeline half of the document: splice the trace log's own rendering in
  // after our opening brace (ToJson always renders one top-level object).
  std::string trace = ComponentProfileTraceJson(profile, track_name);
  out += trace.substr(1);
  return out;
}

namespace {

// A minimal recursive-descent JSON reader for profile documents. It understands
// just enough JSON to walk any well-formed document, materializes only the
// "knit_profile" subtree, and silently skips every field it does not recognize —
// that skip is the format's forward-compatibility rule, and the unknown-field
// tolerance test in tests/profile_test.cc pins it.
class ProfileReader {
 public:
  explicit ProfileReader(std::string_view text) : text_(text) {}

  bool Parse(LoadedProfile* out) {
    SkipWs();
    if (Peek() != '{') {
      return Fail("profile document is not a JSON object");
    }
    bool saw_profile = false;
    if (!ParseObject([&](const std::string& key) {
          if (key == "knit_profile") {
            saw_profile = true;
            return ParseKnitProfile(out);
          }
          return SkipValue();  // traceEvents, displayTimeUnit, future keys
        })) {
      return false;
    }
    if (!saw_profile) {
      return Fail("no \"knit_profile\" block (is this a plain trace file?)");
    }
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool ParseKnitProfile(LoadedProfile* out) {
    bool saw_version = false;
    if (!ParseObject([&](const std::string& key) {
          if (key == "version") {
            saw_version = true;
            long long version = 0;
            if (!ParseInt(&version)) {
              return false;
            }
            out->meta.version = static_cast<int>(version);
            return true;
          }
          if (key == "top") {
            return ParseString(&out->meta.top);
          }
          if (key == "config_digest") {
            std::string hex;
            if (!ParseString(&hex)) {
              return false;
            }
            out->meta.config_digest = std::strtoull(hex.c_str(), nullptr, 16);
            return true;
          }
          if (key == "opt_level") {
            long long level = 0;
            if (!ParseInt(&level)) {
              return false;
            }
            out->meta.opt_level = static_cast<int>(level);
            return true;
          }
          if (key == "total_cycles") {
            return ParseInt(&out->profile.total_cycles);
          }
          if (key == "total_ifetch_stalls") {
            return ParseInt(&out->profile.total_ifetch_stalls);
          }
          if (key == "total_insns") {
            return ParseInt(&out->profile.total_insns);
          }
          if (key == "boundary_calls") {
            return ParseInt(&out->profile.boundary_calls);
          }
          if (key == "components") {
            return ParseArray([&] {
              ComponentProfileEntry entry;
              if (!ParseObject([&](const std::string& field) {
                    if (field == "component") {
                      return ParseString(&entry.component);
                    }
                    if (field == "cycles") {
                      return ParseInt(&entry.cycles);
                    }
                    if (field == "ifetch_stalls") {
                      return ParseInt(&entry.ifetch_stalls);
                    }
                    if (field == "insns") {
                      return ParseInt(&entry.insns);
                    }
                    if (field == "calls_in") {
                      return ParseInt(&entry.calls_in);
                    }
                    if (field == "calls_out") {
                      return ParseInt(&entry.calls_out);
                    }
                    return SkipValue();
                  })) {
                return false;
              }
              out->profile.components.push_back(std::move(entry));
              return true;
            });
          }
          if (key == "edges") {
            return ParseArray([&] {
              BoundaryEdge edge;
              if (!ParseObject([&](const std::string& field) {
                    if (field == "caller") {
                      return ParseString(&edge.caller);
                    }
                    if (field == "callee") {
                      return ParseString(&edge.callee);
                    }
                    if (field == "calls") {
                      return ParseInt(&edge.calls);
                    }
                    return SkipValue();
                  })) {
                return false;
              }
              out->profile.edges.push_back(std::move(edge));
              return true;
            });
          }
          if (key == "functions") {
            return ParseArray([&] {
              FunctionCallCount fn;
              if (!ParseObject([&](const std::string& field) {
                    if (field == "function") {
                      return ParseString(&fn.function);
                    }
                    if (field == "calls") {
                      return ParseInt(&fn.calls);
                    }
                    return SkipValue();
                  })) {
                return false;
              }
              out->profile.function_calls.push_back(std::move(fn));
              return true;
            });
          }
          return SkipValue();
        })) {
      return false;
    }
    if (!saw_version) {
      return Fail("\"knit_profile\" has no \"version\" field");
    }
    return true;
  }

  // `field` is called with each key; it must consume the value (or SkipValue).
  template <typename Fn>
  bool ParseObject(Fn field) {
    if (!Expect('{')) {
      return false;
    }
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      std::string key;
      if (!ParseString(&key) || !Expect(':') || !field(key)) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        SkipWs();
        continue;
      }
      return Expect('}');
    }
  }

  // `element` must consume one array element.
  template <typename Fn>
  bool ParseArray(Fn element) {
    if (!Expect('[')) {
      return false;
    }
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      if (!element()) {
        return false;
      }
      SkipWs();
      if (Peek() == ',') {
        ++pos_;
        SkipWs();
        continue;
      }
      return Expect(']');
    }
  }

  bool ParseString(std::string* out) {
    SkipWs();
    if (!Expect('"')) {
      return false;
    }
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return true;
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char escape = text_[pos_++];
      switch (escape) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Fail("truncated \\u escape");
          }
          unsigned code = static_cast<unsigned>(
              std::strtoul(std::string(text_.substr(pos_, 4)).c_str(), nullptr, 16));
          pos_ += 4;
          // Components and symbols are ASCII; anything else round-trips as UTF-8.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("bad string escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseInt(long long* out) {
    SkipWs();
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) {
      return Fail("expected an integer");
    }
    // Fractions/exponents never appear in fields we keep; reject them rather
    // than silently truncate.
    if (pos_ < text_.size() && (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      return Fail("expected an integer, found a real number");
    }
    *out = std::strtoll(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr, 10);
    return true;
  }

  // Consumes any well-formed JSON value without keeping it.
  bool SkipValue() {
    SkipWs();
    char c = Peek();
    if (c == '{') {
      return ParseObject([&](const std::string&) { return SkipValue(); });
    }
    if (c == '[') {
      return ParseArray([&] { return SkipValue(); });
    }
    if (c == '"') {
      std::string discard;
      return ParseString(&discard);
    }
    size_t start = pos_;
    while (pos_ < text_.size() && (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                                   text_[pos_] == '-' || text_[pos_] == '+' ||
                                   text_[pos_] == '.')) {
      ++pos_;
    }
    return pos_ > start || Fail("expected a JSON value");
  }

  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  bool Expect(char c) {
    SkipWs();
    if (Peek() != c) {
      return Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
    return true;
  }

  bool Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = message + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

uint64_t ProfileDigest(const LoadedProfile& profile) {
  Fnv64 hasher;
  hasher.Update("knit-profile-v1");
  hasher.Update(profile.meta.version);
  hasher.Update(profile.meta.top);
  hasher.Update(profile.meta.config_digest);
  hasher.Update(profile.meta.opt_level);
  hasher.Update(static_cast<uint64_t>(profile.profile.total_cycles));
  hasher.Update(static_cast<uint64_t>(profile.profile.total_ifetch_stalls));
  hasher.Update(static_cast<uint64_t>(profile.profile.total_insns));
  hasher.Update(static_cast<uint64_t>(profile.profile.boundary_calls));
  hasher.Update(static_cast<uint64_t>(profile.profile.components.size()));
  for (const ComponentProfileEntry& entry : profile.profile.components) {
    hasher.Update(entry.component);
    hasher.Update(static_cast<uint64_t>(entry.cycles));
    hasher.Update(static_cast<uint64_t>(entry.ifetch_stalls));
    hasher.Update(static_cast<uint64_t>(entry.insns));
    hasher.Update(static_cast<uint64_t>(entry.calls_in));
    hasher.Update(static_cast<uint64_t>(entry.calls_out));
  }
  hasher.Update(static_cast<uint64_t>(profile.profile.edges.size()));
  for (const BoundaryEdge& edge : profile.profile.edges) {
    hasher.Update(edge.caller);
    hasher.Update(edge.callee);
    hasher.Update(static_cast<uint64_t>(edge.calls));
  }
  hasher.Update(static_cast<uint64_t>(profile.profile.function_calls.size()));
  for (const FunctionCallCount& fn : profile.profile.function_calls) {
    hasher.Update(fn.function);
    hasher.Update(static_cast<uint64_t>(fn.calls));
  }
  return hasher.digest();
}

Result<LoadedProfile> ParseComponentProfile(std::string_view json, Diagnostics& diags) {
  LoadedProfile loaded;
  ProfileReader reader(json);
  if (!reader.Parse(&loaded)) {
    diags.Error(SourceLoc::Unknown(), "bad profile document: " + reader.error());
    return Result<LoadedProfile>::Failure();
  }
  if (loaded.meta.version > kProfileFormatVersion) {
    diags.Error(SourceLoc::Unknown(),
                "profile format version " + std::to_string(loaded.meta.version) +
                    " is newer than this knitc understands (max " +
                    std::to_string(kProfileFormatVersion) + ")");
    return Result<LoadedProfile>::Failure();
  }
  return loaded;
}

}  // namespace knit
