// Per-translation-unit bytecode optimizer, deliberately modeled on what the paper
// relies on from gcc 2.95 after flattening ("turns function call nests into compact
// straight-line code, and eliminates redundant reads via common subexpression
// elimination"):
//
//  * Inlining of direct calls whose callee is defined EARLIER in the same object —
//    the same restriction that makes the flattener's defs-before-uses sorting
//    matter, and that confines inlining to a translation unit (so componentized
//    builds cannot inline across units; flattened builds can).
//  * Local value numbering per basic block: constant folding, algebraic identities,
//    redundant-load elimination with store-to-load forwarding, dead pure code.
//  * Jump threading, unreachable-code removal, scratch store/load peepholes.
//  * Dead local-function elimination (inlined-away statics shrink the text, which
//    is why Table 1's flattened router is *smaller* than the modular one).
#ifndef SRC_VM_OPTIMIZE_H_
#define SRC_VM_OPTIMIZE_H_

#include "src/obj/object.h"
#include "src/vm/codegen.h"

namespace knit {

struct CodegenOptions;

// Optimizes every function in the object in definition order, then removes dead
// local functions.
void OptimizeObject(ObjectFile& object, const CodegenOptions& options);

// Exposed for targeted tests.
void OptimizeFunction(BytecodeFunction& function);
int InlineCalls(ObjectFile& object, int function_index, const CodegenOptions& options);
void RemoveDeadLocalFunctions(ObjectFile& object);

}  // namespace knit

#endif  // SRC_VM_OPTIMIZE_H_
