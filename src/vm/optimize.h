// Per-translation-unit bytecode optimizer, deliberately modeled on what the paper
// relies on from gcc 2.95 after flattening ("turns function call nests into compact
// straight-line code, and eliminates redundant reads via common subexpression
// elimination"):
//
//  * Inlining of direct calls whose callee is defined EARLIER in the same object —
//    the same restriction that makes the flattener's defs-before-uses sorting
//    matter, and that confines inlining to a translation unit (so componentized
//    builds cannot inline across units; flattened builds can — and -O2's image
//    passes in src/vm/passes.h recover the same wins after linking).
//  * Local value numbering per basic block: constant folding, algebraic identities,
//    redundant-load elimination with store-to-load forwarding, dead pure code.
//  * Jump threading, unreachable-code removal, scratch store/load peepholes.
//  * Dead local-function elimination (inlined-away statics shrink the text, which
//    is why Table 1's flattened router is *smaller* than the modular one).
//
// The transforms are exposed as named building blocks; the pass manager
// (src/vm/passes.h) composes them into the standard pipeline.
#ifndef SRC_VM_OPTIMIZE_H_
#define SRC_VM_OPTIMIZE_H_

#include "src/obj/object.h"
#include "src/vm/codegen.h"

namespace knit {

struct CodegenOptions;

// Optimizes every function in the object in definition order, then removes dead
// local functions. Delegates to MakeObjectPassManager(); kept as the single-call
// entry point for codegen and targeted tests.
void OptimizeObject(ObjectFile& object, const CodegenOptions& options);

// The full per-function sequence: SimplifyControlFlow, LocalValueNumber,
// ThreadJumpChains, PeepholeOptimize.
void OptimizeFunction(BytecodeFunction& function);

// ---- building-block transforms (the pass manager's function passes) ----------

// Unreachable-code removal + nop compaction.
void SimplifyControlFlow(BytecodeFunction& function);
// Local value numbering over extended basic blocks.
void LocalValueNumber(BytecodeFunction& function);
// Jump-to-jump threading, then re-simplification.
void ThreadJumpChains(BytecodeFunction& function);
// Scratch store/load peephole plus the dead-store / pop-cancellation fixpoint.
void PeepholeOptimize(BytecodeFunction& function);

// Inlines direct calls to earlier-defined callees into `function_index`, within
// the options' budgets. Returns the number of call sites inlined.
int InlineCalls(ObjectFile& object, int function_index, const CodegenOptions& options);

// Removes local functions unreachable from any global text symbol or data reloc.
void RemoveDeadLocalFunctions(ObjectFile& object);

}  // namespace knit

#endif  // SRC_VM_OPTIMIZE_H_
