#include "src/vm/bytecode.h"

#include <sstream>

namespace knit {

namespace {
const char* OpName(Op op) {
  switch (op) {
    case Op::kConstInt:
      return "const";
    case Op::kConstSym:
      return "csym";
    case Op::kAddrLocal:
      return "lea";
    case Op::kLoadLocal:
      return "ldloc";
    case Op::kStoreLocal:
      return "stloc";
    case Op::kLoadMem:
      return "load";
    case Op::kStoreMem:
      return "store";
    case Op::kDup:
      return "dup";
    case Op::kPop:
      return "pop";
    case Op::kSwap:
      return "swap";
    case Op::kAdd:
      return "add";
    case Op::kSub:
      return "sub";
    case Op::kMul:
      return "mul";
    case Op::kDivS:
      return "divs";
    case Op::kDivU:
      return "divu";
    case Op::kModS:
      return "mods";
    case Op::kModU:
      return "modu";
    case Op::kShl:
      return "shl";
    case Op::kShrS:
      return "shrs";
    case Op::kShrU:
      return "shru";
    case Op::kAnd:
      return "and";
    case Op::kOr:
      return "or";
    case Op::kXor:
      return "xor";
    case Op::kNeg:
      return "neg";
    case Op::kBitNot:
      return "not";
    case Op::kLogNot:
      return "lnot";
    case Op::kEq:
      return "eq";
    case Op::kNe:
      return "ne";
    case Op::kLtS:
      return "lts";
    case Op::kLtU:
      return "ltu";
    case Op::kLeS:
      return "les";
    case Op::kLeU:
      return "leu";
    case Op::kGtS:
      return "gts";
    case Op::kGtU:
      return "gtu";
    case Op::kGeS:
      return "ges";
    case Op::kGeU:
      return "geu";
    case Op::kSext8:
      return "sext8";
    case Op::kJmp:
      return "jmp";
    case Op::kJz:
      return "jz";
    case Op::kJnz:
      return "jnz";
    case Op::kCall:
      return "call";
    case Op::kCallIndirect:
      return "calli";
    case Op::kCallBound:
      return "callb";
    case Op::kRet:
      return "ret";
    case Op::kNop:
      return "nop";
  }
  return "?";
}
}  // namespace

std::string DisassembleInsn(const Insn& insn) {
  std::ostringstream out;
  out << OpName(insn.op);
  switch (insn.op) {
    case Op::kConstInt:
    case Op::kConstSym:
    case Op::kAddrLocal:
    case Op::kJmp:
    case Op::kJz:
    case Op::kJnz:
      out << " " << insn.a;
      break;
    case Op::kLoadLocal:
    case Op::kStoreLocal:
      out << " " << insn.a << " sz" << insn.b;
      break;
    case Op::kLoadMem:
      out << " sz" << insn.b << (insn.a != 0 ? " sext" : "");
      break;
    case Op::kStoreMem:
      out << " sz" << insn.b;
      break;
    case Op::kCall:
      out << " @" << insn.a << " argc" << CallArgc(insn.b)
          << (CallReturns(insn.b) ? " ->v" : "");
      break;
    case Op::kCallIndirect:
      out << " argc" << CallArgc(insn.b) << (CallReturns(insn.b) ? " ->v" : "");
      break;
    case Op::kCallBound:
      out << " slot" << insn.a << " argc" << CallArgc(insn.b)
          << (CallReturns(insn.b) ? " ->v" : "");
      break;
    case Op::kRet:
      out << (insn.a != 0 ? " v" : "");
      break;
    default:
      break;
  }
  return out.str();
}

std::string Disassemble(const BytecodeFunction& function) {
  std::ostringstream out;
  out << function.name << ": frame=" << function.frame_size
      << " params=" << function.param_count << (function.variadic ? " variadic" : "") << "\n";
  for (size_t i = 0; i < function.code.size(); ++i) {
    out << "  " << i << ": " << DisassembleInsn(function.code[i]) << "\n";
  }
  return out.str();
}

}  // namespace knit
