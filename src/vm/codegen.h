// MiniC -> bytecode compiler. Produces a relocatable ObjectFile whose code refers to
// symbols by index (kConstSym / kCall); src/ld resolves them. One translation unit
// becomes one object — exactly the compilation granularity that makes flattening
// matter: the optimizer (src/vm/optimize.h) can only inline within an object.
#ifndef SRC_VM_CODEGEN_H_
#define SRC_VM_CODEGEN_H_

#include <string>
#include <vector>

#include "src/minic/ast.h"
#include "src/minic/sema.h"
#include "src/obj/object.h"
#include "src/support/diagnostics.h"
#include "src/support/result.h"

namespace knit {

struct PassStats;

struct CodegenOptions {
  bool optimize = true;      // run the per-TU optimizer (inline + LVN + peephole)
  // Optimization level: 0 = none (same as optimize=false), 1 = per-TU passes
  // (the historical default), 2 = additionally enables the link-time image
  // passes (a pipeline-level decision; codegen itself treats 2 like 1).
  int opt_level = 1;
  int inline_limit = 48;     // max size for inlining a multiply-called function
  bool inline_single_call = true;  // inline a local function called exactly once
                                   // (the body is removed afterwards, so text never
                                   // grows — what lets flattened builds both speed
                                   // up and shrink, as in Table 1)
  int single_call_limit = 8192;    // effectively unlimited; lower to keep big
                                   // rarely-taken bodies out of the hot path
  int caller_growth = 32768; // stop inlining when a function reaches this many insns

  // Digest of the recorded profile steering this build (0 = no profile). Codegen
  // itself ignores it — the PGO passes run at image scope — but it IS part of the
  // cache key: the same sources built against a different profile must relink,
  // never reuse a PGO'd artifact (see HashCodegenOptions in src/driver).
  uint64_t profile_digest = 0;

  // When set, the optimizer's pass manager appends per-pass statistics here
  // (not part of the cache key: stats are observation, not configuration).
  std::vector<PassStats>* pass_stats = nullptr;

  // Applies gcc-style flag spellings used in Knit `flags` declarations on top of
  // the current values: -O0/-O/-O1/-O2, -finline-limit=N, -fno-inline.
  void ApplyFlags(const std::vector<std::string>& flags);

  // Defaults + ApplyFlags.
  static CodegenOptions FromFlags(const std::vector<std::string>& flags);
};

// Compiles a Sema-checked TU. `object_name` labels the resulting object.
Result<ObjectFile> CompileTranslationUnit(const TranslationUnit& unit, const SemaInfo& info,
                                          TypeTable& types, const CodegenOptions& options,
                                          const std::string& object_name, Diagnostics& diags);

}  // namespace knit

#endif  // SRC_VM_CODEGEN_H_
