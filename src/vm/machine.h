// The MiniC virtual machine: executes a linked Image with an explicit cost model
// and an L1 instruction-cache simulator, standing in for the paper's Pentium Pro
// testbed (200 MHz, 8 KB L1I, measured via performance counters).
//
// Counters reported:
//   cycles()        — total modeled cycles (includes i-fetch stalls)
//   ifetch_stalls() — stall cycles from I-cache misses (Table 1's middle column)
//   insns()         — dynamic instruction count
//
// Cost model (documented in DESIGN.md; absolute values are a model, shapes are what
// the reproduction relies on):
//   every instruction          1 cycle
//   memory load/store          +1
//   signed/unsigned divide     +20
//   direct call                +8, +2 per argument (IA-32 cdecl: arguments travel
//                              through the stack in memory; prologue/epilogue)
//   indirect call              +15 on a BTB miss (target differs from the last one
//                              seen at this call site), +3 when predicted,
//                              +2 per argument — the P6 BTB predicts indirect
//                              branches to their last target, so monomorphic call
//                              sites (the common Click case) are cheap after warmup
//   return                     +4
//   native (environment) call  +5 flat
//   I-cache miss               +8 stall cycles (counted separately too)
#ifndef SRC_VM_MACHINE_H_
#define SRC_VM_MACHINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/vm/image.h"

namespace knit {

struct CostModel {
  long long base = 1;
  // Fuel: the instruction budget for a Machine (overridable per machine with
  // set_max_insns). Exhausting it raises a clean "fuel exhausted" trap so runaway
  // or cyclic code cannot hang a harness.
  long long max_insns = 2'000'000'000;
  long long mem_access = 1;
  long long divide = 20;
  long long call_overhead = 8;
  long long indirect_call_overhead = 15;  // BTB miss
  long long indirect_predicted = 3;       // BTB hit (same target as last time)
  long long per_argument = 2;
  long long ret_overhead = 4;
  long long native_cost = 5;

  int icache_bytes = 8192;
  int icache_line = 32;
  int icache_ways = 4;
  long long icache_miss_stall = 8;
};

class Machine;

// A native (environment) callable. Receives the machine (for memory access) and the
// popped argument values; returns the result (ignored for void uses).
using NativeFn = std::function<uint32_t(Machine&, const std::vector<uint32_t>&)>;

// One forced failure: the Nth invocation of `function` (a VM function or a native,
// by link name) is intercepted before its body runs. `trap` makes it trap the
// machine; otherwise the call is skipped and `value` is returned in its place (for
// int-returning functions, a nonzero `value` models "initializer reported failure").
struct FaultInjection {
  std::string function;
  long long invocation = 1;  // 1-based: fail the Nth call
  bool trap = true;
  uint32_t value = 1;  // result substituted when !trap
};

// A fault-injection plan, used by the init/fini robustness harness to prove
// rollback correct under every possible failure point.
struct FaultPlan {
  std::vector<FaultInjection> injections;

  bool empty() const { return injections.empty(); }
};

struct RunResult {
  bool ok = false;
  uint32_t value = 0;
  std::string error;  // set when !ok: trap message plus rendered backtrace
  // Call stack at the trap, innermost frame first, each entry "function (pc N)".
  // Empty on success.
  std::vector<std::string> backtrace;
};

class Machine {
 public:
  Machine(const Image& image, CostModel cost = CostModel(), uint32_t memory_bytes = 1 << 24);

  // Binds an implementation to a native name from the image. Unbound natives trap
  // when called. Built-ins (__sbrk, __putchar, __puthex, __cycles, __vararg,
  // __vararg_count, __abort, __trace) are pre-bound when present in the image.
  void BindNative(const std::string& name, NativeFn fn);

  // Calls a function by global symbol name or id. Runs to completion.
  RunResult Call(const std::string& name, std::vector<uint32_t> args = {});
  RunResult CallId(int function_id, std::vector<uint32_t> args = {});

  // Counters.
  long long cycles() const { return cycles_; }
  long long ifetch_stalls() const { return ifetch_stalls_; }
  long long insns() const { return insns_; }
  void ResetCounters();

  // Fuel limit (defensive against runaway corpus code): exceeding it traps with
  // "fuel exhausted". Defaults to CostModel::max_insns.
  void set_max_insns(long long max) { max_insns_ = max; }
  long long fuel_remaining() const { return max_insns_ > insns_ ? max_insns_ - insns_ : 0; }

  // Fault injection: installing a plan resets the per-function invocation counters;
  // every subsequent call of a planned function is counted and the matching
  // invocation is forced to fail (see FaultInjection).
  void set_fault_plan(FaultPlan plan);
  void ClearFaultPlan() { set_fault_plan(FaultPlan()); }
  const FaultPlan& fault_plan() const { return fault_plan_; }

  // Memory access (for natives and tests). Out-of-range accesses trap the current
  // execution; from the host side they return 0 / are ignored with ok_ set false.
  uint32_t ReadWord(uint32_t address);
  void WriteWord(uint32_t address, uint32_t value);
  uint8_t ReadByte(uint32_t address);
  void WriteByte(uint32_t address, uint8_t value);
  std::string ReadCString(uint32_t address, uint32_t max_length = 4096);

  // Console output captured from __putchar (and from environment natives that
  // choose to print via AppendConsole).
  const std::string& console() const { return console_; }
  void AppendConsole(char c) { console_ += c; }
  void ClearConsole() { console_.clear(); }

  // Heap: bump allocator exposed to programs via the __sbrk native.
  uint32_t Sbrk(uint32_t bytes);

  // Variadic support for natives implementing __vararg/__vararg_count: the current
  // frame's variadic arguments.
  int CurrentVarargCount() const;
  uint32_t CurrentVararg(int index);

  const Image& image() const { return image_; }

 private:
  struct Frame {
    int function = -1;
    int pc = 0;
    uint32_t fp = 0;
    size_t eval_base = 0;
    int vararg_count = 0;
    uint32_t vararg_base = 0;
    uint32_t saved_sp = 0;
  };

  enum class FaultAction { kNone, kTrap, kReturn };

  void Trap(const std::string& message);
  std::string TrapError() const;
  FaultAction CheckFault(const std::string& function, uint32_t* value_out);
  bool CheckRange(uint32_t address, uint32_t size);
  void ICacheAccess(uint32_t text_address);
  bool EnterFunction(int function_id, const uint32_t* args, int argc);
  void BindBuiltins();

  const Image& image_;
  CostModel cost_;
  std::vector<uint8_t> memory_;
  uint32_t heap_end_;
  uint32_t stack_pointer_;

  std::vector<uint32_t> eval_;
  std::vector<Frame> frames_;

  std::map<std::string, NativeFn> natives_;
  std::string console_;

  long long cycles_ = 0;
  long long ifetch_stalls_ = 0;
  long long insns_ = 0;
  long long max_insns_;  // initialized from CostModel::max_insns

  bool trapped_ = false;
  std::string trap_message_;
  std::vector<std::string> trap_backtrace_;

  FaultPlan fault_plan_;
  std::map<std::string, long long> invocation_counts_;

  // I-cache state: per set, per way: tag (-1 empty) and LRU stamp.
  struct CacheWay {
    int64_t tag = -1;
    uint64_t stamp = 0;
  };
  std::vector<CacheWay> icache_;
  int icache_sets_ = 0;
  uint64_t icache_clock_ = 0;

  // Branch target buffer for indirect calls: (function id, pc) -> last target.
  std::map<std::pair<int, int>, int> btb_;
};

}  // namespace knit

#endif  // SRC_VM_MACHINE_H_
