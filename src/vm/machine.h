// The MiniC virtual machine: executes a linked Image with an explicit cost model
// and an L1 instruction-cache simulator, standing in for the paper's Pentium Pro
// testbed (200 MHz, 8 KB L1I, measured via performance counters).
//
// Counters reported:
//   cycles()        — total modeled cycles (includes i-fetch stalls)
//   ifetch_stalls() — stall cycles from I-cache misses (Table 1's middle column)
//   insns()         — dynamic instruction count
//
// Cost model (documented in DESIGN.md; absolute values are a model, shapes are what
// the reproduction relies on):
//   every instruction          1 cycle
//   memory load/store          +1
//   signed/unsigned divide     +20
//   direct call                +8, +2 per argument (IA-32 cdecl: arguments travel
//                              through the stack in memory; prologue/epilogue)
//   indirect call              +15 on a BTB miss (target differs from the last one
//                              seen at this call site), +3 when predicted,
//                              +2 per argument — the P6 BTB predicts indirect
//                              branches to their last target, so monomorphic call
//                              sites (the common Click case) are cheap after warmup
//   return                     +4
//   native (environment) call  +5 flat
//   I-cache miss               +8 stall cycles (counted separately too)
#ifndef SRC_VM_MACHINE_H_
#define SRC_VM_MACHINE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/vm/image.h"

namespace knit {

struct CostModel {
  long long base = 1;
  // Fuel: the instruction budget for a Machine (overridable per machine with
  // set_max_insns). Exhausting it raises a clean "fuel exhausted" trap so runaway
  // or cyclic code cannot hang a harness.
  long long max_insns = 2'000'000'000;
  long long mem_access = 1;
  long long divide = 20;
  long long call_overhead = 8;
  long long indirect_call_overhead = 15;  // BTB miss
  long long indirect_predicted = 3;       // BTB hit (same target as last time)
  long long per_argument = 2;
  long long ret_overhead = 4;
  long long native_cost = 5;

  int icache_bytes = 8192;
  int icache_line = 32;
  int icache_ways = 4;
  long long icache_miss_stall = 8;
};

class Machine;

// A native (environment) callable. Receives the machine (for memory access) and the
// popped argument values; returns the result (ignored for void uses).
using NativeFn = std::function<uint32_t(Machine&, const std::vector<uint32_t>&)>;

// One forced failure: the Nth invocation of `function` (a VM function or a native,
// by link name) is intercepted before its body runs. `trap` makes it trap the
// machine; otherwise the call is skipped and `value` is returned in its place (for
// int-returning functions, a nonzero `value` models "initializer reported failure").
struct FaultInjection {
  std::string function;
  long long invocation = 1;  // 1-based: fail the Nth call
  bool trap = true;
  uint32_t value = 1;  // result substituted when !trap
};

// A fault-injection plan, used by the init/fini robustness harness to prove
// rollback correct under every possible failure point.
struct FaultPlan {
  std::vector<FaultInjection> injections;

  // Named swap-path injection points, consumed by the ReconfigEngine (not the
  // Machine): "swap-link" fails the replacement link, "swap-init" forces a
  // nonzero initializer status, "swap-init-trap" traps inside the initializer,
  // "swap-quiesce" aborts after quiescence is confirmed but before rebinding.
  std::vector<std::string> swap_points;

  bool empty() const { return injections.empty() && swap_points.empty(); }

  bool HasSwapPoint(const std::string& name) const {
    for (const std::string& point : swap_points) {
      if (point == name) {
        return true;
      }
    }
    return false;
  }
};

// ---- component profiling -----------------------------------------------------
//
// When profiling is enabled (Machine::EnableProfiling), every modeled cycle,
// I-cache stall, and instruction fetch is attributed to the Knit component whose
// code was executing (BytecodeFunction::component, stamped by the compile stage),
// and every call instruction whose caller and callee belong to different
// components is counted as a boundary crossing. Profiling is an observer: cycle
// counts, RunResults, and memory are bit-identical with profiling on or off, and
// a profiling-off run pays nothing (one untaken branch per instruction).
// Pseudo-components: "<env>" (native/environment calls), "<init>" (the generated
// knit__init/knit__fini driver), "<other>" (functions without attribution, e.g.
// hand-assembled images).

// One component's share of a profiled run.
struct ComponentProfileEntry {
  std::string component;        // instance path or pseudo-component
  long long cycles = 0;         // includes this component's I-cache stalls
  long long ifetch_stalls = 0;
  long long insns = 0;
  long long calls_in = 0;   // calls entering from a different component
  long long calls_out = 0;  // calls leaving to a different component (incl. <env>)
  // Heap attribution (filled when an allocator unit reports through the
  // __alloc_note/__free_note intrinsics): bytes this component requested and
  // released, and the peak of its own live-byte count. Allocations are charged
  // to the REQUESTER — the innermost live frame whose component differs from
  // the allocator's — so the allocator unit itself stays a thin service row.
  long long bytes_alloc = 0;
  long long bytes_freed = 0;
  long long live_peak = 0;
};

// Call counts at component granularity. Rows with caller == callee are
// intra-component calls; rows with caller != callee are the boundary crossings
// flattening exists to eliminate.
struct BoundaryEdge {
  std::string caller;
  std::string callee;
  long long calls = 0;
};

// One component-entry or -exit on the modeled cycle timeline; emitted whenever a
// call/return moves execution into a frame of a different component (host entries
// included). Events nest like frames do, so the sequence renders as a flame chart
// (see ComponentProfileTrace / trace_event.h).
struct ProfileEvent {
  int component = 0;  // index into ComponentProfile::component_names
  bool begin = false;
  long long at_cycle = 0;
};

// Per-function entry counts from a profiled window, keyed by function name (the
// stable identity across rebuilds of the same configuration). Functions never
// entered are omitted — their absence is what the outline-cold PGO pass keys on.
struct FunctionCallCount {
  std::string function;
  long long calls = 0;
};

struct ComponentProfile {
  std::vector<ComponentProfileEntry> components;  // cycles-descending, then name
  std::vector<BoundaryEdge> edges;                // calls-descending, then names
  std::vector<FunctionCallCount> function_calls;  // calls-descending, then name
  std::vector<std::string> component_names;       // ProfileEvent::component table
  std::vector<ProfileEvent> events;
  bool events_truncated = false;  // hit the event cap; counters remain exact

  long long total_cycles = 0;  // sums of the per-component rows; equal to the
  long long total_ifetch_stalls = 0;  // Machine counter deltas over the profiled
  long long total_insns = 0;          // window — attribution never loses a cycle
  long long boundary_calls = 0;       // sum of edges with caller != callee
  // Exact sums of the per-component bytes_alloc/bytes_freed rows; equal to the
  // Machine's bytes_allocated()/bytes_freed() deltas over the profiled window
  // (live peaks are per-component maxima and deliberately have no sum row).
  long long total_bytes_alloc = 0;
  long long total_bytes_freed = 0;

  // Renders the per-component table and the top boundary edges as fixed-width
  // text (benches and knitc share this format).
  std::string ToText(size_t max_edges = 10) const;
};

struct RunResult {
  bool ok = false;
  uint32_t value = 0;
  std::string error;  // set when !ok: trap message plus rendered backtrace
  // Call stack at the trap, innermost frame first, each entry "function (pc N)".
  // Empty on success.
  std::vector<std::string> backtrace;
  // Snapshot of the machine's accumulated component attribution (counters and
  // edges only — events stay on the Machine; see Machine::Profile). Empty unless
  // profiling was enabled.
  ComponentProfile profile;
};

class Machine {
 public:
  Machine(const Image& image, CostModel cost = CostModel(), uint32_t memory_bytes = 1 << 24);

  // Binds an implementation to a native name from the image. Unbound natives trap
  // when called. Built-ins (__sbrk, __putchar, __puthex, __cycles, __vararg,
  // __vararg_count, __abort, __trace, __alloc_note, __free_note) are pre-bound
  // when present in the image.
  void BindNative(const std::string& name, NativeFn fn);

  // Calls a function by global symbol name or id. Runs to completion.
  RunResult Call(const std::string& name, std::vector<uint32_t> args = {});
  RunResult CallId(int function_id, std::vector<uint32_t> args = {});

  // Counters.
  long long cycles() const { return cycles_; }
  long long ifetch_stalls() const { return ifetch_stalls_; }
  long long insns() const { return insns_; }
  void ResetCounters();

  // Component profiling (see ComponentProfile above). EnableProfiling builds the
  // function-id -> component table from the image and zeroes the attribution;
  // `max_events` caps the entry/exit event log (counters are exact regardless —
  // when the cap is hit, events stop and Profile().events_truncated is set).
  // Natives must not re-enter the Machine while profiling (none of the built-ins
  // do): a nested Call would double-attribute the nested cycles.
  void EnableProfiling(size_t max_events = 1 << 20);
  void DisableProfiling() { profiling_ = false; }
  bool profiling() const { return profiling_; }
  // Zeroes the accumulated attribution and event log (e.g. after warmup/init, so
  // a measured window sums exactly to the counter deltas over that window).
  void ResetProfile();
  // Snapshot of the accumulated attribution. `include_events` false skips copying
  // the (possibly large) event log.
  ComponentProfile Profile(bool include_events = true) const;

  // Fuel limit (defensive against runaway corpus code): exceeding it traps with
  // "fuel exhausted". Defaults to CostModel::max_insns.
  void set_max_insns(long long max) { max_insns_ = max; }
  long long fuel_remaining() const { return max_insns_ > insns_ ? max_insns_ - insns_ : 0; }

  // Fault injection: installing a plan resets the per-function invocation counters;
  // every subsequent call of a planned function is counted and the matching
  // invocation is forced to fail (see FaultInjection).
  void set_fault_plan(FaultPlan plan);
  void ClearFaultPlan() { set_fault_plan(FaultPlan()); }
  const FaultPlan& fault_plan() const { return fault_plan_; }

  // Memory access (for natives and tests). Out-of-range accesses trap the current
  // execution; from the host side they return 0 / are ignored with ok_ set false.
  uint32_t ReadWord(uint32_t address);
  void WriteWord(uint32_t address, uint32_t value);
  uint8_t ReadByte(uint32_t address);
  void WriteByte(uint32_t address, uint8_t value);
  std::string ReadCString(uint32_t address, uint32_t max_length = 4096);

  // Console output captured from __putchar (and from environment natives that
  // choose to print via AppendConsole).
  const std::string& console() const { return console_; }
  void AppendConsole(char c) { console_ += c; }
  void ClearConsole() { console_.clear(); }

  // Heap page-grant primitive, exposed to programs via the __sbrk native. This
  // is NOT an allocator: it hands out page-aligned regions (requests round up
  // to 4 KB pages) and never reuses them. Allocator UNITS (src/oskit
  // alloc_corpus) call it to grow their slabs and carve objects out themselves.
  // Exhaustion (the grant would run into the stack guard) returns 0 — the null
  // page — so allocators can surface failure as a null pointer, never a trap.
  uint32_t Sbrk(uint32_t bytes);
  uint32_t heap_end() const { return heap_end_; }

  // Heap accounting, reported by allocator units through the __alloc_note /
  // __free_note intrinsics on every SUCCESSFUL malloc/free. The totals are
  // always on (cumulative over the machine's lifetime — ResetCounters leaves
  // them alone so live_bytes stays truthful); per-component buckets fill only
  // while profiling, attributed to the requesting component (see
  // ComponentProfileEntry). Σ per-component == total by construction.
  void NoteAlloc(uint32_t bytes);
  void NoteFree(uint32_t bytes);
  long long bytes_allocated() const { return bytes_allocated_; }
  long long bytes_freed() const { return bytes_freed_; }
  long long live_bytes() const { return bytes_allocated_ - bytes_freed_; }
  long long live_peak() const { return live_peak_; }

  // Variadic support for natives implementing __vararg/__vararg_count: the current
  // frame's variadic arguments.
  int CurrentVarargCount() const;
  uint32_t CurrentVararg(int index);

  // ---- live reconfiguration support (see src/reconfig/) ----

  // True when no live frame belongs to `component` (BytecodeFunction::component of
  // the frame's function). A swap of that instance is safe exactly then: no call
  // into the old code is mid-flight, so rebinding can never tear a frame.
  bool ComponentQuiescent(const std::string& component) const;

  // Number of live frames (0 when the machine is idle between Calls).
  size_t FrameDepth() const { return frames_.size(); }

  // Nested-execution guard for natives that re-enter Call/CallId (the reconfig
  // engine's initializer runs do this): capture EvalDepth() before the nested
  // call; if it trapped, RecoverNestedTrap restores the evaluation stack and
  // clears the trap state so the outer execution can continue. The outer frames
  // themselves are untouched — CallId only unwinds frames it pushed.
  size_t EvalDepth() const { return eval_.size(); }
  void RecoverNestedTrap(size_t eval_depth);

  // Re-syncs machine state after the reconfig engine grew image().functions /
  // bindings in place: extends the profiling attribution table for the new
  // function ids (interning new component names) WITHOUT zeroing accumulated
  // attribution, and drops BTB entries so stale indirect-call predictions can't
  // reference retired targets. No-op for the non-profiling, empty-BTB case.
  void RefreshAfterImageGrowth();

  const Image& image() const { return image_; }

 private:
  struct Frame {
    int function = -1;
    int pc = 0;
    uint32_t fp = 0;
    size_t eval_base = 0;
    int vararg_count = 0;
    uint32_t vararg_base = 0;
    uint32_t saved_sp = 0;
  };

  enum class FaultAction { kNone, kTrap, kReturn };

  void Trap(const std::string& message);
  std::string TrapError() const;
  FaultAction CheckFault(const std::string& function, uint32_t* value_out);
  bool CheckRange(uint32_t address, uint32_t size);
  void ICacheAccess(uint32_t text_address);
  bool EnterFunction(int function_id, const uint32_t* args, int argc);
  void BindBuiltins();

  // Profiling helpers (only called when profiling_).
  void ProfileCall(int caller_component, int callee_component);
  void ProfileMark(int component, bool begin);
  // The component a heap note is charged to: walking frames innermost-first,
  // the first frame whose component differs from the innermost's (the
  // allocator unit running the note); the allocator's own component when no
  // caller crosses a boundary; -1 with no frames (host-driven notes).
  int RequesterComponent() const;
  RunResult FinishRun(RunResult result);  // attach the profile snapshot if enabled

  const Image& image_;
  CostModel cost_;
  std::vector<uint8_t> memory_;
  uint32_t heap_end_;
  uint32_t stack_pointer_;

  std::vector<uint32_t> eval_;
  std::vector<Frame> frames_;

  std::map<std::string, NativeFn> natives_;
  std::string console_;

  long long cycles_ = 0;
  long long ifetch_stalls_ = 0;
  long long insns_ = 0;
  long long max_insns_;  // initialized from CostModel::max_insns

  // Heap accounting totals (see NoteAlloc/NoteFree): cumulative, monotonic,
  // and survive ResetCounters so live_bytes() is always allocated - freed.
  long long bytes_allocated_ = 0;
  long long bytes_freed_ = 0;
  long long live_peak_ = 0;

  bool trapped_ = false;
  std::string trap_message_;
  std::vector<std::string> trap_backtrace_;

  FaultPlan fault_plan_;
  std::map<std::string, long long> invocation_counts_;

  // Profiling state. component id = index into profile_components_; natives all
  // attribute to env_component_; the host side of a Call is id -1 (no bucket).
  bool profiling_ = false;
  size_t max_profile_events_ = 0;
  std::vector<std::string> profile_components_;
  std::vector<int> function_component_;  // function id -> component id
  int env_component_ = -1;
  std::vector<long long> profile_cycles_;
  std::vector<long long> profile_stalls_;
  std::vector<long long> profile_insns_;
  std::vector<long long> profile_alloc_;      // bytes requested, per component
  std::vector<long long> profile_freed_;      // bytes released, per component
  std::vector<long long> profile_live_;       // current live bytes, per component
  std::vector<long long> profile_live_peak_;  // max of profile_live_ per component
  std::map<std::pair<int, int>, long long> profile_edges_;  // (caller, callee) -> calls
  std::vector<long long> profile_fn_calls_;                 // function id -> entries
  std::vector<ProfileEvent> profile_events_;
  bool profile_events_truncated_ = false;

  // I-cache state: per set, per way: tag (-1 empty) and LRU stamp.
  struct CacheWay {
    int64_t tag = -1;
    uint64_t stamp = 0;
  };
  std::vector<CacheWay> icache_;
  int icache_sets_ = 0;
  uint64_t icache_clock_ = 0;

  // Branch target buffer for indirect calls: (function id, pc) -> last target.
  std::map<std::pair<int, int>, int> btb_;
};

}  // namespace knit

#endif  // SRC_VM_MACHINE_H_
