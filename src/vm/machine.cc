#include "src/vm/machine.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace knit {

namespace {
constexpr uint32_t kNullGuard = 0x1000;  // accesses below this address trap
constexpr uint32_t kStackBytes = 1 << 20;
}  // namespace

std::string ComponentProfile::ToText(size_t max_edges) const {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line), "  %-32s %12s %6s %10s %10s %9s %9s\n", "component",
                "cycles", "cyc%", "stalls", "insns", "calls-in", "calls-out");
  out += line;
  for (const ComponentProfileEntry& entry : components) {
    double share = total_cycles > 0 ? 100.0 * double(entry.cycles) / double(total_cycles) : 0;
    std::snprintf(line, sizeof(line), "  %-32s %12lld %5.1f%% %10lld %10lld %9lld %9lld\n",
                  entry.component.c_str(), entry.cycles, share, entry.ifetch_stalls,
                  entry.insns, entry.calls_in, entry.calls_out);
    out += line;
  }
  std::snprintf(line, sizeof(line), "  %-32s %12lld %5.1f%% %10lld %10lld\n", "total",
                total_cycles, components.empty() ? 0.0 : 100.0, total_ifetch_stalls,
                total_insns);
  out += line;
  std::snprintf(line, sizeof(line), "  boundary calls: %lld\n", boundary_calls);
  out += line;
  if (total_bytes_alloc > 0 || total_bytes_freed > 0) {
    std::snprintf(line, sizeof(line), "  heap: %lld bytes allocated, %lld freed\n",
                  total_bytes_alloc, total_bytes_freed);
    out += line;
    for (const ComponentProfileEntry& entry : components) {
      if (entry.bytes_alloc == 0 && entry.bytes_freed == 0) {
        continue;
      }
      std::snprintf(line, sizeof(line), "    %-30s alloc %10lld  freed %10lld  peak %10lld\n",
                    entry.component.c_str(), entry.bytes_alloc, entry.bytes_freed,
                    entry.live_peak);
      out += line;
    }
  }
  size_t shown = 0;
  for (const BoundaryEdge& edge : edges) {
    if (edge.caller == edge.callee) {
      continue;  // intra-component rows are not boundaries
    }
    if (shown == max_edges) {
      out += "  ... (more edges elided)\n";
      break;
    }
    std::snprintf(line, sizeof(line), "    %-30s -> %-30s %10lld calls\n",
                  edge.caller.c_str(), edge.callee.c_str(), edge.calls);
    out += line;
    ++shown;
  }
  return out;
}

Machine::Machine(const Image& image, CostModel cost, uint32_t memory_bytes)
    : image_(image), cost_(cost), memory_(memory_bytes, 0), max_insns_(cost.max_insns) {
  assert(image.data_base >= kNullGuard);
  // Load the data image.
  for (size_t i = 0; i < image.data.size(); ++i) {
    memory_[image.data_base + i] = image.data[i];
  }
  heap_end_ = image.data_base + static_cast<uint32_t>(image.data.size());
  heap_end_ = (heap_end_ + 0xFFF) & ~0xFFFu;  // page align
  stack_pointer_ = memory_bytes;

  icache_sets_ = cost_.icache_bytes / (cost_.icache_line * cost_.icache_ways);
  icache_.assign(static_cast<size_t>(icache_sets_) * cost_.icache_ways, CacheWay{});

  BindBuiltins();
}

void Machine::BindBuiltins() {
  BindNative("__sbrk", [](Machine& m, const std::vector<uint32_t>& args) {
    return m.Sbrk(args.empty() ? 0 : args[0]);
  });
  BindNative("__putchar", [](Machine& m, const std::vector<uint32_t>& args) {
    if (!args.empty()) {
      m.console_ += static_cast<char>(args[0] & 0xFF);
    }
    return 0u;
  });
  BindNative("__cycles", [](Machine& m, const std::vector<uint32_t>&) {
    return static_cast<uint32_t>(m.cycles_);
  });
  BindNative("__vararg_count", [](Machine& m, const std::vector<uint32_t>&) {
    return static_cast<uint32_t>(m.CurrentVarargCount());
  });
  BindNative("__vararg", [](Machine& m, const std::vector<uint32_t>& args) {
    return m.CurrentVararg(args.empty() ? 0 : static_cast<int>(args[0]));
  });
  BindNative("__abort", [](Machine& m, const std::vector<uint32_t>& args) {
    m.Trap("program aborted (code " + std::to_string(args.empty() ? 0 : args[0]) + ")");
    return 0u;
  });
  BindNative("__trace", [](Machine& m, const std::vector<uint32_t>& args) {
    m.console_ += "[trace " + std::to_string(args.empty() ? 0 : static_cast<int32_t>(args[0])) +
                  "]";
    return 0u;
  });
  // Heap accounting intrinsics: allocator units report each SUCCESSFUL
  // malloc/free so the machine can keep exact totals (and, while profiling,
  // per-requester attribution) without knowing any allocator's internals.
  BindNative("__alloc_note", [](Machine& m, const std::vector<uint32_t>& args) {
    m.NoteAlloc(args.empty() ? 0 : args[0]);
    return 0u;
  });
  BindNative("__free_note", [](Machine& m, const std::vector<uint32_t>& args) {
    m.NoteFree(args.empty() ? 0 : args[0]);
    return 0u;
  });
}

void Machine::BindNative(const std::string& name, NativeFn fn) {
  natives_[name] = std::move(fn);
}

void Machine::ResetCounters() {
  cycles_ = 0;
  ifetch_stalls_ = 0;
  insns_ = 0;
}

void Machine::EnableProfiling(size_t max_events) {
  profiling_ = true;
  max_profile_events_ = max_events;
  profile_components_.clear();
  function_component_.assign(image_.functions.size(), -1);
  std::map<std::string, int> ids;
  auto intern = [&](const std::string& name) {
    auto [it, inserted] = ids.emplace(name, static_cast<int>(profile_components_.size()));
    if (inserted) {
      profile_components_.push_back(name);
    }
    return it->second;
  };
  for (size_t f = 0; f < image_.functions.size(); ++f) {
    const std::string& component = image_.functions[f].component;
    function_component_[f] = intern(component.empty() ? "<other>" : component);
  }
  env_component_ = intern("<env>");
  ResetProfile();
}

void Machine::ResetProfile() {
  profile_cycles_.assign(profile_components_.size(), 0);
  profile_stalls_.assign(profile_components_.size(), 0);
  profile_insns_.assign(profile_components_.size(), 0);
  profile_alloc_.assign(profile_components_.size(), 0);
  profile_freed_.assign(profile_components_.size(), 0);
  profile_live_.assign(profile_components_.size(), 0);
  profile_live_peak_.assign(profile_components_.size(), 0);
  profile_fn_calls_.assign(image_.functions.size(), 0);
  profile_edges_.clear();
  profile_events_.clear();
  profile_events_truncated_ = false;
}

void Machine::ProfileCall(int caller_component, int callee_component) {
  if (caller_component < 0) {
    return;  // host-initiated call: there is no caller bucket
  }
  ++profile_edges_[{caller_component, callee_component}];
}

void Machine::ProfileMark(int component, bool begin) {
  if (profile_events_.size() >= max_profile_events_) {
    profile_events_truncated_ = true;
    return;
  }
  profile_events_.push_back(ProfileEvent{component, begin, cycles_});
}

ComponentProfile Machine::Profile(bool include_events) const {
  ComponentProfile out;
  size_t count = profile_components_.size();
  if (count == 0) {
    return out;  // profiling was never enabled
  }
  out.component_names = profile_components_;
  std::vector<long long> calls_in(count, 0);
  std::vector<long long> calls_out(count, 0);
  for (const auto& [edge, calls] : profile_edges_) {
    if (edge.first != edge.second) {
      calls_out[edge.first] += calls;
      calls_in[edge.second] += calls;
      out.boundary_calls += calls;
    }
    out.edges.push_back(
        BoundaryEdge{profile_components_[edge.first], profile_components_[edge.second], calls});
  }
  std::sort(out.edges.begin(), out.edges.end(), [](const BoundaryEdge& a, const BoundaryEdge& b) {
    if (a.calls != b.calls) {
      return a.calls > b.calls;
    }
    if (a.caller != b.caller) {
      return a.caller < b.caller;
    }
    return a.callee < b.callee;
  });
  for (size_t c = 0; c < count; ++c) {
    if (profile_cycles_[c] == 0 && profile_insns_[c] == 0 && profile_stalls_[c] == 0 &&
        calls_in[c] == 0 && calls_out[c] == 0 && profile_alloc_[c] == 0 &&
        profile_freed_[c] == 0) {
      continue;  // component never entered during the profiled window
    }
    ComponentProfileEntry entry;
    entry.component = profile_components_[c];
    entry.cycles = profile_cycles_[c];
    entry.ifetch_stalls = profile_stalls_[c];
    entry.insns = profile_insns_[c];
    entry.calls_in = calls_in[c];
    entry.calls_out = calls_out[c];
    entry.bytes_alloc = profile_alloc_[c];
    entry.bytes_freed = profile_freed_[c];
    entry.live_peak = profile_live_peak_[c];
    out.total_cycles += entry.cycles;
    out.total_ifetch_stalls += entry.ifetch_stalls;
    out.total_insns += entry.insns;
    out.total_bytes_alloc += entry.bytes_alloc;
    out.total_bytes_freed += entry.bytes_freed;
    out.components.push_back(std::move(entry));
  }
  std::sort(out.components.begin(), out.components.end(),
            [](const ComponentProfileEntry& a, const ComponentProfileEntry& b) {
              if (a.cycles != b.cycles) {
                return a.cycles > b.cycles;
              }
              return a.component < b.component;
            });
  for (size_t f = 0; f < profile_fn_calls_.size() && f < image_.functions.size(); ++f) {
    if (profile_fn_calls_[f] > 0 && !image_.functions[f].name.empty()) {
      out.function_calls.push_back(FunctionCallCount{image_.functions[f].name,
                                                     profile_fn_calls_[f]});
    }
  }
  std::sort(out.function_calls.begin(), out.function_calls.end(),
            [](const FunctionCallCount& a, const FunctionCallCount& b) {
              if (a.calls != b.calls) {
                return a.calls > b.calls;
              }
              return a.function < b.function;
            });
  out.events_truncated = profile_events_truncated_;
  if (include_events) {
    out.events = profile_events_;
  }
  return out;
}

RunResult Machine::FinishRun(RunResult result) {
  if (profiling_) {
    result.profile = Profile(false);
  }
  return result;
}

void Machine::Trap(const std::string& message) {
  if (!trapped_) {
    trapped_ = true;
    trap_message_ = message;
    // Snapshot the call stack before CallId unwinds it: function names innermost
    // first, with the instruction the frame was executing (pc already advanced).
    trap_backtrace_.clear();
    for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
      trap_backtrace_.push_back(image_.functions[it->function].name + " (pc " +
                                std::to_string(it->pc > 0 ? it->pc - 1 : 0) + ")");
    }
  }
}

std::string Machine::TrapError() const {
  std::string error = trap_message_.empty() ? "execution error" : trap_message_;
  for (const std::string& frame : trap_backtrace_) {
    error += "\n  at " + frame;
  }
  return error;
}

void Machine::set_fault_plan(FaultPlan plan) {
  fault_plan_ = std::move(plan);
  invocation_counts_.clear();
}

// Decides the planned fate of this invocation; the caller raises the trap itself so
// the backtrace reflects where the fault lands (inside the callee for functions, at
// the call site for natives).
Machine::FaultAction Machine::CheckFault(const std::string& function, uint32_t* value_out) {
  if (fault_plan_.empty()) {
    return FaultAction::kNone;
  }
  long long count = ++invocation_counts_[function];
  for (const FaultInjection& injection : fault_plan_.injections) {
    if (injection.function != function || injection.invocation != count) {
      continue;
    }
    if (injection.trap) {
      return FaultAction::kTrap;
    }
    *value_out = injection.value;
    return FaultAction::kReturn;
  }
  return FaultAction::kNone;
}

bool Machine::CheckRange(uint32_t address, uint32_t size) {
  if (address < kNullGuard) {
    Trap("null/guard-page dereference at address " + std::to_string(address));
    return false;
  }
  if (static_cast<uint64_t>(address) + size > memory_.size()) {
    Trap("out-of-range memory access at address " + std::to_string(address));
    return false;
  }
  return true;
}

uint32_t Machine::ReadWord(uint32_t address) {
  if (!CheckRange(address, 4)) {
    return 0;
  }
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(memory_[address + i]) << (8 * i);
  }
  return value;
}

void Machine::WriteWord(uint32_t address, uint32_t value) {
  if (!CheckRange(address, 4)) {
    return;
  }
  for (int i = 0; i < 4; ++i) {
    memory_[address + i] = static_cast<uint8_t>((value >> (8 * i)) & 0xFF);
  }
}

uint8_t Machine::ReadByte(uint32_t address) {
  if (!CheckRange(address, 1)) {
    return 0;
  }
  return memory_[address];
}

void Machine::WriteByte(uint32_t address, uint8_t value) {
  if (!CheckRange(address, 1)) {
    return;
  }
  memory_[address] = value;
}

std::string Machine::ReadCString(uint32_t address, uint32_t max_length) {
  std::string out;
  for (uint32_t i = 0; i < max_length; ++i) {
    uint8_t c = ReadByte(address + i);
    if (trapped_ || c == 0) {
      break;
    }
    out += static_cast<char>(c);
  }
  return out;
}

uint32_t Machine::Sbrk(uint32_t bytes) {
  // Page-grant primitive (see machine.h): requests round up to whole 4 KB
  // pages, and exhaustion returns 0 — allocator units turn that into a null
  // malloc result; only dereferencing null traps. The granted size is part of
  // the contract: a caller asking for N bytes owns (N + 0xFFF) & ~0xFFF.
  uint32_t base = heap_end_;
  uint64_t granted = (static_cast<uint64_t>(bytes) + 0xFFF) & ~uint64_t{0xFFF};
  if (granted == 0) {
    granted = 0x1000;
  }
  if (static_cast<uint64_t>(heap_end_) + granted >= stack_pointer_ - kStackBytes) {
    return 0;
  }
  heap_end_ += static_cast<uint32_t>(granted);
  return base;
}

int Machine::RequesterComponent() const {
  if (frames_.empty()) {
    return -1;
  }
  int allocator = function_component_[frames_.back().function];
  for (auto it = frames_.rbegin(); it != frames_.rend(); ++it) {
    int component = function_component_[it->function];
    if (component != allocator) {
      return component;
    }
  }
  return allocator;  // the allocator allocated for itself (e.g. its initializer)
}

void Machine::NoteAlloc(uint32_t bytes) {
  bytes_allocated_ += bytes;
  long long live = bytes_allocated_ - bytes_freed_;
  if (live > live_peak_) {
    live_peak_ = live;
  }
  if (profiling_) {
    int component = RequesterComponent();
    if (component >= 0) {
      profile_alloc_[component] += bytes;
      profile_live_[component] += bytes;
      if (profile_live_[component] > profile_live_peak_[component]) {
        profile_live_peak_[component] = profile_live_[component];
      }
    }
  }
}

void Machine::NoteFree(uint32_t bytes) {
  bytes_freed_ += bytes;
  if (profiling_) {
    int component = RequesterComponent();
    if (component >= 0) {
      profile_freed_[component] += bytes;
      profile_live_[component] -= bytes;
    }
  }
}

int Machine::CurrentVarargCount() const {
  // The __vararg natives execute while the variadic function's frame is on top.
  return frames_.empty() ? 0 : frames_.back().vararg_count;
}

uint32_t Machine::CurrentVararg(int index) {
  if (frames_.empty()) {
    return 0;
  }
  const Frame& frame = frames_.back();
  if (index < 0 || index >= frame.vararg_count) {
    return 0;
  }
  return ReadWord(frame.vararg_base + static_cast<uint32_t>(index) * 4);
}

bool Machine::ComponentQuiescent(const std::string& component) const {
  for (const Frame& frame : frames_) {
    if (image_.functions[frame.function].component == component) {
      return false;
    }
  }
  return true;
}

void Machine::RecoverNestedTrap(size_t eval_depth) {
  trapped_ = false;
  trap_message_.clear();
  trap_backtrace_.clear();
  // The trap unwind restored stack_pointer_ per popped frame but leaves whatever
  // the dead frames pushed on the evaluation stack; drop it so the interrupted
  // outer frame resumes with exactly the stack it had.
  if (eval_.size() > eval_depth) {
    eval_.resize(eval_depth);
  }
}

void Machine::RefreshAfterImageGrowth() {
  // A swap retargets call sites; retire the indirect-branch predictions so the
  // first post-swap call at each site pays the miss, as real hardware would.
  btb_.clear();
  if (!profiling_) {
    return;
  }
  // Extend (never reset) the attribution tables: new functions get component ids,
  // new components get zeroed buckets, accumulated attribution is preserved.
  std::map<std::string, int> ids;
  for (size_t c = 0; c < profile_components_.size(); ++c) {
    ids.emplace(profile_components_[c], static_cast<int>(c));
  }
  auto intern = [&](const std::string& name) {
    auto [it, inserted] = ids.emplace(name, static_cast<int>(profile_components_.size()));
    if (inserted) {
      profile_components_.push_back(name);
      profile_cycles_.push_back(0);
      profile_stalls_.push_back(0);
      profile_insns_.push_back(0);
      profile_alloc_.push_back(0);
      profile_freed_.push_back(0);
      profile_live_.push_back(0);
      profile_live_peak_.push_back(0);
    }
    return it->second;
  };
  for (size_t f = function_component_.size(); f < image_.functions.size(); ++f) {
    const std::string& component = image_.functions[f].component;
    function_component_.push_back(intern(component.empty() ? "<other>" : component));
  }
  profile_fn_calls_.resize(image_.functions.size(), 0);
}

void Machine::ICacheAccess(uint32_t text_address) {
  int64_t line = text_address / static_cast<uint32_t>(cost_.icache_line);
  int set = static_cast<int>(line % icache_sets_);
  int64_t tag = line / icache_sets_;
  CacheWay* ways = &icache_[static_cast<size_t>(set) * cost_.icache_ways];
  ++icache_clock_;
  int victim = 0;
  for (int w = 0; w < cost_.icache_ways; ++w) {
    if (ways[w].tag == tag) {
      ways[w].stamp = icache_clock_;
      return;  // hit
    }
    if (ways[w].stamp < ways[victim].stamp) {
      victim = w;
    }
  }
  // Miss: fill + stall.
  ways[victim].tag = tag;
  ways[victim].stamp = icache_clock_;
  ifetch_stalls_ += cost_.icache_miss_stall;
  cycles_ += cost_.icache_miss_stall;
}

bool Machine::EnterFunction(int function_id, const uint32_t* args, int argc) {
  const BytecodeFunction& function = image_.functions[function_id];
  int fixed = function.param_count;
  int extras = argc - fixed;
  if (extras < 0) {
    Trap("call to " + function.name + " with too few arguments");
    return false;
  }
  if (!function.variadic) {
    extras = 0;  // ignore surplus (checked by sema; defensive here)
  }
  uint32_t frame_bytes =
      static_cast<uint32_t>(function.frame_size) + static_cast<uint32_t>(extras) * 4 + 16;
  frame_bytes = (frame_bytes + 7) & ~7u;
  if (stack_pointer_ < heap_end_ + frame_bytes + 4096) {
    Trap("stack overflow entering " + function.name);
    return false;
  }
  Frame frame;
  frame.saved_sp = stack_pointer_;
  stack_pointer_ -= frame_bytes;
  frame.function = function_id;
  frame.pc = 0;
  frame.fp = stack_pointer_;
  frame.eval_base = eval_.size();
  frame.vararg_count = function.variadic ? extras : 0;
  frame.vararg_base = frame.fp + static_cast<uint32_t>(function.frame_size);
  // Copy fixed params into the first slots and varargs after the static frame.
  for (int i = 0; i < fixed && i < argc; ++i) {
    WriteWord(frame.fp + static_cast<uint32_t>(i) * 4, args[i]);
  }
  for (int i = 0; i < frame.vararg_count; ++i) {
    WriteWord(frame.vararg_base + static_cast<uint32_t>(i) * 4, args[fixed + i]);
  }
  if (profiling_) {
    ++profile_fn_calls_[function_id];
    // Entering a frame of a different component (the host counts as a different
    // component) opens a span on the event timeline.
    int callee = function_component_[function_id];
    int parent = frames_.empty() ? -1 : function_component_[frames_.back().function];
    if (callee != parent) {
      ProfileMark(callee, true);
    }
  }
  frames_.push_back(frame);
  return true;
}

RunResult Machine::Call(const std::string& name, std::vector<uint32_t> args) {
  int id = image_.FindFunction(name);
  if (id < 0) {
    return RunResult{false, 0, "no such function: " + name, {}};
  }
  return CallId(id, std::move(args));
}

RunResult Machine::CallId(int function_id, std::vector<uint32_t> args) {
  trapped_ = false;
  trap_message_.clear();
  trap_backtrace_.clear();
  size_t base_frames = frames_.size();

  if (function_id < 0 || function_id >= static_cast<int>(image_.functions.size())) {
    return RunResult{false, 0, "bad function id", {}};
  }
  uint32_t injected = 0;
  FaultAction action = CheckFault(image_.functions[function_id].name, &injected);
  if (action == FaultAction::kReturn) {
    return FinishRun(RunResult{true, injected, "", {}});
  }
  if (!EnterFunction(function_id, args.data(), static_cast<int>(args.size()))) {
    return FinishRun(RunResult{false, 0, TrapError(), trap_backtrace_});
  }
  if (action == FaultAction::kTrap) {
    // Trap inside the callee's frame so the backtrace names it.
    Trap("fault injected into '" + image_.functions[function_id].name + "'");
  }

  // Set at kRet when the popped frame returns control to the host; the loop exits
  // after the instruction's attribution is recorded.
  bool host_return = false;
  bool host_has_value = false;
  uint32_t host_value = 0;

  while (frames_.size() > base_frames && !trapped_) {
    Frame& frame = frames_.back();
    const BytecodeFunction& function = image_.functions[frame.function];
    if (frame.pc < 0 || static_cast<size_t>(frame.pc) >= function.code.size()) {
      Trap("pc out of range in " + function.name);
      break;
    }
    const Insn insn = function.code[frame.pc];
    // Profiling snapshot: everything this iteration adds to the counters —
    // including the I-fetch below and any per-op costs inside the switch — is
    // attributed to the component of the executing frame, so per-component sums
    // equal the counter deltas exactly.
    int profile_comp = -1;
    long long profile_c0 = 0;
    long long profile_s0 = 0;
    if (profiling_) {
      profile_comp = function_component_[frame.function];
      profile_c0 = cycles_;
      profile_s0 = ifetch_stalls_;
    }
    ICacheAccess(static_cast<uint32_t>(function.text_offset + frame.pc * 4));
    ++frame.pc;
    ++insns_;
    cycles_ += cost_.base;
    if (insns_ > max_insns_) {
      if (profiling_) {
        profile_cycles_[profile_comp] += cycles_ - profile_c0;
        profile_stalls_[profile_comp] += ifetch_stalls_ - profile_s0;
        ++profile_insns_[profile_comp];
      }
      Trap("fuel exhausted (instruction budget of " + std::to_string(max_insns_) +
           " insns exceeded)");
      break;
    }

    switch (insn.op) {
      case Op::kNop:
        break;
      case Op::kConstInt:
        eval_.push_back(static_cast<uint32_t>(insn.a));
        break;
      case Op::kConstSym:
        Trap("unresolved symbol reference executed (unlinked code)");
        break;
      case Op::kAddrLocal:
        eval_.push_back(frame.fp + static_cast<uint32_t>(insn.a));
        break;
      case Op::kLoadLocal: {
        uint32_t address = frame.fp + static_cast<uint32_t>(insn.a);
        if (insn.b == 1) {
          eval_.push_back(ReadByte(address));
        } else {
          eval_.push_back(ReadWord(address));
        }
        break;
      }
      case Op::kStoreLocal: {
        if (eval_.size() <= frame.eval_base) {
          Trap("evaluation stack underflow");
          break;
        }
        uint32_t value = eval_.back();
        eval_.pop_back();
        uint32_t address = frame.fp + static_cast<uint32_t>(insn.a);
        if (insn.b == 1) {
          WriteByte(address, static_cast<uint8_t>(value & 0xFF));
        } else {
          WriteWord(address, value);
        }
        break;
      }
      case Op::kLoadMem: {
        if (eval_.size() <= frame.eval_base) {
          Trap("evaluation stack underflow");
          break;
        }
        uint32_t address = eval_.back();
        eval_.pop_back();
        cycles_ += cost_.mem_access;
        if (insn.b == 1) {
          eval_.push_back(ReadByte(address));
        } else {
          eval_.push_back(ReadWord(address));
        }
        break;
      }
      case Op::kStoreMem: {
        if (eval_.size() < frame.eval_base + 2) {
          Trap("evaluation stack underflow");
          break;
        }
        uint32_t value = eval_.back();
        eval_.pop_back();
        uint32_t address = eval_.back();
        eval_.pop_back();
        cycles_ += cost_.mem_access;
        if (insn.b == 1) {
          WriteByte(address, static_cast<uint8_t>(value & 0xFF));
        } else {
          WriteWord(address, value);
        }
        break;
      }
      case Op::kDup:
        if (eval_.size() <= frame.eval_base) {
          Trap("evaluation stack underflow");
          break;
        }
        eval_.push_back(eval_.back());
        break;
      case Op::kPop:
        if (eval_.size() <= frame.eval_base) {
          Trap("evaluation stack underflow");
          break;
        }
        eval_.pop_back();
        break;
      case Op::kSwap:
        if (eval_.size() < frame.eval_base + 2) {
          Trap("evaluation stack underflow");
          break;
        }
        std::swap(eval_[eval_.size() - 1], eval_[eval_.size() - 2]);
        break;
      case Op::kNeg:
      case Op::kBitNot:
      case Op::kLogNot:
      case Op::kSext8:
        if (eval_.size() <= frame.eval_base) {
          Trap("evaluation stack underflow");
          break;
        }
        if (insn.op == Op::kNeg) {
          eval_.back() = 0u - eval_.back();
        } else if (insn.op == Op::kBitNot) {
          eval_.back() = ~eval_.back();
        } else if (insn.op == Op::kLogNot) {
          eval_.back() = eval_.back() == 0 ? 1 : 0;
        } else {
          eval_.back() = static_cast<uint32_t>(
              static_cast<int32_t>(static_cast<int8_t>(eval_.back() & 0xFF)));
        }
        break;
      case Op::kJmp:
        frame.pc = insn.a;
        break;
      case Op::kJz: {
        if (eval_.size() <= frame.eval_base) {
          Trap("evaluation stack underflow");
          break;
        }
        uint32_t value = eval_.back();
        eval_.pop_back();
        if (value == 0) {
          frame.pc = insn.a;
        }
        break;
      }
      case Op::kJnz: {
        if (eval_.size() <= frame.eval_base) {
          Trap("evaluation stack underflow");
          break;
        }
        uint32_t value = eval_.back();
        eval_.pop_back();
        if (value != 0) {
          frame.pc = insn.a;
        }
        break;
      }
      case Op::kCall:
      case Op::kCallIndirect:
      case Op::kCallBound: {
        int callable;
        if (insn.op == Op::kCall) {
          callable = insn.a;
          cycles_ += cost_.call_overhead;
        } else if (insn.op == Op::kCallBound) {
          if (insn.a < 0 || static_cast<size_t>(insn.a) >= image_.bindings.size()) {
            Trap("bound call through invalid binding slot " + std::to_string(insn.a));
            break;
          }
          callable = image_.bindings[insn.a].target;
          // A bound call pays the direct-call overhead plus one memory access to
          // load the slot, and resolves like an indirect branch: the BTB predicts
          // the slot's last target, so the steady-state cost of swappability is
          // call_overhead + mem_access + indirect_predicted per boundary call.
          cycles_ += cost_.call_overhead + cost_.mem_access;
          auto [btb_it, btb_new] = btb_.try_emplace({frame.function, frame.pc - 1}, callable);
          if (!btb_new && btb_it->second == callable) {
            cycles_ += cost_.indirect_predicted;
          } else {
            btb_it->second = callable;
            cycles_ += cost_.indirect_call_overhead;
          }
        } else {
          if (eval_.size() <= frame.eval_base) {
            Trap("evaluation stack underflow");
            break;
          }
          uint32_t ref = eval_.back();
          eval_.pop_back();
          if (!IsFuncRef(ref)) {
            Trap("indirect call through a non-function value");
            break;
          }
          callable = DecodeFuncRef(ref);
          auto [btb_it, btb_new] = btb_.try_emplace({frame.function, frame.pc - 1}, callable);
          if (!btb_new && btb_it->second == callable) {
            cycles_ += cost_.indirect_predicted;
          } else {
            btb_it->second = callable;
            cycles_ += cost_.indirect_call_overhead;
          }
        }
        int argc = CallArgc(insn.b);
        cycles_ += cost_.per_argument * argc;
        if (eval_.size() < frame.eval_base + static_cast<size_t>(argc)) {
          Trap("evaluation stack underflow at call");
          break;
        }
        const uint32_t* args_begin = eval_.data() + (eval_.size() - argc);
        if (callable < 0) {
          Trap("call through unresolved or non-text symbol");
          break;
        }
        if (image_.IsNativeId(callable)) {
          int native_index = callable - static_cast<int>(image_.functions.size());
          const std::string& native_name = image_.natives[native_index];
          uint32_t fault_value = 0;
          FaultAction action = CheckFault(native_name, &fault_value);
          if (action == FaultAction::kTrap) {
            Trap("fault injected into '" + native_name + "'");
            break;
          }
          if (action == FaultAction::kReturn) {
            eval_.resize(eval_.size() - argc);
            if (CallReturns(insn.b)) {
              eval_.push_back(fault_value);
            }
            break;
          }
          auto it = natives_.find(native_name);
          if (it == natives_.end()) {
            Trap("native '" + native_name + "' is not bound");
            break;
          }
          std::vector<uint32_t> native_args(args_begin, args_begin + argc);
          eval_.resize(eval_.size() - argc);
          cycles_ += cost_.native_cost;
          if (profiling_) {
            ProfileCall(profile_comp, env_component_);
          }
          uint32_t result = it->second(*this, native_args);
          if (CallReturns(insn.b)) {
            eval_.push_back(result);
          }
          break;
        }
        uint32_t fault_value = 0;
        FaultAction action = CheckFault(image_.functions[callable].name, &fault_value);
        if (action == FaultAction::kReturn) {
          eval_.resize(eval_.size() - argc);
          if (CallReturns(insn.b)) {
            eval_.push_back(fault_value);
          }
          break;
        }
        std::vector<uint32_t> callee_args(args_begin, args_begin + argc);
        eval_.resize(eval_.size() - argc);
        if (!EnterFunction(callable, callee_args.data(), argc)) {
          break;
        }
        if (profiling_) {
          ProfileCall(profile_comp, function_component_[callable]);
        }
        if (action == FaultAction::kTrap) {
          // Trap inside the callee's frame so the backtrace names it.
          Trap("fault injected into '" + image_.functions[callable].name + "'");
          break;
        }
        // Mismatched value expectations are reconciled at the callee's kRet.
        frames_.back().vararg_count = image_.functions[callable].variadic
                                          ? argc - image_.functions[callable].param_count
                                          : 0;
        break;
      }
      case Op::kRet: {
        cycles_ += cost_.ret_overhead;
        uint32_t value = 0;
        bool has_value = insn.a != 0;
        if (has_value) {
          if (eval_.size() <= frame.eval_base) {
            Trap("return with empty evaluation stack");
            break;
          }
          value = eval_.back();
        }
        // Discard the callee's leftover stack and frame.
        eval_.resize(frame.eval_base);
        stack_pointer_ = frame.saved_sp;
        bool caller_exists = frames_.size() > base_frames + 1;
        int caller_index = static_cast<int>(frames_.size()) - 2;
        if (profiling_) {
          // Close the span if control moves to a different component (or the host).
          int parent = caller_exists ? function_component_[frames_[caller_index].function] : -1;
          if (profile_comp != parent) {
            ProfileMark(profile_comp, false);
          }
        }
        frames_.pop_back();
        if (!caller_exists) {
          // Returning to the host: exit after this instruction's attribution below.
          host_return = true;
          host_has_value = has_value;
          host_value = value;
          break;
        }
        // The caller's kCall encoded whether it expects a value; we cannot see that
        // insn here cheaply, so push if the callee returns one — codegen keeps the
        // conventions consistent (kPop after calls whose results are unused).
        (void)caller_index;
        if (has_value) {
          eval_.push_back(value);
        }
        break;
      }
      default: {
        // Binary ALU.
        if (eval_.size() < frame.eval_base + 2) {
          Trap("evaluation stack underflow");
          break;
        }
        uint32_t y = eval_.back();
        eval_.pop_back();
        uint32_t x = eval_.back();
        eval_.pop_back();
        int32_t sx = static_cast<int32_t>(x);
        int32_t sy = static_cast<int32_t>(y);
        uint32_t result = 0;
        switch (insn.op) {
          case Op::kAdd:
            result = x + y;
            break;
          case Op::kSub:
            result = x - y;
            break;
          case Op::kMul:
            result = x * y;
            break;
          case Op::kDivS:
            cycles_ += cost_.divide;
            if (sy == 0) {
              Trap("division by zero");
              break;
            }
            result = static_cast<uint32_t>(sx / sy);
            break;
          case Op::kDivU:
            cycles_ += cost_.divide;
            if (y == 0) {
              Trap("division by zero");
              break;
            }
            result = x / y;
            break;
          case Op::kModS:
            cycles_ += cost_.divide;
            if (sy == 0) {
              Trap("modulo by zero");
              break;
            }
            result = static_cast<uint32_t>(sx % sy);
            break;
          case Op::kModU:
            cycles_ += cost_.divide;
            if (y == 0) {
              Trap("modulo by zero");
              break;
            }
            result = x % y;
            break;
          case Op::kShl:
            result = x << (y & 31);
            break;
          case Op::kShrS:
            result = static_cast<uint32_t>(sx >> (y & 31));
            break;
          case Op::kShrU:
            result = x >> (y & 31);
            break;
          case Op::kAnd:
            result = x & y;
            break;
          case Op::kOr:
            result = x | y;
            break;
          case Op::kXor:
            result = x ^ y;
            break;
          case Op::kEq:
            result = x == y;
            break;
          case Op::kNe:
            result = x != y;
            break;
          case Op::kLtS:
            result = sx < sy;
            break;
          case Op::kLtU:
            result = x < y;
            break;
          case Op::kLeS:
            result = sx <= sy;
            break;
          case Op::kLeU:
            result = x <= y;
            break;
          case Op::kGtS:
            result = sx > sy;
            break;
          case Op::kGtU:
            result = x > y;
            break;
          case Op::kGeS:
            result = sx >= sy;
            break;
          case Op::kGeU:
            result = x >= y;
            break;
          default:
            Trap("illegal instruction");
            break;
        }
        if (!trapped_) {
          eval_.push_back(result);
        }
        break;
      }
    }

    if (profiling_) {
      profile_cycles_[profile_comp] += cycles_ - profile_c0;
      profile_stalls_[profile_comp] += ifetch_stalls_ - profile_s0;
      ++profile_insns_[profile_comp];
    }
    if (host_return) {
      return FinishRun(
          RunResult{!trapped_, host_has_value ? host_value : 0, trap_message_, trap_backtrace_});
    }
  }

  // Trapped (or ran out of frames unexpectedly): unwind.
  while (frames_.size() > base_frames) {
    if (profiling_) {
      int comp = function_component_[frames_.back().function];
      int parent = frames_.size() > base_frames + 1
                       ? function_component_[frames_[frames_.size() - 2].function]
                       : -1;
      if (comp != parent) {
        ProfileMark(comp, false);
      }
    }
    stack_pointer_ = frames_.back().saved_sp;
    frames_.pop_back();
  }
  return FinishRun(RunResult{false, 0, TrapError(), trap_backtrace_});
}

}  // namespace knit
