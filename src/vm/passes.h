// The optimization pass manager. Every transform the compiler applies — per
// relocatable object during codegen, and per linked image after ld — is a named
// Pass driven by a PassManager, which records per-pass statistics (runs, insn
// counts before/after, wall time) for `knitc --print-passes`.
//
// Two scopes:
//
//  * object scope — the per-TU pipeline (inline, simplify, lvn, jump-thread,
//    peephole, dce-local). The manager drives *functions as the outer loop*:
//    every function pass runs on function f before any pass runs on f+1. That
//    ordering is load-bearing — the inliner only splices callees defined earlier
//    in the object, so callees must be fully optimized before later callers
//    inline them. Output is bit-identical to the historical OptimizeObject.
//
//  * image scope — whole-program passes over the linked Image, run by the
//    pipeline's LinkOptimize stage at -O2: indirect-call devirtualization,
//    cross-object inlining through resolved import/export bindings (this is
//    what deletes the boundary calls that source flattening deletes in the
//    paper), global reachability-based dead-function/dead-export elimination
//    from the image entry points, per-function re-simplification, and text
//    re-layout. Dead functions are stubbed (code cleared, id kept) rather than
//    erased, so patched call targets and function refs stored in data never
//    need remapping.
#ifndef SRC_VM_PASSES_H_
#define SRC_VM_PASSES_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/obj/object.h"
#include "src/vm/codegen.h"
#include "src/vm/image.h"
#include "src/vm/machine.h"

namespace knit {

// One pass's accumulated bookkeeping. `runs` counts invocations (functions for
// function passes, whole objects/images otherwise); insn counts are summed over
// the code the pass ran on, so `insns_before - insns_after` is the pass's total
// shrinkage across the build.
struct PassStats {
  std::string pass;
  std::string scope;  // "object" or "image"
  long long runs = 0;
  long long insns_before = 0;
  long long insns_after = 0;
  double seconds = 0;
};

// Accumulates `from` into `into`, matching rows by (pass, scope) and keeping
// first-seen order (so object-scope rows stay in pipeline order ahead of the
// image-scope rows appended by LinkOptimize).
void MergePassStats(std::vector<PassStats>& into, const std::vector<PassStats>& from);

// Configuration for the image-scope passes. Budgets mirror CodegenOptions; the
// extra fields exist because a linked image has no symbol table scoping — entry
// points must be named explicitly, and re-layout must match the linker's.
struct ImagePassOptions {
  int inline_limit = 48;
  bool inline_single_call = true;
  int single_call_limit = 8192;
  int caller_growth = 32768;
  int text_align = 16;  // must match the LinkOptions the image was produced with
  // Link names that stay callable from the host (exports, knit__init/fini/
  // rollback). Everything unreachable from these is dead.
  std::vector<std::string> entry_points;
  // Instance paths that must stay hot-swappable (LinkOptions::swappable_
  // components of the producing link): devirtualization must not bake a direct
  // call to their code, and DCE must keep every binding-slot target alive.
  std::set<std::string> swappable_components;
  // Recorded workload measurements steering the PGO passes (null = no profile).
  // cross-inline ranks callers and call sites hottest-first by component cycles
  // and boundary-edge weight; layout-pgo clusters component text by edge
  // affinity; outline-cold moves functions the profile never saw executed to
  // the text tail. The pointer must outlive RunOnImage. With profile == nullptr
  // every pass behaves exactly as before this field existed.
  const ComponentProfile* profile = nullptr;
};

class Pass {
 public:
  virtual ~Pass() = default;
  virtual const char* name() const = 0;
};

// A pass over one function of a relocatable object. Passes may read the whole
// object (the inliner copies earlier callees) but only mutate the indexed
// function.
class FunctionPass : public Pass {
 public:
  virtual void Run(ObjectFile& object, int function_index, const CodegenOptions& options) = 0;
};

// A pass over a whole relocatable object, run after the function passes.
class ObjectPass : public Pass {
 public:
  virtual void Run(ObjectFile& object, const CodegenOptions& options) = 0;
};

// A pass over a linked image.
class ImagePass : public Pass {
 public:
  virtual void Run(Image& image, const ImagePassOptions& options) = 0;
};

class PassManager {
 public:
  void AddFunctionPass(std::unique_ptr<FunctionPass> pass);
  void AddObjectPass(std::unique_ptr<ObjectPass> pass);
  void AddImagePass(std::unique_ptr<ImagePass> pass);

  // Runs every function pass on every function (functions outer, definition
  // order), then the object passes in registration order. `stats` (optional)
  // receives per-pass rows with scope "object".
  void RunOnObject(ObjectFile& object, const CodegenOptions& options,
                   std::vector<PassStats>* stats = nullptr);

  // Runs the image passes in registration order; rows carry scope "image".
  void RunOnImage(Image& image, const ImagePassOptions& options,
                  std::vector<PassStats>* stats = nullptr);

 private:
  std::vector<std::unique_ptr<FunctionPass>> function_passes_;
  std::vector<std::unique_ptr<ObjectPass>> object_passes_;
  std::vector<std::unique_ptr<ImagePass>> image_passes_;
};

// The standard per-object pipeline: inline, simplify, lvn, jump-thread,
// peephole, then dce-local. Exactly the historical OptimizeObject sequence.
PassManager MakeObjectPassManager();

// The -O2 image pipeline: devirt, cross-inline, dce-image, simplify, layout.
// With `profile_guided`, the final layout pass is replaced by the PGO pair —
// layout-pgo (hot-path affinity ordering) then outline-cold (never-executed
// functions to the text tail); the earlier passes are the same objects, which
// consult ImagePassOptions::profile when it is set.
PassManager MakeImagePassManager(bool profile_guided = false);

// Total instructions across an image's (live) functions; exposed for stats and
// tests.
long long ImageInsnCount(const Image& image);

}  // namespace knit

#endif  // SRC_VM_PASSES_H_
