// A fully linked program image, ready to execute on the VM (src/vm/machine.h).
// Produced by the bag-of-objects linker (src/ld/link.h).
#ifndef SRC_VM_IMAGE_H_
#define SRC_VM_IMAGE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/vm/bytecode.h"

namespace knit {

// One rebindable call target. Slots exist for the global text symbols of
// components the link marked swappable (LinkOptions::swappable_components):
// cross-component calls into such a symbol compile to kCallBound on the slot
// instead of a baked-in function id, so live reconfiguration can retarget every
// caller by rewriting `target` — no code patching, no caller enumeration.
struct BindingSlot {
  std::string symbol;     // global link name the slot stands for
  std::string component;  // instance path that owns the definition
  int target = -1;        // current callee: VM function id (>= 0) or native (< 0)
};

struct Image {
  // Callable space: ids [0, functions.size()) are VM functions; ids
  // [functions.size(), functions.size() + natives.size()) are natives.
  std::vector<BytecodeFunction> functions;  // text_offset assigned, code resolved
  std::vector<std::string> natives;         // native callable names, in id order

  std::vector<uint8_t> data;       // initialized data image, loaded at data_base
  uint32_t data_base = 0x1000;

  std::map<std::string, int> function_symbols;     // global name -> function id
  std::map<std::string, uint32_t> data_symbols;    // global name -> absolute address

  int text_bytes = 0;  // total placed text (the paper's "text size" column)

  // Absolute addresses of data words the linker patched with a function ref
  // (address-of-function initializers). The image optimizer treats the referenced
  // functions as reachability roots, so indirect calls through stored pointers
  // can never reach an eliminated body. Derived metadata: not part of the image
  // fingerprint.
  std::vector<uint32_t> func_ref_data;

  // Binding-slot table for swappable components; kCallBound indexes into it.
  // Order is deterministic (sorted by symbol name at link time) so slot indices
  // are stable across identical links and safe to fingerprint.
  std::vector<BindingSlot> bindings;

  int FindFunction(const std::string& name) const {
    auto it = function_symbols.find(name);
    return it == function_symbols.end() ? -1 : it->second;
  }

  // Binding-slot index for `symbol`, or -1.
  int FindBinding(const std::string& symbol) const {
    for (size_t i = 0; i < bindings.size(); ++i) {
      if (bindings[i].symbol == symbol) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  bool IsNativeId(int callable) const {
    return callable >= static_cast<int>(functions.size());
  }
};

}  // namespace knit

#endif  // SRC_VM_IMAGE_H_
