// Bytecode for the MiniC virtual machine.
//
// Machine model: 32-bit words, byte-addressable data memory (globals + heap +
// stack), a separate evaluation stack (not addressable), and a text space in which
// each instruction occupies 4 bytes — text addresses feed the instruction-cache
// simulator that produces the paper's "instruction fetch stall" column.
//
// Function references are first-class values encoded as 0x80000000 | function_id
// (data addresses stay below 2 GiB), so function pointers can live in ordinary
// globals/structs — the object-style Click emulation depends on this.
#ifndef SRC_VM_BYTECODE_H_
#define SRC_VM_BYTECODE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace knit {

enum class Op : uint8_t {
  // Constants / addresses.
  kConstInt,   // push a
  kConstSym,   // push value of symbol #a (object-file form; the linker rewrites
               //   this to kConstInt with the address / function reference)
  kAddrLocal,  // push fp + a

  // Locals are register-like (cost 1): direct frame slots.
  kLoadLocal,   // push *(fp + a) (b = size: 1 or 4; chars zero-extend... see kSext)
  kStoreLocal,  // pop into *(fp + a) (b = size)

  // Data memory access (cost 2).
  kLoadMem,   // pop addr; push mem[addr] (b = size; a = 1 to sign-extend chars)
  kStoreMem,  // pop value, pop addr; store (b = size)

  // Stack shuffling.
  kDup,   // duplicate top
  kPop,   // discard top
  kSwap,  // swap top two

  // Integer ALU (32-bit two's complement).
  kAdd, kSub, kMul, kDivS, kDivU, kModS, kModU,
  kShl, kShrS, kShrU, kAnd, kOr, kXor,
  kNeg, kBitNot, kLogNot,
  kEq, kNe, kLtS, kLtU, kLeS, kLeU, kGtS, kGtU, kGeS, kGeU,
  kSext8,  // sign-extend low 8 bits (after a char load that was zero-extended)

  // Control flow. a = instruction index within the function.
  kJmp,
  kJz,   // pop; jump if zero
  kJnz,  // pop; jump if nonzero

  // Calls. Arguments are pushed left-to-right.
  kCall,          // a = symbol #(object form) / resolved callee (linked form:
                  //   >= 0 is a VM function id, < 0 is native id -(a+1)); b = argc
  kCallIndirect,  // pop function reference, then pop b args
  kCallBound,     // linked form only: call through binding slot #a of the image
                  //   (Image::bindings[a].target), b = argc/returns as kCall. The
                  //   extra indirection is what makes an instance hot-swappable:
                  //   rebinding the slot retargets every caller at once.
  kRet,           // a = 1 if a return value is on the stack

  kNop,  // emitted by the optimizer; removed by ResolveJumps/compaction
};

struct Insn {
  Op op = Op::kNop;
  int32_t a = 0;
  int32_t b = 0;

  bool operator==(const Insn& other) const = default;
};

// One compiled function.
struct BytecodeFunction {
  std::string name;
  int frame_size = 0;    // bytes of locals (params first)
  int param_count = 0;   // fixed parameters (each occupies a 4-byte slot)
  bool variadic = false;
  bool returns_value = false;
  std::vector<Insn> code;

  // Knit component attribution: the instance path ("Top/Log#2") of the component
  // this function's code belongs to, "" when the function is not component code
  // (e.g. hand-assembled test images). Assigned by the compile stage — the objcopy
  // path stamps the owning instance, the flattener stamps each merged definition
  // with its originating member — and carried through the linker into the Image,
  // where the Machine's profiling mode (see ComponentProfile) reads it. Not part
  // of the image fingerprint: attribution is metadata, not behavior.
  std::string component;

  // Assigned at link time: byte offset of this function in the text space.
  int text_offset = -1;

  // Text bytes this function occupies (4 bytes per instruction, padded to the
  // 16-byte function alignment at placement).
  int TextBytes() const { return static_cast<int>(code.size()) * 4; }
};

// kCall/kCallIndirect encode (argc, returns-a-value) in `b`, because the callee may
// live in another object and the stack effect must be knowable locally.
inline int32_t MakeCallB(int argc, bool returns_value) {
  return argc | (returns_value ? 0x10000 : 0);
}
inline int CallArgc(int32_t b) { return b & 0xFFFF; }
inline bool CallReturns(int32_t b) { return (b & 0x10000) != 0; }

// Function-reference encoding shared by the VM, linker, and data relocations.
constexpr uint32_t kFuncRefBit = 0x80000000u;
inline uint32_t EncodeFuncRef(int function_id) {
  return kFuncRefBit | static_cast<uint32_t>(function_id);
}
inline bool IsFuncRef(uint32_t value) { return (value & kFuncRefBit) != 0; }
inline int DecodeFuncRef(uint32_t value) { return static_cast<int>(value & ~kFuncRefBit); }

// Human-readable disassembly, for tests and debugging.
std::string DisassembleInsn(const Insn& insn);
std::string Disassemble(const BytecodeFunction& function);

}  // namespace knit

#endif  // SRC_VM_BYTECODE_H_
