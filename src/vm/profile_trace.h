// Converts a ComponentProfile into Chrome trace-event form (see
// src/support/trace_event.h): the event log's component entries/exits become a
// B/E flame chart on one thread track (1 modeled cycle = 1 µs in the viewer),
// and each component's aggregate counters become "C"-free summary args on a
// metadata-named counter track rendered as instant spans.
#ifndef SRC_VM_PROFILE_TRACE_H_
#define SRC_VM_PROFILE_TRACE_H_

#include <string>

#include "src/support/trace_event.h"
#include "src/vm/machine.h"

namespace knit {

// Appends the profile to `log`. `track_name` labels the thread track (e.g. the
// top-level configuration name); `pid`/`tid` select the track, so several runs
// (modular vs flattened) can share one trace file side by side.
void AppendComponentProfileTrace(const ComponentProfile& profile, const std::string& track_name,
                                 TraceEventLog& log, int pid = 1, int tid = 1);

// Convenience: a standalone single-run trace document.
std::string ComponentProfileTraceJson(const ComponentProfile& profile,
                                      const std::string& track_name);

}  // namespace knit

#endif  // SRC_VM_PROFILE_TRACE_H_
