// Converts a ComponentProfile into Chrome trace-event form (see
// src/support/trace_event.h): the event log's component entries/exits become a
// B/E flame chart on one thread track (1 modeled cycle = 1 µs in the viewer),
// and each component's aggregate counters become "C"-free summary args on a
// metadata-named counter track rendered as instant spans.
//
// This header also owns the on-disk ComponentProfile format (DESIGN.md §13): a
// profile document is one JSON object that is BOTH a loadable Chrome trace (the
// "traceEvents" key; viewers ignore unknown top-level keys) AND the
// machine-readable input of `knitc --profile-use` (the "knit_profile" key).
#ifndef SRC_VM_PROFILE_TRACE_H_
#define SRC_VM_PROFILE_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/support/diagnostics.h"
#include "src/support/result.h"
#include "src/support/trace_event.h"
#include "src/vm/machine.h"

namespace knit {

// Appends the profile to `log`. `track_name` labels the thread track (e.g. the
// top-level configuration name); `pid`/`tid` select the track, so several runs
// (modular vs flattened) can share one trace file side by side.
void AppendComponentProfileTrace(const ComponentProfile& profile, const std::string& track_name,
                                 TraceEventLog& log, int pid = 1, int tid = 1);

// Convenience: a standalone single-run trace document (no "knit_profile" block).
std::string ComponentProfileTraceJson(const ComponentProfile& profile,
                                      const std::string& track_name);

// ---- on-disk profile documents (--profile / --profile-use) -------------------

// The current "knit_profile" schema version. Parsers accept any document whose
// version is <= this one and skip fields they do not know (additive evolution);
// a version from the future is rejected rather than half-understood.
inline constexpr int kProfileFormatVersion = 1;

// The recording context serialized next to the counters, so a later
// `--profile-use` can tell whether the profile matches the build it is asked to
// steer: same top-level unit, same elaborated configuration, same -O level.
struct ProfileMeta {
  int version = kProfileFormatVersion;
  std::string top;             // top-level unit of the profiled build
  uint64_t config_digest = 0;  // digest over the elaborated instance paths (see
                               // KnitPipeline) — catches renamed/re-wired configs
  int opt_level = 0;           // optimization level the profiled image ran at
};

struct LoadedProfile {
  ProfileMeta meta;
  ComponentProfile profile;  // counters, edges, function calls — never events
};

// Renders `profile` + `meta` as one JSON document: the "knit_profile" block
// (schema in DESIGN.md §13) followed by the Perfetto-loadable "traceEvents"
// timeline for `track_name`.
std::string SerializeComponentProfile(const ComponentProfile& profile, const ProfileMeta& meta,
                                      const std::string& track_name);

// Deterministic digest over a loaded profile's contents (meta, totals, edges,
// function calls). The driver folds it into the compile-stage cache keys so a
// build steered by a different profile never reuses a PGO'd artifact.
uint64_t ProfileDigest(const LoadedProfile& profile);

// Parses a document written by SerializeComponentProfile (or any JSON object
// with a compatible "knit_profile" member). Unknown fields at every level are
// skipped, so documents from newer same-version writers still load. Malformed
// JSON, a missing "knit_profile" block, or a future version report into `diags`
// and fail.
Result<LoadedProfile> ParseComponentProfile(std::string_view json, Diagnostics& diags);

}  // namespace knit

#endif  // SRC_VM_PROFILE_TRACE_H_
