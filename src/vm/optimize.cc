#include "src/vm/optimize.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <vector>

#include "src/vm/passes.h"

namespace knit {
namespace {

constexpr int kWordSize = 4;

int RoundUp(int value, int align) { return (value + align - 1) / align * align; }

bool IsJump(Op op) { return op == Op::kJmp || op == Op::kJz || op == Op::kJnz; }

bool IsBinaryAlu(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kDivS:
    case Op::kDivU:
    case Op::kModS:
    case Op::kModU:
    case Op::kShl:
    case Op::kShrS:
    case Op::kShrU:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kEq:
    case Op::kNe:
    case Op::kLtS:
    case Op::kLtU:
    case Op::kLeS:
    case Op::kLeU:
    case Op::kGtS:
    case Op::kGtU:
    case Op::kGeS:
    case Op::kGeU:
      return true;
    default:
      return false;
  }
}

bool IsUnaryAlu(Op op) {
  return op == Op::kNeg || op == Op::kBitNot || op == Op::kLogNot || op == Op::kSext8;
}

bool IsCommutative(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kMul:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kEq:
    case Op::kNe:
      return true;
    default:
      return false;
  }
}

uint32_t FoldBinary(Op op, uint32_t x, uint32_t y) {
  int32_t sx = static_cast<int32_t>(x);
  int32_t sy = static_cast<int32_t>(y);
  switch (op) {
    case Op::kAdd:
      return x + y;
    case Op::kSub:
      return x - y;
    case Op::kMul:
      return x * y;
    case Op::kDivS:
      return sy == 0 ? 0 : static_cast<uint32_t>(sx / sy);
    case Op::kDivU:
      return y == 0 ? 0 : x / y;
    case Op::kModS:
      return sy == 0 ? 0 : static_cast<uint32_t>(sx % sy);
    case Op::kModU:
      return y == 0 ? 0 : x % y;
    case Op::kShl:
      return x << (y & 31);
    case Op::kShrS:
      return static_cast<uint32_t>(sx >> (y & 31));
    case Op::kShrU:
      return x >> (y & 31);
    case Op::kAnd:
      return x & y;
    case Op::kOr:
      return x | y;
    case Op::kXor:
      return x ^ y;
    case Op::kEq:
      return x == y ? 1 : 0;
    case Op::kNe:
      return x != y ? 1 : 0;
    case Op::kLtS:
      return sx < sy ? 1 : 0;
    case Op::kLtU:
      return x < y ? 1 : 0;
    case Op::kLeS:
      return sx <= sy ? 1 : 0;
    case Op::kLeU:
      return x <= y ? 1 : 0;
    case Op::kGtS:
      return sx > sy ? 1 : 0;
    case Op::kGtU:
      return x > y ? 1 : 0;
    case Op::kGeS:
      return sx >= sy ? 1 : 0;
    case Op::kGeU:
      return x >= y ? 1 : 0;
    default:
      return 0;
  }
}

uint32_t FoldUnary(Op op, uint32_t x) {
  switch (op) {
    case Op::kNeg:
      return 0u - x;
    case Op::kBitNot:
      return ~x;
    case Op::kLogNot:
      return x == 0 ? 1 : 0;
    case Op::kSext8:
      return static_cast<uint32_t>(static_cast<int32_t>(static_cast<int8_t>(x & 0xFF)));
    default:
      return 0;
  }
}

// ---- basic-block structure ------------------------------------------------------

// Stack depth at the start of each instruction (-1 = unreachable).
std::vector<int> ComputeDepths(const BytecodeFunction& function) {
  const std::vector<Insn>& code = function.code;
  std::vector<int> depth(code.size(), -1);
  std::vector<int> work;
  if (!code.empty()) {
    depth[0] = 0;
    work.push_back(0);
  }
  auto propagate = [&](int index, int d) {
    if (index < 0 || static_cast<size_t>(index) >= code.size()) {
      return;
    }
    if (depth[index] == -1) {
      depth[index] = d;
      work.push_back(index);
    }
  };
  while (!work.empty()) {
    int i = work.back();
    work.pop_back();
    const Insn& insn = code[i];
    int d = depth[i];
    int after = d;
    switch (insn.op) {
      case Op::kConstInt:
      case Op::kConstSym:
      case Op::kAddrLocal:
      case Op::kLoadLocal:
      case Op::kDup:
        after = d + 1;
        break;
      case Op::kStoreLocal:
      case Op::kPop:
        after = d - 1;
        break;
      case Op::kLoadMem:
      case Op::kSwap:
      case Op::kNop:
        after = d;
        break;
      case Op::kStoreMem:
        after = d - 2;
        break;
      case Op::kCall:
      case Op::kCallBound:
        after = d - CallArgc(insn.b) + (CallReturns(insn.b) ? 1 : 0);
        break;
      case Op::kCallIndirect:
        after = d - 1 - CallArgc(insn.b) + (CallReturns(insn.b) ? 1 : 0);
        break;
      case Op::kRet:
        continue;  // no successor
      case Op::kJmp:
        propagate(insn.a, d);
        continue;
      case Op::kJz:
      case Op::kJnz:
        propagate(insn.a, d - 1);
        after = d - 1;
        break;
      default:
        if (IsBinaryAlu(insn.op)) {
          after = d - 1;
        } else if (IsUnaryAlu(insn.op)) {
          after = d;
        }
        break;
    }
    propagate(i + 1, after);
  }
  return depth;
}

std::set<int> LeadersOf(const BytecodeFunction& function) {
  std::set<int> leaders;
  leaders.insert(0);
  for (size_t i = 0; i < function.code.size(); ++i) {
    const Insn& insn = function.code[i];
    if (IsJump(insn.op)) {
      leaders.insert(insn.a);
      leaders.insert(static_cast<int>(i) + 1);
    } else if (insn.op == Op::kRet) {
      leaders.insert(static_cast<int>(i) + 1);
    }
  }
  leaders.erase(static_cast<int>(function.code.size()));
  return leaders;
}

// Rebuilds code without kNop, remapping jump targets.
void CompactNops(BytecodeFunction& function) {
  std::vector<int> new_index(function.code.size() + 1, 0);
  int next = 0;
  for (size_t i = 0; i < function.code.size(); ++i) {
    new_index[i] = next;
    if (function.code[i].op != Op::kNop) {
      ++next;
    }
  }
  new_index[function.code.size()] = next;
  std::vector<Insn> out;
  out.reserve(static_cast<size_t>(next));
  for (size_t i = 0; i < function.code.size(); ++i) {
    if (function.code[i].op == Op::kNop) {
      continue;
    }
    Insn insn = function.code[i];
    if (IsJump(insn.op)) {
      insn.a = new_index[insn.a];
    }
    out.push_back(insn);
  }
  function.code = std::move(out);
}

// ---- local value numbering -------------------------------------------------------
//
// Two identical simulations run over the function: a counting pass (which VNs are
// consumed how often) and an emission pass. Both must create VNs in the same order
// and evolve the physical/lazy state of the symbolic stack identically; only the
// code emission differs.

struct VN {
  enum class K {
    kOpaque,     // value physically on the stack at block entry / a call result;
                 // keyed (a = original site index, b = stack position) so both
                 // passes assign identical ids
    kConst,      // a = value
    kSym,        // a = symbol index
    kAddrLocal,  // a = frame offset
    kLoadLocal,  // a = offset, b = size, gen
    kUnary,      // op(x)
    kBinary,     // op(x, y)
    kLoadMem,    // *(x), a = sext flag, b = size, gen
  };
  K k = K::kOpaque;
  Op op = Op::kNop;
  int32_t a = 0;
  int32_t b = 0;
  int x = -1;
  int y = -1;
  int gen = 0;
  // Analysis state:
  int uses = 0;              // counted in pass 1
  int scratch = -1;          // frame slot caching the value (pass 2)
  bool mem_dep = false;      // transitively contains a memory load
  bool has_opaque = false;   // transitively contains an opaque value (cannot be
                             // rematerialized -> never forwarded into lazy entries)
  std::set<int> local_deps;  // frame offsets transitively read
};

class LvnPass {
 public:
  explicit LvnPass(BytecodeFunction& function) : fn_(function) {}

  void Run() {
    depths_ = ComputeDepths(fn_);
    leaders_ = LeadersOf(fn_);
    ComputeInheritingLeaders();
    for (const Insn& insn : fn_.code) {
      if (insn.op == Op::kAddrLocal) {
        escaped_.insert(insn.a);
      }
    }
    Simulate(/*emit=*/false);
    for (VN& vn : vns_) {
      vn.scratch = -1;
    }
    Simulate(/*emit=*/true);
    for (Insn& insn : out_) {
      if (IsJump(insn.op)) {
        auto it = index_map_.find(insn.a);
        assert(it != index_map_.end());
        insn.a = it->second;
      }
    }
    fn_.code = std::move(out_);
    fn_.frame_size = RoundUp(frame_size_, kWordSize);
  }

 private:
  struct Entry {
    int vn;
    bool physical;
  };

  // Single-predecessor leaders inherit the predecessor's value-numbering state
  // (the predecessor dominates them). Two shapes:
  //  * fallthrough-only: no jump targets the leader and the preceding instruction
  //    falls through — inherit the linear-scan state as-is;
  //  * forward-jump-only: exactly one jump (from an earlier index) targets the
  //    leader and there is no fallthrough edge — snapshot the state at the jump
  //    and restore it at the leader.
  // Hot paths through inlined element chains alternate between both shapes; with
  // inheritance, loads of packet fields are eliminated across former component
  // boundaries — the global-CSE effect the paper gets from gcc on flattened source.
  void ComputeInheritingLeaders() {
    std::map<int, std::vector<int>> jump_preds;
    for (size_t i = 0; i < fn_.code.size(); ++i) {
      if (IsJump(fn_.code[i].op)) {
        jump_preds[fn_.code[i].a].push_back(static_cast<int>(i));
      }
    }
    for (int leader : leaders_) {
      if (leader == 0) {
        continue;
      }
      const Insn& prev = fn_.code[leader - 1];
      bool has_fallthrough = prev.op != Op::kJmp && prev.op != Op::kRet &&
                             depths_[leader - 1] >= 0;
      auto it = jump_preds.find(leader);
      int jumps = it == jump_preds.end() ? 0 : static_cast<int>(it->second.size());
      if (has_fallthrough && jumps == 0) {
        inheriting_leaders_.insert(leader);
      } else if (!has_fallthrough && jumps == 1 && it->second[0] < leader) {
        snapshot_at_jump_[it->second[0]] = leader;
      }
    }
  }

  struct StateSnapshot {
    std::map<std::pair<int, int>, int> local_forward;
    std::map<std::pair<int, int>, int> mem_forward;
    std::map<int, int> local_gen;
    int mem_gen = 0;
    int block_epoch = 0;
    std::vector<int> scratches;  // scratch slot of every VN at snapshot time
    std::map<int, int> scratch_home;
  };

  void TakeSnapshot(int target) {
    StateSnapshot snap;
    snap.local_forward = local_forward_;
    snap.mem_forward = mem_forward_;
    snap.local_gen = local_gen_;
    snap.mem_gen = mem_gen_;
    snap.block_epoch = block_epoch_;
    snap.scratches.reserve(vns_.size());
    for (const VN& vn : vns_) {
      snap.scratches.push_back(vn.scratch);
    }
    snap.scratch_home = scratch_home_;
    snapshots_[target] = std::move(snap);
  }

  // Restores a dominating jump's state. Scratch caches created after the snapshot
  // were filled on paths that do not reach the target; revert them.
  bool RestoreSnapshot(int leader) {
    auto it = snapshots_.find(leader);
    if (it == snapshots_.end()) {
      return false;
    }
    const StateSnapshot& snap = it->second;
    local_forward_ = snap.local_forward;
    mem_forward_ = snap.mem_forward;
    local_gen_ = snap.local_gen;
    mem_gen_ = snap.mem_gen;
    block_epoch_ = snap.block_epoch;
    for (size_t v = 0; v < vns_.size(); ++v) {
      vns_[v].scratch = v < snap.scratches.size() ? snap.scratches[v] : -1;
    }
    scratch_home_ = snap.scratch_home;
    return true;
  }

  // ---- value numbering ----

  int InternVN(VN vn) {
    // block_epoch_ makes every value number block-local: scratch caches and use
    // counts never span basic blocks (a cached value does not dominate other
    // blocks, and cross-block "reuse" would double-count uses and trigger
    // pessimizing caching).
    auto key = std::make_tuple(block_epoch_, static_cast<int>(vn.k), static_cast<int>(vn.op),
                               vn.a, vn.b, vn.x, vn.y, vn.gen);
    auto it = intern_.find(key);
    if (it != intern_.end()) {
      return it->second;
    }
    vns_.push_back(std::move(vn));
    int id = static_cast<int>(vns_.size()) - 1;
    intern_[key] = id;
    return id;
  }

  int ConstVN(uint32_t value) {
    VN vn;
    vn.k = VN::K::kConst;
    vn.a = static_cast<int32_t>(value);
    return InternVN(std::move(vn));
  }

  // Opaque values are keyed by their creation site so both passes agree.
  int OpaqueVN(int site, int position) {
    VN vn;
    vn.k = VN::K::kOpaque;
    vn.a = site;
    vn.b = position;
    vn.has_opaque = true;
    return InternVN(std::move(vn));
  }

  void InheritDeps(VN& vn, int operand) {
    vn.mem_dep |= vns_[operand].mem_dep;
    vn.has_opaque |= vns_[operand].has_opaque;
    vn.local_deps.insert(vns_[operand].local_deps.begin(), vns_[operand].local_deps.end());
  }

  void CountUse(int id) {
    if (counting_) {
      ++vns_[id].uses;
    }
  }

  int UnaryVN(Op op, int x) {
    if (vns_[x].k == VN::K::kConst) {
      return ConstVN(FoldUnary(op, static_cast<uint32_t>(vns_[x].a)));
    }
    if (op == Op::kSext8 && vns_[x].k == VN::K::kUnary && vns_[x].op == Op::kSext8) {
      return x;
    }
    CountUse(x);
    VN vn;
    vn.k = VN::K::kUnary;
    vn.op = op;
    vn.x = x;
    InheritDeps(vn, x);
    return InternVN(std::move(vn));
  }

  int BinaryVN(Op op, int x, int y) {
    const VN& vx = vns_[x];
    const VN& vy = vns_[y];
    if (vx.k == VN::K::kConst && vy.k == VN::K::kConst) {
      return ConstVN(FoldBinary(op, static_cast<uint32_t>(vx.a), static_cast<uint32_t>(vy.a)));
    }
    if (vy.k == VN::K::kConst) {
      uint32_t c = static_cast<uint32_t>(vy.a);
      if ((op == Op::kAdd || op == Op::kSub || op == Op::kOr || op == Op::kXor ||
           op == Op::kShl || op == Op::kShrS || op == Op::kShrU) &&
          c == 0) {
        return x;
      }
      if ((op == Op::kMul || op == Op::kDivS || op == Op::kDivU) && c == 1) {
        return x;
      }
      if (op == Op::kMul && c == 0) {
        return ConstVN(0);
      }
      if (op == Op::kAnd && c == 0) {
        return ConstVN(0);
      }
    }
    if (vx.k == VN::K::kConst) {
      uint32_t c = static_cast<uint32_t>(vx.a);
      if ((op == Op::kAdd || op == Op::kOr || op == Op::kXor) && c == 0) {
        return y;
      }
      if (op == Op::kMul && c == 1) {
        return y;
      }
      if ((op == Op::kMul || op == Op::kAnd) && c == 0) {
        return ConstVN(0);
      }
    }
    if (x == y && op == Op::kSub) {
      return ConstVN(0);
    }
    if (x == y && op == Op::kXor) {
      return ConstVN(0);
    }
    int nx = x;
    int ny = y;
    if (IsCommutative(op) && nx > ny) {
      std::swap(nx, ny);
    }
    CountUse(x);
    CountUse(y);
    VN vn;
    vn.k = VN::K::kBinary;
    vn.op = op;
    vn.x = nx;
    vn.y = ny;
    InheritDeps(vn, nx);
    InheritDeps(vn, ny);
    return InternVN(std::move(vn));
  }

  // ---- emission ----

  void EmitOut(Op op, int32_t a = 0, int32_t b = 0) {
    if (emitting_) {
      out_.push_back(Insn{op, a, b});
    }
  }

  int AllocScratch() {
    frame_size_ = RoundUp(frame_size_, kWordSize);
    int offset = frame_size_;
    frame_size_ += kWordSize;
    return offset;
  }

  int CostOf(int id) const {
    const VN& vn = vns_[id];
    switch (vn.k) {
      case VN::K::kUnary:
        return 1 + CostOf(vn.x);
      case VN::K::kBinary:
        return 1 + CostOf(vn.x) + CostOf(vn.y);
      case VN::K::kLoadMem:
        return 2 + CostOf(vn.x);
      default:
        return 1;
    }
  }

  // Emits code pushing the value of `id` onto the real stack. Only pass 2 calls
  // this. Caches multi-use values in scratch slots.
  void Materialize(int id) {
    VN& vn = vns_[id];
    if (vn.scratch >= 0) {
      EmitOut(Op::kLoadLocal, vn.scratch, kWordSize);
      return;
    }
    switch (vn.k) {
      case VN::K::kOpaque:
        assert(false && "opaque values are always physical");
        return;
      case VN::K::kConst:
        EmitOut(Op::kConstInt, vn.a);
        break;
      case VN::K::kSym:
        EmitOut(Op::kConstSym, vn.a);
        break;
      case VN::K::kAddrLocal:
        EmitOut(Op::kAddrLocal, vn.a);
        break;
      case VN::K::kLoadLocal:
        EmitOut(Op::kLoadLocal, vn.a, vn.b);
        break;
      case VN::K::kUnary:
        Materialize(vn.x);
        EmitOut(vn.op);
        break;
      case VN::K::kBinary:
        Materialize(vn.x);
        Materialize(vn.y);
        EmitOut(vn.op);
        break;
      case VN::K::kLoadMem:
        Materialize(vn.x);
        EmitOut(Op::kLoadMem, vn.a, vn.b);
        break;
    }
    // Cache only when it pays: recomputing u times costs u*c instructions; caching
    // costs c + 2 (store+reload) + (u-1) reloads. Cache iff (u-1)*(c-1) > 2.
    VN& self = vns_[id];
    int cost = CostOf(id);
    if (self.scratch < 0 && (self.uses - 1) * (cost - 1) > 2) {
      self.scratch = AllocScratch();
      EmitOut(Op::kStoreLocal, self.scratch, kWordSize);
      EmitOut(Op::kLoadLocal, self.scratch, kWordSize);
    }
  }

  // Makes every entry physical. In pass 1 this only flips flags (keeping both
  // passes' state machines identical); in pass 2 it emits the pushes.
  void MaterializeAll(std::vector<Entry>& stack) {
    for (Entry& entry : stack) {
      if (!entry.physical) {
        if (emitting_) {
          Materialize(entry.vn);
        }
        entry.physical = true;
      }
    }
  }

  // Before a state-changing op: lazy entries whose value depends on state the op
  // will clobber must be computed NOW into scratch slots (pass 2 only — no
  // physical flags change, so the passes stay in sync).
  // `consumed_top` entries at the top of the stack are exempt: the current op
  // materializes and consumes them itself, so pre-computing them into scratch
  // slots would only add store/load traffic.
  void ForceStale(const std::vector<Entry>& stack, bool invalidate_mem, int local_offset,
                  int consumed_top) {
    if (!emitting_) {
      return;
    }
    size_t limit = stack.size() >= static_cast<size_t>(consumed_top)
                       ? stack.size() - static_cast<size_t>(consumed_top)
                       : 0;
    for (size_t e = 0; e < limit; ++e) {
      const Entry& entry = stack[e];
      if (entry.physical || vns_[entry.vn].scratch >= 0) {
        continue;
      }
      const VN& vn = vns_[entry.vn];
      bool stale = false;
      if (invalidate_mem && vn.mem_dep) {
        stale = true;
      }
      if (invalidate_mem && !stale) {
        for (int dep : vn.local_deps) {
          if (escaped_.count(dep) > 0) {
            stale = true;
            break;
          }
        }
      }
      if (local_offset >= 0 && vn.local_deps.count(local_offset) > 0) {
        stale = true;
      }
      if (!stale) {
        continue;
      }
      Materialize(entry.vn);
      if (vns_[entry.vn].scratch < 0) {
        int scratch = AllocScratch();
        vns_[entry.vn].scratch = scratch;
        EmitOut(Op::kStoreLocal, scratch, kWordSize);
      } else {
        EmitOut(Op::kPop);  // Materialize cached it and left a copy on the stack
      }
    }
  }

  bool DependsOnLocal(int vn, int offset) const {
    return vns_[vn].local_deps.count(offset) > 0;
  }

  bool DependsOnMemoryState(int vn) const {
    if (vns_[vn].mem_dep) {
      return true;
    }
    for (int dep : vns_[vn].local_deps) {
      if (escaped_.count(dep) > 0) {
        return true;
      }
    }
    return false;
  }

  // Forward-map hygiene: an entry whose VN reads state that is about to change
  // must not be handed out afterwards — it would rematerialize with the NEW state.
  // (Stack entries are handled by ForceStale; these maps are the other channel.)
  // A VN whose value was just stored into program local `offset` can be reloaded
  // from there — no separate scratch needed. The home is evicted when the slot is
  // overwritten (or may be, via escape).
  void HomeValueInSlot(int offset, int value) {
    if (!emitting_ || vns_[value].scratch >= 0 || escaped_.count(offset) > 0 ||
        CostOf(value) < 2) {
      return;  // trivial values are cheaper to rematerialize than to reload
    }
    EvictHome(offset);
    vns_[value].scratch = offset;
    scratch_home_[offset] = value;
  }

  void EvictHome(int offset) {
    auto it = scratch_home_.find(offset);
    if (it != scratch_home_.end()) {
      if (vns_[it->second].scratch == offset) {
        vns_[it->second].scratch = -1;
      }
      scratch_home_.erase(it);
    }
  }

  void ScrubForwardsForLocal(int offset) {
    for (auto it = local_forward_.begin(); it != local_forward_.end();) {
      if (it->first.first == offset || DependsOnLocal(it->second, offset)) {
        it = local_forward_.erase(it);
      } else {
        ++it;
      }
    }
    for (auto it = mem_forward_.begin(); it != mem_forward_.end();) {
      if (DependsOnLocal(it->second, offset) || DependsOnLocal(it->first.first, offset)) {
        it = mem_forward_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void ScrubForwardsForMemory() {
    for (auto it = local_forward_.begin(); it != local_forward_.end();) {
      if (escaped_.count(it->first.first) > 0 || DependsOnMemoryState(it->second)) {
        it = local_forward_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void InvalidateMemory() {
    ++mem_gen_;
    mem_forward_.clear();
    ScrubForwardsForMemory();
    for (int offset : escaped_) {
      ++local_gen_[offset];
      EvictHome(offset);
    }
  }

  // Decomposes an address VN into (base VN, constant offset) for alias checks.
  std::pair<int, int32_t> BaseOffset(int vn) const {
    const VN& v = vns_[vn];
    if (v.k == VN::K::kBinary && v.op == Op::kAdd) {
      if (vns_[v.y].k == VN::K::kConst) {
        return {v.x, vns_[v.y].a};
      }
      if (vns_[v.x].k == VN::K::kConst) {
        return {v.y, vns_[v.x].a};
      }
    }
    if (v.k == VN::K::kBinary && v.op == Op::kSub && vns_[v.y].k == VN::K::kConst) {
      return {v.x, -vns_[v.y].a};
    }
    return {vn, 0};
  }

  // True when a store to (store_addr, store_size) may overwrite the bytes read by
  // (load_addr, load_size). Same-base accesses with disjoint constant ranges
  // provably do not alias; everything else conservatively may.
  bool MayAlias(int store_addr, int store_size, int load_addr, int load_size) const {
    auto [sb, so] = BaseOffset(store_addr);
    auto [lb, lo] = BaseOffset(load_addr);
    if (sb != lb) {
      return true;
    }
    return !(so + store_size <= lo || lo + load_size <= so);
  }

  // A store happened through `addr`: drop only the memory forwards it may clobber
  // (plus anything whose *value* depends on memory, via the generation bump the
  // caller performs).
  void InvalidateMemoryForStore(int addr, int size) {
    for (auto it = mem_forward_.begin(); it != mem_forward_.end();) {
      if (MayAlias(addr, size, it->first.first, it->first.second) ||
          vns_[it->second].mem_dep) {
        it = mem_forward_.erase(it);
      } else {
        ++it;
      }
    }
    ScrubForwardsForMemory();
  }

  // ---- the simulation ----

  void Simulate(bool emit) {
    emitting_ = emit;
    counting_ = !emit;
    out_.clear();
    index_map_.clear();
    mem_gen_ = 0;
    block_epoch_ = 0;
    next_epoch_ = 0;
    snapshots_.clear();
    scratch_home_.clear();
    local_gen_.clear();
    local_forward_.clear();
    mem_forward_.clear();
    frame_size_ = fn_.frame_size;

    std::vector<Entry> stack;
    bool block_live = true;

    for (size_t i = 0; i < fn_.code.size(); ++i) {
      int index = static_cast<int>(i);
      if (leaders_.count(index) > 0) {
        index_map_[index] = static_cast<int>(out_.size());
        bool inherit = inheriting_leaders_.count(index) > 0 && block_live;
        stack.clear();
        int depth = depths_[i] < 0 ? 0 : depths_[i];
        for (int d = 0; d < depth; ++d) {
          stack.push_back(Entry{OpaqueVN(index, d), true});
        }
        if (!inherit) {
          if (!RestoreSnapshot(index)) {
            local_forward_.clear();
            mem_forward_.clear();
            mem_gen_ += 1;                 // fresh generation per block
            block_epoch_ = ++next_epoch_;  // fresh, never-reused VN space
          }
        }
        block_live = depths_[i] >= 0;
      }
      if (!block_live) {
        continue;
      }
      const Insn& insn = fn_.code[i];
      SimulateInsn(index, insn, stack);
      if (insn.op == Op::kRet || insn.op == Op::kJmp) {
        block_live = false;
      } else if (leaders_.count(index + 1) > 0) {
        // Falling through into the next block: everything still lazy must be
        // physically on the stack at the boundary.
        MaterializeAll(stack);
      }
    }
  }

  int Pop(std::vector<Entry>& stack) {
    assert(!stack.empty());
    int vn = stack.back().vn;
    stack.pop_back();
    CountUse(vn);
    return vn;
  }

  // Materializes the top entry (it is about to be consumed by an emitted op).
  void MaterializeTop(std::vector<Entry>& stack) {
    Entry& top = stack.back();
    if (!top.physical) {
      if (emitting_) {
        Materialize(top.vn);
      }
      top.physical = true;
    }
  }

  void SimulateInsn(int site, const Insn& insn, std::vector<Entry>& stack) {
    switch (insn.op) {
      case Op::kNop:
        return;
      case Op::kConstInt:
        stack.push_back(Entry{ConstVN(static_cast<uint32_t>(insn.a)), false});
        return;
      case Op::kConstSym: {
        VN vn;
        vn.k = VN::K::kSym;
        vn.a = insn.a;
        stack.push_back(Entry{InternVN(std::move(vn)), false});
        return;
      }
      case Op::kAddrLocal: {
        VN vn;
        vn.k = VN::K::kAddrLocal;
        vn.a = insn.a;
        stack.push_back(Entry{InternVN(std::move(vn)), false});
        return;
      }
      case Op::kLoadLocal: {
        auto fwd = local_forward_.find({insn.a, insn.b});
        if (fwd != local_forward_.end()) {
          stack.push_back(Entry{fwd->second, false});
          return;
        }
        VN vn;
        vn.k = VN::K::kLoadLocal;
        vn.a = insn.a;
        vn.b = insn.b;
        vn.gen = local_gen_[insn.a];
        vn.local_deps.insert(insn.a);
        int id = InternVN(std::move(vn));
        local_forward_[{insn.a, insn.b}] = id;  // subsequent loads reuse this VN
        stack.push_back(Entry{id, false});
        return;
      }
      case Op::kStoreLocal: {
        ForceStale(stack, /*invalidate_mem=*/false, insn.a, /*consumed_top=*/1);
        MaterializeTop(stack);
        int value = Pop(stack);
        ++local_gen_[insn.a];
        EmitOut(Op::kStoreLocal, insn.a, insn.b);
        ScrubForwardsForLocal(insn.a);
        EvictHome(insn.a);
        if (insn.b == kWordSize && !vns_[value].has_opaque &&
            !DependsOnLocal(value, insn.a)) {
          local_forward_[{insn.a, insn.b}] = value;
          HomeValueInSlot(insn.a, value);
        }
        if (escaped_.count(insn.a) > 0) {
          ++mem_gen_;
          mem_forward_.clear();
          ScrubForwardsForMemory();
        }
        return;
      }
      case Op::kLoadMem: {
        Entry addr_entry = stack.back();
        auto fwd = mem_forward_.find({addr_entry.vn, insn.b});
        if (fwd != mem_forward_.end()) {
          if (addr_entry.physical) {
            EmitOut(Op::kPop);  // drop the already-pushed address
          }
          stack.pop_back();
          CountUse(addr_entry.vn);
          stack.push_back(Entry{fwd->second, false});
          return;
        }
        bool addr_physical = addr_entry.physical;
        int addr = Pop(stack);
        VN vn;
        vn.k = VN::K::kLoadMem;
        vn.a = insn.a;
        vn.b = insn.b;
        vn.x = addr;
        vn.gen = mem_gen_;
        InheritDeps(vn, addr);
        vn.mem_dep = true;
        int id = InternVN(std::move(vn));
        mem_forward_[{addr, insn.b}] = id;
        if (addr_physical) {
          // The address is already on the real stack: load eagerly and (if the
          // value is reused) cache it.
          EmitOut(Op::kLoadMem, insn.a, insn.b);
          if (emitting_ && vns_[id].scratch < 0 &&
              (vns_[id].uses - 1) * (CostOf(id) - 1) > 2) {
            int scratch = AllocScratch();
            vns_[id].scratch = scratch;
            EmitOut(Op::kStoreLocal, scratch, kWordSize);
            EmitOut(Op::kLoadLocal, scratch, kWordSize);
          }
          stack.push_back(Entry{id, true});
        } else {
          stack.push_back(Entry{id, false});
        }
        return;
      }
      case Op::kStoreMem: {
        ForceStale(stack, /*invalidate_mem=*/true, -1, /*consumed_top=*/2);
        MaterializeAll(stack);
        int value = Pop(stack);
        int addr = Pop(stack);
        EmitOut(Op::kStoreMem, insn.a, insn.b);
        ++mem_gen_;
        InvalidateMemoryForStore(addr, insn.b);
        for (int offset : escaped_) {
          ++local_gen_[offset];
          EvictHome(offset);
        }
        if (insn.b == kWordSize && !vns_[value].has_opaque) {
          mem_forward_[{addr, insn.b}] = value;  // store-to-load forwarding
        }
        return;
      }
      case Op::kDup: {
        Entry top = stack.back();
        if (top.physical) {
          EmitOut(Op::kDup);
        }
        CountUse(top.vn);
        stack.push_back(top);
        return;
      }
      case Op::kPop: {
        Entry top = stack.back();
        stack.pop_back();
        if (top.physical) {
          EmitOut(Op::kPop);
        }
        return;
      }
      case Op::kSwap: {
        assert(stack.size() >= 2);
        if (stack[stack.size() - 1].physical || stack[stack.size() - 2].physical) {
          MaterializeAll(stack);
          EmitOut(Op::kSwap);
        }
        std::swap(stack[stack.size() - 1], stack[stack.size() - 2]);
        return;
      }
      case Op::kJmp:
        MaterializeAll(stack);
        if (snapshot_at_jump_.count(site) > 0) {
          TakeSnapshot(snapshot_at_jump_[site]);
        }
        EmitOut(Op::kJmp, insn.a);
        return;
      case Op::kJz:
      case Op::kJnz: {
        Entry cond = stack.back();
        stack.pop_back();
        MaterializeAll(stack);  // survivors cross the block boundary
        if (snapshot_at_jump_.count(site) > 0) {
          TakeSnapshot(snapshot_at_jump_[site]);
        }
        if (!cond.physical && vns_[cond.vn].k == VN::K::kConst) {
          bool taken = (vns_[cond.vn].a != 0) == (insn.op == Op::kJnz);
          if (taken) {
            EmitOut(Op::kJmp, insn.a);
          }
          return;
        }
        if (!cond.physical && emitting_) {
          Materialize(cond.vn);
        }
        CountUse(cond.vn);
        EmitOut(insn.op, insn.a);
        return;
      }
      case Op::kCall:
      case Op::kCallIndirect:
      case Op::kCallBound: {
        int operands = CallArgc(insn.b) + (insn.op == Op::kCallIndirect ? 1 : 0);
        ForceStale(stack, /*invalidate_mem=*/true, -1, /*consumed_top=*/operands);
        MaterializeAll(stack);
        for (int k = 0; k < operands; ++k) {
          Pop(stack);
        }
        EmitOut(insn.op, insn.a, insn.b);
        InvalidateMemory();
        if (CallReturns(insn.b)) {
          stack.push_back(Entry{OpaqueVN(site, -1), true});
        }
        return;
      }
      case Op::kRet: {
        if (insn.a != 0) {
          MaterializeTop(stack);
          Pop(stack);
        }
        EmitOut(Op::kRet, insn.a);
        stack.clear();
        return;
      }
      default:
        break;
    }
    if (IsUnaryAlu(insn.op)) {
      Entry top = stack.back();
      stack.pop_back();
      CountUse(top.vn);
      int result = UnaryVN(insn.op, top.vn);
      if (top.physical) {
        EmitOut(insn.op);
        stack.push_back(Entry{result, true});
      } else {
        stack.push_back(Entry{result, false});
      }
      return;
    }
    if (IsBinaryAlu(insn.op)) {
      bool any_physical =
          stack[stack.size() - 1].physical || stack[stack.size() - 2].physical;
      if (any_physical) {
        MaterializeAll(stack);
        int y = Pop(stack);
        int x = Pop(stack);
        EmitOut(insn.op);
        stack.push_back(Entry{BinaryVN(insn.op, x, y), true});
        return;
      }
      int y = Pop(stack);
      int x = Pop(stack);
      stack.push_back(Entry{BinaryVN(insn.op, x, y), false});
      return;
    }
    assert(false && "unhandled opcode in LVN");
  }

  BytecodeFunction& fn_;
  std::vector<int> depths_;
  std::set<int> leaders_;
  std::set<int> inheriting_leaders_;
  std::map<int, int> snapshot_at_jump_;  // jump insn index -> target leader
  std::map<int, StateSnapshot> snapshots_;
  std::set<int> escaped_;

  std::vector<VN> vns_;
  std::map<std::tuple<int, int, int, int32_t, int32_t, int, int, int>, int> intern_;
  int block_epoch_ = 0;
  int next_epoch_ = 0;
  std::vector<Insn> out_;
  std::map<int, int> index_map_;
  bool emitting_ = false;
  bool counting_ = false;
  int frame_size_ = 0;
  int mem_gen_ = 0;
  std::map<int, int> local_gen_;
  std::map<std::pair<int, int>, int> local_forward_;  // (offset, size) -> VN
  std::map<std::pair<int, int>, int> mem_forward_;    // (addr VN, size) -> VN
  std::map<int, int> scratch_home_;                   // offset -> VN homed there
};

// ---- cleanup passes ---------------------------------------------------------------

// Replaces stores to frame slots that are never read (no kLoadLocal/kAddrLocal of
// that offset anywhere in the function) with kPop: store-to-load forwarding in the
// LVN pass routinely makes the original slot dead, especially at inline seams.
void DeadStoreElim(BytecodeFunction& function) {
  std::set<int> read;
  for (const Insn& insn : function.code) {
    if (insn.op == Op::kLoadLocal || insn.op == Op::kAddrLocal) {
      read.insert(insn.a);
    }
  }
  for (Insn& insn : function.code) {
    if (insn.op == Op::kStoreLocal && read.count(insn.a) == 0) {
      insn = Insn{Op::kPop, 0, 0};
    }
  }
}

// Cancels pure value producers against an immediately following kPop:
//   push-like + pop        -> (nothing)
//   unary + pop            -> pop        (the operand is dead too; next round)
//   binary + pop           -> pop, pop
//   loadmem + pop          -> pop        (drops a potentially-trapping load of an
//                                         unused value; MiniC has no volatile)
//   dup + pop              -> (nothing)
// Runs to a fixpoint together with nop compaction.
bool PopCancellation(BytecodeFunction& function) {
  std::set<int> leaders = LeadersOf(function);
  bool changed = false;
  for (size_t i = 0; i + 1 < function.code.size(); ++i) {
    if (function.code[i + 1].op != Op::kPop ||
        leaders.count(static_cast<int>(i) + 1) > 0) {
      continue;
    }
    Op op = function.code[i].op;
    if (op == Op::kConstInt || op == Op::kConstSym || op == Op::kAddrLocal ||
        op == Op::kLoadLocal || op == Op::kDup) {
      function.code[i] = Insn{Op::kNop, 0, 0};
      function.code[i + 1] = Insn{Op::kNop, 0, 0};
      changed = true;
    } else if (IsUnaryAlu(op)) {
      function.code[i] = Insn{Op::kNop, 0, 0};
      changed = true;
    } else if (op == Op::kLoadMem) {
      function.code[i] = Insn{Op::kNop, 0, 0};
      changed = true;
    } else if (IsBinaryAlu(op)) {
      function.code[i] = Insn{Op::kPop, 0, 0};
      changed = true;
    }
  }
  if (changed) {
    CompactNops(function);
  }
  return changed;
}

// Removes `kStoreLocal t; kLoadLocal t` pairs where t is touched nowhere else.
void StoreLoadPeephole(BytecodeFunction& function) {
  bool changed = true;
  while (changed) {
    changed = false;
    std::map<int, int> touches;
    for (const Insn& insn : function.code) {
      if (insn.op == Op::kLoadLocal || insn.op == Op::kStoreLocal ||
          insn.op == Op::kAddrLocal) {
        ++touches[insn.a];
      }
    }
    std::set<int> leaders = LeadersOf(function);
    for (size_t i = 0; i + 1 < function.code.size(); ++i) {
      const Insn& store = function.code[i];
      const Insn& load = function.code[i + 1];
      if (store.op == Op::kStoreLocal && load.op == Op::kLoadLocal && store.a == load.a &&
          store.b == load.b && store.b == kWordSize && touches[store.a] == 2 &&
          leaders.count(static_cast<int>(i) + 1) == 0) {
        function.code[i].op = Op::kNop;
        function.code[i + 1].op = Op::kNop;
        changed = true;
      }
    }
    if (changed) {
      CompactNops(function);
    }
  }
}

void ThreadJumps(BytecodeFunction& function) {
  for (Insn& insn : function.code) {
    if (!IsJump(insn.op)) {
      continue;
    }
    int target = insn.a;
    int hops = 0;
    while (hops < 8 && static_cast<size_t>(target) < function.code.size() &&
           function.code[target].op == Op::kJmp && function.code[target].a != target) {
      target = function.code[target].a;
      ++hops;
    }
    insn.a = target;
  }
  for (size_t i = 0; i < function.code.size(); ++i) {
    if (function.code[i].op == Op::kJmp && function.code[i].a == static_cast<int>(i) + 1) {
      function.code[i].op = Op::kNop;
    }
  }
}

void RemoveUnreachable(BytecodeFunction& function) {
  std::vector<int> depth = ComputeDepths(function);
  for (size_t i = 0; i < function.code.size(); ++i) {
    if (depth[i] == -1) {
      function.code[i] = Insn{Op::kNop, 0, 0};
    }
  }
}

}  // namespace

void SimplifyControlFlow(BytecodeFunction& function) {
  RemoveUnreachable(function);
  CompactNops(function);
}

void LocalValueNumber(BytecodeFunction& function) { LvnPass(function).Run(); }

void ThreadJumpChains(BytecodeFunction& function) {
  ThreadJumps(function);
  RemoveUnreachable(function);
  CompactNops(function);
}

void PeepholeOptimize(BytecodeFunction& function) {
  StoreLoadPeephole(function);
  // Dead stores and the values feeding them cancel iteratively.
  for (int round = 0; round < 8; ++round) {
    DeadStoreElim(function);
    if (!PopCancellation(function)) {
      break;
    }
    StoreLoadPeephole(function);
  }
}

void OptimizeFunction(BytecodeFunction& function) {
  SimplifyControlFlow(function);
  LocalValueNumber(function);
  ThreadJumpChains(function);
  PeepholeOptimize(function);
}

namespace {

// kCall references per function index across the whole object (data relocations
// count as extra references so address-taken functions are never "single-call").
std::vector<int> CountCallSites(const ObjectFile& object) {
  std::vector<int> counts(object.functions.size(), 0);
  auto count_symbol = [&](int symbol_index, int weight) {
    const ObjSymbol& symbol = object.symbols[symbol_index];
    if (symbol.section == ObjSymbol::Section::kText && symbol.index >= 0 &&
        symbol.index < static_cast<int>(counts.size())) {
      counts[symbol.index] += weight;
    }
  };
  for (const BytecodeFunction& function : object.functions) {
    for (const Insn& insn : function.code) {
      if (insn.op == Op::kCall) {
        count_symbol(insn.a, 1);
      } else if (insn.op == Op::kConstSym) {
        count_symbol(insn.a, 2);  // address taken: disqualify single-call inlining
      }
    }
  }
  for (const DataReloc& reloc : object.data_relocs) {
    count_symbol(reloc.symbol, 2);
  }
  return counts;
}

}  // namespace

int InlineCalls(ObjectFile& object, int function_index, const CodegenOptions& options) {
  int inlined = 0;
  bool progress = true;
  while (progress &&
         static_cast<int>(object.functions[function_index].code.size()) <
             options.caller_growth) {
    progress = false;
    std::vector<int> call_sites = CountCallSites(object);
    BytecodeFunction& caller = object.functions[function_index];
    for (size_t p = 0; p < caller.code.size(); ++p) {
      const Insn call = caller.code[p];
      if (call.op != Op::kCall) {
        continue;
      }
      const ObjSymbol& symbol = object.symbols[call.a];
      if (symbol.section != ObjSymbol::Section::kText || symbol.index < 0 ||
          symbol.index >= function_index) {
        continue;  // undefined here, or defined later in the TU — not inlinable
      }
      const BytecodeFunction& callee = object.functions[symbol.index];
      if (callee.variadic) {
        continue;
      }
      bool small = options.inline_limit > 0 &&
                   static_cast<int>(callee.code.size()) <= options.inline_limit;
      bool single = options.inline_single_call && !symbol.global &&
                    call_sites[symbol.index] == 1 &&
                    static_cast<int>(callee.code.size()) <= options.single_call_limit;
      if (!small && !single) {
        continue;
      }
      if (callee.returns_value != CallReturns(call.b) ||
          callee.param_count != CallArgc(call.b)) {
        continue;
      }

      int base = RoundUp(caller.frame_size, kWordSize);
      caller.frame_size = base + callee.frame_size;
      std::vector<Insn> splice;
      for (int i = callee.param_count - 1; i >= 0; --i) {
        splice.push_back(Insn{Op::kStoreLocal, base + i * kWordSize, kWordSize});
      }
      int body_start = static_cast<int>(splice.size());
      int end_index = body_start + static_cast<int>(callee.code.size());
      for (const Insn& insn : callee.code) {
        Insn copy = insn;
        switch (copy.op) {
          case Op::kLoadLocal:
          case Op::kStoreLocal:
          case Op::kAddrLocal:
            copy.a += base;
            break;
          case Op::kJmp:
          case Op::kJz:
          case Op::kJnz:
            copy.a += body_start;
            break;
          case Op::kRet:
            copy.op = Op::kJmp;
            copy.a = end_index;
            break;
          default:
            break;
        }
        splice.push_back(copy);
      }

      int grow = static_cast<int>(splice.size()) - 1;
      std::vector<Insn> out;
      out.reserve(caller.code.size() + splice.size());
      for (size_t i = 0; i < p; ++i) {
        Insn insn = caller.code[i];
        if (IsJump(insn.op) && insn.a > static_cast<int>(p)) {
          insn.a += grow;
        }
        out.push_back(insn);
      }
      for (Insn insn : splice) {
        if (IsJump(insn.op)) {
          insn.a += static_cast<int>(p);
        }
        out.push_back(insn);
      }
      for (size_t i = p + 1; i < caller.code.size(); ++i) {
        Insn insn = caller.code[i];
        if (IsJump(insn.op) && insn.a > static_cast<int>(p)) {
          insn.a += grow;
        }
        out.push_back(insn);
      }
      caller.code = std::move(out);
      ++inlined;
      progress = true;
      break;  // indices changed; rescan
    }
  }
  return inlined;
}

void RemoveDeadLocalFunctions(ObjectFile& object) {
  std::set<int> live_functions;
  std::vector<int> work;
  auto add_symbol = [&](int symbol_index) {
    const ObjSymbol& symbol = object.symbols[symbol_index];
    if (symbol.section == ObjSymbol::Section::kText && symbol.index >= 0 &&
        live_functions.insert(symbol.index).second) {
      work.push_back(symbol.index);
    }
  };
  for (size_t s = 0; s < object.symbols.size(); ++s) {
    if (object.symbols[s].section == ObjSymbol::Section::kText && object.symbols[s].global) {
      add_symbol(static_cast<int>(s));
    }
  }
  for (const DataReloc& reloc : object.data_relocs) {
    add_symbol(reloc.symbol);
  }
  while (!work.empty()) {
    int f = work.back();
    work.pop_back();
    for (const Insn& insn : object.functions[f].code) {
      if (insn.op == Op::kCall || insn.op == Op::kConstSym) {
        add_symbol(insn.a);
      }
    }
  }
  if (live_functions.size() == object.functions.size()) {
    return;
  }
  std::vector<int> remap(object.functions.size(), -1);
  std::vector<BytecodeFunction> kept;
  for (size_t f = 0; f < object.functions.size(); ++f) {
    if (live_functions.count(static_cast<int>(f)) > 0) {
      remap[f] = static_cast<int>(kept.size());
      kept.push_back(std::move(object.functions[f]));
    }
  }
  object.functions = std::move(kept);
  for (ObjSymbol& symbol : object.symbols) {
    if (symbol.section == ObjSymbol::Section::kText) {
      if (symbol.index >= 0 && remap[symbol.index] >= 0) {
        symbol.index = remap[symbol.index];
      } else {
        symbol.section = ObjSymbol::Section::kUndefined;
        symbol.index = 0;
        symbol.global = false;
      }
    }
  }
}

void OptimizeObject(ObjectFile& object, const CodegenOptions& options) {
  PassManager manager = MakeObjectPassManager();
  manager.RunOnObject(object, options, options.pass_stats);
}

}  // namespace knit
