#include "src/vm/codegen.h"

#include <cassert>
#include <map>

#include "src/vm/optimize.h"

namespace knit {

void CodegenOptions::ApplyFlags(const std::vector<std::string>& flags) {
  for (const std::string& flag : flags) {
    if (flag == "-O0") {
      optimize = false;
      opt_level = 0;
    } else if (flag == "-O" || flag == "-O1") {
      optimize = true;
      opt_level = 1;
    } else if (flag == "-O2") {
      optimize = true;
      opt_level = 2;
    } else if (flag == "-fno-inline") {
      inline_limit = 0;
    } else if (flag.rfind("-finline-limit=", 0) == 0) {
      inline_limit = std::stoi(flag.substr(std::string("-finline-limit=").size()));
    }
    // Unknown flags (e.g. -I paths, kept for paper fidelity) are ignored.
  }
}

CodegenOptions CodegenOptions::FromFlags(const std::vector<std::string>& flags) {
  CodegenOptions options;
  options.ApplyFlags(flags);
  return options;
}

namespace {

constexpr int kWordSize = 4;

int RoundUp(int value, int align) { return (value + align - 1) / align * align; }

// A link-time constant: value + optional symbol addend (for address initializers).
struct ConstVal {
  long long value = 0;
  int symbol = -1;  // object symbol index, or -1 for a pure integer
};

class UnitCompiler {
 public:
  UnitCompiler(const TranslationUnit& unit, const SemaInfo& info, TypeTable& types,
               const std::string& object_name, Diagnostics& diags)
      : unit_(unit), info_(info), types_(types), diags_(diags) {
    object_.name = object_name;
  }

  Result<ObjectFile> Run() {
    // Pass 1: create symbols for all definitions so forward references resolve to
    // the right kind, and lay out global variables.
    for (const Decl& decl : unit_.decls) {
      if (decl.kind == Decl::Kind::kFunction && decl.is_definition) {
        DefineFunctionSymbol(decl);
      } else if (decl.kind == Decl::Kind::kGlobalVar && !decl.is_extern &&
                 seen_globals_.insert(decl.name).second) {
        if (!LayoutGlobal(decl)) {
          return Result<ObjectFile>::Failure();
        }
      }
    }
    // Pass 2: compile function bodies (in declaration order — the order matters to
    // the inliner, which is the point of the flattener's definition sorting).
    for (const Decl& decl : unit_.decls) {
      if (decl.kind == Decl::Kind::kFunction && decl.is_definition) {
        if (!CompileFunction(decl)) {
          return Result<ObjectFile>::Failure();
        }
      }
    }
    if (diags_.has_errors()) {
      return Result<ObjectFile>::Failure();
    }
    return std::move(object_);
  }

 private:
  // ---- symbols and data -----------------------------------------------------

  int SymbolFor(const std::string& name) {
    int index = object_.FindSymbol(name);
    if (index >= 0) {
      return index;
    }
    return object_.AddUndefined(name);
  }

  void DefineFunctionSymbol(const Decl& decl) {
    int index = SymbolFor(decl.name);
    ObjSymbol& symbol = object_.symbols[index];
    symbol.section = ObjSymbol::Section::kText;
    symbol.global = !decl.is_static;
    symbol.index = -1;  // patched in CompileFunction
  }

  bool LayoutGlobal(const Decl& decl) {
    int size = decl.var_type->SizeOf();
    if (size <= 0) {
      diags_.Error(decl.loc, "global '" + decl.name + "' has zero-sized type");
      return false;
    }
    int align = std::max(decl.var_type->AlignOf(), kWordSize);
    int offset = RoundUp(static_cast<int>(object_.data.size()), align);
    object_.data.resize(static_cast<size_t>(offset) + size, 0);

    int index = SymbolFor(decl.name);
    ObjSymbol& symbol = object_.symbols[index];
    symbol.section = ObjSymbol::Section::kData;
    symbol.global = !decl.is_static;
    symbol.index = offset;
    symbol.size = size;
    symbol.align = align;

    // Initializers.
    if (decl.init) {
      return EmitConstInto(*decl.init, decl.var_type, offset, decl.loc);
    }
    if (!decl.init_list.empty()) {
      if (decl.var_type->IsArray()) {
        int element = decl.var_type->base->SizeOf();
        for (size_t i = 0; i < decl.init_list.size(); ++i) {
          if (!EmitConstInto(*decl.init_list[i], decl.var_type->base,
                             offset + static_cast<int>(i) * element, decl.loc)) {
            return false;
          }
        }
        return true;
      }
      if (decl.var_type->IsStruct()) {
        for (size_t i = 0; i < decl.init_list.size(); ++i) {
          const StructField& field = decl.var_type->fields[i];
          if (!EmitConstInto(*decl.init_list[i], field.type, offset + field.offset, decl.loc)) {
            return false;
          }
        }
        return true;
      }
      diags_.Error(decl.loc, "brace initializer on scalar '" + decl.name + "'");
      return false;
    }
    return true;  // zero-initialized
  }

  bool EmitConstInto(const Expr& expr, const Type* type, int offset, const SourceLoc& loc) {
    ConstVal value;
    if (!EvalConst(expr, value)) {
      diags_.Error(expr.loc, "initializer is not a link-time constant");
      return false;
    }
    int size = type->IsInteger() ? type->SizeOf() : kWordSize;
    if (value.symbol >= 0) {
      object_.data_relocs.push_back(DataReloc{offset, value.symbol});
      // The addend (value.value) is stored in place and added by the linker.
    }
    for (int i = 0; i < size; ++i) {
      object_.data[static_cast<size_t>(offset) + i] =
          static_cast<uint8_t>((static_cast<unsigned long long>(value.value) >> (8 * i)) & 0xFF);
    }
    (void)loc;
    return true;
  }

  // Adds a string literal to the data image (NUL-terminated) under a fresh local
  // symbol; returns the symbol index. Identical strings are shared.
  int InternString(const std::string& text) {
    auto it = string_symbols_.find(text);
    if (it != string_symbols_.end()) {
      return it->second;
    }
    int offset = RoundUp(static_cast<int>(object_.data.size()), kWordSize);
    object_.data.resize(static_cast<size_t>(offset) + text.size() + 1, 0);
    for (size_t i = 0; i < text.size(); ++i) {
      object_.data[static_cast<size_t>(offset) + i] = static_cast<uint8_t>(text[i]);
    }
    ObjSymbol symbol;
    symbol.name = ".str" + std::to_string(string_symbols_.size());
    symbol.section = ObjSymbol::Section::kData;
    symbol.global = false;
    symbol.index = offset;
    symbol.size = static_cast<int>(text.size()) + 1;
    symbol.align = kWordSize;
    object_.symbols.push_back(std::move(symbol));
    int index = static_cast<int>(object_.symbols.size()) - 1;
    string_symbols_[text] = index;
    return index;
  }

  bool EvalConst(const Expr& expr, ConstVal& out) {
    switch (expr.kind) {
      case Expr::Kind::kIntLit:
        out = ConstVal{expr.int_value, -1};
        return true;
      case Expr::Kind::kStrLit:
        out = ConstVal{0, InternString(expr.text)};
        return true;
      case Expr::Kind::kSizeof:
        out = ConstVal{expr.sizeof_type->SizeOf(), -1};
        return true;
      case Expr::Kind::kCast:
        return EvalConst(*expr.args[0], out);
      case Expr::Kind::kIdent:
        if (info_.functions.count(expr.text) > 0) {
          out = ConstVal{0, SymbolFor(expr.text)};
          return true;
        }
        if (expr.type != nullptr && expr.type->IsArray()) {
          out = ConstVal{0, SymbolFor(expr.text)};
          return true;
        }
        return false;
      case Expr::Kind::kUnary: {
        if (expr.text == "&") {
          const Expr& target = *expr.args[0];
          if (target.kind == Expr::Kind::kIdent) {
            out = ConstVal{0, SymbolFor(target.text)};
            return true;
          }
          return false;
        }
        ConstVal v;
        if (!EvalConst(*expr.args[0], v) || v.symbol >= 0) {
          return false;
        }
        if (expr.text == "-") {
          out = ConstVal{-v.value, -1};
          return true;
        }
        if (expr.text == "~") {
          out = ConstVal{~v.value, -1};
          return true;
        }
        return false;
      }
      case Expr::Kind::kBinary: {
        ConstVal a;
        ConstVal b;
        if (!EvalConst(*expr.args[0], a) || !EvalConst(*expr.args[1], b)) {
          return false;
        }
        // Allow symbol + integer.
        if (a.symbol >= 0 && b.symbol >= 0) {
          return false;
        }
        int symbol = a.symbol >= 0 ? a.symbol : b.symbol;
        const std::string& op = expr.text;
        long long x = a.value;
        long long y = b.value;
        long long r = 0;
        if (op == "+") {
          r = x + y;
        } else if (op == "-" && b.symbol < 0) {
          r = x - y;
        } else if (symbol < 0 && op == "*") {
          r = x * y;
        } else if (symbol < 0 && op == "/" && y != 0) {
          r = x / y;
        } else if (symbol < 0 && op == "<<") {
          r = x << y;
        } else if (symbol < 0 && op == ">>") {
          r = x >> y;
        } else if (symbol < 0 && op == "|") {
          r = x | y;
        } else if (symbol < 0 && op == "&") {
          r = x & y;
        } else if (symbol < 0 && op == "^") {
          r = x ^ y;
        } else {
          return false;
        }
        out = ConstVal{r, symbol};
        return true;
      }
      default:
        return false;
    }
  }

  // ---- function compilation ---------------------------------------------------

  struct LocalSlot {
    std::string name;
    int offset = 0;
    const Type* type = nullptr;
  };

  bool CompileFunction(const Decl& decl) {
    code_.clear();
    locals_.clear();
    scopes_.clear();
    frame_size_ = 0;
    break_targets_.clear();
    continue_targets_.clear();

    scopes_.emplace_back();
    // Parameters occupy the first slots, one word each (chars are promoted).
    for (const ParamDecl& param : decl.params) {
      int offset = AllocSlot(kWordSize, kWordSize);
      scopes_.back().push_back(LocalSlot{param.name, offset, param.type});
    }

    if (!GenStmt(*decl.body)) {
      return false;
    }
    Emit(Op::kRet, 0, 0);  // implicit return (no value)

    BytecodeFunction function;
    function.name = decl.name;
    function.frame_size = RoundUp(frame_size_, kWordSize);
    function.param_count = static_cast<int>(decl.params.size());
    function.variadic = decl.func_type->variadic;
    function.returns_value = !decl.func_type->base->IsVoid();
    function.code = std::move(code_);

    object_.functions.push_back(std::move(function));
    int symbol = SymbolFor(decl.name);
    object_.symbols[symbol].index = static_cast<int>(object_.functions.size()) - 1;
    return true;
  }

  int AllocSlot(int size, int align) {
    frame_size_ = RoundUp(frame_size_, align);
    int offset = frame_size_;
    frame_size_ += size;
    return offset;
  }

  const LocalSlot* FindLocal(const std::string& name) const {
    for (auto scope = scopes_.rbegin(); scope != scopes_.rend(); ++scope) {
      for (const LocalSlot& slot : *scope) {
        if (slot.name == name) {
          return &slot;
        }
      }
    }
    return nullptr;
  }

  int Emit(Op op, int32_t a = 0, int32_t b = 0) {
    code_.push_back(Insn{op, a, b});
    return static_cast<int>(code_.size()) - 1;
  }

  int Here() const { return static_cast<int>(code_.size()); }
  void Patch(int insn, int target) { code_[insn].a = target; }

  // ---- statements ---------------------------------------------------------------

  bool GenStmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::kEmpty:
        return true;
      case Stmt::Kind::kExpr:
        return GenExprForEffect(*stmt.exprs[0]);
      case Stmt::Kind::kBlock: {
        scopes_.emplace_back();
        bool ok = true;
        for (const StmtPtr& child : stmt.stmts) {
          ok = ok && GenStmt(*child);
        }
        scopes_.pop_back();
        return ok;
      }
      case Stmt::Kind::kLocalDecl: {
        int size = std::max(stmt.decl_type->SizeOf(), 1);
        int align = std::max(stmt.decl_type->AlignOf(), 1);
        // Scalars get word-aligned slots; aggregates use natural layout.
        if (stmt.decl_type->IsScalar()) {
          align = kWordSize;
        }
        int offset = AllocSlot(size, align);
        scopes_.back().push_back(LocalSlot{stmt.text, offset, stmt.decl_type});
        if (!stmt.exprs.empty() && stmt.exprs[0]) {
          if (!GenValue(*stmt.exprs[0])) {
            return false;
          }
          Emit(Op::kStoreLocal, offset, SlotSize(stmt.decl_type));
        }
        return true;
      }
      case Stmt::Kind::kIf: {
        if (!GenValue(*stmt.exprs[0])) {
          return false;
        }
        int jz = Emit(Op::kJz);
        if (!GenStmt(*stmt.stmts[0])) {
          return false;
        }
        if (stmt.stmts.size() > 1) {
          int jend = Emit(Op::kJmp);
          Patch(jz, Here());
          if (!GenStmt(*stmt.stmts[1])) {
            return false;
          }
          Patch(jend, Here());
        } else {
          Patch(jz, Here());
        }
        return true;
      }
      case Stmt::Kind::kWhile: {
        int top = Here();
        if (!GenValue(*stmt.exprs[0])) {
          return false;
        }
        int jz = Emit(Op::kJz);
        break_targets_.push_back({});
        continue_targets_.push_back({});
        if (!GenStmt(*stmt.stmts[0])) {
          return false;
        }
        for (int insn : continue_targets_.back()) {
          Patch(insn, top);
        }
        Emit(Op::kJmp, top);
        Patch(jz, Here());
        for (int insn : break_targets_.back()) {
          Patch(insn, Here());
        }
        break_targets_.pop_back();
        continue_targets_.pop_back();
        return true;
      }
      case Stmt::Kind::kFor: {
        scopes_.emplace_back();
        if (stmt.stmts[0] && !GenStmt(*stmt.stmts[0])) {
          return false;
        }
        int top = Here();
        int jz = -1;
        if (stmt.exprs[0]) {
          if (!GenValue(*stmt.exprs[0])) {
            return false;
          }
          jz = Emit(Op::kJz);
        }
        break_targets_.push_back({});
        continue_targets_.push_back({});
        if (!GenStmt(*stmt.stmts[1])) {
          return false;
        }
        int step_at = Here();
        if (stmt.exprs[1] && !GenExprForEffect(*stmt.exprs[1])) {
          return false;
        }
        Emit(Op::kJmp, top);
        int end = Here();
        if (jz >= 0) {
          Patch(jz, end);
        }
        for (int insn : continue_targets_.back()) {
          Patch(insn, step_at);
        }
        for (int insn : break_targets_.back()) {
          Patch(insn, end);
        }
        break_targets_.pop_back();
        continue_targets_.pop_back();
        scopes_.pop_back();
        return true;
      }
      case Stmt::Kind::kReturn:
        if (stmt.exprs.empty()) {
          Emit(Op::kRet, 0);
          return true;
        }
        if (!GenValue(*stmt.exprs[0])) {
          return false;
        }
        Emit(Op::kRet, 1);
        return true;
      case Stmt::Kind::kBreak: {
        if (break_targets_.empty()) {
          diags_.Error(stmt.loc, "'break' outside of a loop");
          return false;
        }
        break_targets_.back().push_back(Emit(Op::kJmp));
        return true;
      }
      case Stmt::Kind::kContinue: {
        if (continue_targets_.empty()) {
          diags_.Error(stmt.loc, "'continue' outside of a loop");
          return false;
        }
        continue_targets_.back().push_back(Emit(Op::kJmp));
        return true;
      }
    }
    return true;
  }

  // ---- expressions ----------------------------------------------------------------

  static int SlotSize(const Type* type) {
    return type->kind == Type::Kind::kChar ? 1 : kWordSize;
  }

  // Is this identifier a local variable (as opposed to a global/function)?
  const LocalSlot* AsLocal(const Expr& expr) const {
    if (expr.kind != Expr::Kind::kIdent) {
      return nullptr;
    }
    return FindLocal(expr.text);
  }

  // Generates code leaving the expression's *value* on the stack.
  bool GenValue(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kIntLit:
        Emit(Op::kConstInt, static_cast<int32_t>(expr.int_value));
        return true;
      case Expr::Kind::kStrLit:
        Emit(Op::kConstSym, InternString(expr.text));
        return true;
      case Expr::Kind::kIdent: {
        const LocalSlot* local = FindLocal(expr.text);
        if (local != nullptr) {
          if (local->type->IsArray() || local->type->IsStruct()) {
            Emit(Op::kAddrLocal, local->offset);  // arrays/structs decay to address
            return true;
          }
          Emit(Op::kLoadLocal, local->offset, SlotSize(local->type));
          if (local->type->kind == Type::Kind::kChar) {
            Emit(Op::kSext8);
          }
          return true;
        }
        if (info_.functions.count(expr.text) > 0) {
          Emit(Op::kConstSym, SymbolFor(expr.text));  // function reference
          return true;
        }
        // Global variable.
        Emit(Op::kConstSym, SymbolFor(expr.text));
        if (expr.type->IsArray() || expr.type->IsStruct()) {
          return true;  // decays to its address
        }
        EmitLoadMem(expr.type);
        return true;
      }
      case Expr::Kind::kUnary:
        return GenUnary(expr);
      case Expr::Kind::kBinary:
        return GenBinary(expr);
      case Expr::Kind::kAssign:
        return GenAssign(expr, /*need_value=*/true);
      case Expr::Kind::kCall:
        return GenCall(expr, /*need_value=*/true);
      case Expr::Kind::kIndex:
      case Expr::Kind::kMember: {
        if (!GenAddr(expr)) {
          return false;
        }
        if (expr.type->IsArray() || expr.type->IsStruct()) {
          return true;  // aggregate value == its address
        }
        EmitLoadMem(expr.type);
        return true;
      }
      case Expr::Kind::kCast: {
        if (!GenValue(*expr.args[0])) {
          return false;
        }
        if (expr.cast_type->kind == Type::Kind::kChar &&
            expr.args[0]->type->kind != Type::Kind::kChar) {
          Emit(Op::kSext8);
        }
        if (expr.cast_type->IsVoid()) {
          Emit(Op::kPop);
          // A void cast produces no value; only legal in effect position, which
          // GenExprForEffect handles. Push a dummy for safety in value position.
          Emit(Op::kConstInt, 0);
        }
        return true;
      }
      case Expr::Kind::kCond: {
        if (!GenValue(*expr.args[0])) {
          return false;
        }
        int jz = Emit(Op::kJz);
        if (!GenValue(*expr.args[1])) {
          return false;
        }
        int jend = Emit(Op::kJmp);
        Patch(jz, Here());
        if (!GenValue(*expr.args[2])) {
          return false;
        }
        Patch(jend, Here());
        return true;
      }
      case Expr::Kind::kSizeof:
        Emit(Op::kConstInt, expr.sizeof_type->SizeOf());
        return true;
      case Expr::Kind::kIncDec:
        return GenIncDec(expr, /*need_value=*/true);
    }
    return false;
  }

  // Generates the expression for side effects only (statement position).
  bool GenExprForEffect(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kAssign:
        return GenAssign(expr, /*need_value=*/false);
      case Expr::Kind::kCall:
        return GenCall(expr, /*need_value=*/false);
      case Expr::Kind::kIncDec:
        return GenIncDec(expr, /*need_value=*/false);
      case Expr::Kind::kCast:
        if (expr.cast_type->IsVoid()) {
          return GenExprForEffect(*expr.args[0]);
        }
        break;
      default:
        break;
    }
    if (!GenValue(expr)) {
      return false;
    }
    Emit(Op::kPop);
    return true;
  }

  // Generates code leaving the expression's *address* on the stack (lvalues only;
  // Sema guaranteed lvalue-ness).
  bool GenAddr(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kIdent: {
        const LocalSlot* local = FindLocal(expr.text);
        if (local != nullptr) {
          Emit(Op::kAddrLocal, local->offset);
          return true;
        }
        Emit(Op::kConstSym, SymbolFor(expr.text));
        return true;
      }
      case Expr::Kind::kUnary:
        assert(expr.text == "*");
        return GenValue(*expr.args[0]);
      case Expr::Kind::kIndex: {
        if (!GenValue(*expr.args[0])) {  // decays to pointer
          return false;
        }
        if (!GenValue(*expr.args[1])) {
          return false;
        }
        int element = expr.type->IsArray() ? expr.type->base->SizeOf() * expr.type->array_count
                                           : expr.type->SizeOf();
        // expr.type is the element type; scale the index by its size.
        element = expr.type->SizeOf();
        if (element != 1) {
          Emit(Op::kConstInt, element);
          Emit(Op::kMul);
        }
        Emit(Op::kAdd);
        return true;
      }
      case Expr::Kind::kMember: {
        const Expr& base = *expr.args[0];
        const Type* struct_type = expr.member_arrow
                                      ? base.type->IsArray() ? base.type->base : base.type->base
                                      : base.type;
        if (expr.member_arrow) {
          if (!GenValue(base)) {
            return false;
          }
        } else {
          if (!GenAddr(base)) {
            return false;
          }
        }
        const StructField* field = struct_type->FindField(expr.text);
        assert(field != nullptr);
        if (field->offset != 0) {
          Emit(Op::kConstInt, field->offset);
          Emit(Op::kAdd);
        }
        return true;
      }
      default:
        diags_.Error(expr.loc, "expression is not addressable");
        return false;
    }
  }

  void EmitLoadMem(const Type* type) {
    if (type->kind == Type::Kind::kChar) {
      Emit(Op::kLoadMem, 1, 1);
      Emit(Op::kSext8);
    } else {
      Emit(Op::kLoadMem, 0, kWordSize);
    }
  }

  void EmitStoreMem(const Type* type) {
    Emit(Op::kStoreMem, 0, type->kind == Type::Kind::kChar ? 1 : kWordSize);
  }

  bool GenUnary(const Expr& expr) {
    const std::string& op = expr.text;
    if (op == "&") {
      const Expr& target = *expr.args[0];
      if (target.type != nullptr && target.type->IsFunc()) {
        Emit(Op::kConstSym, SymbolFor(target.text));
        return true;
      }
      return GenAddr(target);
    }
    if (op == "*") {
      if (!GenValue(*expr.args[0])) {
        return false;
      }
      if (expr.type->IsFunc() || expr.type->IsArray() || expr.type->IsStruct()) {
        return true;  // function designator / aggregate: value is the address
      }
      EmitLoadMem(expr.type);
      return true;
    }
    if (!GenValue(*expr.args[0])) {
      return false;
    }
    if (op == "-") {
      Emit(Op::kNeg);
    } else if (op == "~") {
      Emit(Op::kBitNot);
    } else {
      Emit(Op::kLogNot);
    }
    return true;
  }

  // Pointer-arithmetic scale factor when `pointer op integer`; 1 otherwise.
  static int PointerScale(const Type* pointer_side) {
    if (pointer_side->IsPointer()) {
      return pointer_side->base->SizeOf();
    }
    if (pointer_side->IsArray()) {
      return pointer_side->base->SizeOf();
    }
    return 1;
  }

  bool GenBinary(const Expr& expr) {
    const std::string& op = expr.text;
    const Type* at = expr.args[0]->type;
    const Type* bt = expr.args[1]->type;

    if (op == "&&" || op == "||") {
      // Short-circuit, producing 0/1.
      if (!GenValue(*expr.args[0])) {
        return false;
      }
      int jshort = Emit(op == "&&" ? Op::kJz : Op::kJnz);
      if (!GenValue(*expr.args[1])) {
        return false;
      }
      Emit(Op::kConstInt, 0);
      Emit(Op::kNe);
      int jend = Emit(Op::kJmp);
      Patch(jshort, Here());
      Emit(Op::kConstInt, op == "&&" ? 0 : 1);
      Patch(jend, Here());
      return true;
    }

    bool a_ptr = at->IsPointer() || at->IsArray();
    bool b_ptr = bt->IsPointer() || bt->IsArray();

    if ((op == "+" || op == "-") && a_ptr && !b_ptr) {
      if (!GenValue(*expr.args[0]) || !GenValue(*expr.args[1])) {
        return false;
      }
      int scale = PointerScale(at);
      if (scale != 1) {
        Emit(Op::kConstInt, scale);
        Emit(Op::kMul);
      }
      Emit(op == "+" ? Op::kAdd : Op::kSub);
      return true;
    }
    if (op == "+" && !a_ptr && b_ptr) {
      if (!GenValue(*expr.args[0])) {
        return false;
      }
      int scale = PointerScale(bt);
      if (scale != 1) {
        Emit(Op::kConstInt, scale);
        Emit(Op::kMul);
      }
      if (!GenValue(*expr.args[1])) {
        return false;
      }
      Emit(Op::kAdd);
      return true;
    }
    if (op == "-" && a_ptr && b_ptr) {
      if (!GenValue(*expr.args[0]) || !GenValue(*expr.args[1])) {
        return false;
      }
      Emit(Op::kSub);
      int scale = PointerScale(at);
      if (scale != 1) {
        Emit(Op::kConstInt, scale);
        Emit(Op::kDivS);
      }
      return true;
    }

    if (!GenValue(*expr.args[0]) || !GenValue(*expr.args[1])) {
      return false;
    }
    bool is_unsigned = at->kind == Type::Kind::kUnsigned || bt->kind == Type::Kind::kUnsigned ||
                       a_ptr || b_ptr;
    if (op == "+") {
      Emit(Op::kAdd);
    } else if (op == "-") {
      Emit(Op::kSub);
    } else if (op == "*") {
      Emit(Op::kMul);
    } else if (op == "/") {
      Emit(is_unsigned ? Op::kDivU : Op::kDivS);
    } else if (op == "%") {
      Emit(is_unsigned ? Op::kModU : Op::kModS);
    } else if (op == "<<") {
      Emit(Op::kShl);
    } else if (op == ">>") {
      Emit(at->kind == Type::Kind::kUnsigned ? Op::kShrU : Op::kShrS);
    } else if (op == "&") {
      Emit(Op::kAnd);
    } else if (op == "|") {
      Emit(Op::kOr);
    } else if (op == "^") {
      Emit(Op::kXor);
    } else if (op == "==") {
      Emit(Op::kEq);
    } else if (op == "!=") {
      Emit(Op::kNe);
    } else if (op == "<") {
      Emit(is_unsigned ? Op::kLtU : Op::kLtS);
    } else if (op == "<=") {
      Emit(is_unsigned ? Op::kLeU : Op::kLeS);
    } else if (op == ">") {
      Emit(is_unsigned ? Op::kGtU : Op::kGtS);
    } else if (op == ">=") {
      Emit(is_unsigned ? Op::kGeU : Op::kGeS);
    } else {
      diags_.Error(expr.loc, "unsupported binary operator '" + op + "'");
      return false;
    }
    return true;
  }

  bool GenAssign(const Expr& expr, bool need_value) {
    const Expr& lhs = *expr.args[0];
    const Expr& rhs = *expr.args[1];
    const LocalSlot* local = AsLocal(lhs);

    auto gen_rhs_combined = [&](bool lhs_on_stack_is_value) -> bool {
      // For compound ops the current lhs value is on the stack; compute value OP rhs.
      (void)lhs_on_stack_is_value;
      if (!GenValue(rhs)) {
        return false;
      }
      std::string op = expr.text.substr(0, expr.text.size() - 1);
      // Pointer += integer scaling.
      if (lhs.type->IsPointer() && (op == "+" || op == "-")) {
        int scale = PointerScale(lhs.type);
        if (scale != 1) {
          Emit(Op::kConstInt, scale);
          Emit(Op::kMul);
        }
      }
      if (op == "+") {
        Emit(Op::kAdd);
      } else if (op == "-") {
        Emit(Op::kSub);
      } else if (op == "*") {
        Emit(Op::kMul);
      } else if (op == "/") {
        Emit(lhs.type->kind == Type::Kind::kUnsigned ? Op::kDivU : Op::kDivS);
      } else if (op == "%") {
        Emit(lhs.type->kind == Type::Kind::kUnsigned ? Op::kModU : Op::kModS);
      } else if (op == "&") {
        Emit(Op::kAnd);
      } else if (op == "|") {
        Emit(Op::kOr);
      } else if (op == "^") {
        Emit(Op::kXor);
      } else if (op == "<<") {
        Emit(Op::kShl);
      } else if (op == ">>") {
        Emit(lhs.type->kind == Type::Kind::kUnsigned ? Op::kShrU : Op::kShrS);
      }
      return true;
    };

    if (local != nullptr) {
      // Local variable: register-like store.
      if (expr.text == "=") {
        if (!GenValue(rhs)) {
          return false;
        }
      } else {
        Emit(Op::kLoadLocal, local->offset, SlotSize(local->type));
        if (local->type->kind == Type::Kind::kChar) {
          Emit(Op::kSext8);
        }
        if (!gen_rhs_combined(true)) {
          return false;
        }
      }
      if (need_value) {
        Emit(Op::kDup);
      }
      Emit(Op::kStoreLocal, local->offset, SlotSize(local->type));
      return true;
    }

    // Memory lvalue: compute address, keep it in a scratch slot if needed twice.
    if (expr.text == "=") {
      if (!GenAddr(lhs)) {
        return false;
      }
      if (!GenValue(rhs)) {
        return false;
      }
      if (need_value) {
        int scratch = Scratch();
        Emit(Op::kStoreLocal, scratch, kWordSize);
        Emit(Op::kLoadLocal, scratch, kWordSize);
        EmitStoreMem(lhs.type);
        Emit(Op::kLoadLocal, scratch, kWordSize);
        return true;
      }
      EmitStoreMem(lhs.type);
      return true;
    }
    // Compound op on memory: addr -> scratch; load; combine; store.
    int addr = Scratch();
    if (!GenAddr(lhs)) {
      return false;
    }
    Emit(Op::kStoreLocal, addr, kWordSize);
    Emit(Op::kLoadLocal, addr, kWordSize);
    Emit(Op::kLoadLocal, addr, kWordSize);
    EmitLoadMem(lhs.type);
    if (!gen_rhs_combined(true)) {
      return false;
    }
    if (need_value) {
      int value = Scratch();
      Emit(Op::kStoreLocal, value, kWordSize);
      Emit(Op::kLoadLocal, value, kWordSize);
      EmitStoreMem(lhs.type);
      Emit(Op::kLoadLocal, value, kWordSize);
      return true;
    }
    EmitStoreMem(lhs.type);
    return true;
  }

  bool GenIncDec(const Expr& expr, bool need_value) {
    const Expr& target = *expr.args[0];
    bool is_inc = expr.text == "++";
    bool prefix = expr.int_value != 0;
    int step = 1;
    if (target.type->IsPointer()) {
      step = PointerScale(target.type);
    }
    const LocalSlot* local = AsLocal(target);
    if (local != nullptr) {
      Emit(Op::kLoadLocal, local->offset, SlotSize(local->type));
      if (local->type->kind == Type::Kind::kChar) {
        Emit(Op::kSext8);
      }
      if (need_value && !prefix) {
        Emit(Op::kDup);  // old value result
      }
      Emit(Op::kConstInt, step);
      Emit(is_inc ? Op::kAdd : Op::kSub);
      if (need_value && prefix) {
        Emit(Op::kDup);
      }
      Emit(Op::kStoreLocal, local->offset, SlotSize(local->type));
      return true;
    }
    // Memory target.
    int addr = Scratch();
    if (!GenAddr(target)) {
      return false;
    }
    Emit(Op::kStoreLocal, addr, kWordSize);
    Emit(Op::kLoadLocal, addr, kWordSize);   // address for the store
    Emit(Op::kLoadLocal, addr, kWordSize);   // address for the load
    EmitLoadMem(target.type);
    if (need_value && !prefix) {
      int old = Scratch();
      Emit(Op::kDup);
      Emit(Op::kStoreLocal, old, kWordSize);
      Emit(Op::kConstInt, step);
      Emit(is_inc ? Op::kAdd : Op::kSub);
      EmitStoreMem(target.type);
      Emit(Op::kLoadLocal, old, kWordSize);
      return true;
    }
    Emit(Op::kConstInt, step);
    Emit(is_inc ? Op::kAdd : Op::kSub);
    if (need_value) {  // prefix
      int val = Scratch();
      Emit(Op::kDup);
      Emit(Op::kStoreLocal, val, kWordSize);
      EmitStoreMem(target.type);
      Emit(Op::kLoadLocal, val, kWordSize);
      return true;
    }
    EmitStoreMem(target.type);
    return true;
  }

  bool GenCall(const Expr& expr, bool need_value) {
    const Expr& callee = *expr.args[0];
    int argc = static_cast<int>(expr.args.size()) - 1;
    for (int i = 0; i < argc; ++i) {
      if (!GenValue(*expr.args[i + 1])) {
        return false;
      }
    }
    bool returns_value = expr.type != nullptr && !expr.type->IsVoid();
    bool direct = callee.kind == Expr::Kind::kIdent && FindLocal(callee.text) == nullptr &&
                  info_.functions.count(callee.text) > 0;
    if (direct) {
      Emit(Op::kCall, SymbolFor(callee.text), MakeCallB(argc, returns_value));
    } else {
      if (!GenValue(callee)) {
        return false;
      }
      Emit(Op::kCallIndirect, 0, MakeCallB(argc, returns_value));
    }
    if (returns_value && !need_value) {
      Emit(Op::kPop);
    } else if (!returns_value && need_value) {
      Emit(Op::kConstInt, 0);  // void used in value position (sema warned/errored)
    }
    return true;
  }

  // A fresh word-sized scratch slot (not reused across needs; frames are cheap).
  int Scratch() { return AllocSlot(kWordSize, kWordSize); }

  const TranslationUnit& unit_;
  const SemaInfo& info_;
  TypeTable& types_;
  Diagnostics& diags_;
  ObjectFile object_;

  std::map<std::string, int> string_symbols_;
  std::set<std::string> seen_globals_;

  // Per-function state.
  std::vector<Insn> code_;
  std::vector<std::vector<LocalSlot>> scopes_;
  std::vector<LocalSlot> locals_;
  int frame_size_ = 0;
  std::vector<std::vector<int>> break_targets_;
  std::vector<std::vector<int>> continue_targets_;
};

}  // namespace

Result<ObjectFile> CompileTranslationUnit(const TranslationUnit& unit, const SemaInfo& info,
                                          TypeTable& types, const CodegenOptions& options,
                                          const std::string& object_name, Diagnostics& diags) {
  UnitCompiler compiler(unit, info, types, object_name, diags);
  Result<ObjectFile> object = compiler.Run();
  if (!object.ok()) {
    return object;
  }
  if (options.optimize && options.opt_level >= 1) {
    OptimizeObject(object.value(), options);
  }
  return object;
}

}  // namespace knit
