#include "src/vm/passes.h"

#include <chrono>
#include <set>
#include <utility>

#include "src/vm/optimize.h"

namespace knit {
namespace {

constexpr int kWordSize = 4;

int RoundUp(int value, int align) { return (value + align - 1) / align * align; }

bool IsJumpOp(Op op) { return op == Op::kJmp || op == Op::kJz || op == Op::kJnz; }

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

long long ObjectInsnCount(const ObjectFile& object) {
  long long total = 0;
  for (const BytecodeFunction& function : object.functions) {
    total += static_cast<long long>(function.code.size());
  }
  return total;
}

// ---- object-scope passes -----------------------------------------------------

class InlineFunctionPass : public FunctionPass {
 public:
  const char* name() const override { return "inline"; }
  void Run(ObjectFile& object, int function_index, const CodegenOptions& options) override {
    InlineCalls(object, function_index, options);
  }
};

class SimplifyFunctionPass : public FunctionPass {
 public:
  const char* name() const override { return "simplify"; }
  void Run(ObjectFile& object, int function_index, const CodegenOptions&) override {
    SimplifyControlFlow(object.functions[function_index]);
  }
};

class LvnFunctionPass : public FunctionPass {
 public:
  const char* name() const override { return "lvn"; }
  void Run(ObjectFile& object, int function_index, const CodegenOptions&) override {
    LocalValueNumber(object.functions[function_index]);
  }
};

class JumpThreadFunctionPass : public FunctionPass {
 public:
  const char* name() const override { return "jump-thread"; }
  void Run(ObjectFile& object, int function_index, const CodegenOptions&) override {
    ThreadJumpChains(object.functions[function_index]);
  }
};

class PeepholeFunctionPass : public FunctionPass {
 public:
  const char* name() const override { return "peephole"; }
  void Run(ObjectFile& object, int function_index, const CodegenOptions&) override {
    PeepholeOptimize(object.functions[function_index]);
  }
};

class DceLocalPass : public ObjectPass {
 public:
  const char* name() const override { return "dce-local"; }
  void Run(ObjectFile& object, const CodegenOptions&) override {
    RemoveDeadLocalFunctions(object);
  }
};

// ---- image-scope helpers -----------------------------------------------------

// Reads the little-endian word at an absolute data address (0 when out of range).
uint32_t ReadDataWord(const Image& image, uint32_t address) {
  if (address < image.data_base) {
    return 0;
  }
  size_t at = address - image.data_base;
  if (at + 4 > image.data.size()) {
    return 0;
  }
  uint32_t word = 0;
  for (int i = 0; i < 4; ++i) {
    word |= static_cast<uint32_t>(image.data[at + i]) << (8 * i);
  }
  return word;
}

// Decodes an operand that may hold a function ref; returns the function id, or
// -1 when the value is not a ref to a VM function (natives included: they have
// no body to inline or eliminate).
int FuncRefTarget(const Image& image, uint32_t value) {
  if (!IsFuncRef(value)) {
    return -1;
  }
  int id = static_cast<int>(DecodeFuncRef(value));
  return id >= 0 && id < static_cast<int>(image.functions.size()) ? id : -1;
}

// References per function across the whole image. Direct calls weigh 1; function
// refs materialized as constants or stored in data weigh 2, so address-taken
// functions are never "single-call" (their body must survive, mirroring the
// per-TU CountCallSites rule).
std::vector<int> CountImageRefs(const Image& image) {
  std::vector<int> counts(image.functions.size(), 0);
  for (const BytecodeFunction& function : image.functions) {
    for (const Insn& insn : function.code) {
      if (insn.op == Op::kCall) {
        if (insn.a >= 0 && insn.a < static_cast<int>(counts.size())) {
          ++counts[insn.a];
        }
      } else if (insn.op == Op::kCallBound) {
        // A bound call's target can be retargeted at any time; weight it like an
        // escaped ref so the current target is never treated as single-call.
        if (insn.a >= 0 && insn.a < static_cast<int>(image.bindings.size())) {
          int target = image.bindings[insn.a].target;
          if (target >= 0 && target < static_cast<int>(counts.size())) {
            counts[target] += 2;
          }
        }
      } else if (insn.op == Op::kConstInt) {
        int target = FuncRefTarget(image, static_cast<uint32_t>(insn.a));
        if (target >= 0) {
          counts[target] += 2;
        }
      }
    }
  }
  for (uint32_t address : image.func_ref_data) {
    int target = FuncRefTarget(image, ReadDataWord(image, address));
    if (target >= 0) {
      counts[target] += 2;
    }
  }
  return counts;
}

// Function ids of the named entry points (exports, knit__init/fini/rollback).
std::set<int> EntryRoots(const Image& image, const ImagePassOptions& options) {
  std::set<int> roots;
  for (const std::string& name : options.entry_points) {
    int id = image.FindFunction(name);
    if (id >= 0 && !image.IsNativeId(id)) {
      roots.insert(id);
    }
  }
  return roots;
}

// ---- image-scope passes ------------------------------------------------------

// Rewrites `kConstInt(funcref); kCallIndirect` pairs into a direct kCall: the
// target is known at link time, so the call needs neither the BTB nor the
// indirect-call penalty, and downstream passes can inline it. The call insn must
// not be a jump target (a jump landing there would take its target from the
// stack, not from our constant).
class DevirtualizePass : public ImagePass {
 public:
  const char* name() const override { return "devirt"; }
  void Run(Image& image, const ImagePassOptions& options) override {
    int total_callables =
        static_cast<int>(image.functions.size() + image.natives.size());
    for (BytecodeFunction& function : image.functions) {
      if (function.code.empty()) {
        continue;
      }
      std::set<int> leaders;
      for (const Insn& insn : function.code) {
        if (IsJumpOp(insn.op)) {
          leaders.insert(insn.a);
        }
      }
      for (size_t i = 0; i + 1 < function.code.size(); ++i) {
        const Insn& cst = function.code[i];
        const Insn& call = function.code[i + 1];
        if (cst.op != Op::kConstInt || call.op != Op::kCallIndirect ||
            leaders.count(static_cast<int>(i + 1)) > 0) {
          continue;
        }
        uint32_t value = static_cast<uint32_t>(cst.a);
        if (!IsFuncRef(value)) {
          continue;
        }
        int callable = static_cast<int>(DecodeFuncRef(value));
        if (callable < 0 || callable >= total_callables) {
          continue;
        }
        if (callable < static_cast<int>(image.functions.size()) &&
            options.swappable_components.count(image.functions[callable].component) > 0) {
          // The target belongs to a hot-swappable instance: baking a direct
          // call would survive a swap and keep invoking the retired code. The
          // indirect form re-reads the (rewritten) function ref every call.
          continue;
        }
        function.code[i] = Insn{Op::kNop, 0, 0};
        function.code[i + 1] = Insn{Op::kCall, callable, call.b};
      }
    }
  }
};

// Cross-object inlining through resolved bindings: after ld, every direct call
// names its callee by image id, so the per-TU defs-before-uses restriction
// disappears and calls across former unit boundaries inline like local ones.
// Inlined code keeps executing inside the caller's frame, so the profiler
// attributes it to the caller's component — exactly how flatten groups already
// collapse, and why the boundary-call counter sees these edges vanish.
class CrossInlinePass : public ImagePass {
 public:
  const char* name() const override { return "cross-inline"; }

  void Run(Image& image, const ImagePassOptions& options) override {
    std::set<int> roots = EntryRoots(image, options);
    for (size_t f = 0; f < image.functions.size(); ++f) {
      InlineInto(image, static_cast<int>(f), options, roots);
    }
  }

 private:
  static void InlineInto(Image& image, int function_index, const ImagePassOptions& options,
                         const std::set<int>& roots) {
    bool progress = true;
    while (progress && static_cast<int>(image.functions[function_index].code.size()) <
                           options.caller_growth) {
      progress = false;
      std::vector<int> refs = CountImageRefs(image);
      BytecodeFunction& caller = image.functions[function_index];
      for (size_t p = 0; p < caller.code.size(); ++p) {
        const Insn call = caller.code[p];
        if (call.op != Op::kCall) {
          continue;
        }
        int callee_id = call.a;
        if (callee_id < 0 || callee_id >= static_cast<int>(image.functions.size()) ||
            callee_id == function_index) {
          continue;  // native, unresolved, or self-recursive
        }
        const BytecodeFunction& callee = image.functions[callee_id];
        if (callee.variadic || callee.code.empty()) {
          continue;
        }
        bool small = options.inline_limit > 0 &&
                     static_cast<int>(callee.code.size()) <= options.inline_limit;
        // A function called exactly once anywhere in the image inlines whole —
        // unless it is an entry point (the host calls it by name, so the body
        // must survive) or its address escapes (refs weighting).
        bool single = options.inline_single_call && refs[callee_id] == 1 &&
                      roots.count(callee_id) == 0 &&
                      static_cast<int>(callee.code.size()) <= options.single_call_limit;
        if (!small && !single) {
          continue;
        }
        if (callee.returns_value != CallReturns(call.b) ||
            callee.param_count != CallArgc(call.b)) {
          continue;
        }

        int base = RoundUp(caller.frame_size, kWordSize);
        caller.frame_size = base + callee.frame_size;
        std::vector<Insn> splice;
        for (int i = callee.param_count - 1; i >= 0; --i) {
          splice.push_back(Insn{Op::kStoreLocal, base + i * kWordSize, kWordSize});
        }
        int body_start = static_cast<int>(splice.size());
        int end_index = body_start + static_cast<int>(callee.code.size());
        for (const Insn& insn : callee.code) {
          Insn copy = insn;
          switch (copy.op) {
            case Op::kLoadLocal:
            case Op::kStoreLocal:
            case Op::kAddrLocal:
              copy.a += base;
              break;
            case Op::kJmp:
            case Op::kJz:
            case Op::kJnz:
              copy.a += body_start;
              break;
            case Op::kRet:
              copy.op = Op::kJmp;
              copy.a = end_index;
              break;
            default:
              break;
          }
          splice.push_back(copy);
        }

        int grow = static_cast<int>(splice.size()) - 1;
        std::vector<Insn> out;
        out.reserve(caller.code.size() + splice.size());
        for (size_t i = 0; i < p; ++i) {
          Insn insn = caller.code[i];
          if (IsJumpOp(insn.op) && insn.a > static_cast<int>(p)) {
            insn.a += grow;
          }
          out.push_back(insn);
        }
        for (Insn insn : splice) {
          if (IsJumpOp(insn.op)) {
            insn.a += static_cast<int>(p);
          }
          out.push_back(insn);
        }
        for (size_t i = p + 1; i < caller.code.size(); ++i) {
          Insn insn = caller.code[i];
          if (IsJumpOp(insn.op) && insn.a > static_cast<int>(p)) {
            insn.a += grow;
          }
          out.push_back(insn);
        }
        caller.code = std::move(out);
        progress = true;
        break;  // indices changed; rescan
      }
    }
  }
};

// Global dead-function / dead-export elimination. Liveness is reachability from
// the entry points plus every function whose ref is stored in data (the linker
// records those addresses in Image::func_ref_data) or materialized as a constant
// in reachable code (conservative: any kConstInt decoding to a valid id keeps
// the target alive, so indirect calls can never reach a stubbed body). Dead
// functions are stubbed — code cleared, id and name kept — so no call target or
// stored ref ever needs remapping; their global symbols leave the symbol table,
// which is the dead-*export* half.
class ImageDcePass : public ImagePass {
 public:
  const char* name() const override { return "dce-image"; }

  void Run(Image& image, const ImagePassOptions& options) override {
    size_t count = image.functions.size();
    std::vector<char> live(count, 0);
    std::vector<int> work;
    auto mark = [&](int id) {
      if (id >= 0 && id < static_cast<int>(count) && !live[id]) {
        live[id] = 1;
        work.push_back(id);
      }
    };
    for (int id : EntryRoots(image, options)) {
      mark(id);
    }
    for (uint32_t address : image.func_ref_data) {
      mark(FuncRefTarget(image, ReadDataWord(image, address)));
    }
    // Binding-slot targets are rebindable entry points: the reconfig engine may
    // point a slot back at them at any time, so they are roots unconditionally.
    for (const BindingSlot& slot : image.bindings) {
      mark(slot.target);
    }
    while (!work.empty()) {
      int f = work.back();
      work.pop_back();
      for (const Insn& insn : image.functions[f].code) {
        if (insn.op == Op::kCall) {
          mark(insn.a);
        } else if (insn.op == Op::kCallBound) {
          if (insn.a >= 0 && insn.a < static_cast<int>(image.bindings.size())) {
            mark(image.bindings[insn.a].target);
          }
        } else if (insn.op == Op::kConstInt) {
          mark(FuncRefTarget(image, static_cast<uint32_t>(insn.a)));
        }
      }
    }
    for (size_t f = 0; f < count; ++f) {
      if (!live[f]) {
        image.functions[f].code.clear();
        image.functions[f].frame_size = 0;
      }
    }
    for (auto it = image.function_symbols.begin(); it != image.function_symbols.end();) {
      bool dead = it->second >= 0 && it->second < static_cast<int>(count) && !live[it->second];
      it = dead ? image.function_symbols.erase(it) : std::next(it);
    }
  }
};

// Re-runs the per-function optimizer over every live function: cross-inlining
// exposes the same store/load and value-numbering slack that per-TU inlining
// does, and devirtualized constants fold away.
class ImageSimplifyPass : public ImagePass {
 public:
  const char* name() const override { return "simplify"; }
  void Run(Image& image, const ImagePassOptions&) override {
    for (BytecodeFunction& function : image.functions) {
      if (!function.code.empty()) {
        OptimizeFunction(function);
      }
    }
  }
};

// Re-places the text segment after code shrank: same formula as the linker's
// Layout phase, so images remain deterministic and the I-cache simulator sees
// the denser footprint (the paper's flattened-is-smaller effect).
class ImageLayoutPass : public ImagePass {
 public:
  const char* name() const override { return "layout"; }
  void Run(Image& image, const ImagePassOptions& options) override {
    int text_cursor = 0;
    for (BytecodeFunction& function : image.functions) {
      function.text_offset = text_cursor;
      text_cursor += RoundUp(function.TextBytes(), options.text_align);
    }
    image.text_bytes = text_cursor;
  }
};

}  // namespace

// ---- PassManager -------------------------------------------------------------

void MergePassStats(std::vector<PassStats>& into, const std::vector<PassStats>& from) {
  for (const PassStats& row : from) {
    PassStats* found = nullptr;
    for (PassStats& existing : into) {
      if (existing.pass == row.pass && existing.scope == row.scope) {
        found = &existing;
        break;
      }
    }
    if (found == nullptr) {
      into.push_back(row);
      continue;
    }
    found->runs += row.runs;
    found->insns_before += row.insns_before;
    found->insns_after += row.insns_after;
    found->seconds += row.seconds;
  }
}

long long ImageInsnCount(const Image& image) {
  long long total = 0;
  for (const BytecodeFunction& function : image.functions) {
    total += static_cast<long long>(function.code.size());
  }
  return total;
}

void PassManager::AddFunctionPass(std::unique_ptr<FunctionPass> pass) {
  function_passes_.push_back(std::move(pass));
}

void PassManager::AddObjectPass(std::unique_ptr<ObjectPass> pass) {
  object_passes_.push_back(std::move(pass));
}

void PassManager::AddImagePass(std::unique_ptr<ImagePass> pass) {
  image_passes_.push_back(std::move(pass));
}

void PassManager::RunOnObject(ObjectFile& object, const CodegenOptions& options,
                              std::vector<PassStats>* stats) {
  std::vector<PassStats> rows;
  rows.reserve(function_passes_.size() + object_passes_.size());
  for (const auto& pass : function_passes_) {
    rows.push_back(PassStats{pass->name(), "object"});
  }
  for (const auto& pass : object_passes_) {
    rows.push_back(PassStats{pass->name(), "object"});
  }
  // Functions are the OUTER loop: every pass finishes function f before any
  // pass touches f+1, so callees are fully optimized before later callers
  // consider them for inlining (the per-TU defs-before-uses contract).
  for (size_t f = 0; f < object.functions.size(); ++f) {
    for (size_t p = 0; p < function_passes_.size(); ++p) {
      PassStats& row = rows[p];
      auto t0 = std::chrono::steady_clock::now();
      row.insns_before += static_cast<long long>(object.functions[f].code.size());
      function_passes_[p]->Run(object, static_cast<int>(f), options);
      row.insns_after += static_cast<long long>(object.functions[f].code.size());
      row.seconds += SecondsSince(t0);
      ++row.runs;
    }
  }
  for (size_t p = 0; p < object_passes_.size(); ++p) {
    PassStats& row = rows[function_passes_.size() + p];
    auto t0 = std::chrono::steady_clock::now();
    row.insns_before += ObjectInsnCount(object);
    object_passes_[p]->Run(object, options);
    row.insns_after += ObjectInsnCount(object);
    row.seconds += SecondsSince(t0);
    ++row.runs;
  }
  if (stats != nullptr) {
    MergePassStats(*stats, rows);
  }
}

void PassManager::RunOnImage(Image& image, const ImagePassOptions& options,
                             std::vector<PassStats>* stats) {
  std::vector<PassStats> rows;
  rows.reserve(image_passes_.size());
  for (const auto& pass : image_passes_) {
    PassStats row{pass->name(), "image"};
    auto t0 = std::chrono::steady_clock::now();
    row.insns_before = ImageInsnCount(image);
    pass->Run(image, options);
    row.insns_after = ImageInsnCount(image);
    row.seconds = SecondsSince(t0);
    row.runs = 1;
    rows.push_back(std::move(row));
  }
  if (stats != nullptr) {
    MergePassStats(*stats, rows);
  }
}

PassManager MakeObjectPassManager() {
  PassManager manager;
  manager.AddFunctionPass(std::make_unique<InlineFunctionPass>());
  manager.AddFunctionPass(std::make_unique<SimplifyFunctionPass>());
  manager.AddFunctionPass(std::make_unique<LvnFunctionPass>());
  manager.AddFunctionPass(std::make_unique<JumpThreadFunctionPass>());
  manager.AddFunctionPass(std::make_unique<PeepholeFunctionPass>());
  manager.AddObjectPass(std::make_unique<DceLocalPass>());
  return manager;
}

PassManager MakeImagePassManager() {
  PassManager manager;
  manager.AddImagePass(std::make_unique<DevirtualizePass>());
  manager.AddImagePass(std::make_unique<CrossInlinePass>());
  manager.AddImagePass(std::make_unique<ImageDcePass>());
  manager.AddImagePass(std::make_unique<ImageSimplifyPass>());
  manager.AddImagePass(std::make_unique<ImageLayoutPass>());
  return manager;
}

}  // namespace knit
