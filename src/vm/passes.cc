#include "src/vm/passes.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <utility>

#include "src/vm/optimize.h"

namespace knit {
namespace {

constexpr int kWordSize = 4;

int RoundUp(int value, int align) { return (value + align - 1) / align * align; }

bool IsJumpOp(Op op) { return op == Op::kJmp || op == Op::kJz || op == Op::kJnz; }

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

long long ObjectInsnCount(const ObjectFile& object) {
  long long total = 0;
  for (const BytecodeFunction& function : object.functions) {
    total += static_cast<long long>(function.code.size());
  }
  return total;
}

// ---- object-scope passes -----------------------------------------------------

class InlineFunctionPass : public FunctionPass {
 public:
  const char* name() const override { return "inline"; }
  void Run(ObjectFile& object, int function_index, const CodegenOptions& options) override {
    InlineCalls(object, function_index, options);
  }
};

class SimplifyFunctionPass : public FunctionPass {
 public:
  const char* name() const override { return "simplify"; }
  void Run(ObjectFile& object, int function_index, const CodegenOptions&) override {
    SimplifyControlFlow(object.functions[function_index]);
  }
};

class LvnFunctionPass : public FunctionPass {
 public:
  const char* name() const override { return "lvn"; }
  void Run(ObjectFile& object, int function_index, const CodegenOptions&) override {
    LocalValueNumber(object.functions[function_index]);
  }
};

class JumpThreadFunctionPass : public FunctionPass {
 public:
  const char* name() const override { return "jump-thread"; }
  void Run(ObjectFile& object, int function_index, const CodegenOptions&) override {
    ThreadJumpChains(object.functions[function_index]);
  }
};

class PeepholeFunctionPass : public FunctionPass {
 public:
  const char* name() const override { return "peephole"; }
  void Run(ObjectFile& object, int function_index, const CodegenOptions&) override {
    PeepholeOptimize(object.functions[function_index]);
  }
};

class DceLocalPass : public ObjectPass {
 public:
  const char* name() const override { return "dce-local"; }
  void Run(ObjectFile& object, const CodegenOptions&) override {
    RemoveDeadLocalFunctions(object);
  }
};

// ---- image-scope helpers -----------------------------------------------------

// Reads the little-endian word at an absolute data address (0 when out of range).
uint32_t ReadDataWord(const Image& image, uint32_t address) {
  if (address < image.data_base) {
    return 0;
  }
  size_t at = address - image.data_base;
  if (at + 4 > image.data.size()) {
    return 0;
  }
  uint32_t word = 0;
  for (int i = 0; i < 4; ++i) {
    word |= static_cast<uint32_t>(image.data[at + i]) << (8 * i);
  }
  return word;
}

// Decodes an operand that may hold a function ref; returns the function id, or
// -1 when the value is not a ref to a VM function (natives included: they have
// no body to inline or eliminate).
int FuncRefTarget(const Image& image, uint32_t value) {
  if (!IsFuncRef(value)) {
    return -1;
  }
  int id = static_cast<int>(DecodeFuncRef(value));
  return id >= 0 && id < static_cast<int>(image.functions.size()) ? id : -1;
}

// References per function across the whole image. Direct calls weigh 1; function
// refs materialized as constants or stored in data weigh 2, so address-taken
// functions are never "single-call" (their body must survive, mirroring the
// per-TU CountCallSites rule).
std::vector<int> CountImageRefs(const Image& image) {
  std::vector<int> counts(image.functions.size(), 0);
  for (const BytecodeFunction& function : image.functions) {
    for (const Insn& insn : function.code) {
      if (insn.op == Op::kCall) {
        if (insn.a >= 0 && insn.a < static_cast<int>(counts.size())) {
          ++counts[insn.a];
        }
      } else if (insn.op == Op::kCallBound) {
        // A bound call's target can be retargeted at any time; weight it like an
        // escaped ref so the current target is never treated as single-call.
        if (insn.a >= 0 && insn.a < static_cast<int>(image.bindings.size())) {
          int target = image.bindings[insn.a].target;
          if (target >= 0 && target < static_cast<int>(counts.size())) {
            counts[target] += 2;
          }
        }
      } else if (insn.op == Op::kConstInt) {
        int target = FuncRefTarget(image, static_cast<uint32_t>(insn.a));
        if (target >= 0) {
          counts[target] += 2;
        }
      }
    }
  }
  for (uint32_t address : image.func_ref_data) {
    int target = FuncRefTarget(image, ReadDataWord(image, address));
    if (target >= 0) {
      counts[target] += 2;
    }
  }
  return counts;
}

// Function ids of the named entry points (exports, knit__init/fini/rollback).
std::set<int> EntryRoots(const Image& image, const ImagePassOptions& options) {
  std::set<int> roots;
  for (const std::string& name : options.entry_points) {
    int id = image.FindFunction(name);
    if (id >= 0 && !image.IsNativeId(id)) {
      roots.insert(id);
    }
  }
  return roots;
}

// ---- profile indexing (PGO) ---------------------------------------------------

// The Machine buckets unattributed functions under "<other>"; the image side
// must normalize the same way or profile lookups miss exactly those functions.
const std::string& NormalizeComponent(const std::string& component) {
  static const std::string kOther = "<other>";
  return component.empty() ? kOther : component;
}

// The recorded measurements, indexed for the lookups the PGO passes make.
struct ProfileIndex {
  std::map<std::string, long long> component_cycles;
  std::map<std::pair<std::string, std::string>, long long> edge_calls;
  std::map<std::string, long long> function_calls;  // recorded entries per name
  std::set<std::string> executed_functions;         // recorded entry count > 0
  bool have_function_calls = false;                 // functions table was present
};

ProfileIndex BuildProfileIndex(const ComponentProfile& profile) {
  ProfileIndex index;
  for (const ComponentProfileEntry& entry : profile.components) {
    index.component_cycles[entry.component] += entry.cycles;
  }
  for (const BoundaryEdge& edge : profile.edges) {
    index.edge_calls[{edge.caller, edge.callee}] += edge.calls;
  }
  index.have_function_calls = !profile.function_calls.empty();
  for (const FunctionCallCount& fn : profile.function_calls) {
    index.function_calls[fn.function] += fn.calls;
    if (fn.calls > 0) {
      index.executed_functions.insert(fn.function);
    }
  }
  return index;
}

long long FunctionCallsOf(const ProfileIndex& index, const std::string& name) {
  auto it = index.function_calls.find(name);
  return it == index.function_calls.end() ? 0 : it->second;
}

long long ComponentCyclesOf(const ProfileIndex& index, const std::string& component) {
  auto it = index.component_cycles.find(NormalizeComponent(component));
  return it == index.component_cycles.end() ? 0 : it->second;
}

// The hotness of one call site: recorded boundary-edge traffic times how
// expensive the callee's component measured (so a 1000-call edge into a heavy
// component outranks a 1000-call edge into a trivial one).
long long CallSiteScore(const ProfileIndex& index, const std::string& caller_component,
                        const std::string& callee_component) {
  auto it = index.edge_calls.find(
      {NormalizeComponent(caller_component), NormalizeComponent(callee_component)});
  long long calls = it == index.edge_calls.end() ? 0 : it->second;
  long long callee_cycles = ComponentCyclesOf(index, callee_component);
  return calls * std::max<long long>(1, callee_cycles);
}

// ---- image-scope passes ------------------------------------------------------

// Rewrites `kConstInt(funcref); kCallIndirect` pairs into a direct kCall: the
// target is known at link time, so the call needs neither the BTB nor the
// indirect-call penalty, and downstream passes can inline it. The call insn must
// not be a jump target (a jump landing there would take its target from the
// stack, not from our constant).
class DevirtualizePass : public ImagePass {
 public:
  const char* name() const override { return "devirt"; }
  void Run(Image& image, const ImagePassOptions& options) override {
    int total_callables =
        static_cast<int>(image.functions.size() + image.natives.size());
    for (BytecodeFunction& function : image.functions) {
      if (function.code.empty()) {
        continue;
      }
      std::set<int> leaders;
      for (const Insn& insn : function.code) {
        if (IsJumpOp(insn.op)) {
          leaders.insert(insn.a);
        }
      }
      for (size_t i = 0; i + 1 < function.code.size(); ++i) {
        const Insn& cst = function.code[i];
        const Insn& call = function.code[i + 1];
        if (cst.op != Op::kConstInt || call.op != Op::kCallIndirect ||
            leaders.count(static_cast<int>(i + 1)) > 0) {
          continue;
        }
        uint32_t value = static_cast<uint32_t>(cst.a);
        if (!IsFuncRef(value)) {
          continue;
        }
        int callable = static_cast<int>(DecodeFuncRef(value));
        if (callable < 0 || callable >= total_callables) {
          continue;
        }
        if (callable < static_cast<int>(image.functions.size()) &&
            options.swappable_components.count(image.functions[callable].component) > 0) {
          // The target belongs to a hot-swappable instance: baking a direct
          // call would survive a swap and keep invoking the retired code. The
          // indirect form re-reads the (rewritten) function ref every call.
          continue;
        }
        function.code[i] = Insn{Op::kNop, 0, 0};
        function.code[i + 1] = Insn{Op::kCall, callable, call.b};
      }
    }
  }
};

// Cross-object inlining through resolved bindings: after ld, every direct call
// names its callee by image id, so the per-TU defs-before-uses restriction
// disappears and calls across former unit boundaries inline like local ones.
// Inlined code keeps executing inside the caller's frame, so the profiler
// attributes it to the caller's component — exactly how flatten groups already
// collapse, and why the boundary-call counter sees these edges vanish.
class CrossInlinePass : public ImagePass {
 public:
  const char* name() const override { return "cross-inline"; }

  void Run(Image& image, const ImagePassOptions& options) override {
    std::set<int> roots = EntryRoots(image, options);
    ProfileIndex index;
    const ProfileIndex* hot = nullptr;
    if (options.profile != nullptr) {
      index = BuildProfileIndex(*options.profile);
      hot = &index;
    }
    // Without a profile, callers are processed in symbol (id) order. With one,
    // Callers are walked in symbol order either way — processing a callee
    // before its callers lets it absorb its own callees first, so a later
    // inline of it carries the whole subtree. The profile changes which SITE
    // each rescan round picks (hottest recorded edge instead of first-found)
    // and how much budget a hot site may spend; see EligibleCallee/InlineInto.
    for (size_t f = 0; f < image.functions.size(); ++f) {
      InlineInto(image, static_cast<int>(f), options, roots, hot);
    }
  }

 private:
  // The eligible callee at call site `call` of `function_index`, or -1. With a
  // profile, sites on recorded-hot boundary edges earn twice the size budget:
  // the recording proves the call executes per packet, so trading text for a
  // removed boundary call is the bet PGO exists to make.
  static int EligibleCallee(const Image& image, int function_index, const Insn& call,
                            const std::vector<int>& refs, const std::set<int>& roots,
                            const ImagePassOptions& options, const ProfileIndex* hot) {
    if (call.op != Op::kCall) {
      return -1;
    }
    int callee_id = call.a;
    if (callee_id < 0 || callee_id >= static_cast<int>(image.functions.size()) ||
        callee_id == function_index) {
      return -1;  // native, unresolved, or self-recursive
    }
    const BytecodeFunction& callee = image.functions[callee_id];
    if (callee.variadic || callee.code.empty()) {
      return -1;
    }
    int inline_limit = options.inline_limit;
    if (hot != nullptr &&
        CallSiteScore(*hot, image.functions[function_index].component, callee.component) > 0) {
      inline_limit *= 2;
    }
    bool small = inline_limit > 0 && static_cast<int>(callee.code.size()) <= inline_limit;
    // A function called exactly once anywhere in the image inlines whole —
    // unless it is an entry point (the host calls it by name, so the body
    // must survive) or its address escapes (refs weighting).
    bool single = options.inline_single_call && refs[callee_id] == 1 &&
                  roots.count(callee_id) == 0 &&
                  static_cast<int>(callee.code.size()) <= options.single_call_limit;
    if (!small && !single) {
      return -1;
    }
    if (callee.returns_value != CallReturns(call.b) || callee.param_count != CallArgc(call.b)) {
      return -1;
    }
    return callee_id;
  }

  // Splices callee `callee_id` into `function_index` at call site `p`.
  static void SpliceAt(Image& image, int function_index, size_t p, int callee_id) {
    BytecodeFunction& caller = image.functions[function_index];
    const BytecodeFunction& callee = image.functions[callee_id];

    int base = RoundUp(caller.frame_size, kWordSize);
    caller.frame_size = base + callee.frame_size;
    std::vector<Insn> splice;
    for (int i = callee.param_count - 1; i >= 0; --i) {
      splice.push_back(Insn{Op::kStoreLocal, base + i * kWordSize, kWordSize});
    }
    int body_start = static_cast<int>(splice.size());
    int end_index = body_start + static_cast<int>(callee.code.size());
    for (const Insn& insn : callee.code) {
      Insn copy = insn;
      switch (copy.op) {
        case Op::kLoadLocal:
        case Op::kStoreLocal:
        case Op::kAddrLocal:
          copy.a += base;
          break;
        case Op::kJmp:
        case Op::kJz:
        case Op::kJnz:
          copy.a += body_start;
          break;
        case Op::kRet:
          copy.op = Op::kJmp;
          copy.a = end_index;
          break;
        default:
          break;
      }
      splice.push_back(copy);
    }

    int grow = static_cast<int>(splice.size()) - 1;
    std::vector<Insn> out;
    out.reserve(caller.code.size() + splice.size());
    for (size_t i = 0; i < p; ++i) {
      Insn insn = caller.code[i];
      if (IsJumpOp(insn.op) && insn.a > static_cast<int>(p)) {
        insn.a += grow;
      }
      out.push_back(insn);
    }
    for (Insn insn : splice) {
      if (IsJumpOp(insn.op)) {
        insn.a += static_cast<int>(p);
      }
      out.push_back(insn);
    }
    for (size_t i = p + 1; i < caller.code.size(); ++i) {
      Insn insn = caller.code[i];
      if (IsJumpOp(insn.op) && insn.a > static_cast<int>(p)) {
        insn.a += grow;
      }
      out.push_back(insn);
    }
    caller.code = std::move(out);
  }

  static void InlineInto(Image& image, int function_index, const ImagePassOptions& options,
                         const std::set<int>& roots, const ProfileIndex* hot) {
    bool progress = true;
    while (progress && static_cast<int>(image.functions[function_index].code.size()) <
                           options.caller_growth) {
      progress = false;
      std::vector<int> refs = CountImageRefs(image);
      BytecodeFunction& caller = image.functions[function_index];
      // Pick the call site to inline this round: without a profile, the first
      // eligible one (symbol order — the historical behavior, bit for bit);
      // with one, the hottest eligible one (recorded edge calls × callee
      // component cycles; ties fall back to the lowest pc, keeping the choice
      // deterministic for any profile).
      size_t best_site = caller.code.size();
      int best_callee = -1;
      long long best_score = -1;
      for (size_t p = 0; p < caller.code.size(); ++p) {
        int callee_id =
            EligibleCallee(image, function_index, caller.code[p], refs, roots, options, hot);
        if (callee_id < 0) {
          continue;
        }
        if (hot == nullptr) {
          best_site = p;
          best_callee = callee_id;
          break;
        }
        long long score =
            CallSiteScore(*hot, caller.component, image.functions[callee_id].component);
        if (score > best_score) {
          best_score = score;
          best_site = p;
          best_callee = callee_id;
        }
      }
      if (best_callee < 0) {
        break;  // nothing left to inline into this caller
      }
      SpliceAt(image, function_index, best_site, best_callee);
      progress = true;  // indices changed; rescan
    }
  }
};

// Global dead-function / dead-export elimination. Liveness is reachability from
// the entry points plus every function whose ref is stored in data (the linker
// records those addresses in Image::func_ref_data) or materialized as a constant
// in reachable code (conservative: any kConstInt decoding to a valid id keeps
// the target alive, so indirect calls can never reach a stubbed body). Dead
// functions are stubbed — code cleared, id and name kept — so no call target or
// stored ref ever needs remapping; their global symbols leave the symbol table,
// which is the dead-*export* half.
class ImageDcePass : public ImagePass {
 public:
  const char* name() const override { return "dce-image"; }

  void Run(Image& image, const ImagePassOptions& options) override {
    size_t count = image.functions.size();
    std::vector<char> live(count, 0);
    std::vector<int> work;
    auto mark = [&](int id) {
      if (id >= 0 && id < static_cast<int>(count) && !live[id]) {
        live[id] = 1;
        work.push_back(id);
      }
    };
    for (int id : EntryRoots(image, options)) {
      mark(id);
    }
    for (uint32_t address : image.func_ref_data) {
      mark(FuncRefTarget(image, ReadDataWord(image, address)));
    }
    // Binding-slot targets are rebindable entry points: the reconfig engine may
    // point a slot back at them at any time, so they are roots unconditionally.
    for (const BindingSlot& slot : image.bindings) {
      mark(slot.target);
    }
    while (!work.empty()) {
      int f = work.back();
      work.pop_back();
      for (const Insn& insn : image.functions[f].code) {
        if (insn.op == Op::kCall) {
          mark(insn.a);
        } else if (insn.op == Op::kCallBound) {
          if (insn.a >= 0 && insn.a < static_cast<int>(image.bindings.size())) {
            mark(image.bindings[insn.a].target);
          }
        } else if (insn.op == Op::kConstInt) {
          mark(FuncRefTarget(image, static_cast<uint32_t>(insn.a)));
        }
      }
    }
    for (size_t f = 0; f < count; ++f) {
      if (!live[f]) {
        image.functions[f].code.clear();
        image.functions[f].frame_size = 0;
      }
    }
    for (auto it = image.function_symbols.begin(); it != image.function_symbols.end();) {
      bool dead = it->second >= 0 && it->second < static_cast<int>(count) && !live[it->second];
      it = dead ? image.function_symbols.erase(it) : std::next(it);
    }
  }
};

// Re-runs the per-function optimizer over every live function: cross-inlining
// exposes the same store/load and value-numbering slack that per-TU inlining
// does, and devirtualized constants fold away.
class ImageSimplifyPass : public ImagePass {
 public:
  const char* name() const override { return "simplify"; }
  void Run(Image& image, const ImagePassOptions&) override {
    for (BytecodeFunction& function : image.functions) {
      if (!function.code.empty()) {
        OptimizeFunction(function);
      }
    }
  }
};

// Re-places the text segment after code shrank: same formula as the linker's
// Layout phase, so images remain deterministic and the I-cache simulator sees
// the denser footprint (the paper's flattened-is-smaller effect).
class ImageLayoutPass : public ImagePass {
 public:
  const char* name() const override { return "layout"; }
  void Run(Image& image, const ImagePassOptions& options) override {
    int text_cursor = 0;
    for (BytecodeFunction& function : image.functions) {
      function.text_offset = text_cursor;
      text_cursor += RoundUp(function.TextBytes(), options.text_align);
    }
    image.text_bytes = text_cursor;
  }
};

// Profile-guided text placement: component groups are ordered by hot-path
// affinity instead of symbol order, so functions that call each other on the
// recorded hot path share I-cache sets. Greedy Pettis–Hansen-style clustering:
// walk boundary edges heaviest-first, concatenating component chains; emit
// chains hottest-first; components the profile never saw go last. Only
// text_offset/text_bytes change — the machine addresses the I-cache by
// text_offset, so RunResult values are untouched by construction.
class PgoLayoutPass : public ImagePass {
 public:
  const char* name() const override { return "layout-pgo"; }

  void Run(Image& image, const ImagePassOptions& options) override {
    if (options.profile == nullptr) {
      // No profile — identical placement to the plain layout pass.
      ImageLayoutPass().Run(image, options);
      return;
    }
    ProfileIndex index = BuildProfileIndex(*options.profile);

    // Component -> member function ids, id order within each component. Track
    // first-seen (minimum) id per component for the cold-tail ordering.
    std::map<std::string, std::vector<int>> members;
    std::vector<std::string> discovery;  // components by minimum function id
    for (size_t f = 0; f < image.functions.size(); ++f) {
      const std::string& comp = NormalizeComponent(image.functions[f].component);
      auto [it, inserted] = members.emplace(comp, std::vector<int>{});
      if (inserted) {
        discovery.push_back(comp);
      }
      it->second.push_back(static_cast<int>(f));
    }

    // Chains over the hot components (recorded cycles > 0). Each starts alone;
    // edges merge them heaviest-first.
    std::map<std::string, int> chain_of;  // hot component -> chain index
    std::vector<std::vector<std::string>> chains;
    for (const std::string& comp : discovery) {
      if (ComponentCyclesOf(index, comp) > 0 && members.count(comp) != 0) {
        chain_of[comp] = static_cast<int>(chains.size());
        chains.push_back({comp});
      }
    }
    struct Edge {
      std::string caller;
      std::string callee;
      long long calls;
    };
    std::vector<Edge> edges;
    for (const auto& [pair, calls] : index.edge_calls) {
      if (calls > 0 && chain_of.count(pair.first) != 0 && chain_of.count(pair.second) != 0) {
        edges.push_back(Edge{pair.first, pair.second, calls});
      }
    }
    std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
      if (a.calls != b.calls) {
        return a.calls > b.calls;
      }
      if (a.caller != b.caller) {
        return a.caller < b.caller;
      }
      return a.callee < b.callee;
    });
    for (const Edge& edge : edges) {
      int a = chain_of[edge.caller];
      int b = chain_of[edge.callee];
      if (a == b) {
        continue;
      }
      // Join so the edge's endpoints actually touch: the caller wants to be the
      // tail of its chain and the callee the head of its — a chain whose hot
      // member sits at the wrong end is reversed (the classic Pettis–Hansen
      // move). Endpoints buried mid-chain were already placed by a hotter edge
      // and stay put.
      if (chains[a].front() == edge.caller && chains[a].size() > 1) {
        std::reverse(chains[a].begin(), chains[a].end());
      }
      if (chains[b].back() == edge.callee && chains[b].size() > 1) {
        std::reverse(chains[b].begin(), chains[b].end());
      }
      for (const std::string& comp : chains[b]) {
        chain_of[comp] = a;
      }
      chains[a].insert(chains[a].end(), chains[b].begin(), chains[b].end());
      chains[b].clear();
    }

    // Hottest chain first; within a chain the merge order already strings hot
    // callers next to their callees.
    std::vector<int> live_chains;
    for (size_t c = 0; c < chains.size(); ++c) {
      if (!chains[c].empty()) {
        live_chains.push_back(static_cast<int>(c));
      }
    }
    std::stable_sort(live_chains.begin(), live_chains.end(), [&](int a, int b) {
      long long ca = 0;
      long long cb = 0;
      for (const std::string& comp : chains[a]) {
        ca += ComponentCyclesOf(index, comp);
      }
      for (const std::string& comp : chains[b]) {
        cb += ComponentCyclesOf(index, comp);
      }
      if (ca != cb) {
        return ca > cb;
      }
      return chains[a].front() < chains[b].front();
    });

    std::vector<std::string> order;
    order.reserve(members.size());
    for (int c : live_chains) {
      for (const std::string& comp : chains[c]) {
        order.push_back(comp);
      }
    }
    for (const std::string& comp : discovery) {  // cold tail, min-function-id order
      if (chain_of.count(comp) == 0) {
        order.push_back(comp);
      }
    }

    // Within a component, most-entered functions first (recorded entry counts;
    // ties and unprofiled functions keep id order), so a component's own hot
    // entry shares cache lines with the neighbours the chain put next to it.
    int text_cursor = 0;
    for (const std::string& comp : order) {
      std::vector<int>& group = members[comp];
      std::stable_sort(group.begin(), group.end(), [&](int a, int b) {
        return FunctionCallsOf(index, image.functions[a].name) >
               FunctionCallsOf(index, image.functions[b].name);
      });
      for (int f : group) {
        image.functions[f].text_offset = text_cursor;
        text_cursor += RoundUp(image.functions[f].TextBytes(), options.text_align);
      }
    }
    image.text_bytes = text_cursor;
  }
};

// Moves functions the recorded workload never entered (error paths, rollback
// handlers, unused exports that DCE must keep for the host) behind the hot
// text, preserving their relative order. Runs after layout-pgo, so "behind"
// means behind the affinity-clustered hot region. A profile with no per-
// function table (an old recording) disables the pass rather than outlining
// everything.
class OutlineColdPass : public ImagePass {
 public:
  const char* name() const override { return "outline-cold"; }

  void Run(Image& image, const ImagePassOptions& options) override {
    if (options.profile == nullptr) {
      return;
    }
    ProfileIndex index = BuildProfileIndex(*options.profile);
    if (!index.have_function_calls) {
      return;
    }
    std::vector<int> placed(image.functions.size());
    for (size_t f = 0; f < placed.size(); ++f) {
      placed[f] = static_cast<int>(f);
    }
    std::stable_sort(placed.begin(), placed.end(), [&](int a, int b) {
      return image.functions[a].text_offset < image.functions[b].text_offset;
    });
    std::vector<int> hot;
    std::vector<int> cold;
    for (int f : placed) {
      const BytecodeFunction& function = image.functions[f];
      // Anonymous functions cannot appear in the profile's name-keyed table, so
      // treat them as hot rather than outline them blind.
      bool executed =
          function.name.empty() || index.executed_functions.count(function.name) != 0;
      (executed ? hot : cold).push_back(f);
    }
    int text_cursor = 0;
    for (int f : hot) {
      image.functions[f].text_offset = text_cursor;
      text_cursor += RoundUp(image.functions[f].TextBytes(), options.text_align);
    }
    for (int f : cold) {
      image.functions[f].text_offset = text_cursor;
      text_cursor += RoundUp(image.functions[f].TextBytes(), options.text_align);
    }
    image.text_bytes = text_cursor;
  }
};

}  // namespace

// ---- PassManager -------------------------------------------------------------

void MergePassStats(std::vector<PassStats>& into, const std::vector<PassStats>& from) {
  for (const PassStats& row : from) {
    PassStats* found = nullptr;
    for (PassStats& existing : into) {
      if (existing.pass == row.pass && existing.scope == row.scope) {
        found = &existing;
        break;
      }
    }
    if (found == nullptr) {
      into.push_back(row);
      continue;
    }
    found->runs += row.runs;
    found->insns_before += row.insns_before;
    found->insns_after += row.insns_after;
    found->seconds += row.seconds;
  }
}

long long ImageInsnCount(const Image& image) {
  long long total = 0;
  for (const BytecodeFunction& function : image.functions) {
    total += static_cast<long long>(function.code.size());
  }
  return total;
}

void PassManager::AddFunctionPass(std::unique_ptr<FunctionPass> pass) {
  function_passes_.push_back(std::move(pass));
}

void PassManager::AddObjectPass(std::unique_ptr<ObjectPass> pass) {
  object_passes_.push_back(std::move(pass));
}

void PassManager::AddImagePass(std::unique_ptr<ImagePass> pass) {
  image_passes_.push_back(std::move(pass));
}

void PassManager::RunOnObject(ObjectFile& object, const CodegenOptions& options,
                              std::vector<PassStats>* stats) {
  std::vector<PassStats> rows;
  rows.reserve(function_passes_.size() + object_passes_.size());
  for (const auto& pass : function_passes_) {
    rows.push_back(PassStats{pass->name(), "object"});
  }
  for (const auto& pass : object_passes_) {
    rows.push_back(PassStats{pass->name(), "object"});
  }
  // Functions are the OUTER loop: every pass finishes function f before any
  // pass touches f+1, so callees are fully optimized before later callers
  // consider them for inlining (the per-TU defs-before-uses contract).
  for (size_t f = 0; f < object.functions.size(); ++f) {
    for (size_t p = 0; p < function_passes_.size(); ++p) {
      PassStats& row = rows[p];
      auto t0 = std::chrono::steady_clock::now();
      row.insns_before += static_cast<long long>(object.functions[f].code.size());
      function_passes_[p]->Run(object, static_cast<int>(f), options);
      row.insns_after += static_cast<long long>(object.functions[f].code.size());
      row.seconds += SecondsSince(t0);
      ++row.runs;
    }
  }
  for (size_t p = 0; p < object_passes_.size(); ++p) {
    PassStats& row = rows[function_passes_.size() + p];
    auto t0 = std::chrono::steady_clock::now();
    row.insns_before += ObjectInsnCount(object);
    object_passes_[p]->Run(object, options);
    row.insns_after += ObjectInsnCount(object);
    row.seconds += SecondsSince(t0);
    ++row.runs;
  }
  if (stats != nullptr) {
    MergePassStats(*stats, rows);
  }
}

void PassManager::RunOnImage(Image& image, const ImagePassOptions& options,
                             std::vector<PassStats>* stats) {
  std::vector<PassStats> rows;
  rows.reserve(image_passes_.size());
  for (const auto& pass : image_passes_) {
    PassStats row{pass->name(), "image"};
    auto t0 = std::chrono::steady_clock::now();
    row.insns_before = ImageInsnCount(image);
    pass->Run(image, options);
    row.insns_after = ImageInsnCount(image);
    row.seconds = SecondsSince(t0);
    row.runs = 1;
    rows.push_back(std::move(row));
  }
  if (stats != nullptr) {
    MergePassStats(*stats, rows);
  }
}

PassManager MakeObjectPassManager() {
  PassManager manager;
  manager.AddFunctionPass(std::make_unique<InlineFunctionPass>());
  manager.AddFunctionPass(std::make_unique<SimplifyFunctionPass>());
  manager.AddFunctionPass(std::make_unique<LvnFunctionPass>());
  manager.AddFunctionPass(std::make_unique<JumpThreadFunctionPass>());
  manager.AddFunctionPass(std::make_unique<PeepholeFunctionPass>());
  manager.AddObjectPass(std::make_unique<DceLocalPass>());
  return manager;
}

PassManager MakeImagePassManager(bool profile_guided) {
  PassManager manager;
  manager.AddImagePass(std::make_unique<DevirtualizePass>());
  manager.AddImagePass(std::make_unique<CrossInlinePass>());
  manager.AddImagePass(std::make_unique<ImageDcePass>());
  manager.AddImagePass(std::make_unique<ImageSimplifyPass>());
  if (profile_guided) {
    manager.AddImagePass(std::make_unique<PgoLayoutPass>());
    manager.AddImagePass(std::make_unique<OutlineColdPass>());
  } else {
    manager.AddImagePass(std::make_unique<ImageLayoutPass>());
  }
  return manager;
}

}  // namespace knit
