#include "src/constraints/check.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "src/support/strings.h"

namespace knit {

PropertyLattice::PropertyLattice(std::string name,
                                 const std::vector<PropertyValueDecl>& declared_values)
    : name_(std::move(name)) {
  for (const PropertyValueDecl& decl : declared_values) {
    if (decl.property == name_) {
      values_.push_back(decl.name);
    }
  }
  size_t n = values_.size();
  leq_.assign(n, std::vector<bool>(n, false));
  for (size_t i = 0; i < n; ++i) {
    leq_[i][i] = true;
  }
  for (const PropertyValueDecl& decl : declared_values) {
    if (decl.property != name_ || decl.less_than.empty()) {
      continue;
    }
    int lo = IndexOf(decl.name);
    int hi = IndexOf(decl.less_than);
    assert(lo >= 0 && hi >= 0);
    leq_[lo][hi] = true;
  }
  // Floyd–Warshall transitive closure; value sets are tiny.
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (!leq_[i][k]) {
        continue;
      }
      for (size_t j = 0; j < n; ++j) {
        if (leq_[k][j]) {
          leq_[i][j] = true;
        }
      }
    }
  }
}

int PropertyLattice::IndexOf(const std::string& value) const {
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] == value) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

namespace {

// Per-property solver. Variables are (instance, port); a bitset of possible values
// per union-find root.
class PropertySolver {
 public:
  PropertySolver(const PropertyLattice& lattice, const Configuration& config,
                 Diagnostics& diags)
      : lattice_(lattice), config_(config), diags_(diags) {
    // Variable layout: for instance i, imports then exports.
    var_base_.resize(config.instances.size());
    int next = 0;
    for (size_t i = 0; i < config.instances.size(); ++i) {
      var_base_[i] = next;
      next += static_cast<int>(config.instances[i].unit->imports.size() +
                               config.instances[i].unit->exports.size());
    }
    parent_.resize(next);
    std::iota(parent_.begin(), parent_.end(), 0);
    domains_.assign(next, FullDomain());

    // Wiring: import variable == supplier's export variable.
    for (size_t i = 0; i < config.instances.size(); ++i) {
      const Instance& instance = config.instances[i];
      for (size_t p = 0; p < instance.import_suppliers.size(); ++p) {
        const SupplierRef& supplier = instance.import_suppliers[p];
        if (supplier.IsEnvironment()) {
          continue;
        }
        Union(ImportVar(static_cast<int>(i), static_cast<int>(p)),
              ExportVar(supplier.instance, supplier.port));
      }
    }
  }

  bool Solve() {
    // Collect the per-instance constraints for this property.
    for (size_t i = 0; i < config_.instances.size(); ++i) {
      for (const ConstraintDecl& constraint : config_.instances[i].unit->constraints) {
        if (!AddConstraint(static_cast<int>(i), constraint)) {
          return false;
        }
      }
    }
    // Arc-consistency fixpoint over the <= edges.
    bool changed = true;
    while (changed) {
      changed = false;
      for (const LeqEdge& edge : leq_edges_) {
        changed |= PruneLeq(edge);
        if (failed_) {
          return false;
        }
      }
    }
    return true;
  }

  // Writes the final domains for reporting.
  void Export(ConstraintSolution& solution) const {
    auto& by_instance = solution.domains[lattice_.name()];
    for (size_t i = 0; i < config_.instances.size(); ++i) {
      const Instance& instance = config_.instances[i];
      auto& by_port = by_instance[instance.path];
      for (size_t p = 0; p < instance.unit->imports.size(); ++p) {
        by_port["imports/" + instance.unit->imports[p].local_name] =
            DomainNames(ImportVar(static_cast<int>(i), static_cast<int>(p)));
      }
      for (size_t p = 0; p < instance.unit->exports.size(); ++p) {
        by_port["exports/" + instance.unit->exports[p].local_name] =
            DomainNames(ExportVar(static_cast<int>(i), static_cast<int>(p)));
      }
    }
  }

 private:
  struct LeqEdge {
    int lo;  // variable constrained to be <= hi
    int hi;
    SourceLoc loc;
    std::string description;
  };

  uint64_t FullDomain() const {
    size_t n = lattice_.values().size();
    return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
  }

  int ImportVar(int instance, int port) const { return var_base_[instance] + port; }
  int ExportVar(int instance, int port) const {
    return var_base_[instance] + static_cast<int>(config_.instances[instance].unit->imports.size()) +
           port;
  }

  int Find(int v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }
  int Find(int v) const {
    while (parent_[v] != v) {
      v = parent_[v];
    }
    return v;
  }

  void Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a == b) {
      return;
    }
    parent_[b] = a;
    domains_[a] &= domains_[b];
  }

  std::vector<std::string> DomainNames(int var) const {
    std::vector<std::string> names;
    uint64_t domain = domains_[Find(var)];
    for (size_t i = 0; i < lattice_.values().size(); ++i) {
      if ((domain >> i) & 1) {
        names.push_back(lattice_.values()[i]);
      }
    }
    return names;
  }

  // The set of variables a PropertyExpr denotes for `instance` (empty for kValue).
  std::vector<int> VarsOf(int instance, const PropertyExpr& expr) const {
    const UnitDecl& unit = *config_.instances[instance].unit;
    std::vector<int> vars;
    switch (expr.kind) {
      case PropertyExpr::Kind::kOfPort: {
        int import_index = Elaboration::PortIndex(unit.imports, expr.name);
        if (import_index >= 0) {
          vars.push_back(ImportVar(instance, import_index));
        } else {
          int export_index = Elaboration::PortIndex(unit.exports, expr.name);
          assert(export_index >= 0);
          vars.push_back(ExportVar(instance, export_index));
        }
        break;
      }
      case PropertyExpr::Kind::kOfImports:
        for (size_t p = 0; p < unit.imports.size(); ++p) {
          vars.push_back(ImportVar(instance, static_cast<int>(p)));
        }
        break;
      case PropertyExpr::Kind::kOfExports:
        for (size_t p = 0; p < unit.exports.size(); ++p) {
          vars.push_back(ExportVar(instance, static_cast<int>(p)));
        }
        break;
      case PropertyExpr::Kind::kValue:
        break;
    }
    return vars;
  }

  bool ExprUsesThisProperty(const ConstraintDecl& constraint) const {
    auto uses = [&](const PropertyExpr& expr) {
      return expr.kind != PropertyExpr::Kind::kValue && expr.property == lattice_.name();
    };
    // A value-only side belongs to whatever property the other side names; a
    // value = value constraint belongs to every property (it is checked statically
    // by the first lattice that sees it).
    return uses(constraint.lhs) || uses(constraint.rhs);
  }

  // Narrows var's root domain to `mask`; reports via `blame` on empty.
  bool Narrow(int var, uint64_t mask, const SourceLoc& loc, const std::string& blame) {
    int root = Find(var);
    uint64_t next = domains_[root] & mask;
    if (next == domains_[root]) {
      return false;  // no change
    }
    domains_[root] = next;
    if (next == 0) {
      diags_.Error(loc, "unsatisfiable constraint: " + blame);
      failed_ = true;
    }
    return true;
  }

  uint64_t ValuesLeq(int value_index) const {
    uint64_t mask = 0;
    for (size_t i = 0; i < lattice_.values().size(); ++i) {
      if (lattice_.Leq(static_cast<int>(i), value_index)) {
        mask |= 1ULL << i;
      }
    }
    return mask;
  }

  uint64_t ValuesGeq(int value_index) const {
    uint64_t mask = 0;
    for (size_t i = 0; i < lattice_.values().size(); ++i) {
      if (lattice_.Leq(value_index, static_cast<int>(i))) {
        mask |= 1ULL << i;
      }
    }
    return mask;
  }

  bool AddConstraint(int instance, const ConstraintDecl& constraint) {
    if (!ExprUsesThisProperty(constraint)) {
      return true;
    }
    const std::string& path = config_.instances[instance].path;
    std::string blame = "in instance '" + path + "'";

    auto value_index = [&](const PropertyExpr& expr) -> int {
      int index = lattice_.IndexOf(expr.name);
      if (index < 0) {
        diags_.Error(expr.loc, "unknown value '" + expr.name + "' for property '" +
                                   lattice_.name() + "' " + blame);
        failed_ = true;
      }
      return index;
    };

    bool lhs_value = constraint.lhs.kind == PropertyExpr::Kind::kValue;
    bool rhs_value = constraint.rhs.kind == PropertyExpr::Kind::kValue;

    if (lhs_value && rhs_value) {
      int a = value_index(constraint.lhs);
      int b = value_index(constraint.rhs);
      if (a < 0 || b < 0) {
        return false;
      }
      bool holds = constraint.relation == ConstraintDecl::Relation::kEqual
                       ? a == b
                       : lattice_.Leq(a, b);
      if (!holds) {
        diags_.Error(constraint.loc, "constraint between constant values does not hold " + blame);
        return false;
      }
      return true;
    }

    std::vector<int> lhs_vars = VarsOf(instance, constraint.lhs);
    std::vector<int> rhs_vars = VarsOf(instance, constraint.rhs);

    if (constraint.relation == ConstraintDecl::Relation::kEqual) {
      if (lhs_value || rhs_value) {
        const PropertyExpr& value_expr = lhs_value ? constraint.lhs : constraint.rhs;
        const std::vector<int>& vars = lhs_value ? rhs_vars : lhs_vars;
        int index = value_index(value_expr);
        if (index < 0) {
          return false;
        }
        for (int var : vars) {
          Narrow(var, 1ULL << index, constraint.loc,
                 lattice_.name() + " fixed to '" + value_expr.name + "' conflicts with other "
                 "constraints " + blame);
          if (failed_) {
            return false;
          }
        }
        return true;
      }
      // port = port: unify every lhs var with every rhs var.
      for (int a : lhs_vars) {
        for (int b : rhs_vars) {
          Union(a, b);
          if (domains_[Find(a)] == 0) {
            diags_.Error(constraint.loc,
                         "unsatisfiable equality constraint on property '" + lattice_.name() +
                             "' " + blame);
            failed_ = true;
            return false;
          }
        }
      }
      return true;
    }

    // Relation kLessEq.
    if (lhs_value) {
      int index = value_index(constraint.lhs);
      if (index < 0) {
        return false;
      }
      for (int var : rhs_vars) {
        Narrow(var, ValuesGeq(index), constraint.loc,
               "'" + constraint.lhs.name + " <= " + lattice_.name() + "(...)' cannot hold " +
                   blame);
        if (failed_) {
          return false;
        }
      }
      return true;
    }
    if (rhs_value) {
      int index = value_index(constraint.rhs);
      if (index < 0) {
        return false;
      }
      for (int var : lhs_vars) {
        Narrow(var, ValuesLeq(index), constraint.loc,
               "'" + lattice_.name() + "(...) <= " + constraint.rhs.name + "' cannot hold " +
                   blame);
        if (failed_) {
          return false;
        }
      }
      return true;
    }
    // port <= port: record edges for the fixpoint.
    for (int lo : lhs_vars) {
      for (int hi : rhs_vars) {
        leq_edges_.push_back(LeqEdge{lo, hi, constraint.loc,
                                     "propagation constraint on property '" + lattice_.name() +
                                         "' " + blame});
      }
    }
    return true;
  }

  // dom(lo) keeps values with some upper bound in dom(hi); dom(hi) keeps values with
  // some lower bound in dom(lo).
  bool PruneLeq(const LeqEdge& edge) {
    int lo_root = Find(edge.lo);
    int hi_root = Find(edge.hi);
    uint64_t lo_dom = domains_[lo_root];
    uint64_t hi_dom = domains_[hi_root];
    uint64_t lo_keep = 0;
    uint64_t hi_keep = 0;
    size_t n = lattice_.values().size();
    for (size_t a = 0; a < n; ++a) {
      if (((lo_dom >> a) & 1) == 0) {
        continue;
      }
      for (size_t b = 0; b < n; ++b) {
        if (((hi_dom >> b) & 1) != 0 && lattice_.Leq(static_cast<int>(a), static_cast<int>(b))) {
          lo_keep |= 1ULL << a;
          hi_keep |= 1ULL << b;
        }
      }
    }
    bool changed = false;
    changed |= Narrow(lo_root, lo_keep | ~lo_dom, edge.loc, edge.description);
    if (!failed_) {
      changed |= Narrow(hi_root, hi_keep | ~hi_dom, edge.loc, edge.description);
    }
    return changed;
  }

  const PropertyLattice& lattice_;
  const Configuration& config_;
  Diagnostics& diags_;
  std::vector<int> var_base_;
  std::vector<int> parent_;
  std::vector<uint64_t> domains_;  // per union-find root
  std::vector<LeqEdge> leq_edges_;
  bool failed_ = false;
};

}  // namespace

Result<void> CheckConstraints(const Elaboration& elaboration, const Configuration& config,
                              Diagnostics& diags, ConstraintSolution* solution_out) {
  bool ok = true;
  for (const PropertyDecl& property : elaboration.properties) {
    PropertyLattice lattice(property.name, elaboration.property_values);
    PropertySolver solver(lattice, config, diags);
    if (!solver.Solve()) {
      ok = false;
      continue;
    }
    if (solution_out != nullptr) {
      solver.Export(*solution_out);
    }
  }
  return ok ? Result<void>::Success() : Result<void>::Failure();
}

ConstraintStats ComputeConstraintStats(const Configuration& config) {
  ConstraintStats stats;
  stats.instance_count = static_cast<int>(config.instances.size());
  for (const Instance& instance : config.instances) {
    const UnitDecl& unit = *instance.unit;
    if (unit.constraints.empty()) {
      continue;
    }
    ++stats.annotated_instances;
    bool propagation_only = true;
    for (const ConstraintDecl& constraint : unit.constraints) {
      bool is_propagation = constraint.relation == ConstraintDecl::Relation::kLessEq &&
                            constraint.lhs.kind == PropertyExpr::Kind::kOfExports &&
                            constraint.rhs.kind == PropertyExpr::Kind::kOfImports;
      if (!is_propagation) {
        propagation_only = false;
        break;
      }
    }
    if (propagation_only) {
      ++stats.propagation_only_instances;
    }
  }
  return stats;
}

}  // namespace knit
