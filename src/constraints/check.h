// Architectural constraint checking (paper §4).
//
// Programmers declare properties with partially ordered values:
//     property context
//     type NoContext
//     type ProcessContext < NoContext
// and annotate unit ports:
//     constraints { context(intr) = NoContext; context(exports) <= context(imports); }
//
// Each (property, instance, port) is a variable. Linking unifies an import variable
// with its supplier's export variable. Solving is finite-domain propagation: every
// variable starts with the full value set; `=` fixes or unifies, `<=` prunes via the
// partial order; iterate to fixpoint. An emptied domain is a configuration error and
// is reported with the offending constraint, instance path, and port.
#ifndef SRC_CONSTRAINTS_CHECK_H_
#define SRC_CONSTRAINTS_CHECK_H_

#include <map>
#include <string>
#include <vector>

#include "src/knitsem/instantiate.h"
#include "src/support/diagnostics.h"
#include "src/support/result.h"

namespace knit {

// A property's value set and its reflexive-transitive order. `Leq(a, b)` is true when
// value `a` is at-most-as-general-as `b` per the `type A < B` declarations.
class PropertyLattice {
 public:
  PropertyLattice(std::string name, const std::vector<PropertyValueDecl>& declared_values);

  const std::string& name() const { return name_; }
  const std::vector<std::string>& values() const { return values_; }

  int IndexOf(const std::string& value) const;  // -1 if unknown
  bool Leq(int a, int b) const { return leq_[a][b]; }

 private:
  std::string name_;
  std::vector<std::string> values_;
  std::vector<std::vector<bool>> leq_;
};

// The solved assignment: for each property, for each instance port, the set of values
// still possible. Useful for reporting and for tests.
struct ConstraintSolution {
  // solution[property_name][instance][port-key] -> possible value names.
  // Port keys are "imports/<name>" and "exports/<name>".
  std::map<std::string, std::map<std::string, std::map<std::string, std::vector<std::string>>>>
      domains;
};

// Checks all constraints over the configuration. On violation, reports and fails.
// `solution_out` (optional) receives the final domains.
Result<void> CheckConstraints(const Elaboration& elaboration, const Configuration& config,
                              Diagnostics& diags, ConstraintSolution* solution_out = nullptr);

// Statistics matching the paper's §5 discussion ("35 required the addition of
// constraints, of which 70% simply propagated their context from imports to exports").
struct ConstraintStats {
  int instance_count = 0;
  int annotated_instances = 0;        // instances whose unit declares any constraint
  int propagation_only_instances = 0; // annotated with nothing but prop(exports)<=prop(imports)
};

ConstraintStats ComputeConstraintStats(const Configuration& config);

}  // namespace knit

#endif  // SRC_CONSTRAINTS_CHECK_H_
