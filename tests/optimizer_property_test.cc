// Property test: the per-TU optimizer (inlining + LVN + EBB inheritance + dead-store
// elimination + peepholes) must never change program behaviour. We generate random
// deterministic MiniC programs — arithmetic, globals, arrays, branches, bounded
// loops, and calls into earlier functions (inliner food) — and compare O0 vs O2
// results over several inputs.
//
// A second section checks the image-scope (-O2 link-time) passes over random
// multi-unit Knit configurations: behaviour bit-identical to -O0, dead-export
// elimination never strips a reachable symbol, and the optimized image is
// bit-identical across --jobs values.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "src/driver/knitc.h"
#include "src/vm/machine.h"
#include "tests/testutil.h"

namespace knit {
namespace {

class ProgramGenerator {
 public:
  explicit ProgramGenerator(unsigned seed) : rng_(seed) {}

  std::string Generate() {
    source_ = "static int g_arr[8];\nstatic int g_x = 3;\nstatic int g_y = 11;\n";
    int function_count = 2 + static_cast<int>(rng_() % 4);
    for (int i = 0; i < function_count; ++i) {
      EmitFunction(i);
    }
    // The entry point seeds state, calls every function, and mixes the results.
    source_ += "int entry(int seed) {\n";
    source_ += "  for (int i = 0; i < 8; i++) g_arr[i] = seed * (i + 3) + i;\n";
    source_ += "  g_x = seed | 5;\n  g_y = (seed >> 1) + 7;\n";
    source_ += "  int acc = seed;\n";
    for (int i = 0; i < function_count; ++i) {
      source_ += "  acc = acc * 31 + fn" + std::to_string(i) + "(acc, seed + " +
                 std::to_string(i) + ");\n";
    }
    source_ += "  for (int i = 0; i < 8; i++) acc = acc * 17 + g_arr[i];\n";
    source_ += "  return acc + g_x * 13 + g_y;\n}\n";
    return source_;
  }

 private:
  int Rand(int n) { return static_cast<int>(rng_() % static_cast<unsigned>(n)); }

  // An int-valued expression over the in-scope names. `depth` bounds recursion.
  std::string Expr(int depth, int defined_functions) {
    if (depth <= 0 || Rand(4) == 0) {
      switch (Rand(6)) {
        case 0:
          return std::to_string(Rand(200) - 100);
        case 1:
          return "a";
        case 2:
          return "b";
        case 3:
          return "g_x";
        case 4:
          return "g_y";
        default:
          return "g_arr[" + Expr(0, defined_functions) + " & 7]";
      }
    }
    switch (Rand(9)) {
      case 0:
        return "(" + Expr(depth - 1, defined_functions) + " + " +
               Expr(depth - 1, defined_functions) + ")";
      case 1:
        return "(" + Expr(depth - 1, defined_functions) + " - " +
               Expr(depth - 1, defined_functions) + ")";
      case 2:
        return "(" + Expr(depth - 1, defined_functions) + " * " +
               Expr(depth - 1, defined_functions) + ")";
      case 3:
        // Division guarded against zero and INT_MIN/-1 overflow.
        return "(" + Expr(depth - 1, defined_functions) + " / ((" +
               Expr(depth - 1, defined_functions) + " & 15) + 1))";
      case 4:
        return "(" + Expr(depth - 1, defined_functions) + " ^ " +
               Expr(depth - 1, defined_functions) + ")";
      case 5:
        return "(" + Expr(depth - 1, defined_functions) + " << (" +
               Expr(depth - 1, defined_functions) + " & 7))";
      case 6:
        return "(" + Expr(depth - 1, defined_functions) + " < " +
               Expr(depth - 1, defined_functions) + " ? " +
               Expr(depth - 1, defined_functions) + " : " +
               Expr(depth - 1, defined_functions) + ")";
      case 7:
        if (defined_functions > 0) {
          int callee = Rand(defined_functions);
          return "fn" + std::to_string(callee) + "(" + Expr(depth - 1, defined_functions) +
                 ", " + Expr(depth - 1, defined_functions) + ")";
        }
        return "(" + Expr(depth - 1, defined_functions) + " & " +
               Expr(depth - 1, defined_functions) + ")";
      default:
        // Written as 0-x: a literal unary minus next to a negative literal would
        // lex as '--'.
        return "(0 - " + Expr(depth - 1, defined_functions) + ")";
    }
  }

  void EmitStatements(int count, int depth, int defined_functions) {
    for (int s = 0; s < count; ++s) {
      switch (Rand(6)) {
        case 0:
          source_ += "  a = " + Expr(depth, defined_functions) + ";\n";
          break;
        case 1:
          source_ += "  b = b + " + Expr(depth, defined_functions) + ";\n";
          break;
        case 2:
          source_ += "  g_arr[" + Expr(1, defined_functions) + " & 7] = " +
                     Expr(depth, defined_functions) + ";\n";
          break;
        case 3:
          source_ += "  if (" + Expr(depth, defined_functions) + " > " +
                     Expr(1, defined_functions) + ") { a = a ^ " +
                     Expr(depth, defined_functions) + "; } else { b = b - " +
                     Expr(depth, defined_functions) + "; }\n";
          break;
        case 4:
          source_ += "  for (int k = 0; k < (" + Expr(1, defined_functions) +
                     " & 7); k++) { a = a + g_arr[k] + " + std::to_string(Rand(9)) + "; }\n";
          break;
        default:
          source_ += "  g_x = g_x + " + Expr(depth, defined_functions) + ";\n";
          break;
      }
    }
  }

  void EmitFunction(int index) {
    source_ += "static int fn" + std::to_string(index) + "(int a, int b) {\n";
    EmitStatements(2 + Rand(4), 2, index);
    source_ += "  return a * 7 + b;\n}\n";
  }

  std::mt19937 rng_;
  std::string source_;
};

class OptimizerEquivalenceTest : public testing::TestWithParam<int> {};

TEST_P(OptimizerEquivalenceTest, O0AndO2Agree) {
  ProgramGenerator generator(static_cast<unsigned>(GetParam()) * 2654435761u);
  std::string source = generator.Generate();

  TestProgram plain = BuildProgram(source, /*optimize=*/false);
  TestProgram optimized = BuildProgram(source, /*optimize=*/true);
  ASSERT_TRUE(plain.ok()) << plain.error << "\n" << source;
  ASSERT_TRUE(optimized.ok()) << optimized.error << "\n" << source;

  for (uint32_t input : {0u, 1u, 7u, 42u, 0xFFFFu, 0x80000000u}) {
    RunResult a = plain.machine->Call("entry", {input});
    RunResult b = optimized.machine->Call("entry", {input});
    ASSERT_TRUE(a.ok) << a.error << "\n" << source;
    ASSERT_TRUE(b.ok) << b.error << "\n" << source;
    EXPECT_EQ(a.value, b.value) << "input " << input << "\n" << source;
  }

  // Regression tripwire: the optimizer must not meaningfully grow the dynamic
  // instruction count (block-local value numbering may add a couple of percent on
  // pathological loop bodies; anything beyond that is a bug).
  plain.machine->ResetCounters();
  optimized.machine->ResetCounters();
  plain.machine->Call("entry", {42});
  optimized.machine->Call("entry", {42});
  EXPECT_LE(optimized.machine->insns(), plain.machine->insns() * 21 / 20 + 8)
      << "optimized build executes many more instructions\n"
      << source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerEquivalenceTest, testing::Range(1, 41));

// ---- image scope --------------------------------------------------------------
// The -O2 passes run after ld/link on the whole image: cross-unit inlining
// through resolved bindings, devirtualization, and global dead-function
// elimination from the image entry points. The properties below are the
// acceptance bar for them being semantics-preserving.

struct GeneratedKnit {
  std::string knit;
  SourceMap sources;
};

// A random unit chain: node i imports 1-2 Work bundles from earlier nodes; Top
// instantiates every node and exports the tail plus one mid node (so DCE has
// both live roots and — in the stubbed units — genuinely dead functions).
GeneratedKnit GenerateKnit(unsigned seed) {
  std::mt19937 rng(seed);
  auto rand = [&](int n) { return static_cast<int>(rng() % static_cast<unsigned>(n)); };

  GeneratedKnit out;
  out.knit = "bundletype Work = { work }\n";
  int nodes = 3 + rand(4);

  std::vector<std::vector<int>> inputs(static_cast<size_t>(nodes));
  for (int i = 1; i < nodes; ++i) {
    int count = 1 + rand(2);
    for (int k = 0; k < count; ++k) {
      inputs[static_cast<size_t>(i)].push_back(rand(i));
    }
  }

  for (int i = 0; i < nodes; ++i) {
    int arity = static_cast<int>(inputs[static_cast<size_t>(i)].size());
    std::string unit = "unit N" + std::to_string(i) + " = {\n  imports [";
    for (int k = 0; k < arity; ++k) {
      unit += std::string(k > 0 ? ", " : "") + "in" + std::to_string(k) + " : Work";
    }
    unit += "];\n  exports [ out : Work ];\n";
    if (arity > 0) {
      unit += "  depends { out needs (";
      for (int k = 0; k < arity; ++k) {
        unit += std::string(k > 0 ? " + " : "") + "in" + std::to_string(k);
      }
      unit += "); };\n";
    }
    unit += "  files { \"n" + std::to_string(i) + ".c\" };\n  rename {\n";
    for (int k = 0; k < arity; ++k) {
      unit += "    in" + std::to_string(k) + ".work to work_in" + std::to_string(k) + ";\n";
    }
    unit += "  };\n}\n";
    out.knit += unit;

    std::string source;
    for (int k = 0; k < arity; ++k) {
      source += "extern int work_in" + std::to_string(k) + "(int x);\n";
    }
    source += "static int g_state = " + std::to_string(rand(50)) + ";\n";
    // A helper the exported function may or may not call: when it doesn't, the
    // helper is inliner food per-TU and DCE food at image scope.
    source += "static int helper(int x) { return x * " + std::to_string(3 + rand(9)) +
              " + " + std::to_string(rand(100)) + "; }\n";
    source += "int work(int x) {\n  g_state = g_state * 5 + 3;\n  int acc = x + g_state;\n";
    if (rand(2) == 0) {
      source += "  acc = acc ^ helper(acc & 0xFF);\n";
    }
    for (int k = 0; k < arity; ++k) {
      switch (rand(3)) {
        case 0:
          source += "  acc = acc * 31 + work_in" + std::to_string(k) + "(acc & 0xFFFF);\n";
          break;
        case 1:
          source += "  if (acc & 1) acc = acc ^ work_in" + std::to_string(k) + "(x + " +
                    std::to_string(k) + ");\n";
          break;
        default:
          source += "  for (int i = 0; i < (acc & 3); i++) acc += work_in" +
                    std::to_string(k) + "(i);\n";
          break;
      }
    }
    source += "  return acc;\n}\n";
    out.sources["n" + std::to_string(i) + ".c"] = source;
  }

  out.knit += "unit Top = {\n  imports [];\n  exports [ out : Work, mid : Work ];\n  link {\n";
  for (int i = 0; i < nodes; ++i) {
    out.knit += "    [w" + std::to_string(i) + "] <- N" + std::to_string(i) + " <- [";
    const std::vector<int>& ins = inputs[static_cast<size_t>(i)];
    for (size_t k = 0; k < ins.size(); ++k) {
      out.knit += std::string(k > 0 ? ", " : "") + "w" + std::to_string(ins[k]);
    }
    out.knit += "];\n";
  }
  int mid = rand(nodes);
  out.knit += "    [mid] <- N" + std::to_string(mid) + " as midnode <- [";
  const std::vector<int>& mid_ins = inputs[static_cast<size_t>(mid)];
  for (size_t k = 0; k < mid_ins.size(); ++k) {
    out.knit += std::string(k > 0 ? ", " : "") + "w" + std::to_string(mid_ins[k]);
  }
  out.knit += "];\n";
  out.knit += "    [out] <- N" + std::to_string(nodes - 1) + " as tail <- [";
  const std::vector<int>& tail_ins = inputs[static_cast<size_t>(nodes - 1)];
  for (size_t k = 0; k < tail_ins.size(); ++k) {
    out.knit += std::string(k > 0 ? ", " : "") + "w" + std::to_string(tail_ins[k]);
  }
  out.knit += "];\n  };\n}\n";
  return out;
}

// Runs both exports over the input set and records every raw RunResult value —
// the comparison across opt levels is bit-identical, not hashed.
bool RunExports(const GeneratedKnit& config, const KnitcOptions& options,
                std::vector<uint32_t>* values, std::string* error) {
  Diagnostics diags;
  Result<KnitBuildResult> build = KnitBuild(config.knit, config.sources, "Top", options, diags);
  if (!build.ok()) {
    *error = diags.ToString() + "\n" + config.knit;
    return false;
  }
  Machine machine(build.value().image);
  RunResult init = machine.Call(build.value().init_function);
  if (!init.ok) {
    *error = init.error;
    return false;
  }
  for (uint32_t input : {0u, 3u, 17u, 100u}) {
    for (const char* port : {"out", "mid"}) {
      RunResult run = machine.Call(build.value().ExportedSymbol(port, "work"), {input});
      if (!run.ok) {
        *error = std::string(port) + ": " + run.error;
        return false;
      }
      values->push_back(run.value);
    }
  }
  return true;
}

class ImagePassPropertyTest : public testing::TestWithParam<int> {};

TEST_P(ImagePassPropertyTest, O0AndO2RunResultsBitIdentical) {
  GeneratedKnit config = GenerateKnit(static_cast<unsigned>(GetParam()) * 2246822519u + 3);

  KnitcOptions o0;
  o0.optimize = false;
  o0.opt_level = 0;
  KnitcOptions o2;
  o2.opt_level = 2;

  std::vector<uint32_t> plain;
  std::vector<uint32_t> optimized;
  std::string error;
  ASSERT_TRUE(RunExports(config, o0, &plain, &error)) << error;
  ASSERT_TRUE(RunExports(config, o2, &optimized, &error)) << error;
  ASSERT_EQ(plain.size(), optimized.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i], optimized[i]) << "result " << i << " diverged at -O2\n" << config.knit;
  }
}

TEST_P(ImagePassPropertyTest, DeadExportEliminationKeepsReachableSymbols) {
  GeneratedKnit config = GenerateKnit(static_cast<unsigned>(GetParam()) * 2246822519u + 3);

  KnitcOptions o2;
  o2.opt_level = 2;
  Diagnostics diags;
  Result<KnitBuildResult> build = KnitBuild(config.knit, config.sources, "Top", o2, diags);
  ASSERT_TRUE(build.ok()) << diags.ToString() << "\n" << config.knit;

  // Every top-level export and the init/fini entry points must survive image DCE
  // with a non-stubbed body.
  std::vector<std::string> roots = {build.value().init_function, build.value().fini_function};
  for (const char* port : {"out", "mid"}) {
    roots.push_back(build.value().ExportedSymbol(port, "work"));
  }
  for (const std::string& name : roots) {
    int id = build.value().image.FindFunction(name);
    ASSERT_GE(id, 0) << name << " eliminated from the image\n" << config.knit;
    EXPECT_FALSE(build.value().image.functions[static_cast<size_t>(id)].code.empty())
        << name << " stubbed by image DCE\n"
        << config.knit;
  }
}

TEST_P(ImagePassPropertyTest, OptimizedImageIdenticalAcrossJobs) {
  GeneratedKnit config = GenerateKnit(static_cast<unsigned>(GetParam()) * 2246822519u + 3);

  uint64_t baseline = 0;
  for (int jobs : {1, 2, 8}) {
    KnitcOptions options;
    options.opt_level = 2;
    options.jobs = jobs;
    Diagnostics diags;
    KnitPipeline pipeline(options);
    Result<LinkedImage> built = pipeline.Build(config.knit, config.sources, "Top", diags);
    ASSERT_TRUE(built.ok()) << diags.ToString() << "\n" << config.knit;
    uint64_t fingerprint = FingerprintImage(built.value().image);
    if (jobs == 1) {
      baseline = fingerprint;
    } else {
      EXPECT_EQ(baseline, fingerprint)
          << "-O2 image differs at --jobs=" << jobs << "\n"
          << config.knit;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ImagePassPropertyTest, testing::Range(1, 13));

// ---- profile-guided (-O2 --profile-use) ----------------------------------------
// The PGO passes re-rank inlining and re-place text from recorded measurements;
// none of that may change a single RunResult value, and a profile that does not
// match the build must be ignored (plain -O2), never half-applied.

// Records a profile for `config` the way `knitc run --profile` does: build at
// -O2, execute the same export/input matrix RunExports uses, snapshot.
std::shared_ptr<const LoadedProfile> RecordProfile(const GeneratedKnit& config,
                                                   std::string* error) {
  KnitcOptions o2;
  o2.opt_level = 2;
  Diagnostics diags;
  Result<KnitBuildResult> build = KnitBuild(config.knit, config.sources, "Top", o2, diags);
  if (!build.ok()) {
    *error = diags.ToString();
    return nullptr;
  }
  Machine machine(build.value().image);
  machine.EnableProfiling();
  if (!machine.Call(build.value().init_function).ok) {
    *error = "init failed";
    return nullptr;
  }
  machine.ResetProfile();
  for (uint32_t input : {0u, 3u, 17u, 100u}) {
    for (const char* port : {"out", "mid"}) {
      if (!machine.Call(build.value().ExportedSymbol(port, "work"), {input}).ok) {
        *error = "export run failed";
        return nullptr;
      }
    }
  }
  KnitPipeline pipeline(o2);
  Result<ParsedProgram> parsed = pipeline.Parse(config.knit, diags);
  Result<ElaboratedConfig> elaborated =
      parsed.ok() ? pipeline.Elaborate(parsed.value(), "Top", diags)
                  : Result<ElaboratedConfig>::Failure();
  if (!elaborated.ok()) {
    *error = diags.ToString();
    return nullptr;
  }
  auto loaded = std::make_shared<LoadedProfile>();
  loaded->meta = MakeProfileMeta(elaborated.value(), 2);
  loaded->profile = machine.Profile();
  return loaded;
}

TEST_P(ImagePassPropertyTest, PgoRunResultsBitIdenticalToPlainO2) {
  GeneratedKnit config = GenerateKnit(static_cast<unsigned>(GetParam()) * 2246822519u + 3);

  std::string error;
  std::shared_ptr<const LoadedProfile> profile = RecordProfile(config, &error);
  ASSERT_NE(profile, nullptr) << error << "\n" << config.knit;

  KnitcOptions o2;
  o2.opt_level = 2;
  KnitcOptions pgo = o2;
  pgo.profile = profile;

  std::vector<uint32_t> plain;
  std::vector<uint32_t> guided;
  ASSERT_TRUE(RunExports(config, o2, &plain, &error)) << error;
  ASSERT_TRUE(RunExports(config, pgo, &guided, &error)) << error;
  ASSERT_EQ(plain.size(), guided.size());
  for (size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(plain[i], guided[i]) << "result " << i << " diverged under PGO\n" << config.knit;
  }
}

TEST_P(ImagePassPropertyTest, MismatchedProfileWarnsAndBuildsPlainO2) {
  GeneratedKnit config = GenerateKnit(static_cast<unsigned>(GetParam()) * 2246822519u + 3);

  std::string error;
  std::shared_ptr<const LoadedProfile> recorded = RecordProfile(config, &error);
  ASSERT_NE(recorded, nullptr) << error << "\n" << config.knit;

  KnitcOptions o2;
  o2.opt_level = 2;
  Diagnostics plain_diags;
  KnitPipeline plain_pipeline(o2);
  Result<LinkedImage> plain =
      plain_pipeline.Build(config.knit, config.sources, "Top", plain_diags);
  ASSERT_TRUE(plain.ok()) << plain_diags.ToString();

  // A profile recorded for a different configuration (stale digest): warn,
  // ignore, and emit the EXACT image plain -O2 emits (never a half-guided one).
  auto wrong_config = std::make_shared<LoadedProfile>(*recorded);
  wrong_config->meta.config_digest ^= 1;
  KnitcOptions mismatched = o2;
  mismatched.profile = wrong_config;
  Diagnostics diags;
  KnitPipeline pipeline(mismatched);
  Result<LinkedImage> built = pipeline.Build(config.knit, config.sources, "Top", diags);
  ASSERT_TRUE(built.ok()) << diags.ToString();
  EXPECT_NE(diags.ToString().find("ignoring it"), std::string::npos) << diags.ToString();
  EXPECT_EQ(FingerprintImage(built.value().image), FingerprintImage(plain.value().image))
      << "mismatched profile changed the image\n"
      << config.knit;

  // Same configuration but recorded at a different -O level: same fallback.
  auto wrong_level = std::make_shared<LoadedProfile>(*recorded);
  wrong_level->meta.opt_level = 1;
  KnitcOptions leveled = o2;
  leveled.profile = wrong_level;
  Diagnostics level_diags;
  KnitPipeline level_pipeline(leveled);
  Result<LinkedImage> level_built =
      level_pipeline.Build(config.knit, config.sources, "Top", level_diags);
  ASSERT_TRUE(level_built.ok()) << level_diags.ToString();
  EXPECT_NE(level_diags.ToString().find("ignoring it"), std::string::npos);
  EXPECT_EQ(FingerprintImage(level_built.value().image),
            FingerprintImage(plain.value().image));
}

TEST_P(ImagePassPropertyTest, PgoImageIdenticalAcrossJobs) {
  GeneratedKnit config = GenerateKnit(static_cast<unsigned>(GetParam()) * 2246822519u + 3);

  std::string error;
  std::shared_ptr<const LoadedProfile> profile = RecordProfile(config, &error);
  ASSERT_NE(profile, nullptr) << error;

  uint64_t baseline = 0;
  for (int jobs : {1, 2, 8}) {
    KnitcOptions options;
    options.opt_level = 2;
    options.jobs = jobs;
    options.profile = profile;
    Diagnostics diags;
    KnitPipeline pipeline(options);
    Result<LinkedImage> built = pipeline.Build(config.knit, config.sources, "Top", diags);
    ASSERT_TRUE(built.ok()) << diags.ToString() << "\n" << config.knit;
    uint64_t fingerprint = FingerprintImage(built.value().image);
    if (jobs == 1) {
      baseline = fingerprint;
    } else {
      EXPECT_EQ(baseline, fingerprint)
          << "PGO image differs at --jobs=" << jobs << "\n"
          << config.knit;
    }
  }
}

}  // namespace
}  // namespace knit
