// Property test: the per-TU optimizer (inlining + LVN + EBB inheritance + dead-store
// elimination + peepholes) must never change program behaviour. We generate random
// deterministic MiniC programs — arithmetic, globals, arrays, branches, bounded
// loops, and calls into earlier functions (inliner food) — and compare O0 vs O2
// results over several inputs.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "tests/testutil.h"

namespace knit {
namespace {

class ProgramGenerator {
 public:
  explicit ProgramGenerator(unsigned seed) : rng_(seed) {}

  std::string Generate() {
    source_ = "static int g_arr[8];\nstatic int g_x = 3;\nstatic int g_y = 11;\n";
    int function_count = 2 + static_cast<int>(rng_() % 4);
    for (int i = 0; i < function_count; ++i) {
      EmitFunction(i);
    }
    // The entry point seeds state, calls every function, and mixes the results.
    source_ += "int entry(int seed) {\n";
    source_ += "  for (int i = 0; i < 8; i++) g_arr[i] = seed * (i + 3) + i;\n";
    source_ += "  g_x = seed | 5;\n  g_y = (seed >> 1) + 7;\n";
    source_ += "  int acc = seed;\n";
    for (int i = 0; i < function_count; ++i) {
      source_ += "  acc = acc * 31 + fn" + std::to_string(i) + "(acc, seed + " +
                 std::to_string(i) + ");\n";
    }
    source_ += "  for (int i = 0; i < 8; i++) acc = acc * 17 + g_arr[i];\n";
    source_ += "  return acc + g_x * 13 + g_y;\n}\n";
    return source_;
  }

 private:
  int Rand(int n) { return static_cast<int>(rng_() % static_cast<unsigned>(n)); }

  // An int-valued expression over the in-scope names. `depth` bounds recursion.
  std::string Expr(int depth, int defined_functions) {
    if (depth <= 0 || Rand(4) == 0) {
      switch (Rand(6)) {
        case 0:
          return std::to_string(Rand(200) - 100);
        case 1:
          return "a";
        case 2:
          return "b";
        case 3:
          return "g_x";
        case 4:
          return "g_y";
        default:
          return "g_arr[" + Expr(0, defined_functions) + " & 7]";
      }
    }
    switch (Rand(9)) {
      case 0:
        return "(" + Expr(depth - 1, defined_functions) + " + " +
               Expr(depth - 1, defined_functions) + ")";
      case 1:
        return "(" + Expr(depth - 1, defined_functions) + " - " +
               Expr(depth - 1, defined_functions) + ")";
      case 2:
        return "(" + Expr(depth - 1, defined_functions) + " * " +
               Expr(depth - 1, defined_functions) + ")";
      case 3:
        // Division guarded against zero and INT_MIN/-1 overflow.
        return "(" + Expr(depth - 1, defined_functions) + " / ((" +
               Expr(depth - 1, defined_functions) + " & 15) + 1))";
      case 4:
        return "(" + Expr(depth - 1, defined_functions) + " ^ " +
               Expr(depth - 1, defined_functions) + ")";
      case 5:
        return "(" + Expr(depth - 1, defined_functions) + " << (" +
               Expr(depth - 1, defined_functions) + " & 7))";
      case 6:
        return "(" + Expr(depth - 1, defined_functions) + " < " +
               Expr(depth - 1, defined_functions) + " ? " +
               Expr(depth - 1, defined_functions) + " : " +
               Expr(depth - 1, defined_functions) + ")";
      case 7:
        if (defined_functions > 0) {
          int callee = Rand(defined_functions);
          return "fn" + std::to_string(callee) + "(" + Expr(depth - 1, defined_functions) +
                 ", " + Expr(depth - 1, defined_functions) + ")";
        }
        return "(" + Expr(depth - 1, defined_functions) + " & " +
               Expr(depth - 1, defined_functions) + ")";
      default:
        // Written as 0-x: a literal unary minus next to a negative literal would
        // lex as '--'.
        return "(0 - " + Expr(depth - 1, defined_functions) + ")";
    }
  }

  void EmitStatements(int count, int depth, int defined_functions) {
    for (int s = 0; s < count; ++s) {
      switch (Rand(6)) {
        case 0:
          source_ += "  a = " + Expr(depth, defined_functions) + ";\n";
          break;
        case 1:
          source_ += "  b = b + " + Expr(depth, defined_functions) + ";\n";
          break;
        case 2:
          source_ += "  g_arr[" + Expr(1, defined_functions) + " & 7] = " +
                     Expr(depth, defined_functions) + ";\n";
          break;
        case 3:
          source_ += "  if (" + Expr(depth, defined_functions) + " > " +
                     Expr(1, defined_functions) + ") { a = a ^ " +
                     Expr(depth, defined_functions) + "; } else { b = b - " +
                     Expr(depth, defined_functions) + "; }\n";
          break;
        case 4:
          source_ += "  for (int k = 0; k < (" + Expr(1, defined_functions) +
                     " & 7); k++) { a = a + g_arr[k] + " + std::to_string(Rand(9)) + "; }\n";
          break;
        default:
          source_ += "  g_x = g_x + " + Expr(depth, defined_functions) + ";\n";
          break;
      }
    }
  }

  void EmitFunction(int index) {
    source_ += "static int fn" + std::to_string(index) + "(int a, int b) {\n";
    EmitStatements(2 + Rand(4), 2, index);
    source_ += "  return a * 7 + b;\n}\n";
  }

  std::mt19937 rng_;
  std::string source_;
};

class OptimizerEquivalenceTest : public testing::TestWithParam<int> {};

TEST_P(OptimizerEquivalenceTest, O0AndO2Agree) {
  ProgramGenerator generator(static_cast<unsigned>(GetParam()) * 2654435761u);
  std::string source = generator.Generate();

  TestProgram plain = BuildProgram(source, /*optimize=*/false);
  TestProgram optimized = BuildProgram(source, /*optimize=*/true);
  ASSERT_TRUE(plain.ok()) << plain.error << "\n" << source;
  ASSERT_TRUE(optimized.ok()) << optimized.error << "\n" << source;

  for (uint32_t input : {0u, 1u, 7u, 42u, 0xFFFFu, 0x80000000u}) {
    RunResult a = plain.machine->Call("entry", {input});
    RunResult b = optimized.machine->Call("entry", {input});
    ASSERT_TRUE(a.ok) << a.error << "\n" << source;
    ASSERT_TRUE(b.ok) << b.error << "\n" << source;
    EXPECT_EQ(a.value, b.value) << "input " << input << "\n" << source;
  }

  // Regression tripwire: the optimizer must not meaningfully grow the dynamic
  // instruction count (block-local value numbering may add a couple of percent on
  // pathological loop bodies; anything beyond that is a bug).
  plain.machine->ResetCounters();
  optimized.machine->ResetCounters();
  plain.machine->Call("entry", {42});
  optimized.machine->Call("entry", {42});
  EXPECT_LE(optimized.machine->insns(), plain.machine->insns() * 21 / 20 + 8)
      << "optimized build executes many more instructions\n"
      << source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerEquivalenceTest, testing::Range(1, 41));

}  // namespace
}  // namespace knit
