// Object-style Click emulation tests: every optimization combination must behave
// identically to Clack on the same trace (same counters, same transmitted bytes),
// and the Table-2 performance relationships must hold.
#include <gtest/gtest.h>

#include "src/clack/harness.h"
#include "src/clack/trace.h"
#include "src/click/click_gen.h"

namespace knit {
namespace {

std::map<std::string, std::string> ClickEntryNames() {
  return {
      {"in0", "click_in0"},         {"in1", "click_in1"},
      {"statsIn0", "click_stats_in0"}, {"statsIn1", "click_stats_in1"},
      {"statsIp", "click_stats_ip"},   {"statsOut", "click_stats_out"},
      {"statsDrop", "click_stats_drop"},
  };
}

RouterStats RunClick(const ClickOptim& optim, const std::vector<TracePacket>& trace) {
  Diagnostics diags;
  Result<std::unique_ptr<Image>> image = BuildClickRouter(optim, diags);
  EXPECT_TRUE(image.ok()) << diags.ToString();
  if (!image.ok()) {
    return RouterStats{};
  }
  Result<RouterProgram> program =
      RouterProgram::FromImage(std::move(image.value()), ClickEntryNames(), "dev_tx", diags);
  EXPECT_TRUE(program.ok()) << diags.ToString();
  if (!program.ok()) {
    return RouterStats{};
  }
  RunResult init = program.value().machine().Call("click_init");
  EXPECT_TRUE(init.ok) << init.error;
  Result<RouterStats> stats = program.value().RunTrace(trace, diags);
  EXPECT_TRUE(stats.ok()) << diags.ToString();
  return stats.ok() ? stats.value() : RouterStats{};
}

struct OptimCase {
  const char* name;
  ClickOptim optim;
};

class ClickOptimTest : public testing::TestWithParam<OptimCase> {};

TEST_P(ClickOptimTest, MatchesTraceExpectation) {
  TraceOptions trace_options;
  trace_options.count = 300;
  std::vector<TracePacket> trace = GenerateTrace(trace_options);
  TraceExpectation expect = ExpectationOf(trace);
  RouterStats stats = RunClick(GetParam().optim, trace);
  EXPECT_EQ(stats.in0, expect.in0);
  EXPECT_EQ(stats.in1, expect.in1);
  EXPECT_EQ(stats.ip, expect.ip);
  EXPECT_EQ(stats.out, expect.out);
  EXPECT_EQ(stats.drop, expect.drop);
  EXPECT_EQ(stats.tx_count, expect.tx);
}

INSTANTIATE_TEST_SUITE_P(
    AllOptimCombos, ClickOptimTest,
    testing::Values(OptimCase{"none", ClickOptim::None()},
                    OptimCase{"fastcls", ClickOptim{true, false, false}},
                    OptimCase{"devirt", ClickOptim{false, true, false}},
                    OptimCase{"xform", ClickOptim{false, false, true}},
                    OptimCase{"all", ClickOptim::All()}),
    [](const testing::TestParamInfo<OptimCase>& info) { return info.param.name; });

TEST(Click, TransmitsIdenticalBytesToClack) {
  TraceOptions trace_options;
  trace_options.count = 250;
  trace_options.seed = 77;
  std::vector<TracePacket> trace = GenerateTrace(trace_options);

  Diagnostics diags;
  KnitcOptions knit_options;
  Result<RouterProgram> clack = RouterProgram::FromClack("ClackRouter", knit_options, diags);
  ASSERT_TRUE(clack.ok()) << diags.ToString();
  Result<RouterStats> clack_stats = clack.value().RunTrace(trace, diags);
  ASSERT_TRUE(clack_stats.ok()) << diags.ToString();

  RouterStats unopt = RunClick(ClickOptim::None(), trace);
  RouterStats opt = RunClick(ClickOptim::All(), trace);
  EXPECT_EQ(unopt.tx_hash, clack_stats.value().tx_hash)
      << "object-based Click must forward identical bytes";
  EXPECT_EQ(opt.tx_hash, clack_stats.value().tx_hash)
      << "optimized Click (incl. incremental checksum xform) must forward identical bytes";
}

TEST(Click, OptimizationsImprovePerformance) {
  TraceOptions trace_options;
  trace_options.count = 400;
  std::vector<TracePacket> trace = GenerateTrace(trace_options);

  RouterStats unopt = RunClick(ClickOptim::None(), trace);
  RouterStats opt = RunClick(ClickOptim::All(), trace);
  EXPECT_LT(opt.cycles, unopt.cycles);
  // The paper: all three optimizations give a large improvement (54% on their
  // hardware); require a substantial one here.
  EXPECT_LT(opt.cycles, unopt.cycles * 4 / 5);
}

TEST(Click, UnoptimizedClickIsSlowerThanModularClack) {
  // Table 2's side note: base Click ran ~3% slower than base Clack — indirect
  // dispatch costs more than static component linking.
  TraceOptions trace_options;
  trace_options.count = 400;
  std::vector<TracePacket> trace = GenerateTrace(trace_options);

  Diagnostics diags;
  KnitcOptions knit_options;
  Result<RouterProgram> clack = RouterProgram::FromClack("ClackRouter", knit_options, diags);
  ASSERT_TRUE(clack.ok()) << diags.ToString();
  Result<RouterStats> clack_stats = clack.value().RunTrace(trace, diags);
  ASSERT_TRUE(clack_stats.ok()) << diags.ToString();

  RouterStats unopt = RunClick(ClickOptim::None(), trace);
  EXPECT_GT(unopt.cycles, clack_stats.value().cycles);
}

}  // namespace
}  // namespace knit
