// Flattener tests: scope-aware renaming, deduplication, conflict detection, and
// definition ordering.
#include <gtest/gtest.h>

#include "src/flatten/flatten.h"
#include "src/minic/cparser.h"
#include "src/minic/printer.h"
#include "src/minic/sema.h"

namespace knit {
namespace {

TranslationUnit ParseOrDie(TypeTable& types, const std::string& source,
                           const std::string& name = "in.c") {
  Diagnostics diags;
  Result<TranslationUnit> unit = ParseCString(source, name, types, diags);
  EXPECT_TRUE(unit.ok()) << diags.ToString();
  return unit.take();
}

TEST(FlattenRename, RenamesDeclarationsAndReferences) {
  TypeTable types;
  TranslationUnit unit = ParseOrDie(types, R"(
extern int next(int);
static int counter = 0;
int work(int x) { counter++; return next(x) + counter; }
)");
  RenameTranslationUnit(unit, {{"work", "inst__work"}, {"next", "other__work"}}, "inst_",
                        {"inst__work"});
  std::string printed = PrintTranslationUnit(unit);
  EXPECT_NE(printed.find("int inst__work(int x)"), std::string::npos) << printed;
  EXPECT_NE(printed.find("other__work(x)"), std::string::npos) << printed;
  EXPECT_NE(printed.find("inst_counter"), std::string::npos) << printed;
  EXPECT_EQ(printed.find(" work("), std::string::npos) << printed;
}

TEST(FlattenRename, LocalShadowingIsRespected) {
  TypeTable types;
  TranslationUnit unit = ParseOrDie(types, R"(
int value = 1;
int f(int value) { return value; }
int g(void) {
  int value = 5;
  return value;
}
int h(void) { return value; }
)");
  RenameTranslationUnit(unit, {{"value", "RENAMED_value"}}, "p_", {});
  std::string printed = PrintTranslationUnit(unit);
  // The global and its non-shadowed use renamed...
  EXPECT_NE(printed.find("int RENAMED_value = 1"), std::string::npos) << printed;
  EXPECT_NE(printed.find("return RENAMED_value;"), std::string::npos) << printed;
  // ...but the parameter and local uses untouched (the functions themselves get
  // the instance prefix and become static, as unit-local definitions do).
  EXPECT_NE(printed.find("p_f(int value)"), std::string::npos) << printed;
  EXPECT_NE(printed.find("int value = 5"), std::string::npos) << printed;
  EXPECT_NE(printed.find("return value;"), std::string::npos) << printed;
}

TEST(FlattenRename, InitializerSeesOuterScopeBeforeBinding) {
  TypeTable types;
  TranslationUnit unit = ParseOrDie(types, R"(
int value = 1;
int f(void) {
  int value = value + 1;
  return value;
}
)");
  RenameTranslationUnit(unit, {{"value", "G"}}, "p_", {});
  std::string printed = PrintTranslationUnit(unit);
  // C scoping would make the initializer self-referential, but our renamer binds
  // the name only after the initializer (documented MiniC behaviour).
  EXPECT_NE(printed.find("int value = G + 1;"), std::string::npos) << printed;
}

TEST(FlattenRename, IntrinsicsPassThrough) {
  TypeTable types;
  TranslationUnit unit = ParseOrDie(types, R"(
extern unsigned __sbrk(unsigned);
int f(void) { return (int)__sbrk(8); }
)");
  RenameTranslationUnit(unit, {}, "p_", {});
  std::string printed = PrintTranslationUnit(unit);
  EXPECT_NE(printed.find("__sbrk(8)"), std::string::npos) << printed;
  EXPECT_EQ(printed.find("p___sbrk"), std::string::npos) << printed;
}

FlattenInput MakeInput(TypeTable& types, const std::string& path, const std::string& source,
                       std::map<std::string, std::string> renames,
                       std::vector<std::string> keep_global) {
  FlattenInput input;
  input.instance_path = path;
  input.unit = ParseOrDie(types, source, path + ".c");
  input.renames = std::move(renames);
  input.keep_global = std::move(keep_global);
  return input;
}

TEST(FlattenMerge, DeduplicatesSharedTypesAndExterns) {
  TypeTable types;
  std::vector<FlattenInput> inputs;
  // `helper` is an import both instances wire to the same supplier symbol.
  inputs.push_back(MakeInput(types, "A", R"(
struct pkt { int len; };
extern void helper(void);
int a_fn(struct pkt *p) { return p->len; }
)",
                             {{"a_fn", "A__a_fn"}, {"helper", "helper"}}, {"A__a_fn"}));
  inputs.push_back(MakeInput(types, "B", R"(
struct pkt { int len; };
extern void helper(void);
int b_fn(struct pkt *p) { return p->len * 2; }
)",
                             {{"b_fn", "B__b_fn"}, {"helper", "helper"}}, {"B__b_fn"}));
  Diagnostics diags;
  Result<TranslationUnit> merged = FlattenUnits(std::move(inputs), FlattenOptions(), diags);
  ASSERT_TRUE(merged.ok()) << diags.ToString();
  int struct_defs = 0;
  int helper_decls = 0;
  for (const Decl& decl : merged.value().decls) {
    if (decl.kind == Decl::Kind::kStructDef && decl.name == "pkt") {
      ++struct_defs;
    }
    if (decl.kind == Decl::Kind::kFunction && decl.name == "helper") {
      ++helper_decls;
    }
  }
  EXPECT_EQ(struct_defs, 1);
  EXPECT_EQ(helper_decls, 1);
}

TEST(FlattenMerge, ConflictingDefinitionsAreReported) {
  TypeTable types;
  std::vector<FlattenInput> inputs;
  inputs.push_back(MakeInput(types, "A", "int shared(void) { return 1; }\n",
                             {{"shared", "CLASH"}}, {"CLASH"}));
  inputs.push_back(MakeInput(types, "B", "int shared(void) { return 2; }\n",
                             {{"shared", "CLASH"}}, {"CLASH"}));
  Diagnostics diags;
  EXPECT_FALSE(FlattenUnits(std::move(inputs), FlattenOptions(), diags).ok());
  EXPECT_NE(diags.FirstError().find("defined by both"), std::string::npos);
}

TEST(FlattenMerge, DefinitionsAreCalleeFirst) {
  TypeTable types;
  std::vector<FlattenInput> inputs;
  // caller (in instance A) calls callee (in instance B); input order is
  // caller-first, the merge must re-order callee-first.
  inputs.push_back(MakeInput(types, "A", R"(
extern int callee(int);
int caller(int x) { return callee(x) + 1; }
)",
                             {{"caller", "A__caller"}, {"callee", "B__callee"}},
                             {"A__caller"}));
  inputs.push_back(MakeInput(types, "B", "int callee(int x) { return x * 2; }\n",
                             {{"callee", "B__callee"}}, {"B__callee"}));
  Diagnostics diags;
  Result<TranslationUnit> merged = FlattenUnits(std::move(inputs), FlattenOptions(), diags);
  ASSERT_TRUE(merged.ok()) << diags.ToString();
  int callee_at = -1;
  int caller_at = -1;
  int index = 0;
  for (const Decl& decl : merged.value().decls) {
    if (decl.kind == Decl::Kind::kFunction && decl.is_definition) {
      if (decl.name == "B__callee") {
        callee_at = index;
      }
      if (decl.name == "A__caller") {
        caller_at = index;
      }
    }
    ++index;
  }
  ASSERT_GE(callee_at, 0);
  ASSERT_GE(caller_at, 0);
  EXPECT_LT(callee_at, caller_at);

  // The merged TU must sema-check as a whole.
  Result<SemaInfo> info = AnalyzeTranslationUnit(merged.value(), types, diags);
  EXPECT_TRUE(info.ok()) << diags.ToString();
}

TEST(FlattenMerge, CallersFirstReversesOrder) {
  TypeTable types;
  std::vector<FlattenInput> inputs;
  inputs.push_back(MakeInput(types, "A", R"(
extern int callee(int);
int caller(int x) { return callee(x) + 1; }
)",
                             {{"caller", "A__caller"}, {"callee", "B__callee"}},
                             {"A__caller"}));
  inputs.push_back(MakeInput(types, "B", "int callee(int x) { return x * 2; }\n",
                             {{"callee", "B__callee"}}, {"B__callee"}));
  Diagnostics diags;
  FlattenOptions options;
  options.callers_first = true;
  Result<TranslationUnit> merged = FlattenUnits(std::move(inputs), options, diags);
  ASSERT_TRUE(merged.ok()) << diags.ToString();
  int callee_at = -1;
  int caller_at = -1;
  int index = 0;
  for (const Decl& decl : merged.value().decls) {
    if (decl.kind == Decl::Kind::kFunction && decl.is_definition) {
      if (decl.name == "B__callee") {
        callee_at = index;
      }
      if (decl.name == "A__caller") {
        caller_at = index;
      }
    }
    ++index;
  }
  EXPECT_GT(callee_at, caller_at);
}

TEST(FlattenMerge, NonKeptDefinitionsBecomeStatic) {
  TypeTable types;
  std::vector<FlattenInput> inputs;
  inputs.push_back(MakeInput(types, "A", R"(
int internal(void) { return 3; }
int api(void) { return internal(); }
)",
                             {{"api", "A__api"}, {"internal", "A__internal"}}, {"A__api"}));
  Diagnostics diags;
  Result<TranslationUnit> merged = FlattenUnits(std::move(inputs), FlattenOptions(), diags);
  ASSERT_TRUE(merged.ok()) << diags.ToString();
  for (const Decl& decl : merged.value().decls) {
    if (decl.kind == Decl::Kind::kFunction && decl.is_definition) {
      if (decl.name == "A__internal") {
        EXPECT_TRUE(decl.is_static);
      }
      if (decl.name == "A__api") {
        EXPECT_FALSE(decl.is_static);
      }
    }
  }
}

}  // namespace
}  // namespace knit
