// Digraph algorithm tests, including property sweeps over random graphs.
#include <gtest/gtest.h>

#include <random>

#include "src/graph/digraph.h"

namespace knit {
namespace {

TEST(Digraph, TopologicalSortLinearChain) {
  Digraph graph(4);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  graph.AddEdge(2, 3);
  auto order = graph.TopologicalSort();
  ASSERT_TRUE(order.has_value());
  EXPECT_EQ(*order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Digraph, TopologicalSortDetectsCycle) {
  Digraph graph(3);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  graph.AddEdge(2, 0);
  EXPECT_FALSE(graph.TopologicalSort().has_value());
}

TEST(Digraph, TopologicalSortIsDeterministic) {
  Digraph graph(5);
  graph.AddEdge(4, 0);
  auto a = graph.TopologicalSort();
  auto b = graph.TopologicalSort();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, *b);
  // Kahn with a min-heap: smallest READY id first (node 0 waits on the 4->0 edge).
  EXPECT_EQ((*a)[0], 1);
}

TEST(Digraph, SelfLoopIsCycle) {
  Digraph graph(2);
  graph.AddEdge(1, 1);
  EXPECT_FALSE(graph.TopologicalSort().has_value());
  std::vector<int> cycle = graph.FindCycle();
  ASSERT_EQ(cycle.size(), 1u);
  EXPECT_EQ(cycle[0], 1);
}

TEST(Digraph, FindCycleReturnsClosedPath) {
  Digraph graph(6);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  graph.AddEdge(2, 3);
  graph.AddEdge(3, 1);  // cycle 1 -> 2 -> 3 -> 1
  graph.AddEdge(3, 4);
  std::vector<int> cycle = graph.FindCycle();
  ASSERT_GE(cycle.size(), 3u);
  for (size_t i = 0; i < cycle.size(); ++i) {
    EXPECT_TRUE(graph.HasEdge(cycle[i], cycle[(i + 1) % cycle.size()]))
        << "edge " << cycle[i] << "->" << cycle[(i + 1) % cycle.size()];
  }
}

TEST(Digraph, SccComponentsAreCalleeFirst) {
  // 0 -> 1 -> 2, 2 -> 1 (SCC {1,2}), 0 alone: Tarjan emits callees first.
  Digraph graph(3);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  graph.AddEdge(2, 1);
  auto sccs = graph.StronglyConnectedComponents();
  ASSERT_EQ(sccs.size(), 2u);
  EXPECT_EQ(sccs[0], (std::vector<int>{1, 2}));
  EXPECT_EQ(sccs[1], (std::vector<int>{0}));
}

TEST(Digraph, Reachability) {
  Digraph graph(5);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  graph.AddEdge(3, 4);
  std::vector<bool> reachable = graph.ReachableFrom(0);
  EXPECT_TRUE(reachable[0]);
  EXPECT_TRUE(reachable[1]);
  EXPECT_TRUE(reachable[2]);
  EXPECT_FALSE(reachable[3]);
  EXPECT_FALSE(reachable[4]);
}

TEST(Digraph, ReversedSwapsEdges) {
  Digraph graph(3);
  graph.AddEdge(0, 2);
  Digraph reversed = graph.Reversed();
  EXPECT_TRUE(reversed.HasEdge(2, 0));
  EXPECT_FALSE(reversed.HasEdge(0, 2));
}

// Property: a random DAG (edges only low -> high) always sorts, and the order
// respects every edge; adding a back edge always breaks it.
class RandomDagTest : public testing::TestWithParam<int> {};

TEST_P(RandomDagTest, TopologicalSortRespectsEdges) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  int n = 2 + static_cast<int>(rng() % 40);
  Digraph graph(static_cast<size_t>(n));
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < n * 2; ++i) {
    int a = static_cast<int>(rng() % static_cast<unsigned>(n));
    int b = static_cast<int>(rng() % static_cast<unsigned>(n));
    if (a == b) {
      continue;
    }
    if (a > b) {
      std::swap(a, b);
    }
    graph.AddEdge(a, b);
    edges.emplace_back(a, b);
  }
  auto order = graph.TopologicalSort();
  ASSERT_TRUE(order.has_value());
  std::vector<int> position(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    position[static_cast<size_t>((*order)[static_cast<size_t>(i)])] = i;
  }
  for (auto [a, b] : edges) {
    EXPECT_LT(position[static_cast<size_t>(a)], position[static_cast<size_t>(b)]);
  }
  // SCC count == node count for a DAG.
  EXPECT_EQ(graph.StronglyConnectedComponents().size(), static_cast<size_t>(n));
  EXPECT_TRUE(graph.FindCycle().empty());

  // Close a cycle and require detection.
  if (!edges.empty()) {
    auto [a, b] = edges[rng() % edges.size()];
    graph.AddEdge(b, a);
    EXPECT_FALSE(graph.TopologicalSort().has_value());
    EXPECT_FALSE(graph.FindCycle().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagTest, testing::Range(1, 25));

}  // namespace
}  // namespace knit
