// Live reconfiguration (DESIGN.md §11): hot-swap a component instance of a
// RUNNING machine through its binding slots, with exact rollback on every
// injected swap-path failure.
//
// Two layers of coverage:
//   - SwapKit: a two-component configuration (Caller -> Worker) with an
//     initializer/finalizer pair, driving the full swap protocol — behaviour
//     change, state preservation, old-generation finalization, every
//     FaultPlan::swap_points injection, repeated-failure idempotency, and
//     deferral while a frame is live inside the target.
//   - Clack scenario: hot-swap EVERY element of the 24-instance modular router
//     mid-trace, at -O1 and -O2, and require byte-identical transmissions
//     (same tx hash, same tx count) as the no-swap run — zero dropped packets.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/clack/corpus.h"
#include "src/clack/harness.h"
#include "src/clack/trace.h"
#include "src/driver/knitc.h"
#include "src/reconfig/reconfig.h"
#include "src/support/mangle.h"
#include "src/vm/machine.h"

namespace knit {
namespace {

// ---------------------------------------------------------------------------
// SwapKit: Top = Caller -> Worker, environment supplies the `ev` event log.
// Worker is built swappable; Caller keeps cross-swap state (its call counter).
// ---------------------------------------------------------------------------

const char kSwapKnit[] =
    "bundletype Event = { ev }\n"
    "bundletype Val = { get }\n"
    "bundletype Api = { call_get, caller_count }\n"
    "unit Worker = {\n"
    "  imports [ e : Event ];\n"
    "  exports [ o : Val ];\n"
    "  initializer w_init for o;\n"
    "  finalizer w_fini for o;\n"
    "  depends { w_init needs e; w_fini needs e; o needs e; };\n"
    "  files { \"worker.c\" };\n"
    "}\n"
    "unit Caller = {\n"
    "  imports [ w : Val ];\n"
    "  exports [ a : Api ];\n"
    "  depends { a needs w; };\n"
    "  files { \"caller.c\" };\n"
    "}\n"
    "unit Top = {\n"
    "  imports [ e : Event ];\n"
    "  exports [ a : Api, o : Val ];\n"
    "  link {\n"
    "    [o] <- Worker <- [e];\n"
    "    [a] <- Caller <- [o];\n"
    "  };\n"
    "}\n";

const char kCallerSource[] =
    "extern int get(void);\n"
    "static unsigned g_count = 0;\n"
    "int call_get(void) { g_count++; return get(); }\n"
    "unsigned caller_count(void) { return g_count; }\n";

// Generation 1: get() == 1; init logs 1, fini logs 101.
const char kWorkerV1[] =
    "extern void ev(int code);\n"
    "int get(void) { return 1; }\n"
    "int w_init(void) { ev(1); return 0; }\n"
    "void w_fini(void) { ev(101); }\n";

// Generation 2: get() == 2; init logs 2, fini logs 102.
const char kWorkerV2[] =
    "extern void ev(int code);\n"
    "int get(void) { return 2; }\n"
    "int w_init(void) { ev(2); return 0; }\n"
    "void w_fini(void) { ev(102); }\n";

// Like V1, but get() reports to the event log — so the host observes the
// machine while a Worker frame is live (the deferral test hooks this).
const char kWorkerNoisy[] =
    "extern void ev(int code);\n"
    "int get(void) { ev(5); return 1; }\n"
    "int w_init(void) { ev(1); return 0; }\n"
    "void w_fini(void) { ev(101); }\n";

struct SwapKit {
  std::unique_ptr<KnitBuildResult> build;
  std::unique_ptr<Machine> machine;
  std::unique_ptr<ReconfigEngine> engine;
  std::vector<int> events;
  std::function<void(int)> on_event;  // extra host hook inside the ev native
  std::string error;

  bool ok() const { return engine != nullptr; }

  uint32_t Call(const char* port, const char* member) {
    RunResult result = machine->Call(build->ExportedSymbol(port, member));
    EXPECT_TRUE(result.ok) << port << "." << member << ": " << result.error;
    return result.value;
  }

  uint32_t WorkerStatus() {
    int instance = build->config.FindInstance("Top/Worker");
    EXPECT_GE(instance, 0);
    uint32_t base = build->image.data_symbols.at(build->status_symbol);
    return machine->ReadWord(base + static_cast<uint32_t>(instance) * 4);
  }

  SwapReport Swap(const std::string& source, const std::string& name) {
    SwapSpec spec;
    spec.instance = "Top/Worker";
    spec.source = source;
    spec.source_name = name;
    return engine->Request(spec);
  }
};

std::unique_ptr<SwapKit> BuildSwapKit(const std::string& worker_source = kWorkerV1,
                                      bool swappable = true) {
  auto kit = std::make_unique<SwapKit>();
  SourceMap sources;
  sources["worker.c"] = worker_source;
  sources["caller.c"] = kCallerSource;
  KnitcOptions options;
  if (swappable) {
    options.swappable = {"Top/Worker"};
  }
  Diagnostics diags;
  Result<KnitBuildResult> build = KnitBuild(kSwapKnit, sources, "Top", options, diags);
  if (!build.ok()) {
    kit->error = diags.ToString();
    return kit;
  }
  kit->build = std::make_unique<KnitBuildResult>(std::move(build.value()));
  kit->machine = std::make_unique<Machine>(kit->build->image);
  SwapKit* raw = kit.get();
  kit->machine->BindNative(EnvSymbol("e", "ev"),
                           [raw](Machine&, const std::vector<uint32_t>& args) {
                             int code = static_cast<int>(args[0]);
                             raw->events.push_back(code);
                             if (raw->on_event) {
                               raw->on_event(code);
                             }
                             return 0u;
                           });
  RunResult init = kit->machine->Call(kit->build->init_function);
  if (!init.ok) {
    kit->error = "knit__init failed: " + init.error;
    return kit;
  }
  kit->engine = std::make_unique<ReconfigEngine>(*kit->build, *kit->machine, sources);
  return kit;
}

TEST(Reconfig, SwappableBuildRoutesCrossComponentCallsThroughSlots) {
  auto kit = BuildSwapKit();
  ASSERT_TRUE(kit->ok()) << kit->error;
  // Worker's export got a binding slot; the caller reaches it through it.
  bool worker_slot = false;
  for (const BindingSlot& slot : kit->build->image.bindings) {
    if (slot.component == "Top/Worker") {
      worker_slot = true;
      EXPECT_GE(slot.target, 0) << slot.symbol << " must be bound after linking";
    }
  }
  EXPECT_TRUE(worker_slot);
  EXPECT_EQ(kit->Call("a", "call_get"), 1u);
}

TEST(Reconfig, HotSwapChangesBehaviorKeepsNeighborStateAndFinalizesOldGeneration) {
  auto kit = BuildSwapKit();
  ASSERT_TRUE(kit->ok()) << kit->error;
  EXPECT_EQ(kit->events, std::vector<int>({1}));  // v1 initialized at startup

  EXPECT_EQ(kit->Call("a", "call_get"), 1u);
  EXPECT_EQ(kit->Call("a", "call_get"), 1u);
  EXPECT_EQ(kit->Call("a", "caller_count"), 2u);

  kit->events.clear();
  SwapReport report = kit->Swap(kWorkerV2, "worker_v2.c");
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_FALSE(report.deferred);
  EXPECT_EQ(report.version, 1);
  EXPECT_GT(report.new_functions, 0);
  EXPECT_GT(report.rebound_slots, 0);
  EXPECT_GT(report.pause_cycles, 0);
  // The new generation initializes BEFORE the old one is finalized: the swap
  // only commits once the replacement is known-good.
  EXPECT_EQ(kit->events, std::vector<int>({2, 101}));

  // Behaviour switched at the binding slot; the caller's own state survived.
  EXPECT_EQ(kit->Call("a", "call_get"), 2u);
  EXPECT_EQ(kit->Call("a", "caller_count"), 3u);
  // The unversioned export symbol now resolves to the new generation too.
  EXPECT_EQ(kit->Call("o", "get"), 2u);
  EXPECT_EQ(kit->WorkerStatus(), 1u);
}

TEST(Reconfig, SwapBackRestoresOriginalBehavior) {
  auto kit = BuildSwapKit();
  ASSERT_TRUE(kit->ok()) << kit->error;
  ASSERT_TRUE(kit->Swap(kWorkerV2, "worker_v2.c").ok);
  EXPECT_EQ(kit->Call("a", "call_get"), 2u);

  kit->events.clear();
  SwapReport back = kit->Swap(kWorkerV1, "worker.c");
  ASSERT_TRUE(back.ok) << back.error;
  EXPECT_EQ(back.version, 2);
  // v1 (generation 3) initializes, then generation 2's finalizer runs.
  EXPECT_EQ(kit->events, std::vector<int>({1, 102}));
  EXPECT_EQ(kit->Call("a", "call_get"), 1u);
  EXPECT_EQ(kit->Call("o", "get"), 1u);
}

TEST(Reconfig, UnknownAndUnswappableInstancesFailCleanly) {
  auto kit = BuildSwapKit();
  ASSERT_TRUE(kit->ok()) << kit->error;
  SwapSpec spec;
  spec.instance = "Top/Nope";
  spec.source = kWorkerV2;
  SwapReport unknown = kit->engine->Request(spec);
  EXPECT_FALSE(unknown.ok);
  EXPECT_NE(unknown.error.find("unknown instance"), std::string::npos) << unknown.error;

  // Caller exists but was not built swappable: no binding slots to retarget.
  spec.instance = "Top/Caller";
  spec.source = kCallerSource;
  SwapReport unswappable = kit->engine->Request(spec);
  EXPECT_FALSE(unswappable.ok);
  EXPECT_NE(unswappable.error.find("not built swappable"), std::string::npos)
      << unswappable.error;

  // A plain (non---swappable) build rejects even the Worker.
  auto plain = BuildSwapKit(kWorkerV1, /*swappable=*/false);
  ASSERT_TRUE(plain->ok()) << plain->error;
  SwapReport rejected = plain->Swap(kWorkerV2, "worker_v2.c");
  EXPECT_FALSE(rejected.ok);
  EXPECT_NE(rejected.error.find("not built swappable"), std::string::npos)
      << rejected.error;
}

TEST(Reconfig, ReplacementMustDefineTheFullExportContract) {
  auto kit = BuildSwapKit();
  ASSERT_TRUE(kit->ok()) << kit->error;
  // Missing w_fini: rejected at compile/pre-validation, nothing rebound.
  SwapReport report = kit->Swap(
      "extern void ev(int code);\n"
      "int get(void) { return 9; }\n"
      "int w_init(void) { return 0; }\n",
      "worker_broken.c");
  EXPECT_FALSE(report.ok) << "incomplete replacement must be rejected";
  EXPECT_EQ(kit->Call("a", "call_get"), 1u) << "old generation must keep serving";
}

TEST(Reconfig, ReplacementMustKeepTheExportSignatures) {
  auto kit = BuildSwapKit();
  ASSERT_TRUE(kit->ok()) << kit->error;
  // get() drops its return value: every caller compiled against the old
  // signature would underflow its evaluation stack after the swap.
  SwapReport report = kit->Swap(
      "extern void ev(int code);\n"
      "void get(void) { }\n"
      "int w_init(void) { return 0; }\n"
      "void w_fini(void) { }\n",
      "worker_sig.c");
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("signature"), std::string::npos) << report.error;
  EXPECT_EQ(kit->Call("a", "call_get"), 1u) << "old generation must keep serving";
}

// The tentpole robustness property: EVERY swap-path injection point fails the
// swap, and after every failure the old instance still serves, neighbour state
// is intact, the status array is untouched, and a retry (fault cleared)
// succeeds.
TEST(Reconfig, EveryInjectionPointRollsBackToTheOldInstance) {
  const struct {
    const char* point;
    const char* expect_error;
  } kPoints[] = {
      {"swap-link", "swap-link"},
      {"swap-init", "swap-init"},
      {"swap-init-trap", "trapped"},
      {"swap-quiesce", "swap-quiesce"},
  };
  for (const auto& injection : kPoints) {
    SCOPED_TRACE(injection.point);
    auto kit = BuildSwapKit();
    ASSERT_TRUE(kit->ok()) << kit->error;
    EXPECT_EQ(kit->Call("a", "call_get"), 1u);

    FaultPlan plan;
    plan.swap_points.push_back(injection.point);
    kit->machine->set_fault_plan(plan);

    size_t functions_before = kit->build->image.functions.size();
    std::vector<BindingSlot> slots_before = kit->build->image.bindings;
    kit->events.clear();

    SwapReport report = kit->Swap(kWorkerV2, "worker_v2.c");
    EXPECT_FALSE(report.ok);
    EXPECT_FALSE(report.deferred);
    EXPECT_NE(report.error.find(injection.expect_error), std::string::npos)
        << report.error;

    // Exact rollback: slots untouched, old generation serving, neighbour state
    // and the instance status array undisturbed.
    ASSERT_EQ(kit->build->image.bindings.size(), slots_before.size());
    for (size_t s = 0; s < slots_before.size(); ++s) {
      EXPECT_EQ(kit->build->image.bindings[s].target, slots_before[s].target)
          << "slot " << kit->build->image.bindings[s].symbol;
    }
    EXPECT_EQ(kit->Call("a", "call_get"), 1u);
    EXPECT_EQ(kit->Call("o", "get"), 1u);
    EXPECT_EQ(kit->Call("a", "caller_count"), 2u);
    EXPECT_EQ(kit->WorkerStatus(), 1u);
    // The old finalizer must NOT have run on a failed swap.
    for (int event : kit->events) {
      EXPECT_NE(event, 101) << "old generation finalized by a FAILED swap";
    }
    // swap-link fails before compilation: no text appended at all.
    if (std::string(injection.point) == "swap-link") {
      EXPECT_EQ(kit->build->image.functions.size(), functions_before);
    }

    // Retry with the fault cleared: the swap goes through.
    kit->machine->ClearFaultPlan();
    SwapReport retry = kit->Swap(kWorkerV2, "worker_v2.c");
    ASSERT_TRUE(retry.ok) << retry.error;
    EXPECT_EQ(kit->Call("a", "call_get"), 2u);
  }
}

// Satellite: rollback idempotency. N consecutive injected init failures leave
// the status array and the machine's observable behaviour IDENTICAL each time
// (no double finalization, no symbol collisions between failed generations),
// and a clean swap afterwards still succeeds.
TEST(Reconfig, RepeatedInitFailuresAreIdempotent) {
  for (const char* point : {"swap-init", "swap-init-trap"}) {
    SCOPED_TRACE(point);
    auto kit = BuildSwapKit();
    ASSERT_TRUE(kit->ok()) << kit->error;

    FaultPlan plan;
    plan.swap_points.push_back(point);
    kit->machine->set_fault_plan(plan);

    std::vector<BindingSlot> slots_before = kit->build->image.bindings;
    constexpr int kAttempts = 3;
    for (int attempt = 1; attempt <= kAttempts; ++attempt) {
      SCOPED_TRACE("attempt " + std::to_string(attempt));
      kit->events.clear();
      SwapReport report = kit->Swap(kWorkerV2, "worker_v2.c");
      EXPECT_FALSE(report.ok);
      EXPECT_EQ(report.version, attempt) << "each attempt gets a fresh generation";
      EXPECT_EQ(kit->WorkerStatus(), 1u);
      ASSERT_EQ(kit->build->image.bindings.size(), slots_before.size());
      for (size_t s = 0; s < slots_before.size(); ++s) {
        EXPECT_EQ(kit->build->image.bindings[s].target, slots_before[s].target);
      }
      for (int event : kit->events) {
        EXPECT_NE(event, 101) << "failed attempt " << attempt << " ran the old finalizer";
        EXPECT_NE(event, 102) << "failed attempt " << attempt << " ran the new finalizer";
      }
      EXPECT_EQ(kit->Call("a", "call_get"), 1u);
    }

    kit->machine->ClearFaultPlan();
    kit->events.clear();
    SwapReport clean = kit->Swap(kWorkerV2, "worker_v2.c");
    ASSERT_TRUE(clean.ok) << clean.error;
    EXPECT_EQ(clean.version, kAttempts + 1);
    EXPECT_EQ(kit->events, std::vector<int>({2, 101}));
    EXPECT_EQ(kit->Call("a", "call_get"), 2u);
  }
}

// A request made while a frame is live INSIDE the target must defer — never
// tear a call mid-flight — and commit at the next Pump() once quiescent.
TEST(Reconfig, RequestDefersWhileTargetFrameIsLive) {
  auto kit = BuildSwapKit(kWorkerNoisy);
  ASSERT_TRUE(kit->ok()) << kit->error;

  SwapReport mid_flight;
  bool requested = false;
  kit->on_event = [&](int code) {
    if (code != 5 || requested) {
      return;  // only hook get()'s event, once
    }
    requested = true;
    // We are inside Worker::get right now: the machine must NOT be quiescent
    // for Worker (but is for Caller's neighbours' perspective to stay live).
    EXPECT_FALSE(kit->machine->ComponentQuiescent("Top/Worker"));
    mid_flight = kit->Swap(kWorkerV2, "worker_v2.c");
  };

  EXPECT_EQ(kit->Call("a", "call_get"), 1u) << "in-flight call completes on the OLD code";
  ASSERT_TRUE(requested);
  EXPECT_TRUE(mid_flight.deferred);
  EXPECT_FALSE(mid_flight.ok);
  EXPECT_TRUE(kit->engine->HasPending());

  // Back at a quiescent point: Pump retries and commits.
  EXPECT_EQ(kit->engine->Pump(), 1);
  EXPECT_FALSE(kit->engine->HasPending());
  const SwapReport& committed = kit->engine->last_report();
  ASSERT_TRUE(committed.ok) << committed.error;
  EXPECT_EQ(committed.deferred_packets, 1);
  EXPECT_EQ(kit->Call("a", "call_get"), 2u);
}

// ---------------------------------------------------------------------------
// Clack scenario: swap EVERY element of the modular router under traffic.
// ---------------------------------------------------------------------------

TEST(ReconfigClack, SwappableBuildForwardsIdenticallyToPlainBuild) {
  TraceOptions trace_options;
  trace_options.count = 200;
  std::vector<TracePacket> trace = GenerateTrace(trace_options);
  TraceExpectation expect = ExpectationOf(trace);

  Diagnostics diags;
  KnitcOptions plain_options;
  plain_options.opt_level = 2;
  KnitPipeline plain_pipeline(plain_options);
  Result<RouterProgram> plain =
      RouterProgram::FromClack(plain_pipeline, "ClackRouter", diags);
  ASSERT_TRUE(plain.ok()) << diags.ToString();
  Result<RouterStats> plain_stats = plain.value().RunTrace(trace, diags);
  ASSERT_TRUE(plain_stats.ok()) << diags.ToString();

  KnitcOptions swappable_options = plain_options;
  swappable_options.swappable = {"*"};
  KnitPipeline swappable_pipeline(swappable_options);
  Result<RouterProgram> swappable =
      RouterProgram::FromClack(swappable_pipeline, "ClackRouter", diags);
  ASSERT_TRUE(swappable.ok()) << diags.ToString();
  EXPECT_FALSE(swappable.value().build()->image.bindings.empty())
      << "--swappable=* must create binding slots";
  Result<RouterStats> swappable_stats = swappable.value().RunTrace(trace, diags);
  ASSERT_TRUE(swappable_stats.ok()) << diags.ToString();

  // Binding-slot indirection is semantically invisible.
  EXPECT_EQ(swappable_stats.value().tx_hash, plain_stats.value().tx_hash);
  EXPECT_EQ(swappable_stats.value().tx_count, expect.tx);
  EXPECT_EQ(swappable_stats.value().out, expect.out);
  EXPECT_EQ(swappable_stats.value().drop, expect.drop);
}

TEST(ReconfigClack, SwapEveryElementUnderTrafficWithZeroDroppedPackets) {
  for (int opt_level : {1, 2}) {
    SCOPED_TRACE("-O" + std::to_string(opt_level));
    TraceOptions trace_options;
    trace_options.count = 240;
    std::vector<TracePacket> trace = GenerateTrace(trace_options);
    TraceExpectation expect = ExpectationOf(trace);

    KnitcOptions options;
    options.opt_level = opt_level;
    options.swappable = {"*"};
    Diagnostics diags;
    // One pipeline for both builds: the second is pure artifact-cache hits.
    KnitPipeline pipeline(options);

    // The no-swap reference run of the SAME build configuration.
    Result<RouterProgram> baseline = RouterProgram::FromClack(pipeline, "ClackRouter", diags);
    ASSERT_TRUE(baseline.ok()) << diags.ToString();
    Result<RouterStats> base = baseline.value().RunTrace(trace, diags);
    ASSERT_TRUE(base.ok()) << diags.ToString();
    ASSERT_EQ(base.value().tx_count, expect.tx);

    Result<RouterProgram> built = RouterProgram::FromClack(pipeline, "ClackRouter", diags);
    ASSERT_TRUE(built.ok()) << diags.ToString();
    RouterProgram& program = built.value();
    ReconfigEngine engine(*program.mutable_build(), program.machine(), ClackSources());

    // The swap run drives the program's RouterSession directly — the scenario
    // exercises the session-style lifecycle (feed range -> mid-stream snapshot
    // -> close) under live reconfiguration, not just the RunTrace wrapper.
    RouterSession& session = program.session();

    // Hot-swap every instance with a freshly compiled copy of its own source,
    // one instance every 8 packets, while the trace keeps flowing.
    const auto& instances = program.build()->config.instances;
    ASSERT_GT(instances.size(), 20u) << "ClackRouter should be fully modular";
    ASSERT_LT(4 + 8 * (instances.size() - 1), static_cast<size_t>(trace_options.count))
        << "trace too short to cover every instance";
    size_t next = 0;
    session.SetPacketHook([&](int packet) {
      engine.Pump();
      if (packet % 8 == 4 && next < instances.size()) {
        const auto& instance = instances[next++];
        SwapSpec spec;
        spec.instance = instance.path;
        spec.source_name = instance.unit->files[0];
        spec.source = ClackSources().at(spec.source_name);
        SwapReport report = engine.Request(spec);
        EXPECT_TRUE(report.ok || report.deferred)
            << instance.path << ": " << report.error;
      }
    });

    session.ResetStats();
    const size_t half = trace.size() / 2;
    ASSERT_TRUE(session.FeedRange(trace, 0, half, diags).ok()) << diags.ToString();

    // A mid-stream snapshot must see exactly the packets fed so far, and must
    // not disturb the stream: feeding continues afterwards.
    Result<RouterStats> mid = session.Snapshot(diags);
    ASSERT_TRUE(mid.ok()) << diags.ToString();
    EXPECT_EQ(mid.value().packets, static_cast<int>(half));

    ASSERT_TRUE(session.FeedRange(trace, half, trace.size(), diags).ok())
        << diags.ToString();
    Result<RouterStats> run = session.Close(diags);
    ASSERT_TRUE(run.ok()) << diags.ToString();
    EXPECT_TRUE(session.closed());
    EXPECT_EQ(next, instances.size()) << "every element must be swapped";
    EXPECT_FALSE(engine.HasPending());
    ASSERT_EQ(engine.reports().size(), instances.size());
    for (const SwapReport& report : engine.reports()) {
      EXPECT_TRUE(report.ok) << report.error;
    }

    // Zero dropped packets: every packet was processed, and every transmission
    // of the no-swap run happened byte-identically and in order.
    EXPECT_EQ(run.value().packets, trace_options.count);
    EXPECT_EQ(run.value().tx_count, base.value().tx_count);
    EXPECT_EQ(run.value().tx_hash, base.value().tx_hash);
  }
}

// ---------------------------------------------------------------------------
// Allocator hot-swap: ClackAllocRouter's heap provider is an ordinary swappable
// instance. Swapping alloc_freelist -> alloc_bump mid-trace must be invisible
// in the transmitted bytes (PayloadScratch forwards packets unchanged whichever
// allocator — or allocation failure — serves it).
// ---------------------------------------------------------------------------

TEST(ReconfigClack, SwapFreelistToBumpMidTraceKeepsTxHashByteIdentical) {
  TraceOptions trace_options;
  trace_options.count = 240;
  std::vector<TracePacket> trace = GenerateTrace(trace_options);
  TraceExpectation expect = ExpectationOf(trace);

  KnitcOptions options;
  options.swappable = {"ClackAllocRouter/AllocFreelist"};
  Diagnostics diags;
  KnitPipeline pipeline(options);

  Result<RouterProgram> baseline =
      RouterProgram::FromClack(pipeline, "ClackAllocRouter", diags);
  ASSERT_TRUE(baseline.ok()) << diags.ToString();
  Result<RouterStats> base = baseline.value().RunTrace(trace, diags);
  ASSERT_TRUE(base.ok()) << diags.ToString();
  ASSERT_EQ(base.value().tx_count, expect.tx);

  Result<RouterProgram> built = RouterProgram::FromClack(pipeline, "ClackAllocRouter", diags);
  ASSERT_TRUE(built.ok()) << diags.ToString();
  RouterProgram& program = built.value();
  ReconfigEngine engine(*program.mutable_build(), program.machine(), ClackSources());

  bool swapped = false;
  program.SetPacketHook([&](int packet) {
    engine.Pump();
    if (packet == 100 && !swapped) {
      swapped = true;
      SwapSpec spec;
      spec.instance = "ClackAllocRouter/AllocFreelist";
      spec.source_name = "alloc_bump.c";
      spec.source = ClackSources().at("alloc_bump.c");
      SwapReport report = engine.Request(spec);
      EXPECT_TRUE(report.ok || report.deferred) << report.error;
    }
  });

  Result<RouterStats> run = program.RunTrace(trace, diags);
  ASSERT_TRUE(run.ok()) << diags.ToString();
  ASSERT_TRUE(swapped);
  EXPECT_FALSE(engine.HasPending());
  ASSERT_EQ(engine.reports().size(), 1u);
  EXPECT_TRUE(engine.reports()[0].ok) << engine.reports()[0].error;

  EXPECT_EQ(run.value().packets, trace_options.count);
  EXPECT_EQ(run.value().tx_count, base.value().tx_count);
  EXPECT_EQ(run.value().tx_hash, base.value().tx_hash);
  EXPECT_EQ(run.value().out, expect.out);
  EXPECT_EQ(run.value().drop, expect.drop);
}

// Regression guard: a replacement allocator that allocates MORE than its
// predecessor (alloc_buddy grabs a fresh 256 KB region in its initializer, on
// the live machine's heap) must neither corrupt neighbouring heap state nor
// change the tx hash. Heap growth is append-only by construction (Sbrk is
// monotonic), and this test pins that down.
TEST(ReconfigClack, SwappedInAllocatorGrowingTheHeapLeavesNeighborsIntact) {
  TraceOptions trace_options;
  trace_options.count = 200;
  std::vector<TracePacket> trace = GenerateTrace(trace_options);

  KnitcOptions options;
  options.swappable = {"ClackAllocRouter/AllocFreelist"};
  Diagnostics diags;
  KnitPipeline pipeline(options);

  Result<RouterProgram> baseline =
      RouterProgram::FromClack(pipeline, "ClackAllocRouter", diags);
  ASSERT_TRUE(baseline.ok()) << diags.ToString();
  Result<RouterStats> base = baseline.value().RunTrace(trace, diags);
  ASSERT_TRUE(base.ok()) << diags.ToString();

  Result<RouterProgram> built = RouterProgram::FromClack(pipeline, "ClackAllocRouter", diags);
  ASSERT_TRUE(built.ok()) << diags.ToString();
  RouterProgram& program = built.value();
  Machine& machine = program.machine();
  ReconfigEngine engine(*program.mutable_build(), program.machine(), ClackSources());

  // Neighbouring heap state: a host-owned region carved from the same heap the
  // replacement's init will grow past. Any overlap shows up as a torn pattern.
  const uint32_t kSentinelBytes = 4096;
  uint32_t sentinel = machine.Sbrk(kSentinelBytes);
  ASSERT_NE(sentinel, 0u);
  for (uint32_t i = 0; i < kSentinelBytes; ++i) {
    machine.WriteByte(sentinel + i, static_cast<uint8_t>(0xA5 ^ (i & 0xFF)));
  }

  uint32_t heap_before_swap = machine.heap_end();
  bool swapped = false;
  program.SetPacketHook([&](int packet) {
    engine.Pump();
    if (packet == 60 && !swapped) {
      swapped = true;
      SwapSpec spec;
      spec.instance = "ClackAllocRouter/AllocFreelist";
      spec.source_name = "alloc_buddy.c";
      spec.source = ClackSources().at("alloc_buddy.c");
      SwapReport report = engine.Request(spec);
      EXPECT_TRUE(report.ok || report.deferred) << report.error;
    }
  });

  Result<RouterStats> run = program.RunTrace(trace, diags);
  ASSERT_TRUE(run.ok()) << diags.ToString();
  ASSERT_TRUE(swapped);
  ASSERT_EQ(engine.reports().size(), 1u);
  ASSERT_TRUE(engine.reports()[0].ok) << engine.reports()[0].error;

  // The replacement really did grow the heap (buddy's 256 KB region + its
  // placed data), past where the sentinel lives.
  EXPECT_GE(machine.heap_end(), heap_before_swap + (256u << 10));
  for (uint32_t i = 0; i < kSentinelBytes; ++i) {
    ASSERT_EQ(machine.ReadByte(sentinel + i), static_cast<uint8_t>(0xA5 ^ (i & 0xFF)))
        << "sentinel byte " << i << " corrupted by the swapped-in allocator";
  }
  EXPECT_EQ(run.value().tx_count, base.value().tx_count);
  EXPECT_EQ(run.value().tx_hash, base.value().tx_hash);
}

}  // namespace
}  // namespace knit
