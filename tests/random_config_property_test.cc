// End-to-end property test over random Knit configurations: generate random unit
// DAGs (passthrough/combiner components with per-instance state), build them
// modular, flattened-everything, and unoptimized, and require identical observable
// behaviour everywhere — the strongest statement that flattening and objcopy-based
// instantiation are semantics-preserving. Each configuration also draws one
// allocator from the Alloc unit family uniformly at random, and allocating nodes
// call the implicit malloc/free builtins against it — so the same guarantees are
// exercised with every heap in the library behind the program.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "src/driver/knitc.h"
#include "src/driver/pipeline.h"
#include "src/oskit/alloc_corpus.h"
#include "src/vm/machine.h"

namespace knit {
namespace {

struct GeneratedConfig {
  std::string knit;
  SourceMap sources;
  std::string allocator;  // the drawn Alloc-family unit name
};

// Units: each node exports one Work bundle and imports 0-2 Work bundles from
// earlier nodes; its function mixes its inputs, a per-instance counter, and its
// argument. Some nodes are instantiated twice (multiple instantiation coverage).
GeneratedConfig Generate(unsigned seed) {
  std::mt19937 rng(seed);
  auto rand = [&](int n) { return static_cast<int>(rng() % static_cast<unsigned>(n)); };

  GeneratedConfig out;
  out.knit = "bundletype Work = { work }\n";
  // One allocator, drawn uniformly from the family; allocating nodes import its
  // Alloc bundle and their malloc/free builtins resolve against it.
  const std::vector<std::string>& family = AllocUnitNames();
  out.allocator = family[static_cast<size_t>(rand(static_cast<int>(family.size())))];
  out.knit += AllocKnit();
  for (const auto& [name, text] : AllocSources()) {
    out.sources[name] = text;
  }
  int nodes = 3 + rand(5);

  std::vector<std::vector<int>> inputs(static_cast<size_t>(nodes));
  std::vector<bool> allocates(static_cast<size_t>(nodes));
  for (int i = 1; i < nodes; ++i) {
    int count = 1 + rand(2);
    for (int k = 0; k < count; ++k) {
      inputs[static_cast<size_t>(i)].push_back(rand(i));
    }
  }
  for (int i = 0; i < nodes; ++i) {
    // The tail always allocates so every configuration touches the drawn heap.
    allocates[static_cast<size_t>(i)] = i == nodes - 1 || rand(2) == 0;
  }

  for (int i = 0; i < nodes; ++i) {
    int arity = static_cast<int>(inputs[static_cast<size_t>(i)].size());
    bool heap = allocates[static_cast<size_t>(i)];
    std::string unit = "unit N" + std::to_string(i) + " = {\n  imports [";
    for (int k = 0; k < arity; ++k) {
      unit += std::string(k > 0 ? ", " : "") + "in" + std::to_string(k) + " : Work";
    }
    if (heap) {
      unit += std::string(arity > 0 ? ", " : "") + "heap : Alloc";
    }
    unit += "];\n  exports [ out : Work ];\n";
    unit += "  initializer node_init for out;\n";
    unit += "  depends { node_init needs (); ";
    if (arity > 0 || heap) {
      unit += "out needs (";
      for (int k = 0; k < arity; ++k) {
        unit += std::string(k > 0 ? " + " : "") + "in" + std::to_string(k);
      }
      if (heap) {
        unit += std::string(arity > 0 ? " + " : "") + "heap";
      }
      unit += "); ";
    }
    unit += "};\n  files { \"n" + std::to_string(i) + ".c\" };\n  rename {\n";
    for (int k = 0; k < arity; ++k) {
      unit += "    in" + std::to_string(k) + ".work to work_in" + std::to_string(k) + ";\n";
    }
    unit += "  };\n}\n";
    out.knit += unit;

    std::string source;
    for (int k = 0; k < arity; ++k) {
      source += "extern int work_in" + std::to_string(k) + "(int x);\n";
    }
    source += "static int g_state = 0;\nvoid node_init(void) { g_state = " +
              std::to_string(rand(100)) + "; }\n";
    source += "int work(int x) {\n  g_state = g_state * 3 + 1;\n  int acc = x + g_state;\n";
    if (heap) {
      // The block's bytes feed acc; the pointer itself never does (heap layout
      // differs across allocators, block contents may not).
      source += "  unsigned *p = (unsigned *)malloc((unsigned)(16 + (acc & 31)));\n"
                "  if (p != 0) {\n"
                "    p[0] = (unsigned)(acc & 0xFFFF) + " + std::to_string(1 + rand(9)) +
                "u;\n"
                "    acc = acc + (int)p[0];\n" +
                (rand(4) != 0 ? "    free(p);\n" : "") +
                "  }\n";
    }
    for (int k = 0; k < arity; ++k) {
      switch (rand(3)) {
        case 0:
          source += "  acc = acc * 31 + work_in" + std::to_string(k) + "(acc & 0xFFFF);\n";
          break;
        case 1:
          source += "  if (acc & 1) acc = acc ^ work_in" + std::to_string(k) +
                    "(x + " + std::to_string(k) + ");\n";
          break;
        default:
          source += "  for (int i = 0; i < (acc & 3); i++) acc += work_in" +
                    std::to_string(k) + "(i);\n";
          break;
      }
    }
    source += "  return acc;\n}\n";
    out.sources["n" + std::to_string(i) + ".c"] = source;
  }

  // Top unit: one shared allocator instance, every node, plus a duplicate of
  // one mid node (multiple instantiation coverage).
  out.knit += "unit Top = {\n  imports [];\n  exports [ out : Work, dup : Work ];\n  link {\n";
  out.knit += "    [heap] <- " + out.allocator + " <- [];\n";
  auto imports_of = [&](int node) {
    std::string list;
    const std::vector<int>& ins = inputs[static_cast<size_t>(node)];
    for (size_t k = 0; k < ins.size(); ++k) {
      list += std::string(k > 0 ? ", " : "") + "w" + std::to_string(ins[k]);
    }
    if (allocates[static_cast<size_t>(node)]) {
      list += std::string(ins.empty() ? "" : ", ") + "heap";
    }
    return list;
  };
  for (int i = 0; i < nodes; ++i) {
    out.knit += "    [w" + std::to_string(i) + "] <- N" + std::to_string(i) + " <- [" +
                imports_of(i) + "];\n";
  }
  int duplicated = rand(nodes);
  out.knit += "    [dup] <- N" + std::to_string(duplicated) + " as second <- [" +
              imports_of(duplicated) + "];\n";
  out.knit += "    [out] <- N" + std::to_string(nodes - 1) + " as tail <- [" +
              imports_of(nodes - 1) + "];\n  };\n}\n";
  return out;
}

// Builds and runs a configuration; returns a behaviour fingerprint.
bool Fingerprint(const GeneratedConfig& config, const KnitcOptions& options,
                 uint64_t* fingerprint, std::string* error) {
  Diagnostics diags;
  Result<KnitBuildResult> build = KnitBuild(config.knit, config.sources, "Top", options, diags);
  if (!build.ok()) {
    *error = diags.ToString() + "\n" + config.knit;
    return false;
  }
  Machine machine(build.value().image);
  RunResult init = machine.Call(build.value().init_function);
  if (!init.ok) {
    *error = init.error;
    return false;
  }
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](uint32_t value) {
    for (int b = 0; b < 4; ++b) {
      hash = (hash ^ ((value >> (8 * b)) & 0xFF)) * 0x100000001B3ull;
    }
  };
  for (uint32_t input : {0u, 3u, 17u, 100u}) {
    for (const char* port : {"out", "dup"}) {
      RunResult run = machine.Call(build.value().ExportedSymbol(port, "work"), {input});
      if (!run.ok) {
        *error = run.error;
        return false;
      }
      mix(run.value);
    }
  }
  *fingerprint = hash;
  return true;
}

class RandomKnitConfigTest : public testing::TestWithParam<int> {};

TEST_P(RandomKnitConfigTest, AllBuildModesAgree) {
  GeneratedConfig config = Generate(static_cast<unsigned>(GetParam()) * 2166136261u + 7);

  KnitcOptions modular;
  KnitcOptions flattened;
  flattened.flatten_everything = true;
  KnitcOptions unoptimized;
  unoptimized.optimize = false;
  KnitcOptions flattened_unsorted;
  flattened_unsorted.flatten_everything = true;
  flattened_unsorted.callers_first_definitions = true;

  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  uint64_t d = 0;
  std::string error;
  ASSERT_TRUE(Fingerprint(config, modular, &a, &error)) << error;
  ASSERT_TRUE(Fingerprint(config, flattened, &b, &error)) << error;
  ASSERT_TRUE(Fingerprint(config, unoptimized, &c, &error)) << error;
  ASSERT_TRUE(Fingerprint(config, flattened_unsorted, &d, &error)) << error;
  EXPECT_EQ(a, b) << "flattening changed behaviour\n" << config.knit;
  EXPECT_EQ(a, c) << "optimizer changed behaviour\n" << config.knit;
  EXPECT_EQ(a, d) << "definition order changed behaviour\n" << config.knit;
}

// Builds a configuration and fingerprints the linked image bytes (not the
// behaviour): the determinism claim for --jobs is bit-identity of the artifact.
bool ImageFingerprint(const GeneratedConfig& config, const KnitcOptions& options,
                      uint64_t* fingerprint, std::string* error) {
  Diagnostics diags;
  Result<KnitBuildResult> build = KnitBuild(config.knit, config.sources, "Top", options, diags);
  if (!build.ok()) {
    *error = diags.ToString() + "\n" + config.knit;
    return false;
  }
  *fingerprint = FingerprintImage(build.value().image);
  return true;
}

// The allocator draw composes with every build axis: behaviour is identical at
// -O0 and -O2, and the -O2 image is bit-identical for --jobs 1, 2, and 8 —
// whichever heap the configuration drew.
TEST_P(RandomKnitConfigTest, DrawnAllocatorSurvivesOptLevelsAndJobCounts) {
  GeneratedConfig config = Generate(static_cast<unsigned>(GetParam()) * 2166136261u + 7);

  KnitcOptions level0;
  level0.opt_level = 0;
  level0.optimize = false;
  KnitcOptions level2;
  level2.opt_level = 2;

  uint64_t at_o0 = 0;
  uint64_t at_o2 = 0;
  std::string error;
  ASSERT_TRUE(Fingerprint(config, level0, &at_o0, &error)) << error;
  ASSERT_TRUE(Fingerprint(config, level2, &at_o2, &error)) << error;
  EXPECT_EQ(at_o0, at_o2) << "-O2 changed behaviour with " << config.allocator << "\n"
                          << config.knit;

  uint64_t jobs1 = 0;
  ASSERT_TRUE(ImageFingerprint(config, level2, &jobs1, &error)) << error;
  for (int jobs : {2, 8}) {
    KnitcOptions threaded = level2;
    threaded.jobs = jobs;
    uint64_t jobsN = 0;
    ASSERT_TRUE(ImageFingerprint(config, threaded, &jobsN, &error)) << error;
    EXPECT_EQ(jobsN, jobs1) << "--jobs=" << jobs << " changed the image with "
                            << config.allocator << "\n" << config.knit;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKnitConfigTest, testing::Range(1, 26));

}  // namespace
}  // namespace knit
