// End-to-end property test over random Knit configurations: generate random unit
// DAGs (passthrough/combiner components with per-instance state), build them
// modular, flattened-everything, and unoptimized, and require identical observable
// behaviour everywhere — the strongest statement that flattening and objcopy-based
// instantiation are semantics-preserving.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "src/driver/knitc.h"
#include "src/vm/machine.h"

namespace knit {
namespace {

struct GeneratedConfig {
  std::string knit;
  SourceMap sources;
};

// Units: each node exports one Work bundle and imports 0-2 Work bundles from
// earlier nodes; its function mixes its inputs, a per-instance counter, and its
// argument. Some nodes are instantiated twice (multiple instantiation coverage).
GeneratedConfig Generate(unsigned seed) {
  std::mt19937 rng(seed);
  auto rand = [&](int n) { return static_cast<int>(rng() % static_cast<unsigned>(n)); };

  GeneratedConfig out;
  out.knit = "bundletype Work = { work }\n";
  int nodes = 3 + rand(5);

  std::vector<std::vector<int>> inputs(static_cast<size_t>(nodes));
  for (int i = 1; i < nodes; ++i) {
    int count = 1 + rand(2);
    for (int k = 0; k < count; ++k) {
      inputs[static_cast<size_t>(i)].push_back(rand(i));
    }
  }

  for (int i = 0; i < nodes; ++i) {
    int arity = static_cast<int>(inputs[static_cast<size_t>(i)].size());
    std::string unit = "unit N" + std::to_string(i) + " = {\n  imports [";
    for (int k = 0; k < arity; ++k) {
      unit += std::string(k > 0 ? ", " : "") + "in" + std::to_string(k) + " : Work";
    }
    unit += "];\n  exports [ out : Work ];\n";
    unit += "  initializer node_init for out;\n";
    unit += "  depends { node_init needs (); ";
    if (arity > 0) {
      unit += "out needs (";
      for (int k = 0; k < arity; ++k) {
        unit += std::string(k > 0 ? " + " : "") + "in" + std::to_string(k);
      }
      unit += "); ";
    }
    unit += "};\n  files { \"n" + std::to_string(i) + ".c\" };\n  rename {\n";
    for (int k = 0; k < arity; ++k) {
      unit += "    in" + std::to_string(k) + ".work to work_in" + std::to_string(k) + ";\n";
    }
    unit += "  };\n}\n";
    out.knit += unit;

    std::string source;
    for (int k = 0; k < arity; ++k) {
      source += "extern int work_in" + std::to_string(k) + "(int x);\n";
    }
    source += "static int g_state = 0;\nvoid node_init(void) { g_state = " +
              std::to_string(rand(100)) + "; }\n";
    source += "int work(int x) {\n  g_state = g_state * 3 + 1;\n  int acc = x + g_state;\n";
    for (int k = 0; k < arity; ++k) {
      switch (rand(3)) {
        case 0:
          source += "  acc = acc * 31 + work_in" + std::to_string(k) + "(acc & 0xFFFF);\n";
          break;
        case 1:
          source += "  if (acc & 1) acc = acc ^ work_in" + std::to_string(k) +
                    "(x + " + std::to_string(k) + ");\n";
          break;
        default:
          source += "  for (int i = 0; i < (acc & 3); i++) acc += work_in" +
                    std::to_string(k) + "(i);\n";
          break;
      }
    }
    source += "  return acc;\n}\n";
    out.sources["n" + std::to_string(i) + ".c"] = source;
  }

  // Top unit: instantiate every node; also a duplicate of one mid node.
  out.knit += "unit Top = {\n  imports [];\n  exports [ out : Work, dup : Work ];\n  link {\n";
  for (int i = 0; i < nodes; ++i) {
    out.knit += "    [w" + std::to_string(i) + "] <- N" + std::to_string(i) + " <- [";
    const std::vector<int>& ins = inputs[static_cast<size_t>(i)];
    for (size_t k = 0; k < ins.size(); ++k) {
      out.knit += std::string(k > 0 ? ", " : "") + "w" + std::to_string(ins[k]);
    }
    out.knit += "];\n";
  }
  int duplicated = rand(nodes);
  out.knit += "    [dup] <- N" + std::to_string(duplicated) + " as second <- [";
  const std::vector<int>& dup_ins = inputs[static_cast<size_t>(duplicated)];
  for (size_t k = 0; k < dup_ins.size(); ++k) {
    out.knit += std::string(k > 0 ? ", " : "") + "w" + std::to_string(dup_ins[k]);
  }
  out.knit += "];\n";
  out.knit += "    [out] <- N" + std::to_string(nodes - 1) + " as tail <- [";
  const std::vector<int>& tail_ins = inputs[static_cast<size_t>(nodes - 1)];
  for (size_t k = 0; k < tail_ins.size(); ++k) {
    out.knit += std::string(k > 0 ? ", " : "") + "w" + std::to_string(tail_ins[k]);
  }
  out.knit += "];\n  };\n}\n";
  return out;
}

// Builds and runs a configuration; returns a behaviour fingerprint.
bool Fingerprint(const GeneratedConfig& config, const KnitcOptions& options,
                 uint64_t* fingerprint, std::string* error) {
  Diagnostics diags;
  Result<KnitBuildResult> build = KnitBuild(config.knit, config.sources, "Top", options, diags);
  if (!build.ok()) {
    *error = diags.ToString() + "\n" + config.knit;
    return false;
  }
  Machine machine(build.value().image);
  RunResult init = machine.Call(build.value().init_function);
  if (!init.ok) {
    *error = init.error;
    return false;
  }
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](uint32_t value) {
    for (int b = 0; b < 4; ++b) {
      hash = (hash ^ ((value >> (8 * b)) & 0xFF)) * 0x100000001B3ull;
    }
  };
  for (uint32_t input : {0u, 3u, 17u, 100u}) {
    for (const char* port : {"out", "dup"}) {
      RunResult run = machine.Call(build.value().ExportedSymbol(port, "work"), {input});
      if (!run.ok) {
        *error = run.error;
        return false;
      }
      mix(run.value);
    }
  }
  *fingerprint = hash;
  return true;
}

class RandomKnitConfigTest : public testing::TestWithParam<int> {};

TEST_P(RandomKnitConfigTest, AllBuildModesAgree) {
  GeneratedConfig config = Generate(static_cast<unsigned>(GetParam()) * 2166136261u + 7);

  KnitcOptions modular;
  KnitcOptions flattened;
  flattened.flatten_everything = true;
  KnitcOptions unoptimized;
  unoptimized.optimize = false;
  KnitcOptions flattened_unsorted;
  flattened_unsorted.flatten_everything = true;
  flattened_unsorted.callers_first_definitions = true;

  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
  uint64_t d = 0;
  std::string error;
  ASSERT_TRUE(Fingerprint(config, modular, &a, &error)) << error;
  ASSERT_TRUE(Fingerprint(config, flattened, &b, &error)) << error;
  ASSERT_TRUE(Fingerprint(config, unoptimized, &c, &error)) << error;
  ASSERT_TRUE(Fingerprint(config, flattened_unsorted, &d, &error)) << error;
  EXPECT_EQ(a, b) << "flattening changed behaviour\n" << config.knit;
  EXPECT_EQ(a, c) << "optimizer changed behaviour\n" << config.knit;
  EXPECT_EQ(a, d) << "definition order changed behaviour\n" << config.knit;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomKnitConfigTest, testing::Range(1, 26));

}  // namespace
}  // namespace knit
