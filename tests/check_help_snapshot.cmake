# Compares `knitc --help` against the checked-in snapshot (tests/knitc_help.snapshot).
# Run by the docs lint lane: the help text is documented API surface, so a flag
# added or reworded without updating the snapshot (and the README) fails CI.
#
#   cmake -DKNITC=<path> -DSNAPSHOT=<path> -P check_help_snapshot.cmake
#
# To refresh after an intentional change:  knitc --help > tests/knitc_help.snapshot

execute_process(COMMAND ${KNITC} --help OUTPUT_VARIABLE actual RESULT_VARIABLE code)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "knitc --help exited with ${code}")
endif()

file(READ ${SNAPSHOT} expected)
if(NOT actual STREQUAL expected)
  file(WRITE ${SNAPSHOT}.actual "${actual}")
  message(FATAL_ERROR "knitc --help output differs from ${SNAPSHOT}\n"
                      "actual output written to ${SNAPSHOT}.actual -- if the change is "
                      "intentional, refresh the snapshot:\n"
                      "  knitc --help > ${SNAPSHOT}")
endif()
