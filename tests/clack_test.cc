// Clack router tests: all four Table-1 configurations must behave identically on
// the same trace (same counters, same transmitted bytes), and the performance
// ordering must match the paper's shape.
#include <gtest/gtest.h>

#include "src/clack/corpus.h"
#include "src/clack/harness.h"
#include "src/clack/trace.h"
#include "src/oskit/alloc_corpus.h"
#include "src/support/mangle.h"

namespace knit {
namespace {

RouterStats RunConfig(const std::string& top_unit, const std::vector<TracePacket>& trace,
                      int opt_level = 1) {
  Diagnostics diags;
  KnitcOptions options;
  options.opt_level = opt_level;
  if (opt_level == 0) {
    options.optimize = false;
  }
  Result<RouterProgram> program = RouterProgram::FromClack(top_unit, options, diags);
  EXPECT_TRUE(program.ok()) << diags.ToString();
  if (!program.ok()) {
    return RouterStats{};
  }
  Result<RouterStats> stats = program.value().RunTrace(trace, diags);
  EXPECT_TRUE(stats.ok()) << diags.ToString();
  return stats.ok() ? stats.value() : RouterStats{};
}

class ClackConfigTest : public testing::TestWithParam<const char*> {};

TEST_P(ClackConfigTest, CountersMatchTraceExpectation) {
  TraceOptions trace_options;
  trace_options.count = 300;
  std::vector<TracePacket> trace = GenerateTrace(trace_options);
  TraceExpectation expect = ExpectationOf(trace);

  RouterStats stats = RunConfig(GetParam(), trace);
  EXPECT_EQ(stats.in0, expect.in0);
  EXPECT_EQ(stats.in1, expect.in1);
  EXPECT_EQ(stats.ip, expect.ip);
  EXPECT_EQ(stats.out, expect.out);
  EXPECT_EQ(stats.drop, expect.drop);
  EXPECT_EQ(stats.tx_count, expect.tx);
  EXPECT_GT(stats.cycles, 0);
}

INSTANTIATE_TEST_SUITE_P(AllRouterConfigs, ClackConfigTest,
                         testing::Values("ClackRouter", "ClackRouterFlat", "HandRouter",
                                         "HandRouterFlat"));

TEST(Clack, AllConfigurationsTransmitIdenticalBytes) {
  TraceOptions trace_options;
  trace_options.count = 250;
  trace_options.seed = 99;
  std::vector<TracePacket> trace = GenerateTrace(trace_options);

  RouterStats modular = RunConfig("ClackRouter", trace);
  RouterStats flat = RunConfig("ClackRouterFlat", trace);
  RouterStats hand = RunConfig("HandRouter", trace);
  RouterStats hand_flat = RunConfig("HandRouterFlat", trace);

  ASSERT_GT(modular.tx_count, 0u);
  EXPECT_EQ(modular.tx_hash, flat.tx_hash);
  EXPECT_EQ(modular.tx_hash, hand.tx_hash);
  EXPECT_EQ(modular.tx_hash, hand_flat.tx_hash);
}

// The -O2 image passes must not change what any configuration transmits: every
// top at every opt level produces the same bytes as the modular -O0 build.
TEST(Clack, OptLevelsTransmitIdenticalBytes) {
  TraceOptions trace_options;
  trace_options.count = 250;
  trace_options.seed = 99;
  std::vector<TracePacket> trace = GenerateTrace(trace_options);

  RouterStats baseline = RunConfig("ClackRouter", trace, /*opt_level=*/0);
  ASSERT_GT(baseline.tx_count, 0u);
  for (const char* top : {"ClackRouter", "ClackRouterFlat", "HandRouter", "HandRouterFlat"}) {
    for (int opt_level : {0, 1, 2}) {
      RouterStats stats = RunConfig(top, trace, opt_level);
      EXPECT_EQ(baseline.tx_hash, stats.tx_hash) << top << " at -O" << opt_level;
      EXPECT_EQ(baseline.tx_count, stats.tx_count) << top << " at -O" << opt_level;
    }
  }
}

TEST(Clack, PerformanceOrderingMatchesPaper) {
  // Table 1's shape: base slowest; hand-optimization helps; flattening helps more;
  // flattening improves (not hurts) i-fetch stalls.
  TraceOptions trace_options;
  trace_options.count = 400;
  std::vector<TracePacket> trace = GenerateTrace(trace_options);

  RouterStats base = RunConfig("ClackRouter", trace);
  RouterStats hand = RunConfig("HandRouter", trace);
  RouterStats flat = RunConfig("ClackRouterFlat", trace);
  RouterStats both = RunConfig("HandRouterFlat", trace);

  EXPECT_LT(hand.cycles, base.cycles);
  EXPECT_LT(flat.cycles, base.cycles);
  EXPECT_LT(both.cycles, flat.cycles + flat.cycles / 10);  // within ~10% or better
  EXPECT_LE(flat.ifetch_stalls, base.ifetch_stalls);
}


TEST(Clack, PacketTypeConstraintsAcceptTheRealRouter) {
  // The full router carries pkttype annotations on every element; the correct
  // wiring must pass the checker (it is on by default in KnitcOptions).
  Diagnostics diags;
  KnitcOptions options;
  Result<RouterProgram> program = RouterProgram::FromClack("ClackRouter", options, diags);
  EXPECT_TRUE(program.ok()) << diags.ToString();
}

TEST(Clack, PacketTypeConstraintsCatchMissingStrip) {
  // MiswiredClackRouter feeds the classifier's (Ethernet) IP output directly into
  // CheckIPHeader (which requires IpPacket) — the paper's "components only receive
  // packets of an appropriate type" scenario, caught at build time.
  Diagnostics diags;
  KnitcOptions options;
  Result<RouterProgram> program =
      RouterProgram::FromClack("MiswiredClackRouter", options, diags);
  EXPECT_FALSE(program.ok());
  EXPECT_NE(diags.ToString().find("pkttype"), std::string::npos) << diags.ToString();

  // With checking disabled the broken router builds — and would misparse frames.
  // (Built directly: the measurement harness requires a two-port router.)
  Diagnostics quiet;
  KnitcOptions unchecked;
  unchecked.check_constraints = false;
  EXPECT_TRUE(
      KnitBuild(ClackKnit(), ClackSources(), "MiswiredClackRouter", unchecked, quiet).ok())
      << quiet.ToString();
}

TEST(Clack, ModularRouterHas24Instances) {
  Diagnostics diags;
  KnitcOptions options;
  Result<RouterProgram> program = RouterProgram::FromClack("ClackRouter", options, diags);
  ASSERT_TRUE(program.ok()) << diags.ToString();
  EXPECT_EQ(program.value().build()->stats.instance_count, 24);
}

TEST(Clack, TtlIsActuallyDecremented) {
  // Forwarded packets must come out with TTL-1 and a re-valid checksum; covered
  // indirectly by tx_hash equality, but verify once against a hand-computed frame.
  TraceOptions trace_options;
  trace_options.count = 1;
  trace_options.arp_percent = 0;
  trace_options.other_percent = 0;
  trace_options.bad_checksum_percent = 0;
  trace_options.ttl_expired_percent = 0;
  std::vector<TracePacket> trace = GenerateTrace(trace_options);
  ASSERT_EQ(trace[0].kind, PacketKind::kForward);

  Diagnostics diags;
  KnitcOptions options;
  Result<RouterProgram> program = RouterProgram::FromClack("ClackRouter", options, diags);
  ASSERT_TRUE(program.ok()) << diags.ToString();

  uint8_t ttl_in = trace[0].frame[14 + 8];
  std::vector<uint8_t> tx_frame;
  program.value().machine().BindNative(
      EnvSymbol("dev", "dev_tx"), [&](Machine& m, const std::vector<uint32_t>& args) {
        tx_frame.clear();
        for (uint32_t i = 0; i < args[1]; ++i) {
          tx_frame.push_back(m.ReadByte(args[0] + i));
        }
        return 0u;
      });
  Result<RouterStats> stats = program.value().RunTrace(trace, diags);
  ASSERT_TRUE(stats.ok()) << diags.ToString();
  ASSERT_GE(tx_frame.size(), 34u);
  EXPECT_EQ(tx_frame[14 + 8], ttl_in - 1);
  // Recompute the IP checksum of the transmitted frame: must be valid.
  uint32_t sum = 0;
  for (int i = 0; i < 20; i += 2) {
    sum += (static_cast<uint32_t>(tx_frame[14 + i]) << 8) | tx_frame[14 + i + 1];
  }
  while ((sum >> 16) != 0) {
    sum = (sum & 0xFFFF) + (sum >> 16);
  }
  EXPECT_EQ(sum, 0xFFFFu);
  // Ethernet type still IPv4 and destination MAC derived from the gateway.
  EXPECT_EQ(tx_frame[12], 8);
  EXPECT_EQ(tx_frame[13], 0);
}

// ---------------------------------------------------------------------------
// ClackAllocRouter: the router with a heap on its IP path. Which allocator
// serves the Alloc import is a one-line config change (RewriteAllocProvider);
// the transmitted bytes must not depend on the choice.
// ---------------------------------------------------------------------------

Result<RouterProgram> BuildAllocRouter(const std::string& alloc_unit, Diagnostics& diags,
                                       int opt_level = 1) {
  KnitcOptions options;
  options.opt_level = opt_level;
  if (opt_level == 0) {
    options.optimize = false;
  }
  std::string knit_text = ClackKnit();
  EXPECT_EQ(RewriteAllocProvider(knit_text, alloc_unit), 1) << alloc_unit;
  KnitPipeline pipeline(options);
  return RouterProgram::FromKnit(pipeline, knit_text, ClackSources(), "ClackAllocRouter",
                                 diags);
}

TEST(ClackAlloc, EveryAllocatorForwardsByteIdenticallyToThePlainRouter) {
  TraceOptions trace_options;
  trace_options.count = 250;
  trace_options.seed = 99;
  std::vector<TracePacket> trace = GenerateTrace(trace_options);
  TraceExpectation expect = ExpectationOf(trace);

  RouterStats baseline = RunConfig("ClackRouter", trace);
  ASSERT_GT(baseline.tx_count, 0u);

  for (const std::string& unit : AllocUnitNames()) {
    SCOPED_TRACE(unit);
    Diagnostics diags;
    Result<RouterProgram> program = BuildAllocRouter(unit, diags);
    ASSERT_TRUE(program.ok()) << diags.ToString();
    Result<RouterStats> stats = program.value().RunTrace(trace, diags);
    ASSERT_TRUE(stats.ok()) << diags.ToString();

    // Same counters and the same transmitted bytes as the heap-less router.
    EXPECT_EQ(stats.value().tx_hash, baseline.tx_hash);
    EXPECT_EQ(stats.value().tx_count, expect.tx);
    EXPECT_EQ(stats.value().out, expect.out);
    EXPECT_EQ(stats.value().drop, expect.drop);

    // The scratch element saw every post-check IP packet and really allocated.
    Machine& machine = program.value().machine();
    RunResult scratch =
        machine.Call(program.value().build()->ExportedSymbol("statsScratch", "counter_value"));
    ASSERT_TRUE(scratch.ok) << scratch.error;
    EXPECT_GT(scratch.value, 0u);
    EXPECT_GT(machine.bytes_allocated(), 0);
    if (unit == "AllocFreelist" || unit == "AllocBuddy") {
      // These reuse freed blocks: every scratch buffer was returned.
      EXPECT_EQ(machine.live_bytes(), 0) << "allocated " << machine.bytes_allocated()
                                         << ", freed " << machine.bytes_freed();
    }
  }
}

TEST(ClackAlloc, HeapAttributionChargesTheScratchElementNotTheAllocator) {
  TraceOptions trace_options;
  trace_options.count = 200;
  std::vector<TracePacket> trace = GenerateTrace(trace_options);

  Diagnostics diags;
  Result<RouterProgram> program = BuildAllocRouter("AllocFreelist", diags);
  ASSERT_TRUE(program.ok()) << diags.ToString();
  program.value().EnableProfiling();
  Result<RouterStats> stats = program.value().RunTrace(trace, diags);
  ASSERT_TRUE(stats.ok()) << diags.ToString();

  const ComponentProfile& profile = stats.value().profile;
  ASSERT_GT(profile.total_bytes_alloc, 0);
  long long sum_alloc = 0;
  long long scratch_alloc = 0;
  for (const ComponentProfileEntry& entry : profile.components) {
    sum_alloc += entry.bytes_alloc;
    if (entry.component.find("PayloadScratch") != std::string::npos) {
      scratch_alloc = entry.bytes_alloc;
      EXPECT_GT(entry.live_peak, 0);
    }
    if (entry.component.find("/AllocFreelist") != std::string::npos) {
      EXPECT_EQ(entry.bytes_alloc, 0)
          << "the requester walk must not charge the allocator unit";
    }
  }
  EXPECT_EQ(sum_alloc, profile.total_bytes_alloc);
  EXPECT_EQ(scratch_alloc, profile.total_bytes_alloc)
      << "all scratch bytes belong to the scratch element";
  // Exact sums against the machine counters for the profiled window.
  EXPECT_EQ(profile.total_bytes_alloc, program.value().machine().bytes_allocated());
  EXPECT_EQ(profile.total_bytes_freed, program.value().machine().bytes_freed());
}

}  // namespace
}  // namespace knit
