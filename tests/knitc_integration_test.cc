// Whole-pipeline integration tests: the mini-OSKit corpus built by knitc and run
// on the VM. These exercise the paper's headline scenarios end to end: the Figure
// 5/6 web-server example, interposition, component swapping, multiple
// instantiation, initializer scheduling (including cycles), constraint checking,
// and flattening equivalence.
#include <gtest/gtest.h>

#include <algorithm>

#include "tests/knit_testutil.h"

namespace knit {
namespace {

// Convenience: call the exported kprintf with a format + args.
uint32_t Kprintf(KernelProgram& program, const std::string& fmt,
                 std::vector<uint32_t> args = {}) {
  uint32_t fmt_addr = WriteString(*program.machine, fmt);
  std::vector<uint32_t> all{fmt_addr};
  for (uint32_t a : args) {
    all.push_back(a);
  }
  return program.CallExport("printf", "kprintf", all);
}

TEST(KnitcIntegration, HelloKernelPrints) {
  KernelProgram program = BuildKernel("HelloKernel");
  ASSERT_TRUE(program.ok()) << program.error;
  program.Init();
  Kprintf(program, "hello %s %d 0x%x\n",
          {WriteString(*program.machine, "knit"), static_cast<uint32_t>(-5), 0xbeefu});
  EXPECT_EQ(program.machine->console(), "hello knit -5 0xbeef\n");
  program.Fini();
}

TEST(KnitcIntegration, InterpositionPrefixesOutput) {
  KernelProgram program = BuildKernel("PrefixedHelloKernel");
  ASSERT_TRUE(program.ok()) << program.error;
  program.Init();
  Kprintf(program, "boot\nok\n");
  EXPECT_EQ(program.machine->console(), "[k] boot\n[k] ok\n");
}

TEST(KnitcIntegration, ComponentSwapSerialConsole) {
  // Same kernel shape, different console supplier (the unit renames
  // serial_putchar to the generic console interface — the paper's example).
  KernelProgram program = BuildKernel("SerialHelloKernel");
  ASSERT_TRUE(program.ok()) << program.error;
  program.Init();
  Kprintf(program, "via serial\n");
  EXPECT_EQ(program.machine->console(), "via serial\n");
}

// Drives the Figure 5/6 web server: create a file, serve it, serve a CGI path,
// and check the log written through the interposed Log unit.
void RunWebScenario(KernelProgram& program, long long* cycles_out = nullptr) {
  program.Init();

  // Create "/index.html" through the exported file system.
  uint32_t path = WriteString(*program.machine, "/index.html");
  uint32_t fd = program.CallExport("fs", "fs_open", {path, 1});
  std::string content = "<html>knit</html>";
  uint32_t buf = WriteString(*program.machine, content);
  program.CallExport("fs", "fs_write", {fd, 0, buf, static_cast<uint32_t>(content.size())});

  program.machine->ClearConsole();
  program.machine->ResetCounters();

  uint32_t served = program.CallExport("serve", "serve_web", {7, path});
  EXPECT_EQ(served, content.size());

  uint32_t cgi_path = WriteString(*program.machine, "/cgi-bin/stats");
  program.CallExport("serve", "serve_web", {7, cgi_path});

  uint32_t missing = WriteString(*program.machine, "/no-such-file");
  uint32_t miss = program.CallExport("serve", "serve_web", {7, missing});
  EXPECT_EQ(miss, static_cast<uint32_t>(-1));

  if (cycles_out != nullptr) {
    *cycles_out = program.machine->cycles();
  }

  EXPECT_NE(program.machine->console().find("200 /index.html (17 bytes)"), std::string::npos)
      << program.machine->console();
  EXPECT_NE(program.machine->console().find("cgi stats ->"), std::string::npos)
      << program.machine->console();
  EXPECT_NE(program.machine->console().find("404 /no-such-file"), std::string::npos)
      << program.machine->console();

  program.Fini();

  // The Log unit wrote "ServerLog" through stdio -> memfs; read it back.
  uint32_t log_path = WriteString(*program.machine, "ServerLog");
  uint32_t log_fd = program.CallExport("fs", "fs_open", {log_path, 0});
  ASSERT_NE(log_fd, static_cast<uint32_t>(-1));
  uint32_t size = program.CallExport("fs", "fs_size", {log_fd});
  ASSERT_GT(size, 0u);
  uint32_t read_buf = program.machine->Sbrk(size + 1);
  program.CallExport("fs", "fs_read", {log_fd, 0, read_buf, size});
  std::string log = program.machine->ReadCString(read_buf, size);
  EXPECT_NE(log.find("/index.html -> 17"), std::string::npos) << log;
  EXPECT_NE(log.find("/cgi-bin/stats ->"), std::string::npos) << log;
  EXPECT_NE(log.find("/no-such-file -> -1"), std::string::npos) << log;
}

TEST(KnitcIntegration, WebKernelEndToEnd) {
  KernelProgram program = BuildKernel("WebKernel");
  ASSERT_TRUE(program.ok()) << program.error;
  RunWebScenario(program);
}

TEST(KnitcIntegration, FlattenedWebKernelBehavesIdentically) {
  KernelProgram modular = BuildKernel("WebKernel");
  KernelProgram flattened = BuildKernel("WebKernelFlat");
  ASSERT_TRUE(modular.ok()) << modular.error;
  ASSERT_TRUE(flattened.ok()) << flattened.error;

  long long modular_cycles = 0;
  long long flattened_cycles = 0;
  RunWebScenario(modular, &modular_cycles);
  RunWebScenario(flattened, &flattened_cycles);

  EXPECT_EQ(modular.machine->console(), flattened.machine->console());
  // Cross-component inlining must help on this call-chain-heavy path.
  EXPECT_LT(flattened_cycles, modular_cycles);
  // And the flattened image collapses into fewer objects.
  EXPECT_EQ(flattened.build->stats.flatten_group_count, 1);
}

TEST(KnitcIntegration, InitializerOrderRespectsNeeds) {
  KernelProgram program = BuildKernel("WebKernel");
  ASSERT_TRUE(program.ok()) << program.error;
  const Schedule& schedule = program.build->schedule;

  auto position = [&](const std::string& function) {
    for (size_t i = 0; i < schedule.initializers.size(); ++i) {
      if (schedule.initializers[i].function == function) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  int malloc_init = position("malloc_init");
  int fs_init = position("fs_init");
  int stdio_init = position("stdio_init");
  int open_log = position("open_log");
  ASSERT_GE(malloc_init, 0);
  ASSERT_GE(fs_init, 0);
  ASSERT_GE(stdio_init, 0);
  ASSERT_GE(open_log, 0);
  // open_log needs stdio; stdio usability needs stdio_init, fs_init, malloc_init.
  EXPECT_GT(open_log, stdio_init);
  EXPECT_GT(open_log, fs_init);
  EXPECT_GT(open_log, malloc_init);

  // Finalizers: close_log must run while stdio is still usable, i.e. first.
  ASSERT_FALSE(schedule.finalizers.empty());
  EXPECT_EQ(schedule.finalizers[0].function, "close_log");
}

TEST(KnitcIntegration, MultipleInstantiationIsolatesState) {
  KernelProgram program = BuildKernel("TwoPoolsKernel");
  ASSERT_TRUE(program.ok()) << program.error;
  program.Init();

  uint32_t path = WriteString(*program.machine, "only-in-a");
  uint32_t fd_a = program.CallExport("fsA", "fs_open", {path, 1});
  EXPECT_NE(fd_a, static_cast<uint32_t>(-1));

  // The second MemFs instance has its own file table: the file must not exist.
  uint32_t fd_b = program.CallExport("fsB", "fs_open", {path, 0});
  EXPECT_EQ(fd_b, static_cast<uint32_t>(-1));
}

TEST(KnitcIntegration, CyclicImportsScheduleWithFineGrainedDeps) {
  KernelProgram program = BuildKernel("CyclicGoodKernel");
  ASSERT_TRUE(program.ok()) << program.error;
  program.Init();
  EXPECT_EQ(program.CallExport("ping", "ping_step", {5}), 5u);
}

TEST(KnitcIntegration, CyclicInitializersAreRejectedWithoutFineGrainedDeps) {
  KernelProgram program = BuildKernel("CyclicBadKernel");
  EXPECT_FALSE(program.ok());
  EXPECT_NE(program.error.find("cycle"), std::string::npos) << program.error;
}

TEST(KnitcIntegration, ConstraintCheckerAcceptsInterruptSafeConsole) {
  KernelProgram program = BuildKernel("IntrKernelGood");
  ASSERT_TRUE(program.ok()) << program.error;
  program.Init();
  program.CallExport("intr", "intr_tick");
  EXPECT_EQ(program.machine->console(), "tick\n");
}

TEST(KnitcIntegration, ConstraintCheckerCatchesProcessContextInInterrupt) {
  // The paper's section-4 scenario: interrupt-context code reaching code that
  // takes process-context locks is a configuration error caught statically.
  KernelProgram program = BuildKernel("IntrKernelBad");
  EXPECT_FALSE(program.ok());
  EXPECT_NE(program.error.find("context"), std::string::npos) << program.error;
}

TEST(KnitcIntegration, ConstraintCheckingCanBeDisabled) {
  KnitcOptions options;
  options.check_constraints = false;
  KernelProgram program = BuildKernel("IntrKernelBad", options);
  // Without the checker the (buggy) configuration builds — exactly the failure
  // mode the paper's checker exists to prevent.
  EXPECT_TRUE(program.ok()) << program.error;
}

TEST(KnitcIntegration, FlattenEverythingOption) {
  KnitcOptions options;
  options.flatten_everything = true;
  KernelProgram program = BuildKernel("WebKernel", options);
  ASSERT_TRUE(program.ok()) << program.error;
  EXPECT_EQ(program.build->stats.flatten_group_count, 1);
  RunWebScenario(program);
}

TEST(KnitcIntegration, UnoptimizedBuildStillWorks) {
  KnitcOptions options;
  options.optimize = false;
  KernelProgram program = BuildKernel("WebKernel", options);
  ASSERT_TRUE(program.ok()) << program.error;
  RunWebScenario(program);
}

TEST(KnitcIntegration, StatsAreFilled) {
  KernelProgram program = BuildKernel("WebKernel");
  ASSERT_TRUE(program.ok()) << program.error;
  const BuildStats& stats = program.build->stats;
  EXPECT_EQ(stats.instance_count, 9);  // 8 kernel link lines, LogServe expands to 2
  EXPECT_GT(stats.object_count, 0);
  EXPECT_GT(program.build->image.text_bytes, 0);
}

}  // namespace
}  // namespace knit
